package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/vds"
)

// repoRoot locates the module root from the test binary's source path.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func openCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.Open(t.TempDir(), dtype.StandardRegistry(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	return cat
}

func TestInsertSampleVDLFiles(t *testing.T) {
	root := repoRoot(t)
	for _, f := range []string{
		"examples/vdl/paper-appendix-a.vdl",
		"examples/vdl/posix-pipeline.vdl",
		"examples/vdl/sdss-campaign.vdl",
	} {
		cat := openCat(t)
		if err := insert(cat, []string{filepath.Join(root, f)}); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if cat.Stats().Derivations == 0 {
			t.Errorf("%s: no derivations inserted", f)
		}
	}
}

func TestInsertIsIdempotent(t *testing.T) {
	root := repoRoot(t)
	cat := openCat(t)
	path := filepath.Join(root, "examples/vdl/sdss-campaign.vdl")
	if err := insert(cat, []string{path}); err != nil {
		t.Fatal(err)
	}
	before := cat.Stats()
	if err := insert(cat, []string{path}); err != nil {
		t.Fatalf("re-insert: %v", err)
	}
	if cat.Stats() != before {
		t.Errorf("re-insert changed state: %+v vs %+v", cat.Stats(), before)
	}
}

func TestSearchLineagePlanEstimateAnnotate(t *testing.T) {
	root := repoRoot(t)
	cat := openCat(t)
	if err := insert(cat, []string{filepath.Join(root, "examples/vdl/sdss-campaign.vdl")}); err != nil {
		t.Fatal(err)
	}
	if err := search(cat, []string{"-kind", "dataset", "derived"}); err != nil {
		t.Error(err)
	}
	if err := search(cat, []string{"-kind", "transformation", "simple"}); err != nil {
		t.Error(err)
	}
	if err := search(cat, []string{"-kind", "derivation", `attr.campaign = dr1`}); err != nil {
		t.Error(err)
	}
	if err := search(cat, []string{"-kind", "bogus", "x"}); err == nil {
		t.Error("bad kind accepted")
	}
	if err := search(cat, []string{}); err == nil {
		t.Error("missing query accepted")
	}
	if err := lineage(cat, []string{"catalog.stripe0"}); err != nil {
		t.Error(err)
	}
	if err := lineage(cat, []string{"field.0"}); err != nil {
		t.Error(err)
	}
	if err := lineage(cat, []string{"ghost"}); err == nil {
		t.Error("lineage of ghost accepted")
	}
	if err := invalidate(cat, []string{"field.0"}); err != nil {
		t.Error(err)
	}
	if err := plan(cat, []string{"catalog.stripe0"}); err != nil {
		t.Error(err)
	}
	if err := estimate(cat, []string{"-hosts", "4", "catalog.stripe0"}); err != nil {
		t.Error(err)
	}
	if err := annotate(cat, []string{"catalog.stripe0", "quality=draft"}); err != nil {
		t.Error(err)
	}
	ds, err := cat.Dataset("catalog.stripe0")
	if err != nil || ds.Attrs["quality"] != "draft" {
		t.Errorf("annotation: %+v %v", ds, err)
	}
	if err := annotate(cat, []string{"catalog.stripe0", "no-equals-sign"}); err == nil {
		t.Error("malformed annotation accepted")
	}
	if err := annotate(cat, []string{"ghost", "k=v"}); err == nil {
		t.Error("annotation of ghost accepted")
	}
}

func TestRunCommandRealPipeline(t *testing.T) {
	if _, err := os.Stat("/bin/cat"); err != nil {
		t.Skip("POSIX binaries unavailable")
	}
	root := repoRoot(t)
	cat := openCat(t)
	if err := insert(cat, []string{filepath.Join(root, "examples/vdl/posix-pipeline.vdl")}); err != nil {
		t.Fatal(err)
	}
	ws := t.TempDir()
	if err := os.WriteFile(filepath.Join(ws, "corpus"), []byte("virtual data\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cat, []string{"-workspace", ws, "report"}); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(filepath.Join(ws, "report"))
	if err != nil || string(out) != "VIRTUAL DATA\n" {
		t.Errorf("pipeline output: %q %v", out, err)
	}
	// Provenance recorded; second run is a no-op.
	if cat.Stats().Invocations != 2 {
		t.Errorf("invocations: %d", cat.Stats().Invocations)
	}
	if err := run(cat, []string{"-workspace", ws, "report"}); err != nil {
		t.Fatal(err)
	}
	if cat.Stats().Invocations != 2 {
		t.Error("re-run executed jobs despite materialization")
	}
	// Missing target errors.
	if err := run(cat, []string{"-workspace", ws, "ghost"}); err == nil {
		t.Error("run of ghost accepted")
	}
	if err := run(cat, []string{"-workspace", ws}); err == nil {
		t.Error("run with no target accepted")
	}
}

func TestConvertCommands(t *testing.T) {
	root := repoRoot(t)
	path := filepath.Join(root, "examples/vdl/paper-appendix-a.vdl")
	if err := convert("print", []string{path}); err != nil {
		t.Error(err)
	}
	if err := convert("xml", []string{path}); err != nil {
		t.Error(err)
	}
	if err := convert("print", []string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := convert("print", []string{"/no/such.vdl"}); err == nil {
		t.Error("unreadable file accepted")
	}
}

func TestRemoteCommands(t *testing.T) {
	root := repoRoot(t)
	cat := openCat(t)
	srv := httptest.NewServer(vds.NewServer("shared", cat))
	defer srv.Close()
	client := vds.NewClient(srv.URL)

	if err := remoteCommand(client, "insert", []string{filepath.Join(root, "examples/vdl/sdss-campaign.vdl")}); err != nil {
		t.Fatal(err)
	}
	if cat.Stats().Derivations == 0 {
		t.Fatal("remote insert did not land")
	}
	for _, kind := range []string{"dataset", "transformation", "derivation"} {
		if err := remoteCommand(client, "search", []string{"-kind", kind, "*"}); err != nil {
			t.Errorf("remote search %s: %v", kind, err)
		}
	}
	if err := remoteCommand(client, "lineage", []string{"catalog.stripe0"}); err != nil {
		t.Error(err)
	}
	if err := remoteCommand(client, "lineage", []string{"field.0"}); err != nil {
		t.Error(err)
	}
	if err := remoteCommand(client, "stats", nil); err != nil {
		t.Error(err)
	}
	if err := remoteCommand(client, "run", []string{"x"}); err == nil {
		t.Error("remote run should be unsupported")
	}
	if err := remoteCommand(client, "search", []string{"-kind", "bogus", "*"}); err == nil {
		t.Error("bad kind accepted remotely")
	}
	if err := remoteCommand(client, "insert", nil); err == nil {
		t.Error("remote insert without files accepted")
	}
}
