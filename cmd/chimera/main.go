// Command chimera is the virtual data system command-line client: it
// composes VDL into a durable virtual data catalog, answers discovery
// queries, prints lineage reports and invalidation sets, and plans and
// estimates materialization requests.
//
// Usage:
//
//	chimera -catalog DIR insert file.vdl...
//	chimera -catalog DIR search -kind dataset 'derived and attr.owner = "annis"'
//	chimera -catalog DIR lineage DATASET
//	chimera -catalog DIR invalidate DATASET
//	chimera -catalog DIR plan TARGET
//	chimera -catalog DIR estimate -hosts 16 TARGET
//	chimera -catalog DIR stats
//	chimera xml file.vdl           (convert VDL to its XML form)
//	chimera print file.vdl         (parse and re-print canonical VDL)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/dtype"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/obs"
	"chimera/internal/query"
	"chimera/internal/schema"
	"chimera/internal/vdl"
	"chimera/internal/vds"
)

// tracer is non-nil when -trace is set; run() hands it to the executor
// and main writes the Chrome trace file on exit.
var tracer *obs.Tracer

func main() {
	catDir := flag.String("catalog", "", "durable catalog directory (created if missing)")
	server := flag.String("server", "", "remote catalog service URL (alternative to -catalog)")
	tracePath := flag.String("trace", "", "write a Chrome trace of executed work to this file (run command)")
	flag.Usage = usage
	flag.Parse()
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]

	if *server != "" {
		if err := remoteCommand(vds.NewClient(*server), cmd, rest); err != nil {
			fail("%v", err)
		}
		return
	}

	var err error
	switch cmd {
	case "xml", "print":
		err = convert(cmd, rest)
	case "insert", "search", "lineage", "invalidate", "plan", "estimate", "stats", "run", "annotate":
		if *catDir == "" {
			fail("command %q needs -catalog DIR", cmd)
		}
		var cat *catalog.Catalog
		cat, err = catalog.Open(*catDir, dtype.StandardRegistry(), catalog.Options{})
		if err != nil {
			break
		}
		defer cat.Close()
		switch cmd {
		case "insert":
			err = insert(cat, rest)
		case "search":
			err = search(cat, rest)
		case "lineage":
			err = lineage(cat, rest)
		case "invalidate":
			err = invalidate(cat, rest)
		case "plan":
			err = plan(cat, rest)
		case "estimate":
			err = estimate(cat, rest)
		case "run":
			err = run(cat, rest)
		case "annotate":
			err = annotate(cat, rest)
		case "stats":
			st := cat.Stats()
			fmt.Printf("datasets=%d transformations=%d derivations=%d invocations=%d replicas=%d\n",
				st.Datasets, st.Transformations, st.Derivations, st.Invocations, st.Replicas)
		}
		if err == nil {
			err = cat.Snapshot()
		}
	default:
		fail("unknown command %q", cmd)
	}
	if tracer != nil {
		if werr := tracer.WriteChromeTraceFile(*tracePath); werr != nil {
			fail("write trace: %v", werr)
		}
		fmt.Printf("wrote trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
	if err != nil {
		fail("%v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `chimera — virtual data system client

  chimera -catalog DIR insert FILE.vdl...
  chimera -catalog DIR search -kind dataset|transformation|derivation QUERY
  chimera -catalog DIR lineage DATASET
  chimera -catalog DIR invalidate DATASET
  chimera -catalog DIR plan TARGET
  chimera -catalog DIR estimate [-hosts N] TARGET
  chimera [-trace out.json] -catalog DIR run [-workspace DIR] [-retries N] TARGET...
  chimera -catalog DIR annotate DATASET KEY=VALUE
  chimera -catalog DIR stats
  chimera xml FILE.vdl
  chimera print FILE.vdl

With -server URL instead of -catalog DIR, insert/search/lineage/stats
operate against a running vdcd catalog service.`)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chimera: "+format+"\n", args...)
	os.Exit(1)
}

func parseFile(path string) (vdl.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return vdl.Program{}, err
	}
	return vdl.Parse(string(src))
}

func convert(mode string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("%s needs exactly one FILE.vdl", mode)
	}
	prog, err := parseFile(args[0])
	if err != nil {
		return err
	}
	if mode == "xml" {
		data, err := vdl.MarshalXML(prog)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(vdl.Print(prog))
	return nil
}

func insert(cat *catalog.Catalog, files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("insert needs at least one FILE.vdl")
	}
	for _, f := range files {
		prog, err := parseFile(f)
		if err != nil {
			return err
		}
		// Expand compound derivations into executable leaves.
		expanded := prog
		expanded.Derivations = nil
		if err := vds.ApplyProgram(cat, vdl.Program{
			Types: prog.Types, Datasets: prog.Datasets, Transformations: prog.Transformations,
		}); err != nil {
			return err
		}
		for _, dv := range prog.Derivations {
			leaves, err := schema.ExpandDerivation(dv, cat.Resolver())
			if err != nil {
				return err
			}
			for _, leaf := range leaves {
				if _, err := cat.AddDerivation(leaf); err != nil && !errors.Is(err, catalog.ErrDuplicate) {
					return err
				}
			}
		}
		fmt.Printf("inserted %s\n", f)
	}
	return nil
}

func search(cat *catalog.Catalog, args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	kind := fs.String("kind", "dataset", "dataset, transformation or derivation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("search needs exactly one QUERY")
	}
	q := fs.Arg(0)
	var k query.Kind
	switch *kind {
	case "dataset":
		k = query.KDataset
	case "transformation":
		k = query.KTransformation
	case "derivation":
		k = query.KDerivation
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	res, err := query.Search(cat, k, q)
	if err != nil {
		return err
	}
	for _, ds := range res.Datasets {
		state := "materialized"
		if !cat.Materialized(ds.Name) {
			state = "virtual"
		}
		fmt.Printf("dataset %-30s type=%-20s %s\n", ds.Name, ds.Type, state)
	}
	for _, tr := range res.Transformations {
		fmt.Printf("transformation %-30s kind=%s args=%d\n", tr.Ref(), tr.Kind, len(tr.Args))
	}
	for _, dv := range res.Derivations {
		fmt.Printf("derivation %-36s tr=%s\n", dv.ID, dv.TR)
	}
	return nil
}

func lineage(cat *catalog.Catalog, args []string) error {
	fs := flag.NewFlagSet("lineage", flag.ContinueOnError)
	dot := fs.Bool("dot", false, "emit GraphViz DOT instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) != 1 {
		return fmt.Errorf("lineage needs exactly one DATASET")
	}
	rep, err := cat.Lineage(args[0])
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(rep.DOT())
		return nil
	}
	if rep.Primary {
		fmt.Printf("%s is primary data (no recorded producer)\n", rep.Dataset)
		return nil
	}
	fmt.Printf("lineage of %s:\n", rep.Dataset)
	for _, step := range rep.Steps {
		fmt.Printf("  depth %d: %s  tr=%s\n", step.Depth, step.Derivation.ID, step.TR)
		fmt.Printf("           inputs=%s outputs=%s\n", strings.Join(step.Inputs, ","), strings.Join(step.Outputs, ","))
		for _, iv := range step.Invocations {
			fmt.Printf("           run %s on %s/%s exit=%d elapsed=%s\n",
				iv.ID, iv.Site, iv.Host, iv.ExitCode, iv.Duration())
		}
	}
	fmt.Printf("primary sources: %s\n", strings.Join(rep.PrimarySources, ", "))
	return nil
}

func invalidate(cat *catalog.Catalog, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("invalidate needs exactly one DATASET")
	}
	cl, err := cat.Invalidate(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("recompute %d datasets via %d derivations:\n", len(cl.Datasets), len(cl.Derivations))
	for _, d := range cl.Datasets {
		fmt.Printf("  %s\n", d)
	}
	return nil
}

func plan(cat *catalog.Catalog, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("plan needs exactly one TARGET")
	}
	dvs, err := cat.MaterializationPlan(args[0], assumePrimary(cat))
	if err != nil {
		return err
	}
	if len(dvs) == 0 {
		fmt.Printf("%s is already materialized; nothing to do\n", args[0])
		return nil
	}
	fmt.Printf("materializing %s requires %d derivations (dependency order):\n", args[0], len(dvs))
	for i, dv := range dvs {
		fmt.Printf("  %3d. %s  tr=%s\n", i+1, dv.ID, dv.TR)
	}
	return nil
}

func estimate(cat *catalog.Catalog, args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ContinueOnError)
	hosts := fs.Int("hosts", 1, "hosts available for parallel execution")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("estimate needs exactly one TARGET")
	}
	dvs, err := cat.MaterializationPlan(fs.Arg(0), assumePrimary(cat))
	if err != nil {
		return err
	}
	g, err := dag.Build(dvs, cat.Resolver())
	if err != nil {
		return err
	}
	est := estimator.New(60)
	if err := est.LoadCatalog(cat); err != nil {
		return err
	}
	e := est.EstimateGraph(g, *hosts, nil)
	fmt.Printf("plan: %d derivations, total work %.0fs, critical path %.0fs\n",
		g.Len(), e.TotalWork, e.CriticalPath)
	fmt.Printf("estimated makespan on %d host(s): %.0fs (history-backed: %v)\n",
		*hosts, e.Makespan, e.Confident)
	return nil
}

// run materializes targets by executing the planned derivations as
// real local processes under the POSIX model (transformation Exec +
// argument templates), recording invocations in the catalog.
func run(cat *catalog.Catalog, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	workspace := fs.String("workspace", ".", "directory holding dataset files")
	retries := fs.Int("retries", 0, "per-node retry budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("run needs at least one TARGET")
	}
	available := assumePrimary(cat)
	var pending []schema.Derivation
	seen := map[string]bool{}
	for _, target := range fs.Args() {
		dvs, err := cat.MaterializationPlan(target, available)
		if err != nil {
			return err
		}
		if len(dvs) == 0 {
			fmt.Printf("%s: already materialized\n", target)
			continue
		}
		for _, dv := range dvs {
			if !seen[dv.ID] {
				seen[dv.ID] = true
				pending = append(pending, dv)
			}
		}
	}
	if len(pending) == 0 {
		return nil
	}
	g, err := dag.Build(pending, cat.Resolver())
	if err != nil {
		return err
	}
	drv := executor.NewLocalDriver(*workspace)
	drv.Resolve = cat.Resolver()
	drv.ExecFallback = true
	ex := &executor.Executor{
		Driver:     drv,
		Catalog:    cat,
		Trace:      tracer,
		MaxRetries: *retries,
		Epoch:      time.Now().UTC(),
		Assign: func(*dag.Node) (executor.Placement, error) {
			return executor.Placement{Site: "local"}, nil
		},
		OnEvent: func(ev executor.Event) {
			if ev.Kind == "done" || ev.Kind == "fail" {
				fmt.Printf("  %s %s (%.2fs)\n", ev.Kind, ev.Node, ev.Result.End-ev.Result.Start)
			}
		},
	}
	rep, err := ex.Run(g)
	if err != nil {
		return err
	}
	fmt.Printf("completed %d, failed %d, blocked %d in %.2fs\n",
		rep.Completed, rep.Failed, rep.Blocked, rep.Makespan)
	if !rep.Succeeded() {
		return fmt.Errorf("workflow incomplete")
	}
	return nil
}

// annotate attaches user-defined metadata to a dataset — the
// documentation facet.
func annotate(cat *catalog.Catalog, args []string) error {
	if len(args) != 2 || !strings.Contains(args[1], "=") {
		return fmt.Errorf("annotate needs DATASET KEY=VALUE")
	}
	ds, err := cat.Dataset(args[0])
	if err != nil {
		return err
	}
	kv := strings.SplitN(args[1], "=", 2)
	if ds.Attrs == nil {
		ds.Attrs = schema.Attributes{}
	}
	ds.Attrs[kv[0]] = kv[1]
	if err := cat.UpdateDataset(ds); err != nil {
		return err
	}
	fmt.Printf("annotated %s: %s=%s\n", ds.Name, kv[0], kv[1])
	return nil
}

// assumePrimary treats underived data as stageable for planning.
func assumePrimary(cat *catalog.Catalog) func(string) bool {
	return func(ds string) bool {
		if cat.Materialized(ds) {
			return true
		}
		rec, err := cat.Dataset(ds)
		return err == nil && rec.CreatedBy == ""
	}
}

// remoteCommand runs the subset of commands that operate against a
// shared catalog service (§8's enterprise-scale deployment) instead of
// a local directory.
func remoteCommand(client *vds.Client, cmd string, args []string) error {
	switch cmd {
	case "insert":
		if len(args) == 0 {
			return fmt.Errorf("insert needs at least one FILE.vdl")
		}
		for _, f := range args {
			src, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			if err := client.PostVDL(string(src)); err != nil {
				return err
			}
			fmt.Printf("inserted %s\n", f)
		}
		return nil
	case "search":
		fs := flag.NewFlagSet("search", flag.ContinueOnError)
		kind := fs.String("kind", "dataset", "dataset, transformation or derivation")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("search needs exactly one QUERY")
		}
		switch *kind {
		case "dataset":
			res, err := client.SearchDatasets(fs.Arg(0))
			if err != nil {
				return err
			}
			for _, ds := range res {
				fmt.Printf("dataset %-30s type=%s\n", ds.Name, ds.Type)
			}
		case "transformation":
			res, err := client.SearchTransformations(fs.Arg(0))
			if err != nil {
				return err
			}
			for _, tr := range res {
				fmt.Printf("transformation %-30s kind=%s\n", tr.Ref(), tr.Kind)
			}
		case "derivation":
			res, err := client.SearchDerivations(fs.Arg(0))
			if err != nil {
				return err
			}
			for _, dv := range res {
				fmt.Printf("derivation %-36s tr=%s\n", dv.ID, dv.TR)
			}
		default:
			return fmt.Errorf("unknown kind %q", *kind)
		}
		return nil
	case "lineage":
		if len(args) != 1 {
			return fmt.Errorf("lineage needs exactly one DATASET")
		}
		rep, err := client.Lineage(args[0])
		if err != nil {
			return err
		}
		if rep.Primary {
			fmt.Printf("%s is primary data\n", rep.Dataset)
			return nil
		}
		fmt.Printf("lineage of %s:\n", rep.Dataset)
		for _, step := range rep.Steps {
			fmt.Printf("  depth %d: %s  tr=%s inputs=%s\n",
				step.Depth, step.Derivation.ID, step.TR, strings.Join(step.Inputs, ","))
		}
		fmt.Printf("primary sources: %s\n", strings.Join(rep.PrimarySources, ", "))
		return nil
	case "stats":
		info, err := client.Info()
		if err != nil {
			return err
		}
		st := info.Stats
		fmt.Printf("catalog %q: datasets=%d transformations=%d derivations=%d invocations=%d replicas=%d\n",
			info.Name, st.Datasets, st.Transformations, st.Derivations, st.Invocations, st.Replicas)
		return nil
	default:
		return fmt.Errorf("command %q is not available against -server (use insert, search, lineage or stats)", cmd)
	}
}
