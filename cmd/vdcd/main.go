// Command vdcd serves a durable virtual data catalog over HTTP: the
// network face of one node in the virtual data grid. Other catalogs
// hyperlink to its objects with vdp:// references, federated indexes
// crawl it, and the chimera CLI (or any HTTP client) composes and
// queries it remotely.
//
// Operational endpoints: GET /metrics exposes process metrics (runtime
// gauges included) in Prometheus text format; GET /healthz reports
// liveness plus catalog stats; GET /debug/vdc reports the journal
// cursor (with its per-shard floors under -shards > 1), index
// cardinalities and the slowest recent requests with
// their trace IDs; /debug/loglevel reads and sets per-subsystem log
// levels at runtime. With -trace, GET /debug/trace dumps the in-memory
// span buffer in Chrome trace-event format (load it in Perfetto); with
// -pprof, the net/http/pprof profiles are mounted at /debug/pprof/.
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests finish,
// the catalog is snapshotted, and the WAL is flushed closed.
//
// Durability is a group-commit WAL: mutations batch their log writes
// and (with -sync) share one fsync per batch; see docs/PERF.md for the
// -wal-batch / -wal-delay knobs. With -shards N the catalog is
// partitioned into N lock/WAL/journal shards for multi-core ingest
// (docs/PERF.md, "Catalog sharding"); the count is fixed at directory
// creation and the on-disk count wins on reopen. -snapshot-format
// selects the snapshot codec (json/v1 default, binary/v1 for compact
// mmap-loaded snapshots; docs/PERF.md, "Binary catalog format") and is
// pinned the same way: the recorded format wins on reopen.
//
// With -federate, vdcd also hosts a federated index over the listed
// member catalogs and crawls them incrementally every -crawl-every;
// the per-member sync cursors appear under /debug/vdc, and each pass
// is one connected trace when -trace is on. Member exports use the
// compact binary transport when members support it (-export-binary,
// on by default, negotiates down to JSON against older members), and
// -max-export-bytes caps how large a member response the crawler will
// buffer.
//
// Usage:
//
//	vdcd -addr :8844 -dir /var/lib/vdc -name physics.example.edu \
//	    [-readonly] [-sync] [-log-level info,wal=debug] [-log-json] \
//	    [-trace] [-pprof] [-federate a=http://h1:8844,b=http://h2:8844]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/federation"
	"chimera/internal/grid"
	"chimera/internal/obs"
	"chimera/internal/planner"
	"chimera/internal/vds"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	dir := flag.String("dir", "vdc-data", "catalog directory")
	name := flag.String("name", "vdc", "catalog authority name")
	readonly := flag.Bool("readonly", false, "reject mutations")
	syncWAL := flag.Bool("sync", false, "fsync the write-ahead log before acknowledging mutations (one fsync per commit batch)")
	walBatch := flag.Int("wal-batch", catalog.DefaultMaxBatch, "group-commit batch-size target; 1 disables group commit (inline per-op writes)")
	walDelay := flag.Duration("wal-delay", catalog.DefaultMaxDelay, "how long a contended commit batch stays open for stragglers; <0 disables the window")
	journalWindow := flag.Int("journal-window", catalog.DefaultJournalWindow, "change-journal entries retained for delta exports; crawlers further behind fall back to full exports")
	shards := flag.Int("shards", 1, "catalog shard count (1..64): independent lock/WAL/journal partitions for multi-core ingest; fixed at directory creation, the on-disk count wins on reopen")
	snapshotFormat := flag.String("snapshot-format", "", "snapshot codec (json/v1 or binary/v1); empty keeps the directory's recorded format (json/v1 for new directories), and like -shards the recorded format wins on reopen")
	snapshotEvery := flag.Duration("snapshot-every", 10*time.Minute, "WAL compaction interval (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight requests")
	logLevel := flag.String("log-level", "info", "log level spec: a default level optionally followed by subsys=level overrides, e.g. \"info,wal=debug,http=warn\" (also settable at runtime via /debug/loglevel)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	traceOn := flag.Bool("trace", false, "record request/crawl spans in memory and serve them at /debug/trace in Chrome trace-event format")
	traceLimit := flag.Int("trace-limit", 65536, "span-buffer capacity with -trace; older spans beyond it are dropped (counted)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiles at /debug/pprof/")
	federate := flag.String("federate", "", "comma-separated authority=url member list; vdcd hosts a federated index over them")
	crawlEvery := flag.Duration("crawl-every", 30*time.Second, "federation crawl interval with -federate")
	exportBinary := flag.Bool("export-binary", true, "request the binary export representation when crawling -federate members; members that don't speak it negotiate down to JSON")
	maxExportBytes := flag.Int64("max-export-bytes", vds.DefaultMaxResponseBytes, "largest member export response the federation crawler accepts, in bytes; <0 removes the cap")
	flag.Parse()

	if err := obs.ParseLevelSpec(*logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "vdcd: -log-level: %v\n", err)
		os.Exit(2)
	}
	obs.SetLogOutput(os.Stderr, *logJSON)
	logger := obs.Logger("vdcd")
	obs.EnableRuntimeMetrics(obs.Default)

	cat, err := catalog.Open(*dir, dtype.StandardRegistry(), catalog.Options{
		Sync:           *syncWAL,
		MaxBatch:       *walBatch,
		MaxDelay:       *walDelay,
		JournalWindow:  *journalWindow,
		Shards:         *shards,
		SnapshotFormat: *snapshotFormat,
	})
	if err != nil {
		logger.Error("catalog open failed", "dir", *dir, "err", err)
		os.Exit(1)
	}

	stop := make(chan struct{})
	snapDone := make(chan struct{})
	if *snapshotEvery > 0 {
		ticker := time.NewTicker(*snapshotEvery)
		go func() {
			defer close(snapDone)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := cat.Snapshot(); err != nil {
						logger.Error("snapshot failed", "err", err)
					} else {
						logger.Debug("snapshot complete")
					}
				case <-stop:
					return
				}
			}
		}()
	} else {
		close(snapDone)
	}

	srv := vds.NewServer(*name, cat)
	srv.ReadOnly = *readonly

	// Grid-simulation and replication counters (events, queue resizes,
	// replicas created, evictions) are process-wide; expose them under
	// one /debug/vdc section. Federation (below) chains its own section.
	srv.OnDebug = func(info map[string]any) {
		stats := grid.DebugStats()
		for k, v := range planner.DebugStats() {
			stats[k] = v
		}
		info["grid"] = stats
	}

	var tracer *obs.Tracer
	if *traceOn {
		tracer = obs.NewTracer()
		tracer.Limit = *traceLimit
		srv.Tracer = tracer
	}

	// The server is the root handler; debug extras mount on an outer mux
	// so they stay out of the API surface (and its middleware) entirely.
	var handler http.Handler = srv
	if tracer != nil || *pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/", srv)
		if tracer != nil {
			outer.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				if err := tracer.WriteChromeTrace(w); err != nil {
					logger.Error("trace export failed", "err", err)
				}
			})
		}
		if *pprofOn {
			outer.HandleFunc("/debug/pprof/", pprof.Index)
			outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
			outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		handler = outer
	}

	// Optional federation: host an index over the listed members and
	// crawl it on a timer. Each pass runs under the tracer (when on), so
	// one crawl is one connected trace: crawl root, per-member fetches
	// (propagated to members via traceparent), apply and rebuild spans.
	crawlDone := make(chan struct{})
	if *federate != "" {
		ix := federation.NewIndex(*name+"-federation", "collaboration")
		for _, m := range strings.Split(*federate, ",") {
			m = strings.TrimSpace(m)
			if m == "" {
				continue
			}
			authority, url, ok := strings.Cut(m, "=")
			if !ok {
				logger.Error("bad -federate member, want authority=url", "member", m)
				os.Exit(2)
			}
			cl := vds.NewClient(strings.TrimSpace(url))
			cl.Binary = *exportBinary
			cl.MaxResponseBytes = *maxExportBytes
			ix.AddMember(strings.TrimSpace(authority), cl)
		}
		base := srv.OnDebug
		srv.OnDebug = func(info map[string]any) {
			base(info)
			info["federation"] = map[string]any{
				"members": ix.Members(),
				"crawls":  ix.Crawls(),
				"shards":  ix.ShardStates(),
				"stats":   ix.Stats(),
			}
		}
		flog := obs.Logger("federation")
		go func() {
			defer close(crawlDone)
			ticker := time.NewTicker(*crawlEvery)
			defer ticker.Stop()
			for {
				crawlCtx := context.Background()
				if tracer != nil {
					crawlCtx = obs.WithTracer(crawlCtx, tracer)
				}
				start := time.Now()
				if err := ix.CrawlContext(crawlCtx); err != nil {
					flog.Error("crawl failed", "err", err)
				} else {
					flog.Debug("crawl complete", "crawls", ix.Crawls(),
						"seconds", time.Since(start).Seconds())
				}
				select {
				case <-ticker.C:
				case <-stop:
					return
				}
			}
		}()
	} else {
		close(crawlDone)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	st := cat.Stats()
	logger.Info("serving catalog", "name", *name, "addr", *addr,
		"datasets", st.Datasets, "derivations", st.Derivations,
		"shards", cat.Shards(),
		"trace", *traceOn, "pprof", *pprofOn, "federate", *federate != "")

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		// Listener failed before any signal; still close the catalog.
		cat.Close()
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	close(stop)
	<-snapDone
	<-crawlDone

	// Compact and flush durable state, then log the final counters so
	// the last scrape isn't the only record of the run. Snapshot
	// quiesces the group committer before truncating the WAL, and Close
	// drains whatever was queued after it, so nothing acknowledged is
	// lost between the last request and process exit.
	if err := cat.Snapshot(); err != nil {
		logger.Error("final snapshot failed", "err", err)
	}
	if err := cat.Close(); err != nil && !errors.Is(err, os.ErrClosed) {
		logger.Error("wal close failed", "err", err)
	}
	var metrics strings.Builder
	if err := obs.Default.WritePrometheus(&metrics); err == nil {
		logger.Info("final metrics", "prometheus", metrics.String())
	}
	st = cat.Stats()
	logger.Info("shutdown complete", "datasets", st.Datasets,
		"derivations", st.Derivations, "invocations", st.Invocations)
}
