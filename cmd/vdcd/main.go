// Command vdcd serves a durable virtual data catalog over HTTP: the
// network face of one node in the virtual data grid. Other catalogs
// hyperlink to its objects with vdp:// references, federated indexes
// crawl it, and the chimera CLI (or any HTTP client) composes and
// queries it remotely.
//
// Operational endpoints: GET /metrics exposes the process metrics in
// Prometheus text format; GET /healthz reports liveness plus catalog
// stats. SIGINT/SIGTERM trigger a graceful drain: in-flight requests
// finish, the catalog is snapshotted, and the WAL is flushed closed.
//
// Durability is a group-commit WAL: mutations batch their log writes
// and (with -sync) share one fsync per batch; see docs/PERF.md for the
// -wal-batch / -wal-delay knobs.
//
// Usage:
//
//	vdcd -addr :8844 -dir /var/lib/vdc -name physics.example.edu [-readonly] [-sync]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/obs"
	"chimera/internal/vds"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	dir := flag.String("dir", "vdc-data", "catalog directory")
	name := flag.String("name", "vdc", "catalog authority name")
	readonly := flag.Bool("readonly", false, "reject mutations")
	syncWAL := flag.Bool("sync", false, "fsync the write-ahead log before acknowledging mutations (one fsync per commit batch)")
	walBatch := flag.Int("wal-batch", catalog.DefaultMaxBatch, "group-commit batch-size target; 1 disables group commit (inline per-op writes)")
	walDelay := flag.Duration("wal-delay", catalog.DefaultMaxDelay, "how long a contended commit batch stays open for stragglers; <0 disables the window")
	journalWindow := flag.Int("journal-window", catalog.DefaultJournalWindow, "change-journal entries retained for delta exports; crawlers further behind fall back to full exports")
	snapshotEvery := flag.Duration("snapshot-every", 10*time.Minute, "WAL compaction interval (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget for in-flight requests")
	flag.Parse()

	cat, err := catalog.Open(*dir, dtype.StandardRegistry(), catalog.Options{
		Sync:          *syncWAL,
		MaxBatch:      *walBatch,
		MaxDelay:      *walDelay,
		JournalWindow: *journalWindow,
	})
	if err != nil {
		log.Fatalf("vdcd: %v", err)
	}

	stop := make(chan struct{})
	snapDone := make(chan struct{})
	if *snapshotEvery > 0 {
		ticker := time.NewTicker(*snapshotEvery)
		go func() {
			defer close(snapDone)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := cat.Snapshot(); err != nil {
						log.Printf("vdcd: snapshot: %v", err)
					}
				case <-stop:
					return
				}
			}
		}()
	} else {
		close(snapDone)
	}

	srv := vds.NewServer(*name, cat)
	srv.ReadOnly = *readonly
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	st := cat.Stats()
	log.Printf("vdcd: serving catalog %q (%d datasets, %d derivations) on %s (metrics at /metrics)",
		*name, st.Datasets, st.Derivations, *addr)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		// Listener failed before any signal; still close the catalog.
		cat.Close()
		log.Fatalf("vdcd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("vdcd: shutting down")

	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("vdcd: drain: %v", err)
	}
	close(stop)
	<-snapDone

	// Compact and flush durable state, then log the final counters so
	// the last scrape isn't the only record of the run. Snapshot
	// quiesces the group committer before truncating the WAL, and Close
	// drains whatever was queued after it, so nothing acknowledged is
	// lost between the last request and process exit.
	if err := cat.Snapshot(); err != nil {
		log.Printf("vdcd: final snapshot: %v", err)
	}
	if err := cat.Close(); err != nil && !errors.Is(err, os.ErrClosed) {
		log.Printf("vdcd: wal close: %v", err)
	}
	var metrics strings.Builder
	if err := obs.Default.WritePrometheus(&metrics); err == nil {
		log.Printf("vdcd: final metrics:\n%s", metrics.String())
	}
	st = cat.Stats()
	log.Printf("vdcd: shutdown complete (%d datasets, %d derivations, %d invocations)",
		st.Datasets, st.Derivations, st.Invocations)
}
