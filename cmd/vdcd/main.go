// Command vdcd serves a durable virtual data catalog over HTTP: the
// network face of one node in the virtual data grid. Other catalogs
// hyperlink to its objects with vdp:// references, federated indexes
// crawl it, and the chimera CLI (or any HTTP client) composes and
// queries it remotely.
//
// Usage:
//
//	vdcd -addr :8844 -dir /var/lib/vdc -name physics.example.edu [-readonly]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/vds"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	dir := flag.String("dir", "vdc-data", "catalog directory")
	name := flag.String("name", "vdc", "catalog authority name")
	readonly := flag.Bool("readonly", false, "reject mutations")
	syncWAL := flag.Bool("sync", false, "fsync the write-ahead log on every mutation")
	snapshotEvery := flag.Duration("snapshot-every", 10*time.Minute, "WAL compaction interval (0 disables)")
	flag.Parse()

	cat, err := catalog.Open(*dir, dtype.StandardRegistry(), catalog.Options{Sync: *syncWAL})
	if err != nil {
		log.Fatalf("vdcd: %v", err)
	}
	defer cat.Close()

	if *snapshotEvery > 0 {
		go func() {
			for range time.Tick(*snapshotEvery) {
				if err := cat.Snapshot(); err != nil {
					log.Printf("vdcd: snapshot: %v", err)
				}
			}
		}()
	}

	srv := vds.NewServer(*name, cat)
	srv.ReadOnly = *readonly
	st := cat.Stats()
	log.Printf("vdcd: serving catalog %q (%d datasets, %d derivations) on %s",
		*name, st.Datasets, st.Derivations, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
