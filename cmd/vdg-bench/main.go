// Command vdg-bench runs the experiment harness at paper scale and
// prints one results table per experiment (E1–E18 in DESIGN.md). The
// tables reproduce the shapes of the paper's evaluation claims; the
// recorded outputs live in EXPERIMENTS.md.
//
// Usage:
//
//	vdg-bench [-run E3] [-scale small|paper] [-markdown] [-trace out.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chimera/internal/bench"
	"chimera/internal/obs"
)

type experiment struct {
	id    string
	small func() (bench.Table, error)
	paper func() (bench.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"E1",
			func() (bench.Table, error) { return bench.E1HEP([]int{10, 100}) },
			func() (bench.Table, error) { return bench.E1HEP([]int{10, 100, 1000}) }},
		{"E2",
			func() (bench.Table, error) { return bench.E2ProvenanceScale([]int{100, 1000, 10000}) },
			func() (bench.Table, error) { return bench.E2ProvenanceScale([]int{100, 1000, 10000, 100000}) }},
		{"E3",
			func() (bench.Table, error) { return bench.E3SDSS(100, []int{1, 4, 16, 60}) },
			func() (bench.Table, error) { return bench.E3SDSS(1200, []int{1, 2, 5, 10, 30, 60, 120}) }},
		{"E4",
			func() (bench.Table, error) { return bench.E4Reuse([]float64{0, 0.5, 1}) },
			func() (bench.Table, error) { return bench.E4Reuse([]float64{0, 0.25, 0.5, 0.75, 0.9, 1}) }},
		{"E5",
			func() (bench.Table, error) { return bench.E5Replication(100, 20) },
			func() (bench.Table, error) { return bench.E5Replication(500, 50) }},
		{"E6",
			func() (bench.Table, error) { return bench.E6Estimator([]int{0, 10, 100}) },
			func() (bench.Table, error) { return bench.E6Estimator([]int{0, 1, 10, 100, 1000}) }},
		{"E7",
			func() (bench.Table, error) { return bench.E7Federation([]int{2, 4, 8}) },
			func() (bench.Table, error) { return bench.E7Federation([]int{2, 4, 8, 16, 32, 64}) }},
		{"E8",
			func() (bench.Table, error) { return bench.E8Trust([]int{1000}) },
			func() (bench.Table, error) { return bench.E8Trust([]int{1000, 10000, 50000}) }},
		{"E9",
			func() (bench.Table, error) { return bench.E9Shipping([]int64{1e6, 100e6, 10e9}) },
			func() (bench.Table, error) {
				return bench.E9Shipping([]int64{1e6, 10e6, 100e6, 1e9, 3e9, 10e9, 100e9})
			}},
		{"E10",
			func() (bench.Table, error) { return bench.E10VDL([]int{100, 1000}) },
			func() (bench.Table, error) { return bench.E10VDL([]int{100, 1000, 10000}) }},
		{"E11",
			func() (bench.Table, error) { return bench.E11Ingest([]int{1, 4, 16}, 50) },
			func() (bench.Table, error) { return bench.E11Ingest([]int{1, 4, 16, 64}, 200) }},
		{"E12",
			func() (bench.Table, error) { return bench.E12Query([]int{1000, 10000}, 20) },
			func() (bench.Table, error) { return bench.E12Query([]int{1000, 10000, 100000}, 50) }},
		{"E13",
			func() (bench.Table, error) { return bench.E13Sched([]int{1000, 5000}, 150) },
			func() (bench.Table, error) { return bench.E13Sched([]int{1000, 5000, 20000}, 400) }},
		{"E14",
			func() (bench.Table, error) { return bench.E14Federation([]int{4, 8}, 50) },
			func() (bench.Table, error) { return bench.E14Federation([]int{4, 16, 64}, 200) }},
		{"E15",
			func() (bench.Table, error) {
				return bench.E15Shards([]int{1, 4, 8}, 8, 60, 200*time.Microsecond)
			},
			func() (bench.Table, error) {
				return bench.E15Shards([]int{1, 2, 4, 8, 16}, 8, 150, time.Millisecond)
			}},
		{"E16",
			func() (bench.Table, error) { return bench.E16Codec([]int{20000, 100000}, 0.01) },
			func() (bench.Table, error) { return bench.E16Codec([]int{100000, 1000000}, 0.01) }},
		{"E17",
			func() (bench.Table, error) { return bench.E17DynamicReplication([]int{200, 1000}, 2) },
			func() (bench.Table, error) { return bench.E17DynamicReplication([]int{1000, 10000}, 2) }},
		{"E18",
			func() (bench.Table, error) {
				return bench.E18Analysts([]int{1, 16}, 60, 250*time.Millisecond)
			},
			func() (bench.Table, error) {
				return bench.E18Analysts([]int{1, 16, 256}, 100, 750*time.Millisecond)
			}},
		{"A1",
			func() (bench.Table, error) { return bench.A1IndexVsScan([]int{500, 2000}) },
			func() (bench.Table, error) { return bench.A1IndexVsScan([]int{500, 2000, 10000}) }},
		{"A2",
			func() (bench.Table, error) { return bench.A2PendingLoad(100, 16) },
			func() (bench.Table, error) { return bench.A2PendingLoad(600, 60) }},
		{"A3",
			func() (bench.Table, error) { return bench.A3PlannerOff(2000, 20) },
			func() (bench.Table, error) { return bench.A3PlannerOff(10000, 50) }},
	}
}

func main() {
	run := flag.String("run", "all", "experiment to run (E1..E18, A1..A3, or all)")
	scale := flag.String("scale", "paper", "parameter scale: small or paper")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	tracePath := flag.String("trace", "", "write a Chrome trace with one span per experiment")
	flag.Parse()

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	ctx := obs.WithTracer(context.Background(), tracer)

	any := false
	for _, ex := range experiments() {
		if *run != "all" && !strings.EqualFold(*run, ex.id) {
			continue
		}
		any = true
		f := ex.paper
		if *scale == "small" {
			f = ex.small
		}
		start := time.Now()
		_, span := obs.StartSpan(ctx, ex.id)
		span.SetAttr("scale", *scale)
		tab, err := f()
		span.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab.String())
		}
		fmt.Printf("(%s completed in %v)\n\n", ex.id, time.Since(start).Round(time.Millisecond))
		// CI consumes these experiments' headline numbers as artifacts.
		if ex.id == "E15" || ex.id == "E16" || ex.id == "E17" || ex.id == "E18" {
			name := "BENCH_" + ex.id + ".json"
			data, err := json.MarshalIndent(tab, "", "  ")
			if err == nil {
				err = os.WriteFile(name, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println("wrote " + name)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
	if tracer != nil {
		if err := tracer.WriteChromeTraceFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace to %s\n", *tracePath)
	}
}
