// Package chimera is a from-scratch Go implementation of the virtual
// data grid of Foster, Vöckler, Wilde and Zhao, "The Virtual Data
// Grid: A New Model and Architecture for Data-Intensive Collaboration"
// (CIDR 2003) — the architecture behind the Chimera virtual data
// system.
//
// The module root carries only documentation and the experiment
// benchmarks (bench_test.go); the implementation lives under internal/
// and the runnable tools under cmd/ and examples/. See README.md for a
// tour and DESIGN.md for the system inventory.
package chimera
