package chimera

// One testing.B benchmark per experiment in DESIGN.md's per-experiment
// index. Each benchmark regenerates its experiment's results table (at
// reduced scale so -bench=. stays tractable); cmd/vdg-bench runs the
// full paper-scale sweeps and prints the tables recorded in
// EXPERIMENTS.md.

import (
	"testing"
	"time"

	"chimera/internal/bench"
)

func runTable(b *testing.B, f func() (bench.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE1HEPPipeline regenerates E1: CMS four-stage pipeline
// provenance capture (§6, Chimera-0 validation).
func BenchmarkE1HEPPipeline(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E1HEP([]int{10, 100}) })
}

// BenchmarkE2ProvenanceScale regenerates E2: provenance tracking on
// large synthetic dependency graphs (§6, canonical applications).
func BenchmarkE2ProvenanceScale(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E2ProvenanceScale([]int{100, 1000, 10000}) })
}

// BenchmarkE3SDSSCampaign regenerates E3: the SDSS cluster-finding
// campaign makespan-vs-hosts sweep (§6 / ref [1]).
func BenchmarkE3SDSSCampaign(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E3SDSS(100, []int{1, 4, 16, 60}) })
}

// BenchmarkE4Reuse regenerates E4: virtual-data reuse under
// overlapping request mixes (§1, §5.2).
func BenchmarkE4Reuse(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E4Reuse([]float64{0, 0.5, 0.9, 1}) })
}

// BenchmarkE5Replication regenerates E5: the dynamic replication
// strategy ablation (§5.2, refs [18,19]).
func BenchmarkE5Replication(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E5Replication(100, 20) })
}

// BenchmarkE6Estimator regenerates E6: estimator accuracy vs
// invocation history (§5.3).
func BenchmarkE6Estimator(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E6Estimator([]int{0, 1, 10, 100, 1000}) })
}

// BenchmarkE7Federation regenerates E7: federated-index discovery and
// cross-catalog lineage (§4.1, Figures 2–4).
func BenchmarkE7Federation(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E7Federation([]int{2, 8}) })
}

// BenchmarkE8Trust regenerates E8: signature overhead and tamper
// rejection (§4.2).
func BenchmarkE8Trust(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E8Trust([]int{1000}) })
}

// BenchmarkE9Shipping regenerates E9: the data-vs-procedure shipping
// crossover (§5.2's four patterns).
func BenchmarkE9Shipping(b *testing.B) {
	runTable(b, func() (bench.Table, error) {
		return bench.E9Shipping([]int64{1e6, 100e6, 1e9, 10e9})
	})
}

// BenchmarkE10VDL regenerates E10: VDL round-trip and compound
// expansion throughput (Appendix A).
func BenchmarkE10VDL(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E10VDL([]int{1000}) })
}

// BenchmarkE11Ingest regenerates E11: concurrent catalog ingest
// throughput, group-commit WAL vs per-op fsync (docs/PERF.md). Kept
// small so the -race CI smoke run exercises every durability mode in
// seconds.
func BenchmarkE11Ingest(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E11Ingest([]int{1, 4, 16}, 50) })
}

// BenchmarkE12Query regenerates E12: indexed discovery vs full scan,
// plus query throughput under concurrent ingest (docs/PERF.md). Kept
// small so the -race CI smoke run finishes in seconds.
func BenchmarkE12Query(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E12Query([]int{1000}, 5) })
}

// BenchmarkE13Sched regenerates E13: scheduler event throughput with
// the incremental ready-frontier vs the full-rescan dispatcher, plus
// WAL batch occupancy under pipelined recording (docs/PERF.md). Kept
// small so the -race CI smoke run finishes in seconds.
func BenchmarkE13Sched(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E13Sched([]int{500, 2000}, 100) })
}

// BenchmarkFederationCrawl regenerates E14: sequential full-export
// crawl vs parallel incremental delta crawl, including warm unchanged
// passes and a concurrent-ingest storm (docs/PERF.md). Kept small so
// the -race CI smoke run finishes in seconds.
func BenchmarkFederationCrawl(b *testing.B) {
	runTable(b, func() (bench.Table, error) { return bench.E14Federation([]int{4, 8}, 50) })
}

// BenchmarkE15Shards regenerates E15: sharded-catalog ingest scaling
// across shard counts and durability modes, with modeled stable-storage
// commit latency (docs/PERF.md). Kept small so the -race CI smoke run
// exercises the scatter-gather and per-shard WAL paths in seconds.
func BenchmarkE15Shards(b *testing.B) {
	runTable(b, func() (bench.Table, error) {
		return bench.E15Shards([]int{1, 8}, 8, 30, 200*time.Microsecond)
	})
}

// BenchmarkE16Codec regenerates E16: binary vs JSON catalog codec —
// snapshot bytes, cold-start decode, and delta body bytes
// (docs/PERF.md, "Binary catalog format"). Kept small so the -race CI
// smoke run covers both codecs' encode and decode paths in seconds.
func BenchmarkE16Codec(b *testing.B) {
	runTable(b, func() (bench.Table, error) {
		return bench.E16Codec([]int{10000}, 0.05)
	})
}

// BenchmarkAnalystStorm regenerates E18: the concurrent-analyst storm —
// locked ordered-snapshot reads vs the lock-free epoch path with the
// plan/result cache, under sustained ingest (docs/PERF.md, "Concurrent
// read path"). Kept small (short windows, two analyst counts) so the
// -race CI smoke run drives epoch acquisition, cache hits, and the
// executor dedup fast path under real concurrency in seconds.
func BenchmarkAnalystStorm(b *testing.B) {
	runTable(b, func() (bench.Table, error) {
		return bench.E18Analysts([]int{1, 8}, 40, 100*time.Millisecond)
	})
}

// BenchmarkE17Replication regenerates E17: the dynamic-replication
// shoot-out (none vs popularity vs economy eviction) on the 48-site
// hierarchical testbed (docs/PERF.md, "Grid simulator at scale"). Kept
// small so the -race CI smoke run covers the popularity tracker,
// reclaim economics, and hierarchy-aware placement in seconds.
func BenchmarkE17Replication(b *testing.B) {
	runTable(b, func() (bench.Table, error) {
		return bench.E17DynamicReplication([]int{200}, 2)
	})
}
