// sdss reproduces the paper's second application study (§6 / ref [1]):
// the Sloan Digital Sky Survey galaxy-cluster search. A sky of survey
// fields flows through the MaxBCG pipeline (brgSearch, bcgSearch with a
// neighbor window, getClusters, per-stripe merges) on the four-site
// simulated testbed, with the request planner choosing sites and a
// caching replication policy keeping popular field data near the work.
package main

import (
	"fmt"
	"log"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/grid"
	"chimera/internal/planner"
	"chimera/internal/workload"
)

func main() {
	// The four-site testbed; the campaign is allowed 120 hosts, as in
	// the paper's largest workflows.
	g, err := grid.FourSiteTestbed([4]int{30, 30, 30, 30})
	if err != nil {
		log.Fatal(err)
	}

	// 400 fields -> 1202-node campaign in stripe DAGs.
	w := workload.SDSS(workload.SDSSParams{Fields: 400, Window: 2, StripeSize: 200, Seed: 7})
	cat := catalog.New(nil)
	if err := w.Install(cat); err != nil {
		log.Fatal(err)
	}
	// The survey archive lives at fnal.
	if err := w.PlacePrimary(cat, []string{"fnal"}); err != nil {
		log.Fatal(err)
	}

	cl := grid.NewCluster(g, grid.NewSim(7))
	est := estimator.New(60)
	w.SeedEstimator(est, 3)
	pl := planner.New(cat, est, cl)
	pl.Replication = planner.CacheAtClient{}

	graph, err := dag.Build(w.Derivations, cat.Resolver())
	if err != nil {
		log.Fatal(err)
	}
	st := graph.Stats()
	fmt.Printf("campaign: %d derivations, DAG depth %d, width %d, %d primary fields\n",
		st.Nodes, st.Depth, st.Width, len(w.Primary))

	ex := &executor.Executor{
		Driver:     executor.NewSimDriver(cl),
		Assign:     pl.Assign,
		OnEvent:    pl.OnEvent,
		Catalog:    cat,
		MaxRetries: 2,
	}
	rep, err := ex.Run(graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d jobs in simulated %.0fs (%.1f hours)\n",
		rep.Completed, rep.Makespan, rep.Makespan/3600)
	fmt.Printf("WAN traffic: %.1f GB staged across sites; %d retries\n",
		float64(cl.TransferredBytes)/1e9, rep.Retries)

	// Where did the work land?
	bySite := map[string]int{}
	for _, r := range rep.Results {
		bySite[r.Site]++
	}
	fmt.Println("job placement by site:")
	for _, site := range g.Sites() {
		fmt.Printf("  %-10s %4d jobs\n", site, bySite[site])
	}

	// Per-point lineage: the paper's goal of a "detailed data lineage
	// report" for each final data point.
	target := w.Targets[0]
	lin, err := cat.Lineage(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlineage of %s: %d derivation steps back to %d raw fields\n",
		target, len(lin.Steps), len(lin.PrimarySources))

	// Everything is now materialized: a repeat campaign is free.
	plan, err := cat.MaterializationPlan(target, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-requesting %s needs %d new derivations (virtual data reuse)\n",
		target, len(plan))
}
