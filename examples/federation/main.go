// federation demonstrates the distributed architecture of §4 (Figures
// 2–4): three catalog services at personal, group and collaboration
// scope; vdp:// hyperlinks between them; transformation import across
// servers; a federated index answering discovery over all three; and
// signed, quality-annotated entries filtered by trust policy.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"chimera/internal/catalog"
	"chimera/internal/federation"
	"chimera/internal/schema"
	"chimera/internal/trust"
	"chimera/internal/vds"
)

func twoArg(ns, name string) schema.Transformation {
	return schema.Transformation{Namespace: ns, Name: name, Kind: schema.Simple,
		Exec: "/grid/bin/" + name,
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out},
			{Name: "in", Direction: schema.In},
		}}
}

func derive(tr, in, out string) schema.Derivation {
	return schema.Derivation{TR: tr, Params: map[string]schema.Actual{
		"out": schema.DatasetActual("output", out),
		"in":  schema.DatasetActual("input", in),
	}}
}

func main() {
	// Three catalogs, served over HTTP.
	collab := catalog.New(nil)
	group := catalog.New(nil)
	personal := catalog.New(nil)
	collabSrv := httptest.NewServer(vds.NewServer("collab.griphyn.org", collab))
	groupSrv := httptest.NewServer(vds.NewServer("group.uchicago.edu", group))
	personalSrv := httptest.NewServer(vds.NewServer("laptop.home", personal))
	defer collabSrv.Close()
	defer groupSrv.Close()
	defer personalSrv.Close()

	reg := vds.NewRegistry()
	reg.Register("collab.griphyn.org", collabSrv.URL)
	reg.Register("group.uchicago.edu", groupSrv.URL)
	reg.Register("laptop.home", personalSrv.URL)

	// Collaboration: official reconstruction of raw instrument data.
	must(collab.AddTransformation(twoArg("official", "reconstruct")))
	_, err := collab.AddDerivation(derive("official::reconstruct", "raw-2002", "official-events"))
	must(err)

	// Group: a skim defined over the collaboration's product, linked by
	// a vdp hyperlink (Figure 3's cross-server dependency).
	must(group.AddTransformation(twoArg("uc", "skim")))
	_, err = group.AddDerivation(derive("uc::skim",
		"vdp://collab.griphyn.org/official-events", "muon-skim"))
	must(err)

	// Personal: analysis over the group skim.
	must(personal.AddTransformation(twoArg("me", "histogram")))
	_, err = personal.AddDerivation(derive("me::histogram",
		"vdp://group.uchicago.edu/muon-skim", "my-plot"))
	must(err)

	// Cross-catalog lineage: my-plot traces through all three servers.
	lin, err := federation.Lineage(reg, "laptop.home", "my-plot", 5)
	must(err)
	fmt.Println("distributed lineage of my-plot:")
	for _, step := range lin.Steps {
		fmt.Printf("  hop %d @ %-22s %s -> %v\n",
			step.Hop, step.Authority, step.Step.TR, step.Step.Outputs)
	}
	fmt.Printf("primary sources: %v\n\n", lin.PrimarySources)

	// Federated index (Figure 4): one query spans all catalogs.
	ix := federation.NewIndex("collab-wide", "collaboration")
	ix.AddMember("collab.griphyn.org", vds.NewClient(collabSrv.URL))
	ix.AddMember("group.uchicago.edu", vds.NewClient(groupSrv.URL))
	ix.AddMember("laptop.home", vds.NewClient(personalSrv.URL))
	must(ix.Crawl())
	hits, err := ix.SearchDatasets("derived")
	must(err)
	fmt.Println("federated discovery (derived datasets everywhere):")
	for _, h := range hits {
		fmt.Printf("  %-18s @ %s\n", h.Name, h.Authority)
	}

	// Incremental re-crawl: the index keeps a per-member shard cursor,
	// so a re-crawl asks each catalog only for changes since the last
	// pass (GET /v1/export?since=...). Unchanged members answer with a
	// header-only "unchanged" delta, and if nobody changed the shadow
	// is not rebuilt at all.
	must(group.AddDataset(schema.Dataset{Name: "muon-skim-v2",
		Attrs: schema.Attributes{"quality": "draft"}}))
	must(ix.Crawl())
	if e, ok := ix.Lookup("dataset", "muon-skim-v2"); ok {
		fmt.Printf("\ndelta re-crawl #%d picked up %s @ %s (other members: one round-trip, zero re-import)\n",
			ix.Crawls(), e.Name, e.Authority)
	}

	// Transformation import (Figure 2): the personal catalog pulls the
	// group's skim transformation to run it locally.
	tr, err := vds.ImportTransformation(personal, reg, "vdp://group.uchicago.edu/uc::skim")
	must(err)
	fmt.Printf("\nimported %s from %s\n", tr.Ref(), tr.Attrs["importedFrom"])

	// Quality and security (§4.2): the collaboration office signs and
	// annotates the official product; a consumer's trust policy accepts
	// entries only with a trusted signature.
	office, err := trust.NewAuthority("collab-office")
	must(err)
	ledger := trust.NewLedger()
	ds, err := collab.Dataset("official-events")
	must(err)
	payload, err := schema.CanonicalBytes(ds)
	must(err)
	ledger.Attach(trust.KindDataset, ds.Name, office.SignEntry(trust.KindDataset, ds.Name, payload))
	ledger.AddAnnotation(office.Annotate(trust.KindDataset, ds.Name, "quality", "approved"))

	store := trust.NewStore()
	store.AddRoot(office.Authority)
	policy := trust.RequireSigners(ledger, store, 1)
	fmt.Printf("\ntrust policy accepts official-events: %v\n",
		policy(trust.KindDataset, ds.Name, payload))
	fmt.Printf("quality assertions: %v\n",
		ledger.QualityOf(store, trust.KindDataset, ds.Name, "quality"))

	// An unsigned personal product fails the same policy.
	myPlot, err := personal.Dataset("my-plot")
	must(err)
	plotPayload, _ := schema.CanonicalBytes(myPlot)
	fmt.Printf("trust policy accepts my-plot (unsigned): %v\n",
		policy(trust.KindDataset, myPlot.Name, plotPayload))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
