// interactive reproduces the analysis model the paper describes as
// work-in-progress in §6: iterating in an unstructured manner over a
// small number of changeable analysis codes — select interesting
// events, produce "cut sets", histogram them — with the catalog
// tracking every iteration, answering per-point lineage queries, and
// (via §8's equivalence model) recognizing when a new code version can
// reuse an old version's products.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"chimera/internal/core"
	"chimera/internal/executor"
	"chimera/internal/schema"
)

const analysisVDL = `
TYPE content HEP;
TYPE content Events extends HEP;
TYPE content CutSet extends HEP;
TYPE content Histogram extends HEP;

DS events<Events> file "events" size "120";

TR select:1.0( output o<CutSet>, input i<Events>, none ptcut="20" ) {
  argument c = "-pt "${none:ptcut};
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/analysis/bin/select";
}
TR histogram( output o<Histogram>, input i<CutSet>, none bins="10" ) {
  argument b = "-bins "${none:bins};
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/analysis/bin/histogram";
}
`

func main() {
	ws, err := os.MkdirTemp("", "chimera-interactive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ws)

	sys := core.NewLocal("laptop", ws, nil)
	if err := sys.LoadVDL(analysisVDL); err != nil {
		log.Fatal(err)
	}

	// Local implementations: events are one integer pt value per line;
	// select keeps lines above the cut; histogram counts per bin.
	sys.Register("select", func(t executor.Task) error {
		cut := atoiDefault(flagValue(t.Args, "-pt"), 20)
		data, err := os.ReadFile(filepath.Join(t.Workspace, t.Node.Inputs[0]))
		if err != nil {
			return err
		}
		var keep []string
		for _, line := range strings.Fields(string(data)) {
			if v, err := strconv.Atoi(line); err == nil && v >= cut {
				keep = append(keep, line)
			}
		}
		return os.WriteFile(filepath.Join(t.Workspace, t.Node.Outputs[0]),
			[]byte(strings.Join(keep, "\n")+"\n"), 0o644)
	})
	sys.Register("histogram", func(t executor.Task) error {
		data, err := os.ReadFile(filepath.Join(t.Workspace, t.Node.Inputs[0]))
		if err != nil {
			return err
		}
		counts := map[int]int{}
		for _, line := range strings.Fields(string(data)) {
			if v, err := strconv.Atoi(line); err == nil {
				counts[v/10]++
			}
		}
		var b strings.Builder
		for bin := 0; bin < 10; bin++ {
			fmt.Fprintf(&b, "bin%d %d\n", bin, counts[bin])
		}
		return os.WriteFile(filepath.Join(t.Workspace, t.Node.Outputs[0]), []byte(b.String()), 0o644)
	})

	// Simulated detector data: pt values.
	events := "5 12 22 31 8 45 27 19 38 51 14 29 33 7 41 26"
	if err := os.WriteFile(filepath.Join(ws, "events"), []byte(events), 0o644); err != nil {
		log.Fatal(err)
	}

	// Iteration 1: loose cut.
	defineAndRun(sys, "select:1.0", "cuts.loose", "20", "hist.loose")
	// Iteration 2: tighter cut — a different derivation, tracked
	// separately; nothing is overwritten.
	defineAndRun(sys, "select:1.0", "cuts.tight", "30", "hist.tight")

	fmt.Println("two analysis iterations tracked:")
	for _, h := range []string{"hist.loose", "hist.tight"} {
		lin, err := sys.Lineage(h)
		if err != nil {
			log.Fatal(err)
		}
		cutStep := lin.Steps[1]
		fmt.Printf("  %s <- %s(ptcut=%s) <- %s\n",
			h, cutStep.TR, cutStep.Derivation.Params["ptcut"].Value, lin.PrimarySources[0])
	}

	// The physicist patches select (1.0 -> 1.1) with a change that does
	// not affect results, and the group asserts equivalence. A request
	// under 1.1 with the same arguments is satisfied by the recorded
	// 1.0 product — no recomputation.
	sel11 := schema.Transformation{
		Name: "select", Version: "1.1", Kind: schema.Simple,
		Exec: "/analysis/bin/select", // same interface, faster internals
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
			{Name: "ptcut", Direction: schema.None, Default: strPtr("20")},
		},
	}
	if err := sys.Cat.AddTransformation(sel11); err != nil {
		log.Fatal(err)
	}
	if err := sys.Cat.AssertCompatibility(schema.CompatibilityAssertion{
		Name: "select", V1: "1.0", V2: "1.1", Mode: schema.Equivalent, AssertedBy: "analysis-group",
	}); err != nil {
		log.Fatal(err)
	}
	request := schema.Derivation{TR: "select:1.1", Params: map[string]schema.Actual{
		"o":     schema.DatasetActual("output", "cuts.tight"),
		"i":     schema.DatasetActual("input", "events"),
		"ptcut": schema.StringActual("30"),
	}}
	if found, via, ok := sys.Cat.FindEquivalentDerivation(request); ok {
		fmt.Printf("\nrequest under select:1.1 satisfied by existing derivation %s (computed under %s)\n",
			found.ID[:12], via)
	} else {
		log.Fatal("equivalence lookup failed")
	}

	// Per-point lineage: which raw events fed bin3 of hist.tight? The
	// paper's goal — "for each data point in the final graph, a detailed
	// data lineage report".
	lin, err := sys.Lineage("hist.tight")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-point audit trail for hist.tight: %d derivations back to %v\n",
		len(lin.Steps), lin.PrimarySources)
	hist, _ := os.ReadFile(filepath.Join(ws, "hist.tight"))
	fmt.Printf("histogram contents:\n%s", hist)
}

func defineAndRun(sys *core.System, tr, cutset, ptcut, hist string) {
	if _, err := sys.Define(schema.Derivation{TR: tr, Params: map[string]schema.Actual{
		"o":     schema.DatasetActual("output", cutset),
		"i":     schema.DatasetActual("input", "events"),
		"ptcut": schema.StringActual(ptcut),
	}}); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Define(schema.Derivation{TR: "histogram", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", hist),
		"i": schema.DatasetActual("input", cutset),
	}}); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Materialize(hist); err != nil {
		log.Fatal(err)
	}
}

func flagValue(args []string, flag string) string {
	for _, a := range args {
		if strings.HasPrefix(a, flag+" ") {
			return strings.TrimSpace(strings.TrimPrefix(a, flag+" "))
		}
	}
	return ""
}

func atoiDefault(s string, def int) int {
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

func strPtr(v string) *schema.Actual {
	a := schema.StringActual(v)
	return &a
}
