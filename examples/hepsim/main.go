// hepsim reproduces the paper's first application study (§6): the CMS
// high-energy-physics event simulation chain — four program stages with
// intermediate and final results passing between them as files — run as
// a campaign on a simulated Grid site, with the virtual data catalog
// capturing complete provenance and the estimator answering "how long
// would more runs take?".
package main

import (
	"fmt"
	"log"
	"strings"

	"chimera/internal/core"
	"chimera/internal/grid"
	"chimera/internal/schema"
	"chimera/internal/workload"
)

func main() {
	// One site with 32 worker nodes.
	g := grid.NewGrid()
	if _, err := g.AddSite("tier1", 1e15); err != nil {
		log.Fatal(err)
	}
	if err := g.AddHosts("tier1", "wn", 32, 1.0, 1); err != nil {
		log.Fatal(err)
	}
	sys := core.NewSimulated("cms-prod", g, 42, nil)

	// Compose the campaign: 50 runs of the four-stage pipeline with a
	// final histogram merge.
	w := workload.CMS(workload.CMSParams{Runs: 50, EventsPerRun: 500, Merge: true})
	if err := w.Install(sys.Cat); err != nil {
		log.Fatal(err)
	}
	w.SeedEstimator(sys.Est, 3)
	fmt.Printf("composed %d derivations over %d transformations\n",
		len(w.Derivations), len(w.Transformations))

	// Estimate before running (§5.3: "can it be computed in the time
	// the user is willing to wait?").
	est, err := sys.Estimate("histograms", 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate on 32 hosts: makespan %.0fs (total work %.0fs, critical path %.0fs)\n",
		est.Makespan, est.TotalWork, est.CriticalPath)

	// Derive.
	results, err := sys.Materialize("histograms")
	if err != nil {
		log.Fatal(err)
	}
	rep := results[0].Report
	fmt.Printf("executed %d jobs, simulated makespan %.0fs\n", rep.Completed, rep.Makespan)

	// Provenance: every point in the final histogram traces to its
	// generator runs.
	lin, err := sys.Lineage("histograms")
	if err != nil {
		log.Fatal(err)
	}
	stageCount := map[string]int{}
	for _, step := range lin.Steps {
		stageCount[step.TR]++
	}
	fmt.Println("lineage of histograms by stage:")
	for tr, n := range stageCount {
		fmt.Printf("  %-14s %d derivations\n", tr, n)
	}
	fmt.Printf("primary roots: %d (pure generators)\n", len(lin.PrimarySources))

	// Discovery over provenance: which derivations consumed run 7's
	// simulated events?
	hits, err := sys.SearchDerivations(`consumes(fz.run7)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderivations consuming fz.run7: %d (%s)\n", len(hits), hits[0].TR)

	// The calibration-error question: generator run 7 was misconfigured.
	cl, err := sys.Invalidate("kin.run7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bad kin.run7 invalidates %d downstream datasets: %s ...\n",
		len(cl.Datasets), strings.Join(cl.Datasets[:3], ", "))

	// Define one replacement run and materialize only what is missing.
	fix := schema.Derivation{TR: "cms::cmkin", Params: map[string]schema.Actual{
		"out":     schema.DatasetActual("output", "kin.run7.fixed"),
		"run":     schema.StringActual("7-fixed"),
		"nevents": schema.StringActual("500"),
	}}
	if _, err := sys.Define(fix); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Materialize("kin.run7.fixed")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replacement run executed %d job(s); catalog now holds %d invocations\n",
		res[0].Report.Completed, sys.Cat.Stats().Invocations)
}
