// Quickstart: compose a two-stage pipeline in VDL, execute it against
// real files on the local machine, then ask the catalog the questions
// the paper opens with — where did this data come from, and what must
// be recomputed if an input goes bad?
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"chimera/internal/core"
	"chimera/internal/executor"
)

const pipeline = `
TYPE content Text;
TYPE content Words extends Text;

DS corpus<Words> file "corpus" size "60";

TR tokenize( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/usr/bin/tokenize";
}
TR count( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/usr/bin/count";
}

DV tok->tokenize( i=@{input:"corpus"}, o=@{output:"tokens"} );
DV cnt->count( i=@{input:"tokens"}, o=@{output:"wordcount"} );
`

func main() {
	ws, err := os.MkdirTemp("", "chimera-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ws)

	// A local-mode virtual data system: transformations run as Go
	// functions against files in the workspace.
	sys := core.NewLocal("quickstart", ws, nil)
	if err := sys.LoadVDL(pipeline); err != nil {
		log.Fatal(err)
	}
	sys.Register("tokenize", func(t executor.Task) error {
		data, err := os.ReadFile(filepath.Join(t.Workspace, t.Node.Inputs[0]))
		if err != nil {
			return err
		}
		out := strings.Join(strings.Fields(string(data)), "\n")
		return os.WriteFile(filepath.Join(t.Workspace, t.Node.Outputs[0]), []byte(out), 0o644)
	})
	sys.Register("count", func(t executor.Task) error {
		data, err := os.ReadFile(filepath.Join(t.Workspace, t.Node.Inputs[0]))
		if err != nil {
			return err
		}
		n := 0
		if len(data) > 0 {
			n = len(strings.Split(strings.TrimSpace(string(data)), "\n"))
		}
		return os.WriteFile(filepath.Join(t.Workspace, t.Node.Outputs[0]),
			[]byte(fmt.Sprintf("%d words\n", n)), 0o644)
	})

	// Stage the primary data.
	corpus := "the virtual data grid tracks how every dataset was derived"
	if err := os.WriteFile(filepath.Join(ws, "corpus"), []byte(corpus), 0o644); err != nil {
		log.Fatal(err)
	}

	// Request the virtual data product; the system plans and runs the
	// two derivations in dependency order.
	results, err := sys.Materialize("wordcount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized wordcount: reused=%v, jobs=%d\n",
		results[0].Reused, results[0].Report.Completed)
	out, _ := os.ReadFile(filepath.Join(ws, "wordcount"))
	fmt.Printf("content: %s", out)

	// Provenance: the complete audit trail.
	lin, err := sys.Lineage("wordcount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlineage of wordcount:")
	for _, step := range lin.Steps {
		fmt.Printf("  depth %d: %s(%s) -> %s  [%d recorded run(s)]\n",
			step.Depth, step.TR, strings.Join(step.Inputs, ","),
			strings.Join(step.Outputs, ","), len(step.Invocations))
	}
	fmt.Printf("primary sources: %s\n", strings.Join(lin.PrimarySources, ", "))

	// The calibration-error question.
	cl, err := sys.Invalidate("corpus")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nif corpus were bad, recompute: %s\n", strings.Join(cl.Datasets, ", "))

	// Re-requesting is pure reuse: no jobs run.
	results, err = sys.Materialize("wordcount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond request: reused=%v (no computation)\n", results[0].Reused)
}
