package core

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/executor"
	"chimera/internal/grid"
	"chimera/internal/schema"
	"chimera/internal/vds"
	"chimera/internal/workload"
)

const pipelineVDL = `
TYPE content Events;
TYPE content Raw extends Events;
DS source<Raw> size "1000000";
TR cook( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/cook";
}
TR doublecook( input i, inout mid=@{inout:"mid":""}, output o ) {
  cook( o=${output:mid}, i=${i} );
  cook( o=${o}, i=${input:mid} );
}
DV first->doublecook( i=@{input:"source"}, o=@{output:"refined"} );
`

func newSimSystem(t *testing.T) *System {
	t.Helper()
	g := grid.NewGrid()
	if _, err := g.AddSite("s", 1e15); err != nil {
		t.Fatal(err)
	}
	if err := g.AddHosts("s", "h", 4, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	return NewSimulated("test", g, 11, nil)
}

func TestLoadVDLExpandsCompounds(t *testing.T) {
	s := newSimSystem(t)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	st := s.Cat.Stats()
	// Compound derivation expands to 2 simple leaves.
	if st.Derivations != 2 {
		t.Errorf("derivations: %d", st.Derivations)
	}
	// refined is derived; its ancestry includes source and the
	// generated intermediate.
	anc, err := s.Cat.Ancestors("refined")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc.Datasets) != 2 || anc.Datasets[1] != "source" && anc.Datasets[0] != "source" {
		t.Errorf("ancestors: %v", anc.Datasets)
	}
	// Types landed.
	res, err := s.SearchDatasets(`type <= Events`)
	if err != nil || len(res) != 1 || res[0].Name != "source" {
		t.Errorf("type search: %v %v", res, err)
	}
}

func TestMaterializeSimulated(t *testing.T) {
	s := newSimSystem(t)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	if err := s.Cat.AddReplica(schema.Replica{ID: "r0", Dataset: "source", Site: "s", PFN: "/src", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Materialize("refined")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Reused || res[0].Report.Completed != 2 {
		t.Fatalf("result: %+v", res[0])
	}
	if !s.Cat.Materialized("refined") {
		t.Error("target not materialized")
	}
	// Estimator learned from the run.
	if _, confident := s.Est.Work("cook"); !confident {
		t.Error("estimator not updated")
	}
	// Re-request: pure reuse.
	res, err = s.Materialize("refined")
	if err != nil || !res[0].Reused {
		t.Errorf("reuse: %+v %v", res, err)
	}
	// Lineage reflects the executed invocations.
	lin, err := s.Lineage("refined")
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Steps) != 2 || len(lin.Steps[0].Invocations) != 1 {
		t.Errorf("lineage: %+v", lin)
	}
}

func TestMaterializeManyTargetsShareWork(t *testing.T) {
	s := newSimSystem(t)
	w := workload.CMS(workload.CMSParams{Runs: 3})
	if err := w.Install(s.Cat); err != nil {
		t.Fatal(err)
	}
	res, err := s.Materialize(w.Targets...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Reused {
			t.Errorf("%s unexpectedly reused", r.Target)
		}
	}
	if got := len(s.Cat.Invocations()); got != 12 {
		t.Errorf("invocations: %d", got)
	}
}

func TestEstimate(t *testing.T) {
	s := newSimSystem(t)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	est, err := s.Estimate("refined", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two nodes at the 60s default prior, serial chain.
	if est.TotalWork != 120 || est.Makespan != 120 {
		t.Errorf("estimate: %+v", est)
	}
	if est.Confident {
		t.Error("prior-based estimate claims confidence")
	}
	if _, err := s.Estimate("ghost", 1); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestInvalidate(t *testing.T) {
	s := newSimSystem(t)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	cl, err := s.Invalidate("source")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Datasets) != 2 { // mid.<suffix> and refined
		t.Errorf("invalidation set: %v", cl.Datasets)
	}
}

func TestLocalModeEndToEnd(t *testing.T) {
	ws := t.TempDir()
	s := NewLocal("laptop", ws, nil)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("cook", func(task executor.Task) error {
		data, err := os.ReadFile(filepath.Join(task.Workspace, task.Node.Inputs[0]))
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(task.Workspace, task.Node.Outputs[0]),
			[]byte(strings.ToUpper(string(data))), 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ws, "source"), []byte("events"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := s.Materialize("refined")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Reused || res[0].Report.Completed != 2 {
		t.Fatalf("local run: %+v", res[0])
	}
	data, err := os.ReadFile(filepath.Join(ws, "refined"))
	if err != nil || string(data) != "EVENTS" {
		t.Errorf("pipeline output: %q %v", data, err)
	}
	// Register on a sim system fails.
	if err := newSimSystem(t).Register("x", nil); err == nil {
		t.Error("Register on sim system accepted")
	}
}

func TestHandlerSharing(t *testing.T) {
	s := newSimSystem(t)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	client := vds.NewClient(hs.URL)
	info, err := client.Info()
	if err != nil || info.Name != "test" || info.Stats.Derivations != 2 {
		t.Errorf("shared info: %+v %v", info, err)
	}

	// Another system imports the transformation via vdp.
	other := newSimSystem(t)
	reg := vds.NewRegistry()
	reg.Register("test", hs.URL)
	tr, err := other.ImportTransformation(reg, "vdp://test/cook")
	if err != nil || tr.Name != "cook" {
		t.Fatalf("import: %+v %v", tr, err)
	}
	if _, err := other.Cat.Transformation("cook"); err != nil {
		t.Error("imported TR not in catalog")
	}
}

func TestNewWithCatalogDurable(t *testing.T) {
	dir := t.TempDir()
	cat, err := catalog.Open(filepath.Join(dir, "cat"), nil, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithCatalog("durable", dir, cat)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	cat2, err := catalog.Open(filepath.Join(dir, "cat"), nil, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	if cat2.Stats().Derivations != 2 {
		t.Errorf("durable reopen: %+v", cat2.Stats())
	}
}

func TestMaterializeFailurePropagates(t *testing.T) {
	ws := t.TempDir()
	s := NewLocal("laptop", ws, nil)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	s.Register("cook", func(executor.Task) error { return fmt.Errorf("no such calibration") })
	os.WriteFile(filepath.Join(ws, "source"), []byte("x"), 0o644)
	if _, err := s.Materialize("refined"); err == nil {
		t.Error("failed workflow reported success")
	}
}
