package core

import (
	"os"
	"path/filepath"
	"testing"

	"chimera/internal/executor"
	"chimera/internal/schema"
)

func TestRecomputeSimulated(t *testing.T) {
	s := newSimSystem(t)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	if err := s.Cat.AddReplica(schema.Replica{ID: "r0", Dataset: "source", Site: "s", PFN: "/src", Size: 1e6}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Materialize("refined"); err != nil {
		t.Fatal(err)
	}
	invBefore := s.Cat.Stats().Invocations
	refinedBefore, _ := s.Cat.Dataset("refined")

	// The calibration error: source was corrected in place.
	epoch, err := s.MarkUpdated("source")
	if err != nil || epoch != 1 {
		t.Fatalf("MarkUpdated: %d %v", epoch, err)
	}
	// Source's replica is re-stamped, so it is still materialized.
	if !s.Cat.Materialized("source") {
		t.Fatal("updated primary lost its replica")
	}
	// Downstream replicas predate the fix and must be recomputed.
	results, err := s.Recompute("source")
	if err != nil {
		t.Fatal(err)
	}
	// Two affected datasets (intermediate + refined), two jobs re-run.
	if len(results) != 2 {
		t.Fatalf("results: %d", len(results))
	}
	if got := s.Cat.Stats().Invocations; got != invBefore+2 {
		t.Errorf("invocations: %d -> %d", invBefore, got)
	}
	refinedAfter, _ := s.Cat.Dataset("refined")
	if refinedAfter.Epoch != refinedBefore.Epoch+1 {
		t.Errorf("refined epoch: %d -> %d", refinedBefore.Epoch, refinedAfter.Epoch)
	}
	if !s.Cat.Materialized("refined") {
		t.Error("refined not re-materialized at new epoch")
	}
	// Old-epoch replicas do not satisfy the new epoch; new ones exist.
	fresh := 0
	for _, r := range s.Cat.ReplicasOf("refined") {
		if r.Epoch == refinedAfter.Epoch {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("fresh replicas: %d", fresh)
	}
}

func TestRecomputeLocalRealFiles(t *testing.T) {
	ws := t.TempDir()
	s := NewLocal("laptop", ws, nil)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	s.Register("cook", func(task executor.Task) error {
		data, err := os.ReadFile(filepath.Join(task.Workspace, task.Node.Inputs[0]))
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(task.Workspace, task.Node.Outputs[0]),
			append([]byte("cooked:"), data...), 0o644)
	})
	os.WriteFile(filepath.Join(ws, "source"), []byte("v1"), 0o644)
	if _, err := s.Materialize("refined"); err != nil {
		t.Fatal(err)
	}
	v1, _ := os.ReadFile(filepath.Join(ws, "refined"))

	// Fix the source file, mark it updated, recompute.
	os.WriteFile(filepath.Join(ws, "source"), []byte("v2"), 0o644)
	if _, err := s.MarkUpdated("source"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recompute("source"); err != nil {
		t.Fatal(err)
	}
	v2, _ := os.ReadFile(filepath.Join(ws, "refined"))
	if string(v1) == string(v2) {
		t.Errorf("recompute did not refresh output: %q vs %q", v1, v2)
	}
	if string(v2) != "cooked:cooked:v2" {
		t.Errorf("recomputed content: %q", v2)
	}
}

func TestRecomputeOfLeafIsNoop(t *testing.T) {
	s := newSimSystem(t)
	if err := s.LoadVDL(pipelineVDL); err != nil {
		t.Fatal(err)
	}
	s.Cat.AddReplica(schema.Replica{ID: "r0", Dataset: "source", Site: "s", PFN: "/src"})
	if _, err := s.Materialize("refined"); err != nil {
		t.Fatal(err)
	}
	// refined has no descendants: recompute affects nothing.
	results, err := s.Recompute("refined")
	if err != nil {
		t.Fatal(err)
	}
	if results != nil {
		t.Errorf("leaf recompute results: %+v", results)
	}
}

func TestMarkUpdatedUnknown(t *testing.T) {
	s := newSimSystem(t)
	if _, err := s.MarkUpdated("ghost"); err == nil {
		t.Error("unknown dataset accepted")
	}
}
