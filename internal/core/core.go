// Package core assembles the virtual data system: one facade over the
// six facets of the paper's process flow (Figure 5) — composition,
// planning, estimation, derivation, discovery and sharing — wired over
// the catalog, estimator, planner, executor and grid substrates.
//
// A System runs in one of two modes. Simulated mode executes workflows
// on the discrete-event grid — the configuration used by the experiment
// harness. Local mode executes workflows as registered Go functions on
// the local machine against real files — the configuration used by the
// interactive examples.
package core

import (
	"errors"
	"fmt"
	"net/http"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/dtype"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/grid"
	"chimera/internal/planner"
	"chimera/internal/query"
	"chimera/internal/schema"
	"chimera/internal/vdl"
	"chimera/internal/vds"
)

// System is a fully wired virtual data system.
type System struct {
	// Name identifies the system's catalog when shared.
	Name string
	// Cat is the underlying virtual data catalog.
	Cat *catalog.Catalog
	// Est is the cost estimator (fed by every executed invocation).
	Est *estimator.Estimator

	// Cluster and Planner are set in simulated mode.
	Cluster *grid.Cluster
	Planner *planner.Planner

	// Local is set in local mode.
	Local *executor.LocalDriver

	// MaxRetries configures workflow execution.
	MaxRetries int
}

// NewSimulated wires a system over a simulated grid.
func NewSimulated(name string, g *grid.Grid, seed int64, types *dtype.Registry) *System {
	cat := catalog.New(types)
	est := estimator.New(60)
	cl := grid.NewCluster(g, grid.NewSim(seed))
	return &System{
		Name:    name,
		Cat:     cat,
		Est:     est,
		Cluster: cl,
		Planner: planner.New(cat, est, cl),
	}
}

// NewLocal wires a system that executes transformations as registered
// Go functions in the given workspace directory.
func NewLocal(name, workspace string, types *dtype.Registry) *System {
	cat := catalog.New(types)
	drv := executor.NewLocalDriver(workspace)
	drv.Resolve = cat.Resolver()
	return &System{
		Name:  name,
		Cat:   cat,
		Est:   estimator.New(60),
		Local: drv,
	}
}

// NewWithCatalog wraps an existing catalog (e.g. a durable one opened
// with catalog.Open) in local mode.
func NewWithCatalog(name, workspace string, cat *catalog.Catalog) *System {
	drv := executor.NewLocalDriver(workspace)
	drv.Resolve = cat.Resolver()
	return &System{Name: name, Cat: cat, Est: estimator.New(60), Local: drv}
}

// --- Composition -------------------------------------------------------

// LoadVDL composes definitions from VDL source text: types, datasets,
// transformations, then derivations (compounds expanded).
func (s *System) LoadVDL(src string) error {
	prog, err := vdl.Parse(src)
	if err != nil {
		return err
	}
	for _, td := range prog.Types {
		if err := s.Cat.DefineType(td.Dim, td.Name, td.Parent); err != nil {
			return err
		}
	}
	for _, ds := range prog.Datasets {
		if err := s.Cat.AddDataset(ds); err != nil && !errors.Is(err, catalog.ErrExists) {
			return err
		}
	}
	for _, tr := range prog.Transformations {
		if err := s.Cat.AddTransformation(tr); err != nil {
			return err
		}
	}
	for _, dv := range prog.Derivations {
		if _, err := s.Define(dv); err != nil {
			return err
		}
	}
	return nil
}

// Define registers a derivation. Derivations of compound
// transformations are expanded to their simple-transformation leaves,
// which are registered individually (with Parent linkage); the leaves
// are returned. Duplicate derivations are returned as-is with reused
// semantics rather than an error.
func (s *System) Define(dv schema.Derivation) ([]schema.Derivation, error) {
	leaves, err := schema.ExpandDerivation(dv, s.Cat.Resolver())
	if err != nil {
		return nil, err
	}
	out := make([]schema.Derivation, 0, len(leaves))
	for _, leaf := range leaves {
		stored, err := s.Cat.AddDerivation(leaf)
		if err != nil && !errors.Is(err, catalog.ErrDuplicate) {
			return nil, err
		}
		out = append(out, stored)
	}
	return out, nil
}

// --- Discovery ---------------------------------------------------------

// SearchDatasets runs a discovery query over datasets.
func (s *System) SearchDatasets(q string) ([]schema.Dataset, error) {
	res, err := query.Search(s.Cat, query.KDataset, q)
	return res.Datasets, err
}

// SearchTransformations runs a discovery query over transformations.
func (s *System) SearchTransformations(q string) ([]schema.Transformation, error) {
	res, err := query.Search(s.Cat, query.KTransformation, q)
	return res.Transformations, err
}

// SearchDerivations runs a discovery query over derivations.
func (s *System) SearchDerivations(q string) ([]schema.Derivation, error) {
	res, err := query.Search(s.Cat, query.KDerivation, q)
	return res.Derivations, err
}

// --- Provenance --------------------------------------------------------

// Lineage returns the full audit trail of a dataset.
func (s *System) Lineage(dataset string) (catalog.LineageReport, error) {
	return s.Cat.Lineage(dataset)
}

// Invalidate answers "which derived data must be recomputed if this
// dataset is bad?".
func (s *System) Invalidate(dataset string) (catalog.Closure, error) {
	return s.Cat.Invalidate(dataset)
}

// MarkUpdated records that a dataset's contents were corrected in
// place (§8's update-in-place): the epoch bumps and its existing
// replicas are re-stamped as current. Downstream data is now stale —
// follow with Recompute.
func (s *System) MarkUpdated(dataset string) (int, error) {
	return s.Cat.BumpEpoch(dataset, true)
}

// Recompute repairs the consequences of a bad or updated dataset: every
// derived dataset downstream of it has its epoch bumped (staling its
// replicas) and is re-materialized by re-running the recorded
// derivations — the paper's calibration-error scenario closed end to
// end.
func (s *System) Recompute(bad string) ([]MaterializeResult, error) {
	cl, err := s.Cat.Invalidate(bad)
	if err != nil {
		return nil, err
	}
	for _, ds := range cl.Datasets {
		if _, err := s.Cat.BumpEpoch(ds, false); err != nil {
			return nil, err
		}
	}
	if len(cl.Datasets) == 0 {
		return nil, nil
	}
	return s.Materialize(cl.Datasets...)
}

// --- Estimation --------------------------------------------------------

// Estimate predicts the cost of materializing a target on the given
// number of hosts (defaulting to the grid's size in simulated mode, 1
// locally).
func (s *System) Estimate(target string, hosts int) (estimator.Estimate, error) {
	// For estimation, primary data is assumed stageable even if no
	// replica is registered yet: the question is "what would deriving
	// this cost?", not "can it run right now?".
	available := func(ds string) bool {
		if s.Cat.Materialized(ds) {
			return true
		}
		rec, err := s.Cat.Dataset(ds)
		return err == nil && rec.CreatedBy == ""
	}
	dvs, err := s.Cat.MaterializationPlan(target, available)
	if err != nil {
		return estimator.Estimate{}, err
	}
	g, err := dag.Build(dvs, s.Cat.Resolver())
	if err != nil {
		return estimator.Estimate{}, err
	}
	if hosts <= 0 {
		hosts = 1
		if s.Cluster != nil {
			hosts = s.Cluster.Grid.TotalHosts()
		}
	}
	return s.Est.EstimateGraph(g, hosts, nil), nil
}

// --- Derivation --------------------------------------------------------

// MaterializeResult reports how a request was satisfied.
type MaterializeResult struct {
	Target string
	// Reused is true when no computation ran (already materialized).
	Reused bool
	// Report is the workflow execution report when work ran.
	Report executor.Report
}

// Materialize satisfies requests for the given targets: already
// materialized targets are reused; the rest are derived by running the
// combined workflow. Invocations (and the runtimes feeding the
// estimator) are recorded in the catalog.
func (s *System) Materialize(targets ...string) ([]MaterializeResult, error) {
	results := make([]MaterializeResult, len(targets))
	var pending []schema.Derivation
	seen := make(map[string]bool)
	for i, t := range targets {
		results[i].Target = t
		if s.Cat.Materialized(t) {
			results[i].Reused = true
			continue
		}
		dvs, err := s.Cat.MaterializationPlan(t, s.materializedOrLocal)
		if err != nil {
			return nil, err
		}
		if len(dvs) == 0 {
			results[i].Reused = true
			continue
		}
		for _, dv := range dvs {
			if !seen[dv.ID] {
				seen[dv.ID] = true
				pending = append(pending, dv)
			}
		}
	}
	if len(pending) == 0 {
		return results, nil
	}
	g, err := dag.Build(pending, s.Cat.Resolver())
	if err != nil {
		return nil, err
	}
	rep, err := s.runGraph(g)
	if err != nil {
		return nil, err
	}
	for i := range results {
		if !results[i].Reused {
			results[i].Report = rep
		}
	}
	if !rep.Succeeded() {
		return results, fmt.Errorf("core: workflow incomplete: %d failed, %d blocked", rep.Failed, rep.Blocked)
	}
	// Fold the new invocations into the estimator.
	if err := s.Est.LoadCatalog(s.Cat); err != nil {
		return results, err
	}
	return results, nil
}

// materializedOrLocal treats a dataset as materialized if the catalog
// says so; in local mode every external input is assumed present in the
// workspace (the driver will fail loudly if not).
func (s *System) materializedOrLocal(ds string) bool {
	if s.Cat.Materialized(ds) {
		return true
	}
	if s.Local != nil {
		rec, err := s.Cat.Dataset(ds)
		return err == nil && rec.CreatedBy == ""
	}
	return false
}

// runGraph executes a workflow graph in the system's mode.
func (s *System) runGraph(g *dag.Graph) (executor.Report, error) {
	ex := &executor.Executor{
		Catalog:    s.Cat,
		MaxRetries: s.MaxRetries,
	}
	switch {
	case s.Local != nil:
		ex.Driver = s.Local
		ex.Assign = func(*dag.Node) (executor.Placement, error) { return executor.Placement{Site: "local"}, nil }
	case s.Cluster != nil:
		ex.Driver = executor.NewSimDriver(s.Cluster)
		ex.Assign = s.Planner.Assign
		ex.OnEvent = s.Planner.OnEvent
	default:
		return executor.Report{}, errors.New("core: system has neither local driver nor cluster")
	}
	return ex.Run(g)
}

// Register installs a local implementation for a transformation name
// (local mode only).
func (s *System) Register(name string, fn executor.TransformFunc) error {
	if s.Local == nil {
		return errors.New("core: Register requires local mode")
	}
	s.Local.Register(name, fn)
	return nil
}

// --- Sharing -----------------------------------------------------------

// Handler exposes the system's catalog as a virtual data service for
// other participants to hyperlink against.
func (s *System) Handler() http.Handler {
	return vds.NewServer(s.Name, s.Cat)
}

// ImportTransformation pulls a remote transformation (and, for
// compounds, its callees) into this system's catalog.
func (s *System) ImportTransformation(reg *vds.Registry, ref string) (schema.Transformation, error) {
	return vds.ImportTransformation(s.Cat, reg, ref)
}
