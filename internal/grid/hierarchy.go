package grid

import (
	"fmt"
	"math/rand"
)

// HierarchyParams sizes a grid-scale topology an order of magnitude
// past the paper's four-site ~800-host testbed: Regions wide-area
// regions (think continents), SitesPerRegion sites each, and Hosts
// worker nodes distributed evenly across the sites. Links form a full
// mesh with a two-tier bandwidth hierarchy — fat low-latency regional
// links inside a region, thin high-latency transatlantic links between
// regions — plus the implicit intra-site LAN.
type HierarchyParams struct {
	// Regions is the number of wide-area regions (default 3).
	Regions int
	// SitesPerRegion is the number of sites per region (default 16).
	SitesPerRegion int
	// Hosts is the total host count across all sites (default 10000).
	Hosts int
	// Cores per host (default 1).
	Cores int
	// StoragePerSite is each site's storage capacity (default 100 TB).
	StoragePerSite int64
	// SpeedSpread is the ± fractional host-speed variation around 1.0,
	// drawn deterministically from Seed (default 0: uniform hosts).
	SpeedSpread float64
	// Seed drives the host-speed variation.
	Seed int64

	// RegionalBW/RegionalLatency size intra-region links
	// (defaults 100 MB/s, 10 ms — a 2002-era well-provisioned NREN).
	RegionalBW, RegionalLatency float64
	// WANBW/WANLatency size inter-region links
	// (defaults 10 MB/s, 150 ms — a shared transatlantic path).
	WANBW, WANLatency float64
	// RegionalStreams/WANStreams are the per-link parallel transfer
	// slots (defaults 8 and 4).
	RegionalStreams, WANStreams int
}

func (p *HierarchyParams) defaults() {
	if p.Regions <= 0 {
		p.Regions = 3
	}
	if p.SitesPerRegion <= 0 {
		p.SitesPerRegion = 16
	}
	if p.Hosts <= 0 {
		p.Hosts = 10000
	}
	if p.Cores <= 0 {
		p.Cores = 1
	}
	if p.StoragePerSite <= 0 {
		p.StoragePerSite = 100e12
	}
	if p.RegionalBW <= 0 {
		p.RegionalBW = 100e6
	}
	if p.RegionalLatency < 0 {
		p.RegionalLatency = 0
	} else if p.RegionalLatency == 0 {
		p.RegionalLatency = 0.010
	}
	if p.WANBW <= 0 {
		p.WANBW = 10e6
	}
	if p.WANLatency == 0 {
		p.WANLatency = 0.150
	}
	if p.RegionalStreams <= 0 {
		p.RegionalStreams = 8
	}
	if p.WANStreams <= 0 {
		p.WANStreams = 4
	}
}

// HierarchySiteName names site s of region r ("r01s04"). Names sort by
// (region, site), so Grid.Sites() lists region 0's sites first.
func HierarchySiteName(region, site int) string {
	return fmt.Sprintf("r%02ds%02d", region, site)
}

// HierarchicalTestbed builds the multi-region topology. Host counts
// divide evenly across sites with the remainder going to the earliest
// sites, so any Hosts value is honored exactly.
func HierarchicalTestbed(p HierarchyParams) (*Grid, error) {
	p.defaults()
	nSites := p.Regions * p.SitesPerRegion
	if p.Hosts < nSites {
		return nil, fmt.Errorf("grid: %d hosts cannot cover %d sites", p.Hosts, nSites)
	}
	rng := rand.New(rand.NewSource(p.Seed + 1))
	g := NewGrid()

	base := p.Hosts / nSites
	extra := p.Hosts % nSites
	idx := 0
	var names []string
	for r := 0; r < p.Regions; r++ {
		for s := 0; s < p.SitesPerRegion; s++ {
			name := HierarchySiteName(r, s)
			names = append(names, name)
			if _, err := g.AddSite(name, p.StoragePerSite); err != nil {
				return nil, err
			}
			hosts := base
			if idx < extra {
				hosts++
			}
			idx++
			for h := 0; h < hosts; h++ {
				speed := 1.0
				if p.SpeedSpread > 0 {
					speed = 1 + p.SpeedSpread*(2*rng.Float64()-1)
				}
				hostName := fmt.Sprintf("%s-h%04d", name, h)
				if _, err := g.AddHost(name, hostName, speed, p.Cores); err != nil {
					return nil, err
				}
			}
		}
	}

	// Full mesh: regional links inside a region, transatlantic between.
	for i := 0; i < nSites; i++ {
		for j := i + 1; j < nSites; j++ {
			sameRegion := i/p.SitesPerRegion == j/p.SitesPerRegion
			var err error
			if sameRegion {
				err = g.ConnectClass(names[i], names[j], ClassRegional,
					p.RegionalBW, p.RegionalLatency, p.RegionalStreams)
			} else {
				err = g.ConnectClass(names[i], names[j], ClassTransatlantic,
					p.WANBW, p.WANLatency, p.WANStreams)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
