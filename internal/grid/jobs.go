package grid

import (
	"fmt"
)

// Job is one unit of computation submitted to a host, GRAM-style.
type Job struct {
	// ID identifies the job in traces.
	ID string
	// Failed is set by the cluster when the job's host failed while it
	// was running or queued; drivers read it in OnDone.
	Failed bool
	// Work is the job's cost in reference-CPU seconds.
	Work float64
	// NoiseAmp is the amplitude of multiplicative runtime jitter
	// (0 = deterministic).
	NoiseAmp float64
	// OnDone is invoked (in simulated time) when the job completes,
	// with its start time and elapsed duration.
	OnDone func(start, elapsed float64)

	host *Host
}

// Cluster couples a Grid with a Sim: it executes jobs on hosts and
// transfers on links in simulated time.
type Cluster struct {
	Grid *Grid
	Sim  *Sim

	// Completed counts finished jobs.
	Completed int
	// TransferredBytes accumulates WAN (inter-site) traffic.
	TransferredBytes int64
	// LocalBytes accumulates intra-site traffic.
	LocalBytes int64
	// BusyTime accumulates host-seconds of computation.
	BusyTime float64
}

// NewCluster binds a topology to a simulator.
func NewCluster(g *Grid, s *Sim) *Cluster { return &Cluster{Grid: g, Sim: s} }

// Submit queues a job on the named host; it starts as soon as a core is
// free, FIFO.
func (c *Cluster) Submit(host string, job *Job) error {
	h, ok := c.Grid.Host(host)
	if !ok {
		return fmt.Errorf("grid: unknown host %q", host)
	}
	if job.Work < 0 {
		return fmt.Errorf("grid: job %q has negative work", job.ID)
	}
	if h.down {
		return fmt.Errorf("grid: host %q is down", host)
	}
	job.host = h
	if h.busy < h.Cores {
		c.start(job)
	} else {
		h.queue = append(h.queue, job)
	}
	return nil
}

func (c *Cluster) start(job *Job) {
	h := job.host
	h.busy++
	h.running = append(h.running, job)
	start := c.Sim.Now()
	elapsed := job.Work / h.Speed * c.Sim.Noise(job.NoiseAmp)
	c.Sim.After(elapsed, func() {
		if h.down || job.Failed {
			// The host failed mid-run; FailHost already reported this
			// job as failed, so the stale completion event is dropped.
			return
		}
		h.busy--
		removeJob(&h.running, job)
		c.Completed++
		c.BusyTime += elapsed
		if len(h.queue) > 0 {
			next := h.queue[0]
			h.queue = h.queue[:copy(h.queue, h.queue[1:])]
			c.start(next)
		}
		if job.OnDone != nil {
			job.OnDone(start, elapsed)
		}
	})
}

func removeJob(jobs *[]*Job, job *Job) {
	for i, j := range *jobs {
		if j == job {
			*jobs = append((*jobs)[:i:i], (*jobs)[i+1:]...)
			return
		}
	}
}

// FailHost takes a host out of service, GRAM-style lost-contact
// semantics: running and queued jobs fail immediately (their OnDone
// fires with Job.Failed set), and no new submissions are accepted until
// RepairHost.
func (c *Cluster) FailHost(name string) error {
	h, ok := c.Grid.Host(name)
	if !ok {
		return fmt.Errorf("grid: unknown host %q", name)
	}
	if h.down {
		return nil
	}
	h.down = true
	victims := append(append([]*Job{}, h.running...), h.queue...)
	h.running = nil
	h.queue = nil
	h.busy = 0
	now := c.Sim.Now()
	for _, job := range victims {
		job := job
		job.Failed = true
		c.Sim.After(0, func() {
			if job.OnDone != nil {
				job.OnDone(now, 0)
			}
		})
	}
	return nil
}

// RepairHost returns a failed host to service (empty, idle).
func (c *Cluster) RepairHost(name string) error {
	h, ok := c.Grid.Host(name)
	if !ok {
		return fmt.Errorf("grid: unknown host %q", name)
	}
	h.down = false
	return nil
}

// Transfer is one data movement between sites.
type Transfer struct {
	ID     string
	From   string
	To     string
	Bytes  int64
	OnDone func(start, elapsed float64)
}

// TransferData schedules a transfer. Intra-site moves use the LAN
// directly; inter-site moves occupy one stream of the WAN link, queuing
// when all streams are busy. Storage accounting is the caller's
// responsibility (the planner allocates; the cluster just moves bytes).
func (c *Cluster) TransferData(t *Transfer) error {
	if t.Bytes < 0 {
		return fmt.Errorf("grid: transfer %q has negative size", t.ID)
	}
	if t.From == t.To {
		elapsed := float64(t.Bytes) / c.Grid.LocalBandwidth
		start := c.Sim.Now()
		c.Sim.After(elapsed, func() {
			c.LocalBytes += t.Bytes
			if t.OnDone != nil {
				t.OnDone(start, elapsed)
			}
		})
		return nil
	}
	l, ok := c.Grid.Link(t.From, t.To)
	if !ok {
		return fmt.Errorf("grid: no link between %q and %q", t.From, t.To)
	}
	c.enqueueTransfer(l, t)
	return nil
}

func (c *Cluster) enqueueTransfer(l *Link, t *Transfer) {
	streams := l.Streams
	if streams <= 0 {
		streams = 4
	}
	if l.active < streams {
		c.startTransfer(l, t)
	} else {
		l.waiting = append(l.waiting, t)
	}
}

func (c *Cluster) startTransfer(l *Link, t *Transfer) {
	l.active++
	start := c.Sim.Now()
	elapsed := l.LatencySec + float64(t.Bytes)/l.streamBandwidth()
	c.Sim.After(elapsed, func() {
		l.active--
		c.TransferredBytes += t.Bytes
		if len(l.waiting) > 0 {
			next := l.waiting[0]
			l.waiting = l.waiting[:copy(l.waiting, l.waiting[1:])]
			c.startTransfer(l, next)
		}
		if t.OnDone != nil {
			t.OnDone(start, elapsed)
		}
	})
}

// LeastLoadedHost returns the host at the site with the fewest queued
// plus running jobs (ties broken by name for determinism), or "" if the
// site has no hosts.
func (c *Cluster) LeastLoadedHost(site string) string {
	s, ok := c.Grid.Site(site)
	if !ok {
		return ""
	}
	best := ""
	bestLoad := 1 << 30
	for _, h := range s.Hosts {
		if h.down {
			continue
		}
		load := h.busy + len(h.queue)
		if load < bestLoad || (load == bestLoad && h.Name < best) {
			best, bestLoad = h.Name, load
		}
	}
	return best
}

// SiteLoad returns running+queued jobs divided by cores at a site, a
// dimensionless congestion measure for planners.
func (c *Cluster) SiteLoad(site string) float64 {
	s, ok := c.Grid.Site(site)
	if !ok || len(s.Hosts) == 0 {
		return 0
	}
	jobs, cores := 0, 0
	for _, h := range s.Hosts {
		if h.down {
			continue
		}
		jobs += h.busy + len(h.queue)
		cores += h.Cores
	}
	if cores == 0 {
		return 1e9 // the whole site is down: effectively unusable
	}
	return float64(jobs) / float64(cores)
}

// FourSiteTestbed builds a topology shaped like the paper's SDSS
// testbed: four sites with the given hosts each, fully meshed WAN.
// Host counts of {400, 200, 120, 80} total ≈800 hosts.
func FourSiteTestbed(hostCounts [4]int) (*Grid, error) {
	g := NewGrid()
	names := [4]string{"uchicago", "anl", "fnal", "wisconsin"}
	for i, n := range names {
		if _, err := g.AddSite(n, 100e12); err != nil {
			return nil, err
		}
		if err := g.AddHosts(n, n, hostCounts[i], 1.0, 1); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			// 2002-era WAN: ~30 MB/s, 50 ms startup, 4 streams.
			if err := g.Connect(names[i], names[j], 30e6, 0.05, 4); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
