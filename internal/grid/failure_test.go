package grid

import (
	"strings"
	"testing"
)

// TestReleaseUnderflowRegression pins the Release contract: exact
// alloc/release pairs are silent, over-releases clamp to zero but
// report the error and bump the underflow counter.
func TestReleaseUnderflowRegression(t *testing.T) {
	se := &StorageElement{Site: "ul", Capacity: 1000}
	if err := se.Alloc(400); err != nil {
		t.Fatal(err)
	}
	if err := se.Release(400); err != nil {
		t.Errorf("balanced release errored: %v", err)
	}
	if err := se.Alloc(100); err != nil {
		t.Fatal(err)
	}
	before := metricReleaseUnderflow.Value()
	err := se.Release(250)
	if err == nil {
		t.Fatal("over-release returned no error")
	}
	if !strings.Contains(err.Error(), "ul") || !strings.Contains(err.Error(), "150") {
		t.Errorf("error names neither site nor overage: %v", err)
	}
	if se.Used() != 0 {
		t.Errorf("usage not clamped: %d", se.Used())
	}
	if got := metricReleaseUnderflow.Value(); got != before+1 {
		t.Errorf("underflow counter: got %d want %d", got, before+1)
	}
	if err := se.Release(-5); err == nil {
		t.Error("negative release accepted")
	}
	// The element stays serviceable after the accounting error.
	if err := se.Alloc(1000); err != nil {
		t.Errorf("element unusable after clamped underflow: %v", err)
	}
}

// TestFailHostQueuedJobPropagation covers the queued-job half of host
// failure: a job that never started running still gets Failed=true and
// an OnDone callback at the failure instant with zero elapsed.
func TestFailHostQueuedJobPropagation(t *testing.T) {
	g := NewGrid()
	if _, err := g.AddSite("s", 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddHost("s", "h0", 1, 1); err != nil {
		t.Fatal(err)
	}
	s := NewSim(1)
	c := NewCluster(g, s)

	type doneRec struct {
		id             string
		start, elapsed float64
		failed         bool
	}
	var done []doneRec
	submit := func(id string, work float64) *Job {
		j := &Job{ID: id, Work: work}
		j.OnDone = func(start, elapsed float64) {
			done = append(done, doneRec{id, start, elapsed, j.Failed})
		}
		if err := c.Submit("h0", j); err != nil {
			t.Fatal(err)
		}
		return j
	}
	running := submit("running", 100)
	queued := submit("queued", 100)

	s.RunUntil(10)
	if err := c.FailHost("h0"); err != nil {
		t.Fatal(err)
	}
	s.Run()

	if len(done) != 2 {
		t.Fatalf("OnDone fired %d times, want 2 (running and queued)", len(done))
	}
	for _, d := range done {
		if !d.failed {
			t.Errorf("job %s: Failed not set at OnDone", d.id)
		}
		if d.start != 10 || d.elapsed != 0 {
			t.Errorf("job %s: done at start=%g elapsed=%g, want failure instant 10/0", d.id, d.start, d.elapsed)
		}
	}
	if !running.Failed || !queued.Failed {
		t.Error("Failed flag not persisted on job structs")
	}
	// Resubmission to the downed host is refused until repair.
	if err := c.Submit("h0", &Job{ID: "late", Work: 1}); err == nil {
		t.Error("submission to downed host accepted")
	}
	if err := c.RepairHost("h0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit("h0", &Job{ID: "after-repair", Work: 1}); err != nil {
		t.Errorf("submission after repair refused: %v", err)
	}
	s.Run()
}

// TestFailedTransferReleasesStorage models the planner-side contract
// around Transfer.OnDone: when a staging transfer lands on a host that
// has since failed, the driver must release its storage reservation —
// and exactly once, with the double-release caught by Release.
func TestFailedTransferReleasesStorage(t *testing.T) {
	g := NewGrid()
	for _, site := range []string{"src", "dst"} {
		if _, err := g.AddSite(site, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddHost("dst", "d0", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "dst", 100, 0, 1); err != nil {
		t.Fatal(err)
	}
	s := NewSim(1)
	c := NewCluster(g, s)
	dst, _ := g.Site("dst")

	if err := dst.Storage.Alloc(500); err != nil {
		t.Fatal(err)
	}
	var transferDone bool
	err := c.TransferData(&Transfer{ID: "stage", From: "src", To: "dst", Bytes: 500,
		OnDone: func(start, elapsed float64) {
			transferDone = true
			// Destination host failed mid-transfer: the staged bytes are
			// orphaned, so the reservation is returned.
			if h, _ := g.Host("d0"); h.Down() {
				if err := dst.Storage.Release(500); err != nil {
					t.Errorf("release of failed staging errored: %v", err)
				}
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1)
	if err := c.FailHost("d0"); err != nil {
		t.Fatal(err)
	}
	s.Run()

	if !transferDone {
		t.Fatal("transfer OnDone never fired")
	}
	if dst.Storage.Used() != 0 {
		t.Errorf("staging reservation leaked: %d bytes", dst.Storage.Used())
	}
	// A second (buggy) release of the same reservation is reported.
	if err := dst.Storage.Release(500); err == nil {
		t.Error("double release of staging reservation went unreported")
	}
}
