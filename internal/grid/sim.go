// Package grid is the Grid substrate of the virtual data grid: a
// deterministic discrete-event simulator of compute sites, hosts,
// storage elements and wide-area network links, with a GRAM-like job
// submission interface and explicit data transfers.
//
// It replaces the physical testbed of the paper's experiments (four
// sites, ~800 hosts) with a model that exercises the same decisions —
// where to run, what to move, how long things take — reproducibly:
// given one seed and one submission sequence, every run produces the
// same trajectory.
package grid

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Sim is the discrete-event engine. Time is simulated seconds from 0.
// Sim is not safe for concurrent use: the executor drives it from one
// goroutine, as all concurrency is simulated.
type Sim struct {
	now    float64
	seq    int64
	events eventQueue
	rng    *rand.Rand
}

// NewSim returns a simulator seeded for reproducibility.
func NewSim(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Rand exposes the simulation's seeded random source (for workload
// generators that want reproducible noise).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute simulated time t (>= now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event; it reports false when no events remain.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.time
	e.fn()
	return true
}

// Run drains the event queue and returns the final simulated time.
func (s *Sim) Run() float64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil processes events until the given time; pending later events
// remain queued.
func (s *Sim) RunUntil(t float64) {
	for s.events.Len() > 0 && s.events[0].time <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }

type event struct {
	time  float64
	seq   int64 // FIFO tie-break for simultaneous events
	index int
	fn    func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Noise returns a deterministic multiplicative jitter factor in
// [1-amp, 1+amp]; amp 0 disables noise.
func (s *Sim) Noise(amp float64) float64 {
	if amp <= 0 {
		return 1
	}
	return 1 + amp*(2*s.rng.Float64()-1)
}

func checkPositive(name string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("grid: %s must be positive, got %g", name, v)
	}
	return nil
}
