// Package grid is the Grid substrate of the virtual data grid: a
// deterministic discrete-event simulator of compute sites, hosts,
// storage elements and wide-area network links, with a GRAM-like job
// submission interface and explicit data transfers.
//
// It replaces the physical testbed of the paper's experiments (four
// sites, ~800 hosts) with a model that exercises the same decisions —
// where to run, what to move, how long things take — reproducibly:
// given one seed and one submission sequence, every run produces the
// same trajectory.
package grid

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Options configures a simulator's event engine.
type Options struct {
	// HeapQueue selects the original container/heap event queue instead
	// of the default indexed calendar queue. The heap is kept as the
	// equivalence oracle: both engines dispatch events in identical
	// (time, seq) order, so any run may be replayed on either and must
	// produce a byte-identical trajectory.
	HeapQueue bool
}

// Sim is the discrete-event engine. Time is simulated seconds from 0.
// Sim is not safe for concurrent use: the executor drives it from one
// goroutine, as all concurrency is simulated.
type Sim struct {
	now float64
	seq int64
	q   simQueue
	rng *rand.Rand
}

// NewSim returns a simulator seeded for reproducibility, using the
// calendar-queue engine.
func NewSim(seed int64) *Sim { return NewSimOpts(seed, Options{}) }

// NewSimOpts returns a seeded simulator with an explicit engine choice.
func NewSimOpts(seed int64, o Options) *Sim {
	s := &Sim{rng: rand.New(rand.NewSource(seed))}
	if o.HeapQueue {
		s.q = &heapQueue{}
	} else {
		s.q = newCalQueue()
	}
	return s
}

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Rand exposes the simulation's seeded random source (for workload
// generators that want reproducible noise).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute simulated time t (>= now). A
// non-finite t would silently poison the queue ordering invariants
// (NaN compares false against everything, so a heap or calendar bucket
// holding one can strand other events); it is rejected loudly instead.
func (s *Sim) At(t float64, fn func()) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("grid: Sim.At called with non-finite time %v at now=%g; event times must be finite", t, s.now))
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.q.push(event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event; it reports false when no events remain.
func (s *Sim) Step() bool {
	e, ok := s.q.pop()
	if !ok {
		return false
	}
	s.now = e.time
	metricEvents.Inc()
	e.fn()
	return true
}

// Run drains the event queue and returns the final simulated time.
func (s *Sim) Run() float64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil processes events until the given time; pending later events
// remain queued.
func (s *Sim) RunUntil(t float64) {
	for {
		next, ok := s.q.peek()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.q.len() }

// Noise returns a deterministic multiplicative jitter factor in
// [1-amp, 1+amp]; amp 0 disables noise.
func (s *Sim) Noise(amp float64) float64 {
	if amp <= 0 {
		return 1
	}
	return 1 + amp*(2*s.rng.Float64()-1)
}

// event is one pending callback. Events are ordered by (time, seq):
// the monotone seq gives simultaneous events FIFO semantics, which both
// engines must preserve exactly (the determinism contract).
type event struct {
	time float64
	seq  int64 // FIFO tie-break for simultaneous events
	fn   func()
}

// before reports the (time, seq) ordering both engines sort by.
func (e event) before(o event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// simQueue is the event-queue engine contract: push accepts any finite
// time >= the last popped time, pop removes the (time, seq)-minimum,
// peek reports its time without removing it.
type simQueue interface {
	push(e event)
	pop() (event, bool)
	peek() (float64, bool)
	len() int
}

// heapQueue is the original pointer-heavy container/heap engine, kept
// unchanged as the equivalence oracle and the perf baseline: every push
// allocates one *event node and pays O(log n) sift, which is what the
// calendar queue is measured against in BenchmarkSimEventThroughput.
type heapQueue struct{ events heapEvents }

func (h *heapQueue) push(e event) {
	heap.Push(&h.events, &heapEvent{event: e})
}

func (h *heapQueue) pop() (event, bool) {
	if h.events.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(&h.events).(*heapEvent).event, true
}

func (h *heapQueue) peek() (float64, bool) {
	if h.events.Len() == 0 {
		return 0, false
	}
	return h.events[0].time, true
}

func (h *heapQueue) len() int { return h.events.Len() }

type heapEvent struct {
	event
	index int
}

type heapEvents []*heapEvent

func (q heapEvents) Len() int { return len(q) }

func (q heapEvents) Less(i, j int) bool { return q[i].event.before(q[j].event) }

func (q heapEvents) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *heapEvents) Push(x any) {
	e := x.(*heapEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *heapEvents) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

func checkPositive(name string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("grid: %s must be positive, got %g", name, v)
	}
	return nil
}
