package grid

import "chimera/internal/obs"

// Grid simulator metrics: event-engine throughput and storage
// accounting health.
var (
	metricEvents = obs.Default.Counter("vdc_grid_events_total",
		"Discrete events dispatched by simulator Step calls.")
	metricQueueResizes = obs.Default.Counter("vdc_grid_queue_resizes_total",
		"Calendar-queue bucket-array resizes (occupancy-triggered).")
	metricReleaseUnderflow = obs.Default.Counter("vdc_grid_storage_release_underflow_total",
		"StorageElement.Release calls that freed more bytes than were allocated (accounting bugs).")
)

// DebugStats reports the grid simulator counters for runtime
// introspection (/debug/vdc).
func DebugStats() map[string]any {
	return map[string]any{
		"events_total":                    metricEvents.Value(),
		"queue_resizes_total":             metricQueueResizes.Value(),
		"storage_release_underflow_total": metricReleaseUnderflow.Value(),
	}
}
