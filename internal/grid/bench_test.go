package grid

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkSimEventThroughput measures schedule+dispatch cost at
// 10k-host occupancy with the classic hold model: the queue is
// pre-filled to a steady-state population (two pending events per
// host: one running job, one heartbeat), then each dispatched event
// reschedules itself at a random future offset, so every benchmark
// iteration is exactly one pop plus one push at full depth. Sub-
// benchmarks run the same load through the calendar queue (default)
// and the heap oracle; the ratio is the headline speedup.
func BenchmarkSimEventThroughput(b *testing.B) {
	for _, hosts := range []int{1000, 10000} {
		occupancy := 2 * hosts
		for _, engine := range []struct {
			name string
			opts Options
		}{
			{"calendar", Options{}},
			{"heap", Options{HeapQueue: true}},
		} {
			b.Run(fmt.Sprintf("hosts=%d/%s", hosts, engine.name), func(b *testing.B) {
				s := NewSimOpts(1, engine.opts)
				rng := rand.New(rand.NewSource(2))
				// One self-rescheduling closure shared by all events keeps
				// closure construction out of the measured loop.
				var tick func()
				remaining := b.N
				tick = func() {
					if remaining <= 0 {
						return
					}
					remaining--
					s.After(0.1+10*rng.Float64(), tick)
				}
				for i := 0; i < occupancy; i++ {
					s.After(10*rng.Float64(), tick)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !s.Step() {
						b.Fatal("queue drained")
					}
				}
			})
		}
	}
}
