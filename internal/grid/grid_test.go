package grid

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim(1)
	var order []int
	s.At(5, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(5, func() { order = append(order, 3) }) // same time: FIFO by insertion
	s.After(10, func() { order = append(order, 4) })
	end := s.Run()
	if end != 10 {
		t.Errorf("end time %g", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(1)
	var times []float64
	s.At(1, func() {
		times = append(times, s.Now())
		s.After(2, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times %v", times)
	}
}

func TestSimPastEventClamped(t *testing.T) {
	s := NewSim(1)
	s.At(5, func() {
		s.At(1, func() {
			if s.Now() != 5 {
				t.Errorf("past event ran at %g", s.Now())
			}
		})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewSim(1)
	ran := 0
	s.At(1, func() { ran++ })
	s.At(10, func() { ran++ })
	s.RunUntil(5)
	if ran != 1 || s.Now() != 5 || s.Pending() != 1 {
		t.Errorf("ran=%d now=%g pending=%d", ran, s.Now(), s.Pending())
	}
	s.Run()
	if ran != 2 {
		t.Errorf("final ran=%d", ran)
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	a, b := NewSim(42), NewSim(42)
	for i := 0; i < 100; i++ {
		na, nb := a.Noise(0.2), b.Noise(0.2)
		if na != nb {
			t.Fatal("noise not deterministic across same-seed sims")
		}
		if na < 0.8 || na > 1.2 {
			t.Fatalf("noise out of bounds: %g", na)
		}
	}
	if a.Noise(0) != 1 {
		t.Error("zero amplitude should be exactly 1")
	}
}

func buildSmallGrid(t *testing.T) *Grid {
	t.Helper()
	g := NewGrid()
	if _, err := g.AddSite("a", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddSite("b", 1000); err != nil {
		t.Fatal(err)
	}
	if err := g.AddHosts("a", "a", 2, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddHost("b", "b-0", 2.0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("a", "b", 100, 0.5, 2); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTopologyValidation(t *testing.T) {
	g := buildSmallGrid(t)
	if _, err := g.AddSite("a", 1); err == nil {
		t.Error("duplicate site accepted")
	}
	if _, err := g.AddSite("", 1); err == nil {
		t.Error("empty site accepted")
	}
	if _, err := g.AddHost("ghost", "h", 1, 1); err == nil {
		t.Error("host at unknown site accepted")
	}
	if _, err := g.AddHost("a", "a-0", 1, 1); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := g.AddHost("a", "x", 0, 1); err == nil {
		t.Error("zero-speed host accepted")
	}
	if err := g.Connect("a", "ghost", 1, 0, 1); err == nil {
		t.Error("link to unknown site accepted")
	}
	if err := g.Connect("a", "a", 1, 0, 1); err == nil {
		t.Error("self link accepted")
	}
	if err := g.Connect("a", "b", 0, 0, 1); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
	if got := g.Sites(); len(got) != 2 || got[0] != "a" {
		t.Errorf("sites: %v", got)
	}
	if got := g.HostNames("a"); len(got) != 2 {
		t.Errorf("hosts at a: %v", got)
	}
	if g.TotalHosts() != 3 {
		t.Errorf("total hosts: %d", g.TotalHosts())
	}
	if _, ok := g.Link("b", "a"); !ok {
		t.Error("link lookup not order-insensitive")
	}
}

func TestStorageAccounting(t *testing.T) {
	se := &StorageElement{Site: "a", Capacity: 100}
	if err := se.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := se.Alloc(50); err == nil {
		t.Error("overflow accepted")
	}
	if se.Used() != 60 || se.Free() != 40 {
		t.Errorf("used=%d free=%d", se.Used(), se.Free())
	}
	if err := se.Release(100); err == nil {
		t.Error("underflow release (100 of 60) returned no error")
	}
	if se.Used() != 0 {
		t.Errorf("release floor: %d", se.Used())
	}
	if err := se.Alloc(-1); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestJobExecutionTiming(t *testing.T) {
	g := buildSmallGrid(t)
	s := NewSim(1)
	c := NewCluster(g, s)

	var done []string
	submit := func(host, id string, work float64) {
		err := c.Submit(host, &Job{ID: id, Work: work, OnDone: func(start, elapsed float64) {
			done = append(done, fmt.Sprintf("%s@%g+%g", id, start, elapsed))
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Host a-0: speed 1, one core. Two jobs serialize.
	submit("a-0", "j1", 10)
	submit("a-0", "j2", 10)
	// Host b-0: speed 2, two cores. Two jobs in parallel, each 5s.
	submit("b-0", "j3", 10)
	submit("b-0", "j4", 10)
	end := s.Run()
	if end != 20 {
		t.Errorf("makespan %g, want 20", end)
	}
	sort.Strings(done)
	want := []string{"j1@0+10", "j2@10+10", "j3@0+5", "j4@0+5"}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done=%v", done)
		}
	}
	if c.Completed != 4 {
		t.Errorf("completed=%d", c.Completed)
	}
	if math.Abs(c.BusyTime-30) > 1e-9 {
		t.Errorf("busy time %g", c.BusyTime)
	}
}

func TestSubmitErrors(t *testing.T) {
	g := buildSmallGrid(t)
	c := NewCluster(g, NewSim(1))
	if err := c.Submit("ghost", &Job{Work: 1}); err == nil {
		t.Error("unknown host accepted")
	}
	if err := c.Submit("a-0", &Job{Work: -1}); err == nil {
		t.Error("negative work accepted")
	}
}

func TestTransferTiming(t *testing.T) {
	g := buildSmallGrid(t) // link a<->b: bw 100 B/s, 0.5s latency, 2 streams → 50 B/s per stream
	s := NewSim(1)
	c := NewCluster(g, s)

	var ends []float64
	record := func(start, elapsed float64) { ends = append(ends, start+elapsed) }

	// One transfer of 100 bytes: 0.5 + 100/50 = 2.5s.
	if err := c.TransferData(&Transfer{ID: "t1", From: "a", To: "b", Bytes: 100, OnDone: record}); err != nil {
		t.Fatal(err)
	}
	// Two more saturate the 2 streams; the third queues until t=2.5.
	c.TransferData(&Transfer{ID: "t2", From: "a", To: "b", Bytes: 100, OnDone: record})
	c.TransferData(&Transfer{ID: "t3", From: "a", To: "b", Bytes: 100, OnDone: record})
	s.Run()
	if len(ends) != 3 || ends[0] != 2.5 || ends[1] != 2.5 || ends[2] != 5.0 {
		t.Errorf("transfer ends: %v", ends)
	}
	if c.TransferredBytes != 300 {
		t.Errorf("wan bytes: %d", c.TransferredBytes)
	}

	// Intra-site: LAN with no latency; 1e9 B/s default → ~0s here.
	s2 := NewSim(1)
	c2 := NewCluster(g, s2)
	var lanEnd float64
	c2.TransferData(&Transfer{From: "a", To: "a", Bytes: 1000, OnDone: func(st, el float64) { lanEnd = st + el }})
	s2.Run()
	if lanEnd > 1e-5 {
		t.Errorf("lan transfer too slow: %g", lanEnd)
	}
	if c2.LocalBytes != 1000 {
		t.Errorf("lan bytes: %d", c2.LocalBytes)
	}

	if err := c2.TransferData(&Transfer{From: "a", To: "ghost", Bytes: 1}); err == nil {
		t.Error("transfer to unknown site accepted")
	}
	if err := c2.TransferData(&Transfer{From: "a", To: "b", Bytes: -1}); err == nil {
		t.Error("negative transfer accepted")
	}
}

func TestTransferTimePrediction(t *testing.T) {
	g := buildSmallGrid(t)
	d, err := g.TransferTime("a", "b", 100)
	if err != nil || d != 2.5 {
		t.Errorf("wan predict: %g %v", d, err)
	}
	d, err = g.TransferTime("a", "a", 1e9)
	if err != nil || d != 1.0 {
		t.Errorf("lan predict: %g %v", d, err)
	}
	if _, err := g.TransferTime("a", "ghost", 1); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestLoadMetricsAndLeastLoaded(t *testing.T) {
	g := buildSmallGrid(t)
	s := NewSim(1)
	c := NewCluster(g, s)
	// Load a-0 with 3 jobs, a-1 with 1.
	for i := 0; i < 3; i++ {
		c.Submit("a-0", &Job{ID: fmt.Sprintf("x%d", i), Work: 100})
	}
	c.Submit("a-1", &Job{ID: "y", Work: 100})
	if got := c.LeastLoadedHost("a"); got != "a-1" {
		t.Errorf("least loaded: %s", got)
	}
	if got := g.QueueDepth("a"); got != 2 {
		t.Errorf("queue depth: %d", got)
	}
	if got := g.BusyCores("a"); got != 2 {
		t.Errorf("busy cores: %d", got)
	}
	if got := g.FreeCores("a"); got != 0 {
		t.Errorf("free cores: %d", got)
	}
	if load := c.SiteLoad("a"); load != 2.0 {
		t.Errorf("site load: %g", load)
	}
	if c.LeastLoadedHost("ghost") != "" {
		t.Error("least loaded at unknown site")
	}
	s.Run()
	if g.BusyCores("a") != 0 || g.QueueDepth("a") != 0 {
		t.Error("load not drained")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, int64) {
		g, err := FourSiteTestbed([4]int{10, 5, 3, 2})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSim(99)
		c := NewCluster(g, s)
		hosts := g.HostNames("uchicago")
		for i := 0; i < 50; i++ {
			h := hosts[i%len(hosts)]
			c.Submit(h, &Job{ID: fmt.Sprintf("j%d", i), Work: float64(10 + i), NoiseAmp: 0.3})
			if i%5 == 0 {
				c.TransferData(&Transfer{From: "uchicago", To: "fnal", Bytes: int64(1e6 * float64(i+1))})
			}
		}
		return s.Run(), c.TransferredBytes
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Errorf("nondeterministic: %g/%d vs %g/%d", m1, b1, m2, b2)
	}
}

func TestFourSiteTestbed(t *testing.T) {
	g, err := FourSiteTestbed([4]int{400, 200, 120, 80})
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalHosts() != 800 {
		t.Errorf("hosts: %d", g.TotalHosts())
	}
	if len(g.Sites()) != 4 {
		t.Errorf("sites: %v", g.Sites())
	}
	for _, a := range g.Sites() {
		for _, b := range g.Sites() {
			if a != b {
				if _, ok := g.Link(a, b); !ok {
					t.Errorf("missing link %s-%s", a, b)
				}
			}
		}
	}
}

// Property: with N identical single-core hosts and M identical jobs,
// makespan = ceil(M/N) * jobtime — the linear host-scaling shape that
// E3 relies on.
func TestHostScalingShape(t *testing.T) {
	const jobs = 120
	const work = 100.0
	prev := math.Inf(1)
	for _, hosts := range []int{1, 2, 4, 8, 30, 60, 120} {
		g := NewGrid()
		g.AddSite("s", 1e15)
		g.AddHosts("s", "h", hosts, 1.0, 1)
		s := NewSim(1)
		c := NewCluster(g, s)
		for i := 0; i < jobs; i++ {
			c.Submit(fmt.Sprintf("h-%d", i%hosts), &Job{ID: fmt.Sprintf("j%d", i), Work: work})
		}
		makespan := s.Run()
		want := math.Ceil(float64(jobs)/float64(hosts)) * work
		if math.Abs(makespan-want) > 1e-6 {
			t.Errorf("hosts=%d makespan=%g want %g", hosts, makespan, want)
		}
		if makespan > prev {
			t.Errorf("makespan increased with more hosts: %g > %g", makespan, prev)
		}
		prev = makespan
	}
}

func TestFailHostSemantics(t *testing.T) {
	g := buildSmallGrid(t)
	s := NewSim(1)
	c := NewCluster(g, s)

	var results []string
	mk := func(id string, work float64) *Job {
		var j *Job
		j = &Job{ID: id, Work: work, OnDone: func(start, elapsed float64) {
			state := "ok"
			if j.Failed {
				state = "failed"
			}
			results = append(results, fmt.Sprintf("%s:%s@%g", id, state, s.Now()))
		}}
		return j
	}
	// Three jobs on a-0 (1 core): one running, two queued.
	c.Submit("a-0", mk("running", 100))
	c.Submit("a-0", mk("queued1", 100))
	c.Submit("a-0", mk("queued2", 100))

	// Fail the host at t=10: all three report failure at t=10.
	s.After(10, func() {
		if err := c.FailHost("a-0"); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if len(results) != 3 {
		t.Fatalf("results: %v", results)
	}
	for _, r := range results {
		if !strings.Contains(r, "failed@10") {
			t.Errorf("unexpected result %q", r)
		}
	}
	// Down host rejects submissions, is skipped by load metrics, and
	// double-fail is a no-op.
	if err := c.Submit("a-0", mk("late", 1)); err == nil {
		t.Error("submit to down host accepted")
	}
	if err := c.FailHost("a-0"); err != nil {
		t.Error(err)
	}
	if got := c.LeastLoadedHost("a"); got != "a-1" {
		t.Errorf("least loaded with a-0 down: %s", got)
	}
	if g.FreeCores("a") != 1 {
		t.Errorf("free cores with a-0 down: %d", g.FreeCores("a"))
	}
	if err := c.FailHost("ghost"); err == nil {
		t.Error("failing unknown host accepted")
	}

	// Repair restores service.
	if err := c.RepairHost("a-0"); err != nil {
		t.Fatal(err)
	}
	results = nil
	if err := c.Submit("a-0", mk("revived", 5)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(results) != 1 || !strings.Contains(results[0], "revived:ok") {
		t.Errorf("after repair: %v", results)
	}
	if err := c.RepairHost("ghost"); err == nil {
		t.Error("repairing unknown host accepted")
	}
}

func TestWholeSiteDownLoad(t *testing.T) {
	g := buildSmallGrid(t)
	c := NewCluster(g, NewSim(1))
	c.FailHost("b-0")
	if load := c.SiteLoad("b"); load < 1e8 {
		t.Errorf("dead site load should be huge: %g", load)
	}
	if c.LeastLoadedHost("b") != "" {
		t.Error("dead site offered a host")
	}
}
