package grid

import "math"

// calQueue is an indexed calendar queue (Brown, CACM 1988): the default
// event engine. Events hash by time into an array of buckets, each
// bucket a slice kept sorted by (time, seq); one bucket covers `width`
// seconds of virtual time, and the whole array covers one "year" of
// nbuckets×width seconds, wrapping for later years.
//
// Push appends into a bucket (binary search + memmove within an
// expected-O(1)-length slice); pop resumes a rotating scan from the
// bucket of the last dispatched event, taking the first event whose
// window number matches the scan's current year. When occupancy drifts
// outside [nbuckets, 4×nbuckets] the bucket array is rebuilt at the
// new size with a width re-estimated from a stride sample of queued
// events, so both operations stay O(1) amortized at any queue depth —
// against the heap's O(log n) per event at 10k-host occupancy.
//
// Window numbers, not raw times, drive all placement and scanning: an
// event's window is floor(time/width), an exact float integer computed
// once per (event, width); its bucket is window mod nbuckets, and the
// scan compares whole windows. Comparing raw times against accumulated
// float window edges is 1-ulp fragile — an event whose time lands
// exactly on a bucket boundary can fail a `time < edge` check against
// its own window's edge and silently wait an entire extra year.
//
// Events are stored by value, each bucket keeps its slice header and
// head index on the same cache line, and retired bucket arrays are
// pooled in a freelist, so steady-state scheduling allocates nothing
// (the heap engine allocates one node per event).
//
// Determinism contract: pop returns the exact (time, seq) minimum.
// Simultaneous events always share a bucket (equal times hash
// identically) where they sort by seq, so FIFO tie-breaking is
// preserved and trajectories are byte-identical to the heap oracle's.
type calQueue struct {
	buckets []calBucket
	mask    int // len(buckets)-1; bucket counts are powers of two
	width   float64
	n       int

	// Rotating-scan position: the last dispatched event's bucket, its
	// window number, and its time. Only pop persists these — a peek
	// must not advance them, because events pushed later may still land
	// below a peeked-ahead window.
	lastBucket int
	curWin     float64
	lastPrio   float64

	// free pools retired bucket backing arrays across resizes.
	free [][]calEvent

	resizes int // lifetime resize count (also counted in metricQueueResizes)
}

// calBucket is one calendar day: a (time, seq)-sorted slice whose live
// region starts at head. Keeping head next to the slice header means
// one cache fetch per bucket probe instead of two parallel-array hits.
type calBucket struct {
	events []calEvent
	head   int
}

// calEvent pairs an event with its window number under the current
// width, so scans compare exact cached integers instead of re-deriving
// them from times.
type calEvent struct {
	event
	win float64
}

const (
	calMinBuckets  = 8
	calInitWidth   = 1.0
	calSampleItems = 32
)

func newCalQueue() *calQueue {
	q := &calQueue{width: calInitWidth}
	q.setBucketCount(calMinBuckets)
	return q
}

// setBucketCount installs a bucket array of size nb, drawing backing
// arrays from the freelist when available.
func (q *calQueue) setBucketCount(nb int) {
	q.buckets = make([]calBucket, nb)
	for i := range q.buckets {
		if k := len(q.free); k > 0 {
			q.buckets[i].events = q.free[k-1][:0]
			q.free = q.free[:k-1]
		}
	}
	q.mask = nb - 1
}

// winOf maps a time to its absolute window number: an exact float
// integer (times beyond 2^53 windows merge, consistently, since every
// placement and comparison goes through this same computation).
func (q *calQueue) winOf(t float64) float64 {
	return math.Floor(t / q.width)
}

// bucketOf maps a window number to its bucket index. Bucket counts are
// powers of two, so the common case is a mask of the integer window;
// windows outside int64 range (astronomical times over tiny widths)
// take the slow math.Mod path.
func (q *calQueue) bucketOf(win float64) int {
	if win >= 0 && win < 1<<62 {
		return int(int64(win)) & q.mask
	}
	b := int(math.Mod(win, float64(len(q.buckets))))
	if b < 0 {
		b += len(q.buckets)
	}
	if b >= len(q.buckets) { // FP edge (win ~ 2^63)
		b = 0
	}
	return b
}

func (q *calQueue) push(e event) {
	ce := calEvent{event: e, win: q.winOf(e.time)}
	q.insert(q.bucketOf(ce.win), ce)
	q.n++
	if e.time < q.lastPrio {
		// Defensive resync: Sim.At clamps times to >= now, so this
		// cannot fire from the simulator, but the queue stays correct
		// for any caller by restarting the scan at the earlier event.
		q.lastPrio = e.time
		q.curWin = ce.win
		q.lastBucket = q.bucketOf(ce.win)
	}
	if q.n > 4*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// insert places ce into bucket b keeping the live region sorted by
// (time, seq).
func (q *calQueue) insert(b int, ce calEvent) {
	bk := &q.buckets[b]
	ev := bk.events
	lo, hi := bk.head, len(ev)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ev[mid].before(ce.event) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ev = append(ev, calEvent{})
	copy(ev[lo+1:], ev[lo:])
	ev[lo] = ce
	bk.events = ev
}

// take removes the first live event of bucket b. When the dead prefix
// left by prior takes outgrows the live region it is compacted away —
// without this, a bucket that never fully drains (steady interleaved
// push/pop at high occupancy) grows its backing array without bound.
func (q *calQueue) take(b int) calEvent {
	bk := &q.buckets[b]
	h := bk.head
	ce := bk.events[h]
	bk.events[h] = calEvent{} // release the closure for GC
	h++
	switch {
	case h == len(bk.events):
		bk.events = bk.events[:0]
		h = 0
	case h > 16 && h > len(bk.events)-h:
		live := copy(bk.events, bk.events[h:])
		for i := live; i < len(bk.events); i++ {
			bk.events[i] = calEvent{}
		}
		bk.events = bk.events[:live]
		h = 0
	}
	bk.head = h
	q.n--
	return ce
}

func (q *calQueue) pop() (event, bool) {
	if q.n == 0 {
		return event{}, false
	}
	nb := len(q.buckets)
	i, win := q.lastBucket, q.curWin
	for k := 0; k < nb; k++ {
		bk := &q.buckets[i]
		if h := bk.head; h < len(bk.events) {
			if ce := bk.events[h]; ce.win <= win {
				q.take(i)
				q.lastBucket, q.curWin, q.lastPrio = i, ce.win, ce.time
				q.maybeShrink()
				return ce.event, true
			}
		}
		i++
		if i == nb {
			i = 0
		}
		win++
	}
	// No event inside the next full year: the queue is sparse relative
	// to the calendar. Direct-search the global minimum and resync the
	// scan position to its window.
	ce, b := q.minEvent()
	q.take(b)
	q.lastBucket = b
	q.curWin = ce.win
	q.lastPrio = ce.time
	q.maybeShrink()
	return ce.event, true
}

// minEvent finds the (time, seq)-minimum across all buckets. Each
// bucket is sorted, so only first live events are compared.
func (q *calQueue) minEvent() (calEvent, int) {
	var best calEvent
	bi := -1
	for j := range q.buckets {
		bk := &q.buckets[j]
		if bk.head >= len(bk.events) {
			continue
		}
		if ce := bk.events[bk.head]; bi < 0 || ce.before(best.event) {
			best, bi = ce, j
		}
	}
	return best, bi
}

// peek reports the minimum pending time without disturbing the scan
// position (see the field comment: persisting a peeked-ahead position
// would misorder events pushed below it afterwards).
func (q *calQueue) peek() (float64, bool) {
	if q.n == 0 {
		return 0, false
	}
	nb := len(q.buckets)
	i, win := q.lastBucket, q.curWin
	for k := 0; k < nb; k++ {
		bk := &q.buckets[i]
		if h := bk.head; h < len(bk.events) {
			if ce := bk.events[h]; ce.win <= win {
				return ce.time, true
			}
		}
		i++
		if i == nb {
			i = 0
		}
		win++
	}
	ce, _ := q.minEvent()
	return ce.time, true
}

func (q *calQueue) len() int { return q.n }

func (q *calQueue) maybeShrink() {
	if nb := len(q.buckets); nb > calMinBuckets && q.n < nb {
		q.resize(nb / 2)
	}
}

// resize rebuilds the calendar at nb buckets with a freshly estimated
// width, reinserting every live event (window numbers are recomputed
// under the new width). Retired backing arrays feed the freelist.
// Amortized against the doubling/halving schedule this keeps push/pop
// O(1).
func (q *calQueue) resize(nb int) {
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	if w := q.estimateWidth(); w > 0 {
		q.width = w
	}
	old := q.buckets
	q.setBucketCount(nb)
	for b := range old {
		for _, ce := range old[b].events[old[b].head:] {
			ce.win = q.winOf(ce.time)
			q.insert(q.bucketOf(ce.win), ce)
		}
		// Pool the retired array with its slots cleared so freed
		// closures do not linger.
		arr := old[b].events[:cap(old[b].events)]
		for i := range arr {
			arr[i] = calEvent{}
		}
		if len(q.free) < nb {
			q.free = append(q.free, arr[:0])
		}
	}
	q.curWin = q.winOf(q.lastPrio)
	q.lastBucket = q.bucketOf(q.curWin)
	q.resizes++
	metricQueueResizes.Inc()
}

// estimateWidth derives a bucket width from a stride sample of queued
// events: the mean inter-event gap over the sampled span, scaled so an
// average bucket holds ~3 events. Returns 0 when no estimate is
// possible (empty or all-simultaneous queue), meaning keep the current
// width.
func (q *calQueue) estimateWidth() float64 {
	if q.n < 2 {
		return 0
	}
	stride := q.n / calSampleItems
	if stride < 1 {
		stride = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	sampled := 0
	skip := 0
	for b := range q.buckets {
		bk := q.buckets[b].events[q.buckets[b].head:]
		for j := range bk {
			if skip > 0 {
				skip--
				continue
			}
			skip = stride - 1
			t := bk[j].time
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
			sampled++
		}
	}
	if sampled < 2 || hi <= lo {
		return 0
	}
	// Sampled span approximates the full span; gap = span/n events.
	return 3 * (hi - lo) / float64(q.n)
}
