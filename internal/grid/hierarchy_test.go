package grid

import "testing"

func TestHierarchicalTestbed(t *testing.T) {
	g, err := HierarchicalTestbed(HierarchyParams{})
	if err != nil {
		t.Fatal(err)
	}
	sites := g.Sites()
	if len(sites) != 48 {
		t.Fatalf("sites: got %d want 48", len(sites))
	}
	if g.TotalHosts() != 10000 {
		t.Fatalf("hosts: got %d want 10000", g.TotalHosts())
	}
	// 10000 across 48 sites: 16 sites get 209 hosts, 32 get 208.
	counts := map[int]int{}
	for _, s := range sites {
		counts[len(g.HostNames(s))]++
	}
	if counts[209] != 16 || counts[208] != 32 {
		t.Errorf("host distribution off: %v", counts)
	}
	if sites[0] != "r00s00" {
		t.Errorf("first site %q; names must sort region 0 first", sites[0])
	}

	// Bandwidth hierarchy: same-region links regional, cross-region
	// transatlantic, same-site local.
	if got := g.ClassBetween("r00s00", "r00s15"); got != ClassRegional {
		t.Errorf("intra-region class: %q", got)
	}
	if got := g.ClassBetween("r00s00", "r02s00"); got != ClassTransatlantic {
		t.Errorf("cross-region class: %q", got)
	}
	if got := g.ClassBetween("r01s03", "r01s03"); got != ClassLocal {
		t.Errorf("same-site class: %q", got)
	}
	reg, ok := g.Link("r00s00", "r00s01")
	if !ok {
		t.Fatal("missing regional link")
	}
	wan, ok := g.Link("r00s00", "r01s00")
	if !ok {
		t.Fatal("missing transatlantic link")
	}
	if reg.Bandwidth <= wan.Bandwidth {
		t.Errorf("hierarchy inverted: regional %g <= wan %g", reg.Bandwidth, wan.Bandwidth)
	}
	if reg.LatencySec >= wan.LatencySec {
		t.Errorf("latency hierarchy inverted: regional %g >= wan %g", reg.LatencySec, wan.LatencySec)
	}

	// Deterministic for a fixed seed, including speed jitter.
	a, err := HierarchicalTestbed(HierarchyParams{Hosts: 100, Regions: 2, SitesPerRegion: 2, SpeedSpread: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HierarchicalTestbed(HierarchyParams{Hosts: 100, Regions: 2, SitesPerRegion: 2, SpeedSpread: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Sites() {
		for _, hn := range a.HostNames(s) {
			ha, _ := a.Host(hn)
			hb, _ := b.Host(hn)
			if hb == nil || ha.Speed != hb.Speed {
				t.Fatalf("host %s not deterministic across builds", hn)
			}
		}
	}

	if _, err := HierarchicalTestbed(HierarchyParams{Hosts: 10, Regions: 3, SitesPerRegion: 16}); err == nil {
		t.Error("hosts < sites accepted")
	}
}
