package grid

import (
	"fmt"
	"sort"
)

// Host is one compute element: a worker node at a site.
type Host struct {
	// Name is unique across the grid.
	Name string
	// Site is the owning site.
	Site string
	// Speed is the relative CPU speed (1.0 = reference host); a job of
	// W reference-seconds takes W/Speed simulated seconds here.
	Speed float64
	// Cores is the number of jobs the host runs concurrently.
	Cores int

	busy    int
	queue   []*Job
	running []*Job
	down    bool
}

// Down reports whether the host has been failed.
func (h *Host) Down() bool { return h.down }

// StorageElement is a site's storage system.
type StorageElement struct {
	Site     string
	Capacity int64
	used     int64
}

// Used returns the bytes currently allocated.
func (se *StorageElement) Used() int64 { return se.used }

// Free returns the bytes available.
func (se *StorageElement) Free() int64 { return se.Capacity - se.used }

// Alloc reserves space, failing when the element is full.
func (se *StorageElement) Alloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("grid: negative allocation")
	}
	if se.used+bytes > se.Capacity {
		return fmt.Errorf("grid: storage at %s full (%d used, %d requested, %d capacity)",
			se.Site, se.used, bytes, se.Capacity)
	}
	se.used += bytes
	return nil
}

// Release frees previously allocated space. Releasing more than is
// allocated is an accounting bug (typically a double release): the
// usage is clamped to zero so the element stays serviceable, but the
// underflow is counted and returned as an error instead of being
// silently absorbed — silent clamping let double-releases corrupt
// capacity accounting invisibly.
func (se *StorageElement) Release(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("grid: negative release at %s (%d bytes)", se.Site, bytes)
	}
	se.used -= bytes
	if se.used < 0 {
		over := -se.used
		se.used = 0
		metricReleaseUnderflow.Inc()
		return fmt.Errorf("grid: storage at %s released %d bytes more than allocated (double release?)",
			se.Site, over)
	}
	return nil
}

// Site groups hosts and a storage element.
type Site struct {
	Name    string
	Hosts   []*Host
	Storage *StorageElement
}

// Link classes of the bandwidth hierarchy: intra-site LAN moves are
// implicit (no Link object), links within a region are "regional", and
// links crossing regions are "transatlantic". Planners may weight
// staging costs by class to keep traffic low in the hierarchy.
const (
	ClassLocal         = "local"
	ClassRegional      = "regional"
	ClassTransatlantic = "transatlantic"
)

// Link models the WAN path between two sites.
type Link struct {
	From, To string
	// Bandwidth in bytes per simulated second, shared among Streams
	// parallel channels.
	Bandwidth float64
	// LatencySec is the per-transfer startup latency in seconds.
	LatencySec float64
	// Streams is the number of concurrent transfers served at full
	// per-stream rate; additional transfers queue. Default 4.
	Streams int
	// Class labels the link's tier in the bandwidth hierarchy
	// (ClassRegional/ClassTransatlantic); empty for flat topologies.
	Class string

	active  int
	waiting []*Transfer
}

func (l *Link) streamBandwidth() float64 {
	streams := l.Streams
	if streams <= 0 {
		streams = 4
	}
	return l.Bandwidth / float64(streams)
}

// Grid is the static topology plus dynamic host/link state.
type Grid struct {
	sites map[string]*Site
	hosts map[string]*Host
	links map[[2]string]*Link
	// LocalBandwidth is the intra-site (LAN) transfer rate in bytes per
	// second; intra-site transfers have no latency or stream limit.
	LocalBandwidth float64
}

// NewGrid returns an empty topology with a 1 GB/s LAN.
func NewGrid() *Grid {
	return &Grid{
		sites:          make(map[string]*Site),
		hosts:          make(map[string]*Host),
		links:          make(map[[2]string]*Link),
		LocalBandwidth: 1e9,
	}
}

// AddSite creates a site with the given storage capacity.
func (g *Grid) AddSite(name string, storageCapacity int64) (*Site, error) {
	if name == "" {
		return nil, fmt.Errorf("grid: empty site name")
	}
	if _, ok := g.sites[name]; ok {
		return nil, fmt.Errorf("grid: site %q already exists", name)
	}
	s := &Site{Name: name, Storage: &StorageElement{Site: name, Capacity: storageCapacity}}
	g.sites[name] = s
	return s, nil
}

// AddHost adds a worker node to an existing site.
func (g *Grid) AddHost(site, name string, speed float64, cores int) (*Host, error) {
	s, ok := g.sites[site]
	if !ok {
		return nil, fmt.Errorf("grid: unknown site %q", site)
	}
	if _, ok := g.hosts[name]; ok {
		return nil, fmt.Errorf("grid: host %q already exists", name)
	}
	if err := checkPositive("host speed", speed); err != nil {
		return nil, err
	}
	if cores <= 0 {
		cores = 1
	}
	h := &Host{Name: name, Site: site, Speed: speed, Cores: cores}
	s.Hosts = append(s.Hosts, h)
	g.hosts[name] = h
	return h, nil
}

// AddHosts adds n uniform hosts named prefix-0..n-1.
func (g *Grid) AddHosts(site, prefix string, n int, speed float64, cores int) error {
	for i := 0; i < n; i++ {
		if _, err := g.AddHost(site, fmt.Sprintf("%s-%d", prefix, i), speed, cores); err != nil {
			return err
		}
	}
	return nil
}

// Connect installs a bidirectional WAN link between two sites.
func (g *Grid) Connect(a, b string, bandwidth, latencySec float64, streams int) error {
	return g.ConnectClass(a, b, "", bandwidth, latencySec, streams)
}

// ConnectClass installs a bidirectional WAN link carrying a bandwidth-
// hierarchy class label (ClassRegional, ClassTransatlantic).
func (g *Grid) ConnectClass(a, b, class string, bandwidth, latencySec float64, streams int) error {
	if _, ok := g.sites[a]; !ok {
		return fmt.Errorf("grid: unknown site %q", a)
	}
	if _, ok := g.sites[b]; !ok {
		return fmt.Errorf("grid: unknown site %q", b)
	}
	if a == b {
		return fmt.Errorf("grid: cannot link site %q to itself", a)
	}
	if err := checkPositive("link bandwidth", bandwidth); err != nil {
		return err
	}
	l := &Link{From: a, To: b, Bandwidth: bandwidth, LatencySec: latencySec, Streams: streams, Class: class}
	g.links[linkKey(a, b)] = l
	return nil
}

// ClassBetween reports the bandwidth-hierarchy class of the path
// between two sites: ClassLocal for same-site moves, the link's class
// for connected sites (empty-class links report ClassRegional as the
// flat-mesh default), and "" when no path exists.
func (g *Grid) ClassBetween(a, b string) string {
	if a == b {
		return ClassLocal
	}
	l, ok := g.Link(a, b)
	if !ok {
		return ""
	}
	if l.Class == "" {
		return ClassRegional
	}
	return l.Class
}

func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Site returns a site by name.
func (g *Grid) Site(name string) (*Site, bool) {
	s, ok := g.sites[name]
	return s, ok
}

// Host returns a host by name.
func (g *Grid) Host(name string) (*Host, bool) {
	h, ok := g.hosts[name]
	return h, ok
}

// Link returns the link between two sites (order-insensitive).
func (g *Grid) Link(a, b string) (*Link, bool) {
	l, ok := g.links[linkKey(a, b)]
	return l, ok
}

// Sites returns site names, sorted.
func (g *Grid) Sites() []string {
	out := make([]string, 0, len(g.sites))
	for n := range g.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HostNames returns all host names at a site, sorted.
func (g *Grid) HostNames(site string) []string {
	s, ok := g.sites[site]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(s.Hosts))
	for _, h := range s.Hosts {
		out = append(out, h.Name)
	}
	sort.Strings(out)
	return out
}

// TotalHosts returns the number of hosts in the grid.
func (g *Grid) TotalHosts() int { return len(g.hosts) }

// QueueDepth returns the number of queued (not yet running) jobs at a
// site across all hosts.
func (g *Grid) QueueDepth(site string) int {
	s, ok := g.sites[site]
	if !ok {
		return 0
	}
	n := 0
	for _, h := range s.Hosts {
		if !h.down {
			n += len(h.queue)
		}
	}
	return n
}

// BusyCores returns the number of occupied cores at a site.
func (g *Grid) BusyCores(site string) int {
	s, ok := g.sites[site]
	if !ok {
		return 0
	}
	n := 0
	for _, h := range s.Hosts {
		if !h.down {
			n += h.busy
		}
	}
	return n
}

// FreeCores returns the number of idle cores at a site.
func (g *Grid) FreeCores(site string) int {
	s, ok := g.sites[site]
	if !ok {
		return 0
	}
	n := 0
	for _, h := range s.Hosts {
		if !h.down {
			n += h.Cores - h.busy
		}
	}
	return n
}

// TransferTime predicts the unloaded duration of moving bytes between
// sites (zero for same-site moves over an infinitely parallel LAN is
// wrong; LAN time is bytes/LocalBandwidth).
func (g *Grid) TransferTime(from, to string, bytes int64) (float64, error) {
	if from == to {
		return float64(bytes) / g.LocalBandwidth, nil
	}
	l, ok := g.Link(from, to)
	if !ok {
		return 0, fmt.Errorf("grid: no link between %q and %q", from, to)
	}
	return l.LatencySec + float64(bytes)/l.streamBandwidth(), nil
}
