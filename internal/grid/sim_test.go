package grid

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// driveQueueScenario runs one randomized schedule against a Sim and
// returns the full dispatch trajectory: for every dispatched event, its
// id, the sim time it ran at, and the Pending count after it ran. The
// schedule is generated from its own seeded source so both engines see
// byte-identical call sequences: bursts of simultaneous events
// (quantized times force ties), far-future outliers (exercising the
// calendar's year-skip and direct-search paths), nested rescheduling,
// and interleaved RunUntil checkpoints.
func driveQueueScenario(t *testing.T, seed int64, opts Options) []string {
	t.Helper()
	s := NewSimOpts(seed, opts)
	rng := rand.New(rand.NewSource(seed * 7779))
	var trace []string
	id := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			id++
			eid := id
			var at float64
			switch rng.Intn(10) {
			case 0: // far-future outlier: sparse-year direct search
				at = s.Now() + 1e4 + 1e3*rng.Float64()
			case 1, 2: // exact tie burst: quantized to a coarse lattice
				at = s.Now() + float64(rng.Intn(4))
			case 3: // zero delay: same-time FIFO against running events
				at = s.Now()
			default:
				at = s.Now() + 50*rng.Float64()
			}
			reschedule := depth < 3 && rng.Intn(4) == 0
			s.At(at, func() {
				trace = append(trace, fmt.Sprintf("%d@%.9g/%d", eid, s.Now(), s.Pending()))
				if reschedule {
					schedule(depth + 1)
				}
			})
		}
	}
	// Several rounds: schedule a batch, drain part of it with RunUntil,
	// schedule more (pushing behind the current frontier), then drain.
	for round := 0; round < 5; round++ {
		schedule(0)
		s.RunUntil(s.Now() + 20*rng.Float64())
		trace = append(trace, fmt.Sprintf("until:%.9g/%d", s.Now(), s.Pending()))
		schedule(0)
	}
	end := s.Run()
	trace = append(trace, fmt.Sprintf("end:%.9g", end))
	return trace
}

// TestQueueEquivalenceOracle is the determinism contract: across many
// seeds, the calendar queue must produce the byte-identical event
// trajectory (times, order, pending counts, final state) as the heap
// oracle, including simultaneous-event tie-breaks.
func TestQueueEquivalenceOracle(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		cal := driveQueueScenario(t, seed, Options{})
		heap := driveQueueScenario(t, seed, Options{HeapQueue: true})
		if len(cal) != len(heap) {
			t.Fatalf("seed %d: trajectory lengths differ: calendar %d vs heap %d", seed, len(cal), len(heap))
		}
		for i := range cal {
			if cal[i] != heap[i] {
				t.Fatalf("seed %d: trajectories diverge at step %d: calendar %q vs heap %q",
					seed, i, cal[i], heap[i])
			}
		}
	}
}

// TestCalendarQueueResizes checks the occupancy-driven resize policy
// actually fires in both directions and never disturbs ordering.
func TestCalendarQueueResizes(t *testing.T) {
	q := newCalQueue()
	const n = 4096
	for i := 0; i < n; i++ {
		q.push(event{time: float64(i % 97), seq: int64(i), fn: func() {}})
	}
	if len(q.buckets) < n/4 {
		t.Errorf("buckets did not grow: %d for %d events", len(q.buckets), n)
	}
	grown := q.resizes
	if grown == 0 {
		t.Error("no grow resizes recorded")
	}
	var prev event
	for i := 0; i < n; i++ {
		e, ok := q.pop()
		if !ok {
			t.Fatalf("queue dried up at %d", i)
		}
		if i > 0 && e.before(prev) {
			t.Fatalf("order violated at %d: (%g,%d) after (%g,%d)", i, e.time, e.seq, prev.time, prev.seq)
		}
		prev = e
	}
	if q.resizes == grown {
		t.Error("no shrink resizes recorded while draining")
	}
	if len(q.buckets) != calMinBuckets {
		t.Errorf("buckets did not shrink back: %d", len(q.buckets))
	}
	if _, ok := q.pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

// TestCalendarQueueSimultaneousFIFO floods one instant with events:
// the degenerate all-ties distribution (width estimation impossible)
// must still dispatch in seq order.
func TestCalendarQueueSimultaneousFIFO(t *testing.T) {
	s := NewSim(1)
	const n = 2000
	var got []int
	for i := 0; i < n; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != n {
		t.Fatalf("dispatched %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}

func TestSimAtRejectsNonFiniteTimes(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad := bad
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("At(%v) did not panic", bad)
					return
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, fmt.Sprint(bad)) {
					t.Errorf("panic for %v does not name the time value: %q", bad, msg)
				}
			}()
			NewSim(1).At(bad, func() {})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("After(%v) did not panic", bad)
				}
			}()
			NewSim(1).After(bad, func() {})
		}()
	}
	// Finite times, including huge ones, stay accepted.
	s := NewSim(1)
	s.At(1e18, func() {})
	if end := s.Run(); end != 1e18 {
		t.Errorf("huge finite time mishandled: end=%g", end)
	}
}

// TestHeapQueueOptionSelectsOracle confirms both engines are reachable
// through the public API.
func TestHeapQueueOptionSelectsOracle(t *testing.T) {
	if _, ok := NewSimOpts(1, Options{HeapQueue: true}).q.(*heapQueue); !ok {
		t.Error("HeapQueue option ignored")
	}
	if _, ok := NewSim(1).q.(*calQueue); !ok {
		t.Error("default engine is not the calendar queue")
	}
}
