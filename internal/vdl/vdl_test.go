package vdl

import (
	"reflect"
	"strings"
	"testing"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// paperT1 is the basic transformation of Appendix A, verbatim.
const paperT1 = `
TR t1( output a2, input a1, none env="100000", none pa="500" ) {
  argument parg = "-p "${none:pa};
  argument farg = "-f "${input:a1};
  argument xarg = "-x -y ";
  argument stdout = ${output:a2};
  exec = "/usr/bin/app3";
  env.MAXMEM = ${none:env};
}
`

// paperD1 is the derivation of Appendix A, verbatim.
const paperD1 = `
DV d1->example1::t1(
  a2=@{output:"run1.exp15.T1932.summary"},
  a1=@{input:"run1.exp15.T1932.raw"},
  env="20000",
  pa="600"
);
`

// paperChain is the two-transformation provenance chain of Appendix A.
const paperChain = `
TR trans1( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app1";
}
TR trans2( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app2";
}
DV usetrans1->trans1( a2=@{output:"file2"}, a1=@{input:"file1"} );
DV usetrans2->trans2( a2=@{output:"file3"}, a1=@{input:"file2"} );
`

// paperCompound is the compound transformation trans4 plus its callees
// and the nested compound trans5, from Appendix A.
const paperCompound = `
TR trans1( output a2, input a1 ) {
  argument = "...";
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  profile hints.pfnHint = "/usr/bin/app1";
}
TR trans2( output a2, input a1 ) {
  argument = "...";
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app2";
}
TR trans3( input a2, input a1, output a3 ) {
  argument parg = "-p foo";
  argument farg = "-f "${input:a1};
  argument xarg = "-x -y -o "${output:a3};
  argument stdin = ${input:a2};
  exec = "/usr/bin/app3";
}
TR trans4( input a2, input a1,
    inout a5=@{inout:"anywhere":""},
    inout a4=@{inout:"somewhere":""},
    output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans2( a2=${output:a5}, a1=${a2} );
  trans3( a2=${input:a5}, a1=${input:a4}, a3=${output:a3} );
}
TR trans5( input a2, input a1,
    inout a4=@{inout:"someplace":""},
    output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans4( a2=${input:a4}, a1=${a2}, a3=${a3} );
}
`

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`TR d1->t:2 ( "a\"b" @{ ${ } ) [ ] < > | , ; = :: :`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	want := []TokenKind{tIdent, tIdent, tArrow, tIdent, tColon, tIdent, tLParen,
		tString, tAtBrace, tDolBrace, tRBrace, tRParen, tLBracket, tRBracket,
		tLAngle, tRAngle, tPipe, tComma, tSemi, tEq, tDColon, tColon, tEOF}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v\nwant    %v", kinds, want)
	}
	if toks[7].Text != `a"b` {
		t.Errorf("string escape: %q", toks[7].Text)
	}
}

func TestLexerHyphenIdents(t *testing.T) {
	toks, err := lexAll(`Zebra-file d1->t`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "Zebra-file" {
		t.Errorf("hyphenated ident lexed as %q", toks[0].Text)
	}
	if toks[1].Text != "d1" || toks[2].Kind != tArrow || toks[3].Text != "t" {
		t.Errorf("arrow split wrong: %v", toks)
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := lexAll("a # line\n b // line2\n /* block \n more */ c")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.Text)
	}
	if !reflect.DeepEqual(texts, []string{"a", "b", "c"}) {
		t.Errorf("comment handling: %v", texts)
	}
	if _, err := lexAll("/* unterminated"); err == nil {
		t.Error("unterminated block comment accepted")
	}
	if _, err := lexAll(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lexAll(`"\q"`); err == nil {
		t.Error("bad escape accepted")
	}
	if _, err := lexAll("%"); err == nil {
		t.Error("stray character accepted")
	}
	if _, err := lexAll("@x"); err == nil {
		t.Error("stray @ accepted")
	}
	if _, err := lexAll("$x"); err == nil {
		t.Error("stray $ accepted")
	}
	if _, err := lexAll("- x"); err == nil {
		t.Error("stray - accepted")
	}
}

func TestParsePaperT1(t *testing.T) {
	prog, err := Parse(paperT1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Transformations) != 1 {
		t.Fatalf("got %d transformations", len(prog.Transformations))
	}
	tr := prog.Transformations[0]
	if tr.Name != "t1" || tr.Kind != schema.Simple || tr.Exec != "/usr/bin/app3" {
		t.Errorf("header: %+v", tr)
	}
	if len(tr.Args) != 4 {
		t.Fatalf("args: %v", tr.Args)
	}
	if tr.Args[0].Name != "a2" || tr.Args[0].Direction != schema.Out {
		t.Errorf("arg0: %+v", tr.Args[0])
	}
	if tr.Args[2].Default == nil || tr.Args[2].Default.Value != "100000" {
		t.Errorf("env default: %+v", tr.Args[2].Default)
	}
	if len(tr.ArgTemplates) != 4 {
		t.Fatalf("templates: %v", tr.ArgTemplates)
	}
	parg := tr.ArgTemplates[0]
	if parg.Name != "parg" || parg.Parts[0].Literal != "-p " || parg.Parts[1].Ref != "pa" {
		t.Errorf("parg: %+v", parg)
	}
	stdout := tr.ArgTemplates[3]
	if stdout.Name != "stdout" || !stdout.IsStdio() || stdout.Parts[0].Ref != "a2" {
		t.Errorf("stdout: %+v", stdout)
	}
	if env := tr.Env["MAXMEM"]; len(env) != 1 || env[0].Ref != "env" {
		t.Errorf("env.MAXMEM: %+v", tr.Env)
	}
}

func TestParsePaperD1(t *testing.T) {
	prog, err := Parse(paperT1 + paperD1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Derivations) != 1 {
		t.Fatalf("got %d derivations", len(prog.Derivations))
	}
	dv := prog.Derivations[0]
	if dv.Name != "d1" || dv.TR != "example1::t1" {
		t.Errorf("header: %+v", dv)
	}
	if dv.ID == "" || !strings.HasPrefix(dv.ID, "dv-") {
		t.Errorf("not canonicalized: %q", dv.ID)
	}
	a2 := dv.Params["a2"]
	if a2.Kind != schema.ADataset || a2.Value != "run1.exp15.T1932.summary" || a2.Direction != "output" {
		t.Errorf("a2: %+v", a2)
	}
	if dv.Params["pa"].Value != "600" {
		t.Errorf("pa: %+v", dv.Params["pa"])
	}
}

func TestParsePaperChain(t *testing.T) {
	prog, err := Parse(paperChain)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Transformations) != 2 || len(prog.Derivations) != 2 {
		t.Fatalf("counts: %d TR, %d DV", len(prog.Transformations), len(prog.Derivations))
	}
	d1, d2 := prog.Derivations[0], prog.Derivations[1]
	tr := prog.Transformations[0]
	if got := d1.Outputs(tr); len(got) != 1 || got[0] != "file2" {
		t.Errorf("usetrans1 outputs: %v", got)
	}
	if got := d2.Inputs(prog.Transformations[1]); len(got) != 1 || got[0] != "file2" {
		t.Errorf("usetrans2 inputs: %v", got)
	}
}

func TestParsePaperCompound(t *testing.T) {
	prog, err := Parse(paperCompound)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Transformations) != 5 {
		t.Fatalf("got %d transformations", len(prog.Transformations))
	}
	trans1 := prog.Transformations[0]
	if trans1.Exec != "" || trans1.Profile["hints.pfnHint"] != "/usr/bin/app1" {
		t.Errorf("trans1 executable via profile: %+v", trans1)
	}
	if trans1.ArgTemplates[0].Name != "" {
		t.Errorf("anonymous argument template got name %q", trans1.ArgTemplates[0].Name)
	}
	trans4 := prog.Transformations[3]
	if trans4.Kind != schema.Compound || len(trans4.Calls) != 3 {
		t.Fatalf("trans4: %+v", trans4)
	}
	if trans4.Args[2].Default == nil || trans4.Args[2].Default.Value != "anywhere" {
		t.Errorf("trans4 a5 default: %+v", trans4.Args[2].Default)
	}
	call0 := trans4.Calls[0]
	if call0.TR != "trans1" || call0.Bindings["a2"].Kind != schema.AFormalRef || call0.Bindings["a2"].Value != "a4" {
		t.Errorf("trans4 call0: %+v", call0)
	}
	trans5 := prog.Transformations[4]
	if trans5.Calls[1].TR != "trans4" {
		t.Errorf("trans5 nested compound call: %+v", trans5.Calls)
	}
}

func TestParseTypeAndDataset(t *testing.T) {
	src := `
TYPE content CMS;
TYPE content Simulation extends CMS;
TYPE format Fileset;
TYPE encoding ASCII;
DS raw1<Simulation:Fileset:ASCII> file "/data/raw1" size "1024" with owner="mike", curated="yes";
DS virt1<Simulation> virtual of raw1 expr "events 1-100";
DS untyped;
DS fs fileset ["/a", "/b"];
DS op opaque cms-custom "{\"x\":1}";
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Types) != 4 {
		t.Fatalf("types: %v", prog.Types)
	}
	if prog.Types[1].Parent != "CMS" || prog.Types[1].Dim != dtype.Content {
		t.Errorf("extends: %+v", prog.Types[1])
	}
	if len(prog.Datasets) != 5 {
		t.Fatalf("datasets: %d", len(prog.Datasets))
	}
	raw := prog.Datasets[0]
	if raw.Type != (dtype.Type{Content: "Simulation", Format: "Fileset", Encoding: "ASCII"}) {
		t.Errorf("raw type: %v", raw.Type)
	}
	if raw.Size != 1024 || raw.Attrs["owner"] != "mike" {
		t.Errorf("raw: %+v", raw)
	}
	if d, ok := raw.Descriptor.(schema.FileDescriptor); !ok || d.Path != "/data/raw1" {
		t.Errorf("raw descriptor: %+v", raw.Descriptor)
	}
	if v, ok := prog.Datasets[1].Descriptor.(schema.VirtualDescriptor); !ok || v.Of != "raw1" {
		t.Errorf("virtual: %+v", prog.Datasets[1].Descriptor)
	}
	if prog.Datasets[2].Descriptor != nil {
		t.Error("untyped DS should have nil descriptor")
	}
	if fs, ok := prog.Datasets[3].Descriptor.(schema.FileSetDescriptor); !ok || len(fs.Paths) != 2 {
		t.Errorf("fileset: %+v", prog.Datasets[3].Descriptor)
	}
	if op, ok := prog.Datasets[4].Descriptor.(schema.OpaqueDescriptor); !ok || op.Schema != "cms-custom" {
		t.Errorf("opaque: %+v", prog.Datasets[4].Descriptor)
	}
}

func TestParseTypedFormals(t *testing.T) {
	src := `
TR analyze( input a<Simulation:Fileset | FITS-file>, output b<_:Fileset> ) {
  exec = "/bin/analyze";
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr := prog.Transformations[0]
	if len(tr.Args[0].Types) != 2 {
		t.Fatalf("union: %+v", tr.Args[0].Types)
	}
	if tr.Args[0].Types[0] != (dtype.Type{Content: "Simulation", Format: "Fileset"}) {
		t.Errorf("first member: %v", tr.Args[0].Types[0])
	}
	if tr.Args[1].Types[0] != (dtype.Type{Format: "Fileset"}) {
		t.Errorf("underscore content: %v", tr.Args[1].Types[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"BOGUS x;",
		"TR t( {",
		"TR t( sideways a ) { exec = \"/x\"; }",
		"TR t( input a ) { }",                         // no exec
		"TR t( input a ) { exec = \"/x\" }",           // missing semi
		"TR t( input a, input a ) { exec = \"/x\"; }", // dup formal
		"TR t( input a ) { argument = ${ghost}; exec = \"/x\"; }",
		"TR t( input a ) { env. = \"x\"; exec = \"/x\"; }", // empty env name
		`DV d->t( a=@{output:"x"}, a=@{input:"y"} );`,      // dup binding
		`DV d->t( a=${ref} );`,                             // refs not allowed in DV
		`DV ns::d->t( a="x" );`,                            // namespaced DV name
		`DV d->t( a=[["x"]] );`,                            // nested list
		`DV d->t( a=@{sideways:"x"} );`,                    // bad anchor dir
		"TYPE sideways X;",
		"TYPE content X extends Ghost", // missing semi
		`DS d size "abc";`,
		"42",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid source: %s", src)
		}
	}
}

func TestEnvLifting(t *testing.T) {
	prog, err := Parse(paperT1 + `DV d->t1( a2=@{output:"o"}, a1=@{input:"i"}, env.MAXMEM="42" );`)
	if err != nil {
		t.Fatal(err)
	}
	dv := prog.Derivations[0]
	if dv.Env["MAXMEM"] != "42" {
		t.Errorf("env not lifted: %+v", dv)
	}
	if _, ok := dv.Params["env.MAXMEM"]; ok {
		t.Error("env binding left in params")
	}
}

// roundTrip parses src, prints, reparses, and requires equality of the
// resulting programs.
func roundTrip(t *testing.T, src string) Program {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := Print(p1)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse printed text: %v\n%s", err, text)
	}
	if !programsEqual(p1, p2) {
		t.Fatalf("round trip mismatch\n--- printed ---\n%s\n--- p1 ---\n%+v\n--- p2 ---\n%+v", text, p1, p2)
	}
	return p1
}

// programsEqual compares programs modulo derivation signature (printing
// re-canonicalizes) and the Direction annotation on refs whose printed
// form preserves it anyway.
func programsEqual(a, b Program) bool {
	return reflect.DeepEqual(a, b)
}

func TestRoundTripPaperSources(t *testing.T) {
	for _, src := range []string{paperT1, paperT1 + paperD1, paperChain, paperCompound} {
		roundTrip(t, src)
	}
}

func TestRoundTripFullFeatures(t *testing.T) {
	src := `
TYPE content CMS;
TYPE content Simulation extends CMS;
DS raw<Simulation> file "/d/raw" size "77" with a="1";
TR ns::t:1.2( input a<Simulation>, none p="x", output b ) {
  argument = "-v ";
  argument files = "-f "${input:a}" extra";
  argument stdout = ${output:b};
  exec = "/bin/t";
  profile hints.queue = "fast";
  env.PATH = "/bin:"${none:p};
  attr author = "wilde";
}
DV run1->ns::t:1.2( a=@{input:"raw"}, b=@{output:"cooked"}, p="y", env.HOME="/tmp" ) with note="first";
DV ns::t:1.2( a=@{input:"raw"}, b=@{output:"cooked2"}, p=["y", "z"] );
`
	p := roundTrip(t, src)
	if p.Derivations[1].Name != "" {
		t.Error("anonymous derivation acquired a name")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for _, src := range []string{paperT1 + paperD1, paperCompound, `
TYPE content CMS;
DS raw<CMS> file "/d/raw" size "9" with k="v";
`} {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		data, err := MarshalXML(p1)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := UnmarshalXML(data)
		if err != nil {
			t.Fatalf("unmarshal: %v\n%s", err, data)
		}
		if !programsEqual(p1, p2) {
			t.Errorf("xml round trip mismatch for:\n%s\nxml:\n%s", src, data)
		}
	}
}

func TestXMLRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalXML([]byte("<vdl><type dim='sideways' name='x'/></vdl>")); err == nil {
		t.Error("bad dimension accepted")
	}
	if _, err := UnmarshalXML([]byte("not xml")); err == nil {
		t.Error("non-xml accepted")
	}
}

func TestProgramMerge(t *testing.T) {
	p1, _ := Parse(paperT1)
	p2, _ := Parse(paperT1 + paperD1)
	var all Program
	all.Merge(p1)
	all.Merge(p2)
	if len(all.Transformations) != 2 || len(all.Derivations) != 1 {
		t.Errorf("merge: %d TR, %d DV", len(all.Transformations), len(all.Derivations))
	}
}

// Property-style: generate programs from fragments, ensure print/parse
// stability (fixpoint after one round).
func TestPrintFixpoint(t *testing.T) {
	p1, err := Parse(paperCompound + paperD1 + paperT1)
	if err != nil {
		t.Fatal(err)
	}
	text1 := Print(p1)
	p2, err := Parse(text1)
	if err != nil {
		t.Fatal(err)
	}
	text2 := Print(p2)
	if text1 != text2 {
		t.Errorf("printer not a fixpoint:\n%s\n---\n%s", text1, text2)
	}
}

func TestPrintDatasetVariants(t *testing.T) {
	// All DS descriptor spellings print and re-parse.
	src := `
TYPE format Fileset;
DS plain;
DS f file "/a/b" size "7";
DS fs<_:Fileset> fileset ["/x", "/y"] with note="two files";
DS v virtual of f expr "rows 1-5";
DS op opaque community-schema "payload";
`
	p := roundTrip(t, src)
	if len(p.Datasets) != 5 {
		t.Fatalf("datasets: %d", len(p.Datasets))
	}
}

func TestSyntaxErrorPositions(t *testing.T) {
	_, err := Parse("TR t( output o, input i ) {\n  exec = 42;\n}")
	if err == nil {
		t.Fatal("bad exec accepted")
	}
	var se *SyntaxError
	if !errorsAs(err, &se) {
		t.Fatalf("not a SyntaxError: %v", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line: %d (%v)", se.Pos.Line, err)
	}
	if se.Error() == "" {
		t.Error("empty error text")
	}
}

func errorsAs(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}

func TestXMLAllDimensionsAndActuals(t *testing.T) {
	src := `
TYPE content C;
TYPE format F;
TYPE encoding E;
TR t( output o, input i, none p="x" ) {
  exec = "/b";
}
DV d->t( o=@{output:"out"}, i=[@{input:"a"}, @{input:"b"}], p="v" );
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalXML(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := UnmarshalXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if !programsEqual(p1, p2) {
		t.Errorf("xml round trip:\n%s", data)
	}
	// Bad actual kind rejected.
	if _, err := UnmarshalXML([]byte(`<vdl><derivation tr="t"><param name="a"><value kind="alien"/></param></derivation></vdl>`)); err == nil {
		t.Error("alien actual kind accepted")
	}
	// Unknown direction rejected.
	if _, err := UnmarshalXML([]byte(`<vdl><transformation name="t" kind="simple"><arg name="a" direction="sideways"/><exec>/b</exec></transformation></vdl>`)); err == nil {
		t.Error("alien direction accepted")
	}
}

func TestAnchorHintForms(t *testing.T) {
	// Third anchor component (temp-name hint) parses and is discarded.
	prog, err := Parse(`
TR t( inout m=@{inout:"base":"hint"}, output o, input i ) { exec = "/b"; }
`)
	if err != nil {
		t.Fatal(err)
	}
	def := prog.Transformations[0].Args[0].Default
	if def == nil || def.Value != "base" {
		t.Errorf("anchor default: %+v", def)
	}
	// Malformed anchors rejected.
	for _, bad := range []string{
		`DV d->t( a=@{output} );`,
		`DV d->t( a=@{output:} );`,
		`DV d->t( a=@{output:"x":} );`,
		`DV d->t( a=@{output:"x" );`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
