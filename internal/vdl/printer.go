package vdl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Print renders a Program as canonical VDL text. Parsing the output
// yields a Program equal to the input (modulo canonical ordering of
// attribute maps, which print sorted).
func Print(p Program) string {
	var b strings.Builder
	for _, td := range p.Types {
		printTypeDecl(&b, td)
	}
	for _, ds := range p.Datasets {
		printDataset(&b, ds)
	}
	for _, tr := range p.Transformations {
		PrintTransformation(&b, tr)
	}
	for _, dv := range p.Derivations {
		PrintDerivation(&b, dv)
	}
	return b.String()
}

func printTypeDecl(b *strings.Builder, td TypeDecl) {
	dim := map[dtype.Dimension]string{dtype.Content: "content", dtype.Format: "format", dtype.Encoding: "encoding"}[td.Dim]
	fmt.Fprintf(b, "TYPE %s %s", dim, td.Name)
	if td.Parent != "" {
		fmt.Fprintf(b, " extends %s", td.Parent)
	}
	b.WriteString(";\n")
}

func printDataset(b *strings.Builder, ds schema.Dataset) {
	fmt.Fprintf(b, "DS %s", ds.Name)
	if !ds.Type.IsUniversal() {
		fmt.Fprintf(b, "<%s>", typeExprString(ds.Type))
	}
	switch d := ds.Descriptor.(type) {
	case schema.FileDescriptor:
		fmt.Fprintf(b, " file %s", strconv.Quote(d.Path))
	case schema.FileSetDescriptor:
		b.WriteString(" fileset [")
		for i, p := range d.Paths {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Quote(p))
		}
		b.WriteString("]")
	case schema.VirtualDescriptor:
		fmt.Fprintf(b, " virtual of %s expr %s", d.Of, strconv.Quote(d.Expr))
	case schema.OpaqueDescriptor:
		fmt.Fprintf(b, " opaque %s %s", d.Schema, strconv.Quote(string(d.Body)))
	}
	if ds.Size > 0 {
		fmt.Fprintf(b, " size %q", strconv.FormatInt(ds.Size, 10))
	}
	printWithAttrs(b, ds.Attrs)
	b.WriteString(";\n")
}

// typeExprString renders a dtype.Type in VDL's colon-separated form
// with "_" for unspecified dimensions, trailing blanks trimmed.
func typeExprString(t dtype.Type) string {
	parts := []string{t.Content, t.Format, t.Encoding}
	last := 0
	for i, p := range parts {
		if p != "" {
			last = i
		}
	}
	out := make([]string, 0, last+1)
	for i := 0; i <= last; i++ {
		if parts[i] == "" {
			out = append(out, "_")
		} else {
			out = append(out, parts[i])
		}
	}
	return strings.Join(out, ":")
}

// PrintTransformation renders one TR declaration.
func PrintTransformation(b *strings.Builder, tr schema.Transformation) {
	fmt.Fprintf(b, "TR %s(", tr.Ref())
	for i, f := range tr.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", f.Direction, f.Name)
		if len(f.Types) > 0 {
			b.WriteString("<")
			for j, t := range f.Types {
				if j > 0 {
					b.WriteString("|")
				}
				b.WriteString(typeExprString(t))
			}
			b.WriteString(">")
		}
		if f.Default != nil {
			b.WriteString("=")
			printActual(b, *f.Default)
		}
	}
	b.WriteString(" ) {\n")
	for _, at := range tr.ArgTemplates {
		b.WriteString("  argument")
		if at.Name != "" {
			b.WriteString(" " + at.Name)
		}
		b.WriteString(" = ")
		printTemplate(b, at.Parts)
		b.WriteString(";\n")
	}
	if tr.Exec != "" {
		fmt.Fprintf(b, "  exec = %s;\n", strconv.Quote(tr.Exec))
	}
	for _, k := range sortedKeys(tr.Profile) {
		fmt.Fprintf(b, "  profile %s = %s;\n", k, strconv.Quote(tr.Profile[k]))
	}
	for _, k := range sortedKeys(tr.Env) {
		fmt.Fprintf(b, "  env.%s = ", k)
		printTemplate(b, tr.Env[k])
		b.WriteString(";\n")
	}
	for _, k := range sortedKeys(tr.Attrs) {
		fmt.Fprintf(b, "  attr %s = %s;\n", k, strconv.Quote(tr.Attrs[k]))
	}
	for _, c := range tr.Calls {
		fmt.Fprintf(b, "  %s(", c.TR)
		printBindings(b, c.Bindings)
		b.WriteString(" );\n")
	}
	b.WriteString("}\n")
}

// PrintDerivation renders one DV declaration.
func PrintDerivation(b *strings.Builder, dv schema.Derivation) {
	b.WriteString("DV ")
	if dv.Name != "" {
		fmt.Fprintf(b, "%s->", dv.Name)
	}
	fmt.Fprintf(b, "%s(", dv.TR)
	// Env overrides print as env.X bindings so they round-trip.
	bindings := make(map[string]schema.Actual, len(dv.Params)+len(dv.Env))
	for k, v := range dv.Params {
		bindings[k] = v
	}
	for k, v := range dv.Env {
		bindings["env."+k] = schema.StringActual(v)
	}
	printBindings(b, bindings)
	b.WriteString(" )")
	printWithAttrs(b, dv.Attrs)
	b.WriteString(";\n")
}

func printBindings(b *strings.Builder, bindings map[string]schema.Actual) {
	for i, k := range sortedKeys(bindings) {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(b, " %s=", k)
		printActual(b, bindings[k])
	}
}

func printActual(b *strings.Builder, a schema.Actual) {
	switch a.Kind {
	case schema.AString:
		b.WriteString(strconv.Quote(a.Value))
	case schema.ADataset:
		dir := a.Direction
		if dir == "" {
			dir = "inout"
		}
		fmt.Fprintf(b, "@{%s:%s}", dir, strconv.Quote(a.Value))
	case schema.AFormalRef:
		if a.Direction != "" {
			fmt.Fprintf(b, "${%s:%s}", a.Direction, a.Value)
		} else {
			fmt.Fprintf(b, "${%s}", a.Value)
		}
	case schema.AList:
		b.WriteString("[")
		for i, e := range a.List {
			if i > 0 {
				b.WriteString(", ")
			}
			printActual(b, e)
		}
		b.WriteString("]")
	}
}

func printTemplate(b *strings.Builder, parts []schema.TemplatePart) {
	for _, p := range parts {
		if p.Ref != "" {
			if p.RefDirection != "" {
				fmt.Fprintf(b, "${%s:%s}", p.RefDirection, p.Ref)
			} else {
				fmt.Fprintf(b, "${%s}", p.Ref)
			}
		} else {
			b.WriteString(strconv.Quote(p.Literal))
		}
	}
}

func printWithAttrs(b *strings.Builder, attrs schema.Attributes) {
	if len(attrs) == 0 {
		return
	}
	b.WriteString(" with ")
	for i, k := range sortedKeys(attrs) {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s=%s", k, strconv.Quote(attrs[k]))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
