package vdl

import (
	"fmt"
	"strconv"
	"strings"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// TypeDecl is a dataset-type declaration ("TYPE content Simulation
// extends CMS;") that populates a type registry dimension.
type TypeDecl struct {
	Dim    dtype.Dimension
	Name   string
	Parent string
}

// Program is the result of parsing a VDL source: the declared types,
// datasets, transformations and derivations in source order.
type Program struct {
	Types           []TypeDecl
	Datasets        []schema.Dataset
	Transformations []schema.Transformation
	Derivations     []schema.Derivation
}

// Merge appends the declarations of other to p.
func (p *Program) Merge(other Program) {
	p.Types = append(p.Types, other.Types...)
	p.Datasets = append(p.Datasets, other.Datasets...)
	p.Transformations = append(p.Transformations, other.Transformations...)
	p.Derivations = append(p.Derivations, other.Derivations...)
}

// Parse parses VDL source text into a Program. Every derivation is
// canonicalized (its ID set from its signature) and every object is
// structurally validated.
func Parse(src string) (Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return Program{}, err
	}
	var prog Program
	for p.tok.Kind != tEOF {
		if p.tok.Kind != tIdent {
			return Program{}, p.errf("expected declaration keyword, found %s", p.tok.Kind)
		}
		switch p.tok.Text {
		case "TR":
			tr, err := p.parseTR()
			if err != nil {
				return Program{}, err
			}
			if err := tr.Validate(); err != nil {
				return Program{}, err
			}
			prog.Transformations = append(prog.Transformations, tr)
		case "DV":
			dv, err := p.parseDV()
			if err != nil {
				return Program{}, err
			}
			if err := dv.Validate(); err != nil {
				return Program{}, err
			}
			prog.Derivations = append(prog.Derivations, dv.Canonicalize())
		case "DS":
			ds, err := p.parseDS()
			if err != nil {
				return Program{}, err
			}
			if err := ds.Validate(); err != nil {
				return Program{}, err
			}
			prog.Datasets = append(prog.Datasets, ds)
		case "TYPE":
			td, err := p.parseType()
			if err != nil {
				return Program{}, err
			}
			prog.Types = append(prog.Types, td)
		default:
			return Program{}, p.errf("expected TR, DV, DS or TYPE, found %q", p.tok.Text)
		}
	}
	return prog, nil
}

type parser struct {
	lex *lexer
	tok Token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind and returns its text.
func (p *parser) expect(k TokenKind) (string, error) {
	if p.tok.Kind != k {
		return "", p.errf("expected %s, found %s%s", k, p.tok.Kind, textSuffix(p.tok))
	}
	text := p.tok.Text
	return text, p.advance()
}

func textSuffix(t Token) string {
	if t.Kind == tIdent || t.Kind == tString {
		return fmt.Sprintf(" %q", t.Text)
	}
	return ""
}

// accept consumes the token if it has the given kind.
func (p *parser) accept(k TokenKind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.advance()
}

// acceptKeyword consumes an identifier with the given text.
func (p *parser) acceptKeyword(kw string) (bool, error) {
	if p.tok.Kind != tIdent || p.tok.Text != kw {
		return false, nil
	}
	return true, p.advance()
}

// parseTRName parses [ns::]name[:ver].
func (p *parser) parseTRName() (ns, name, ver string, err error) {
	first, err := p.expect(tIdent)
	if err != nil {
		return "", "", "", err
	}
	if ok, err := p.accept(tDColon); err != nil {
		return "", "", "", err
	} else if ok {
		ns = first
		name, err = p.expect(tIdent)
		if err != nil {
			return "", "", "", err
		}
	} else {
		name = first
	}
	if ok, err := p.accept(tColon); err != nil {
		return "", "", "", err
	} else if ok {
		ver, err = p.expect(tIdent)
		if err != nil {
			return "", "", "", err
		}
	}
	return ns, name, ver, nil
}

// parseTR parses a TR declaration.
func (p *parser) parseTR() (schema.Transformation, error) {
	var tr schema.Transformation
	if err := p.advance(); err != nil { // consume "TR"
		return tr, err
	}
	var err error
	tr.Namespace, tr.Name, tr.Version, err = p.parseTRName()
	if err != nil {
		return tr, err
	}
	if _, err := p.expect(tLParen); err != nil {
		return tr, err
	}
	for p.tok.Kind != tRParen {
		f, err := p.parseFormal()
		if err != nil {
			return tr, err
		}
		tr.Args = append(tr.Args, f)
		if ok, err := p.accept(tComma); err != nil {
			return tr, err
		} else if !ok {
			break
		}
	}
	if _, err := p.expect(tRParen); err != nil {
		return tr, err
	}
	if _, err := p.expect(tLBrace); err != nil {
		return tr, err
	}
	if err := p.parseTRBody(&tr); err != nil {
		return tr, err
	}
	if _, err := p.expect(tRBrace); err != nil {
		return tr, err
	}
	if len(tr.Calls) > 0 {
		tr.Kind = schema.Compound
	}
	return tr, nil
}

// parseFormal parses: direction IDENT [<typeUnion>] [= actual].
func (p *parser) parseFormal() (schema.FormalArg, error) {
	var f schema.FormalArg
	dirText, err := p.expect(tIdent)
	if err != nil {
		return f, err
	}
	dir, err := schema.ParseDirection(dirText)
	if err != nil {
		return f, p.errf("%v", err)
	}
	f.Direction = dir
	f.Name, err = p.expect(tIdent)
	if err != nil {
		return f, err
	}
	if ok, err := p.accept(tLAngle); err != nil {
		return f, err
	} else if ok {
		f.Types, err = p.parseTypeUnion()
		if err != nil {
			return f, err
		}
		if _, err := p.expect(tRAngle); err != nil {
			return f, err
		}
	}
	if ok, err := p.accept(tEq); err != nil {
		return f, err
	} else if ok {
		def, err := p.parseActual(true)
		if err != nil {
			return f, err
		}
		f.Default = &def
	}
	return f, nil
}

// parseTypeUnion parses typeExpr (| typeExpr)*.
func (p *parser) parseTypeUnion() ([]dtype.Type, error) {
	var union []dtype.Type
	for {
		t, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		union = append(union, t)
		if ok, err := p.accept(tPipe); err != nil {
			return nil, err
		} else if !ok {
			return union, nil
		}
	}
}

// parseTypeExpr parses content[:format[:encoding]] with "_" denoting an
// unspecified dimension.
func (p *parser) parseTypeExpr() (dtype.Type, error) {
	var t dtype.Type
	for i, d := range dtype.Dimensions() {
		name, err := p.expect(tIdent)
		if err != nil {
			return t, err
		}
		if name != "_" {
			t = t.With(d, name)
		}
		if i == len(dtype.Dimensions())-1 {
			break
		}
		if ok, err := p.accept(tColon); err != nil {
			return t, err
		} else if !ok {
			break
		}
	}
	return t, nil
}

// parseTRBody parses the statements inside a TR { ... } block.
func (p *parser) parseTRBody(tr *schema.Transformation) error {
	for p.tok.Kind != tRBrace && p.tok.Kind != tEOF {
		if p.tok.Kind != tIdent {
			return p.errf("expected statement, found %s", p.tok.Kind)
		}
		kw := p.tok.Text
		switch {
		case kw == "argument":
			if err := p.parseArgumentStmt(tr); err != nil {
				return err
			}
		case kw == "exec":
			if err := p.advance(); err != nil {
				return err
			}
			if _, err := p.expect(tEq); err != nil {
				return err
			}
			path, err := p.expect(tString)
			if err != nil {
				return err
			}
			tr.Exec = path
			if _, err := p.expect(tSemi); err != nil {
				return err
			}
		case kw == "profile":
			if err := p.advance(); err != nil {
				return err
			}
			key, err := p.expect(tIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(tEq); err != nil {
				return err
			}
			val, err := p.expect(tString)
			if err != nil {
				return err
			}
			if tr.Profile == nil {
				tr.Profile = make(map[string]string)
			}
			tr.Profile[key] = val
			if _, err := p.expect(tSemi); err != nil {
				return err
			}
		case kw == "attr":
			if err := p.advance(); err != nil {
				return err
			}
			key, err := p.expect(tIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(tEq); err != nil {
				return err
			}
			val, err := p.expect(tString)
			if err != nil {
				return err
			}
			if tr.Attrs == nil {
				tr.Attrs = make(schema.Attributes)
			}
			tr.Attrs[key] = val
			if _, err := p.expect(tSemi); err != nil {
				return err
			}
		case strings.HasPrefix(kw, "env."):
			name := strings.TrimPrefix(kw, "env.")
			if name == "" {
				return p.errf("empty environment variable name")
			}
			if err := p.advance(); err != nil {
				return err
			}
			if _, err := p.expect(tEq); err != nil {
				return err
			}
			parts, err := p.parseTemplate()
			if err != nil {
				return err
			}
			if tr.Env == nil {
				tr.Env = make(map[string][]schema.TemplatePart)
			}
			tr.Env[name] = parts
			if _, err := p.expect(tSemi); err != nil {
				return err
			}
		default:
			// A call to another transformation (compound body).
			call, err := p.parseCall()
			if err != nil {
				return err
			}
			tr.Calls = append(tr.Calls, call)
		}
	}
	return nil
}

// parseArgumentStmt parses: argument [name] = template ;
func (p *parser) parseArgumentStmt(tr *schema.Transformation) error {
	if err := p.advance(); err != nil { // consume "argument"
		return err
	}
	var at schema.ArgTemplate
	if p.tok.Kind == tIdent {
		at.Name = p.tok.Text
		if err := p.advance(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tEq); err != nil {
		return err
	}
	parts, err := p.parseTemplate()
	if err != nil {
		return err
	}
	at.Parts = parts
	tr.ArgTemplates = append(tr.ArgTemplates, at)
	_, err = p.expect(tSemi)
	return err
}

// parseTemplate parses a concatenation of strings and ${...} refs.
func (p *parser) parseTemplate() ([]schema.TemplatePart, error) {
	var parts []schema.TemplatePart
	for {
		switch p.tok.Kind {
		case tString:
			parts = append(parts, schema.TemplatePart{Literal: p.tok.Text})
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tDolBrace:
			dir, name, err := p.parseRefBody()
			if err != nil {
				return nil, err
			}
			parts = append(parts, schema.TemplatePart{Ref: name, RefDirection: dir})
		default:
			if len(parts) == 0 {
				return nil, p.errf("expected string or ${...} reference, found %s", p.tok.Kind)
			}
			return parts, nil
		}
	}
}

// parseRefBody parses the remainder of ${[dir:]name}.
func (p *parser) parseRefBody() (dir, name string, err error) {
	if err := p.advance(); err != nil { // consume ${
		return "", "", err
	}
	first, err := p.expect(tIdent)
	if err != nil {
		return "", "", err
	}
	if ok, err := p.accept(tColon); err != nil {
		return "", "", err
	} else if ok {
		dir = first
		name, err = p.expect(tIdent)
		if err != nil {
			return "", "", err
		}
	} else {
		name = first
	}
	_, err = p.expect(tRBrace)
	return dir, name, err
}

// parseCall parses: trref ( bindings ) ;
func (p *parser) parseCall() (schema.Call, error) {
	var c schema.Call
	ns, name, ver, err := p.parseTRName()
	if err != nil {
		return c, err
	}
	c.TR = schema.FormatTRRef(ns, name, ver)
	c.Bindings, err = p.parseBindings()
	if err != nil {
		return c, err
	}
	_, err = p.expect(tSemi)
	return c, err
}

// parseBindings parses: ( name = value , ... ).
func (p *parser) parseBindings() (map[string]schema.Actual, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	bindings := make(map[string]schema.Actual)
	for p.tok.Kind != tRParen {
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, dup := bindings[name]; dup {
			return nil, p.errf("duplicate binding for %q", name)
		}
		if _, err := p.expect(tEq); err != nil {
			return nil, err
		}
		v, err := p.parseActual(true)
		if err != nil {
			return nil, err
		}
		bindings[name] = v
		if ok, err := p.accept(tComma); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return bindings, nil
}

// parseActual parses a value expression: string, @{...} anchor, ${...}
// formal reference (when allowRefs), or a [ ... ] list.
func (p *parser) parseActual(allowRefs bool) (schema.Actual, error) {
	switch p.tok.Kind {
	case tString:
		v := p.tok.Text
		if err := p.advance(); err != nil {
			return schema.Actual{}, err
		}
		return schema.StringActual(v), nil
	case tAtBrace:
		return p.parseAnchor()
	case tDolBrace:
		if !allowRefs {
			return schema.Actual{}, p.errf("${...} references are not allowed here")
		}
		dir, name, err := p.parseRefBody()
		if err != nil {
			return schema.Actual{}, err
		}
		a := schema.FormalRefActual(name)
		a.Direction = dir
		return a, nil
	case tLBracket:
		if err := p.advance(); err != nil {
			return schema.Actual{}, err
		}
		var list []schema.Actual
		for p.tok.Kind != tRBracket {
			e, err := p.parseActual(allowRefs)
			if err != nil {
				return schema.Actual{}, err
			}
			if e.Kind == schema.AList {
				return schema.Actual{}, p.errf("nested lists are not allowed")
			}
			list = append(list, e)
			if ok, err := p.accept(tComma); err != nil {
				return schema.Actual{}, err
			} else if !ok {
				break
			}
		}
		if _, err := p.expect(tRBracket); err != nil {
			return schema.Actual{}, err
		}
		return schema.ListActual(list...), nil
	default:
		return schema.Actual{}, p.errf("expected value, found %s", p.tok.Kind)
	}
}

// parseAnchor parses the remainder of @{dir:"lfn"[:"hint"]}.
func (p *parser) parseAnchor() (schema.Actual, error) {
	if err := p.advance(); err != nil { // consume @{
		return schema.Actual{}, err
	}
	dirText, err := p.expect(tIdent)
	if err != nil {
		return schema.Actual{}, err
	}
	if _, err := schema.ParseDirection(dirText); err != nil {
		return schema.Actual{}, p.errf("%v", err)
	}
	if _, err := p.expect(tColon); err != nil {
		return schema.Actual{}, err
	}
	lfn, err := p.expect(tString)
	if err != nil {
		return schema.Actual{}, err
	}
	if ok, err := p.accept(tColon); err != nil {
		return schema.Actual{}, err
	} else if ok {
		// Optional temporary-name hint; accepted and discarded, as in
		// the paper's @{inout:"anywhere":""}.
		if _, err := p.expect(tString); err != nil {
			return schema.Actual{}, err
		}
	}
	if _, err := p.expect(tRBrace); err != nil {
		return schema.Actual{}, err
	}
	return schema.DatasetActual(dirText, lfn), nil
}

// parseDV parses: DV [name ->] trref ( bindings ) [with attrs] ;
func (p *parser) parseDV() (schema.Derivation, error) {
	var dv schema.Derivation
	if err := p.advance(); err != nil { // consume "DV"
		return dv, err
	}
	ns, name, ver, err := p.parseTRName()
	if err != nil {
		return dv, err
	}
	if ok, err := p.accept(tArrow); err != nil {
		return dv, err
	} else if ok {
		if ns != "" || ver != "" {
			return dv, p.errf("derivation name %q cannot carry namespace or version", name)
		}
		dv.Name = name
		ns, name, ver, err = p.parseTRName()
		if err != nil {
			return dv, err
		}
	}
	dv.TR = schema.FormatTRRef(ns, name, ver)
	dv.Params, err = p.parseBindings()
	if err != nil {
		return dv, err
	}
	// Environment overrides arrive as params named env.X; lift them.
	for k, v := range dv.Params {
		if strings.HasPrefix(k, "env.") && v.Kind == schema.AString {
			if dv.Env == nil {
				dv.Env = make(map[string]string)
			}
			dv.Env[strings.TrimPrefix(k, "env.")] = v.Value
			delete(dv.Params, k)
		}
	}
	dv.Attrs, err = p.parseWithAttrs()
	if err != nil {
		return dv, err
	}
	_, err = p.expect(tSemi)
	return dv, err
}

// parseWithAttrs parses an optional: with k="v" [, k="v"]* clause.
func (p *parser) parseWithAttrs() (schema.Attributes, error) {
	ok, err := p.acceptKeyword("with")
	if err != nil || !ok {
		return nil, err
	}
	attrs := make(schema.Attributes)
	for {
		k, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tEq); err != nil {
			return nil, err
		}
		v, err := p.expect(tString)
		if err != nil {
			return nil, err
		}
		attrs[k] = v
		if ok, err := p.accept(tComma); err != nil {
			return nil, err
		} else if !ok {
			return attrs, nil
		}
	}
}

// parseDS parses:
//
//	DS name [<typeExpr>] [descriptor] [size "N"] [with attrs] ;
//
// descriptor := file "path" | fileset ["p1","p2",...]
//
//	| virtual of name expr "..." | opaque schema "body"
func (p *parser) parseDS() (schema.Dataset, error) {
	var ds schema.Dataset
	if err := p.advance(); err != nil { // consume "DS"
		return ds, err
	}
	name, err := p.expect(tIdent)
	if err != nil {
		return ds, err
	}
	ds.Name = name
	if ok, err := p.accept(tLAngle); err != nil {
		return ds, err
	} else if ok {
		ds.Type, err = p.parseTypeExpr()
		if err != nil {
			return ds, err
		}
		if _, err := p.expect(tRAngle); err != nil {
			return ds, err
		}
	}
	if p.tok.Kind == tIdent {
		switch p.tok.Text {
		case "file":
			if err := p.advance(); err != nil {
				return ds, err
			}
			path, err := p.expect(tString)
			if err != nil {
				return ds, err
			}
			ds.Descriptor = schema.FileDescriptor{Path: path}
		case "fileset":
			if err := p.advance(); err != nil {
				return ds, err
			}
			if _, err := p.expect(tLBracket); err != nil {
				return ds, err
			}
			var paths []string
			for p.tok.Kind != tRBracket {
				s, err := p.expect(tString)
				if err != nil {
					return ds, err
				}
				paths = append(paths, s)
				if ok, err := p.accept(tComma); err != nil {
					return ds, err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(tRBracket); err != nil {
				return ds, err
			}
			ds.Descriptor = schema.FileSetDescriptor{Paths: paths}
		case "virtual":
			if err := p.advance(); err != nil {
				return ds, err
			}
			if ok, err := p.acceptKeyword("of"); err != nil {
				return ds, err
			} else if !ok {
				return ds, p.errf("expected 'of' after 'virtual'")
			}
			of, err := p.expect(tIdent)
			if err != nil {
				return ds, err
			}
			if ok, err := p.acceptKeyword("expr"); err != nil {
				return ds, err
			} else if !ok {
				return ds, p.errf("expected 'expr' in virtual descriptor")
			}
			expr, err := p.expect(tString)
			if err != nil {
				return ds, err
			}
			ds.Descriptor = schema.VirtualDescriptor{Of: of, Expr: expr}
		case "opaque":
			if err := p.advance(); err != nil {
				return ds, err
			}
			sch, err := p.expect(tIdent)
			if err != nil {
				return ds, err
			}
			body, err := p.expect(tString)
			if err != nil {
				return ds, err
			}
			d := schema.OpaqueDescriptor{Schema: sch}
			if body != "" {
				d.Body = []byte(body)
			}
			ds.Descriptor = d
		}
	}
	if ok, err := p.acceptKeyword("size"); err != nil {
		return ds, err
	} else if ok {
		s, err := p.expect(tString)
		if err != nil {
			return ds, err
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return ds, p.errf("invalid size %q: %v", s, err)
		}
		ds.Size = n
	}
	ds.Attrs, err = p.parseWithAttrs()
	if err != nil {
		return ds, err
	}
	_, err = p.expect(tSemi)
	return ds, err
}

// parseType parses: TYPE dimension name [extends parent] ;
func (p *parser) parseType() (TypeDecl, error) {
	var td TypeDecl
	if err := p.advance(); err != nil { // consume "TYPE"
		return td, err
	}
	dimText, err := p.expect(tIdent)
	if err != nil {
		return td, err
	}
	switch strings.ToLower(dimText) {
	case "content":
		td.Dim = dtype.Content
	case "format":
		td.Dim = dtype.Format
	case "encoding":
		td.Dim = dtype.Encoding
	default:
		return td, p.errf("unknown type dimension %q (want content, format or encoding)", dimText)
	}
	td.Name, err = p.expect(tIdent)
	if err != nil {
		return td, err
	}
	if ok, err := p.acceptKeyword("extends"); err != nil {
		return td, err
	} else if ok {
		td.Parent, err = p.expect(tIdent)
		if err != nil {
			return td, err
		}
	}
	_, err = p.expect(tSemi)
	return td, err
}
