// Package vdl implements the Chimera Virtual Data Language: a lexer and
// recursive-descent parser producing virtual data schema objects, a
// printer that renders schema objects back to canonical VDL text, and
// an XML form for machine-to-machine interchange.
//
// The textual grammar follows Appendix A of the paper, with three
// extensions the schema requires: TYPE declarations that populate the
// dataset-type hierarchy, DS declarations that define typed datasets
// with descriptors, and optional <...> type annotations on formal
// arguments.
package vdl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

const (
	tEOF TokenKind = iota
	tIdent
	tString
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tLAngle
	tRAngle
	tComma
	tSemi
	tEq
	tColon
	tDColon
	tArrow
	tPipe
	tAtBrace  // @{
	tDolBrace // ${
)

var tokenNames = map[TokenKind]string{
	tEOF: "end of input", tIdent: "identifier", tString: "string",
	tLParen: "'('", tRParen: "')'", tLBrace: "'{'", tRBrace: "'}'",
	tLBracket: "'['", tRBracket: "']'", tLAngle: "'<'", tRAngle: "'>'",
	tComma: "','", tSemi: "';'", tEq: "'='", tColon: "':'",
	tDColon: "'::'", tArrow: "'->'", tPipe: "'|'",
	tAtBrace: "'@{'", tDolBrace: "'${'",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Position locates a token in the source.
type Position struct {
	Line, Col int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // identifier text or decoded string value
	Pos  Position
}

// SyntaxError reports a lexical or syntactic error with position.
type SyntaxError struct {
	Pos Position
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("vdl: %s: %s", e.Pos, e.Msg) }

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(pos Position, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekAt(i int) byte {
	if l.off+i >= len(l.src) {
		return 0
	}
	return l.src[l.off+i]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) pos() Position { return Position{Line: l.line, Col: l.col} }

// skipSpace consumes whitespace and comments: both // line comments and
// # line comments, plus /* block */ comments.
func (l *lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return l.errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// isIdentStart accepts digits too: there is no numeric token class, so
// version strings like "1.2" lex as identifiers.
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: tEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		var b strings.Builder
		for l.off < len(l.src) {
			c := l.peek()
			if isIdentCont(c) {
				b.WriteByte(l.advance())
				continue
			}
			// A hyphen continues the identifier only when followed by
			// an identifier character, so "d1->t" lexes as d1, ->, t
			// while "Zebra-file" stays one identifier.
			if c == '-' && isIdentCont(l.peekAt(1)) {
				b.WriteByte(l.advance())
				continue
			}
			break
		}
		return Token{Kind: tIdent, Text: b.String(), Pos: pos}, nil
	case c == '"':
		// Scan to the closing quote, then decode with the full Go
		// escape syntax (the printer emits strconv.Quote output).
		start := l.off
		l.advance()
		for {
			if l.off >= len(l.src) {
				return Token{}, l.errf(pos, "unterminated string")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				if l.off >= len(l.src) {
					return Token{}, l.errf(pos, "unterminated string escape")
				}
				l.advance()
			}
			if c == '\n' {
				return Token{}, l.errf(pos, "newline in string")
			}
		}
		text, err := strconv.Unquote(l.src[start:l.off])
		if err != nil {
			return Token{}, l.errf(pos, "invalid string literal: %v", err)
		}
		return Token{Kind: tString, Text: text, Pos: pos}, nil
	}
	// Punctuation.
	l.advance()
	switch c {
	case '(':
		return Token{Kind: tLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: tRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: tLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: tRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: tLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: tRBracket, Pos: pos}, nil
	case '<':
		return Token{Kind: tLAngle, Pos: pos}, nil
	case '>':
		return Token{Kind: tRAngle, Pos: pos}, nil
	case ',':
		return Token{Kind: tComma, Pos: pos}, nil
	case ';':
		return Token{Kind: tSemi, Pos: pos}, nil
	case '=':
		return Token{Kind: tEq, Pos: pos}, nil
	case '|':
		return Token{Kind: tPipe, Pos: pos}, nil
	case ':':
		if l.peek() == ':' {
			l.advance()
			return Token{Kind: tDColon, Pos: pos}, nil
		}
		return Token{Kind: tColon, Pos: pos}, nil
	case '-':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: tArrow, Pos: pos}, nil
		}
		return Token{}, l.errf(pos, "unexpected '-'")
	case '@':
		if l.peek() == '{' {
			l.advance()
			return Token{Kind: tAtBrace, Pos: pos}, nil
		}
		return Token{}, l.errf(pos, "unexpected '@'")
	case '$':
		if l.peek() == '{' {
			l.advance()
			return Token{Kind: tDolBrace, Pos: pos}, nil
		}
		return Token{}, l.errf(pos, "unexpected '$'")
	}
	return Token{}, l.errf(pos, "unexpected character %q", string(rune(c)))
}

// lexAll tokenizes the whole input (testing helper).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == tEOF {
			return out, nil
		}
	}
}
