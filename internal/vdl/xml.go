package vdl

import (
	"encoding/xml"
	"fmt"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// The XML form of VDL serves machine-to-machine interfaces, as in the
// paper ("an XML version is also implemented for machine-to-machine
// interfaces"). It is a faithful structural mapping of Program.

type xmlProgram struct {
	XMLName         xml.Name            `xml:"vdl"`
	Types           []xmlTypeDecl       `xml:"type"`
	Datasets        []xmlDataset        `xml:"dataset"`
	Transformations []xmlTransformation `xml:"transformation"`
	Derivations     []xmlDerivation     `xml:"derivation"`
}

type xmlTypeDecl struct {
	Dim    string `xml:"dim,attr"`
	Name   string `xml:"name,attr"`
	Parent string `xml:"parent,attr,omitempty"`
}

type xmlType struct {
	Content  string `xml:"content,attr,omitempty"`
	Format   string `xml:"format,attr,omitempty"`
	Encoding string `xml:"encoding,attr,omitempty"`
}

type xmlDataset struct {
	Name       string    `xml:"name,attr"`
	Type       *xmlType  `xml:"type,omitempty"`
	Descriptor *xmlDesc  `xml:"descriptor,omitempty"`
	Size       int64     `xml:"size,attr,omitempty"`
	CreatedBy  string    `xml:"createdBy,attr,omitempty"`
	Epoch      int       `xml:"epoch,attr,omitempty"`
	Attrs      []xmlAttr `xml:"attr"`
}

type xmlDesc struct {
	Kind string `xml:"kind,attr"`
	Body string `xml:",cdata"` // JSON envelope body
}

type xmlAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xmlTransformation struct {
	Namespace string     `xml:"namespace,attr,omitempty"`
	Name      string     `xml:"name,attr"`
	Version   string     `xml:"version,attr,omitempty"`
	Kind      string     `xml:"kind,attr"`
	Args      []xmlArg   `xml:"arg"`
	Exec      string     `xml:"exec,omitempty"`
	Templates []xmlTempl `xml:"argument"`
	Env       []xmlEnv   `xml:"env"`
	Profile   []xmlAttr  `xml:"profile"`
	Calls     []xmlCall  `xml:"call"`
	Attrs     []xmlAttr  `xml:"attr"`
}

type xmlArg struct {
	Name      string     `xml:"name,attr"`
	Direction string     `xml:"direction,attr"`
	Types     []xmlType  `xml:"type"`
	Default   *xmlActual `xml:"default,omitempty"`
}

type xmlTempl struct {
	Name  string    `xml:"name,attr,omitempty"`
	Parts []xmlPart `xml:"part"`
}

type xmlEnv struct {
	Name  string    `xml:"name,attr"`
	Parts []xmlPart `xml:"part"`
}

type xmlPart struct {
	Literal string `xml:"literal,attr,omitempty"`
	Ref     string `xml:"ref,attr,omitempty"`
	RefDir  string `xml:"refDirection,attr,omitempty"`
}

type xmlCall struct {
	TR       string       `xml:"tr,attr"`
	Bindings []xmlBinding `xml:"bind"`
}

type xmlBinding struct {
	Name  string    `xml:"name,attr"`
	Value xmlActual `xml:"value"`
}

type xmlActual struct {
	Kind      string      `xml:"kind,attr"`
	Value     string      `xml:"value,attr,omitempty"`
	Direction string      `xml:"direction,attr,omitempty"`
	List      []xmlActual `xml:"item"`
}

type xmlDerivation struct {
	ID     string       `xml:"id,attr,omitempty"`
	Name   string       `xml:"name,attr,omitempty"`
	TR     string       `xml:"tr,attr"`
	Params []xmlBinding `xml:"param"`
	Env    []xmlAttr    `xml:"env"`
	Parent string       `xml:"parent,attr,omitempty"`
	Attrs  []xmlAttr    `xml:"attr"`
}

// MarshalXML serializes a Program to the XML interchange form.
func MarshalXML(p Program) ([]byte, error) {
	xp := xmlProgram{}
	for _, td := range p.Types {
		xp.Types = append(xp.Types, xmlTypeDecl{Dim: dimName(td.Dim), Name: td.Name, Parent: td.Parent})
	}
	for _, ds := range p.Datasets {
		xd := xmlDataset{
			Name: ds.Name, Size: ds.Size, CreatedBy: ds.CreatedBy,
			Epoch: ds.Epoch, Attrs: attrsToXML(ds.Attrs),
		}
		if !ds.Type.IsUniversal() {
			xd.Type = &xmlType{Content: ds.Type.Content, Format: ds.Type.Format, Encoding: ds.Type.Encoding}
		}
		if ds.Descriptor != nil {
			body, err := schema.MarshalDescriptor(ds.Descriptor)
			if err != nil {
				return nil, err
			}
			xd.Descriptor = &xmlDesc{Kind: ds.Descriptor.Kind(), Body: string(body)}
		}
		xp.Datasets = append(xp.Datasets, xd)
	}
	for _, tr := range p.Transformations {
		xt := xmlTransformation{
			Namespace: tr.Namespace, Name: tr.Name, Version: tr.Version,
			Kind: tr.Kind.String(), Exec: tr.Exec,
			Profile: attrsToXML(tr.Profile), Attrs: attrsToXML(tr.Attrs),
		}
		for _, f := range tr.Args {
			xa := xmlArg{Name: f.Name, Direction: f.Direction.String()}
			for _, t := range f.Types {
				xa.Types = append(xa.Types, xmlType{Content: t.Content, Format: t.Format, Encoding: t.Encoding})
			}
			if f.Default != nil {
				v := actualToXML(*f.Default)
				xa.Default = &v
			}
			xt.Args = append(xt.Args, xa)
		}
		for _, at := range tr.ArgTemplates {
			xt.Templates = append(xt.Templates, xmlTempl{Name: at.Name, Parts: partsToXML(at.Parts)})
		}
		for _, k := range sortedKeys(tr.Env) {
			xt.Env = append(xt.Env, xmlEnv{Name: k, Parts: partsToXML(tr.Env[k])})
		}
		for _, c := range tr.Calls {
			xc := xmlCall{TR: c.TR}
			for _, k := range sortedKeys(c.Bindings) {
				xc.Bindings = append(xc.Bindings, xmlBinding{Name: k, Value: actualToXML(c.Bindings[k])})
			}
			xt.Calls = append(xt.Calls, xc)
		}
		xp.Transformations = append(xp.Transformations, xt)
	}
	for _, dv := range p.Derivations {
		xd := xmlDerivation{
			ID: dv.ID, Name: dv.Name, TR: dv.TR, Parent: dv.Parent,
			Env: attrsToXML(dv.Env), Attrs: attrsToXML(dv.Attrs),
		}
		for _, k := range sortedKeys(dv.Params) {
			xd.Params = append(xd.Params, xmlBinding{Name: k, Value: actualToXML(dv.Params[k])})
		}
		xp.Derivations = append(xp.Derivations, xd)
	}
	return xml.MarshalIndent(xp, "", "  ")
}

// UnmarshalXML parses the XML interchange form back to a Program.
func UnmarshalXML(data []byte) (Program, error) {
	var xp xmlProgram
	if err := xml.Unmarshal(data, &xp); err != nil {
		return Program{}, fmt.Errorf("vdl: xml: %w", err)
	}
	var p Program
	for _, td := range xp.Types {
		d, err := parseDim(td.Dim)
		if err != nil {
			return Program{}, err
		}
		p.Types = append(p.Types, TypeDecl{Dim: d, Name: td.Name, Parent: td.Parent})
	}
	for _, xd := range xp.Datasets {
		ds := schema.Dataset{
			Name: xd.Name, Size: xd.Size, CreatedBy: xd.CreatedBy,
			Epoch: xd.Epoch, Attrs: attrsFromXML(xd.Attrs),
		}
		if xd.Type != nil {
			ds.Type = dtype.Type{Content: xd.Type.Content, Format: xd.Type.Format, Encoding: xd.Type.Encoding}
		}
		if xd.Descriptor != nil {
			d, err := schema.UnmarshalDescriptor([]byte(xd.Descriptor.Body))
			if err != nil {
				return Program{}, err
			}
			ds.Descriptor = d
		}
		if err := ds.Validate(); err != nil {
			return Program{}, err
		}
		p.Datasets = append(p.Datasets, ds)
	}
	for _, xt := range xp.Transformations {
		tr := schema.Transformation{
			Namespace: xt.Namespace, Name: xt.Name, Version: xt.Version,
			Exec: xt.Exec, Profile: attrsFromXML(xt.Profile), Attrs: attrsFromXML(xt.Attrs),
		}
		if xt.Kind == "compound" {
			tr.Kind = schema.Compound
		}
		for _, xa := range xt.Args {
			dir, err := schema.ParseDirection(xa.Direction)
			if err != nil {
				return Program{}, err
			}
			f := schema.FormalArg{Name: xa.Name, Direction: dir}
			for _, t := range xa.Types {
				f.Types = append(f.Types, dtype.Type{Content: t.Content, Format: t.Format, Encoding: t.Encoding})
			}
			if xa.Default != nil {
				a, err := actualFromXML(*xa.Default)
				if err != nil {
					return Program{}, err
				}
				f.Default = &a
			}
			tr.Args = append(tr.Args, f)
		}
		for _, xat := range xt.Templates {
			tr.ArgTemplates = append(tr.ArgTemplates, schema.ArgTemplate{Name: xat.Name, Parts: partsFromXML(xat.Parts)})
		}
		if len(xt.Env) > 0 {
			tr.Env = make(map[string][]schema.TemplatePart, len(xt.Env))
			for _, xe := range xt.Env {
				tr.Env[xe.Name] = partsFromXML(xe.Parts)
			}
		}
		for _, xc := range xt.Calls {
			c := schema.Call{TR: xc.TR, Bindings: make(map[string]schema.Actual, len(xc.Bindings))}
			for _, xb := range xc.Bindings {
				a, err := actualFromXML(xb.Value)
				if err != nil {
					return Program{}, err
				}
				c.Bindings[xb.Name] = a
			}
			tr.Calls = append(tr.Calls, c)
		}
		if err := tr.Validate(); err != nil {
			return Program{}, err
		}
		p.Transformations = append(p.Transformations, tr)
	}
	for _, xd := range xp.Derivations {
		dv := schema.Derivation{
			ID: xd.ID, Name: xd.Name, TR: xd.TR, Parent: xd.Parent,
			Env: attrsFromXML(xd.Env), Attrs: attrsFromXML(xd.Attrs),
			Params: make(map[string]schema.Actual, len(xd.Params)),
		}
		for _, xb := range xd.Params {
			a, err := actualFromXML(xb.Value)
			if err != nil {
				return Program{}, err
			}
			dv.Params[xb.Name] = a
		}
		if err := dv.Validate(); err != nil {
			return Program{}, err
		}
		p.Derivations = append(p.Derivations, dv.Canonicalize())
	}
	return p, nil
}

func dimName(d dtype.Dimension) string {
	switch d {
	case dtype.Content:
		return "content"
	case dtype.Format:
		return "format"
	default:
		return "encoding"
	}
}

func parseDim(s string) (dtype.Dimension, error) {
	switch s {
	case "content":
		return dtype.Content, nil
	case "format":
		return dtype.Format, nil
	case "encoding":
		return dtype.Encoding, nil
	}
	return 0, fmt.Errorf("vdl: unknown dimension %q", s)
}

func attrsToXML(a map[string]string) []xmlAttr {
	var out []xmlAttr
	for _, k := range sortedKeys(a) {
		out = append(out, xmlAttr{Key: k, Value: a[k]})
	}
	return out
}

func attrsFromXML(xs []xmlAttr) schema.Attributes {
	if len(xs) == 0 {
		return nil
	}
	out := make(schema.Attributes, len(xs))
	for _, x := range xs {
		out[x.Key] = x.Value
	}
	return out
}

func partsToXML(parts []schema.TemplatePart) []xmlPart {
	out := make([]xmlPart, len(parts))
	for i, p := range parts {
		out[i] = xmlPart{Literal: p.Literal, Ref: p.Ref, RefDir: p.RefDirection}
	}
	return out
}

func partsFromXML(xs []xmlPart) []schema.TemplatePart {
	out := make([]schema.TemplatePart, len(xs))
	for i, x := range xs {
		out[i] = schema.TemplatePart{Literal: x.Literal, Ref: x.Ref, RefDirection: x.RefDir}
	}
	return out
}

func actualToXML(a schema.Actual) xmlActual {
	x := xmlActual{Kind: a.Kind.String(), Value: a.Value, Direction: a.Direction}
	for _, e := range a.List {
		x.List = append(x.List, actualToXML(e))
	}
	return x
}

func actualFromXML(x xmlActual) (schema.Actual, error) {
	var a schema.Actual
	switch x.Kind {
	case "string":
		a.Kind = schema.AString
	case "dataset":
		a.Kind = schema.ADataset
	case "formalref":
		a.Kind = schema.AFormalRef
	case "list":
		a.Kind = schema.AList
	default:
		return a, fmt.Errorf("vdl: unknown actual kind %q", x.Kind)
	}
	a.Value = x.Value
	a.Direction = x.Direction
	for _, e := range x.List {
		c, err := actualFromXML(e)
		if err != nil {
			return a, err
		}
		a.List = append(a.List, c)
	}
	return a, nil
}
