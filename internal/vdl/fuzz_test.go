package vdl

import (
	"testing"
)

// FuzzParse asserts the parser never panics, and that anything it
// accepts survives a print/parse round trip (run with `go test -fuzz
// FuzzParse ./internal/vdl` for a longer campaign; `go test` exercises
// the seed corpus).
func FuzzParse(f *testing.F) {
	seeds := []string{
		paperT1,
		paperD1,
		paperChain,
		paperCompound,
		`TYPE content CMS; DS d<CMS> file "/x" size "5" with a="b";`,
		`TR t( output o, input i, none p="1" ) { argument = "-x "${none:p}; exec = "/b"; env.A = "z"; profile h.k = "v"; attr x = "y"; }`,
		`DV d->ns::t:1.0( o=@{output:"a"}, i=[@{input:"b"}, @{input:"c"}], p="q", env.H="1" ) with k="v";`,
		"TR t( ) { exec = \"/b\"; }",
		"# comment only",
		"/* unterminated",
		`DV d->t( a=${ref} );`,
		"TR t( input a<C1:F1:E1|C2> ) { exec = \"/b\"; }",
		"\x00\x01\x02",
		`TR "quoted" ( ) { }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := Print(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed output unparseable: %v\ninput: %q\nprinted: %q", err, src, text)
		}
		if len(prog2.Transformations) != len(prog.Transformations) ||
			len(prog2.Derivations) != len(prog.Derivations) ||
			len(prog2.Datasets) != len(prog.Datasets) ||
			len(prog2.Types) != len(prog.Types) {
			t.Fatalf("round trip changed cardinality\ninput: %q", src)
		}
		// Print must be a fixpoint after one round.
		if text2 := Print(prog2); text2 != text {
			t.Fatalf("printer not idempotent\nfirst: %q\nsecond: %q", text, text2)
		}
	})
}
