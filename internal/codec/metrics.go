package codec

import (
	"time"

	"chimera/internal/obs"
)

// Codec metrics: encode/decode CPU and byte volume per codec, the
// observability face of the E16 experiment. Series are labeled by the
// codec registry name so a mixed deployment (binary snapshots, JSON
// wire fallback for old members) shows where the cycles and bytes go.
var (
	metricEncodeSeconds = obs.Default.HistogramVec("vdc_codec_encode_seconds",
		"Latency of one snapshot/delta encode, by codec.", obs.TimeBuckets, "codec")
	metricDecodeSeconds = obs.Default.HistogramVec("vdc_codec_decode_seconds",
		"Latency of one snapshot/delta decode, by codec.", obs.TimeBuckets, "codec")
	metricEncodeBytes = obs.Default.CounterVec("vdc_codec_encode_bytes_total",
		"Bytes produced by snapshot/delta encodes, by codec.", "codec")
	metricDecodeBytes = obs.Default.CounterVec("vdc_codec_decode_bytes_total",
		"Bytes consumed by snapshot/delta decodes, by codec.", "codec")

	encSecJSON = metricEncodeSeconds.With(JSONName)
	encSecBin  = metricEncodeSeconds.With(BinaryName)
	decSecJSON = metricDecodeSeconds.With(JSONName)
	decSecBin  = metricDecodeSeconds.With(BinaryName)
	encBJSON   = metricEncodeBytes.With(JSONName)
	encBBin    = metricEncodeBytes.With(BinaryName)
	decBJSON   = metricDecodeBytes.With(JSONName)
	decBBin    = metricDecodeBytes.With(BinaryName)
)

func observeEncode(name string, start time.Time) {
	if name == BinaryName {
		encSecBin.ObserveSince(start)
	} else {
		encSecJSON.ObserveSince(start)
	}
}

func observeDecode(name string, start time.Time) {
	if name == BinaryName {
		decSecBin.ObserveSince(start)
	} else {
		decSecJSON.ObserveSince(start)
	}
}

func encBytes(name string, n int) {
	if name == BinaryName {
		encBBin.Add(uint64(n))
	} else {
		encBJSON.Add(uint64(n))
	}
}

func decBytes(name string, n int) {
	if name == BinaryName {
		decBBin.Add(uint64(n))
	} else {
		decBJSON.Add(uint64(n))
	}
}
