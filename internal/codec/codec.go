// Package codec implements pluggable catalog serialization formats
// behind a runtime registry, in the spirit of dvid's datatype-format
// registry: persistence and wire surfaces name the codec they were
// written with, and readers resolve that name against whatever codecs
// the binary has compiled in. Unknown names fail loudly, listing what
// is registered — a catalog directory or export stream is never
// guessed at.
//
// Two codecs ship today: "json/v1", the line-for-line equivalent of
// the original encoding/json surfaces, and "binary/v1", a compact
// length-prefixed format with varint framing, string interning and an
// on-disk offset index (binary.go). The containers here (Payload,
// Delta) deliberately mirror catalog.Export and catalog.Delta
// field-for-field so conversion is slice reuse, not copying; codec
// sits below catalog in the import graph so both catalog snapshots and
// vds wire bodies can share one implementation.
package codec

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Codec names and content types.
const (
	// JSONName is the registry name of the JSON codec.
	JSONName = "json/v1"
	// BinaryName is the registry name of the binary codec.
	BinaryName = "binary/v1"

	// JSONContentType is the HTTP content type of JSON-encoded bodies.
	JSONContentType = "application/json"
	// BinaryContentType is the HTTP content type of binary-encoded
	// export bodies; clients offer it in Accept to negotiate the
	// binary transport and fall back to JSON when the server does not
	// speak it.
	BinaryContentType = "application/x-vdg-binary"
)

// Payload is the codec-neutral full-state container: field-for-field
// (and JSON-tag-for-JSON-tag) the shape of catalog.Export, so the JSON
// codec reproduces the legacy snapshot and wire bytes exactly.
type Payload struct {
	Types           *dtype.Registry                 `json:"types"`
	Datasets        []schema.Dataset                `json:"datasets,omitempty"`
	Transformations []schema.Transformation         `json:"transformations,omitempty"`
	Derivations     []schema.Derivation             `json:"derivations,omitempty"`
	Invocations     []schema.Invocation             `json:"invocations,omitempty"`
	Replicas        []schema.Replica                `json:"replicas,omitempty"`
	Compat          []schema.CompatibilityAssertion `json:"compat,omitempty"`
}

// Tombstone mirrors catalog.Tombstone: a deletion inside a delta.
type Tombstone struct {
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// Delta mirrors catalog.Delta: an incremental export plus the sync
// cursor it advances the caller to.
type Delta struct {
	Instance   uint64      `json:"instance"`
	Since      uint64      `json:"since"`
	Seq        uint64      `json:"seq"`
	Full       bool        `json:"full,omitempty"`
	Payload    Payload     `json:"export"`
	Tombstones []Tombstone `json:"tombstones,omitempty"`
}

// Codec serializes catalog state. Implementations must be safe for
// concurrent use, and decoded values must never alias the input bytes:
// the snapshot read path hands DecodeSnapshot a memory-mapped file and
// unmaps it as soon as the call returns.
type Codec interface {
	// Name is the registry name, recorded in catalog-meta.json and
	// used to resolve the codec on reopen.
	Name() string
	// ContentType is the HTTP content type of encoded bodies.
	ContentType() string
	// EncodeSnapshot writes the full-state form of p to w.
	EncodeSnapshot(w io.Writer, p *Payload) error
	// DecodeSnapshot parses a full-state body. The returned payload
	// owns all of its memory.
	DecodeSnapshot(data []byte) (*Payload, error)
	// EncodeDelta writes the incremental form of d to w.
	EncodeDelta(w io.Writer, d *Delta) error
	// DecodeDelta parses an incremental body. The returned delta owns
	// all of its memory.
	DecodeDelta(data []byte) (*Delta, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Codec)
)

// Register adds a codec under its Name. Registering the same name
// twice panics: two codecs claiming one name would make recorded
// format pins ambiguous.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate registration of %q", c.Name()))
	}
	registry[c.Name()] = c
}

// Lookup resolves a codec by registry name. Unknown names error with
// the list of registered codecs, so a catalog directory written by a
// newer binary fails with "you are missing binary/v2", not a parse
// error.
func Lookup(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if c, ok := registry[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("codec: unknown codec %q (registered: %v)", name, namesLocked())
}

// Names lists the registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(jsonCodec{})
	Register(binaryCodec{})
}
