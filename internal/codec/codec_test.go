package codec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// randPayload builds a payload exercising every field the codecs
// carry: interned and inline strings, nil and empty maps, nested
// Actuals, zero and zoned times, negative sizes.
func randPayload(rng *rand.Rand, n int) *Payload {
	p := &Payload{Types: dtype.NewRegistry()}
	sites := []string{"site-a", "site-b", "ral.uk", ""}
	zones := []*time.Location{time.UTC, time.FixedZone("X", 3600), time.FixedZone("Y", -5*3600)}
	for i := 0; i < n; i++ {
		ds := schema.Dataset{
			Name: fmt.Sprintf("lfn://run%04d/f%d.evt", rng.Intn(500), i),
			Type: dtype.Type{Content: "events", Format: "root", Encoding: pick(rng, "", "zstd", "gzip")},
			Size: rng.Int63n(1 << 40),
		}
		if rng.Intn(3) == 0 {
			ds.Size = -1
		}
		ds.Epoch = rng.Intn(10)
		ds.CreatedBy = pick(rng, "", "dv-1", "dv-2")
		if rng.Intn(2) == 0 {
			ds.Attrs = schema.Attributes{"owner": pick(rng, "cms", "atlas"), "run": fmt.Sprint(rng.Intn(99))}
		}
		if rng.Intn(4) == 0 {
			ds.Descriptor = schema.FileDescriptor{Path: fmt.Sprintf("/store/f%d", i)}
		}
		p.Datasets = append(p.Datasets, ds)

		rep := schema.Replica{
			ID:      fmt.Sprintf("rep-%d", i),
			Dataset: ds.Name,
			Site:    pick(rng, sites...),
			PFN:     fmt.Sprintf("gsiftp://%s/store/%d", pick(rng, sites...), i),
			Size:    ds.Size,
			Epoch:   ds.Epoch,
		}
		if rng.Intn(2) == 0 {
			rep.Attrs = schema.Attributes{"checksum": fmt.Sprintf("%08x", rng.Uint32())}
		}
		p.Replicas = append(p.Replicas, rep)

		dv := schema.Derivation{
			ID:   fmt.Sprintf("dv-%d", i),
			Name: fmt.Sprintf("derive-%d", i),
			TR:   pick(rng, "tr.reco", "tr.sim", "tr.merge"),
		}
		switch rng.Intn(3) {
		case 0: // nil Params — must survive (no omitempty on the JSON tag)
		case 1:
			dv.Params = map[string]schema.Actual{}
		default:
			dv.Params = map[string]schema.Actual{
				"in": {Kind: schema.ADataset, Value: ds.Name, Direction: "in"},
				"opts": {Kind: schema.AList, Direction: "in", List: []schema.Actual{
					{Kind: schema.AString, Value: "fast"},
					{Kind: schema.AString, Value: pick(rng, "x", "")},
				}},
			}
		}
		if rng.Intn(2) == 0 {
			dv.Env = map[string]string{"PATH": "/usr/bin", "TZ": pick(rng, "UTC", "CET")}
		}
		dv.Parent = pick(rng, "", "dv-0")
		p.Derivations = append(p.Derivations, dv)

		iv := schema.Invocation{
			ID:         fmt.Sprintf("iv-%d", i),
			Derivation: dv.ID,
			Site:       pick(rng, sites...),
			Host:       pick(rng, "wn001", "wn002", ""),
			ExitCode:   rng.Intn(3) - 1,
			OS:         "linux",
			Arch:       pick(rng, "amd64", "arm64"),
			BytesIn:    rng.Int63n(1 << 30),
			BytesOut:   -rng.Int63n(4),
		}
		if rng.Intn(3) > 0 {
			iv.Start = time.Unix(rng.Int63n(1<<31), rng.Int63n(1e9)).In(zones[rng.Intn(len(zones))])
			iv.End = iv.Start.Add(time.Duration(rng.Int63n(int64(time.Hour))))
		}
		if rng.Intn(2) == 0 {
			iv.Env = map[string]string{"SCRAM_ARCH": "slc5"}
			iv.UsedReplicas = map[string]string{ds.Name: rep.ID}
			iv.ProducedReplicas = map[string]string{ds.Name + ".out": "rep-out-" + fmt.Sprint(i)}
			iv.Attrs = schema.Attributes{"queue": "prod"}
		}
		p.Invocations = append(p.Invocations, iv)
	}
	if n > 0 {
		p.Transformations = []schema.Transformation{{
			Namespace: "cms", Name: "reco", Version: "1.2.0",
		}}
		p.Compat = []schema.CompatibilityAssertion{{
			Namespace: "cms", Name: "reco", V1: "1.0.0", V2: "1.2.0", Mode: schema.Equivalent, AssertedBy: "ops",
		}}
	}
	return p
}

func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }

func randDelta(rng *rand.Rand, n int) *Delta {
	d := &Delta{
		Instance: rng.Uint64(),
		Since:    uint64(rng.Intn(100)),
		Seq:      uint64(100 + rng.Intn(100)),
		Full:     rng.Intn(2) == 0,
		Payload:  *randPayload(rng, n),
	}
	for i := 0; i < rng.Intn(4); i++ {
		d.Tombstones = append(d.Tombstones, Tombstone{Kind: pick(rng, "dataset", "replica"), ID: fmt.Sprintf("gone-%d", i)})
	}
	return d
}

// jsonEq compares two values through their JSON form — the repo-wide
// equivalence oracle: if the JSON bytes match, the catalogs a client
// materializes from either codec are identical.
func jsonEq(t *testing.T, what string, a, b any) {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("%s: marshal a: %v", what, err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("%s: marshal b: %v", what, err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("%s: payloads differ\n a: %.400s\n b: %.400s", what, ja, jb)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{JSONName, BinaryName} {
		c, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := Lookup("binary/v9"); err == nil {
		t.Fatal("Lookup of unknown codec succeeded")
	} else if !strings.Contains(err.Error(), BinaryName) {
		t.Fatalf("unknown-codec error should list registered codecs, got: %v", err)
	}
	names := Names()
	if !reflect.DeepEqual(names, []string{BinaryName, JSONName}) {
		t.Fatalf("Names() = %v", names)
	}
}

// TestRoundTripOracle is the randomized cross-codec equivalence
// oracle: for many seeded random payloads, encode+decode through each
// codec and through mixed pairs must reproduce the same in-memory
// catalog (compared via JSON bytes).
func TestRoundTripOracle(t *testing.T) {
	jsonC, _ := Lookup(JSONName)
	binC, _ := Lookup(BinaryName)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randPayload(rng, rng.Intn(40))
		var viaJSON, viaBin bytes.Buffer
		if err := jsonC.EncodeSnapshot(&viaJSON, p); err != nil {
			t.Fatalf("seed %d: json encode: %v", seed, err)
		}
		if err := binC.EncodeSnapshot(&viaBin, p); err != nil {
			t.Fatalf("seed %d: binary encode: %v", seed, err)
		}
		pj, err := jsonC.DecodeSnapshot(viaJSON.Bytes())
		if err != nil {
			t.Fatalf("seed %d: json decode: %v", seed, err)
		}
		pb, err := binC.DecodeSnapshot(viaBin.Bytes())
		if err != nil {
			t.Fatalf("seed %d: binary decode: %v", seed, err)
		}
		jsonEq(t, fmt.Sprintf("seed %d snapshot json-vs-binary", seed), pj, pb)
		jsonEq(t, fmt.Sprintf("seed %d snapshot binary-vs-original", seed), p, pb)

		d := randDelta(rng, rng.Intn(20))
		var dj, db bytes.Buffer
		if err := jsonC.EncodeDelta(&dj, d); err != nil {
			t.Fatalf("seed %d: json delta encode: %v", seed, err)
		}
		if err := binC.EncodeDelta(&db, d); err != nil {
			t.Fatalf("seed %d: binary delta encode: %v", seed, err)
		}
		ddj, err := jsonC.DecodeDelta(dj.Bytes())
		if err != nil {
			t.Fatalf("seed %d: json delta decode: %v", seed, err)
		}
		ddb, err := binC.DecodeDelta(db.Bytes())
		if err != nil {
			t.Fatalf("seed %d: binary delta decode: %v", seed, err)
		}
		jsonEq(t, fmt.Sprintf("seed %d delta json-vs-binary", seed), ddj, ddb)
		jsonEq(t, fmt.Sprintf("seed %d delta binary-vs-original", seed), d, ddb)
	}
}

// TestBinaryDeterministic: equal payloads encode to identical bytes
// (map iteration must not leak into the output).
func TestBinaryDeterministic(t *testing.T) {
	binC, _ := Lookup(BinaryName)
	p := randPayload(rand.New(rand.NewSource(3)), 30)
	var a, b bytes.Buffer
	if err := binC.EncodeSnapshot(&a, p); err != nil {
		t.Fatal(err)
	}
	if err := binC.EncodeSnapshot(&b, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of the same payload differ")
	}
}

// TestBinaryNoAliasing: decoded values must survive the input buffer
// being clobbered — the mmap read path unmaps right after decode.
func TestBinaryNoAliasing(t *testing.T) {
	binC, _ := Lookup(BinaryName)
	p := randPayload(rand.New(rand.NewSource(4)), 10)
	var buf bytes.Buffer
	if err := binC.EncodeSnapshot(&buf, p); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	got, err := binC.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(got)
	for i := range data {
		data[i] = 0xff
	}
	after, _ := json.Marshal(got)
	if !bytes.Equal(want, after) {
		t.Fatal("decoded payload aliases input buffer")
	}
}

// TestBinaryFrameMismatch: a snapshot body must not decode as a delta
// and vice versa.
func TestBinaryFrameMismatch(t *testing.T) {
	binC, _ := Lookup(BinaryName)
	p := randPayload(rand.New(rand.NewSource(5)), 3)
	var snap bytes.Buffer
	if err := binC.EncodeSnapshot(&snap, p); err != nil {
		t.Fatal(err)
	}
	if _, err := binC.DecodeDelta(snap.Bytes()); err == nil {
		t.Fatal("snapshot bytes decoded as delta")
	}
	var del bytes.Buffer
	if err := binC.EncodeDelta(&del, &Delta{Payload: *p}); err != nil {
		t.Fatal(err)
	}
	if _, err := binC.DecodeSnapshot(del.Bytes()); err == nil {
		t.Fatal("delta bytes decoded as snapshot")
	}
}

// TestBinaryCorruptInputs: hand-built structural corruptions must
// error, not panic.
func TestBinaryCorruptInputs(t *testing.T) {
	binC, _ := Lookup(BinaryName)
	p := randPayload(rand.New(rand.NewSource(6)), 8)
	var buf bytes.Buffer
	if err := binC.EncodeSnapshot(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"bad tail":  append(append([]byte{}, good[:len(good)-4]...), 'X', 'X', 'X', 'X'),
		"truncated": good[:len(good)*2/3],
	}
	for i := 0; i < len(good); i += 17 { // systematic bit flips
		mut := append([]byte{}, good...)
		mut[i] ^= 0x80
		cases[fmt.Sprintf("flip@%d", i)] = mut
	}
	for name, data := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panic: %v", name, r)
				}
			}()
			if got, err := binC.DecodeSnapshot(data); err == nil {
				// A flipped bit inside a string is a legal different
				// value; only structural cases must always fail.
				if name == "empty" || name == "short" || name == "bad magic" || name == "bad tail" || name == "truncated" {
					t.Errorf("%s: decode succeeded (%+v)", name, got)
				}
			}
		}()
	}
}

// TestBinarySmallerThanJSON sanity-checks the size claim the E16
// experiment quantifies: on a representative payload the binary form
// must be materially smaller.
func TestBinarySmallerThanJSON(t *testing.T) {
	jsonC, _ := Lookup(JSONName)
	binC, _ := Lookup(BinaryName)
	d := randDelta(rand.New(rand.NewSource(7)), 200)
	var j, b bytes.Buffer
	if err := jsonC.EncodeDelta(&j, d); err != nil {
		t.Fatal(err)
	}
	if err := binC.EncodeDelta(&b, d); err != nil {
		t.Fatal(err)
	}
	if b.Len()*2 > j.Len() {
		t.Fatalf("binary delta (%d bytes) not 2x smaller than JSON (%d bytes)", b.Len(), j.Len())
	}
}
