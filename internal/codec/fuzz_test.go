package codec

import (
	"bytes"
	"math/rand"
	"testing"
)

// The binary decoder's contract under hostile input: every byte
// sequence either decodes or returns an error — never a panic, and
// never an allocation sized by attacker-controlled counts (dec.count
// bounds every prealloc by the bytes actually present). The corpus
// seeds valid snapshot/delta bodies so the fuzzer mutates real
// structure — truncations, bit flips, and varint edge values — rather
// than bouncing off the magic check.

func fuzzCorpus(f *testing.F, delta bool) {
	binC, _ := Lookup(BinaryName)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		var err error
		if delta {
			err = binC.EncodeDelta(&buf, randDelta(rng, int(seed)*5))
		} else {
			err = binC.EncodeSnapshot(&buf, randPayload(rng, int(seed)*5))
		}
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Seed classic failure shapes directly.
		b := buf.Bytes()
		f.Add(b[:len(b)/2])
		flipped := append([]byte{}, b...)
		for i := 7; i < len(flipped); i += 13 {
			flipped[i] ^= 0xff
		}
		f.Add(flipped)
	}
	f.Add([]byte("VDGB"))
	f.Add([]byte("VDGBS\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01VDGE"))
	// Adversarial varint: max-length 10-byte encodings and overlong counts.
	f.Add([]byte("VDGBS\x01\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01\x10\x00\x00\x00VDGE"))
}

func FuzzDecodeSnapshot(f *testing.F) {
	fuzzCorpus(f, false)
	binC, _ := Lookup(BinaryName)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := binC.DecodeSnapshot(data)
		if err == nil && p == nil {
			t.Fatal("nil payload with nil error")
		}
	})
}

func FuzzDecodeDelta(f *testing.F) {
	fuzzCorpus(f, true)
	binC, _ := Lookup(BinaryName)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := binC.DecodeDelta(data)
		if err == nil && d == nil {
			t.Fatal("nil delta with nil error")
		}
	})
}
