package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"chimera/internal/schema"
)

// binary/v1: a compact catalog format built for the two coldest
// surfaces — snapshot reopen and federation delta transport — where
// the JSON codec is dominated by parse CPU and allocator/GC pressure.
//
// Layout:
//
//	"VDGB" | frame byte ('S' snapshot, 'D' delta) | version byte (1)
//	[delta frames: uvarint instance, since, seq | full byte]
//	section payloads, back to back (no inline headers)
//	index: uvarint n, then per section: kind byte, flags byte,
//	       uvarint offset (from file start), uvarint stored length,
//	       uvarint record count, uvarint raw (pre-compression) length
//	uint32-LE index length | "VDGE"
//
// Sections are located only through the trailing index, so a reader
// mmaps the file, reads the fixed tail, jumps to the index, and then
// decodes sections lazily and in any order — the string table first
// (every interned reference resolves against it), then record
// sections in dependency order regardless of physical position.
// Unknown section kinds are skipped: a newer writer can add sections
// without breaking old readers.
//
// Sections may be individually DEFLATE-compressed (flag bit 0). The
// two frame kinds choose differently: snapshots store raw sections so
// the mmap cold-start path decodes straight out of the page cache with
// zero inflate cost, while deltas — wire bodies, where every byte is
// paid for on the network both ways — compress each section that
// shrinks. The reader handles either transparently; the raw length in
// the index pre-sizes the inflate buffer exactly.
//
// Record sections (datasets, derivations, invocations, replicas,
// tombstones) hold length-prefixed records so a reader can skip or
// lazily decode individual records without parsing their interiors.
// Low-cardinality control-plane sections (the type registry,
// transformations, compat assertions) ride as JSON blobs inside their
// binary frames: they are thousands of times rarer than data-plane
// records, their schemas churn the most, and JSON keeps them
// forward-compatible — the million-object sections are fully binary.
//
// String interning: attribute keys, dataset type names, transformation
// references, sites, hosts and other low-cardinality strings are
// written once into the string table and referenced by varint symbol.
// High-cardinality strings (dataset names, IDs, PFNs) are inlined.
//
// Every decoded value owns its memory — nothing aliases the input
// buffer — so the caller may unmap a memory-mapped input immediately
// after decoding returns.
type binaryCodec struct{}

func (binaryCodec) Name() string        { return BinaryName }
func (binaryCodec) ContentType() string { return BinaryContentType }

const (
	binMagic     = "VDGB"
	binEndMagic  = "VDGE"
	binVersion   = 1
	frameSnap    = 'S'
	frameDelta   = 'D'
	binTailLen   = 8 // uint32 index length + end magic
	binHeaderLen = 6 // magic + frame + version
)

// Section kinds.
const (
	secStrings byte = iota + 1
	secTypes
	secDatasets
	secTransformations
	secDerivations
	secInvocations
	secReplicas
	secCompat
	secTombstones
)

// errCorrupt wraps all structural decode failures so callers can
// distinguish "this is not a valid binary/v1 body" from I/O errors.
var errCorrupt = errors.New("codec: corrupt binary data")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}

// maxActualDepth bounds Actual list nesting on decode. Valid schema
// objects never nest lists (schema.Actual.Validate rejects it);
// adversarial input must not be able to recurse the stack dry.
const maxActualDepth = 32

// ---------------------------------------------------------------------------
// Encoder

// encState is the pooled per-encode scratch: the output buffer, the
// intern table, the symbol map, and the section compressor. Pooling
// them means a federation crawl pass or snapshot loop reuses one
// allocation set per goroutine instead of rebuilding multi-megabyte
// buffers (and flate state) per call.
type encState struct {
	buf  []byte
	strs []string          // intern table in first-use order
	syms map[string]uint64 // string -> index into strs

	deflate bool          // compress sections (delta frames)
	cbuf    bytes.Buffer  // per-section compression scratch
	fw      *flate.Writer // reused across sections and encodes
}

var encPool = sync.Pool{New: func() any { return &encState{syms: make(map[string]uint64)} }}

// maxPooledEnc caps what returns to the pool: one whale encode must
// not pin its buffer for the life of the process.
const maxPooledEnc = 8 << 20

func getEnc() *encState {
	e := encPool.Get().(*encState)
	e.buf = e.buf[:0]
	e.strs = e.strs[:0]
	e.deflate = false
	clear(e.syms)
	return e
}

func putEnc(e *encState) {
	if cap(e.buf) <= maxPooledEnc && len(e.syms) <= 1<<16 {
		encPool.Put(e)
	}
}

func (e *encState) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encState) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encState) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encState) raw(b []byte)     { e.buf = append(e.buf, b...) }

// str inlines a length-prefixed string.
func (e *encState) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// sym writes the intern-table symbol for s, adding it on first use.
func (e *encState) sym(s string) {
	id, ok := e.syms[s]
	if !ok {
		id = uint64(len(e.strs))
		e.strs = append(e.strs, s)
		e.syms[s] = id
	}
	e.uvarint(id)
}

// blob inlines a length-prefixed byte slice; nil encodes as length 0.
func (e *encState) blob(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// timeb encodes a time.Time via its binary marshaling (wall clock +
// zone offset), which round-trips the zero value and sub-second
// precision exactly.
func (e *encState) timeb(t time.Time) error {
	b, err := t.MarshalBinary()
	if err != nil {
		return err
	}
	e.blob(b)
	return nil
}

// attrs encodes a string map with interned keys and inline values,
// sorted so equal inputs produce identical bytes.
func (e *encState) attrs(m map[string]string) {
	e.uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.sym(k)
		e.str(m[k])
	}
}

// strmap encodes a string map fully inline (both sides
// high-cardinality), sorted for determinism.
func (e *encState) strmap(m map[string]string) {
	e.uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		e.str(k)
		e.str(m[k])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Section flag bits.
const flagDeflate byte = 1 << 0

// compressMinSection is the size below which compressing a section is
// not worth the flate header and CPU.
const compressMinSection = 256

// section is one entry of the trailing offset index. length is the
// stored (possibly compressed) byte count; rawLen the decoded one.
type section struct {
	kind    byte
	flags   byte
	off     uint64
	length  uint64
	records uint64
	rawLen  uint64
}

// beginSection returns the marker finishSection closes over.
func (e *encState) beginSection() int { return len(e.buf) }

func (e *encState) finishSection(idx *[]section, kind byte, start int, records int) error {
	if len(e.buf) == start && records == 0 && kind != secStrings {
		return nil // empty section: omitted entirely, absence means empty
	}
	s := section{kind: kind, off: uint64(start), length: uint64(len(e.buf) - start), records: uint64(records)}
	s.rawLen = s.length
	if e.deflate && s.rawLen >= compressMinSection {
		e.cbuf.Reset()
		if e.fw == nil {
			// BestSpeed: wire deltas are encoded on every crawl pass, so
			// trade a few percent of ratio for several-fold less CPU.
			fw, err := flate.NewWriter(&e.cbuf, flate.BestSpeed)
			if err != nil {
				return err
			}
			e.fw = fw
		} else {
			e.fw.Reset(&e.cbuf)
		}
		if _, err := e.fw.Write(e.buf[start:]); err != nil {
			return err
		}
		if err := e.fw.Close(); err != nil {
			return err
		}
		if uint64(e.cbuf.Len()) < s.rawLen {
			e.buf = append(e.buf[:start], e.cbuf.Bytes()...)
			s.length = uint64(e.cbuf.Len())
			s.flags |= flagDeflate
		}
	}
	*idx = append(*idx, s)
	return nil
}

func (e *encState) actual(a *schema.Actual) {
	e.uvarint(uint64(a.Kind))
	e.str(a.Value)
	e.sym(a.Direction)
	e.uvarint(uint64(len(a.List)))
	for i := range a.List {
		e.actual(&a.List[i])
	}
}

func (e *encState) dataset(ds *schema.Dataset) error {
	e.str(ds.Name)
	e.sym(ds.Type.Content)
	e.sym(ds.Type.Format)
	e.sym(ds.Type.Encoding)
	desc, err := schema.MarshalDescriptor(ds.Descriptor)
	if err != nil {
		return err
	}
	if string(desc) == "null" {
		e.blob(nil)
	} else {
		e.blob(desc)
	}
	e.str(ds.CreatedBy)
	e.varint(int64(ds.Epoch))
	e.varint(ds.Size)
	e.attrs(ds.Attrs)
	return nil
}

func (e *encState) replica(r *schema.Replica) {
	e.str(r.ID)
	e.str(r.Dataset)
	e.sym(r.Site)
	e.str(r.PFN)
	e.varint(r.Size)
	e.varint(int64(r.Epoch))
	e.str(r.ProducedBy)
	e.attrs(r.Attrs)
}

func (e *encState) derivation(dv *schema.Derivation) {
	e.str(dv.ID)
	e.str(dv.Name)
	e.sym(dv.TR)
	// Params has no omitempty in the JSON form, so nil and empty are
	// distinguishable there; preserve the distinction.
	if dv.Params == nil {
		e.byte(0)
	} else {
		e.byte(1)
		e.uvarint(uint64(len(dv.Params)))
		for _, k := range sortedKeys(dv.Params) {
			a := dv.Params[k]
			e.str(k)
			e.actual(&a)
		}
	}
	e.uvarint(uint64(len(dv.Env)))
	for _, k := range sortedKeys(dv.Env) {
		e.sym(k)
		e.str(dv.Env[k])
	}
	e.str(dv.Parent)
	e.attrs(dv.Attrs)
}

func (e *encState) invocation(iv *schema.Invocation) error {
	e.str(iv.ID)
	e.str(iv.Derivation)
	e.sym(iv.Site)
	e.sym(iv.Host)
	if err := e.timeb(iv.Start); err != nil {
		return err
	}
	if err := e.timeb(iv.End); err != nil {
		return err
	}
	e.varint(int64(iv.ExitCode))
	e.sym(iv.OS)
	e.sym(iv.Arch)
	e.uvarint(uint64(len(iv.Env)))
	for _, k := range sortedKeys(iv.Env) {
		e.sym(k)
		e.str(iv.Env[k])
	}
	e.varint(iv.BytesIn)
	e.varint(iv.BytesOut)
	e.strmap(iv.UsedReplicas)
	e.strmap(iv.ProducedReplicas)
	e.attrs(iv.Attrs)
	return nil
}

// record frames one record: encode into the tail of the buffer via
// fn, then splice the uvarint length prefix in front of it.
func (e *encState) record(fn func() error) error {
	start := len(e.buf)
	if err := fn(); err != nil {
		e.buf = e.buf[:start]
		return err
	}
	n := len(e.buf) - start
	var pfx [binary.MaxVarintLen64]byte
	pl := binary.PutUvarint(pfx[:], uint64(n))
	e.buf = append(e.buf, pfx[:pl]...)
	copy(e.buf[start+pl:], e.buf[start:start+n])
	copy(e.buf[start:], pfx[:pl])
	return nil
}

// jsonSection appends one JSON-blob section when v is non-empty.
func (e *encState) jsonSection(idx *[]section, kind byte, v any, present bool) error {
	if !present {
		return nil
	}
	start := e.beginSection()
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	e.raw(data)
	return e.finishSection(idx, kind, start, 1)
}

// encodeBody writes the sections + index + tail for either frame kind.
func (e *encState) encodeBody(p *Payload, tombs []Tombstone) error {
	var idx []section

	start := e.beginSection()
	for i := range p.Datasets {
		if err := e.record(func() error { return e.dataset(&p.Datasets[i]) }); err != nil {
			return err
		}
	}
	if err := e.finishSection(&idx, secDatasets, start, len(p.Datasets)); err != nil {
		return err
	}

	start = e.beginSection()
	for i := range p.Derivations {
		if err := e.record(func() error { e.derivation(&p.Derivations[i]); return nil }); err != nil {
			return err
		}
	}
	if err := e.finishSection(&idx, secDerivations, start, len(p.Derivations)); err != nil {
		return err
	}

	start = e.beginSection()
	for i := range p.Invocations {
		if err := e.record(func() error { return e.invocation(&p.Invocations[i]) }); err != nil {
			return err
		}
	}
	if err := e.finishSection(&idx, secInvocations, start, len(p.Invocations)); err != nil {
		return err
	}

	start = e.beginSection()
	for i := range p.Replicas {
		if err := e.record(func() error { e.replica(&p.Replicas[i]); return nil }); err != nil {
			return err
		}
	}
	if err := e.finishSection(&idx, secReplicas, start, len(p.Replicas)); err != nil {
		return err
	}

	start = e.beginSection()
	for i := range tombs {
		if err := e.record(func() error { e.str(tombs[i].Kind); e.str(tombs[i].ID); return nil }); err != nil {
			return err
		}
	}
	if err := e.finishSection(&idx, secTombstones, start, len(tombs)); err != nil {
		return err
	}

	if err := e.jsonSection(&idx, secTypes, p.Types, p.Types != nil); err != nil {
		return err
	}
	if err := e.jsonSection(&idx, secTransformations, p.Transformations, len(p.Transformations) > 0); err != nil {
		return err
	}
	if err := e.jsonSection(&idx, secCompat, p.Compat, len(p.Compat) > 0); err != nil {
		return err
	}

	// The string table is written physically last (it only settles once
	// every record has interned its symbols) but decoded first: readers
	// reach it through the index, not by position.
	start = e.beginSection()
	e.uvarint(uint64(len(e.strs)))
	for _, s := range e.strs {
		e.str(s)
	}
	if err := e.finishSection(&idx, secStrings, start, len(e.strs)); err != nil {
		return err
	}

	idxStart := len(e.buf)
	e.uvarint(uint64(len(idx)))
	for _, s := range idx {
		e.byte(s.kind)
		e.byte(s.flags)
		e.uvarint(s.off)
		e.uvarint(s.length)
		e.uvarint(s.records)
		e.uvarint(s.rawLen)
	}
	idxLen := len(e.buf) - idxStart
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(idxLen))
	e.raw([]byte(binEndMagic))
	return nil
}

func (binaryCodec) EncodeSnapshot(w io.Writer, p *Payload) error {
	defer observeEncode(BinaryName, time.Now())
	e := getEnc()
	defer putEnc(e)
	e.raw([]byte(binMagic))
	e.byte(frameSnap)
	e.byte(binVersion)
	if err := e.encodeBody(p, nil); err != nil {
		return err
	}
	encBytes(BinaryName, len(e.buf))
	_, err := w.Write(e.buf)
	return err
}

func (binaryCodec) EncodeDelta(w io.Writer, d *Delta) error {
	defer observeEncode(BinaryName, time.Now())
	e := getEnc()
	defer putEnc(e)
	e.deflate = true
	e.raw([]byte(binMagic))
	e.byte(frameDelta)
	e.byte(binVersion)
	e.uvarint(d.Instance)
	e.uvarint(d.Since)
	e.uvarint(d.Seq)
	if d.Full {
		e.byte(1)
	} else {
		e.byte(0)
	}
	if err := e.encodeBody(&d.Payload, d.Tombstones); err != nil {
		return err
	}
	encBytes(BinaryName, len(e.buf))
	_, err := w.Write(e.buf)
	return err
}

// ---------------------------------------------------------------------------
// Decoder

// dec is a bounds-checked cursor over one section's bytes. Every read
// validates against the remaining input before allocating, so
// truncated, bit-flipped, or adversarial-varint input yields an error
// — never a panic or an attacker-sized allocation.
type dec struct {
	data []byte
	off  int
}

func (d *dec) remaining() int { return len(d.data) - d.off }

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, corrupt("bad uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, corrupt("bad varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if d.off >= len(d.data) {
		return 0, corrupt("truncated at offset %d", d.off)
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

// take returns the next n bytes of the section without copying; the
// caller must copy anything it retains.
func (d *dec) take(n uint64) ([]byte, error) {
	if n > uint64(d.remaining()) {
		return nil, corrupt("length %d exceeds remaining %d at offset %d", n, d.remaining(), d.off)
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// str decodes an inline string, copying it out of the input buffer.
func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// count validates a declared element count against the bytes actually
// present: every element occupies at least minBytes, so a count
// implying more input than exists is corrupt — and rejecting it here
// is what keeps make() calls honest.
func (d *dec) count(declared uint64, minBytes int) (int, error) {
	if declared > uint64(d.remaining()/minBytes)+1 {
		return 0, corrupt("count %d exceeds remaining input at offset %d", declared, d.off)
	}
	return int(declared), nil
}

// binReader is the lazy snapshot/delta reader: it parses only the
// header, trailing index and string table up front; record sections
// decode on demand through Section-addressed cursors. The catalog's
// mmap cold-start path is built on this — the file is mapped, sections
// are decoded straight out of the page cache in dependency order, and
// the mapping is dropped as soon as the last section is materialized.
type binReader struct {
	data     []byte
	frame    byte
	sections map[byte]section
	strs     []string

	// Delta header fields (frameDelta only).
	instance, since, seq uint64
	full                 bool
}

// openBinary validates framing and loads the index and string table.
func openBinary(data []byte, wantFrame byte) (*binReader, error) {
	if len(data) < binHeaderLen+binTailLen {
		return nil, corrupt("short input (%d bytes)", len(data))
	}
	if string(data[:4]) != binMagic {
		return nil, corrupt("bad magic %q", data[:4])
	}
	r := &binReader{data: data, frame: data[4]}
	if r.frame != frameSnap && r.frame != frameDelta {
		return nil, corrupt("unknown frame kind %q", data[4])
	}
	if wantFrame != 0 && r.frame != wantFrame {
		return nil, corrupt("frame kind %q, want %q", r.frame, wantFrame)
	}
	if data[5] != binVersion {
		return nil, corrupt("unsupported version %d", data[5])
	}
	tail := data[len(data)-binTailLen:]
	if string(tail[4:]) != binEndMagic {
		return nil, corrupt("bad end magic %q", tail[4:])
	}
	idxLen := int(binary.LittleEndian.Uint32(tail[:4]))
	idxEnd := len(data) - binTailLen
	if idxLen > idxEnd-binHeaderLen {
		return nil, corrupt("index length %d exceeds file", idxLen)
	}
	body := dec{data: data[:idxEnd], off: binHeaderLen}
	if r.frame == frameDelta {
		var err error
		if r.instance, err = body.uvarint(); err != nil {
			return nil, err
		}
		if r.since, err = body.uvarint(); err != nil {
			return nil, err
		}
		if r.seq, err = body.uvarint(); err != nil {
			return nil, err
		}
		fb, err := body.byte()
		if err != nil {
			return nil, err
		}
		r.full = fb != 0
	}

	idx := dec{data: data[:idxEnd], off: idxEnd - idxLen}
	n, err := idx.uvarint()
	if err != nil {
		return nil, err
	}
	nsec, err := idx.count(n, 4)
	if err != nil {
		return nil, err
	}
	r.sections = make(map[byte]section, nsec)
	for i := 0; i < nsec; i++ {
		kind, err := idx.byte()
		if err != nil {
			return nil, err
		}
		var s section
		s.kind = kind
		if s.flags, err = idx.byte(); err != nil {
			return nil, err
		}
		if s.off, err = idx.uvarint(); err != nil {
			return nil, err
		}
		if s.length, err = idx.uvarint(); err != nil {
			return nil, err
		}
		if s.records, err = idx.uvarint(); err != nil {
			return nil, err
		}
		if s.rawLen, err = idx.uvarint(); err != nil {
			return nil, err
		}
		if s.off > uint64(idxEnd-idxLen) || s.length > uint64(idxEnd-idxLen)-s.off {
			return nil, corrupt("section %d spans [%d,+%d) outside body", kind, s.off, s.length)
		}
		if _, dup := r.sections[kind]; dup {
			return nil, corrupt("duplicate section %d", kind)
		}
		r.sections[kind] = s
	}

	// The string table decodes eagerly: every other section's symbols
	// resolve against it.
	sd, ok, err := r.section(secStrings)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, corrupt("missing string table")
	}
	cnt, err := sd.uvarint()
	if err != nil {
		return nil, err
	}
	nstr, err := sd.count(cnt, 1)
	if err != nil {
		return nil, err
	}
	r.strs = make([]string, 0, nstr)
	for i := 0; i < nstr; i++ {
		s, err := sd.str()
		if err != nil {
			return nil, err
		}
		r.strs = append(r.strs, s)
	}
	return r, nil
}

// section returns a cursor over one section's decoded bytes; ok is
// false when the section is absent (which means empty). Compressed
// sections inflate into a fresh heap buffer here — allocation tracks
// the bytes actually produced (bounded by rawLen), not any declared
// count, so adversarial indexes cannot force an outsized make.
func (r *binReader) section(kind byte) (dec, bool, error) {
	s, ok := r.sections[kind]
	if !ok {
		return dec{}, false, nil
	}
	stored := r.data[s.off : s.off+s.length]
	if s.flags&flagDeflate == 0 {
		return dec{data: stored}, true, nil
	}
	fr := flate.NewReader(bytes.NewReader(stored))
	var buf bytes.Buffer
	if s.rawLen < 1<<20 {
		buf.Grow(int(s.rawLen))
	}
	n, err := io.Copy(&buf, io.LimitReader(fr, int64(s.rawLen)+1))
	if cerr := fr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return dec{}, false, corrupt("section %d inflate: %v", kind, err)
	}
	if uint64(n) != s.rawLen {
		return dec{}, false, corrupt("section %d inflated to %d bytes, index says %d", kind, n, s.rawLen)
	}
	return dec{data: buf.Bytes()}, true, nil
}

func (r *binReader) records(kind byte) int {
	if s, ok := r.sections[kind]; ok {
		return int(s.records)
	}
	return 0
}

// sym resolves an interned symbol. The returned string is shared with
// the reader's table — itself copied out of the input — so repeated
// keys and names across millions of records cost one allocation each.
func (r *binReader) sym(d *dec) (string, error) {
	id, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if id >= uint64(len(r.strs)) {
		return "", corrupt("symbol %d out of range (%d strings)", id, len(r.strs))
	}
	return r.strs[id], nil
}

func (r *binReader) attrs(d *dec) (schema.Attributes, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	cnt, err := d.count(n, 2)
	if err != nil || cnt == 0 {
		return nil, err
	}
	m := make(schema.Attributes, cnt)
	for i := 0; i < cnt; i++ {
		k, err := r.sym(d)
		if err != nil {
			return nil, err
		}
		v, err := d.str()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *binReader) symmap(d *dec) (map[string]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	cnt, err := d.count(n, 2)
	if err != nil || cnt == 0 {
		return nil, err
	}
	m := make(map[string]string, cnt)
	for i := 0; i < cnt; i++ {
		k, err := r.sym(d)
		if err != nil {
			return nil, err
		}
		v, err := d.str()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *binReader) strmap(d *dec) (map[string]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	cnt, err := d.count(n, 2)
	if err != nil || cnt == 0 {
		return nil, err
	}
	m := make(map[string]string, cnt)
	for i := 0; i < cnt; i++ {
		k, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.str()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *binReader) timeb(d *dec) (time.Time, error) {
	n, err := d.uvarint()
	if err != nil {
		return time.Time{}, err
	}
	b, err := d.take(n)
	if err != nil {
		return time.Time{}, err
	}
	var t time.Time
	if err := t.UnmarshalBinary(b); err != nil {
		return time.Time{}, corrupt("time: %v", err)
	}
	return t, nil
}

func (r *binReader) actual(d *dec, depth int) (schema.Actual, error) {
	var a schema.Actual
	if depth > maxActualDepth {
		return a, corrupt("actual nesting exceeds %d", maxActualDepth)
	}
	k, err := d.uvarint()
	if err != nil {
		return a, err
	}
	a.Kind = schema.ActualKind(k)
	if a.Value, err = d.str(); err != nil {
		return a, err
	}
	if a.Direction, err = r.sym(d); err != nil {
		return a, err
	}
	n, err := d.uvarint()
	if err != nil {
		return a, err
	}
	cnt, err := d.count(n, 3)
	if err != nil {
		return a, err
	}
	if cnt > 0 {
		a.List = make([]schema.Actual, 0, cnt)
		for i := 0; i < cnt; i++ {
			el, err := r.actual(d, depth+1)
			if err != nil {
				return a, err
			}
			a.List = append(a.List, el)
		}
	}
	return a, nil
}

// next frames the following record and returns a cursor bounded to it.
func (d *dec) next() (dec, error) {
	n, err := d.uvarint()
	if err != nil {
		return dec{}, err
	}
	b, err := d.take(n)
	if err != nil {
		return dec{}, err
	}
	return dec{data: b}, nil
}

func (r *binReader) datasets() ([]schema.Dataset, error) {
	d, ok, err := r.section(secDatasets)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	cnt, err := d.count(uint64(r.records(secDatasets)), 1)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Dataset, 0, cnt)
	for d.remaining() > 0 {
		rec, err := d.next()
		if err != nil {
			return nil, err
		}
		var ds schema.Dataset
		if ds.Name, err = rec.str(); err != nil {
			return nil, err
		}
		if ds.Type.Content, err = r.sym(&rec); err != nil {
			return nil, err
		}
		if ds.Type.Format, err = r.sym(&rec); err != nil {
			return nil, err
		}
		if ds.Type.Encoding, err = r.sym(&rec); err != nil {
			return nil, err
		}
		dn, err := rec.uvarint()
		if err != nil {
			return nil, err
		}
		if dn > 0 {
			raw, err := rec.take(dn)
			if err != nil {
				return nil, err
			}
			desc, err := schema.UnmarshalDescriptor(raw)
			if err != nil {
				return nil, corrupt("descriptor: %v", err)
			}
			ds.Descriptor = desc
		}
		if ds.CreatedBy, err = rec.str(); err != nil {
			return nil, err
		}
		epoch, err := rec.varint()
		if err != nil {
			return nil, err
		}
		ds.Epoch = int(epoch)
		if ds.Size, err = rec.varint(); err != nil {
			return nil, err
		}
		if ds.Attrs, err = r.attrs(&rec); err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

func (r *binReader) replicas() ([]schema.Replica, error) {
	d, ok, err := r.section(secReplicas)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	cnt, err := d.count(uint64(r.records(secReplicas)), 1)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Replica, 0, cnt)
	for d.remaining() > 0 {
		rec, err := d.next()
		if err != nil {
			return nil, err
		}
		var rep schema.Replica
		if rep.ID, err = rec.str(); err != nil {
			return nil, err
		}
		if rep.Dataset, err = rec.str(); err != nil {
			return nil, err
		}
		if rep.Site, err = r.sym(&rec); err != nil {
			return nil, err
		}
		if rep.PFN, err = rec.str(); err != nil {
			return nil, err
		}
		if rep.Size, err = rec.varint(); err != nil {
			return nil, err
		}
		epoch, err := rec.varint()
		if err != nil {
			return nil, err
		}
		rep.Epoch = int(epoch)
		if rep.ProducedBy, err = rec.str(); err != nil {
			return nil, err
		}
		if rep.Attrs, err = r.attrs(&rec); err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func (r *binReader) derivations() ([]schema.Derivation, error) {
	d, ok, err := r.section(secDerivations)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	cnt, err := d.count(uint64(r.records(secDerivations)), 1)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Derivation, 0, cnt)
	for d.remaining() > 0 {
		rec, err := d.next()
		if err != nil {
			return nil, err
		}
		var dv schema.Derivation
		if dv.ID, err = rec.str(); err != nil {
			return nil, err
		}
		if dv.Name, err = rec.str(); err != nil {
			return nil, err
		}
		if dv.TR, err = r.sym(&rec); err != nil {
			return nil, err
		}
		present, err := rec.byte()
		if err != nil {
			return nil, err
		}
		if present != 0 {
			n, err := rec.uvarint()
			if err != nil {
				return nil, err
			}
			pcnt, err := rec.count(n, 2)
			if err != nil {
				return nil, err
			}
			dv.Params = make(map[string]schema.Actual, pcnt)
			for i := 0; i < pcnt; i++ {
				k, err := rec.str()
				if err != nil {
					return nil, err
				}
				a, err := r.actual(&rec, 0)
				if err != nil {
					return nil, err
				}
				dv.Params[k] = a
			}
		}
		if dv.Env, err = r.symmap(&rec); err != nil {
			return nil, err
		}
		if dv.Parent, err = rec.str(); err != nil {
			return nil, err
		}
		if dv.Attrs, err = r.attrs(&rec); err != nil {
			return nil, err
		}
		out = append(out, dv)
	}
	return out, nil
}

func (r *binReader) invocations() ([]schema.Invocation, error) {
	d, ok, err := r.section(secInvocations)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	cnt, err := d.count(uint64(r.records(secInvocations)), 1)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Invocation, 0, cnt)
	for d.remaining() > 0 {
		rec, err := d.next()
		if err != nil {
			return nil, err
		}
		var iv schema.Invocation
		if iv.ID, err = rec.str(); err != nil {
			return nil, err
		}
		if iv.Derivation, err = rec.str(); err != nil {
			return nil, err
		}
		if iv.Site, err = r.sym(&rec); err != nil {
			return nil, err
		}
		if iv.Host, err = r.sym(&rec); err != nil {
			return nil, err
		}
		if iv.Start, err = r.timeb(&rec); err != nil {
			return nil, err
		}
		if iv.End, err = r.timeb(&rec); err != nil {
			return nil, err
		}
		ec, err := rec.varint()
		if err != nil {
			return nil, err
		}
		iv.ExitCode = int(ec)
		if iv.OS, err = r.sym(&rec); err != nil {
			return nil, err
		}
		if iv.Arch, err = r.sym(&rec); err != nil {
			return nil, err
		}
		if iv.Env, err = r.symmap(&rec); err != nil {
			return nil, err
		}
		if iv.BytesIn, err = rec.varint(); err != nil {
			return nil, err
		}
		if iv.BytesOut, err = rec.varint(); err != nil {
			return nil, err
		}
		if iv.UsedReplicas, err = r.strmap(&rec); err != nil {
			return nil, err
		}
		if iv.ProducedReplicas, err = r.strmap(&rec); err != nil {
			return nil, err
		}
		if iv.Attrs, err = r.attrs(&rec); err != nil {
			return nil, err
		}
		out = append(out, iv)
	}
	return out, nil
}

func (r *binReader) tombstones() ([]Tombstone, error) {
	d, ok, err := r.section(secTombstones)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	cnt, err := d.count(uint64(r.records(secTombstones)), 1)
	if err != nil {
		return nil, err
	}
	out := make([]Tombstone, 0, cnt)
	for d.remaining() > 0 {
		rec, err := d.next()
		if err != nil {
			return nil, err
		}
		var t Tombstone
		if t.Kind, err = rec.str(); err != nil {
			return nil, err
		}
		if t.ID, err = rec.str(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// decodeJSONSection unmarshals a JSON-blob section into v.
func (r *binReader) decodeJSONSection(kind byte, v any) (bool, error) {
	d, ok, err := r.section(kind)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(d.data, v); err != nil {
		return false, corrupt("section %d json: %v", kind, err)
	}
	return true, nil
}

// payload materializes every section.
func (r *binReader) payload() (*Payload, error) {
	p := new(Payload)
	var err error
	if _, err = r.decodeJSONSection(secTypes, &p.Types); err != nil {
		return nil, err
	}
	if _, err = r.decodeJSONSection(secTransformations, &p.Transformations); err != nil {
		return nil, err
	}
	if _, err = r.decodeJSONSection(secCompat, &p.Compat); err != nil {
		return nil, err
	}
	if p.Datasets, err = r.datasets(); err != nil {
		return nil, err
	}
	if p.Derivations, err = r.derivations(); err != nil {
		return nil, err
	}
	if p.Invocations, err = r.invocations(); err != nil {
		return nil, err
	}
	if p.Replicas, err = r.replicas(); err != nil {
		return nil, err
	}
	return p, nil
}

func (binaryCodec) DecodeSnapshot(data []byte) (*Payload, error) {
	defer observeDecode(BinaryName, time.Now())
	decBytes(BinaryName, len(data))
	r, err := openBinary(data, frameSnap)
	if err != nil {
		return nil, err
	}
	return r.payload()
}

func (binaryCodec) DecodeDelta(data []byte) (*Delta, error) {
	defer observeDecode(BinaryName, time.Now())
	decBytes(BinaryName, len(data))
	r, err := openBinary(data, frameDelta)
	if err != nil {
		return nil, err
	}
	p, err := r.payload()
	if err != nil {
		return nil, err
	}
	d := &Delta{Instance: r.instance, Since: r.since, Seq: r.seq, Full: r.full, Payload: *p}
	if d.Tombstones, err = r.tombstones(); err != nil {
		return nil, err
	}
	return d, nil
}

// AppendSnapshot encodes p with the binary codec into buf (reused when
// capacity allows) and returns the encoded bytes. It exists for the
// benchmark harness; production paths go through the Codec interface.
func AppendSnapshot(buf *bytes.Buffer, p *Payload) error {
	return binaryCodec{}.EncodeSnapshot(buf, p)
}
