package codec

import (
	"encoding/json"
	"io"
	"time"
)

// jsonCodec is the legacy format: the containers carry catalog.Export
// and catalog.Delta's exact JSON tags, so its output is byte-for-byte
// what the pre-codec snapshot writer and /v1/export handler produced.
type jsonCodec struct{}

func (jsonCodec) Name() string        { return JSONName }
func (jsonCodec) ContentType() string { return JSONContentType }

func (jsonCodec) EncodeSnapshot(w io.Writer, p *Payload) error {
	defer observeEncode(JSONName, time.Now())
	cw := countingWriter{w: w}
	err := json.NewEncoder(&cw).Encode(p)
	encBytes(JSONName, cw.n)
	return err
}

func (jsonCodec) DecodeSnapshot(data []byte) (*Payload, error) {
	defer observeDecode(JSONName, time.Now())
	decBytes(JSONName, len(data))
	p := new(Payload)
	if err := json.Unmarshal(data, p); err != nil {
		return nil, err
	}
	return p, nil
}

func (jsonCodec) EncodeDelta(w io.Writer, d *Delta) error {
	defer observeEncode(JSONName, time.Now())
	cw := countingWriter{w: w}
	err := json.NewEncoder(&cw).Encode(d)
	encBytes(JSONName, cw.n)
	return err
}

func (jsonCodec) DecodeDelta(data []byte) (*Delta, error) {
	defer observeDecode(JSONName, time.Now())
	decBytes(JSONName, len(data))
	d := new(Delta)
	if err := json.Unmarshal(data, d); err != nil {
		return nil, err
	}
	return d, nil
}

// countingWriter tallies bytes written through it for the codec
// byte-volume counters.
type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}
