package trust

import (
	"errors"
	"reflect"
	"testing"

	"chimera/internal/schema"
)

func mustAuthority(t *testing.T, name string) *Keypair {
	t.Helper()
	k, err := NewAuthority(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSignVerifyEntry(t *testing.T) {
	k := mustAuthority(t, "collab-office")
	payload := []byte(`{"name":"foo"}`)
	sig := k.SignEntry(KindDataset, "foo", payload)
	if sig.Authority != "collab-office" || sig.Key != k.ID() {
		t.Errorf("signature metadata: %+v", sig)
	}
	if err := VerifyEntry(k.PublicKey, KindDataset, "foo", payload, sig); err != nil {
		t.Fatal(err)
	}
	// Tampered payload rejected.
	if err := VerifyEntry(k.PublicKey, KindDataset, "foo", []byte(`{"name":"bar"}`), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload: %v", err)
	}
	// Replay onto another entry rejected (domain separation).
	if err := VerifyEntry(k.PublicKey, KindDataset, "other", payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("replayed id: %v", err)
	}
	if err := VerifyEntry(k.PublicKey, KindReplica, "foo", payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("replayed kind: %v", err)
	}
	// Wrong key rejected before verification.
	other := mustAuthority(t, "other")
	if err := VerifyEntry(other.PublicKey, KindDataset, "foo", payload, sig); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("wrong key: %v", err)
	}
}

func TestNewAuthorityValidation(t *testing.T) {
	if _, err := NewAuthority(""); err == nil {
		t.Error("unnamed authority accepted")
	}
	a := mustAuthority(t, "x")
	b := mustAuthority(t, "x")
	if a.ID() == b.ID() {
		t.Error("distinct keypairs share a fingerprint")
	}
}

func TestDelegationChain(t *testing.T) {
	root := mustAuthority(t, "collaboration")
	group := mustAuthority(t, "group-lead")
	personal := mustAuthority(t, "grad-student")

	s := NewStore()
	s.AddRoot(root.Authority)
	if !s.Trusted(root.ID()) {
		t.Fatal("root not trusted")
	}
	if s.Trusted(group.ID()) {
		t.Fatal("undelegated key trusted")
	}

	// collaboration -> group -> personal.
	if err := s.AddDelegation(root.Delegate(group.Authority)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDelegation(group.Delegate(personal.Authority)); err != nil {
		t.Fatal(err)
	}
	if !s.Trusted(personal.ID()) {
		t.Error("two-level chain not trusted")
	}

	// Delegation from an untrusted issuer rejected.
	outsider := mustAuthority(t, "outsider")
	mallory := mustAuthority(t, "mallory")
	if err := s.AddDelegation(outsider.Delegate(mallory.Authority)); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("untrusted issuer: %v", err)
	}

	// Forged delegation rejected.
	forged := root.Delegate(mallory.Authority)
	forged.Sig[0] ^= 0xff
	if err := s.AddDelegation(forged); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged delegation: %v", err)
	}

	// Entry verification through the store.
	payload := []byte("data")
	sig := personal.SignEntry(KindDerivation, "dv-1", payload)
	if err := s.Verify(KindDerivation, "dv-1", payload, sig); err != nil {
		t.Fatal(err)
	}
	msig := mallory.SignEntry(KindDerivation, "dv-1", payload)
	if err := s.Verify(KindDerivation, "dv-1", payload, msig); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("untrusted signer: %v", err)
	}
}

func TestRevocation(t *testing.T) {
	root := mustAuthority(t, "root")
	sub := mustAuthority(t, "sub")
	s := NewStore()
	s.AddRoot(root.Authority)
	if err := s.AddDelegation(root.Delegate(sub.Authority)); err != nil {
		t.Fatal(err)
	}
	s.Revoke(sub.ID())
	if s.Trusted(sub.ID()) {
		t.Error("revoked key trusted")
	}
	sig := sub.SignEntry(KindDataset, "d", []byte("x"))
	if err := s.Verify(KindDataset, "d", []byte("x"), sig); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("revoked signer: %v", err)
	}
	// A revoked key cannot extend trust.
	late := mustAuthority(t, "late")
	if err := s.AddDelegation(sub.Delegate(late.Authority)); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("delegation by revoked issuer: %v", err)
	}
}

func TestLedgerVouchers(t *testing.T) {
	a := mustAuthority(t, "alice")
	b := mustAuthority(t, "bob")
	m := mustAuthority(t, "mallory")
	s := NewStore()
	s.AddRoot(a.Authority)
	s.AddRoot(b.Authority)

	payload := []byte(`{"id":"dv-1"}`)
	l := NewLedger()
	l.Attach(KindDerivation, "dv-1", a.SignEntry(KindDerivation, "dv-1", payload))
	l.Attach(KindDerivation, "dv-1", b.SignEntry(KindDerivation, "dv-1", payload))
	l.Attach(KindDerivation, "dv-1", m.SignEntry(KindDerivation, "dv-1", payload)) // untrusted
	bad := a.SignEntry(KindDerivation, "dv-1", []byte("other"))                    // wrong payload
	l.Attach(KindDerivation, "dv-1", bad)
	// Duplicate attach ignored.
	l.Attach(KindDerivation, "dv-1", l.Signatures(KindDerivation, "dv-1")[0])
	if n := len(l.Signatures(KindDerivation, "dv-1")); n != 4 {
		t.Errorf("signature count: %d", n)
	}

	got := l.Vouchers(s, KindDerivation, "dv-1", payload)
	if !reflect.DeepEqual(got, []string{"alice", "bob"}) {
		t.Errorf("vouchers: %v", got)
	}

	// Policies.
	if !RequireSigners(l, s, 2)(KindDerivation, "dv-1", payload) {
		t.Error("2-signer policy should pass")
	}
	if RequireSigners(l, s, 3)(KindDerivation, "dv-1", payload) {
		t.Error("3-signer policy should fail")
	}
}

func TestAnnotationsAndQuality(t *testing.T) {
	curator1 := mustAuthority(t, "curator1")
	curator2 := mustAuthority(t, "curator2")
	rando := mustAuthority(t, "rando")
	s := NewStore()
	s.AddRoot(curator1.Authority)
	s.AddRoot(curator2.Authority)

	l := NewLedger()
	l.AddAnnotation(curator1.Annotate(KindDataset, "run1", "quality", "approved"))
	l.AddAnnotation(curator2.Annotate(KindDataset, "run1", "quality", "approved"))
	l.AddAnnotation(rando.Annotate(KindDataset, "run1", "quality", "approved")) // untrusted
	l.AddAnnotation(curator1.Annotate(KindDataset, "run1", "quality", "draft"))
	l.AddAnnotation(curator1.Annotate(KindDataset, "run1", "note", "check calibration"))

	q := l.QualityOf(s, KindDataset, "run1", "quality")
	if q["approved"] != 2 || q["draft"] != 1 {
		t.Errorf("quality counts: %v", q)
	}

	// Tampered annotation does not verify.
	tampered := curator1.Annotate(KindDataset, "run1", "quality", "approved")
	tampered.Value = "rejected"
	if err := s.VerifyAnnotation(tampered); err == nil {
		t.Error("tampered annotation verified")
	}
	l.AddAnnotation(tampered)
	if l.QualityOf(s, KindDataset, "run1", "quality")["rejected"] != 0 {
		t.Error("tampered annotation counted")
	}

	if !RequireQuality(l, s, "quality", "approved", 2)(KindDataset, "run1", nil) {
		t.Error("quality policy should pass")
	}
	if RequireQuality(l, s, "quality", "draft", 2)(KindDataset, "run1", nil) {
		t.Error("single-assertion draft should fail 2-count policy")
	}
	if n := len(l.Annotations(KindDataset, "run1")); n != 6 {
		t.Errorf("annotation count: %d", n)
	}
}

func TestSignCatalogObjects(t *testing.T) {
	// End-to-end shape: canonical bytes of a schema object are what get
	// signed; any change to the object invalidates the signature.
	k := mustAuthority(t, "signer")
	s := NewStore()
	s.AddRoot(k.Authority)

	dv := schema.Derivation{TR: "t", Params: map[string]schema.Actual{
		"a": schema.StringActual("1"),
	}}.Canonicalize()
	payload, err := schema.CanonicalBytes(dv)
	if err != nil {
		t.Fatal(err)
	}
	sig := k.SignEntry(KindDerivation, dv.ID, payload)
	if err := s.Verify(KindDerivation, dv.ID, payload, sig); err != nil {
		t.Fatal(err)
	}

	dv.Params["a"] = schema.StringActual("2")
	payload2, _ := schema.CanonicalBytes(dv)
	if err := s.Verify(KindDerivation, dv.ID, payload2, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("modified object still verifies: %v", err)
	}
}

func BenchmarkSignEntry(b *testing.B) {
	k, _ := NewAuthority("bench")
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.SignEntry(KindDerivation, "dv-x", payload)
	}
}

func BenchmarkVerifyEntry(b *testing.B) {
	k, _ := NewAuthority("bench")
	payload := make([]byte, 512)
	sig := k.SignEntry(KindDerivation, "dv-x", payload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := VerifyEntry(k.PublicKey, KindDerivation, "dv-x", payload, sig); err != nil {
			b.Fatal(err)
		}
	}
}
