// Package trust implements the quality and security machinery of §4.2:
// cryptographic signatures on virtual data catalog entries and
// attributes, identity via named authorities, root-anchored delegation
// chains, and policy-driven views that filter catalog contents by who
// vouches for them.
//
// The mechanism is deliberately policy-neutral, as in the paper: the
// package provides signing, chain validation and annotation primitives;
// communities compose them into curation processes.
package trust

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Errors reported by trust operations.
var (
	// ErrBadSignature reports a signature that does not verify.
	ErrBadSignature = errors.New("trust: signature verification failed")
	// ErrUnknownKey reports a signature by a key the verifier does not
	// know or trust.
	ErrUnknownKey = errors.New("trust: unknown or untrusted key")
)

// KeyID is the fingerprint of a public key: the first 16 hex-encoded
// bytes of its SHA-256.
type KeyID string

// Fingerprint computes the KeyID of a public key.
func Fingerprint(pub ed25519.PublicKey) KeyID {
	sum := sha256.Sum256(pub)
	return KeyID(hex.EncodeToString(sum[:8]))
}

// Authority is a named signing identity (an individual, group or
// collaboration office).
type Authority struct {
	// Name is the human-readable identity.
	Name string `json:"name"`
	// PublicKey verifies the authority's signatures.
	PublicKey ed25519.PublicKey `json:"publicKey"`
}

// ID returns the authority's key fingerprint.
func (a Authority) ID() KeyID { return Fingerprint(a.PublicKey) }

// Keypair is an authority together with its private key.
type Keypair struct {
	Authority
	priv ed25519.PrivateKey
}

// NewAuthority generates a fresh keypair for the named authority.
func NewAuthority(name string) (*Keypair, error) {
	if name == "" {
		return nil, fmt.Errorf("trust: authority needs a name")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("trust: keygen: %w", err)
	}
	return &Keypair{Authority: Authority{Name: name, PublicKey: pub}, priv: priv}, nil
}

// Signature is a detached signature over one catalog entry (or one
// attribute assertion).
type Signature struct {
	// Authority is the signer's claimed name (informational; identity
	// is established by Key).
	Authority string `json:"authority"`
	// Key is the signer's key fingerprint.
	Key KeyID `json:"key"`
	// Sig is the Ed25519 signature bytes.
	Sig []byte `json:"sig"`
}

// digest computes the signing digest of an entry: domain-separated over
// its kind, identity and canonical payload, so a signature on one
// entry cannot be replayed onto another.
func digest(kind, id string, payload []byte) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "chimera-entry/%s/%s/%d:", kind, id, len(payload))
	h.Write(payload)
	return h.Sum(nil)
}

// SignEntry signs a catalog entry identified by (kind, id) with the
// given canonical payload bytes.
func (k *Keypair) SignEntry(kind, id string, payload []byte) Signature {
	return Signature{
		Authority: k.Name,
		Key:       k.ID(),
		Sig:       ed25519.Sign(k.priv, digest(kind, id, payload)),
	}
}

// VerifyEntry checks a signature against a public key.
func VerifyEntry(pub ed25519.PublicKey, kind, id string, payload []byte, sig Signature) error {
	if Fingerprint(pub) != sig.Key {
		return fmt.Errorf("%w: fingerprint mismatch", ErrUnknownKey)
	}
	if !ed25519.Verify(pub, digest(kind, id, payload), sig.Sig) {
		return ErrBadSignature
	}
	return nil
}

// Delegation is a signed statement by an issuer that a subject
// authority's key is to be trusted. Chains of delegations anchor at
// root authorities.
type Delegation struct {
	// Issuer is the key fingerprint of the delegating authority.
	Issuer KeyID `json:"issuer"`
	// Subject is the authority being vouched for.
	Subject Authority `json:"subject"`
	// Sig signs the subject's name and key under the issuer's key.
	Sig []byte `json:"sig"`
}

func delegationDigest(subject Authority) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "chimera-delegation/%s/", subject.Name)
	h.Write(subject.PublicKey)
	return h.Sum(nil)
}

// Delegate issues a delegation for subject signed by k.
func (k *Keypair) Delegate(subject Authority) Delegation {
	return Delegation{
		Issuer:  k.ID(),
		Subject: subject,
		Sig:     ed25519.Sign(k.priv, delegationDigest(subject)),
	}
}

// Store holds the trust anchor state of one participant: its root
// authorities and every authority reachable from them through valid
// delegations. A Store is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	trusted map[KeyID]Authority
	roots   map[KeyID]bool
	revoked map[KeyID]bool
}

// NewStore returns an empty trust store.
func NewStore() *Store {
	return &Store{
		trusted: make(map[KeyID]Authority),
		roots:   make(map[KeyID]bool),
		revoked: make(map[KeyID]bool),
	}
}

// AddRoot installs an authority as a trust anchor.
func (s *Store) AddRoot(a Authority) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := a.ID()
	s.trusted[id] = a
	s.roots[id] = true
}

// AddDelegation extends trust to the delegation's subject, provided the
// issuer is already trusted (and not revoked) and the delegation
// signature verifies.
func (s *Store) AddDelegation(d Delegation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	issuer, ok := s.trusted[d.Issuer]
	if !ok || s.revoked[d.Issuer] {
		return fmt.Errorf("%w: issuer %s", ErrUnknownKey, d.Issuer)
	}
	if !ed25519.Verify(issuer.PublicKey, delegationDigest(d.Subject), d.Sig) {
		return fmt.Errorf("%w: delegation for %q", ErrBadSignature, d.Subject.Name)
	}
	s.trusted[d.Subject.ID()] = d.Subject
	return nil
}

// Revoke withdraws trust from a key. Roots can be revoked too;
// delegations already accepted from the key remain (revocation is not
// retroactive), matching certificate-style semantics.
func (s *Store) Revoke(id KeyID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revoked[id] = true
}

// Trusted reports whether the key is currently trusted.
func (s *Store) Trusted(id KeyID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.trusted[id]
	return ok && !s.revoked[id]
}

// AuthorityByKey returns the trusted authority with the given key.
func (s *Store) AuthorityByKey(id KeyID) (Authority, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.trusted[id]
	if !ok || s.revoked[id] {
		return Authority{}, false
	}
	return a, true
}

// Verify checks an entry signature against the store: the signing key
// must be trusted and the signature must verify.
func (s *Store) Verify(kind, id string, payload []byte, sig Signature) error {
	a, ok := s.AuthorityByKey(sig.Key)
	if !ok {
		return fmt.Errorf("%w: %s (claimed %q)", ErrUnknownKey, sig.Key, sig.Authority)
	}
	return VerifyEntry(a.PublicKey, kind, id, payload, sig)
}
