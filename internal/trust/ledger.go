package trust

import (
	"sort"
	"sync"
)

// Entry kinds used when signing catalog objects.
const (
	KindDataset        = "dataset"
	KindTransformation = "transformation"
	KindDerivation     = "derivation"
	KindInvocation     = "invocation"
	KindReplica        = "replica"
	KindAnnotation     = "annotation"
)

// Annotation is a signed attribute assertion about a catalog entry —
// the mechanism behind community "quality" processes: curation status,
// audit approval, ad-hoc endorsements.
type Annotation struct {
	// TargetKind/TargetID identify the annotated entry.
	TargetKind string `json:"targetKind"`
	TargetID   string `json:"targetId"`
	// Key/Value is the asserted attribute, e.g. quality=approved.
	Key   string `json:"key"`
	Value string `json:"value"`
	// Sig signs the assertion.
	Sig Signature `json:"sig"`
}

// annotationPayload is the byte string an annotation signature covers.
func annotationPayload(targetKind, targetID, key, value string) []byte {
	return []byte("k=" + key + ";v=" + value + ";t=" + targetKind + "/" + targetID)
}

// Annotate creates a signed annotation.
func (k *Keypair) Annotate(targetKind, targetID, key, value string) Annotation {
	payload := annotationPayload(targetKind, targetID, key, value)
	return Annotation{
		TargetKind: targetKind, TargetID: targetID,
		Key: key, Value: value,
		Sig: k.SignEntry(KindAnnotation, targetID, payload),
	}
}

// VerifyAnnotation checks an annotation against a trust store.
func (s *Store) VerifyAnnotation(a Annotation) error {
	payload := annotationPayload(a.TargetKind, a.TargetID, a.Key, a.Value)
	return s.Verify(KindAnnotation, a.TargetID, payload, a.Sig)
}

type entryKey struct {
	kind, id string
}

// Ledger accumulates the signatures and annotations attached to catalog
// entries. It is storage only — verification happens against a Store —
// so untrusted signatures can be carried and re-evaluated as trust
// changes. A Ledger is safe for concurrent use.
type Ledger struct {
	mu          sync.RWMutex
	sigs        map[entryKey][]Signature
	annotations map[entryKey][]Annotation
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		sigs:        make(map[entryKey][]Signature),
		annotations: make(map[entryKey][]Annotation),
	}
}

// Attach records a signature on an entry. Duplicate (key, sig) pairs
// are ignored.
func (l *Ledger) Attach(kind, id string, sig Signature) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := entryKey{kind, id}
	for _, s := range l.sigs[k] {
		if s.Key == sig.Key && string(s.Sig) == string(sig.Sig) {
			return
		}
	}
	l.sigs[k] = append(l.sigs[k], sig)
}

// Signatures returns the signatures recorded for an entry.
func (l *Ledger) Signatures(kind, id string) []Signature {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Signature(nil), l.sigs[entryKey{kind, id}]...)
}

// AddAnnotation records an annotation.
func (l *Ledger) AddAnnotation(a Annotation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := entryKey{a.TargetKind, a.TargetID}
	l.annotations[k] = append(l.annotations[k], a)
}

// Annotations returns the annotations recorded for an entry.
func (l *Ledger) Annotations(kind, id string) []Annotation {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Annotation(nil), l.annotations[entryKey{kind, id}]...)
}

// Vouchers returns the names of trusted authorities whose signatures on
// the entry verify against the payload, sorted.
func (l *Ledger) Vouchers(s *Store, kind, id string, payload []byte) []string {
	var out []string
	seen := make(map[string]bool)
	for _, sig := range l.Signatures(kind, id) {
		if err := s.Verify(kind, id, payload, sig); err != nil {
			continue
		}
		a, _ := s.AuthorityByKey(sig.Key)
		if !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a.Name)
		}
	}
	sort.Strings(out)
	return out
}

// QualityOf evaluates the verified annotations with the given key on an
// entry and returns the asserted values with the count of distinct
// trusted authorities asserting each.
func (l *Ledger) QualityOf(s *Store, kind, id, key string) map[string]int {
	counts := make(map[string]int)
	perValue := make(map[string]map[KeyID]bool)
	for _, a := range l.Annotations(kind, id) {
		if a.Key != key {
			continue
		}
		if err := s.VerifyAnnotation(a); err != nil {
			continue
		}
		if perValue[a.Value] == nil {
			perValue[a.Value] = make(map[KeyID]bool)
		}
		perValue[a.Value][a.Sig.Key] = true
	}
	for v, keys := range perValue {
		counts[v] = len(keys)
	}
	return counts
}

// Policy decides whether an entry (with payload) is acceptable.
type Policy func(kind, id string, payload []byte) bool

// RequireSigners builds a policy accepting entries carrying valid
// signatures from at least n distinct trusted authorities.
func RequireSigners(l *Ledger, s *Store, n int) Policy {
	return func(kind, id string, payload []byte) bool {
		return len(l.Vouchers(s, kind, id, payload)) >= n
	}
}

// RequireQuality builds a policy accepting entries for which at least n
// trusted authorities assert the given quality key/value.
func RequireQuality(l *Ledger, s *Store, key, value string, n int) Policy {
	return func(kind, id string, _ []byte) bool {
		return l.QualityOf(s, kind, id, key)[value] >= n
	}
}
