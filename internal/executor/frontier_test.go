package executor

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/schema"
)

// genLayered builds a randomized layered DAG of ~layers*width nodes:
// each node consumes one or two datasets of the previous layer, so
// graphs mix chains, fan-out and fan-in — the shapes the frontier
// scheduler must agree with dag.Ready on.
func genLayered(t testing.TB, layers, width int, seed int64) *dag.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var dvs []schema.Derivation
	prev := []string{"src"}
	for l := 0; l < layers; l++ {
		cur := make([]string, 0, width)
		for i := 0; i < width; i++ {
			out := fmt.Sprintf("d%d-%d", l, i)
			if len(prev) < 2 || rng.Intn(2) == 0 {
				dvs = append(dvs, dv1(prev[rng.Intn(len(prev))], out))
			} else {
				i1 := prev[rng.Intn(len(prev))]
				i2 := prev[rng.Intn(len(prev))]
				for i2 == i1 {
					i2 = prev[rng.Intn(len(prev))]
				}
				dvs = append(dvs, dv2(i1, i2, out))
			}
			cur = append(cur, out)
		}
		prev = cur
	}
	g, err := dag.Build(dvs, schema.MapResolver(tr1(), tr2()))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hashExit deterministically fails ~one attempt in four, keyed by
// (node, attempt), so retry and permanent-failure paths are exercised
// identically across runs and modes.
func hashExit(node string, attempt int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s/%d", node, attempt)
	if h.Sum32()%4 == 0 {
		return 1
	}
	return 0
}

type eventKey struct {
	Kind    string
	Node    string
	Attempt int
}

// runNull executes g on a NullDriver and returns the event stream.
func runNull(t *testing.T, g *dag.Graph, rescan bool, retries int) ([]eventKey, Report) {
	t.Helper()
	var events []eventKey
	ex := &Executor{
		Driver:         &NullDriver{ExitCode: hashExit},
		Assign:         fixedAssign(1),
		MaxRetries:     retries,
		RescanDispatch: rescan,
		OnEvent: func(ev Event) {
			events = append(events, eventKey{ev.Kind, ev.Node, ev.Attempt})
		},
	}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	return events, rep
}

// TestFrontierMatchesReadyOracle proves the incremental indegree
// frontier equivalent to the dag.Ready rescan: over randomized DAGs
// with deterministic failures and retries, both modes must produce the
// *identical* event sequence (the rescan mode consults dag.Ready
// directly, so byte-for-byte equal streams mean the frontier never
// dispatches early, late, out of order, or at all differently).
func TestFrontierMatchesReadyOracle(t *testing.T) {
	shapes := []struct{ layers, width int }{
		{1, 1}, {1, 8}, {12, 1}, {4, 6}, {6, 10}, {3, 30},
	}
	for seed := int64(0); seed < 8; seed++ {
		for _, sh := range shapes {
			for _, retries := range []int{0, 2} {
				g := genLayered(t, sh.layers, sh.width, seed)
				got, gotRep := runNull(t, g, false, retries)
				want, wantRep := runNull(t, g, true, retries)
				if len(got) != len(want) {
					t.Fatalf("seed=%d shape=%dx%d retries=%d: %d events vs %d (oracle)",
						seed, sh.layers, sh.width, retries, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed=%d shape=%dx%d retries=%d: event %d = %+v, oracle %+v",
							seed, sh.layers, sh.width, retries, i, got[i], want[i])
					}
				}
				if gotRep.Completed != wantRep.Completed || gotRep.Failed != wantRep.Failed ||
					gotRep.Blocked != wantRep.Blocked || gotRep.Retries != wantRep.Retries {
					t.Fatalf("seed=%d shape=%dx%d: report %+v vs oracle %+v",
						seed, sh.layers, sh.width, gotRep, wantRep)
				}
			}
		}
	}
}

// stormDriver registers deterministic-failure transform functions on a
// LocalDriver: each function sleeps a few hundred microseconds (so
// completions genuinely overlap) and fails per hashExit on the node's
// attempt counter.
func stormDriver(t *testing.T) *LocalDriver {
	t.Helper()
	drv := NewLocalDriver(t.TempDir())
	var mu sync.Mutex
	attempts := make(map[string]int)
	fn := func(task Task) error {
		mu.Lock()
		a := attempts[task.Node.ID]
		attempts[task.Node.ID] = a + 1
		mu.Unlock()
		time.Sleep(time.Duration(100+rand.Intn(200)) * time.Microsecond)
		if hashExit(task.Node.ID, a) != 0 {
			return fmt.Errorf("injected failure %s attempt %d", task.Node.ID, a)
		}
		return nil
	}
	drv.Register("t", fn)
	drv.Register("m", fn)
	return drv
}

func stormRun(t *testing.T, sync bool) (Report, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New(nil)
	if err := cat.AddTransformation(tr1()); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTransformation(tr2()); err != nil {
		t.Fatal(err)
	}
	g := genLayered(t, 6, 20, 99)
	for _, n := range g.Nodes() {
		if _, err := cat.AddDerivation(n.Derivation); err != nil {
			t.Fatal(err)
		}
	}
	ex := &Executor{
		Driver:     stormDriver(t),
		Catalog:    cat,
		MaxRetries: 3,
		Assign: func(n *dag.Node) (Placement, error) {
			out := map[string]int64{}
			for _, o := range n.Outputs {
				out[o] = 100
			}
			return Placement{OutputBytes: out}, nil
		},
		RescanDispatch: sync,
		SyncRecording:  sync,
	}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	return rep, cat
}

// TestRecordingStormMatchesSerial drives a LocalDriver workflow with
// overlapping completions and retries through the concurrent scheduler
// (incremental frontier + recording pipeline) and through the legacy
// serial path (full rescan + inline recording), and asserts the report
// counters, invocation IDs, and replica records agree. Run under -race
// this is also the data-race storm for the scheduler/recorder/planner
// surfaces.
func TestRecordingStormMatchesSerial(t *testing.T) {
	conc, concCat := stormRun(t, false)
	serial, serialCat := stormRun(t, true)

	if conc.Completed != serial.Completed || conc.Failed != serial.Failed ||
		conc.Blocked != serial.Blocked || conc.Retries != serial.Retries {
		t.Fatalf("concurrent report %+v, serial %+v", conc, serial)
	}
	if len(conc.Results) != len(serial.Results) {
		t.Fatalf("results: %d vs %d", len(conc.Results), len(serial.Results))
	}

	ivs := func(c *catalog.Catalog) map[string]int {
		out := map[string]int{}
		for _, iv := range c.Invocations() {
			out[iv.ID] = iv.ExitCode
		}
		return out
	}
	gotIV, wantIV := ivs(concCat), ivs(serialCat)
	if len(gotIV) != len(wantIV) {
		t.Fatalf("invocations: %d vs %d", len(gotIV), len(wantIV))
	}
	for id, exit := range wantIV {
		if got, ok := gotIV[id]; !ok || got != exit {
			t.Errorf("invocation %s: got exit %d (present=%v), serial %d", id, got, ok, exit)
		}
	}

	reps := func(c *catalog.Catalog) map[string]schema.Replica {
		out := map[string]schema.Replica{}
		for _, ds := range c.Datasets() {
			for _, r := range c.ReplicasOf(ds.Name) {
				out[r.ID] = r
			}
		}
		return out
	}
	gotRep, wantRep := reps(concCat), reps(serialCat)
	if len(gotRep) != len(wantRep) {
		t.Fatalf("replicas: %d vs %d", len(gotRep), len(wantRep))
	}
	for id, want := range wantRep {
		got, ok := gotRep[id]
		if !ok {
			t.Errorf("replica %s missing", id)
			continue
		}
		if got.Dataset != want.Dataset || got.Site != want.Site ||
			got.Size != want.Size || got.Epoch != want.Epoch || got.ProducedBy != want.ProducedBy {
			t.Errorf("replica %s: %+v vs serial %+v", id, got, want)
		}
	}
}

// TestPipelinedRecordingBatchesWAL proves the point of the off-lock
// pipeline: against a fsync-on-commit catalog, overlapping completions
// must reach the group committer together, i.e. the mean WAL batch
// carries more than one record. (The legacy inline path waits under
// the scheduler lock, so a batch never spans completions — the mean is
// pinned at one completion's records.)
func TestPipelinedRecordingBatchesWAL(t *testing.T) {
	cat, err := catalog.Open(t.TempDir(), nil, catalog.Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.AddTransformation(tr1()); err != nil {
		t.Fatal(err)
	}
	var dvs []schema.Derivation
	for i := 0; i < 150; i++ {
		dvs = append(dvs, dv1("src", fmt.Sprintf("out%d", i)))
	}
	g, err := dag.Build(dvs, schema.MapResolver(tr1()))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if _, err := cat.AddDerivation(n.Derivation); err != nil {
			t.Fatal(err)
		}
	}
	drv := NewLocalDriver(t.TempDir())
	drv.Register("t", func(Task) error {
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	batches0, records0 := catalog.WALBatchStats()
	ex := &Executor{Driver: drv, Catalog: cat,
		Assign: func(n *dag.Node) (Placement, error) {
			return Placement{OutputBytes: map[string]int64{n.Outputs[0]: 1}}, nil
		}}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report: %+v", rep)
	}
	batches, records := catalog.WALBatchStats()
	db, dr := batches-batches0, records-records0
	if db == 0 {
		t.Fatal("no WAL batches recorded")
	}
	if mean := dr / float64(db); mean <= 1.0 {
		t.Errorf("mean WAL batch = %.2f records; pipelined completions should group-commit (>1)", mean)
	}
}

// BenchmarkSchedulerDispatch isolates the dispatch+complete hot path on
// a NullDriver: the frontier sub-benchmark is the incremental
// scheduler, rescan is the legacy O(V+E)-per-completion baseline.
func BenchmarkSchedulerDispatch(b *testing.B) {
	g := genLayered(b, 40, 50, 7) // 2000 nodes
	for _, mode := range []struct {
		name   string
		rescan bool
	}{{"frontier", false}, {"rescan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ex := &Executor{
					Driver:         &NullDriver{},
					Assign:         fixedAssign(1),
					RescanDispatch: mode.rescan,
				}
				if _, err := ex.Run(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
