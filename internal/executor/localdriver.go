package executor

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"chimera/internal/dag"
	"chimera/internal/schema"
)

// Task is what a locally executed transformation function receives: the
// node being run, its resolved command line under the POSIX model, and
// a workspace directory for dataset files.
type Task struct {
	Node *dag.Node
	// Exec is the resolved executable pathname.
	Exec string
	// Args is the command line built from the transformation's
	// argument templates (excluding stdio redirections).
	Args []string
	// Stdin, Stdout, Stderr are the resolved redirection values ("" if
	// not redirected).
	Stdin, Stdout, Stderr string
	// Env is the resolved environment.
	Env map[string]string
	// Workspace is the driver's scratch directory.
	Workspace string
}

// TransformFunc executes one derivation locally. A non-nil error marks
// the attempt failed.
type TransformFunc func(Task) error

// LocalDriver executes workflow nodes as registered Go functions on the
// local machine in real time — the "interactive analysis" execution
// mode, and the way examples exercise real files end to end.
type LocalDriver struct {
	// Registry maps transformation names (bare name, or full canonical
	// ref for versioned lookups) to implementations.
	Registry map[string]TransformFunc
	// Resolve provides transformation definitions for command-line
	// construction. Optional; without it tasks carry only the node.
	Resolve schema.Resolver
	// Workspace is the scratch directory handed to tasks.
	Workspace string
	// ExecFallback runs unregistered transformations as real processes
	// under the POSIX model: the resolved Exec path is invoked with the
	// template-built argument vector (whitespace-split per template),
	// stdio redirected to workspace files, and the resolved environment
	// appended. This is the Chimera-0/1 execution semantics and
	// requires Resolve to be set.
	ExecFallback bool

	base time.Time
	wg   sync.WaitGroup
	mu   sync.Mutex
}

// NewLocalDriver returns a driver with an empty registry rooted at dir.
func NewLocalDriver(dir string) *LocalDriver {
	return &LocalDriver{
		Registry:  make(map[string]TransformFunc),
		Workspace: dir,
		base:      time.Now(),
	}
}

// Register installs an implementation for a transformation name.
func (d *LocalDriver) Register(name string, fn TransformFunc) { d.Registry[name] = fn }

// Now returns seconds since the driver was created.
func (d *LocalDriver) Now() float64 { return time.Since(d.base).Seconds() }

// Drain waits for all running tasks (and tasks they transitively
// unlock) to finish.
func (d *LocalDriver) Drain() { d.wg.Wait() }

// Start implements Driver: the node runs on its own goroutine; the done
// callback fires before the task is accounted finished, so successor
// dispatches keep Drain from returning early.
func (d *LocalDriver) Start(n *dag.Node, p Placement, attempt int, done func(Result)) error {
	fn := d.lookup(n.Derivation.TR)
	if fn == nil && d.ExecFallback && d.Resolve != nil {
		fn = d.runProcess
	}
	if fn == nil {
		return fmt.Errorf("executor: no local implementation registered for %q", n.Derivation.TR)
	}
	task := Task{Node: n, Workspace: d.Workspace, Env: n.Derivation.Env}
	if d.Resolve != nil {
		tr, err := d.Resolve(n.Derivation.TR)
		if err != nil {
			return err
		}
		cmd, err := BuildCommand(tr, n.Derivation)
		if err != nil {
			return err
		}
		task.Exec = cmd.Exec
		task.Args = cmd.Args
		task.Stdin, task.Stdout, task.Stderr = cmd.Stdin, cmd.Stdout, cmd.Stderr
		task.Env = cmd.Env
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		start := d.Now()
		err := fn(task)
		exit := 0
		if err != nil {
			exit = 1
		}
		host, _ := os.Hostname()
		done(Result{
			Node: n.ID, Attempt: attempt, ExitCode: exit,
			Site: "local", Host: host,
			Start: start, End: d.Now(),
		})
	}()
	return nil
}

// runProcess executes a task as a real process under the POSIX model:
// argv from the argument templates (whitespace-split), stdio redirected
// to workspace files named by the bound datasets, environment appended
// to the parent's.
func (d *LocalDriver) runProcess(task Task) error {
	if task.Exec == "" {
		return fmt.Errorf("executor: transformation %q has no executable", task.Node.Derivation.TR)
	}
	var argv []string
	for _, a := range task.Args {
		argv = append(argv, strings.Fields(a)...)
	}
	cmd := exec.Command(task.Exec, argv...)
	cmd.Dir = task.Workspace
	if len(task.Env) > 0 {
		cmd.Env = os.Environ()
		for k, v := range task.Env {
			cmd.Env = append(cmd.Env, k+"="+v)
		}
	}
	if task.Stdin != "" {
		f, err := os.Open(filepath.Join(task.Workspace, task.Stdin))
		if err != nil {
			return err
		}
		defer f.Close()
		cmd.Stdin = f
	}
	if task.Stdout != "" {
		f, err := os.Create(filepath.Join(task.Workspace, task.Stdout))
		if err != nil {
			return err
		}
		defer f.Close()
		cmd.Stdout = f
	}
	if task.Stderr != "" {
		f, err := os.Create(filepath.Join(task.Workspace, task.Stderr))
		if err != nil {
			return err
		}
		defer f.Close()
		cmd.Stderr = f
	}
	return cmd.Run()
}

// lookup resolves an implementation by full ref, then by bare name.
func (d *LocalDriver) lookup(ref string) TransformFunc {
	if fn, ok := d.Registry[ref]; ok {
		return fn
	}
	_, name, _, err := schema.ParseTRRef(ref)
	if err != nil {
		return nil
	}
	return d.Registry[name]
}
