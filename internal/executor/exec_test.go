package executor

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"chimera/internal/dag"
	"chimera/internal/grid"
	"chimera/internal/schema"
)

// catTR pipes stdin to stdout via /bin/cat — a real POSIX
// transformation with dataset-bound redirections.
func catTR() schema.Transformation {
	return schema.Transformation{
		Name: "copy", Kind: schema.Simple, Exec: "/bin/cat",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		},
		ArgTemplates: []schema.ArgTemplate{
			{Name: "stdin", Parts: []schema.TemplatePart{{Ref: "i"}}},
			{Name: "stdout", Parts: []schema.TemplatePart{{Ref: "o"}}},
		},
	}
}

// envTR dumps the process environment — exercising env-variable
// resolution through the POSIX model.
func envTR() schema.Transformation {
	return schema.Transformation{
		Name: "printenv", Kind: schema.Simple, Exec: "/usr/bin/env",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
			{Name: "greeting", Direction: schema.None, Default: defaultActual("hello")},
		},
		ArgTemplates: []schema.ArgTemplate{
			{Name: "stdin", Parts: []schema.TemplatePart{{Ref: "i"}}},
			{Name: "stdout", Parts: []schema.TemplatePart{{Ref: "o"}}},
		},
		Env: map[string][]schema.TemplatePart{"GREETING": {{Ref: "greeting"}}},
	}
}

func defaultActual(v string) *schema.Actual {
	a := schema.StringActual(v)
	return &a
}

func requirePOSIX(t *testing.T) {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("POSIX executables unavailable")
	}
	if _, err := os.Stat("/bin/cat"); err != nil {
		t.Skip("/bin/cat unavailable")
	}
}

func TestExecFallbackRunsRealProcesses(t *testing.T) {
	requirePOSIX(t)
	ws := t.TempDir()
	res := schema.MapResolver(catTR(), envTR())
	drv := NewLocalDriver(ws)
	drv.Resolve = res
	drv.ExecFallback = true

	if err := os.WriteFile(filepath.Join(ws, "src"), []byte("payload\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dvs := []schema.Derivation{
		{TR: "copy", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", "mid"),
			"i": schema.DatasetActual("input", "src"),
		}},
		{TR: "printenv", Params: map[string]schema.Actual{
			"o":        schema.DatasetActual("output", "final"),
			"i":        schema.DatasetActual("input", "mid"),
			"greeting": schema.StringActual("bonjour"),
		}},
	}
	g, err := dag.Build(dvs, res)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report: %+v", rep)
	}
	// Stage 1: /bin/cat copied src -> mid byte for byte.
	mid, err := os.ReadFile(filepath.Join(ws, "mid"))
	if err != nil || string(mid) != "payload\n" {
		t.Errorf("cat stage: %q %v", mid, err)
	}
	// Stage 2: /usr/bin/env saw the resolved GREETING variable.
	out, err := os.ReadFile(filepath.Join(ws, "final"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "GREETING=bonjour") {
		t.Errorf("env output missing GREETING: %q", out)
	}
}

func TestExecFallbackFailuresReported(t *testing.T) {
	requirePOSIX(t)
	ws := t.TempDir()
	// Nonexistent executable → failed attempt, not executor error.
	bad := schema.Transformation{Name: "nope", Kind: schema.Simple, Exec: "/no/such/bin",
		Args: []schema.FormalArg{{Name: "o", Direction: schema.Out}, {Name: "i", Direction: schema.In}}}
	res := schema.MapResolver(bad, catTR())
	drv := NewLocalDriver(ws)
	drv.Resolve = res
	drv.ExecFallback = true
	g, _ := dag.Build([]schema.Derivation{{TR: "nope", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "o"), "i": schema.DatasetActual("input", "i"),
	}}}, res)
	ex := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Errorf("missing executable: %+v", rep)
	}

	// Missing stdin file → failure too.
	g2, _ := dag.Build([]schema.Derivation{{TR: "copy", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "out2"), "i": schema.DatasetActual("input", "missing-input"),
	}}}, res)
	ex2 := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	rep, err = ex2.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Errorf("missing input: %+v", rep)
	}
}

func TestExecFallbackDisabledStillErrors(t *testing.T) {
	ws := t.TempDir()
	res := schema.MapResolver(catTR())
	drv := NewLocalDriver(ws)
	drv.Resolve = res // fallback off
	g, _ := dag.Build([]schema.Derivation{{TR: "copy", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "o"), "i": schema.DatasetActual("input", "i"),
	}}}, res)
	ex := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	if _, err := ex.Run(g); err == nil {
		t.Error("unregistered TR without fallback accepted")
	}
}

func TestRegisteredFuncBeatsFallback(t *testing.T) {
	ws := t.TempDir()
	res := schema.MapResolver(catTR())
	drv := NewLocalDriver(ws)
	drv.Resolve = res
	drv.ExecFallback = true
	ran := false
	drv.Register("copy", func(Task) error { ran = true; return nil })
	g, _ := dag.Build([]schema.Derivation{{TR: "copy", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "o"), "i": schema.DatasetActual("input", "i"),
	}}}, res)
	ex := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	rep, err := ex.Run(g)
	if err != nil || !rep.Succeeded() || !ran {
		t.Errorf("registered func not preferred: %v %v ran=%v", rep, err, ran)
	}
}

func TestCampaignSurvivesHostFailures(t *testing.T) {
	// 2 sites × 4 hosts; kill one site's hosts mid-campaign. Retries
	// reroute the lost jobs; the campaign still completes.
	g := grid.NewGrid()
	for _, s := range []string{"a", "b"} {
		if _, err := g.AddSite(s, 1e15); err != nil {
			t.Fatal(err)
		}
		if err := g.AddHosts(s, s, 4, 1.0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("a", "b", 1e9, 0.01, 4); err != nil {
		t.Fatal(err)
	}
	cl := grid.NewCluster(g, grid.NewSim(13))
	drv := NewSimDriver(cl)

	var dvs []schema.Derivation
	tr := catTR()
	for i := 0; i < 40; i++ {
		dvs = append(dvs, schema.Derivation{TR: "copy", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", fmt.Sprintf("out%d", i)),
			"i": schema.DatasetActual("input", "src"),
		}})
	}
	graph, err := dag.Build(dvs, schema.MapResolver(tr))
	if err != nil {
		t.Fatal(err)
	}

	// Kill site a's hosts at t=50 (jobs are 100s; many are mid-run).
	cl.Sim.After(50, func() {
		for i := 0; i < 4; i++ {
			cl.FailHost(fmt.Sprintf("a-%d", i))
		}
	})

	round := 0
	ex := &Executor{Driver: drv, MaxRetries: 3, Assign: func(*dag.Node) (Placement, error) {
		// Round-robin across sites; placements onto dead hosts surface
		// as failed attempts and retry elsewhere (site-level choice:
		// host is picked at launch among live hosts).
		round++
		site := "a"
		if round%2 == 0 || cl.LeastLoadedHost("a") == "" {
			site = "b"
		}
		return Placement{Site: site, Work: 100}, nil
	}}
	rep, err := ex.Run(graph)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("campaign lost jobs to host failures: %+v", rep)
	}
	if rep.Retries == 0 {
		t.Error("expected retries after host failures")
	}
	// Every successful completion ran on a surviving host.
	for _, r := range rep.Results {
		if r.ExitCode == 0 && r.Site == "a" && r.End > 50 {
			t.Errorf("job completed on dead site after failure: %+v", r)
		}
	}
}
