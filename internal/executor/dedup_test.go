package executor

import (
	"errors"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/schema"
)

// dedupWorld builds a catalog holding the chain a -> b -> c (two
// derivations of tr1) with the first derivation already executed, and
// returns the catalog plus the two stored derivations.
func dedupWorld(t *testing.T) (*catalog.Catalog, schema.Derivation, schema.Derivation) {
	t.Helper()
	c := catalog.New(nil)
	if err := c.AddTransformation(tr1()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDataset(schema.Dataset{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	d1, err := c.AddDerivation(dv1("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.AddDerivation(dv1("b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddInvocation(schema.Invocation{
		ID: "iv-prior", Derivation: d1.ID, Site: "s", Host: "h1",
		Start: time.Unix(0, 0).UTC(), End: time.Unix(30, 0).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	return c, d1, d2
}

// TestDedupSkipsExecutedDerivation: with DedupExecuted on, a node whose
// derivation already has a recorded invocation completes from the
// published epoch — no dispatch, no new invocation — while its
// never-run successor is unlocked and executes normally.
func TestDedupSkipsExecutedDerivation(t *testing.T) {
	c, d1, d2 := dedupWorld(t)
	g, err := dag.Build([]schema.Derivation{d1, d2}, c.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	_, drv := simSetup(t, 2)
	events := map[string][]string{} // node -> event kinds, in order
	ex := &Executor{
		Driver: drv, Assign: fixedAssign(10), Catalog: c, DedupExecuted: true,
		OnEvent: func(ev Event) { events[ev.Node] = append(events[ev.Node], ev.Kind) },
	}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || rep.Completed != 2 {
		t.Fatalf("report: %+v", rep)
	}
	// Only d2 paid for execution: makespan is one 10-unit task.
	if rep.Makespan != 10 {
		t.Errorf("makespan %g, want 10", rep.Makespan)
	}
	if got := events[d1.ID]; len(got) != 1 || got[0] != "dedup" {
		t.Fatalf("d1 events %v, want [dedup]", got)
	}
	for _, k := range events[d2.ID] {
		if k == "dedup" {
			t.Fatal("never-run d2 must not dedup")
		}
	}
	v := c.View()
	defer v.Close()
	if n := v.InvocationCount(d1.ID); n != 1 {
		t.Errorf("d1 has %d invocations, want the 1 prior one", n)
	}
	if n := v.InvocationCount(d2.ID); n != 1 {
		t.Errorf("d2 has %d invocations, want 1 recorded by the run", n)
	}
}

// TestDedupOffReexecutes: the flag is opt-in — without it the same
// graph re-runs the executed derivation and records a second
// invocation.
func TestDedupOffReexecutes(t *testing.T) {
	c, d1, d2 := dedupWorld(t)
	g, err := dag.Build([]schema.Derivation{d1, d2}, c.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	_, drv := simSetup(t, 2)
	deduped := 0
	ex := &Executor{
		Driver: drv, Assign: fixedAssign(10), Catalog: c,
		OnEvent: func(ev Event) {
			if ev.Kind == "dedup" {
				deduped++
			}
		},
	}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || rep.Completed != 2 || deduped != 0 {
		t.Fatalf("report %+v, deduped %d", rep, deduped)
	}
	if rep.Makespan != 20 {
		t.Errorf("makespan %g, want 20 (both nodes executed)", rep.Makespan)
	}
	v := c.View()
	defer v.Close()
	if n := v.InvocationCount(d1.ID); n != 2 {
		t.Errorf("d1 has %d invocations, want 2 (prior + re-run)", n)
	}
}

// TestDedupWholeGraph: when every derivation has already run, the run
// completes instantly — dedup'd roots synchronously unlock dedup'd
// successors — and an Assign that would reject any placement proves no
// node was placed.
func TestDedupWholeGraph(t *testing.T) {
	c, d1, d2 := dedupWorld(t)
	if err := c.AddInvocation(schema.Invocation{
		ID: "iv-prior2", Derivation: d2.ID, Site: "s", Host: "h1",
		Start: time.Unix(40, 0).UTC(), End: time.Unix(70, 0).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build([]schema.Derivation{d1, d2}, c.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	_, drv := simSetup(t, 1)
	ex := &Executor{
		Driver: drv, Catalog: c, DedupExecuted: true,
		Assign: func(n *dag.Node) (Placement, error) {
			return Placement{}, errors.New("no node may be placed")
		},
	}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || rep.Completed != 2 || rep.Makespan != 0 {
		t.Fatalf("report: %+v", rep)
	}
}
