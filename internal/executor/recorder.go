package executor

import (
	"sync"

	"chimera/internal/obs"
)

var gaugeRecordQueue = obs.Default.Gauge("vdc_executor_record_queue",
	"Completions whose catalog durability waits are still queued in the recording pipeline.")

// recorder is the executor's ordered off-lock recording pipeline.
//
// A completion applies its invocation and replica records to the
// catalog synchronously (in-memory, under the catalog lock) while it
// still holds the scheduler lock, so successors dispatched next always
// observe their inputs' replicas. What moves off-lock is the expensive
// part: blocking until the records' WAL batch is durable. Completions
// hand their durability waits to the recorder in completion order and
// return immediately; with many waits outstanding at once, the
// catalog's group committer batches them into shared fsyncs instead of
// being fed one record per scheduler-lock hold.
//
// Ordering guarantee: waits resolve in completion order (one FIFO, one
// consumer), so the first durability failure surfaced via firstErr is
// the earliest completion whose records may not survive a restart, and
// a later completion is never reported durable while an earlier one is
// still pending.
type recorder struct {
	e *Executor

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]func() error
	closed bool
	done   chan struct{}
}

func newRecorder(e *Executor) *recorder {
	r := &recorder{e: e, done: make(chan struct{})}
	r.cond = sync.NewCond(&r.mu)
	go r.loop()
	return r
}

// enqueue hands one completion's durability waits to the pipeline.
// Callers hold e.mu, which is what serializes jobs into completion
// order.
func (r *recorder) enqueue(waits []func() error) {
	r.mu.Lock()
	r.queue = append(r.queue, waits)
	gaugeRecordQueue.Set(float64(len(r.queue)))
	r.mu.Unlock()
	r.cond.Signal()
}

func (r *recorder) loop() {
	defer close(r.done)
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.queue) == 0 {
			r.mu.Unlock()
			return
		}
		waits := r.queue[0]
		r.queue = r.queue[1:]
		gaugeRecordQueue.Set(float64(len(r.queue)))
		r.mu.Unlock()
		for _, w := range waits {
			if err := w(); err != nil {
				r.e.recordErr(err)
			}
		}
	}
}

// drain closes the pipeline and blocks until every enqueued wait has
// resolved. Run calls it after the driver quiesces: every completion
// has applied and enqueued by then, so when drain returns the
// workflow's records are durable or firstErr is set.
func (r *recorder) drain() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
	<-r.done
}
