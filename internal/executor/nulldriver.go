package executor

import (
	"chimera/internal/dag"
)

// NullDriver completes every started job instantly, in FIFO order, on
// the goroutine that calls Drain. It performs no work and keeps no
// timeline beyond an event counter, which isolates the executor's own
// dispatch/complete bookkeeping — the scheduler hot path — for
// benchmarks (E13, BenchmarkSchedulerDispatch) and for deterministic
// frontier-equivalence tests.
//
// ExitCode, when set, injects failures deterministically per (node,
// attempt); the zero value succeeds everything. NullDriver is
// single-goroutine by construction (Start is only ever called from the
// executor while a completion or the initial dispatch is on the Drain
// goroutine's stack) and is not safe for concurrent use.
type NullDriver struct {
	// ExitCode chooses the exit code for an attempt (nil = always 0).
	ExitCode func(node string, attempt int) int

	queue []nullJob
	now   float64
}

type nullJob struct {
	node    *dag.Node
	attempt int
	done    func(Result)
}

// Now returns the number of completions delivered so far.
func (d *NullDriver) Now() float64 { return d.now }

// Start implements Driver by queueing an instant completion.
func (d *NullDriver) Start(n *dag.Node, p Placement, attempt int, done func(Result)) error {
	d.queue = append(d.queue, nullJob{node: n, attempt: attempt, done: done})
	return nil
}

// Drain pops queued jobs in FIFO order and delivers their results;
// completions may queue further jobs (successor dispatches, retries),
// which drain in turn.
func (d *NullDriver) Drain() {
	for len(d.queue) > 0 {
		j := d.queue[0]
		d.queue = d.queue[1:]
		exit := 0
		if d.ExitCode != nil {
			exit = d.ExitCode(j.node.ID, j.attempt)
		}
		start := d.now
		d.now++
		j.done(Result{
			Node: j.node.ID, Attempt: j.attempt, ExitCode: exit,
			Site: "null", Host: "null",
			Start: start, End: d.now,
		})
	}
}
