package executor

import (
	"fmt"
	"strings"

	"chimera/internal/schema"
)

// Command is the POSIX-model realization of one derivation: the
// executable, its argument vector, stdio redirections, and environment
// — the paper's Chimera-0/1 execution semantics.
type Command struct {
	Exec   string
	Args   []string
	Stdin  string
	Stdout string
	Stderr string
	Env    map[string]string
}

// BuildCommand instantiates a simple transformation's argument
// templates with a derivation's actuals. Dataset references resolve to
// their logical names (drivers map those to physical paths).
func BuildCommand(tr schema.Transformation, dv schema.Derivation) (Command, error) {
	if tr.Kind != schema.Simple {
		return Command{}, fmt.Errorf("executor: cannot build command for compound %s", tr.Ref())
	}
	binding := make(map[string]schema.Actual, len(tr.Args))
	for _, f := range tr.Args {
		if a, ok := dv.Params[f.Name]; ok {
			binding[f.Name] = a
		} else if f.Default != nil {
			binding[f.Name] = *f.Default
		} else {
			return Command{}, fmt.Errorf("executor: formal %q of %s unbound", f.Name, tr.Ref())
		}
	}
	expand := func(parts []schema.TemplatePart) (string, error) {
		var b strings.Builder
		for _, p := range parts {
			if p.Ref == "" {
				b.WriteString(p.Literal)
				continue
			}
			a, ok := binding[p.Ref]
			if !ok {
				return "", fmt.Errorf("executor: template references unbound formal %q", p.Ref)
			}
			b.WriteString(actualText(a))
		}
		return b.String(), nil
	}

	cmd := Command{Exec: tr.Exec}
	if cmd.Exec == "" {
		cmd.Exec = tr.Profile["hints.pfnHint"]
	}
	for _, at := range tr.ArgTemplates {
		text, err := expand(at.Parts)
		if err != nil {
			return Command{}, err
		}
		switch at.Name {
		case "stdin":
			cmd.Stdin = text
		case "stdout":
			cmd.Stdout = text
		case "stderr":
			cmd.Stderr = text
		default:
			cmd.Args = append(cmd.Args, text)
		}
	}
	if len(tr.Env) > 0 || len(dv.Env) > 0 {
		cmd.Env = make(map[string]string, len(tr.Env)+len(dv.Env))
		for name, parts := range tr.Env {
			text, err := expand(parts)
			if err != nil {
				return Command{}, err
			}
			cmd.Env[name] = text
		}
		// Derivation-level env overrides transformation templates.
		for k, v := range dv.Env {
			cmd.Env[k] = v
		}
	}
	return cmd, nil
}

// actualText renders an actual for command-line substitution.
func actualText(a schema.Actual) string {
	switch a.Kind {
	case schema.AString, schema.ADataset:
		return a.Value
	case schema.AList:
		parts := make([]string, len(a.List))
		for i, e := range a.List {
			parts[i] = actualText(e)
		}
		return strings.Join(parts, " ")
	default:
		return ""
	}
}
