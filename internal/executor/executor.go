// Package executor implements the derivation facet (§5.4): a
// DAGman-style workflow execution manager that dispatches the nodes of
// a workflow graph as their predecessor dependencies complete, retries
// failures, records invocation objects (and output replicas) in the
// virtual data catalog, and reports completion statistics.
//
// Execution is abstracted behind a Driver: SimDriver runs placements on
// the simulated grid in virtual time; LocalDriver runs registered Go
// functions on the local machine in real time. The executor itself is
// identical over both.
package executor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/obs"
	"chimera/internal/schema"
)

// Executor metrics: lifecycle event counters and an in-flight gauge.
// Series are resolved at init; the dispatch/complete paths (which run
// under e.mu on the scheduling hot path) pay only atomic adds.
var (
	metricEvents = obs.Default.CounterVec("vdc_executor_events_total",
		"Executor lifecycle events by kind.", "kind")
	evDispatch   = metricEvents.With("dispatch")
	evRedispatch = metricEvents.With("redispatch")
	evDone       = metricEvents.With("done")
	evRetry      = metricEvents.With("retry")
	evFail       = metricEvents.With("fail")

	gaugeInflight = obs.Default.Gauge("vdc_executor_inflight",
		"Nodes dispatched but not yet terminally done or failed.")
)

// StageIn describes one input transfer a placement requires.
type StageIn struct {
	// Dataset being staged.
	Dataset string
	// FromSite holding the chosen replica.
	FromSite string
	// Bytes to move.
	Bytes int64
}

// Placement is the planner's decision for one node: where it runs, how
// much work it is, and what data must move first.
type Placement struct {
	// Site and Host name the execution location.
	Site string
	Host string
	// Work is the job cost in reference-CPU seconds.
	Work float64
	// NoiseAmp adds runtime jitter in simulation (0 = deterministic).
	NoiseAmp float64
	// Transfers stage inputs to Site before the job starts.
	Transfers []StageIn
	// OutputBytes predicts the size of each produced dataset, used for
	// replica registration and accounting.
	OutputBytes map[string]int64
}

// Result reports one attempt at one node.
type Result struct {
	Node     string
	Attempt  int
	ExitCode int
	Site     string
	Host     string
	// Start and End are in driver time (seconds).
	Start, End float64
	BytesIn    int64
	BytesOut   int64
}

// Driver runs placed jobs and delivers completions.
type Driver interface {
	// Start launches a node; done is called exactly once with the
	// attempt's result. Start must not block on job completion.
	Start(n *dag.Node, p Placement, attempt int, done func(Result)) error
	// Drain runs until every started job has delivered its result.
	Drain()
	// Now returns the driver's current time in seconds.
	Now() float64
}

// Event describes executor progress for observers.
type Event struct {
	// Kind is "dispatch" (first attempt), "redispatch" (a retry
	// attempt entering the driver), "done", "retry" (decision to retry
	// after a failure), or "fail".
	Kind string
	Node string
	// Attempt is the zero-based attempt number the event refers to;
	// for "retry" it is the attempt that just failed.
	Attempt int
	Result  Result
}

// Executor drives a workflow graph to completion.
type Executor struct {
	// Driver executes placed nodes. Required.
	Driver Driver
	// Assign chooses a placement when a node becomes ready. Required.
	// It is called in dispatch order and may observe current load.
	Assign func(*dag.Node) (Placement, error)
	// MaxRetries bounds re-execution after failures (0 = no retries).
	MaxRetries int
	// Catalog, when set, receives invocation records for every attempt
	// and replica records for the outputs of successful nodes.
	Catalog *catalog.Catalog
	// Epoch maps driver seconds to wall-clock timestamps in invocation
	// records; zero means Unix epoch.
	Epoch time.Time
	// OnEvent observes progress (optional).
	OnEvent func(Event)
	// Trace, when set, records one span per attempt (plus a workflow
	// root span) on the driver's timeline for Chrome-trace export.
	Trace *obs.Tracer

	traceRoot  int64
	mu         sync.Mutex
	done       map[string]bool
	attempts   map[string]int
	failed     map[string]bool
	dispatched map[string]bool
	results    []Result
	firstErr   error
	graph      *dag.Graph
	invSeq     int
}

// Report summarizes a workflow run.
type Report struct {
	// Completed, Failed and Blocked count terminal node states; a node
	// is blocked when an ancestor failed permanently.
	Completed, Failed, Blocked int
	// Makespan is the driver time at completion.
	Makespan float64
	// Retries counts re-executions.
	Retries int
	// BytesStagedIn totals input transfer volume.
	BytesStagedIn int64
	// Results holds every attempt in completion order.
	Results []Result
}

// Succeeded reports whether every node completed.
func (r Report) Succeeded() bool { return r.Failed == 0 && r.Blocked == 0 }

// Run executes the graph to quiescence and returns the report. Run is
// not safe for concurrent invocation on one Executor.
func (e *Executor) Run(g *dag.Graph) (Report, error) {
	if e.Driver == nil || e.Assign == nil {
		return Report{}, errors.New("executor: Driver and Assign are required")
	}
	if e.Trace != nil {
		e.traceRoot = e.Trace.NextID()
	}
	e.mu.Lock()
	e.graph = g
	e.done = make(map[string]bool, g.Len())
	e.attempts = make(map[string]int)
	e.failed = make(map[string]bool)
	e.dispatched = make(map[string]bool)
	e.results = nil
	e.firstErr = nil
	e.mu.Unlock()

	e.mu.Lock()
	e.dispatchReadyLocked()
	e.mu.Unlock()
	e.Driver.Drain()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.firstErr != nil {
		return Report{}, e.firstErr
	}
	rep := Report{Makespan: e.Driver.Now(), Results: e.results}
	for _, n := range g.Nodes() {
		switch {
		case e.done[n.ID]:
			rep.Completed++
		case e.failed[n.ID]:
			rep.Failed++
		default:
			rep.Blocked++
		}
	}
	for _, r := range e.results {
		rep.BytesStagedIn += r.BytesIn
		if r.Attempt > 0 {
			rep.Retries++
		}
	}
	if e.Trace != nil {
		e.Trace.Record(obs.SpanRecord{
			ID: e.traceRoot, Name: "workflow",
			Start: 0, End: driverDur(rep.Makespan),
			Attrs: map[string]string{
				"nodes":   fmt.Sprint(g.Len()),
				"retries": fmt.Sprint(rep.Retries),
			},
		})
	}
	return rep, nil
}

// driverDur converts driver seconds to a span offset.
func driverDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// dispatchReadyLocked starts every ready, not-yet-dispatched node.
// Callers hold e.mu.
func (e *Executor) dispatchReadyLocked() {
	if e.firstErr != nil {
		return
	}
	for _, n := range e.graph.Ready(e.done) {
		if e.dispatched[n.ID] || e.failed[n.ID] {
			continue
		}
		e.startLocked(n, 0)
	}
}

// startLocked dispatches one attempt. Callers hold e.mu.
func (e *Executor) startLocked(n *dag.Node, attempt int) {
	p, err := e.Assign(n)
	if err != nil {
		e.firstErr = fmt.Errorf("executor: assign %s: %w", n.ID, err)
		return
	}
	e.dispatched[n.ID] = true
	if attempt == 0 {
		evDispatch.Inc()
		gaugeInflight.Inc()
		e.emit(Event{Kind: "dispatch", Node: n.ID, Attempt: attempt})
	} else {
		evRedispatch.Inc()
		e.emit(Event{Kind: "redispatch", Node: n.ID, Attempt: attempt})
	}
	err = e.Driver.Start(n, p, attempt, func(res Result) {
		e.complete(n, p, res)
	})
	if err != nil {
		e.firstErr = fmt.Errorf("executor: start %s: %w", n.ID, err)
	}
}

// complete handles one attempt result; it may run on any goroutine.
func (e *Executor) complete(n *dag.Node, p Placement, res Result) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.results = append(e.results, res)
	e.record(n, p, res)
	e.traceAttempt(n, res)
	if res.ExitCode == 0 {
		e.done[n.ID] = true
		evDone.Inc()
		gaugeInflight.Dec()
		e.emit(Event{Kind: "done", Node: n.ID, Attempt: res.Attempt, Result: res})
		e.dispatchReadyLocked()
		return
	}
	if res.Attempt < e.MaxRetries {
		evRetry.Inc()
		e.emit(Event{Kind: "retry", Node: n.ID, Attempt: res.Attempt, Result: res})
		e.startLocked(n, res.Attempt+1)
		return
	}
	e.failed[n.ID] = true
	evFail.Inc()
	gaugeInflight.Dec()
	e.emit(Event{Kind: "fail", Node: n.ID, Attempt: res.Attempt, Result: res})
}

// traceAttempt records one attempt span on the driver timeline,
// parented under the workflow root. Callers hold e.mu.
func (e *Executor) traceAttempt(n *dag.Node, res Result) {
	if e.Trace == nil {
		return
	}
	attrs := map[string]string{
		"site":    res.Site,
		"host":    res.Host,
		"attempt": fmt.Sprint(res.Attempt),
		"exit":    fmt.Sprint(res.ExitCode),
		"tr":      n.Derivation.TR,
	}
	e.Trace.Record(obs.SpanRecord{
		ID: e.Trace.NextID(), Parent: e.traceRoot, Name: n.ID,
		Start: driverDur(res.Start), End: driverDur(res.End),
		Attrs: attrs,
	})
}

// record persists the attempt as an invocation (and, on success, the
// output replicas) if a catalog is attached. Callers hold e.mu.
func (e *Executor) record(n *dag.Node, p Placement, res Result) {
	if e.Catalog == nil {
		return
	}
	epoch := e.Epoch
	if epoch.IsZero() {
		epoch = time.Unix(0, 0).UTC()
	}
	e.invSeq++
	iv := schema.Invocation{
		// Sequence by prior recorded executions so re-running a
		// derivation (retries, epoch recomputes) never collides.
		ID:         fmt.Sprintf("iv-%s-%d", n.ID, e.Catalog.InvocationCount(n.ID)),
		Derivation: n.ID,
		Site:       res.Site,
		Host:       res.Host,
		Start:      epoch.Add(time.Duration(res.Start * float64(time.Second))),
		End:        epoch.Add(time.Duration(res.End * float64(time.Second))),
		ExitCode:   res.ExitCode,
		BytesIn:    res.BytesIn,
		BytesOut:   res.BytesOut,
	}
	if err := e.Catalog.AddInvocation(iv); err != nil && e.firstErr == nil {
		e.firstErr = err
		return
	}
	if res.ExitCode != 0 {
		return
	}
	for _, out := range n.Outputs {
		epoch := 0
		if rec, err := e.Catalog.Dataset(out); err == nil {
			epoch = rec.Epoch
		}
		rep := schema.Replica{
			ID:         fmt.Sprintf("rep-%s-%s-e%d-%d", out, res.Site, epoch, e.invSeq),
			Dataset:    out,
			Site:       res.Site,
			PFN:        fmt.Sprintf("/store/%s/%s", res.Site, out),
			Size:       p.OutputBytes[out],
			Epoch:      epoch,
			ProducedBy: iv.ID,
		}
		if err := e.Catalog.AddReplica(rep); err != nil && !errors.Is(err, catalog.ErrExists) {
			if e.firstErr == nil {
				e.firstErr = err
			}
			return
		}
	}
}

func (e *Executor) emit(ev Event) {
	if e.OnEvent != nil {
		e.OnEvent(ev)
	}
}
