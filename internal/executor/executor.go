// Package executor implements the derivation facet (§5.4): a
// DAGman-style workflow execution manager that dispatches the nodes of
// a workflow graph as their predecessor dependencies complete, retries
// failures, records invocation objects (and output replicas) in the
// virtual data catalog, and reports completion statistics.
//
// Execution is abstracted behind a Driver: SimDriver runs placements on
// the simulated grid in virtual time; LocalDriver runs registered Go
// functions on the local machine in real time; NullDriver completes
// jobs instantly for scheduler benchmarks. The executor itself is
// identical over all of them.
//
// Scheduling is incremental: the executor maintains per-node indegree
// counters seeded from each node's predecessors, so a completion
// touches only its successors instead of rescanning the whole graph
// (dag.Ready remains the oracle the frontier is tested against).
//
// Catalog recording is pipelined: a completion applies its invocation
// and replica records to the catalog before its successors dispatch,
// but the wait for WAL durability is handed to an ordered recording
// pipeline and resolved off the scheduler lock. The pipeline preserves
// completion order — durability errors surface (via the run's first
// error) in the order the attempts finished, and a later completion's
// records are never confirmed durable before an earlier one's — while
// keeping many waits in flight so the catalog's group committer can
// batch concurrent completions into shared fsyncs.
package executor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/obs"
	"chimera/internal/schema"
)

// Executor metrics: lifecycle event counters and an in-flight gauge.
// Series are resolved at init; the dispatch/complete paths (which run
// under e.mu on the scheduling hot path) pay only atomic adds.
var (
	metricEvents = obs.Default.CounterVec("vdc_executor_events_total",
		"Executor lifecycle events by kind.", "kind")
	evDispatch   = metricEvents.With("dispatch")
	evRedispatch = metricEvents.With("redispatch")
	evDone       = metricEvents.With("done")
	evRetry      = metricEvents.With("retry")
	evFail       = metricEvents.With("fail")
	evDedup      = metricEvents.With("dedup")

	gaugeInflight = obs.Default.Gauge("vdc_executor_inflight",
		"Nodes dispatched but not yet terminally done or failed.")

	// metricDedupHits counts nodes satisfied from the catalog's published
	// epoch instead of dispatched: the derivation already had a recorded
	// invocation — the paper's "has this computation already been
	// performed?" answered before the executor pays for a placement.
	metricDedupHits = obs.Default.Counter("vdc_executor_dedup_hits_total",
		"Nodes skipped because the catalog already records an invocation of the derivation (DedupExecuted).")
)

// StageIn describes one input transfer a placement requires.
type StageIn struct {
	// Dataset being staged.
	Dataset string
	// FromSite holding the chosen replica.
	FromSite string
	// Bytes to move.
	Bytes int64
}

// Placement is the planner's decision for one node: where it runs, how
// much work it is, and what data must move first.
type Placement struct {
	// Site and Host name the execution location.
	Site string
	Host string
	// Work is the job cost in reference-CPU seconds.
	Work float64
	// NoiseAmp adds runtime jitter in simulation (0 = deterministic).
	NoiseAmp float64
	// Transfers stage inputs to Site before the job starts.
	Transfers []StageIn
	// OutputBytes predicts the size of each produced dataset, used for
	// replica registration and accounting.
	OutputBytes map[string]int64
}

// Result reports one attempt at one node.
type Result struct {
	Node     string
	Attempt  int
	ExitCode int
	Site     string
	Host     string
	// Start and End are in driver time (seconds).
	Start, End float64
	BytesIn    int64
	BytesOut   int64
}

// Driver runs placed jobs and delivers completions.
type Driver interface {
	// Start launches a node; done is called exactly once with the
	// attempt's result. Start must not block on job completion.
	Start(n *dag.Node, p Placement, attempt int, done func(Result)) error
	// Drain runs until every started job has delivered its result.
	Drain()
	// Now returns the driver's current time in seconds.
	Now() float64
}

// Event describes executor progress for observers.
type Event struct {
	// Kind is "dispatch" (first attempt), "redispatch" (a retry
	// attempt entering the driver), "done", "retry" (decision to retry
	// after a failure), "fail", or "dedup" (node satisfied from the
	// catalog's published epoch without dispatching).
	Kind string
	Node string
	// Attempt is the zero-based attempt number the event refers to;
	// for "retry" it is the attempt that just failed.
	Attempt int
	Result  Result
}

// Executor drives a workflow graph to completion.
type Executor struct {
	// Driver executes placed nodes. Required.
	Driver Driver
	// Assign chooses a placement when a node becomes ready. Required.
	// It is called in dispatch order and may observe current load.
	Assign func(*dag.Node) (Placement, error)
	// MaxRetries bounds re-execution after failures (0 = no retries).
	MaxRetries int
	// Catalog, when set, receives invocation records for every attempt
	// and replica records for the outputs of successful nodes.
	Catalog *catalog.Catalog
	// Epoch maps driver seconds to wall-clock timestamps in invocation
	// records; zero means Unix epoch.
	Epoch time.Time
	// OnEvent observes progress (optional).
	OnEvent func(Event)
	// Trace, when set, records one span per attempt (plus a workflow
	// root span) on the driver's timeline for Chrome-trace export.
	Trace *obs.Tracer
	// RescanDispatch reverts to the legacy dispatch strategy: a full
	// dag.Ready rescan of the graph after every completion, O(V+E) per
	// event. It exists as the frontier oracle — equivalence tests prove
	// the incremental scheduler dispatches identically, and E13
	// measures the gap — and costs nothing when off.
	RescanDispatch bool
	// SyncRecording reverts to recording catalog writes fully
	// synchronously under the scheduler lock, durability wait included
	// (the legacy path, also the serial oracle for the concurrency
	// tests). The default hands durability waits to the off-lock
	// recording pipeline so concurrent completions group-commit.
	SyncRecording bool
	// DedupExecuted, with Catalog set, answers "has this derivation
	// already run?" from the catalog's published epoch before paying for
	// a placement: a node whose derivation already has a recorded
	// invocation completes instantly (no Assign, no driver dispatch, no
	// new invocation record) and unlocks its successors. The check is
	// lock-free and bounded-stale — a miss can only cost a redundant
	// re-execution, exactly what an executor without the flag always
	// does, never a false skip of never-run work. Off by default: runs
	// that *want* re-execution (fresh epochs, benchmarking) keep the old
	// behaviour.
	DedupExecuted bool

	traceRoot int64
	// runCtx is the context RunContext was called with, held for the
	// duration of the run so the record path can attach wall-clock spans
	// to the caller's trace (distinct from the driver-time Trace above).
	runCtx     context.Context
	mu         sync.Mutex
	done       map[string]bool
	attempts   map[string]int
	failed     map[string]bool
	dispatched map[string]bool
	// indeg counts each node's not-yet-done predecessors; a completion
	// decrements its successors and dispatches those that reach zero.
	indeg    map[string]int
	rec      *recorder
	results  []Result
	firstErr error
	graph    *dag.Graph
}

// Report summarizes a workflow run.
type Report struct {
	// Completed, Failed and Blocked count terminal node states; a node
	// is blocked when an ancestor failed permanently.
	Completed, Failed, Blocked int
	// Makespan is the driver time at completion.
	Makespan float64
	// Retries counts re-executions.
	Retries int
	// BytesStagedIn totals input transfer volume.
	BytesStagedIn int64
	// Results holds every attempt in completion order.
	Results []Result
}

// Succeeded reports whether every node completed.
func (r Report) Succeeded() bool { return r.Failed == 0 && r.Blocked == 0 }

// Run executes the graph to quiescence and returns the report. Run is
// not safe for concurrent invocation on one Executor.
func (e *Executor) Run(g *dag.Graph) (Report, error) {
	return e.RunContext(context.Background(), g)
}

// RunContext is Run under a caller context: when the context carries a
// tracer, the run records a wall-clock "executor.run" span (and one
// "executor.record" span per completion's catalog apply) into the
// caller's trace. This is orthogonal to the driver-time Trace field,
// which records attempt spans on the driver's virtual timeline.
func (e *Executor) RunContext(ctx context.Context, g *dag.Graph) (rep Report, err error) {
	if e.Driver == nil || e.Assign == nil {
		return Report{}, errors.New("executor: Driver and Assign are required")
	}
	ctx, span := obs.StartSpan(ctx, "executor.run")
	span.SetAttr("nodes", fmt.Sprint(g.Len()))
	defer func() {
		span.SetAttr("retries", fmt.Sprint(rep.Retries))
		span.SetError(err)
		span.End()
	}()
	e.runCtx = ctx
	if e.Trace != nil {
		e.traceRoot = e.Trace.NextID()
	}
	e.mu.Lock()
	e.graph = g
	e.done = make(map[string]bool, g.Len())
	e.attempts = make(map[string]int)
	e.failed = make(map[string]bool)
	e.dispatched = make(map[string]bool)
	e.indeg = make(map[string]int, g.Len())
	e.results = nil
	e.firstErr = nil
	e.rec = nil
	if e.Catalog != nil && !e.SyncRecording {
		e.rec = newRecorder(e)
	}
	e.mu.Unlock()

	e.mu.Lock()
	e.dispatchInitialLocked()
	e.mu.Unlock()
	e.Driver.Drain()
	if e.rec != nil {
		// Every completion has applied its records and enqueued its
		// durability waits by now; block until they resolve so the
		// report never claims success for records that are not durable.
		e.rec.drain()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.firstErr != nil {
		return Report{}, e.firstErr
	}
	rep = Report{Makespan: e.Driver.Now(), Results: e.results}
	for _, n := range g.Nodes() {
		switch {
		case e.done[n.ID]:
			rep.Completed++
		case e.failed[n.ID]:
			rep.Failed++
		default:
			rep.Blocked++
		}
	}
	for _, r := range e.results {
		rep.BytesStagedIn += r.BytesIn
		if r.Attempt > 0 {
			rep.Retries++
		}
	}
	if e.Trace != nil {
		e.Trace.Record(obs.SpanRecord{
			ID: e.traceRoot, Name: "workflow",
			Start: 0, End: driverDur(rep.Makespan),
			Attrs: map[string]string{
				"nodes":   fmt.Sprint(g.Len()),
				"retries": fmt.Sprint(rep.Retries),
			},
		})
	}
	return rep, nil
}

// driverDur converts driver seconds to a span offset.
func driverDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// dispatchInitialLocked seeds the scheduler and starts the initial
// frontier. Callers hold e.mu.
func (e *Executor) dispatchInitialLocked() {
	if e.RescanDispatch {
		e.dispatchReadyLocked()
		return
	}
	nodes := e.graph.Nodes()
	for _, n := range nodes {
		e.indeg[n.ID] = n.NumPreds()
	}
	for _, n := range nodes {
		if e.firstErr != nil {
			return
		}
		// The dispatched guard matters once dedup exists: a dedup'd root
		// synchronously unlocks successors, which can dispatch a node this
		// loop has not reached yet.
		if e.indeg[n.ID] == 0 && !e.dispatched[n.ID] {
			e.startLocked(n, 0)
		}
	}
}

// unlockSuccsLocked advances the ready frontier after node n completed:
// each successor's indegree drops by one, and those reaching zero
// dispatch — O(successors) per completion. Callers hold e.mu and have
// already marked n done.
func (e *Executor) unlockSuccsLocked(n *dag.Node) {
	if e.RescanDispatch {
		e.dispatchReadyLocked()
		return
	}
	for _, s := range n.Succs() {
		e.indeg[s.ID]--
		if e.indeg[s.ID] > 0 || e.dispatched[s.ID] || e.failed[s.ID] {
			continue
		}
		if e.firstErr != nil {
			return
		}
		e.startLocked(s, 0)
	}
}

// dispatchReadyLocked starts every ready, not-yet-dispatched node by
// rescanning the whole graph — the legacy strategy kept as the
// frontier oracle (RescanDispatch). Callers hold e.mu.
func (e *Executor) dispatchReadyLocked() {
	if e.firstErr != nil {
		return
	}
	for _, n := range e.graph.Ready(e.done) {
		if e.dispatched[n.ID] || e.failed[n.ID] {
			continue
		}
		if e.firstErr != nil {
			return
		}
		e.startLocked(n, 0)
	}
}

// startLocked dispatches one attempt. Callers hold e.mu.
func (e *Executor) startLocked(n *dag.Node, attempt int) {
	if attempt == 0 && e.DedupExecuted && e.Catalog != nil && e.Catalog.ExecutedPublished(n.ID) {
		// Duplicate-derivation fast path: the published epoch already
		// records an invocation of this derivation, so the computation has
		// been performed — complete the node without a placement.
		e.dispatched[n.ID] = true
		e.done[n.ID] = true
		evDedup.Inc()
		metricDedupHits.Inc()
		e.emit(Event{Kind: "dedup", Node: n.ID, Attempt: 0})
		e.unlockSuccsLocked(n)
		return
	}
	p, err := e.Assign(n)
	if err != nil {
		e.firstErr = fmt.Errorf("executor: assign %s: %w", n.ID, err)
		return
	}
	e.dispatched[n.ID] = true
	if attempt == 0 {
		evDispatch.Inc()
		gaugeInflight.Inc()
		e.emit(Event{Kind: "dispatch", Node: n.ID, Attempt: attempt})
	} else {
		evRedispatch.Inc()
		e.emit(Event{Kind: "redispatch", Node: n.ID, Attempt: attempt})
	}
	err = e.Driver.Start(n, p, attempt, func(res Result) {
		e.complete(n, p, res)
	})
	if err != nil {
		e.firstErr = fmt.Errorf("executor: start %s: %w", n.ID, err)
	}
}

// complete handles one attempt result; it may run on any goroutine.
func (e *Executor) complete(n *dag.Node, p Placement, res Result) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.results = append(e.results, res)
	waits := e.record(n, p, res)
	if len(waits) > 0 {
		if e.rec != nil {
			e.rec.enqueue(waits)
		} else {
			// Legacy synchronous recording: block for durability here,
			// under the scheduler lock.
			for _, w := range waits {
				if err := w(); err != nil && e.firstErr == nil {
					e.firstErr = err
				}
			}
		}
	}
	e.traceAttempt(n, res)
	if res.ExitCode == 0 {
		e.done[n.ID] = true
		evDone.Inc()
		gaugeInflight.Dec()
		e.emit(Event{Kind: "done", Node: n.ID, Attempt: res.Attempt, Result: res})
		e.unlockSuccsLocked(n)
		return
	}
	if res.Attempt < e.MaxRetries {
		evRetry.Inc()
		e.emit(Event{Kind: "retry", Node: n.ID, Attempt: res.Attempt, Result: res})
		e.startLocked(n, res.Attempt+1)
		return
	}
	e.failed[n.ID] = true
	evFail.Inc()
	gaugeInflight.Dec()
	e.emit(Event{Kind: "fail", Node: n.ID, Attempt: res.Attempt, Result: res})
}

// recordErr surfaces an asynchronous recording failure through the
// run's first-error path.
func (e *Executor) recordErr(err error) {
	e.mu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.mu.Unlock()
}

// traceAttempt records one attempt span on the driver timeline,
// parented under the workflow root. Callers hold e.mu.
func (e *Executor) traceAttempt(n *dag.Node, res Result) {
	if e.Trace == nil {
		return
	}
	attrs := map[string]string{
		"site":    res.Site,
		"host":    res.Host,
		"attempt": fmt.Sprint(res.Attempt),
		"exit":    fmt.Sprint(res.ExitCode),
		"tr":      n.Derivation.TR,
	}
	e.Trace.Record(obs.SpanRecord{
		ID: e.Trace.NextID(), Parent: e.traceRoot, Name: n.ID,
		Start: driverDur(res.Start), End: driverDur(res.End),
		Attrs: attrs,
	})
}

// record applies the attempt's invocation (and, on success, the output
// replicas) to the catalog if one is attached, and returns the
// durability waits for the enqueued WAL records. The apply happens
// here, synchronously, so successors dispatched after this completion
// always observe its replicas; whether the waits resolve inline or on
// the recording pipeline is the caller's choice. Callers hold e.mu.
func (e *Executor) record(n *dag.Node, p Placement, res Result) []func() error {
	if e.Catalog == nil {
		return nil
	}
	rctx := e.runCtx
	if rctx == nil {
		rctx = context.Background()
	}
	_, rspan := obs.StartSpan(rctx, "executor.record")
	rspan.SetAttr("node", n.ID)
	defer rspan.End()
	epoch := e.Epoch
	if epoch.IsZero() {
		epoch = time.Unix(0, 0).UTC()
	}
	// Sequence by prior recorded executions so re-running a derivation
	// (retries, epoch recomputes) never collides.
	seq := e.Catalog.InvocationCount(n.ID)
	iv := schema.Invocation{
		ID:         fmt.Sprintf("iv-%s-%d", n.ID, seq),
		Derivation: n.ID,
		Site:       res.Site,
		Host:       res.Host,
		Start:      epoch.Add(time.Duration(res.Start * float64(time.Second))),
		End:        epoch.Add(time.Duration(res.End * float64(time.Second))),
		ExitCode:   res.ExitCode,
		BytesIn:    res.BytesIn,
		BytesOut:   res.BytesOut,
	}
	var waits []func() error
	w, err := e.Catalog.AddInvocationAsync(iv)
	if err != nil {
		if e.firstErr == nil {
			e.firstErr = err
		}
		return waits
	}
	if w != nil {
		waits = append(waits, w)
	}
	if res.ExitCode != 0 {
		return waits
	}
	for _, out := range n.Outputs {
		epoch := 0
		if rec, err := e.Catalog.Dataset(out); err == nil {
			epoch = rec.Epoch
		}
		rep := schema.Replica{
			// Keyed by (dataset, site, epoch): re-deriving the same
			// data where a replica already exists is the recompute
			// case, tolerated as ErrExists below.
			ID:         fmt.Sprintf("rep-%s-%s-e%d", out, res.Site, epoch),
			Dataset:    out,
			Site:       res.Site,
			PFN:        fmt.Sprintf("/store/%s/%s", res.Site, out),
			Size:       p.OutputBytes[out],
			Epoch:      epoch,
			ProducedBy: iv.ID,
		}
		w, err := e.Catalog.AddReplicaAsync(rep)
		if err != nil {
			if errors.Is(err, catalog.ErrExists) {
				continue
			}
			if e.firstErr == nil {
				e.firstErr = err
			}
			return waits
		}
		if w != nil {
			waits = append(waits, w)
		}
	}
	return waits
}

func (e *Executor) emit(ev Event) {
	if e.OnEvent != nil {
		e.OnEvent(ev)
	}
}
