package executor

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/grid"
	"chimera/internal/obs"
	"chimera/internal/schema"
)

func tr1() schema.Transformation {
	return schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
}

func tr2() schema.Transformation {
	return schema.Transformation{Name: "m", Kind: schema.Simple, Exec: "/bin/m",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i1", Direction: schema.In},
			{Name: "i2", Direction: schema.In},
		}}
}

func dv1(in, out string) schema.Derivation {
	return schema.Derivation{TR: "t", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", out),
		"i": schema.DatasetActual("input", in),
	}}
}

func dv2(i1, i2, out string) schema.Derivation {
	return schema.Derivation{TR: "m", Params: map[string]schema.Actual{
		"o":  schema.DatasetActual("output", out),
		"i1": schema.DatasetActual("input", i1),
		"i2": schema.DatasetActual("input", i2),
	}}
}

func diamondGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g, err := dag.Build(
		[]schema.Derivation{dv1("a", "b"), dv1("a", "c"), dv2("b", "c", "d")},
		schema.MapResolver(tr1(), tr2()))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func simSetup(t *testing.T, hosts int) (*grid.Cluster, *SimDriver) {
	t.Helper()
	g := grid.NewGrid()
	if _, err := g.AddSite("s", 1e15); err != nil {
		t.Fatal(err)
	}
	if err := g.AddHosts("s", "h", hosts, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	c := grid.NewCluster(g, grid.NewSim(7))
	return c, NewSimDriver(c)
}

func fixedAssign(work float64) func(*dag.Node) (Placement, error) {
	return func(*dag.Node) (Placement, error) {
		return Placement{Site: "s", Work: work}, nil
	}
}

func TestRunDiamondOnSim(t *testing.T) {
	_, drv := simSetup(t, 2)
	ex := &Executor{Driver: drv, Assign: fixedAssign(10)}
	rep, err := ex.Run(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || rep.Completed != 3 {
		t.Fatalf("report: %+v", rep)
	}
	// b and c run in parallel (2 hosts), then d: 10 + 10 = 20.
	if rep.Makespan != 20 {
		t.Errorf("makespan: %g", rep.Makespan)
	}
	// One host: serialize b,c then d: 30.
	_, drv1 := simSetup(t, 1)
	ex1 := &Executor{Driver: drv1, Assign: fixedAssign(10)}
	rep1, err := ex1.Run(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Makespan != 30 {
		t.Errorf("single-host makespan: %g", rep1.Makespan)
	}
}

func TestDependencyOrderRespected(t *testing.T) {
	_, drv := simSetup(t, 8)
	var mu sync.Mutex
	finished := make(map[string]float64)
	ex := &Executor{Driver: drv, Assign: fixedAssign(5), OnEvent: func(ev Event) {
		if ev.Kind == "done" {
			mu.Lock()
			finished[ev.Node] = ev.Result.End
			mu.Unlock()
		}
	}}
	g := diamondGraph(t)
	if _, err := ex.Run(g); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		for _, p := range n.Preds() {
			if finished[p.ID] > finished[n.ID] {
				t.Errorf("node %s finished before predecessor %s", n.ID, p.ID)
			}
		}
	}
}

func TestInvocationAndReplicaRecording(t *testing.T) {
	cat := catalog.New(nil)
	if err := cat.AddTransformation(tr1()); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTransformation(tr2()); err != nil {
		t.Fatal(err)
	}
	var dvs []schema.Derivation
	for _, d := range []schema.Derivation{dv1("a", "b"), dv1("a", "c"), dv2("b", "c", "d")} {
		stored, err := cat.AddDerivation(d)
		if err != nil {
			t.Fatal(err)
		}
		dvs = append(dvs, stored)
	}
	g, err := dag.Build(dvs, cat.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	_, drv := simSetup(t, 2)
	ex := &Executor{Driver: drv, Catalog: cat, Assign: func(n *dag.Node) (Placement, error) {
		out := map[string]int64{}
		for _, o := range n.Outputs {
			out[o] = 500
		}
		return Placement{Site: "s", Work: 10, OutputBytes: out}, nil
	}}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report: %+v", rep)
	}
	if got := len(cat.Invocations()); got != 3 {
		t.Errorf("invocations: %d", got)
	}
	for _, ds := range []string{"b", "c", "d"} {
		if !cat.Materialized(ds) {
			t.Errorf("dataset %s not materialized", ds)
		}
		reps := cat.ReplicasOf(ds)
		if len(reps) != 1 || reps[0].Size != 500 || reps[0].Site != "s" {
			t.Errorf("replica of %s: %+v", ds, reps)
		}
	}
	// Invocation timings are consistent with sim.
	for _, iv := range cat.Invocations() {
		if !iv.Succeeded() || iv.End.Before(iv.Start) {
			t.Errorf("bad invocation: %+v", iv)
		}
	}
}

func TestRetriesAndPermanentFailure(t *testing.T) {
	// FailProb 1: everything fails, retries exhausted, descendants blocked.
	_, drv := simSetup(t, 2)
	drv.FailProb = 1.0
	ex := &Executor{Driver: drv, Assign: fixedAssign(1), MaxRetries: 2}
	rep, err := ex.Run(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded() {
		t.Fatal("all-fail run reported success")
	}
	if rep.Failed != 2 || rep.Blocked != 1 {
		t.Errorf("failed=%d blocked=%d", rep.Failed, rep.Blocked)
	}
	// 2 roots × 3 attempts each = 6 results.
	if len(rep.Results) != 6 || rep.Retries != 4 {
		t.Errorf("results=%d retries=%d", len(rep.Results), rep.Retries)
	}

	// Moderate failure rate with retries: eventually completes.
	_, drv2 := simSetup(t, 2)
	drv2.FailProb = 0.3
	ex2 := &Executor{Driver: drv2, Assign: fixedAssign(1), MaxRetries: 50}
	rep2, err := ex2.Run(diamondGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Succeeded() {
		t.Errorf("retrying run did not succeed: %+v", rep2)
	}
}

// TestRetryEventsAndTrace pins the event stream's attempt visibility
// (satellite: retry dispatches must be distinguishable from first
// runs) and the per-attempt span recording.
func TestRetryEventsAndTrace(t *testing.T) {
	_, drv := simSetup(t, 2)
	drv.FailProb = 1.0
	trace := obs.NewTracer()
	var mu sync.Mutex
	byKind := map[string]int{}
	maxAttempt := 0
	ex := &Executor{Driver: drv, Assign: fixedAssign(1), MaxRetries: 2, Trace: trace,
		OnEvent: func(ev Event) {
			mu.Lock()
			byKind[ev.Kind]++
			if ev.Kind == "redispatch" && ev.Attempt > maxAttempt {
				maxAttempt = ev.Attempt
			}
			if ev.Kind == "dispatch" && ev.Attempt != 0 {
				t.Errorf("first dispatch carries attempt %d", ev.Attempt)
			}
			mu.Unlock()
		}}
	if _, err := ex.Run(diamondGraph(t)); err != nil {
		t.Fatal(err)
	}
	// 2 roots: dispatch once each, redispatch twice each, fail each.
	if byKind["dispatch"] != 2 || byKind["redispatch"] != 4 || byKind["retry"] != 4 || byKind["fail"] != 2 {
		t.Errorf("event counts: %v", byKind)
	}
	if maxAttempt != 2 {
		t.Errorf("max redispatch attempt = %d, want 2", maxAttempt)
	}

	spans := trace.Spans()
	if len(spans) != 7 { // 6 attempts + workflow root
		t.Fatalf("spans: %d, want 7", len(spans))
	}
	var root obs.SpanRecord
	for _, s := range spans {
		if s.Name == "workflow" {
			root = s
		}
	}
	if root.ID == 0 {
		t.Fatal("no workflow root span")
	}
	for _, s := range spans {
		if s.Name == "workflow" {
			continue
		}
		if s.Parent != root.ID {
			t.Errorf("span %s not under root: parent=%d", s.Name, s.Parent)
		}
		if s.Attrs["attempt"] == "" || s.Attrs["exit"] != "1" {
			t.Errorf("span %s attrs: %v", s.Name, s.Attrs)
		}
	}
}

func TestStageInTransfers(t *testing.T) {
	g := grid.NewGrid()
	g.AddSite("s", 1e15)
	g.AddSite("remote", 1e15)
	g.AddHosts("s", "h", 1, 1.0, 1)
	g.AddHosts("remote", "r", 1, 1.0, 1)
	g.Connect("s", "remote", 100, 0, 1) // 100 B/s, 1 stream
	cl := grid.NewCluster(g, grid.NewSim(7))
	drv := NewSimDriver(cl)
	ex := &Executor{Driver: drv, Assign: func(n *dag.Node) (Placement, error) {
		return Placement{Site: "s", Work: 10, Transfers: []StageIn{
			{Dataset: "a", FromSite: "remote", Bytes: 1000},
		}}, nil
	}}
	graph, err := dag.Build([]schema.Derivation{dv1("a", "b")}, schema.MapResolver(tr1()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(graph)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer 1000B at 100B/s (1 stream) = 10s, then 10s of work.
	if rep.Makespan != 20 {
		t.Errorf("makespan with staging: %g", rep.Makespan)
	}
	if rep.BytesStagedIn != 1000 {
		t.Errorf("staged bytes: %d", rep.BytesStagedIn)
	}
	if cl.TransferredBytes != 1000 {
		t.Errorf("wan bytes: %d", cl.TransferredBytes)
	}
}

func TestAssignErrorsSurface(t *testing.T) {
	_, drv := simSetup(t, 1)
	ex := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) {
		return Placement{}, fmt.Errorf("no site available")
	}}
	if _, err := ex.Run(diamondGraph(t)); err == nil {
		t.Error("assign error swallowed")
	}
	ex2 := &Executor{Driver: drv, Assign: fixedAssign(1)}
	ex2.Driver = nil
	if _, err := ex2.Run(diamondGraph(t)); err == nil {
		t.Error("missing driver accepted")
	}
	// Unknown site from assign.
	_, drv3 := simSetup(t, 1)
	ex3 := &Executor{Driver: drv3, Assign: func(*dag.Node) (Placement, error) {
		return Placement{Site: "nowhere", Work: 1}, nil
	}}
	if _, err := ex3.Run(diamondGraph(t)); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestLocalDriverRealFiles(t *testing.T) {
	ws := t.TempDir()
	drv := NewLocalDriver(ws)
	res := schema.MapResolver(tr1(), tr2())
	drv.Resolve = res

	// t: copy input to output, uppercased. m: concatenate inputs.
	drv.Register("t", func(task Task) error {
		in := task.Node.Inputs[0]
		out := task.Node.Outputs[0]
		data, err := os.ReadFile(filepath.Join(task.Workspace, in))
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(task.Workspace, out), []byte(strings.ToUpper(string(data))), 0o644)
	})
	drv.Register("m", func(task Task) error {
		var all []byte
		for _, in := range task.Node.Inputs {
			data, err := os.ReadFile(filepath.Join(task.Workspace, in))
			if err != nil {
				return err
			}
			all = append(all, data...)
		}
		return os.WriteFile(filepath.Join(task.Workspace, task.Node.Outputs[0]), all, 0o644)
	})

	if err := os.WriteFile(filepath.Join(ws, "a"), []byte("hi "), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(
		[]schema.Derivation{dv1("a", "b"), dv1("a", "c"), dv2("b", "c", "d")},
		res)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report: %+v", rep)
	}
	data, err := os.ReadFile(filepath.Join(ws, "d"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "HI HI " {
		t.Errorf("pipeline output: %q", data)
	}
}

func TestLocalDriverFailureAndMissingImpl(t *testing.T) {
	drv := NewLocalDriver(t.TempDir())
	drv.Register("t", func(Task) error { return fmt.Errorf("boom") })
	g, _ := dag.Build([]schema.Derivation{dv1("a", "b")}, schema.MapResolver(tr1()))
	ex := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	rep, err := ex.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Errorf("failing impl: %+v", rep)
	}

	g2, _ := dag.Build([]schema.Derivation{dv2("a", "b", "c")}, schema.MapResolver(tr2()))
	ex2 := &Executor{Driver: drv, Assign: func(*dag.Node) (Placement, error) { return Placement{}, nil }}
	if _, err := ex2.Run(g2); err == nil {
		t.Error("missing implementation accepted")
	}
}

func TestBuildCommandPaperExample(t *testing.T) {
	tr := schema.Transformation{
		Name: "t1", Kind: schema.Simple, Exec: "/usr/bin/app3",
		Args: []schema.FormalArg{
			{Name: "a2", Direction: schema.Out},
			{Name: "a1", Direction: schema.In},
			{Name: "env", Direction: schema.None, Default: actualPtr(schema.StringActual("100000"))},
			{Name: "pa", Direction: schema.None, Default: actualPtr(schema.StringActual("500"))},
		},
		ArgTemplates: []schema.ArgTemplate{
			{Name: "parg", Parts: []schema.TemplatePart{{Literal: "-p "}, {Ref: "pa"}}},
			{Name: "farg", Parts: []schema.TemplatePart{{Literal: "-f "}, {Ref: "a1"}}},
			{Name: "xarg", Parts: []schema.TemplatePart{{Literal: "-x -y "}}},
			{Name: "stdout", Parts: []schema.TemplatePart{{Ref: "a2"}}},
		},
		Env: map[string][]schema.TemplatePart{"MAXMEM": {{Ref: "env"}}},
	}
	dv := schema.Derivation{
		Name: "d1", TR: "t1",
		Params: map[string]schema.Actual{
			"a2":  schema.DatasetActual("output", "run1.exp15.T1932.summary"),
			"a1":  schema.DatasetActual("input", "run1.exp15.T1932.raw"),
			"env": schema.StringActual("20000"),
			"pa":  schema.StringActual("600"),
		},
	}
	cmd, err := BuildCommand(tr, dv)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Exec != "/usr/bin/app3" {
		t.Errorf("exec: %s", cmd.Exec)
	}
	wantArgs := []string{"-p 600", "-f run1.exp15.T1932.raw", "-x -y "}
	if strings.Join(cmd.Args, "|") != strings.Join(wantArgs, "|") {
		t.Errorf("args: %v", cmd.Args)
	}
	if cmd.Stdout != "run1.exp15.T1932.summary" || cmd.Stdin != "" {
		t.Errorf("stdio: %+v", cmd)
	}
	if cmd.Env["MAXMEM"] != "20000" {
		t.Errorf("env: %v", cmd.Env)
	}

	// Defaults apply when unbound.
	delete(dv.Params, "pa")
	cmd, err = BuildCommand(tr, dv)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Args[0] != "-p 500" {
		t.Errorf("default arg: %v", cmd.Args)
	}

	// Unbound without default is an error.
	trNoDefault := tr
	trNoDefault.Args = append([]schema.FormalArg{}, tr.Args...)
	trNoDefault.Args[3].Default = nil
	if _, err := BuildCommand(trNoDefault, dv); err == nil {
		t.Error("unbound formal accepted")
	}

	// Compound rejected.
	comp := schema.Transformation{Name: "c", Kind: schema.Compound}
	if _, err := BuildCommand(comp, dv); err == nil {
		t.Error("compound accepted")
	}

	// Derivation env overrides TR env template.
	dv.Env = map[string]string{"MAXMEM": "1", "EXTRA": "2"}
	cmd, _ = BuildCommand(tr, dv)
	if cmd.Env["MAXMEM"] != "1" || cmd.Env["EXTRA"] != "2" {
		t.Errorf("env override: %v", cmd.Env)
	}

	// List actuals join with spaces; pfnHint used when exec empty.
	trList := schema.Transformation{
		Name: "lt", Kind: schema.Simple,
		Profile: map[string]string{"hints.pfnHint": "/bin/lt"},
		Args:    []schema.FormalArg{{Name: "files", Direction: schema.In}},
		ArgTemplates: []schema.ArgTemplate{
			{Name: "f", Parts: []schema.TemplatePart{{Literal: "-f "}, {Ref: "files"}}},
		},
	}
	dvList := schema.Derivation{TR: "lt", Params: map[string]schema.Actual{
		"files": schema.ListActual(schema.DatasetActual("input", "x"), schema.DatasetActual("input", "y")),
	}}
	cmd, err = BuildCommand(trList, dvList)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Exec != "/bin/lt" || cmd.Args[0] != "-f x y" {
		t.Errorf("list command: %+v", cmd)
	}
}

func actualPtr(a schema.Actual) *schema.Actual { return &a }

func TestWideFanHostScaling(t *testing.T) {
	// 120 independent jobs; makespan should scale ~1/hosts (E3's shape).
	build := func() *dag.Graph {
		var dvs []schema.Derivation
		for i := 0; i < 120; i++ {
			dvs = append(dvs, dv1("src", fmt.Sprintf("out%d", i)))
		}
		g, err := dag.Build(dvs, schema.MapResolver(tr1()))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	var prev float64 = 1e18
	for _, hosts := range []int{1, 10, 60, 120} {
		_, drv := simSetup(t, hosts)
		ex := &Executor{Driver: drv, Assign: fixedAssign(100)}
		rep, err := ex.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		want := 100.0 * float64((120+hosts-1)/hosts)
		if rep.Makespan != want {
			t.Errorf("hosts=%d makespan=%g want=%g", hosts, rep.Makespan, want)
		}
		if rep.Makespan > prev {
			t.Errorf("makespan grew with hosts")
		}
		prev = rep.Makespan
	}
}
