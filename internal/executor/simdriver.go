package executor

import (
	"fmt"

	"chimera/internal/dag"
	"chimera/internal/grid"
)

// SimDriver executes placements on the simulated grid: input transfers
// run first (concurrently), then the job runs on the placed host, all
// in virtual time. Failures are injected with a configurable
// probability drawn from the simulation's seeded source, so runs remain
// reproducible.
type SimDriver struct {
	Cluster *grid.Cluster
	// FailProb is the per-attempt probability of job failure (exit 1).
	FailProb float64
}

// NewSimDriver wraps a cluster.
func NewSimDriver(c *grid.Cluster) *SimDriver { return &SimDriver{Cluster: c} }

// Now returns the simulated time.
func (d *SimDriver) Now() float64 { return d.Cluster.Sim.Now() }

// Drain runs the simulation to quiescence.
func (d *SimDriver) Drain() { d.Cluster.Sim.Run() }

// Start implements Driver.
func (d *SimDriver) Start(n *dag.Node, p Placement, attempt int, done func(Result)) error {
	site := p.Site
	if p.Host != "" {
		h, ok := d.Cluster.Grid.Host(p.Host)
		if !ok {
			return fmt.Errorf("executor: unknown host %q", p.Host)
		}
		site = h.Site
	} else if d.Cluster.LeastLoadedHost(site) == "" {
		return fmt.Errorf("executor: site %q has no hosts", site)
	}
	var totalIn int64
	for _, t := range p.Transfers {
		totalIn += t.Bytes
	}
	var totalOut int64
	for _, b := range p.OutputBytes {
		totalOut += b
	}
	dispatchTime := d.Now()

	launch := func() {
		// Pick the host when the job is actually ready to queue (after
		// staging), so queue depths reflect every job launched so far.
		host := p.Host
		if host == "" {
			host = d.Cluster.LeastLoadedHost(site)
		}
		var job *grid.Job
		job = &grid.Job{
			ID:       fmt.Sprintf("%s#%d", n.ID, attempt),
			Work:     p.Work,
			NoiseAmp: p.NoiseAmp,
			OnDone: func(start, elapsed float64) {
				exit := 0
				if job.Failed {
					exit = 1 // host failure (grid.FailHost)
				} else if d.FailProb > 0 && d.Cluster.Sim.Rand().Float64() < d.FailProb {
					exit = 1
				}
				done(Result{
					Node: n.ID, Attempt: attempt, ExitCode: exit,
					Site: site, Host: host,
					Start: dispatchTime, End: start + elapsed,
					BytesIn: totalIn, BytesOut: totalOut,
				})
			},
		}
		if err := d.Cluster.Submit(host, job); err != nil {
			// Surface as a failed attempt rather than panicking the sim.
			done(Result{Node: n.ID, Attempt: attempt, ExitCode: 1, Site: site, Host: host,
				Start: dispatchTime, End: d.Now()})
		}
	}

	if len(p.Transfers) == 0 {
		launch()
		return nil
	}
	remaining := len(p.Transfers)
	for _, t := range p.Transfers {
		t := t
		err := d.Cluster.TransferData(&grid.Transfer{
			ID:    fmt.Sprintf("xfer-%s-%s", n.ID, t.Dataset),
			From:  t.FromSite,
			To:    site,
			Bytes: t.Bytes,
			OnDone: func(_, _ float64) {
				remaining--
				if remaining == 0 {
					launch()
				}
			},
		})
		if err != nil {
			return fmt.Errorf("executor: stage %s for %s: %w", t.Dataset, n.ID, err)
		}
	}
	return nil
}
