package catalog

import (
	"sort"
	"sync/atomic"
	"time"

	"chimera/internal/schema"
)

// Change journal: every mutation that reaches the put*/drop* funnel (or
// the types/compat side paths) draws the next value of the
// catalog-wide mutation sequence and appends one entry to its home
// shard's bounded in-memory journal. ChangesSince merges the retained
// tails into a delta Export — the incremental sync protocol federated
// indexes use to avoid re-fetching a member's full catalog every crawl
// pass.
//
// The wire cursor stays the single (instance, seq) pair PR 5 shipped:
// the sequence is global (one atomic counter), each shard's journal
// holds the strictly-ascending subsequence of entries for its own
// objects, and a delta request is serviceable exactly when every shard
// still retains all entries above `since`. One overflowing shard
// therefore degrades the response to a full export — bounded memory,
// never a silently incomplete delta. The per-shard cursor vector
// (ShardJournalStates) is introspection, not protocol.

// DefaultJournalWindow is the number of journal entries retained per
// shard when Options.JournalWindow (or SetJournalWindow) does not
// override it.
const DefaultJournalWindow = 4096

// Instance tokens let a client that cached a sequence against one
// Catalog value never mistake a different catalog for the one it
// synced with. A bare counter is not enough: it restarts with the
// process, so a restarted daemon would hand out the same token while
// its replayed journal numbers history differently (snapshot replay is
// sorted, not chronological) — a stale cursor could then silently
// under-ship. Seeding with the process start time makes tokens unique
// across restarts too; the counter keeps them unique within a process.
var (
	journalEpoch     = uint64(time.Now().UnixNano())
	journalInstances atomic.Uint64
)

func newJournalInstance() uint64 { return journalEpoch + journalInstances.Add(1) }

type journalKind uint8

const (
	jDataset journalKind = iota
	jTransformation
	jDerivation
	jInvocation
	jReplica
	jTypes
	jCompat
)

// journalEntry records one mutation. seq is the catalog-wide sequence
// the mutation drew; within one shard's journal entries are strictly
// seq-ascending (with gaps where other shards drew numbers).
type journalEntry struct {
	seq  uint64
	kind journalKind
	id   string
	del  bool
}

// noteJournal draws the next catalog sequence and appends one entry to
// this shard's journal. Callers hold s.mu (or own the catalog
// exclusively, as during Open). The journal is allowed to grow to
// twice the window before compacting so trimming stays amortized O(1)
// per mutation; trimmed remembers the highest dropped sequence — the
// shard's delta floor.
func (s *cshard) noteJournal(c *Catalog, k journalKind, id string, del bool) {
	seq := c.jseq.Add(1)
	s.lastSeq = seq // stamped into the published epoch at the next swap
	s.journal = append(s.journal, journalEntry{seq: seq, kind: k, id: id, del: del})
	if w := s.jwindow; len(s.journal) >= 2*w {
		s.trimmed = s.journal[len(s.journal)-w-1].seq
		keep := s.journal[len(s.journal)-w:]
		n := copy(s.journal, keep)
		s.journal = s.journal[:n]
	}
	metricJournalEntries.Set(float64(len(s.journal)))
	s.gJournal.Set(float64(len(s.journal)))
	s.gObjects.Set(float64(s.objectCount()))
}

// JournalState is the journal's live cursor and occupancy: the sync
// position (Instance, Seq) a delta client would cite, plus how much of
// the retained window is in use. For a sharded catalog Entries sums
// the shards and Occ is the worst shard's occupancy — occupancy at
// 1.0 means some shard may force the next lagging crawler to a full
// export.
type JournalState struct {
	Instance uint64  `json:"instance"`
	Seq      uint64  `json:"seq"`
	Window   int     `json:"window"`
	Entries  int     `json:"entries"`
	Occ      float64 `json:"occupancy"`
}

// JournalState reports the change journal's cursor and occupancy.
func (c *Catalog) JournalState() JournalState {
	c.rlockAll()
	defer c.runlockAll()
	st := JournalState{
		Instance: c.jinstance,
		Seq:      c.jseq.Load(),
	}
	for _, s := range c.shards {
		st.Window = s.jwindow
		st.Entries += len(s.journal)
		if s.jwindow > 0 {
			occ := float64(len(s.journal)) / float64(s.jwindow)
			if occ > 1 {
				occ = 1 // a journal may run ahead to 2x before compaction
			}
			if occ > st.Occ {
				st.Occ = occ
			}
		}
	}
	return st
}

// ShardJournalState is one shard's slice of the journal: its delta
// floor (the highest sequence it has dropped), the sequence of its
// most recent entry, and its window occupancy. The vector of these —
// one per shard — is the sharded catalog's sync cursor in full detail;
// /debug/vdc reports it so an operator can see which shard's overflow
// is pushing crawlers to full exports.
type ShardJournalState struct {
	Shard   int     `json:"shard"`
	Seq     uint64  `json:"seq"`   // last sequence journaled on this shard
	Floor   uint64  `json:"floor"` // highest sequence trimmed away; deltas need since >= floor
	Entries int     `json:"entries"`
	Occ     float64 `json:"occupancy"`
}

// ShardJournalStates reports every shard's journal cursor.
func (c *Catalog) ShardJournalStates() []ShardJournalState {
	c.rlockAll()
	defer c.runlockAll()
	out := make([]ShardJournalState, len(c.shards))
	for i, s := range c.shards {
		st := ShardJournalState{Shard: i, Seq: s.trimmed, Floor: s.trimmed, Entries: len(s.journal)}
		if len(s.journal) > 0 {
			st.Seq = s.journal[len(s.journal)-1].seq
		}
		if s.jwindow > 0 {
			st.Occ = float64(len(s.journal)) / float64(s.jwindow)
			if st.Occ > 1 {
				st.Occ = 1
			}
		}
		out[i] = st
	}
	return out
}

// Seq returns the catalog's current mutation sequence. A caller holding
// (instance, seq) from a previous Export or Delta can ask ChangesSince
// for everything that happened after it.
func (c *Catalog) Seq() uint64 { return c.jseq.Load() }

// Instance returns the catalog's instance token. Sequences are only
// comparable between identical instances; a reopened catalog gets a
// fresh token, forcing clients back to a full export.
func (c *Catalog) Instance() uint64 { return c.jinstance }

// SetJournalWindow bounds how many journal entries each shard retains
// (n <= 0 restores DefaultJournalWindow). A smaller window trades
// delta coverage for memory: callers further behind than any shard's
// window receive a full export.
func (c *Catalog) SetJournalWindow(n int) {
	if n <= 0 {
		n = DefaultJournalWindow
	}
	set := c.allSet()
	c.lockSet(set)
	defer c.unlockSet(set)
	for _, s := range c.shards {
		s.jwindow = n
		if len(s.journal) > n {
			s.trimmed = s.journal[len(s.journal)-n-1].seq
			keep := s.journal[len(s.journal)-n:]
			cp := copy(s.journal, keep)
			s.journal = s.journal[:cp]
		}
	}
}

// Tombstone records a deletion inside a delta export. The only
// removable object class today is the replica.
type Tombstone struct {
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// Delta is an incremental export: the current value of every object
// mutated after Since, plus tombstones for objects that no longer
// exist. Full marks a degraded response carrying the complete catalog
// (the caller was behind some shard's journal window, ahead of the
// sequence, at sequence zero, or synced against a different instance).
// Export.Types and Export.Compat are nil unless the registry or the
// assertion list changed.
type Delta struct {
	// Instance identifies the catalog the sequence numbers belong to.
	Instance uint64 `json:"instance"`
	// Since echoes the request's sequence.
	Since uint64 `json:"since"`
	// Seq is the catalog sequence this delta brings the caller up to.
	Seq uint64 `json:"seq"`
	// Full marks Export as the complete catalog state.
	Full       bool        `json:"full,omitempty"`
	Export     Export      `json:"export"`
	Tombstones []Tombstone `json:"tombstones,omitempty"`
}

// Empty reports whether the delta carries no changes at all — the
// "unchanged member" fast path of a federation crawl.
func (d Delta) Empty() bool {
	return !d.Full &&
		len(d.Export.Datasets) == 0 &&
		len(d.Export.Transformations) == 0 &&
		len(d.Export.Derivations) == 0 &&
		len(d.Export.Invocations) == 0 &&
		len(d.Export.Replicas) == 0 &&
		len(d.Export.Compat) == 0 &&
		d.Export.Types == nil &&
		len(d.Tombstones) == 0
}

// ChangesSince returns the mutations after sequence since, observed by
// a caller that last synced instance. The read is scatter-gather: all
// shard read locks are held (ascending order) while each shard's
// journal tail is scanned and its touched objects resolved against
// that same shard's maps, then the per-shard pieces merge under one
// deterministic sort. The fast path (caller already current) allocates
// nothing but the Delta header. The caller receives a full export when
// it is at sequence zero, cites a different instance, claims a future
// sequence, or has fallen behind any shard's journal window.
func (c *Catalog) ChangesSince(since, instance uint64) Delta {
	c.rlockAll()
	defer c.runlockAll()
	seq := c.jseq.Load()
	d := Delta{Instance: c.jinstance, Since: since, Seq: seq}
	if instance == c.jinstance && since == seq {
		return d
	}
	full := instance != c.jinstance || since == 0 || since > seq
	if !full {
		for _, s := range c.shards {
			if since < s.trimmed {
				full = true
				break
			}
		}
	}
	if full {
		d.Full = true
		d.Export = c.exportAllLocked()
		return d
	}

	types, compat := false, false
	for _, s := range c.shards {
		// Entries are seq-ascending within a shard: binary-search the
		// first entry past since, then collect the distinct objects
		// touched. The delta ships each one's *current* value (or a
		// tombstone), so repeated entries for one object collapse.
		start := sort.Search(len(s.journal), func(i int) bool { return s.journal[i].seq > since })
		if start == len(s.journal) {
			continue
		}
		var datasets, trs, dvs, ivs, reps map[string]struct{}
		mark := func(m *map[string]struct{}, id string) {
			if *m == nil {
				*m = make(map[string]struct{})
			}
			(*m)[id] = struct{}{}
		}
		for _, e := range s.journal[start:] {
			switch e.kind {
			case jDataset:
				mark(&datasets, e.id)
			case jTransformation:
				mark(&trs, e.id)
			case jDerivation:
				mark(&dvs, e.id)
			case jInvocation:
				mark(&ivs, e.id)
			case jReplica:
				mark(&reps, e.id)
			case jTypes:
				types = true
			case jCompat:
				compat = true
			}
		}

		// Every journal entry is noted on its object's home shard, so
		// the ids resolve against this shard's own maps.
		for name := range datasets {
			if ds, ok := s.datasets[name]; ok {
				d.Export.Datasets = append(d.Export.Datasets, ds)
			}
		}
		for ref := range trs {
			if tr, ok := s.transformations[ref]; ok {
				d.Export.Transformations = append(d.Export.Transformations, tr)
			}
		}
		for id := range dvs {
			if dv, ok := s.derivations[id]; ok {
				d.Export.Derivations = append(d.Export.Derivations, dv)
			}
		}
		for id := range ivs {
			if iv, ok := s.invocations[id]; ok {
				d.Export.Invocations = append(d.Export.Invocations, iv)
			}
		}
		for id := range reps {
			if r, ok := s.replicas[id]; ok {
				d.Export.Replicas = append(d.Export.Replicas, r)
			} else {
				d.Tombstones = append(d.Tombstones, Tombstone{Kind: "replica", ID: id})
			}
		}
	}
	if types {
		d.Export.Types = c.types.Clone()
	}
	if compat {
		d.Export.Compat = append([]schema.CompatibilityAssertion(nil), c.shards[0].compat...)
	}
	sortExport(&d.Export)
	sort.Slice(d.Tombstones, func(i, j int) bool { return d.Tombstones[i].ID < d.Tombstones[j].ID })
	return d
}
