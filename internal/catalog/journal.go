package catalog

import (
	"sort"
	"sync/atomic"
	"time"

	"chimera/internal/schema"
)

// Change journal: every mutation that reaches the put*/drop* funnel (or
// the types/compat side paths) advances a monotonic sequence number and
// appends one entry to a bounded in-memory journal. ChangesSince turns
// the retained tail into a delta Export — the incremental sync protocol
// federated indexes use to avoid re-fetching a member's full catalog
// every crawl pass. When a caller's sequence predates the retained
// window (or it talks to a different catalog instance), the delta
// degrades to a full export, so the journal bounds memory without ever
// sacrificing correctness.

// DefaultJournalWindow is the number of journal entries retained when
// Options.JournalWindow (or SetJournalWindow) does not override it.
const DefaultJournalWindow = 4096

// Instance tokens let a client that cached a sequence against one
// Catalog value never mistake a different catalog for the one it
// synced with. A bare counter is not enough: it restarts with the
// process, so a restarted daemon would hand out the same token while
// its replayed journal numbers history differently (snapshot replay is
// sorted, not chronological) — a stale cursor could then silently
// under-ship. Seeding with the process start time makes tokens unique
// across restarts too; the counter keeps them unique within a process.
var (
	journalEpoch     = uint64(time.Now().UnixNano())
	journalInstances atomic.Uint64
)

func newJournalInstance() uint64 { return journalEpoch + journalInstances.Add(1) }

type journalKind uint8

const (
	jDataset journalKind = iota
	jTransformation
	jDerivation
	jInvocation
	jReplica
	jTypes
	jCompat
)

// journalEntry records one mutation. The sequence of an entry is
// implicit in its position: entry i carries seq jseq-len(journal)+1+i.
type journalEntry struct {
	kind journalKind
	id   string
	del  bool
}

// noteJournal advances the mutation sequence and appends one entry.
// Callers hold c.mu (or own the catalog exclusively, as during Open).
// The journal is allowed to grow to twice the window before compacting
// so trimming stays amortized O(1) per mutation.
func (c *Catalog) noteJournal(k journalKind, id string, del bool) {
	c.jseq++
	c.journal = append(c.journal, journalEntry{kind: k, id: id, del: del})
	if w := c.jwindow; len(c.journal) >= 2*w {
		keep := c.journal[len(c.journal)-w:]
		n := copy(c.journal, keep)
		c.journal = c.journal[:n]
	}
	metricJournalEntries.Set(float64(len(c.journal)))
}

// JournalState is the journal's live cursor and occupancy: the sync
// position (Instance, Seq) a delta client would cite, plus how much of
// the retained window is in use. Occupancy at 1.0 means the next
// lagging crawler falls back to a full export.
type JournalState struct {
	Instance uint64  `json:"instance"`
	Seq      uint64  `json:"seq"`
	Window   int     `json:"window"`
	Entries  int     `json:"entries"`
	Occ      float64 `json:"occupancy"`
}

// JournalState reports the change journal's cursor and occupancy.
func (c *Catalog) JournalState() JournalState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := JournalState{
		Instance: c.jinstance,
		Seq:      c.jseq,
		Window:   c.jwindow,
		Entries:  len(c.journal),
	}
	if st.Window > 0 {
		occ := float64(st.Entries) / float64(st.Window)
		if occ > 1 {
			occ = 1 // the journal may run ahead to 2x before compaction
		}
		st.Occ = occ
	}
	return st
}

// Seq returns the catalog's current mutation sequence. A caller holding
// (instance, seq) from a previous Export or Delta can ask ChangesSince
// for everything that happened after it.
func (c *Catalog) Seq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.jseq
}

// Instance returns the catalog's instance token. Sequences are only
// comparable between identical instances; a reopened catalog gets a
// fresh token, forcing clients back to a full export.
func (c *Catalog) Instance() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.jinstance
}

// SetJournalWindow bounds how many journal entries are retained
// (n <= 0 restores DefaultJournalWindow). A smaller window trades
// delta coverage for memory: callers further behind than the window
// receive a full export.
func (c *Catalog) SetJournalWindow(n int) {
	if n <= 0 {
		n = DefaultJournalWindow
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jwindow = n
	if len(c.journal) > n {
		keep := c.journal[len(c.journal)-n:]
		cp := copy(c.journal, keep)
		c.journal = c.journal[:cp]
	}
}

// Tombstone records a deletion inside a delta export. The only
// removable object class today is the replica.
type Tombstone struct {
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// Delta is an incremental export: the current value of every object
// mutated after Since, plus tombstones for objects that no longer
// exist. Full marks a degraded response carrying the complete catalog
// (the caller was behind the journal window, ahead of the sequence, at
// sequence zero, or synced against a different instance). Export.Types
// and Export.Compat are nil unless the registry or the assertion list
// changed.
type Delta struct {
	// Instance identifies the catalog the sequence numbers belong to.
	Instance uint64 `json:"instance"`
	// Since echoes the request's sequence.
	Since uint64 `json:"since"`
	// Seq is the catalog sequence this delta brings the caller up to.
	Seq uint64 `json:"seq"`
	// Full marks Export as the complete catalog state.
	Full       bool        `json:"full,omitempty"`
	Export     Export      `json:"export"`
	Tombstones []Tombstone `json:"tombstones,omitempty"`
}

// Empty reports whether the delta carries no changes at all — the
// "unchanged member" fast path of a federation crawl.
func (d Delta) Empty() bool {
	return !d.Full &&
		len(d.Export.Datasets) == 0 &&
		len(d.Export.Transformations) == 0 &&
		len(d.Export.Derivations) == 0 &&
		len(d.Export.Invocations) == 0 &&
		len(d.Export.Replicas) == 0 &&
		len(d.Export.Compat) == 0 &&
		d.Export.Types == nil &&
		len(d.Tombstones) == 0
}

// ChangesSince returns the mutations after sequence since, observed by
// a caller that last synced instance. The fast path (caller already
// current) allocates nothing but the Delta header. The caller receives
// a full export when it is at sequence zero, cites a different
// instance, claims a future sequence, or has fallen behind the journal
// window.
func (c *Catalog) ChangesSince(since, instance uint64) Delta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d := Delta{Instance: c.jinstance, Since: since, Seq: c.jseq}
	if instance == c.jinstance && since == c.jseq {
		return d
	}
	floor := c.jseq - uint64(len(c.journal))
	if instance != c.jinstance || since == 0 || since > c.jseq || since < floor {
		d.Full = true
		d.Export = c.exportLocked()
		return d
	}

	// Collect the distinct objects touched after since; the delta ships
	// each one's *current* value (or a tombstone), so repeated journal
	// entries for one object collapse.
	var datasets, trs, dvs, ivs, reps map[string]struct{}
	types, compat := false, false
	mark := func(m *map[string]struct{}, id string) {
		if *m == nil {
			*m = make(map[string]struct{})
		}
		(*m)[id] = struct{}{}
	}
	for _, e := range c.journal[since-floor:] {
		switch e.kind {
		case jDataset:
			mark(&datasets, e.id)
		case jTransformation:
			mark(&trs, e.id)
		case jDerivation:
			mark(&dvs, e.id)
		case jInvocation:
			mark(&ivs, e.id)
		case jReplica:
			mark(&reps, e.id)
		case jTypes:
			types = true
		case jCompat:
			compat = true
		}
	}

	for name := range datasets {
		if ds, ok := c.datasets[name]; ok {
			d.Export.Datasets = append(d.Export.Datasets, ds)
		}
	}
	for ref := range trs {
		if tr, ok := c.transformations[ref]; ok {
			d.Export.Transformations = append(d.Export.Transformations, tr)
		}
	}
	for id := range dvs {
		if dv, ok := c.derivations[id]; ok {
			d.Export.Derivations = append(d.Export.Derivations, dv)
		}
	}
	for id := range ivs {
		if iv, ok := c.invocations[id]; ok {
			d.Export.Invocations = append(d.Export.Invocations, iv)
		}
	}
	for id := range reps {
		if r, ok := c.replicas[id]; ok {
			d.Export.Replicas = append(d.Export.Replicas, r)
		} else {
			d.Tombstones = append(d.Tombstones, Tombstone{Kind: "replica", ID: id})
		}
	}
	if types {
		d.Export.Types = c.types.Clone()
	}
	if compat {
		d.Export.Compat = append([]schema.CompatibilityAssertion(nil), c.compat...)
	}
	sortExport(&d.Export)
	sort.Slice(d.Tombstones, func(i, j int) bool { return d.Tombstones[i].ID < d.Tombstones[j].ID })
	return d
}
