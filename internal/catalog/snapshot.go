package catalog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"chimera/internal/codec"
)

// Snapshot format selection. The codec name recorded in
// catalog-meta.json pins what Snapshot() writes, the same way the meta
// pins the shard count: the recorded value wins on reopen. The read
// side is self-describing — it loads whichever snapshot file exists
// (snapshot.bin via the binary codec, snapshot.json via JSON), so a
// directory survives the transition in either direction: the first
// Snapshot() under a new pin writes the new file and removes the old.

const binSnapshotFile = "snapshot.bin"

// normalizeSnapshotFormat resolves "" to the JSON codec and validates
// the name against the registry.
func normalizeSnapshotFormat(name string) (string, error) {
	if name == "" {
		return codec.JSONName, nil
	}
	if _, err := codec.Lookup(name); err != nil {
		return "", fmt.Errorf("catalog: snapshot format: %w", err)
	}
	return name, nil
}

// CodecPayload reinterprets an Export as the codec-neutral container
// (shared by the vds server and client wire paths).
func (exp *Export) CodecPayload() *codec.Payload { return exportPayload(exp) }

// ExportFromCodec is the inverse of CodecPayload.
func ExportFromCodec(p *codec.Payload) Export { return payloadExport(p) }

// exportPayload reinterprets an Export as the codec-neutral container.
// The two structs are field-for-field identical, so this moves slice
// headers, not records.
func exportPayload(exp *Export) *codec.Payload {
	return &codec.Payload{
		Types:           exp.Types,
		Datasets:        exp.Datasets,
		Transformations: exp.Transformations,
		Derivations:     exp.Derivations,
		Invocations:     exp.Invocations,
		Replicas:        exp.Replicas,
		Compat:          exp.Compat,
	}
}

func payloadExport(p *codec.Payload) Export {
	return Export{
		Types:           p.Types,
		Datasets:        p.Datasets,
		Transformations: p.Transformations,
		Derivations:     p.Derivations,
		Invocations:     p.Invocations,
		Replicas:        p.Replicas,
		Compat:          p.Compat,
	}
}

// CodecDelta reinterprets a journal delta as the codec-neutral wire
// container (shared by the vds server and client).
func (d *Delta) CodecDelta() *codec.Delta {
	cd := &codec.Delta{
		Instance: d.Instance,
		Since:    d.Since,
		Seq:      d.Seq,
		Full:     d.Full,
		Payload:  *exportPayload(&d.Export),
	}
	if len(d.Tombstones) > 0 {
		cd.Tombstones = make([]codec.Tombstone, len(d.Tombstones))
		for i, t := range d.Tombstones {
			cd.Tombstones[i] = codec.Tombstone(t)
		}
	}
	return cd
}

// DeltaFromCodec is the inverse of CodecDelta.
func DeltaFromCodec(cd *codec.Delta) Delta {
	d := Delta{
		Instance: cd.Instance,
		Since:    cd.Since,
		Seq:      cd.Seq,
		Full:     cd.Full,
		Export:   payloadExport(&cd.Payload),
	}
	if len(cd.Tombstones) > 0 {
		d.Tombstones = make([]Tombstone, len(cd.Tombstones))
		for i, t := range cd.Tombstones {
			d.Tombstones[i] = Tombstone(t)
		}
	}
	return d
}

// writeMeta persists catalog-meta.json and fsyncs both the file and
// its directory: the meta pins shard routing and snapshot format, and
// a crash that loses it (or tears it) after WAL records exist would
// reopen the directory under the wrong layout.
func writeMeta(dir string, meta catalogMeta) error {
	data, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("catalog: meta encode: %w", err)
	}
	path := filepath.Join(dir, metaFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: meta: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("catalog: meta write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: meta sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("catalog: meta close: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-created entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("catalog: dir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("catalog: dir sync: %w", err)
	}
	return nil
}

// loadSnapshot restores whichever snapshot file the directory holds.
// The binary file is memory-mapped and decoded lazily section by
// section (codec.DecodeSnapshot copies everything it keeps), then
// unmapped before returning — cold-start I/O streams straight out of
// the page cache with no intermediate heap copy of the file.
func (c *Catalog) loadSnapshot(dir string) error {
	binPath := filepath.Join(dir, binSnapshotFile)
	if data, done, err := mapFile(binPath); err == nil {
		bin, lerr := codec.Lookup(codec.BinaryName)
		if lerr != nil {
			done()
			return lerr
		}
		p, derr := bin.DecodeSnapshot(data)
		done() // decoded values own their memory; unmap immediately
		if derr != nil {
			return fmt.Errorf("catalog: snapshot %s: %w", binPath, derr)
		}
		return c.applyExport(payloadExport(p))
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("catalog: snapshot: %w", err)
	}

	snapPath := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(snapPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("catalog: snapshot: %w", err)
	}
	var exp Export
	if err := json.Unmarshal(data, &exp); err != nil {
		return fmt.Errorf("catalog: snapshot %s: %w", snapPath, err)
	}
	return c.applyExport(exp)
}

// writeSnapshotLocked encodes the export under the pinned format and
// atomically replaces the snapshot, removing the other format's file
// so the directory never holds two divergent snapshots. Callers hold
// every shard's write lock.
func (c *Catalog) writeSnapshotLocked(exp *Export) error {
	cdc, err := codec.Lookup(c.snapFormat)
	if err != nil {
		return err
	}
	target, stale := snapshotFile, binSnapshotFile
	if c.snapFormat != codec.JSONName {
		target, stale = binSnapshotFile, snapshotFile
	}
	var buf bytes.Buffer
	if err := cdc.EncodeSnapshot(&buf, exportPayload(exp)); err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, target+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, target)); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(c.dir, stale)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
