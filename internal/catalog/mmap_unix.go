//go:build unix

package catalog

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only and returns the mapping plus a
// release function. The caller must not retain any slice aliasing data
// after calling done — the binary codec guarantees decoded values own
// their memory precisely so the mapping can be dropped the moment
// DecodeSnapshot returns. Empty files return an empty (non-mapped)
// slice, since mmap of length 0 is an error on most Unixes.
func mapFile(path string) (data []byte, done func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return m, func() { _ = syscall.Munmap(m) }, nil
}
