package catalog

import (
	"hash/fnv"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/obs"
	"chimera/internal/schema"
)

// Catalog sharding. The catalog is partitioned into N shards keyed by
// FNV-1a hash of the object's *home name*; each shard owns its own
// RWMutex, write-ahead log, change journal, and secondary indexes, so
// mutations on different shards proceed on different cores without
// touching a shared lock or serializing on a shared fsync.
//
// Homing rules (the routing function of the whole design):
//
//	dataset         -> hash(dataset name)
//	replica         -> hash(replica.Dataset)   (same shard as its dataset)
//	derivation      -> hash(derivation ID)
//	invocation      -> hash(invocation.Derivation) (same shard as its derivation)
//	transformation  -> hash(versionless "ns::name" base ref)
//	types, compat   -> shard 0
//
// Co-homing replicas with their dataset and invocations with their
// derivation keeps the hot production-ingest operations (AddReplica,
// AddInvocation, AddDataset) entirely single-shard: the validation
// read, the primary map write, every secondary-index update, the
// journal entry, and the WAL record all live behind one shard lock.
// Keyed adjacency maps follow their key: producerOf/consumersOf and
// replicasByDataset live on the dataset's shard, inputsOf/outputsOf and
// invocationsByDV on the derivation's shard, versionsOf on the
// transformation base's shard (which is why transformations are homed
// by base, not full ref: versionless resolution stays single-shard).
//
// Multi-shard mutations (AddDerivation spans the derivation's shard,
// the transformation's shard, and every input/output dataset's shard)
// write-lock their whole shard set in ascending shard order; reads that
// need a consistent cross-shard picture (View, Export, provenance
// cones, ChangesSince) take every shard's read lock, also in ascending
// order. One global acquisition order makes deadlock impossible, and
// gives ordered-snapshot consistency: a reader holding all read locks
// can never observe a mutation M2 without also observing every
// mutation that happened-before M2 (see docs/PERF.md, "Catalog
// sharding").
//
// Shards=1 degenerates to exactly the pre-sharding catalog — one lock,
// one WAL, one journal — and is kept as the equivalence oracle:
// shard_test.go replays randomized mutation histories against 1-shard
// and N-shard catalogs and requires identical exports.

// MaxShards bounds the shard count; shard sets are uint64 bitmasks.
const MaxShards = 64

// cshard is one catalog shard: the write side of the object state
// (embedded shardState, guarded by mu), the published read epoch
// (published.go), the change journal, and the WAL.
type cshard struct {
	mu sync.RWMutex

	// The write side. Embedding keeps every mutation and locked read
	// addressing fields directly (s.datasets, s.idx, ...); publication
	// re-points this at the caught-up retired side.
	*shardState

	// pub is the published read epoch: the immutable counterpart of the
	// write side, read lock-free via acquire/release (published.go).
	pub atomic.Pointer[publishedEpoch]

	// spare is the third buffer: the previously published state, waiting
	// for its last readers to drain so a rotation can recycle it as the
	// next write side. Guarded by mu (its ep.readers is atomic).
	spare *sideState

	// spareEp mirrors spare.ep for lock-free observation: readers gate
	// the assist publication on the spare having drained (spareDrained),
	// so a pinned spare never triggers futile TryLock storms. Written
	// under mu at rotation; nil while the spare was never published.
	spareEp atomic.Pointer[publishedEpoch]

	// ops is the log of mutation closures applied to the write side,
	// kept for replay onto the lagging buffers; opBase is the ver value
	// of ops[0]. Entries below every laggard's cursor are dropped at
	// rotation. Guarded by mu.
	ops    []func(*shardState)
	opBase uint64

	// dirty flags unpublished mutations, letting lock-free readers
	// trigger the reader-assist publication without touching mu first.
	dirty atomic.Bool

	// ver counts every applied mutation closure on this shard (journaled
	// or not); lastSeq is the catalog-wide sequence of the shard's last
	// journal entry. Both are stamped into the epoch at publication.
	// Guarded by mu.
	ver     uint64
	lastSeq uint64

	// Change journal (journal.go): the bounded tail of this shard's
	// mutations. Entries carry the catalog-wide sequence they were
	// assigned; within one shard entries are strictly seq-ascending.
	// trimmed is the highest sequence ever dropped from this shard's
	// journal: a delta request `since` is serviceable by this shard iff
	// since >= trimmed.
	journal []journalEntry
	trimmed uint64
	jwindow int

	wal *wal // nil for purely in-memory catalogs

	// pendingSeq is the group-commit sequence of the last WAL record
	// the current mutation enqueued on this shard's committer; the
	// mutation funnel collects and waits on it after releasing the
	// locks. Guarded by mu; always 0 between mutations.
	pendingSeq uint64

	// Per-shard observability, resolved once at construction.
	gObjects *obs.Gauge
	gJournal *obs.Gauge
}

func newCShard(index, window int) *cshard {
	label := strconv.Itoa(index)
	s := &cshard{
		shardState: newShardState(),
		jwindow:    window,
		gObjects:   metricShardObjects.With(label),
		gJournal:   metricShardJournal.With(label),
	}
	s.pub.Store(&publishedEpoch{state: newShardState()})
	s.spare = &sideState{state: newShardState()}
	return s
}

// --- routing -----------------------------------------------------------

// shardIndex hashes a home name to a shard index with FNV-1a.
func (c *Catalog) shardIndex(name string) int {
	return HomeShard(name, len(c.shards))
}

// HomeShard reports the shard index (0..shards-1) a catalog with the
// given shard count homes an object name on. Exported so ingest
// pipelines can align their streams with shard placement (and so
// vdg-bench's E15 shard-aligned rows can pre-route workload names)
// without re-deriving the hash.
func HomeShard(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// shardOf returns the shard that homes name.
func (c *Catalog) shardOf(name string) *cshard { return c.shards[c.shardIndex(name)] }

// trHome is the homing key of a transformation reference: the
// versionless base, so every version of ns::name (and the versionsOf
// entry that resolves among them) lives on one shard. An unparseable
// ref hashes as-is; lookups for it fail identically on every shard
// count.
func trHome(ref string) string {
	if ns, name, _, err := schema.ParseTRRef(ref); err == nil {
		return schema.FormatTRRef(ns, name, "")
	}
	return ref
}

// shardOfTR returns the shard homing a transformation reference.
func (c *Catalog) shardOfTR(ref string) *cshard { return c.shards[c.shardIndex(trHome(ref))] }

// --- shard sets --------------------------------------------------------

// shardSet is a bitmask of shard indexes (hence MaxShards = 64).
type shardSet uint64

func (s shardSet) with(i int) shardSet      { return s | 1<<uint(i) }
func (s shardSet) has(i int) bool           { return s&(1<<uint(i)) != 0 }
func (s shardSet) contains(o shardSet) bool { return s&o == o }

// keySet returns the shard set homing the given names.
func (c *Catalog) keySet(names ...string) shardSet {
	var set shardSet
	for _, n := range names {
		set = set.with(c.shardIndex(n))
	}
	return set
}

// allSet is the set of every shard.
func (c *Catalog) allSet() shardSet {
	if len(c.shards) == 64 {
		return ^shardSet(0)
	}
	return shardSet(1)<<uint(len(c.shards)) - 1
}

// lockSet write-locks every shard in set, in ascending index order (the
// one global order that makes multi-shard acquisition deadlock-free),
// and reports how long acquisition took.
func (c *Catalog) lockSet(set shardSet) {
	start := time.Now()
	for m := uint64(set); m != 0; m &= m - 1 {
		c.shards[bits.TrailingZeros64(m)].mu.Lock()
	}
	metricShardLockWait.ObserveSince(start)
}

// unlockSet releases the write locks taken by lockSet.
func (c *Catalog) unlockSet(set shardSet) {
	for m := uint64(set); m != 0; m &= m - 1 {
		c.shards[bits.TrailingZeros64(m)].mu.Unlock()
	}
}

// rlockAll takes every shard's read lock in ascending order: the
// ordered-snapshot oracle underpinning LockedView, ChangesSince, and
// the administrative probes. The hot scatter-gather paths (View, query,
// Export, provenance) no longer come here — they read published epochs
// lock-free (published.go).
func (c *Catalog) rlockAll() {
	for _, s := range c.shards {
		s.rlock()
	}
}

// runlockAll releases the read locks taken by rlockAll.
func (c *Catalog) runlockAll() {
	for _, s := range c.shards {
		s.runlock()
	}
}

// Shards reports the catalog's shard count.
func (c *Catalog) Shards() int { return len(c.shards) }

// normalizeShards clamps a requested shard count to [1, MaxShards].
func normalizeShards(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxShards {
		return MaxShards
	}
	return n
}
