package catalog

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// The epoch read path's correctness argument mirrors the sharding one:
// LockedView (every shard's read lock, reading the live write side) is
// the oracle, and at any quiescent point — no writers, every durability
// wait resolved — an epoch view must observe byte-identical state. The
// tests here drive that equivalence through randomized histories,
// concurrent mutation storms (run under -race in CI), crash-replay of
// the shard WALs, and both the 1-shard and 8-shard layouts; plus the
// headline property the design exists for: the hot read paths acquire
// zero shard locks.

// requireEpochMatchesLocked asserts the epoch view and the locked
// oracle export identical state right now. Callers quiesce writers
// first; CheckPublished (called alongside) retries rotations that were
// deferred by draining readers.
func requireEpochMatchesLocked(t *testing.T, c *Catalog) {
	t.Helper()
	if err := c.CheckPublished(); err != nil {
		t.Fatal(err)
	}
	ev := c.View()
	epoch := ev.Export()
	ev.Close()
	lv := c.LockedView()
	locked := lv.Export()
	lv.Close()
	je, err := schema.CanonicalBytes(epoch)
	if err != nil {
		t.Fatal(err)
	}
	jl, err := schema.CanonicalBytes(locked)
	if err != nil {
		t.Fatal(err)
	}
	if string(je) != string(jl) {
		t.Fatalf("epoch view diverged from locked oracle:\n%s\n---\n%s", je, jl)
	}
}

// TestEpochMatchesLockedOracleRandomized replays randomized histories
// serially and requires epoch/locked equivalence at every checkpoint,
// on both the 1-shard degenerate layout and an 8-shard catalog.
func TestEpochMatchesLockedOracleRandomized(t *testing.T) {
	for _, n := range []int{1, 8} {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", n, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*1117 + int64(n)))
				hist := randomHistory(rng, "ep-", 300, true)
				c := NewSharded(dtype.StandardRegistry(), n)
				for i, m := range hist {
					m(c)
					if i%60 == 0 {
						requireEpochMatchesLocked(t, c)
					}
				}
				requireEpochMatchesLocked(t, c)
			})
		}
	}
}

// TestEpochEquivalenceStorm is the -race storm: 8 writers mutate an
// 8-shard catalog with disjoint commuting histories while lock-free
// readers continuously pin epochs and scan them; at barriers between
// history segments (writers quiescent, readers still running) the
// published epochs must equal the locked oracle byte for byte, and the
// final state must match a serial replay on the 1-shard oracle.
func TestEpochEquivalenceStorm(t *testing.T) {
	const writers, segments = 8, 4
	histories := make([][][]mutation, writers)
	for w := range histories {
		rng := rand.New(rand.NewSource(int64(w)*271 + 9))
		hist := randomHistory(rng, fmt.Sprintf("st%d-", w), 240, false)
		per := (len(hist) + segments - 1) / segments
		for i := 0; i < len(hist); i += per {
			end := i + per
			if end > len(hist) {
				end = len(hist)
			}
			histories[w] = append(histories[w], hist[i:end])
		}
	}

	c := NewSharded(dtype.StandardRegistry(), 8)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := c.View()
				// Touch state broadly enough that a recycled-too-early
				// buffer would trip the race detector.
				n := v.NumDatasets()
				v.RangeDerivations(func(dv schema.Derivation) bool {
					v.HasInvocations(dv.ID)
					return n > 0
				})
				v.Export()
				v.Close()
			}
		}()
	}

	for seg := 0; seg < segments; seg++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			if seg >= len(histories[w]) {
				continue
			}
			wg.Add(1)
			go func(hist []mutation) {
				defer wg.Done()
				for _, m := range hist {
					m(c) // errors are part of the history
				}
			}(histories[w][seg])
		}
		wg.Wait()
		// Quiescent point: writers paused, readers still hammering.
		requireEpochMatchesLocked(t, c)
	}
	close(stop)
	readers.Wait()

	ref := New(dtype.StandardRegistry())
	for w := 0; w < writers; w++ {
		for _, seg := range histories[w] {
			for _, m := range seg {
				m(ref)
			}
		}
	}
	requireSameState(t, ref, c)
	if err := c.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochCrashReplayPublishes reopens a durable catalog without Close
// (the crash case) and requires the replayed state to be published:
// epoch views over the reopened catalog must equal both its locked
// oracle and the pre-crash catalog.
func TestEpochCrashReplayPublishes(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, dtype.StandardRegistry(), Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for _, m := range randomHistory(rng, "cp-", 250, true) {
		m(c)
	}
	requireEpochMatchesLocked(t, c)

	c2, err := Open(dir, dtype.StandardRegistry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireEpochMatchesLocked(t, c2)
	requireSameState(t, c, c2)
	for _, st := range c2.EpochStats() {
		if st.Pending != 0 {
			t.Fatalf("shard %d: %d unpublished mutations after replay", st.Shard, st.Pending)
		}
	}
	c.Close()
}

// TestReadPathLockFree is the lock-freedom assertion: the hot read
// paths — View open/scan/Close, Export, point reads, the executor's
// dedup probe — must acquire zero shard read locks, while the LockedView
// oracle (kept, by design, behind an explicit option) takes exactly one
// per shard.
func TestReadPathLockFree(t *testing.T) {
	c := NewSharded(dtype.StandardRegistry(), 8)
	populate(t, c)
	var dvID string
	c.View().RangeDerivations(func(dv schema.Derivation) bool { dvID = dv.ID; return false })

	before := LockReadAcquisitions()
	v := c.View()
	v.NumDatasets()
	v.RangeDatasets(func(schema.Dataset) bool { return true })
	if _, ok := v.Dataset("raw"); !ok {
		t.Fatal("raw missing")
	}
	v.Materialized("cooked")
	v.Export()
	v.Close()
	c.Export()
	if !c.ExecutedPublished(dvID) {
		t.Fatalf("derivation %s has an invocation; ExecutedPublished must see it", dvID)
	}
	if got := LockReadAcquisitions() - before; got != 0 {
		t.Fatalf("epoch read path acquired %d shard read locks, want 0", got)
	}

	lv := c.LockedView()
	lv.Close()
	if got := LockReadAcquisitions() - before; got != uint64(c.Shards()) {
		t.Fatalf("LockedView acquired %d shard read locks, want %d", got, c.Shards())
	}
}
