package catalog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Durability: every mutation appends one JSON-lines record to its home
// shard's WAL in the catalog directory (wal.jsonl for a single-shard
// catalog, wal-<i>.jsonl per shard otherwise); Snapshot() compacts the
// full merged state into snapshot.json and truncates every log. Open
// replays snapshot + logs, so a crash between append and response
// loses at most the in-flight operation. catalog-meta.json pins the
// shard count a directory was created with — the on-disk count always
// wins over Options.Shards on reopen, because each record must replay
// against the same routing that wrote it.

type opKind string

const (
	opType           opKind = "type"
	opDataset        opKind = "dataset"
	opTransformation opKind = "transformation"
	opDerivation     opKind = "derivation"
	opInvocation     opKind = "invocation"
	opReplica        opKind = "replica"
	opRemoveReplica  opKind = "remove-replica"
	opCompat         opKind = "compat"
)

type walRecord struct {
	Op   opKind          `json:"op"`
	Data json.RawMessage `json:"data"`
}

// walEnvelope is the write-side shape of walRecord: Data holds the
// value itself so a record encodes in one pass instead of marshal +
// re-marshal through a RawMessage.
type walEnvelope struct {
	Op   opKind `json:"op"`
	Data any    `json:"data"`
}

type typeRecord struct {
	Dim    int    `json:"dim"`
	Name   string `json:"name"`
	Parent string `json:"parent,omitempty"`
}

type wal struct {
	dir  string
	f    *os.File
	sync bool
	com  *committer // group-commit engine; nil in inline (MaxBatch=1) mode

	// syncDelay models slow stable storage (Options.SyncDelay): an
	// extra wait per commit, taken where the real fsync would block.
	syncDelay time.Duration

	// Inline-mode encode buffer, reused per record; guarded by the
	// shard lock.
	scratch bytes.Buffer
	enc     *json.Encoder

	// Inline-mode sticky durability error, guarded by the shard lock. A
	// failed write can leave a torn record mid-file; appending past it
	// would produce exactly the corrupt-record-followed-by-valid-records
	// shape replay rejects, so the first failure poisons the log —
	// mirroring the group committer's sticky err.
	err error
}

const (
	walFile      = "wal.jsonl"
	snapshotFile = "snapshot.json"
	metaFile     = "catalog-meta.json"
)

// catalogMeta pins on-disk layout facts that must survive reopen.
type catalogMeta struct {
	Shards int `json:"shards"`
	// SnapshotFormat is the codec name Snapshot() writes with
	// (codec.JSONName or codec.BinaryName). Empty in metas written
	// before the codec registry existed; resolved to the requested
	// format (and re-recorded) on first reopen.
	SnapshotFormat string `json:"snapshot_format,omitempty"`
}

// walPath returns shard i's log path under the n-shard layout. A
// single-shard catalog keeps the pre-sharding name so existing
// directories reopen unchanged.
func walPath(dir string, i, n int) string {
	if n == 1 {
		return filepath.Join(dir, walFile)
	}
	return filepath.Join(dir, "wal-"+strconv.Itoa(i)+".jsonl")
}

// Group-commit defaults; see docs/PERF.md.
const (
	// DefaultMaxBatch is the batch-size target that ends the
	// accumulation window early.
	DefaultMaxBatch = 1024
	// DefaultMaxDelay is how long an already-contended batch stays open
	// for stragglers before committing.
	DefaultMaxDelay = 200 * time.Microsecond
)

// Options configure a durable catalog.
type Options struct {
	// Sync forces an fsync before a mutation is acknowledged. Slower but
	// survives OS crashes, not just process crashes. With group commit
	// (the default) concurrent mutations share one fsync per batch.
	Sync bool

	// MaxBatch is the group-commit batch-size target: the accumulation
	// window closes as soon as this many records are pending. A burst
	// arriving while a commit is in flight can still exceed it — the
	// committer always drains the whole queue, which is the batching
	// that makes fsync amortize. 0 means DefaultMaxBatch.
	//
	// MaxBatch == 1 disables group commit entirely: records are written
	// (and fsynced) inline under the shard lock, the pre-group-commit
	// behaviour. Single-writer deployments can use it to shave the last
	// microseconds of commit latency.
	MaxBatch int

	// MaxDelay bounds how long a committer holds a batch open for
	// stragglers once it has seen more than one record (a lone writer
	// never waits). 0 means DefaultMaxDelay; negative disables the
	// window so batches close as fast as the disk allows.
	MaxDelay time.Duration

	// JournalWindow bounds each shard's change journal backing
	// ChangesSince delta exports; callers further behind than any
	// shard's window receive a full export. 0 means
	// DefaultJournalWindow.
	JournalWindow int

	// SyncDelay adds an artificial wait to every WAL commit (after the
	// write and any fsync), modeling stable storage slower than the
	// machine at hand — spinning disks, network filesystems. It is a
	// benchmarking aid (E15 uses it to expose commit-wait overlap
	// across shard WALs on fast local disks); leave it zero in
	// production.
	SyncDelay time.Duration

	// Shards partitions the catalog (clamped to [1, MaxShards]): each
	// shard owns its own lock, WAL file, change journal, and secondary
	// indexes, so concurrent writers on different objects proceed in
	// parallel. 0 means 1. The count is fixed at directory creation
	// (recorded in catalog-meta.json) and the recorded count wins on
	// reopen; a directory holding pre-sharding state without a meta
	// file reopens single-shard.
	Shards int

	// SnapshotFormat names the codec Snapshot() persists with:
	// codec.JSONName (the default when empty) or codec.BinaryName. Like
	// Shards it is pinned in catalog-meta.json once recorded, and the
	// recorded value wins on reopen; metas from before the codec
	// registry adopt the requested format on their first reopen. The
	// read path is self-describing (it loads whichever snapshot file
	// exists), so repinning via a fresh directory converts state on the
	// next Snapshot().
	SnapshotFormat string
}

// normalize resolves zero values to defaults.
func (o Options) normalize() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = DefaultMaxDelay
	} else if o.MaxDelay < 0 {
		o.MaxDelay = 0
	}
	if o.JournalWindow <= 0 {
		o.JournalWindow = DefaultJournalWindow
	}
	if o.SyncDelay < 0 {
		o.SyncDelay = 0
	}
	o.Shards = normalizeShards(o.Shards)
	return o
}

// Open loads (or creates) a durable catalog in dir. The registry seeds
// the type hierarchy for *new* catalogs; reopened catalogs restore
// their persisted registry and merge the seed into it.
func Open(dir string, seed *dtype.Registry, opts Options) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: open: %w", err)
	}
	opts = opts.normalize()

	// Resolve the layout pins: the directory's recorded shard count and
	// snapshot format win, a pre-sharding directory (data but no meta)
	// is single-shard, and a fresh directory records what was requested.
	format, err := normalizeSnapshotFormat(opts.SnapshotFormat)
	if err != nil {
		return nil, err
	}
	shards := opts.Shards
	metaPath := filepath.Join(dir, metaFile)
	if data, err := os.ReadFile(metaPath); err == nil {
		var meta catalogMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, fmt.Errorf("catalog: meta %s: %w", metaPath, err)
		}
		shards = normalizeShards(meta.Shards)
		if meta.SnapshotFormat != "" {
			if format, err = normalizeSnapshotFormat(meta.SnapshotFormat); err != nil {
				return nil, err
			}
		} else {
			// Pre-codec meta: adopt the requested format and pin it.
			if err := writeMeta(dir, catalogMeta{Shards: shards, SnapshotFormat: format}); err != nil {
				return nil, err
			}
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if _, serr := os.Stat(filepath.Join(dir, walFile)); serr == nil {
			shards = 1
		} else if _, serr := os.Stat(filepath.Join(dir, snapshotFile)); serr == nil {
			shards = 1
		}
		if err := writeMeta(dir, catalogMeta{Shards: shards, SnapshotFormat: format}); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("catalog: meta: %w", err)
	}

	c := NewSharded(dtype.NewRegistry(), shards)
	c.dir = dir
	c.snapFormat = format
	for _, s := range c.shards {
		s.jwindow = opts.JournalWindow
	}
	if seed != nil {
		if err := c.types.Merge(seed); err != nil {
			return nil, err
		}
	}

	if err := c.loadSnapshot(dir); err != nil {
		return nil, err
	}

	// Replay every shard's log. A record replays against the shard
	// layout that wrote it (meta pins the count), so each object lands
	// back on its home shard; only derivations can reference state in
	// *another* shard's log (their transformation), so unresolvable
	// ones are deferred until every log is in.
	var deferred []schema.Derivation
	for i := range c.shards {
		path := walPath(dir, i, shards)
		if f, err := os.Open(path); err == nil {
			err = c.replay(f, &deferred)
			f.Close()
			if err != nil {
				return nil, err
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("catalog: wal: %w", err)
		}
	}
	if err := c.replayDeferred(deferred); err != nil {
		return nil, err
	}

	for i, s := range c.shards {
		f, err := os.OpenFile(walPath(dir, i, shards), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("catalog: wal: %w", err)
		}
		w := &wal{dir: dir, f: f, sync: opts.Sync, syncDelay: opts.SyncDelay}
		if opts.MaxBatch > 1 {
			w.com = newCommitter(f, opts.Sync, opts.MaxBatch, opts.MaxDelay)
			w.com.syncDelay = opts.SyncDelay
			w.com.setShardMetrics(strconv.Itoa(i))
		} else {
			w.enc = json.NewEncoder(&w.scratch)
		}
		s.wal = w
	}
	// Expose the restored state to the lock-free read path: one epoch
	// publication per shard covering the whole replay.
	c.publishAll()
	return c, nil
}

// Close drains every shard's group committer, makes the logs durable,
// and closes them. The catalog remains usable in memory but further
// mutations are not persisted.
func (c *Catalog) Close() error {
	set := c.allSet()
	c.lockSet(set)
	defer c.unlockSet(set)
	var firstErr error
	for _, s := range c.shards {
		if s.wal == nil {
			continue
		}
		w := s.wal
		s.wal = nil
		if w.com != nil {
			if err := w.com.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if w.sync && firstErr == nil {
			// A clean shutdown must be as durable as every acknowledged
			// mutation: fsync before the descriptor goes away.
			if err := w.f.Sync(); err != nil {
				firstErr = fmt.Errorf("catalog: wal close sync: %w", err)
			}
		}
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DurabilityErr reports the first shard WAL's sticky failure, if any:
// non-nil once a WAL write or fsync has failed (batched or inline),
// after which every further mutation on that shard is rejected.
// In-memory catalogs always return nil.
func (c *Catalog) DurabilityErr() error {
	for _, s := range c.shards {
		s.mu.RLock()
		var err error
		if s.wal != nil {
			if s.wal.com != nil {
				err = s.wal.com.failure()
			} else {
				err = s.wal.err
			}
		}
		s.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// logOp records one operation in the shard's WAL. Callers hold s.mu.
// With the group committer the record is only enqueued here;
// Catalog.mutate waits for its batch off-lock. In inline mode the
// record is written (and fsynced) immediately, under the lock.
func (s *cshard) logOp(op opKind, v any) error {
	if s.wal == nil {
		return nil
	}
	if s.wal.com != nil {
		seq, err := s.wal.com.enqueue(op, v)
		if err != nil {
			return err
		}
		s.pendingSeq = seq
		return nil
	}
	return s.wal.append(op, v)
}

// append writes one record synchronously: the inline (MaxBatch=1)
// path. The scratch buffer is reused across records, so the only
// allocation is whatever the JSON encoder needs for the value itself.
// The first write/fsync failure poisons the log (see wal.err); encode
// failures do not, since nothing reached the file.
func (w *wal) append(op opKind, v any) error {
	if w.err != nil {
		return w.err
	}
	start := time.Now()
	w.scratch.Reset()
	if err := w.enc.Encode(walEnvelope{Op: op, Data: v}); err != nil {
		return fmt.Errorf("catalog: wal encode: %w", err)
	}
	if _, err := w.f.Write(w.scratch.Bytes()); err != nil {
		w.err = fmt.Errorf("%w: wal append: %v", ErrDurability, err)
		return w.err
	}
	metricWALAppend.ObserveSince(start)
	if w.sync {
		fsyncStart := time.Now()
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("%w: wal sync: %v", ErrDurability, err)
			return w.err
		}
		metricWALFsync.ObserveSince(fsyncStart)
	}
	if w.syncDelay > 0 {
		time.Sleep(w.syncDelay)
	}
	return nil
}

// replay applies one shard log's records to the in-memory state. Only
// a truncated *final* line (torn write during a crash) is tolerated; a
// corrupt record followed by further records means the log itself is
// damaged, and silently dropping the tail would lose acknowledged
// state.
func (c *Catalog) replay(r io.Reader, deferred *[]schema.Derivation) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine := lineNo
			for sc.Scan() {
				lineNo++
				if len(sc.Bytes()) != 0 {
					return fmt.Errorf("catalog: replay: corrupt record at line %d (%v) followed by %d more line(s)", badLine, err, lineNo-badLine)
				}
			}
			// Torn tail record: ignore it, the write was never acked.
			return sc.Err()
		}
		if err := c.apply(rec, deferred); err != nil {
			return fmt.Errorf("catalog: replay: %w", err)
		}
	}
	return sc.Err()
}

// replayDeferred retries derivations whose transformations lived in a
// shard log that had not been replayed yet when they were first seen.
// Rounds repeat until a round makes no progress; whatever remains
// cites a transformation that exists in no log, which is real
// corruption, not ordering.
func (c *Catalog) replayDeferred(deferred []schema.Derivation) error {
	for len(deferred) > 0 {
		var still []schema.Derivation
		var firstErr error
		for _, dv := range deferred {
			tr, err := c.shardOfTR(dv.TR).transformationLocked(dv.TR)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("catalog: replay: derivation %s: %w", dv.ID, err)
				}
				still = append(still, dv)
				continue
			}
			c.indexDerivation(dv, tr)
		}
		if len(still) == len(deferred) {
			return firstErr
		}
		deferred = still
	}
	return nil
}

// apply replays one record directly onto the maps and indexes, without
// re-validation (records were validated before being logged) and
// without re-logging. Routing mirrors the original mutation: each
// record was logged to its object's home shard, and the put helpers
// route it back there.
func (c *Catalog) apply(rec walRecord, deferred *[]schema.Derivation) error {
	switch rec.Op {
	case opType:
		var t typeRecord
		if err := json.Unmarshal(rec.Data, &t); err != nil {
			return err
		}
		c.shards[0].apply(func(*shardState) {}) // ver bump: conformance answers change
		c.shards[0].noteJournal(c, jTypes, "", false)
		return c.types.Register(dtype.Dimension(t.Dim), t.Name, t.Parent)
	case opDataset:
		var ds schema.Dataset
		if err := json.Unmarshal(rec.Data, &ds); err != nil {
			return err
		}
		c.putDataset(ds)
	case opTransformation:
		var tr schema.Transformation
		if err := json.Unmarshal(rec.Data, &tr); err != nil {
			return err
		}
		c.putTransformation(tr)
	case opDerivation:
		var dv schema.Derivation
		if err := json.Unmarshal(rec.Data, &dv); err != nil {
			return err
		}
		tr, err := c.shardOfTR(dv.TR).transformationLocked(dv.TR)
		if err != nil {
			if deferred != nil {
				// The transformation may live in a log not yet replayed;
				// retry after all shards are in (replayDeferred).
				*deferred = append(*deferred, dv)
				return nil
			}
			return fmt.Errorf("derivation %s: %w", dv.ID, err)
		}
		c.indexDerivation(dv, tr)
	case opInvocation:
		var iv schema.Invocation
		if err := json.Unmarshal(rec.Data, &iv); err != nil {
			return err
		}
		c.putInvocation(iv)
	case opReplica:
		var r schema.Replica
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		// A re-logged replica (e.g. epoch re-stamp) updates in place.
		c.putReplica(r)
	case opRemoveReplica:
		var id string
		if err := json.Unmarshal(rec.Data, &id); err != nil {
			return err
		}
		c.dropReplica(id)
	case opCompat:
		var a schema.CompatibilityAssertion
		if err := json.Unmarshal(rec.Data, &a); err != nil {
			return err
		}
		c.shards[0].apply(func(st *shardState) { st.compat = append(st.compat, a) })
		c.shards[0].noteJournal(c, jCompat, "", false)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// Export is the full-state serialization used for snapshots and for
// shipping catalog contents between services.
type Export struct {
	Types           *dtype.Registry                 `json:"types"`
	Datasets        []schema.Dataset                `json:"datasets,omitempty"`
	Transformations []schema.Transformation         `json:"transformations,omitempty"`
	Derivations     []schema.Derivation             `json:"derivations,omitempty"`
	Invocations     []schema.Invocation             `json:"invocations,omitempty"`
	Replicas        []schema.Replica                `json:"replicas,omitempty"`
	Compat          []schema.CompatibilityAssertion `json:"compat,omitempty"`
}

// Export captures the catalog's full state: the per-shard published
// epochs, merged with a deterministic sort, so the result is identical
// no matter how the objects were distributed. The read is lock-free
// (see published.go); a caller that needs the ordered write-side
// snapshot instead — Snapshot() does, under all write locks — uses
// exportAllLocked.
func (c *Catalog) Export() Export {
	v := c.View()
	defer v.Close()
	return v.Export()
}

// Export serializes the view's full state. For epoch views the
// (instance, seqs) from Stamp() is the cursor the export is consistent
// at, per shard.
func (v *View) Export() Export {
	return exportStates(v.c.types.Clone(), v.states)
}

// Sort orders every object slice by its identity, the canonical order
// Export() itself produces. Callers assembling an Export by hand (e.g.
// a federation shard reconstructing member state from deltas) use it so
// downstream merges stay deterministic.
func (exp *Export) Sort() { sortExport(exp) }

func sortExport(exp *Export) {
	sort.Slice(exp.Datasets, func(i, j int) bool { return exp.Datasets[i].Name < exp.Datasets[j].Name })
	sort.Slice(exp.Transformations, func(i, j int) bool { return exp.Transformations[i].Ref() < exp.Transformations[j].Ref() })
	sort.Slice(exp.Derivations, func(i, j int) bool { return exp.Derivations[i].ID < exp.Derivations[j].ID })
	sort.Slice(exp.Invocations, func(i, j int) bool { return exp.Invocations[i].ID < exp.Invocations[j].ID })
	sort.Slice(exp.Replicas, func(i, j int) bool { return exp.Replicas[i].ID < exp.Replicas[j].ID })
}

// applyExport loads an export into an empty catalog. Transformations
// land before derivations, so cross-shard references resolve without
// deferral.
func (c *Catalog) applyExport(exp Export) error {
	if exp.Types != nil {
		if err := c.types.Merge(exp.Types); err != nil {
			return err
		}
		c.shards[0].apply(func(*shardState) {}) // ver bump: conformance answers change
		c.shards[0].noteJournal(c, jTypes, "", false)
	}
	for _, ds := range exp.Datasets {
		c.putDataset(ds)
	}
	for _, tr := range exp.Transformations {
		c.putTransformation(tr)
	}
	for _, dv := range exp.Derivations {
		tr, err := c.shardOfTR(dv.TR).transformationLocked(dv.TR)
		if err != nil {
			return fmt.Errorf("catalog: import derivation %s: %w", dv.ID, err)
		}
		c.indexDerivation(dv, tr)
	}
	for _, iv := range exp.Invocations {
		c.putInvocation(iv)
	}
	for _, r := range exp.Replicas {
		if _, ok := c.shardOf(r.Dataset).replicas[r.ID]; !ok {
			c.putReplica(r)
		}
	}
	if len(exp.Compat) > 0 {
		c.shards[0].apply(func(st *shardState) { st.compat = append(st.compat, exp.Compat...) })
		c.shards[0].noteJournal(c, jCompat, "", false)
	}
	return nil
}

// ImportTolerant merges an export, skipping objects that conflict with
// existing state (and anything depending on them) instead of aborting.
// It returns the number of skipped objects. Federated indexes use it so
// one overlapping definition does not hide a whole member catalog.
func (c *Catalog) ImportTolerant(exp Export) int {
	skipped := 0
	tolerate := func(err error) {
		if err != nil && !errors.Is(err, ErrDuplicate) {
			skipped++
		}
	}
	if exp.Types != nil {
		// Best-effort merge; conflicting names keep their first parent.
		// Run under the mutation lock so the journal (and concurrent
		// readers of the registry) see a consistent update.
		_ = c.mutate(shardSet(0).with(0), func() error {
			_ = c.types.Merge(exp.Types)
			c.shards[0].apply(func(*shardState) {}) // ver bump: conformance answers change
			c.shards[0].noteJournal(c, jTypes, "", false)
			return nil
		})
	}
	for _, tr := range exp.Transformations {
		tolerate(c.AddTransformation(tr))
	}
	for _, ds := range exp.Datasets {
		ds.CreatedBy = ""
		if err := c.AddDataset(ds); err != nil && !errors.Is(err, ErrExists) {
			skipped++
		}
	}
	for _, dv := range exp.Derivations {
		if _, err := c.AddDerivation(dv); err != nil && !errors.Is(err, ErrDuplicate) {
			skipped++
		}
	}
	for _, iv := range exp.Invocations {
		if err := c.AddInvocation(iv); err != nil && !errors.Is(err, ErrExists) {
			skipped++
		}
	}
	for _, r := range exp.Replicas {
		if err := c.AddReplica(r); err != nil && !errors.Is(err, ErrExists) {
			skipped++
		}
	}
	for _, a := range exp.Compat {
		if err := c.AssertCompatibility(a); err != nil {
			skipped++
		}
	}
	return skipped
}

// Import merges an export into the catalog, validating and logging each
// object through the public mutation paths. Duplicate derivations are
// skipped silently; other conflicts abort with an error.
func (c *Catalog) Import(exp Export) error {
	if exp.Types != nil {
		for _, d := range dtype.Dimensions() {
			// Parents must register before children: order by depth.
			names := exp.Types.Names(d)
			sort.Slice(names, func(i, j int) bool {
				di, dj := exp.Types.Depth(d, names[i]), exp.Types.Depth(d, names[j])
				if di != dj {
					return di < dj
				}
				return names[i] < names[j]
			})
			for _, name := range names {
				anc := exp.Types.Ancestors(d, name)
				parent := ""
				if len(anc) > 0 {
					parent = anc[0]
				}
				if err := c.DefineType(d, name, parent); err != nil {
					return err
				}
			}
		}
	}
	for _, tr := range exp.Transformations {
		if err := c.AddTransformation(tr); err != nil {
			return err
		}
	}
	for _, ds := range exp.Datasets {
		if ds.CreatedBy != "" {
			// Producer linkage is re-established by AddDerivation below.
			ds.CreatedBy = ""
		}
		if err := c.AddDataset(ds); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	for _, dv := range exp.Derivations {
		if _, err := c.AddDerivation(dv); err != nil && !errors.Is(err, ErrDuplicate) {
			return err
		}
	}
	for _, iv := range exp.Invocations {
		if err := c.AddInvocation(iv); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	for _, r := range exp.Replicas {
		if err := c.AddReplica(r); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	for _, a := range exp.Compat {
		if err := c.AssertCompatibility(a); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot compacts the durable state: the full merged catalog is
// written to snapshot.json and every shard's WAL truncated, all under
// every shard's write lock so the snapshot is one consistent cut
// across shards. No-op for in-memory catalogs.
func (c *Catalog) Snapshot() error {
	set := c.allSet()
	c.lockSet(set)
	defer c.unlockSet(set)
	if c.shards[0].wal == nil {
		return nil
	}
	opSnapshot.Inc()
	defer metricSnapshot.ObserveSince(time.Now())
	exp := c.exportAllLocked()
	if err := c.writeSnapshotLocked(&exp); err != nil {
		return err
	}
	// Quiesce each committer (every shard lock is held, so no queue can
	// grow), then truncate the logs now that the snapshot covers them.
	for _, s := range c.shards {
		if s.wal == nil {
			continue
		}
		if s.wal.com != nil {
			if err := s.wal.com.flush(); err != nil {
				return err
			}
		}
		if err := s.wal.f.Truncate(0); err != nil {
			return err
		}
		if _, err := s.wal.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	return nil
}

// exportAllLocked merges every shard's write-side state into one sorted
// Export. Callers hold every shard's lock (read or write).
func (c *Catalog) exportAllLocked() Export {
	states := make([]*shardState, len(c.shards))
	for i, s := range c.shards {
		states[i] = s.shardState
	}
	return exportStates(c.types.Clone(), states)
}

// exportStates merges shard states into one sorted Export; the shared
// body of the locked (write-side) and epoch (published-side) exports.
func exportStates(types *dtype.Registry, states []*shardState) Export {
	exp := Export{Types: types}
	for _, st := range states {
		for _, ds := range st.datasets {
			exp.Datasets = append(exp.Datasets, ds)
		}
		for _, tr := range st.transformations {
			exp.Transformations = append(exp.Transformations, tr)
		}
		for _, dv := range st.derivations {
			exp.Derivations = append(exp.Derivations, dv)
		}
		for _, iv := range st.invocations {
			exp.Invocations = append(exp.Invocations, iv)
		}
		for _, r := range st.replicas {
			exp.Replicas = append(exp.Replicas, r)
		}
	}
	exp.Compat = append([]schema.CompatibilityAssertion(nil), states[0].compat...)
	sortExport(&exp)
	return exp
}
