package catalog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Durability: every mutation appends one JSON-lines record to wal.jsonl
// in the catalog directory; Snapshot() compacts the full state into
// snapshot.json and truncates the log. Open replays snapshot + log, so
// a crash between append and response loses at most the in-flight
// operation.

type opKind string

const (
	opType           opKind = "type"
	opDataset        opKind = "dataset"
	opTransformation opKind = "transformation"
	opDerivation     opKind = "derivation"
	opInvocation     opKind = "invocation"
	opReplica        opKind = "replica"
	opRemoveReplica  opKind = "remove-replica"
	opCompat         opKind = "compat"
)

type walRecord struct {
	Op   opKind          `json:"op"`
	Data json.RawMessage `json:"data"`
}

// walEnvelope is the write-side shape of walRecord: Data holds the
// value itself so a record encodes in one pass instead of marshal +
// re-marshal through a RawMessage.
type walEnvelope struct {
	Op   opKind `json:"op"`
	Data any    `json:"data"`
}

type typeRecord struct {
	Dim    int    `json:"dim"`
	Name   string `json:"name"`
	Parent string `json:"parent,omitempty"`
}

type wal struct {
	dir  string
	f    *os.File
	sync bool
	com  *committer // group-commit engine; nil in inline (MaxBatch=1) mode

	// Inline-mode encode buffer, reused per record; guarded by c.mu.
	scratch bytes.Buffer
	enc     *json.Encoder

	// Inline-mode sticky durability error, guarded by c.mu. A failed
	// write can leave a torn record mid-file; appending past it would
	// produce exactly the corrupt-record-followed-by-valid-records shape
	// replay rejects, so the first failure poisons the log — mirroring
	// the group committer's sticky err.
	err error
}

const (
	walFile      = "wal.jsonl"
	snapshotFile = "snapshot.json"
)

// Group-commit defaults; see docs/PERF.md.
const (
	// DefaultMaxBatch is the batch-size target that ends the
	// accumulation window early.
	DefaultMaxBatch = 1024
	// DefaultMaxDelay is how long an already-contended batch stays open
	// for stragglers before committing.
	DefaultMaxDelay = 200 * time.Microsecond
)

// Options configure a durable catalog.
type Options struct {
	// Sync forces an fsync before a mutation is acknowledged. Slower but
	// survives OS crashes, not just process crashes. With group commit
	// (the default) concurrent mutations share one fsync per batch.
	Sync bool

	// MaxBatch is the group-commit batch-size target: the accumulation
	// window closes as soon as this many records are pending. A burst
	// arriving while a commit is in flight can still exceed it — the
	// committer always drains the whole queue, which is the batching
	// that makes fsync amortize. 0 means DefaultMaxBatch.
	//
	// MaxBatch == 1 disables group commit entirely: records are written
	// (and fsynced) inline under the catalog lock, the
	// pre-group-commit behaviour. Single-writer deployments can use it
	// to shave the last microseconds of commit latency.
	MaxBatch int

	// MaxDelay bounds how long the committer holds a batch open for
	// stragglers once it has seen more than one record (a lone writer
	// never waits). 0 means DefaultMaxDelay; negative disables the
	// window so batches close as fast as the disk allows.
	MaxDelay time.Duration

	// JournalWindow bounds the change journal backing ChangesSince
	// delta exports; callers further behind than the window receive a
	// full export. 0 means DefaultJournalWindow.
	JournalWindow int
}

// normalize resolves zero values to defaults.
func (o Options) normalize() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = DefaultMaxDelay
	} else if o.MaxDelay < 0 {
		o.MaxDelay = 0
	}
	if o.JournalWindow <= 0 {
		o.JournalWindow = DefaultJournalWindow
	}
	return o
}

// Open loads (or creates) a durable catalog in dir. The registry seeds
// the type hierarchy for *new* catalogs; reopened catalogs restore
// their persisted registry and merge the seed into it.
func Open(dir string, seed *dtype.Registry, opts Options) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: open: %w", err)
	}
	c := New(dtype.NewRegistry())
	opts = opts.normalize()
	c.jwindow = opts.JournalWindow
	if seed != nil {
		if err := c.types.Merge(seed); err != nil {
			return nil, err
		}
	}

	snapPath := filepath.Join(dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		var exp Export
		if err := json.Unmarshal(data, &exp); err != nil {
			return nil, fmt.Errorf("catalog: snapshot %s: %w", snapPath, err)
		}
		if err := c.applyExport(exp); err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("catalog: snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walFile)
	if f, err := os.Open(walPath); err == nil {
		err = c.replay(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("catalog: wal: %w", err)
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: wal: %w", err)
	}
	w := &wal{dir: dir, f: f, sync: opts.Sync}
	if opts.MaxBatch > 1 {
		w.com = newCommitter(f, opts.Sync, opts.MaxBatch, opts.MaxDelay)
	} else {
		w.enc = json.NewEncoder(&w.scratch)
	}
	c.wal = w
	return c, nil
}

// Close drains the group committer, makes the log durable, and closes
// it. The catalog remains usable in memory but further mutations are
// not persisted.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal == nil {
		return nil
	}
	w := c.wal
	c.wal = nil
	var firstErr error
	if w.com != nil {
		if err := w.com.close(); err != nil {
			firstErr = err
		}
	}
	if w.sync && firstErr == nil {
		// A clean shutdown must be as durable as every acknowledged
		// mutation: fsync before the descriptor goes away.
		if err := w.f.Sync(); err != nil {
			firstErr = fmt.Errorf("catalog: wal close sync: %w", err)
		}
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// DurabilityErr reports the WAL's sticky failure, if any: non-nil once
// a WAL write or fsync has failed (batched or inline), after which
// every further mutation is rejected. In-memory catalogs always
// return nil.
func (c *Catalog) DurabilityErr() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.wal == nil {
		return nil
	}
	if c.wal.com != nil {
		return c.wal.com.failure()
	}
	return c.wal.err
}

// logOp records one operation in the WAL. Callers hold c.mu. With the
// group committer the record is only enqueued here; Catalog.mutate
// waits for its batch off-lock. In inline mode the record is written
// (and fsynced) immediately, under the lock.
func (c *Catalog) logOp(op opKind, v any) error {
	if c.wal == nil {
		return nil
	}
	if c.wal.com != nil {
		seq, err := c.wal.com.enqueue(op, v)
		if err != nil {
			return err
		}
		c.pendingSeq = seq
		return nil
	}
	return c.wal.append(op, v)
}

// append writes one record synchronously: the inline (MaxBatch=1)
// path. The scratch buffer is reused across records, so the only
// allocation is whatever the JSON encoder needs for the value itself.
// The first write/fsync failure poisons the log (see wal.err); encode
// failures do not, since nothing reached the file.
func (w *wal) append(op opKind, v any) error {
	if w.err != nil {
		return w.err
	}
	start := time.Now()
	w.scratch.Reset()
	if err := w.enc.Encode(walEnvelope{Op: op, Data: v}); err != nil {
		return fmt.Errorf("catalog: wal encode: %w", err)
	}
	if _, err := w.f.Write(w.scratch.Bytes()); err != nil {
		w.err = fmt.Errorf("%w: wal append: %v", ErrDurability, err)
		return w.err
	}
	metricWALAppend.ObserveSince(start)
	if w.sync {
		fsyncStart := time.Now()
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("%w: wal sync: %v", ErrDurability, err)
			return w.err
		}
		metricWALFsync.ObserveSince(fsyncStart)
	}
	return nil
}

// replay applies WAL records to the in-memory state. Only a truncated
// *final* line (torn write during a crash) is tolerated; a corrupt
// record followed by further records means the log itself is damaged,
// and silently dropping the tail would lose acknowledged state.
func (c *Catalog) replay(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine := lineNo
			for sc.Scan() {
				lineNo++
				if len(sc.Bytes()) != 0 {
					return fmt.Errorf("catalog: replay: corrupt record at line %d (%v) followed by %d more line(s)", badLine, err, lineNo-badLine)
				}
			}
			// Torn tail record: ignore it, the write was never acked.
			return sc.Err()
		}
		if err := c.apply(rec); err != nil {
			return fmt.Errorf("catalog: replay: %w", err)
		}
	}
	return sc.Err()
}

// apply replays one record directly onto the maps and indexes, without
// re-validation (records were validated before being logged) and
// without re-logging.
func (c *Catalog) apply(rec walRecord) error {
	switch rec.Op {
	case opType:
		var t typeRecord
		if err := json.Unmarshal(rec.Data, &t); err != nil {
			return err
		}
		c.noteJournal(jTypes, "", false)
		return c.types.Register(dtype.Dimension(t.Dim), t.Name, t.Parent)
	case opDataset:
		var ds schema.Dataset
		if err := json.Unmarshal(rec.Data, &ds); err != nil {
			return err
		}
		c.putDataset(ds)
	case opTransformation:
		var tr schema.Transformation
		if err := json.Unmarshal(rec.Data, &tr); err != nil {
			return err
		}
		c.putTransformation(tr)
	case opDerivation:
		var dv schema.Derivation
		if err := json.Unmarshal(rec.Data, &dv); err != nil {
			return err
		}
		tr, err := c.transformationLocked(dv.TR)
		if err != nil {
			return fmt.Errorf("derivation %s: %w", dv.ID, err)
		}
		c.indexDerivation(dv, tr)
	case opInvocation:
		var iv schema.Invocation
		if err := json.Unmarshal(rec.Data, &iv); err != nil {
			return err
		}
		c.putInvocation(iv)
	case opReplica:
		var r schema.Replica
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		// A re-logged replica (e.g. epoch re-stamp) updates in place.
		c.putReplica(r)
	case opRemoveReplica:
		var id string
		if err := json.Unmarshal(rec.Data, &id); err != nil {
			return err
		}
		c.dropReplica(id)
	case opCompat:
		var a schema.CompatibilityAssertion
		if err := json.Unmarshal(rec.Data, &a); err != nil {
			return err
		}
		c.compat = append(c.compat, a)
		c.noteJournal(jCompat, "", false)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// Export is the full-state serialization used for snapshots and for
// shipping catalog contents between services.
type Export struct {
	Types           *dtype.Registry                 `json:"types"`
	Datasets        []schema.Dataset                `json:"datasets,omitempty"`
	Transformations []schema.Transformation         `json:"transformations,omitempty"`
	Derivations     []schema.Derivation             `json:"derivations,omitempty"`
	Invocations     []schema.Invocation             `json:"invocations,omitempty"`
	Replicas        []schema.Replica                `json:"replicas,omitempty"`
	Compat          []schema.CompatibilityAssertion `json:"compat,omitempty"`
}

// Export captures the catalog's full state.
func (c *Catalog) Export() Export {
	c.mu.RLock()
	defer c.mu.RUnlock()
	exp := Export{Types: c.types.Clone()}
	exp.Datasets = make([]schema.Dataset, 0, len(c.datasets))
	for _, ds := range c.datasets {
		exp.Datasets = append(exp.Datasets, ds)
	}
	exp.Transformations = make([]schema.Transformation, 0, len(c.transformations))
	for _, tr := range c.transformations {
		exp.Transformations = append(exp.Transformations, tr)
	}
	exp.Derivations = make([]schema.Derivation, 0, len(c.derivations))
	for _, dv := range c.derivations {
		exp.Derivations = append(exp.Derivations, dv)
	}
	exp.Invocations = make([]schema.Invocation, 0, len(c.invocations))
	for _, iv := range c.invocations {
		exp.Invocations = append(exp.Invocations, iv)
	}
	exp.Replicas = make([]schema.Replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		exp.Replicas = append(exp.Replicas, r)
	}
	exp.Compat = append([]schema.CompatibilityAssertion(nil), c.compat...)
	sortExport(&exp)
	return exp
}

// Sort orders every object slice by its identity, the canonical order
// Export() itself produces. Callers assembling an Export by hand (e.g.
// a federation shard reconstructing member state from deltas) use it so
// downstream merges stay deterministic.
func (exp *Export) Sort() { sortExport(exp) }

func sortExport(exp *Export) {
	sort.Slice(exp.Datasets, func(i, j int) bool { return exp.Datasets[i].Name < exp.Datasets[j].Name })
	sort.Slice(exp.Transformations, func(i, j int) bool { return exp.Transformations[i].Ref() < exp.Transformations[j].Ref() })
	sort.Slice(exp.Derivations, func(i, j int) bool { return exp.Derivations[i].ID < exp.Derivations[j].ID })
	sort.Slice(exp.Invocations, func(i, j int) bool { return exp.Invocations[i].ID < exp.Invocations[j].ID })
	sort.Slice(exp.Replicas, func(i, j int) bool { return exp.Replicas[i].ID < exp.Replicas[j].ID })
}

// applyExport loads an export into an empty catalog.
func (c *Catalog) applyExport(exp Export) error {
	if exp.Types != nil {
		if err := c.types.Merge(exp.Types); err != nil {
			return err
		}
		c.noteJournal(jTypes, "", false)
	}
	for _, ds := range exp.Datasets {
		c.putDataset(ds)
	}
	for _, tr := range exp.Transformations {
		c.putTransformation(tr)
	}
	for _, dv := range exp.Derivations {
		tr, err := c.transformationLocked(dv.TR)
		if err != nil {
			return fmt.Errorf("catalog: import derivation %s: %w", dv.ID, err)
		}
		c.indexDerivation(dv, tr)
	}
	for _, iv := range exp.Invocations {
		c.putInvocation(iv)
	}
	for _, r := range exp.Replicas {
		if _, ok := c.replicas[r.ID]; !ok {
			c.putReplica(r)
		}
	}
	if len(exp.Compat) > 0 {
		c.compat = append(c.compat, exp.Compat...)
		c.noteJournal(jCompat, "", false)
	}
	return nil
}

// ImportTolerant merges an export, skipping objects that conflict with
// existing state (and anything depending on them) instead of aborting.
// It returns the number of skipped objects. Federated indexes use it so
// one overlapping definition does not hide a whole member catalog.
func (c *Catalog) ImportTolerant(exp Export) int {
	skipped := 0
	tolerate := func(err error) {
		if err != nil && !errors.Is(err, ErrDuplicate) {
			skipped++
		}
	}
	if exp.Types != nil {
		// Best-effort merge; conflicting names keep their first parent.
		// Run under the mutation lock so the journal (and concurrent
		// readers of the registry) see a consistent update.
		_ = c.mutate(func() error {
			_ = c.types.Merge(exp.Types)
			c.noteJournal(jTypes, "", false)
			return nil
		})
	}
	for _, tr := range exp.Transformations {
		tolerate(c.AddTransformation(tr))
	}
	for _, ds := range exp.Datasets {
		ds.CreatedBy = ""
		if err := c.AddDataset(ds); err != nil && !errors.Is(err, ErrExists) {
			skipped++
		}
	}
	for _, dv := range exp.Derivations {
		if _, err := c.AddDerivation(dv); err != nil && !errors.Is(err, ErrDuplicate) {
			skipped++
		}
	}
	for _, iv := range exp.Invocations {
		if err := c.AddInvocation(iv); err != nil && !errors.Is(err, ErrExists) {
			skipped++
		}
	}
	for _, r := range exp.Replicas {
		if err := c.AddReplica(r); err != nil && !errors.Is(err, ErrExists) {
			skipped++
		}
	}
	for _, a := range exp.Compat {
		if err := c.AssertCompatibility(a); err != nil {
			skipped++
		}
	}
	return skipped
}

// Import merges an export into the catalog, validating and logging each
// object through the public mutation paths. Duplicate derivations are
// skipped silently; other conflicts abort with an error.
func (c *Catalog) Import(exp Export) error {
	if exp.Types != nil {
		for _, d := range dtype.Dimensions() {
			// Parents must register before children: order by depth.
			names := exp.Types.Names(d)
			sort.Slice(names, func(i, j int) bool {
				di, dj := exp.Types.Depth(d, names[i]), exp.Types.Depth(d, names[j])
				if di != dj {
					return di < dj
				}
				return names[i] < names[j]
			})
			for _, name := range names {
				anc := exp.Types.Ancestors(d, name)
				parent := ""
				if len(anc) > 0 {
					parent = anc[0]
				}
				if err := c.DefineType(d, name, parent); err != nil {
					return err
				}
			}
		}
	}
	for _, tr := range exp.Transformations {
		if err := c.AddTransformation(tr); err != nil {
			return err
		}
	}
	for _, ds := range exp.Datasets {
		if ds.CreatedBy != "" {
			// Producer linkage is re-established by AddDerivation below.
			ds.CreatedBy = ""
		}
		if err := c.AddDataset(ds); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	for _, dv := range exp.Derivations {
		if _, err := c.AddDerivation(dv); err != nil && !errors.Is(err, ErrDuplicate) {
			return err
		}
	}
	for _, iv := range exp.Invocations {
		if err := c.AddInvocation(iv); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	for _, r := range exp.Replicas {
		if err := c.AddReplica(r); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	for _, a := range exp.Compat {
		if err := c.AssertCompatibility(a); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot compacts the durable state: the full catalog is written to
// snapshot.json and the WAL truncated. No-op for in-memory catalogs.
func (c *Catalog) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal == nil {
		return nil
	}
	opSnapshot.Inc()
	defer metricSnapshot.ObserveSince(time.Now())
	exp := c.exportLocked()
	data, err := json.Marshal(exp)
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.wal.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(c.wal.dir, snapshotFile)); err != nil {
		return err
	}
	// Quiesce the committer (c.mu is held, so the queue cannot grow),
	// then truncate the log now that the snapshot covers it.
	if c.wal.com != nil {
		if err := c.wal.com.flush(); err != nil {
			return err
		}
	}
	if err := c.wal.f.Truncate(0); err != nil {
		return err
	}
	if _, err := c.wal.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// exportLocked is Export with c.mu already held.
func (c *Catalog) exportLocked() Export {
	exp := Export{Types: c.types.Clone()}
	for _, ds := range c.datasets {
		exp.Datasets = append(exp.Datasets, ds)
	}
	for _, tr := range c.transformations {
		exp.Transformations = append(exp.Transformations, tr)
	}
	for _, dv := range c.derivations {
		exp.Derivations = append(exp.Derivations, dv)
	}
	for _, iv := range c.invocations {
		exp.Invocations = append(exp.Invocations, iv)
	}
	for _, r := range c.replicas {
		exp.Replicas = append(exp.Replicas, r)
	}
	exp.Compat = append([]schema.CompatibilityAssertion(nil), c.compat...)
	sortExport(&exp)
	return exp
}
