package catalog

import (
	"fmt"
	"os"
	"testing"

	"chimera/internal/schema"
)

func jds(name string) schema.Dataset { return schema.Dataset{Name: name} }

func applyDelta(t *testing.T, base *Catalog, d Delta) *Catalog {
	t.Helper()
	// Reconstruct the follower state a federation shard would hold:
	// replay full or incremental content onto base.
	if d.Full {
		base = New(nil)
	}
	if err := base.Import(d.Export); err != nil {
		t.Fatalf("apply delta: %v", err)
	}
	// Import skips datasets that already exist; a delta's records are
	// upserts (e.g. epoch bumps), so re-apply them explicitly.
	for _, ds := range d.Export.Datasets {
		if err := base.UpdateDataset(ds); err != nil {
			t.Fatalf("upsert dataset %s: %v", ds.Name, err)
		}
	}
	for _, tomb := range d.Tombstones {
		if tomb.Kind == "replica" {
			_ = base.RemoveReplica(tomb.ID)
		}
	}
	return base
}

func TestJournalSeqAdvancesPerMutation(t *testing.T) {
	c := New(nil)
	if c.Seq() != 0 {
		t.Fatalf("fresh seq: %d", c.Seq())
	}
	if err := c.AddDataset(jds("a")); err != nil {
		t.Fatal(err)
	}
	s1 := c.Seq()
	if s1 == 0 {
		t.Fatal("seq did not advance")
	}
	// Identical re-add is a no-op: no new sequence.
	if err := c.AddDataset(jds("a")); err != nil {
		t.Fatal(err)
	}
	if c.Seq() != s1 {
		t.Errorf("no-op re-add advanced seq: %d -> %d", s1, c.Seq())
	}
	if err := c.AddDataset(jds("b")); err != nil {
		t.Fatal(err)
	}
	if c.Seq() <= s1 {
		t.Errorf("seq not monotonic: %d then %d", s1, c.Seq())
	}
}

func TestChangesSinceFastPathAndDelta(t *testing.T) {
	c := New(nil)
	if err := c.AddDataset(jds("a")); err != nil {
		t.Fatal(err)
	}
	inst, seq := c.Instance(), c.Seq()

	// Caller already current: empty header, no content.
	d := c.ChangesSince(seq, inst)
	if !d.Empty() || d.Seq != seq || d.Full {
		t.Fatalf("fast path: %+v", d)
	}

	// since == 0 always degrades to full (boot state predates journal).
	d = c.ChangesSince(0, inst)
	if !d.Full || len(d.Export.Datasets) != 1 {
		t.Fatalf("since=0: %+v", d)
	}

	// Incremental: only the new object ships.
	if err := c.AddDataset(jds("b")); err != nil {
		t.Fatal(err)
	}
	d = c.ChangesSince(seq, inst)
	if d.Full || len(d.Export.Datasets) != 1 || d.Export.Datasets[0].Name != "b" {
		t.Fatalf("delta: %+v", d)
	}
	if d.Seq != c.Seq() {
		t.Errorf("delta seq: %d want %d", d.Seq, c.Seq())
	}

	// Instance mismatch: full.
	if d := c.ChangesSince(seq, inst+1); !d.Full {
		t.Error("instance mismatch not full")
	}
	// Future sequence: full.
	if d := c.ChangesSince(c.Seq()+10, inst); !d.Full {
		t.Error("future seq not full")
	}
}

func TestChangesSinceTombstones(t *testing.T) {
	c := New(nil)
	if err := c.AddDataset(jds("d")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r1", Dataset: "d", Site: "s", PFN: "u"}); err != nil {
		t.Fatal(err)
	}
	seq := c.Seq()
	if err := c.RemoveReplica("r1"); err != nil {
		t.Fatal(err)
	}
	d := c.ChangesSince(seq, c.Instance())
	if d.Full || len(d.Tombstones) != 1 || d.Tombstones[0] != (Tombstone{Kind: "replica", ID: "r1"}) {
		t.Fatalf("tombstone delta: %+v", d)
	}
	// Add+remove after the mark collapses to a tombstone, not a record.
	seq = c.Seq()
	if err := c.AddReplica(schema.Replica{ID: "r2", Dataset: "d", Site: "s", PFN: "u"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica("r2"); err != nil {
		t.Fatal(err)
	}
	d = c.ChangesSince(seq, c.Instance())
	if len(d.Export.Replicas) != 0 || len(d.Tombstones) != 1 {
		t.Fatalf("collapse: %+v", d)
	}
}

func TestChangesSinceWindowOverflow(t *testing.T) {
	c := New(nil)
	c.SetJournalWindow(4)
	if err := c.AddDataset(jds("base")); err != nil {
		t.Fatal(err)
	}
	seq, inst := c.Seq(), c.Instance()
	for i := 0; i < 20; i++ {
		if err := c.AddDataset(jds(fmt.Sprintf("d%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	d := c.ChangesSince(seq, inst)
	if !d.Full {
		t.Fatalf("overflowed caller should get full export: %+v", d)
	}
	if len(d.Export.Datasets) != 21 {
		t.Errorf("full export datasets: %d", len(d.Export.Datasets))
	}
	// A caller just within the retained tail still gets a delta.
	seq = c.Seq() - 2
	d = c.ChangesSince(seq, inst)
	if d.Full || len(d.Export.Datasets) != 2 {
		t.Fatalf("tail delta: full=%v n=%d", d.Full, len(d.Export.Datasets))
	}
}

// TestDeltaFollowerConvergence replays a mutation history through
// deltas and checks the follower converges to the leader's export.
func TestDeltaFollowerConvergence(t *testing.T) {
	c := New(nil)
	follower := New(nil)
	var seq uint64
	inst := c.Instance()
	sync := func() {
		t.Helper()
		d := c.ChangesSince(seq, inst)
		follower = applyDelta(t, follower, d)
		seq = d.Seq
	}

	tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/t",
		Args: []schema.FormalArg{{Name: "o", Direction: schema.Out}, {Name: "i", Direction: schema.In}}}
	if err := c.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}
	sync()
	for i := 0; i < 5; i++ {
		if _, err := c.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", fmt.Sprintf("out%d", i)),
			"i": schema.DatasetActual("input", fmt.Sprintf("in%d", i)),
		}}); err != nil {
			t.Fatal(err)
		}
		if err := c.AddReplica(schema.Replica{ID: fmt.Sprintf("r%d", i), Dataset: fmt.Sprintf("in%d", i), Site: "s", PFN: "u"}); err != nil {
			t.Fatal(err)
		}
		sync()
	}
	if _, err := c.BumpEpoch("in0", false); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica("r1"); err != nil {
		t.Fatal(err)
	}
	sync()

	want, err := schema.CanonicalBytes(c.Export())
	if err != nil {
		t.Fatal(err)
	}
	got, err := schema.CanonicalBytes(follower.Export())
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("follower diverged:\nleader:   %s\nfollower: %s", want, got)
	}
}

func TestReopenedCatalogGetsFreshInstance(t *testing.T) {
	dir, err := os.MkdirTemp("", "journal-reopen")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	c1, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AddDataset(jds("a")); err != nil {
		t.Fatal(err)
	}
	inst1, seq1 := c1.Instance(), c1.Seq()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Instance() == inst1 {
		t.Error("reopened catalog reused instance token")
	}
	// A client carrying the old instance's sequence must be forced to
	// resync in full, whatever the new sequence happens to be.
	if d := c2.ChangesSince(seq1, inst1); !d.Full {
		t.Errorf("stale instance should get full export: %+v", d)
	}
}
