package catalog

import (
	"fmt"
	"sync"
	"testing"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

func idxTR(name string) schema.Transformation {
	return schema.Transformation{
		Namespace: "ix", Name: name, Kind: schema.Simple, Exec: "/bin/" + name,
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out},
			{Name: "in", Direction: schema.In},
		},
	}
}

func idxDV(t testing.TB, c *Catalog, tr, in, out string) schema.Derivation {
	t.Helper()
	dv, err := c.AddDerivation(schema.Derivation{TR: tr, Params: map[string]schema.Actual{
		"out": schema.DatasetActual("output", out),
		"in":  schema.DatasetActual("input", in),
	}})
	if err != nil {
		t.Fatal(err)
	}
	return dv
}

func mustCheck(t testing.TB, c *Catalog, stage string) {
	t.Helper()
	if err := c.CheckIndexes(); err != nil {
		t.Fatalf("after %s: %v", stage, err)
	}
}

// TestIndexMaintenance drives every mutation through the public API and
// verifies after each step that the incrementally maintained indexes
// equal a from-scratch rebuild.
func TestIndexMaintenance(t *testing.T) {
	c := New(nil)
	if err := c.DefineType(dtype.Content, "blob", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineType(dtype.Content, "image", "blob"); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "DefineType")

	if err := c.AddDataset(schema.Dataset{
		Name: "a", Type: dtype.Type{Content: "image"},
		Attrs: schema.Attributes{"owner": "kim", "run": "1"},
	}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "AddDataset")

	// Attribute and type change on update.
	if err := c.UpdateDataset(schema.Dataset{
		Name: "a", Type: dtype.Type{Content: "blob"},
		Attrs: schema.Attributes{"owner": "lee"},
	}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "UpdateDataset")
	v := c.View()
	if v.DatasetsByAttr("owner", "kim").Has("a") || !v.DatasetsByAttr("owner", "lee").Has("a") {
		t.Error("attr index not updated on UpdateDataset")
	}
	if v.DatasetsByAttr("run", "1").Has("a") {
		t.Error("dropped attribute still indexed")
	}
	if !v.DatasetsByType(dtype.Type{Content: "blob"}).Has("a") {
		t.Error("type index not updated")
	}
	v.Close()

	if err := c.AddTransformation(idxTR("gen")); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "AddTransformation")

	dv := idxDV(t, c, "ix::gen", "a", "b")
	mustCheck(t, c, "AddDerivation")
	v = c.View()
	if !v.DerivedDatasets().Has("b") {
		t.Error("auto-registered output not in derived set")
	}
	if !v.DerivationsByTR("ix::gen").Has(dv.ID) {
		t.Error("derivation missing from tr index")
	}
	if v.HasInvocations(dv.ID) {
		t.Error("unexecuted derivation in executed set")
	}
	v.Close()

	if err := c.AddInvocation(schema.Invocation{ID: "iv1", Derivation: dv.ID}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "AddInvocation")
	if !c.HasInvocations(dv.ID) || c.InvocationCount(dv.ID) != 1 {
		t.Error("HasInvocations/InvocationCount after AddInvocation")
	}

	if err := c.AddReplica(schema.Replica{ID: "r1", Dataset: "b", Site: "s", PFN: "/b"}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "AddReplica")
	if !c.Materialized("b") {
		t.Error("b should be materialized")
	}

	// Epoch bump without restamp strands the replica at the old epoch.
	if _, err := c.BumpEpoch("b", false); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "BumpEpoch(no restamp)")
	if c.Materialized("b") {
		t.Error("b should be stale after epoch bump")
	}

	// Restamping bump keeps it materialized.
	if _, err := c.BumpEpoch("b", true); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "BumpEpoch(restamp)")
	if !c.Materialized("b") {
		t.Error("b should be materialized after restamping bump")
	}

	if err := c.RemoveReplica("r1"); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "RemoveReplica")
	if c.Materialized("b") {
		t.Error("b should not be materialized after replica removal")
	}
}

// TestIndexesAfterReplayAndSnapshot proves the WAL replay and snapshot
// load paths maintain the same indexes the live mutations did.
func TestIndexesAfterReplayAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineType(dtype.Content, "blob", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTransformation(idxTR("gen")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDataset(schema.Dataset{Name: "p", Type: dtype.Type{Content: "blob"},
		Attrs: schema.Attributes{"owner": "kim"}}); err != nil {
		t.Fatal(err)
	}
	dv := idxDV(t, c, "ix::gen", "p", "q")
	if err := c.AddInvocation(schema.Invocation{ID: "iv1", Derivation: dv.ID}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r1", Dataset: "q", Site: "s", PFN: "/q"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r2", Dataset: "p", Site: "s", PFN: "/p"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica("r2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BumpEpoch("q", true); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c, "live mutations")
	wantExport := c.Export()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: pure WAL replay.
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCheck(t, c2, "WAL replay")
	if !equalJSON(wantExport, c2.Export()) {
		t.Error("replayed state differs from original")
	}
	if !c2.Materialized("q") || c2.Materialized("p") {
		t.Error("materialized flags wrong after replay")
	}

	// Compact, reopen: snapshot (applyExport) path.
	if err := c2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	mustCheck(t, c3, "snapshot load")
	if !equalJSON(wantExport, c3.Export()) {
		t.Error("snapshot-loaded state differs from original")
	}
}

// TestViewConsistencyUnderStorm runs epoch-bump and derivation storms
// against concurrent Views (run with -race). Each View must observe one
// atomic state: the hot dataset's epoch bump and its replica restamp
// are a single mutation, so `materialized` can never read false; and
// every derivation atomically registers exactly one derived output, so
// within a view the derived-set size always equals the derivation
// count.
func TestViewConsistencyUnderStorm(t *testing.T) {
	c := New(nil)
	if err := c.AddDataset(schema.Dataset{Name: "hot"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r-hot", Dataset: "hot", Site: "s", PFN: "/hot"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTransformation(idxTR("gen")); err != nil {
		t.Fatal(err)
	}

	const (
		bumps   = 200
		derivs  = 200
		readers = 4
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < bumps; i++ {
			if _, err := c.BumpEpoch("hot", true); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < derivs; i++ {
			idxDV(t, c, "ix::gen", "hot", fmt.Sprintf("out%d", i))
		}
	}()

	var readWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := c.View()
				if !v.Materialized("hot") {
					t.Error("view observed torn epoch/replica state")
				}
				derived := len(v.DerivedDatasets())
				if n := v.NumDerivations(); derived != n {
					t.Errorf("view observed %d derived datasets but %d derivations", derived, n)
				}
				v.Close()
			}
		}()
	}

	wg.Wait()
	close(stop)
	readWG.Wait()
	mustCheck(t, c, "storm")
}
