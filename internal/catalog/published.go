package catalog

import (
	"fmt"
	"math/bits"
	"reflect"
	"sync/atomic"
	"time"

	"chimera/internal/schema"
)

// Epoch publication: the lock-free read path.
//
// Each shard maintains *three* complete copies of its object state —
// maps, provenance adjacency, secondary indexes, compat assertions — in
// a triple-buffered arrangement:
//
//	write side       embedded in the cshard, mutated under the shard's
//	                 write lock exactly as before
//	published epoch  an immutable snapshot reachable through an atomic
//	                 pointer that readers pin with a refcount and read
//	                 with zero lock acquisitions
//	spare            the previously published snapshot, draining its
//	                 last readers, waiting to be recycled
//
// Mutations funnel through cshard.apply, which applies a deterministic
// closure to the write side and appends it to the shard's op log.
// Publication (publishLocked) rotates the buffers: the spare — once its
// readers have drained — is caught up by replaying the op log, the
// write side becomes the new published epoch, the old published epoch
// becomes the new spare, and the caught-up spare becomes the write
// side. The third buffer is what makes the publisher wait-free with
// respect to readers: if the spare is still pinned (a reader is mid-
// scan), publication simply *defers* — the mutation completes against
// the write side and a later trigger retries — instead of the writer
// spinning until every in-flight scan finishes. Readers never block
// writers; writers never block readers.
//
// Publication triggers, in order of preference:
//
//  1. Group-commit resolution: the mutation funnel defers publication
//     to the durability wait for group-committed shards, so a batch of
//     N writers pays one rotation, not N (amortized copy-on-write).
//  2. Inline, before the shard lock drops, for mutations that need no
//     committer round-trip — in-memory catalogs, inline WALs, failed
//     mutations, cross-shard adjacency updates with no WAL record.
//  3. Reader assist: acquire() sees the shard's dirty flag, TryLocks
//     the shard (never blocking), and publishes — this is what bounds
//     staleness after writes quiesce while a deferral was pending.
//
// The staleness bound of the published epoch is therefore one group
// commit under sustained ingest, widening to the duration of the
// longest concurrent reader while a rotation is deferred (see
// docs/PERF.md, "Concurrent read path").
//
// Reader protocol (acquire): load the pointer, increment the refcount,
// re-check the pointer. A reader only dereferences state after the
// re-check passes, so a stale refcount increment on a long-retired
// epoch is harmless — the re-check fails, the reader backs off and
// retries on the current epoch. The publisher treats the spare's
// refcount reaching zero as proof no reader will touch its state
// again, which holds because every successful acquire happens on the
// epoch that is current at re-check time.

// shardState is one complete copy of a shard's object state: everything
// a read needs, nothing a read mutates. Two instances exist per shard
// (write side + published epoch); all mutations go through deterministic
// closures applied to both sides via cshard.apply.
type shardState struct {
	datasets        map[string]schema.Dataset
	transformations map[string]schema.Transformation // key: canonical ref (homed by base)
	derivations     map[string]schema.Derivation     // key: ID
	invocations     map[string]schema.Invocation     // homed by iv.Derivation
	replicas        map[string]schema.Replica        // homed by r.Dataset
	compat          []schema.CompatibilityAssertion  // shard 0 only

	// Provenance indexes (keys homed on this shard).
	producerOf  map[string]string   // dataset -> producing derivation ID
	consumersOf map[string][]string // dataset -> derivation IDs reading it
	outputsOf   map[string][]string // derivation ID -> output dataset names
	inputsOf    map[string][]string // derivation ID -> input dataset names

	// Secondary indexes.
	replicasByDataset map[string][]string // dataset -> replica IDs
	invocationsByDV   map[string][]string // derivation ID -> invocation IDs
	versionsOf        map[string][]string // "ns::name" -> versions

	// Discovery indexes (index.go), maintained incrementally by the
	// put*/drop* closures every mutation path funnels through.
	idx indexes
}

func newShardState() *shardState {
	return &shardState{
		datasets:          make(map[string]schema.Dataset),
		transformations:   make(map[string]schema.Transformation),
		derivations:       make(map[string]schema.Derivation),
		invocations:       make(map[string]schema.Invocation),
		replicas:          make(map[string]schema.Replica),
		producerOf:        make(map[string]string),
		consumersOf:       make(map[string][]string),
		outputsOf:         make(map[string][]string),
		inputsOf:          make(map[string][]string),
		replicasByDataset: make(map[string][]string),
		invocationsByDV:   make(map[string][]string),
		versionsOf:        make(map[string][]string),
		idx:               newIndexes(),
	}
}

// objectCount is the state's total object population across the five
// classes.
func (st *shardState) objectCount() int {
	return len(st.datasets) + len(st.transformations) + len(st.derivations) +
		len(st.invocations) + len(st.replicas)
}

// publishedEpoch is one published shard snapshot: an immutable
// shardState plus the cursors it was stamped with at publication.
type publishedEpoch struct {
	state *shardState
	// seq is the shard's journal cursor at publication: the sequence of
	// the last journaled mutation visible in this epoch. Together with
	// the catalog's journal instance it forms the (instance, seq) stamp
	// delta-sync cursors are built from.
	seq uint64
	// ver is the shard's mutation version at publication: bumped on
	// *every* applied closure, including cross-shard adjacency updates
	// that write no journal entry, so it is the invalidation key the
	// query cache vectors over.
	ver uint64
	// readers counts in-flight lock-free readers pinning this epoch; the
	// publisher recycles the state as a write side only after the epoch
	// has been rotated out and this count has drained to zero.
	readers atomic.Int64
}

// sideState tracks the spare buffer: the previously published state,
// the op-log cursor it is caught up to, and the epoch whose readers
// must drain before the state can be recycled (nil for the initial
// never-published spare).
type sideState struct {
	state   *shardState
	applied uint64
	ep      *publishedEpoch
}

// acquire pins the shard's current published epoch for lock-free
// reading. Callers must release() it when done.
//
// If the shard has unpublished mutations (a rotation was deferred and
// no later write has retried it), the reader assists: a TryLock —
// never a blocking acquisition — publishes before pinning, so views
// opened after writes quiesce still observe them. The assist is gated
// on the spare buffer being drained (observed through spareEp, without
// the lock): while the spare is still pinned a rotation would defer
// anyway, so attempting one would burn an exclusive lock acquisition
// per reader for nothing — under a storm of concurrent readers that
// gate is the difference between a lock-free read path and readers
// serializing behind each other's futile assists.
func (s *cshard) acquire() *publishedEpoch {
	if s.dirty.Load() && s.spareDrained() && s.mu.TryLock() {
		s.publishLocked()
		s.mu.Unlock()
	}
	for {
		e := s.pub.Load()
		e.readers.Add(1)
		if s.pub.Load() == e {
			return e
		}
		// Lost the race with a publication: the epoch we pinned may
		// already be draining. Back off it and retry on the new one.
		e.readers.Add(-1)
	}
}

// release unpins an epoch acquired with acquire.
func (e *publishedEpoch) release() { e.readers.Add(-1) }

// spareDrained reports whether the spare buffer's last published epoch
// has no readers left — i.e. a rotation attempted now would not defer.
// spareEp mirrors s.spare.ep atomically so readers can check without
// the shard lock; nil means the spare was never published (always
// rotatable).
func (s *cshard) spareDrained() bool {
	sp := s.spareEp.Load()
	return sp == nil || sp.readers.Load() == 0
}

// apply runs one deterministic mutation closure against the shard's
// write side and appends it to the op log for replay onto the lagging
// buffers at later rotations. Every mutation of shard object state MUST
// go through here (or the buffers diverge); closures must be
// deterministic — capture values, not pointers into live state — so
// replay reproduces the write side exactly. Callers hold s.mu.
func (s *cshard) apply(op func(*shardState)) {
	op(s.shardState)
	s.ops = append(s.ops, op)
	s.ver++
	s.dirty.Store(true)
}

// publishLocked rotates the shard's buffers, exposing the write side's
// current state to lock-free readers. A no-op when nothing was applied
// since the last rotation; a *deferral* (also a no-op, retried by the
// next trigger) when the spare buffer is still pinned by readers — the
// one case where a writer would otherwise have to wait on a reader.
// Callers hold s.mu (write).
func (s *cshard) publishLocked() {
	cur := s.pub.Load()
	if s.ver == cur.ver {
		return // clean: published epoch already reflects the write side
	}
	sp := s.spare
	if sp.ep != nil && sp.ep.readers.Load() != 0 {
		return // defer: a reader is still scanning the spare
	}
	// Catch the spare up to the write side by replaying the op log from
	// its cursor, then rotate: write side -> published, published ->
	// spare (drains as its readers finish), caught-up spare -> write.
	for _, op := range s.ops[sp.applied-s.opBase:] {
		op(sp.state)
	}
	next := &publishedEpoch{state: s.shardState, seq: s.lastSeq, ver: s.ver}
	s.pub.Store(next)
	metricEpochSwaps.Inc()
	s.spare = &sideState{state: cur.state, applied: cur.ver, ep: cur}
	s.spareEp.Store(cur)
	s.shardState = sp.state
	// Drop the ops every remaining laggard (the new spare) has applied.
	n := copy(s.ops, s.ops[cur.ver-s.opBase:])
	for i := n; i < len(s.ops); i++ {
		s.ops[i] = nil // release closure captures
	}
	s.ops = s.ops[:n]
	s.opBase = cur.ver
	s.dirty.Store(false)
}

// publishSet publishes every shard in set that has unpublished
// mutations, taking each shard's lock one at a time (publication is
// per-shard independent; no cross-shard order is required).
func (c *Catalog) publishSet(set shardSet) {
	for m := uint64(set); m != 0; m &= m - 1 {
		s := c.shards[bits.TrailingZeros64(m)]
		s.mu.Lock()
		s.publishLocked()
		s.mu.Unlock()
	}
}

// publishAll publishes every shard; used after bulk loads (WAL replay,
// snapshot import) to expose the loaded state in one swap per shard.
func (c *Catalog) publishAll() { c.publishSet(c.allSet()) }

// ExecutedPublished reports, from the published epoch and with zero
// lock acquisitions, whether the derivation has at least one recorded
// invocation. This is the executor's duplicate-derivation fast path:
// staleness (bounded by one group commit) can only miss a dedup
// opportunity, never invent one.
func (c *Catalog) ExecutedPublished(id string) bool {
	s := c.shardOf(id)
	e := s.acquire()
	ok := e.state.idx.executed.Has(id)
	e.release()
	return ok
}

// ShardEpochState reports one shard's publication cursors for
// /debug/vdc.
type ShardEpochState struct {
	Shard int `json:"shard"`
	// Seq is the published journal cursor; Ver the published mutation
	// version (Ver >= Seq-advances since Ver also counts non-journaled
	// adjacency updates).
	Seq uint64 `json:"seq"`
	Ver uint64 `json:"ver"`
	// Readers is the instantaneous count of in-flight lock-free readers
	// pinning the published epoch.
	Readers int64 `json:"readers"`
	// Pending counts mutations applied to the write side but not yet
	// published (staleness backlog: nonzero only between a mutation and
	// its group-commit resolution, or while a rotation is deferred).
	Pending int `json:"pending"`
}

// EpochStats reports every shard's publication state.
func (c *Catalog) EpochStats() []ShardEpochState {
	out := make([]ShardEpochState, len(c.shards))
	for i, s := range c.shards {
		e := s.acquire()
		st := ShardEpochState{Shard: i, Seq: e.seq, Ver: e.ver, Readers: e.readers.Load()}
		e.release()
		s.mu.RLock()
		st.Pending = int(s.ver - e.ver)
		s.mu.RUnlock()
		out[i] = st
	}
	return out
}

// CheckPublished verifies the publication invariant: at a quiescent
// point (no unresolved durability waits, no writers), every shard's
// published epoch must be deeply equal to its write side and carry its
// exact cursor stamps. Deferred rotations are retried (readers may
// still be draining off a spare buffer when the caller quiesced) for up
// to two seconds before being reported. Test oracle, analogous to
// CheckIndexes.
func (c *Catalog) CheckPublished() error {
	for i, s := range c.shards {
		deadline := time.Now().Add(2 * time.Second)
		for {
			s.mu.Lock()
			s.publishLocked()
			e := s.pub.Load()
			clean := e.ver == s.ver && e.seq == s.lastSeq
			same := clean && reflect.DeepEqual(e.state, s.shardState)
			s.mu.Unlock()
			if clean {
				if !same {
					return fmt.Errorf("catalog: shard %d published epoch diverged from write side", i)
				}
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("catalog: shard %d rotation still deferred (readers pinning the spare buffer)", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// lockReadAcquisitions counts shard read-lock acquisitions, so tests
// can assert the hot read paths (View, query.Run, Export, search) take
// zero shard locks. Not a metric: it exists for the lock-freedom
// assertion only.
var lockReadAcquisitions atomic.Uint64

// LockReadAcquisitions reports the process-wide count of shard
// read-lock acquisitions (all catalogs).
func LockReadAcquisitions() uint64 { return lockReadAcquisitions.Load() }

// rlock takes the shard's read lock, counting the acquisition for the
// lock-freedom assertion. Every read-path RLock must go through here.
func (s *cshard) rlock() {
	lockReadAcquisitions.Add(1)
	s.mu.RLock()
}

// runlock releases a read lock taken with rlock.
func (s *cshard) runlock() { s.mu.RUnlock() }
