package catalog

import "chimera/internal/obs"

// Catalog metrics. Series are resolved once at init so the mutation
// paths pay a single atomic add; WAL and snapshot latencies go to
// fixed-bucket histograms (seconds).
var (
	countBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
	byteBuckets  = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}
)

var (
	metricOps = obs.Default.CounterVec("vdc_catalog_ops_total",
		"Catalog mutations by operation.", "op")
	metricOpErrors = obs.Default.CounterVec("vdc_catalog_op_errors_total",
		"Catalog mutations that returned an error, by operation.", "op")

	metricWALAppend = obs.Default.Histogram("vdc_wal_append_seconds",
		"Latency of encoding one WAL record (inline mode: encode + write; group mode: encode + enqueue).", obs.TimeBuckets)
	metricWALFsync = obs.Default.Histogram("vdc_wal_fsync_seconds",
		"Latency of the per-record fsync on the inline path (Options.Sync with MaxBatch=1).", obs.TimeBuckets)

	// Group-commit series; see docs/PERF.md.
	metricWALBatchRecords = obs.Default.Histogram("vdc_wal_batch_records",
		"Records per group-commit batch.", countBuckets)
	metricWALBatchBytes = obs.Default.Histogram("vdc_wal_batch_bytes",
		"Encoded bytes per group-commit batch.", byteBuckets)
	metricWALBatchFsync = obs.Default.Histogram("vdc_wal_batch_fsync_seconds",
		"Latency of the one fsync each group-commit batch issues (only with Options.Sync).", obs.TimeBuckets)
	metricWALQueueDepth = obs.Default.Gauge("vdc_wal_queue_depth",
		"Records currently waiting in the group-commit queue.")
	metricSnapshot = obs.Default.Histogram("vdc_catalog_snapshot_seconds",
		"Latency of snapshot compaction (export + write + WAL truncate).", obs.TimeBuckets)
	metricJournalEntries = obs.Default.Gauge("vdc_journal_entries",
		"Change-journal entries currently retained (most recently mutated catalog).")

	// Sharding series; see docs/PERF.md, "Catalog sharding". Per-shard
	// gauges/counters are labeled by shard index and resolved once per
	// shard at construction, so the hot paths stay one atomic op.
	metricShardLockWait = obs.Default.Histogram("vdc_catalog_shard_lock_wait_seconds",
		"Time a mutation spends acquiring its shard write-lock set (contention indicator).", obs.TimeBuckets)
	metricShardObjects = obs.Default.GaugeVec("vdc_catalog_shard_objects",
		"Objects homed on each catalog shard (balance indicator).", "shard")
	metricShardJournal = obs.Default.GaugeVec("vdc_catalog_shard_journal_entries",
		"Change-journal entries retained per shard; a shard at its window forces lagging crawlers to full exports.", "shard")
	metricShardBatches = obs.Default.CounterVec("vdc_wal_shard_batches_total",
		"Group-commit batches written per shard WAL.", "shard")
	metricShardBatchRecords = obs.Default.CounterVec("vdc_wal_shard_batch_records_total",
		"Records carried by each shard WAL's group-commit batches; the per-shard ratio is that WAL's batch occupancy.", "shard")

	opDefineType   = metricOps.With("define_type")
	opAddDataset   = metricOps.With("add_dataset")
	opUpdate       = metricOps.With("update_dataset")
	opBumpEpoch    = metricOps.With("bump_epoch")
	opAddTR        = metricOps.With("add_transformation")
	opAddDV        = metricOps.With("add_derivation")
	opAddIV        = metricOps.With("add_invocation")
	opAddReplica   = metricOps.With("add_replica")
	opRmReplica    = metricOps.With("remove_replica")
	opAssertCompat = metricOps.With("assert_compat")
	opSnapshot     = metricOps.With("snapshot")

	// dedupHits counts derivation registrations answered by an existing
	// canonical signature — the paper's "computation already performed".
	dedupHits = obs.Default.Counter("vdc_catalog_derivation_dedup_total",
		"Derivation registrations that matched an existing canonical signature.")

	// metricEpochSwaps counts shard epoch publications: the atomic
	// pointer flips that expose a new immutable snapshot to the lock-free
	// read path (published.go). The ratio of this to vdc_catalog_ops_total
	// is the copy-on-write amortization factor group commit buys.
	metricEpochSwaps = obs.Default.Counter("vdc_catalog_epoch_swaps_total",
		"Shard read-epoch publications (atomic snapshot swaps).")
)

// WALBatchStats reports the cumulative group-commit batch count and the
// total records those batches carried (the vdc_wal_batch_records
// histogram). The delta ratio over an interval is the WAL's
// amortization factor — mean records per write+fsync; the E13 scheduler
// experiment uses it to prove concurrent workflow completions share
// commits.
func WALBatchStats() (batches uint64, records float64) {
	return metricWALBatchRecords.Count(), metricWALBatchRecords.Sum()
}

// countErr bumps the per-op error counter on failure and passes the
// error through, so call sites stay one-liners.
func countErr(op string, err error) error {
	if err != nil {
		metricOpErrors.With(op).Inc()
	}
	return err
}
