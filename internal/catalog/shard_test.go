package catalog

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// The sharded catalog's correctness argument rests on an equivalence
// oracle: Shards=1 is exactly the pre-sharding catalog, so for any
// mutation history an N-shard catalog must reach the same exported
// state (and return errors in the same places). The tests here replay
// randomized histories against both and require identity — serially,
// concurrently, and across a crash/replay of every shard WAL.

// mutation is one step of a replayable history.
type mutation func(c *Catalog) error

// randomHistory generates a deterministic mutation history under a
// name prefix. Histories with distinct prefixes touch disjoint objects
// (no shared datasets, TRs, or replica IDs), so they commute — the
// property the concurrent equivalence test leans on. withCompat guards
// the one op whose export order is append order (compat assertions);
// concurrent histories skip it.
func randomHistory(rng *rand.Rand, prefix string, steps int, withCompat bool) []mutation {
	var hist []mutation
	var datasets []string // names added so far (attempted, so valid targets)
	var dvs []string      // derivation IDs (precomputed from signatures)
	var trs []string      // transformation refs
	var replicas []string
	pick := func(s []string) string { return s[rng.Intn(len(s))] }
	nds, ntr, niv, nrep := 0, 0, 0, 0

	// Seed every history with one dataset and one transformation so
	// dependent ops always have a target.
	seedTR := twoArg(prefix + "t0")
	hist = append(hist,
		func(c *Catalog) error { return c.AddDataset(schema.Dataset{Name: prefix + "ds0"}) },
		func(c *Catalog) error { return c.AddTransformation(seedTR) },
	)
	datasets = append(datasets, prefix+"ds0")
	trs = append(trs, seedTR.Ref())
	nds, ntr = 1, 1

	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); op {
		case 0, 1: // dataset
			name := fmt.Sprintf("%sds%d", prefix, nds)
			nds++
			ds := schema.Dataset{Name: name, Size: int64(rng.Intn(1000))}
			if rng.Intn(4) == 0 {
				ds.Attrs = schema.Attributes{"run": fmt.Sprint(rng.Intn(8))}
			}
			datasets = append(datasets, name)
			hist = append(hist, func(c *Catalog) error { return c.AddDataset(ds) })
		case 2: // transformation (sometimes a second version of an old name)
			var tr schema.Transformation
			if len(trs) > 2 && rng.Intn(3) == 0 {
				tr = twoArg(fmt.Sprintf("%st%d", prefix, rng.Intn(ntr)))
				tr.Version = fmt.Sprint(2 + rng.Intn(3))
			} else {
				tr = twoArg(fmt.Sprintf("%st%d", prefix, ntr))
				ntr++
			}
			trs = append(trs, tr.Ref())
			hist = append(hist, func(c *Catalog) error { return c.AddTransformation(tr) })
		case 3, 4: // derivation: random existing TR, random input, fresh output
			out := fmt.Sprintf("%sout%d", prefix, nds)
			nds++
			dv := chainDV(pick(trs), pick(datasets), out).Canonicalize()
			datasets = append(datasets, out)
			dvs = append(dvs, dv.ID)
			hist = append(hist, func(c *Catalog) error { _, err := c.AddDerivation(dv); return err })
		case 5: // invocation of a random derivation (may not exist: its Add may have failed)
			if len(dvs) == 0 {
				continue
			}
			iv := schema.Invocation{
				ID: fmt.Sprintf("%siv%d", prefix, niv), Derivation: pick(dvs),
				Site: "site-a", Host: "h1",
				Start: time.Unix(int64(niv), 0).UTC(), End: time.Unix(int64(niv)+30, 0).UTC(),
			}
			niv++
			hist = append(hist, func(c *Catalog) error { return c.AddInvocation(iv) })
		case 6: // replica
			r := schema.Replica{
				ID: fmt.Sprintf("%sr%d", prefix, nrep), Dataset: pick(datasets),
				Site: "site-a", PFN: "/store/" + fmt.Sprint(nrep),
			}
			nrep++
			replicas = append(replicas, r.ID)
			hist = append(hist, func(c *Catalog) error { return c.AddReplica(r) })
		case 7: // epoch bump, sometimes re-stamping replicas
			name := pick(datasets)
			restamp := rng.Intn(2) == 0
			hist = append(hist, func(c *Catalog) error {
				_, err := c.BumpEpoch(name, restamp)
				return err
			})
		case 8: // remove a replica (may already be gone or never added)
			if len(replicas) == 0 {
				continue
			}
			id := pick(replicas)
			hist = append(hist, func(c *Catalog) error { return c.RemoveReplica(id) })
		case 9:
			if withCompat && rng.Intn(3) == 0 {
				a := schema.CompatibilityAssertion{
					Name: fmt.Sprintf("%st%d", prefix, rng.Intn(ntr)),
					V1:   "1", V2: fmt.Sprint(2 + rng.Intn(3)), Mode: schema.Equivalent,
				}
				hist = append(hist, func(c *Catalog) error { return c.AssertCompatibility(a) })
			} else { // update attrs on an existing dataset
				name := pick(datasets)
				ds := schema.Dataset{Name: name, Attrs: schema.Attributes{"pass": fmt.Sprint(rng.Intn(5))}}
				hist = append(hist, func(c *Catalog) error { return c.UpdateDataset(ds) })
			}
		}
	}
	return hist
}

// TestShardEquivalenceRandomized replays randomized histories against
// the 1-shard oracle and N-shard catalogs: identical error positions,
// identical final exports, consistent indexes.
func TestShardEquivalenceRandomized(t *testing.T) {
	for _, n := range []int{2, 3, 8, 64} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", n, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*977 + int64(n)))
				hist := randomHistory(rng, "h-", 400, true)
				ref := New(dtype.StandardRegistry())
				got := NewSharded(dtype.StandardRegistry(), n)
				if got.Shards() != n {
					t.Fatalf("Shards() = %d, want %d", got.Shards(), n)
				}
				for i, m := range hist {
					e1, e2 := m(ref), m(got)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: oracle err %v, %d-shard err %v", i, e1, n, e2)
					}
				}
				requireSameState(t, ref, got)
				if err := got.CheckIndexes(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestShardEquivalenceConcurrent runs disjoint-prefix histories from
// 16 goroutines against an 8-shard catalog and the same histories
// serially against the 1-shard oracle: commuting histories must land
// both catalogs on the same state regardless of interleaving.
func TestShardEquivalenceConcurrent(t *testing.T) {
	const writers = 16
	histories := make([][]mutation, writers)
	for w := range histories {
		rng := rand.New(rand.NewSource(int64(w) + 31))
		histories[w] = randomHistory(rng, fmt.Sprintf("w%d-", w), 250, false)
	}

	got := NewSharded(dtype.StandardRegistry(), 8)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(hist []mutation) {
			defer wg.Done()
			for _, m := range hist {
				m(got) // errors are part of the history (duplicates etc.)
			}
		}(histories[w])
	}
	wg.Wait()

	ref := New(dtype.StandardRegistry())
	for _, hist := range histories {
		for _, m := range hist {
			m(ref)
		}
	}
	requireSameState(t, ref, got)
	if err := got.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}

// TestShardWALCrashReplay applies a randomized history to a durable
// 8-shard catalog and reopens the directory without Close — the crash
// case: every shard's WAL replays, including derivations whose
// transformation lives in another shard's log (the deferral path).
func TestShardWALCrashReplay(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, dtype.StandardRegistry(), Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, m := range randomHistory(rng, "cr-", 300, true) {
		m(c)
	}

	// Crash: reopen without Close. The meta file pins 8 shards even
	// though the reopen asks for 2.
	c2, err := Open(dir, dtype.StandardRegistry(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Shards() != 8 {
		t.Fatalf("meta file must win: Shards() = %d, want 8", c2.Shards())
	}
	requireSameState(t, c, c2)
	if err := c2.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestShardSnapshotReplay checks the snapshot + post-snapshot-WAL
// composition for a sharded catalog.
func TestShardSnapshotReplay(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, dtype.StandardRegistry(), Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	hist := randomHistory(rng, "sn-", 200, true)
	for _, m := range hist[:len(hist)/2] {
		m(c)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, m := range hist[len(hist)/2:] {
		m(c)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, dtype.StandardRegistry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}

// TestShardLegacyDirSingleShard: a pre-sharding directory (wal.jsonl,
// no meta file) must reopen single-shard no matter what the caller
// asks for — its records were routed by a 1-shard layout.
func TestShardLegacyDirSingleShard(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, metaFile)); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, nil, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Shards() != 1 {
		t.Fatalf("legacy dir reopened with %d shards, want 1", c2.Shards())
	}
	requireSameState(t, c, c2)
}

// TestShardedIngestStorm is the CI smoke: 16 writers hammer an 8-shard
// durable catalog with disjoint production-mix histories while readers
// chase deltas and walk lineage; then indexes must verify, no
// durability error may be recorded, and a reopen must reproduce the
// state from the shard WALs.
func TestShardedIngestStorm(t *testing.T) {
	const writers = 16
	dir := t.TempDir()
	c, err := Open(dir, dtype.StandardRegistry(), Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}

	steps := 200
	if testing.Short() {
		steps = 60
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 131))
			for _, m := range randomHistory(rng, fmt.Sprintf("s%d-", w), steps, false) {
				m(c)
			}
		}(w)
	}
	// Readers: a delta chaser and a scanner, racing the writers.
	var rg sync.WaitGroup
	rg.Add(2)
	go func() {
		defer rg.Done()
		since, inst := uint64(0), c.Instance()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := c.ChangesSince(since, inst)
			since, inst = d.Seq, d.Instance
			c.ShardJournalStates()
		}
	}()
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := c.View()
			n := 0
			v.RangeDatasets(func(ds schema.Dataset) bool {
				if v.Materialized(ds.Name) {
					n++
				}
				return n < 50
			})
			v.Close()
			c.Stats()
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	if err := c.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
	if err := c.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, dtype.StandardRegistry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", c2.Shards())
	}
	requireSameState(t, c, c2)
}

// TestShardJournalWindowFloor: one shard trimming past a caller's
// cursor must degrade that caller to a full export — never a silently
// incomplete delta — while a current cursor still yields an empty one.
func TestShardJournalWindowFloor(t *testing.T) {
	c := NewSharded(dtype.StandardRegistry(), 4)
	c.SetJournalWindow(8)
	if err := c.AddDataset(schema.Dataset{Name: "base"}); err != nil {
		t.Fatal(err)
	}
	since := c.Seq()
	// Overflow at least one shard's window (2x window triggers the trim).
	for i := 0; i < 200; i++ {
		if err := c.AddDataset(schema.Dataset{Name: fmt.Sprintf("flood%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	trimmedSomewhere := false
	for _, st := range c.ShardJournalStates() {
		if st.Floor > 0 {
			trimmedSomewhere = true
		}
		if st.Seq < st.Floor {
			t.Fatalf("shard %d: seq %d < floor %d", st.Shard, st.Seq, st.Floor)
		}
	}
	if !trimmedSomewhere {
		t.Fatal("no shard trimmed; window not enforced")
	}
	d := c.ChangesSince(since, c.Instance())
	if !d.Full {
		t.Fatal("cursor behind a shard floor must get a full export")
	}
	if got := c.ChangesSince(c.Seq(), c.Instance()); !got.Empty() {
		t.Fatal("current cursor must get an empty delta")
	}
	// A cursor just above every floor gets a true (non-full) delta that
	// contains only the most recent mutations.
	var floor uint64
	for _, st := range c.ShardJournalStates() {
		if st.Floor > floor {
			floor = st.Floor
		}
	}
	d2 := c.ChangesSince(floor, c.Instance())
	if d2.Full {
		t.Fatal("cursor at max floor must be delta-serviceable")
	}
	if len(d2.Export.Datasets) == 0 || len(d2.Export.Datasets) >= 200 {
		t.Fatalf("delta sized %d, want partial tail", len(d2.Export.Datasets))
	}
}
