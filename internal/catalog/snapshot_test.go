package catalog

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"chimera/internal/codec"
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// randomCatalog drives a seeded object mix through the public mutation
// API — the randomized source for the cross-codec snapshot oracle.
func randomCatalog(t *testing.T, c *Catalog, rng *rand.Rand, n int) {
	t.Helper()
	if err := c.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ds-%d", i)
		ds := schema.Dataset{Name: name, Size: rng.Int63n(1 << 30)}
		if rng.Intn(2) == 0 {
			ds.Attrs = schema.Attributes{"run": fmt.Sprint(rng.Intn(50)), "site": "anl"}
		}
		if rng.Intn(3) == 0 {
			ds.Descriptor = schema.FileDescriptor{Path: "/store/" + name}
		}
		if err := c.AddDataset(ds); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			if _, err := c.AddDerivation(chainDV("t", name, name+".out")); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.AddReplica(schema.Replica{
			ID: fmt.Sprintf("rep-%d", i), Dataset: name,
			Site: fmt.Sprintf("site-%d", rng.Intn(4)), PFN: "/pfn/" + name,
			Size: ds.Size,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotFormatsEquivalent is the catalog-level round-trip
// oracle: the same randomized catalog snapshotted under each codec
// must reopen to identical exports.
func TestSnapshotFormatsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		exports := map[string]Export{}
		for _, format := range []string{codec.JSONName, codec.BinaryName} {
			dir := t.TempDir()
			c, err := Open(dir, nil, Options{SnapshotFormat: format, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			randomCatalog(t, c, rand.New(rand.NewSource(seed)), 25)
			if err := c.Snapshot(); err != nil {
				t.Fatalf("%s: snapshot: %v", format, err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(dir, nil, Options{})
			if err != nil {
				t.Fatalf("%s: reopen: %v", format, err)
			}
			exports[format] = re.Export()
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
		}
		ja, _ := schema.CanonicalBytes(exports[codec.JSONName])
		jb, _ := schema.CanonicalBytes(exports[codec.BinaryName])
		if string(ja) != string(jb) {
			t.Fatalf("seed %d: exports differ across snapshot formats", seed)
		}
	}
}

func TestBinarySnapshotFilesAndPinning(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{SnapshotFormat: codec.BinaryName})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, binSnapshotFile)); err != nil {
		t.Fatalf("binary snapshot missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("JSON snapshot should be absent, stat err=%v", err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		t.Fatal(err)
	}
	var m catalogMeta
	if err := json.Unmarshal(meta, &m); err != nil {
		t.Fatal(err)
	}
	if m.SnapshotFormat != codec.BinaryName {
		t.Fatalf("meta pins %q, want %q", m.SnapshotFormat, codec.BinaryName)
	}

	// Reopen requesting JSON: the recorded pin wins, like Shards.
	re, err := Open(dir, nil, Options{SnapshotFormat: codec.JSONName})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := schema.CanonicalBytes(re.Export())
	if re.snapFormat != codec.BinaryName {
		t.Fatalf("reopen format %q, want pinned %q", re.snapFormat, codec.BinaryName)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := schema.CanonicalBytes(c2.Export())
	if string(orig) != string(after) {
		t.Fatal("state changed across binary snapshot reopen")
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyMetaAdoptsFormat: a pre-codec meta (shards only) adopts
// the requested snapshot format on reopen and re-records it.
func TestLegacyMetaAdoptsFormat(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the meta as a pre-codec catalog would have left it.
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte(`{"shards":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, nil, Options{SnapshotFormat: codec.BinaryName})
	if err != nil {
		t.Fatal(err)
	}
	if re.snapFormat != codec.BinaryName {
		t.Fatalf("adopted format %q, want %q", re.snapFormat, codec.BinaryName)
	}
	// The legacy JSON snapshot must still load (self-describing read),
	// and the next Snapshot converts the directory.
	if err := re.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, binSnapshotFile)); err != nil {
		t.Fatalf("converted binary snapshot missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("stale JSON snapshot not removed, stat err=%v", err)
	}

	final, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if _, err := final.Dataset("raw"); err != nil {
		t.Fatalf("converted catalog lost state: %v", err)
	}
}

func TestUnknownSnapshotFormatRejected(t *testing.T) {
	if _, err := Open(t.TempDir(), nil, Options{SnapshotFormat: "binary/v9"}); err == nil {
		t.Fatal("unknown snapshot format accepted")
	}
}

// TestDeltaCodecConversion: journal deltas survive the round trip
// through the codec-neutral container.
func TestDeltaCodecConversion(t *testing.T) {
	c := New(dtype.NewRegistry())
	populate(t, c)
	d := c.ChangesSince(0, 0)
	d.Tombstones = append(d.Tombstones, Tombstone{Kind: "replica", ID: "gone"})
	back := DeltaFromCodec(d.CodecDelta())
	ja, _ := json.Marshal(d)
	jb, _ := json.Marshal(back)
	if string(ja) != string(jb) {
		t.Fatalf("delta conversion not lossless:\n%s\n---\n%s", ja, jb)
	}
}
