// Package catalog implements the Virtual Data Catalog (VDC): the
// service that maintains the objects of the virtual data schema and
// the relationships among them.
//
// The catalog stores the five object classes (datasets, replicas,
// transformations, derivations, invocations) plus the dataset-type
// registry and transformation version-compatibility assertions. On top
// of raw storage it maintains the provenance graph — which derivation
// produces which dataset, which derivations consume it — and supports
// the queries the paper motivates: lineage reports, invalidation sets,
// duplicate-derivation detection, and materialization planning input.
//
// Storage is partitioned into shards (shard.go) so concurrent writers
// on different objects proceed on different cores; New builds the
// single-shard catalog, NewSharded and Options.Shards the partitioned
// one. Durability is per-shard write-ahead logging with snapshot
// compaction; see wal.go.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Sentinel errors reported by catalog operations.
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("catalog: not found")
	// ErrExists reports an attempt to redefine an object differently.
	ErrExists = errors.New("catalog: already exists")
	// ErrDuplicate reports that an identical derivation (same canonical
	// signature) is already registered; the caller can reuse it.
	ErrDuplicate = errors.New("catalog: duplicate derivation")
	// ErrConflict reports a provenance conflict, e.g. two different
	// derivations claiming to produce the same dataset.
	ErrConflict = errors.New("catalog: provenance conflict")
	// ErrType reports a dataset-type conformance failure.
	ErrType = errors.New("catalog: type mismatch")
	// ErrDurability reports that the write-ahead log failed: the
	// mutation may have applied in memory, but the catalog can no
	// longer guarantee it survives a restart. Servers should surface
	// this as an availability (not a caller) error.
	ErrDurability = errors.New("catalog: durability failure")
)

// errRetryShards is the internal sentinel an optimistic multi-shard
// mutation returns when the shard set it locked turns out not to cover
// the shards it needs (the state it peeked at before locking changed);
// the caller recomputes the set and retries. Never escapes the package.
var errRetryShards = errors.New("catalog: shard set stale")

// Catalog is an in-memory VDC with optional write-ahead durability.
// It is safe for concurrent use. State is partitioned across shards
// (shard.go); the type registry is shared (it has its own lock).
type Catalog struct {
	types  *dtype.Registry
	shards []*cshard

	// Change-journal identity (journal.go): jseq is the catalog-wide
	// mutation sequence, advanced atomically by whichever shard records
	// a mutation; jinstance invalidates sequences across instances.
	jseq      atomic.Uint64
	jinstance uint64

	dir        string // catalog directory; "" for in-memory catalogs
	snapFormat string // pinned snapshot codec name; "" for in-memory catalogs
}

// New returns an empty in-memory catalog with a single shard, using
// the given type registry (nil for a fresh empty registry).
func New(types *dtype.Registry) *Catalog { return NewSharded(types, 1) }

// NewSharded returns an empty in-memory catalog partitioned into
// shards (clamped to [1, MaxShards]). More shards let more concurrent
// writers proceed without contending; Shards()==1 behaves exactly like
// the unsharded catalog and is the equivalence oracle for the rest.
func NewSharded(types *dtype.Registry, shards int) *Catalog {
	if types == nil {
		types = dtype.NewRegistry()
	}
	n := normalizeShards(shards)
	c := &Catalog{types: types, jinstance: newJournalInstance(), shards: make([]*cshard, n)}
	for i := range c.shards {
		c.shards[i] = newCShard(i, DefaultJournalWindow)
	}
	return c
}

// Types returns the catalog's dataset-type registry.
func (c *Catalog) Types() *dtype.Registry { return c.types }

// mutate runs fn with every shard in set write-locked, then — if fn
// enqueued WAL records on the shards' group committers — blocks
// *outside* the locks until the batches holding them are durable. A
// mutation therefore never returns success before its records are
// written (and fsynced when Options.Sync is set), yet the fsync happens
// off-lock so concurrent writers share it instead of serializing on
// it. In-memory and inline-WAL catalogs return as soon as fn does.
func (c *Catalog) mutate(set shardSet, fn func() error) error {
	wait, err := c.mutateAsync(set, fn)
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// walWait is one shard's durability obligation from a mutation.
type walWait struct {
	com *committer
	seq uint64
}

// mutateAsync runs fn with the shard set write-locked and, instead of
// blocking for durability, returns a wait function the caller invokes
// (off any lock, possibly from another goroutine) to block until every
// batch holding fn's WAL records is durable. A nil wait means the
// mutation needs no waiting (in-memory or inline-WAL catalog). This is
// the primitive behind the executor's off-lock recording pipeline:
// applies stay ordered under the shard locks while many durability
// waits stay in flight at once, which is what lets the group
// committers batch them.
func (c *Catalog) mutateAsync(set shardSet, fn func() error) (wait func() error, err error) {
	c.lockSet(set)
	err = fn()
	var w0 walWait
	var more []walWait
	var deferred shardSet
	for i, s := range c.shards {
		if !set.has(i) {
			continue
		}
		committed := false
		if s.pendingSeq != 0 {
			if s.wal != nil && s.wal.com != nil {
				if w0.com == nil {
					w0 = walWait{s.wal.com, s.pendingSeq}
				} else {
					more = append(more, walWait{s.wal.com, s.pendingSeq})
				}
				committed = true
			}
			s.pendingSeq = 0
		}
		// Epoch publication (published.go). Shards whose records are
		// riding a group commit publish when the batch resolves — that
		// amortization is what lets N concurrent writers pay one swap per
		// batch instead of one per mutation. Everything else — in-memory
		// catalogs, inline WALs, failed mutations, and shards touched only
		// by cross-shard adjacency updates (no WAL record) — publishes
		// inline, before the lock drops, preserving read-your-writes.
		if committed && err == nil {
			deferred = deferred.with(i)
		} else {
			s.publishLocked()
		}
	}
	c.unlockSet(set)
	if err != nil {
		// The operation failed after possibly enqueueing records (the
		// seed's partial-log semantics); its error wins either way.
		return nil, err
	}
	if w0.com == nil {
		return nil, nil
	}
	return func() error {
		first := w0.com.wait(w0.seq)
		for _, w := range more {
			if e := w.com.wait(w.seq); e != nil && first == nil {
				first = e
			}
		}
		// Publish after durability resolves, even on failure: the ops are
		// applied in memory either way, and the published side must track
		// the write side. The first waiter of a shared batch does the real
		// swap; later waiters find nothing pending and no-op.
		c.publishSet(deferred)
		return first
	}, nil
}

// DefineType registers a dataset type in the catalog's registry and
// logs it for durability. Registry state and its journal/WAL records
// live on shard 0.
func (c *Catalog) DefineType(d dtype.Dimension, name, parent string) (err error) {
	opDefineType.Inc()
	defer func() { err = countErr("define_type", err) }()
	return c.mutate(shardSet(0).with(0), func() error {
		if err := c.types.Register(d, name, parent); err != nil {
			return err
		}
		// The registry is shared (own lock), not part of shard state, but
		// a definition changes type-conformance answers — apply a no-op
		// closure so shard 0's epoch version advances and every cached
		// query result keyed on the old vector invalidates.
		c.shards[0].apply(func(*shardState) {})
		c.shards[0].noteJournal(c, jTypes, "", false)
		return c.shards[0].logOp(opType, typeRecord{Dim: int(d), Name: name, Parent: parent})
	})
}

// --- Datasets ---------------------------------------------------------

// AddDataset registers a dataset. Re-adding a byte-identical dataset is
// a no-op; redefining an existing name differently is ErrExists.
func (c *Catalog) AddDataset(ds schema.Dataset) (err error) {
	opAddDataset.Inc()
	defer func() { err = countErr("add_dataset", err) }()
	if err := ds.Validate(); err != nil {
		return err
	}
	set := c.keySet(ds.Name)
	if ds.CreatedBy != "" {
		// The cited producer derivation lives on its own shard; lock it
		// too so the existence check is stable.
		set = set.with(c.shardIndex(ds.CreatedBy))
	}
	return c.mutate(set, func() error {
		s := c.shardOf(ds.Name)
		if err := c.types.CheckType(ds.Type); err != nil {
			return fmt.Errorf("%w: dataset %q: %v", ErrType, ds.Name, err)
		}
		if old, ok := s.datasets[ds.Name]; ok {
			if equalJSON(old, ds) {
				return nil
			}
			return fmt.Errorf("%w: dataset %q", ErrExists, ds.Name)
		}
		if ds.CreatedBy != "" {
			if _, ok := c.shardOf(ds.CreatedBy).derivations[ds.CreatedBy]; !ok {
				return fmt.Errorf("%w: dataset %q cites unknown derivation %q", ErrNotFound, ds.Name, ds.CreatedBy)
			}
		}
		c.putDataset(ds)
		return s.logOp(opDataset, ds)
	})
}

// UpdateDataset replaces an existing dataset record (e.g. to attach a
// descriptor once the data is materialized, or bump the epoch).
func (c *Catalog) UpdateDataset(ds schema.Dataset) (err error) {
	opUpdate.Inc()
	defer func() { err = countErr("update_dataset", err) }()
	if err := ds.Validate(); err != nil {
		return err
	}
	return c.mutate(c.keySet(ds.Name), func() error {
		s := c.shardOf(ds.Name)
		old, ok := s.datasets[ds.Name]
		if !ok {
			return fmt.Errorf("%w: dataset %q", ErrNotFound, ds.Name)
		}
		if ds.Epoch < old.Epoch {
			return fmt.Errorf("%w: dataset %q epoch moved backwards (%d -> %d)", ErrConflict, ds.Name, old.Epoch, ds.Epoch)
		}
		c.putDataset(ds)
		return s.logOp(opDataset, ds)
	})
}

// BumpEpoch records an in-place update of a dataset (§8's "update"
// operation): the epoch increments, making all current-epoch state
// stale. When restampReplicas is true the dataset's existing replicas
// are re-stamped to the new epoch — the caller asserts the physical
// copies were corrected in place; when false they become stale and the
// dataset must be re-materialized. A dataset's replicas are homed on
// its shard, so the whole operation is single-shard.
func (c *Catalog) BumpEpoch(name string, restampReplicas bool) (_ int, err error) {
	opBumpEpoch.Inc()
	defer func() { err = countErr("bump_epoch", err) }()
	epoch := 0
	err = c.mutate(c.keySet(name), func() error {
		s := c.shardOf(name)
		ds, ok := s.datasets[name]
		if !ok {
			return fmt.Errorf("%w: dataset %q", ErrNotFound, name)
		}
		ds.Epoch++
		c.putDataset(ds)
		if err := s.logOp(opDataset, ds); err != nil {
			return err
		}
		if restampReplicas {
			for _, id := range s.replicasByDataset[name] {
				r := s.replicas[id]
				r.Epoch = ds.Epoch
				c.putReplica(r)
				if err := s.logOp(opReplica, r); err != nil {
					return err
				}
			}
		}
		epoch = ds.Epoch
		return nil
	})
	if err != nil {
		return 0, err
	}
	return epoch, nil
}

// Dataset returns the dataset with the given logical name.
func (c *Catalog) Dataset(name string) (schema.Dataset, error) {
	s := c.shardOf(name)
	s.rlock()
	defer s.runlock()
	ds, ok := s.datasets[name]
	if !ok {
		return schema.Dataset{}, fmt.Errorf("%w: dataset %q", ErrNotFound, name)
	}
	return ds, nil
}

// Datasets returns all datasets, sorted by name. The listing walks the
// published epochs — zero lock acquisitions.
func (c *Catalog) Datasets() []schema.Dataset {
	v := c.View()
	defer v.Close()
	var out []schema.Dataset
	for _, st := range v.states {
		for _, ds := range st.datasets {
			out = append(out, ds)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- Transformations --------------------------------------------------

// AddTransformation registers a transformation under its canonical
// reference. Identical re-registration is a no-op. All versions of one
// ns::name are homed on one shard (see trHome), so registration and
// versionless resolution are single-shard.
func (c *Catalog) AddTransformation(tr schema.Transformation) (err error) {
	opAddTR.Inc()
	defer func() { err = countErr("add_transformation", err) }()
	if err := tr.Validate(); err != nil {
		return err
	}
	ref := tr.Ref()
	return c.mutate(c.keySet(trHome(ref)), func() error {
		s := c.shardOfTR(ref)
		for _, f := range tr.Args {
			for _, t := range f.Types {
				if err := c.types.CheckType(t); err != nil {
					return fmt.Errorf("%w: transformation %q formal %q: %v", ErrType, ref, f.Name, err)
				}
			}
		}
		if old, ok := s.transformations[ref]; ok {
			if equalJSON(old, tr) {
				return nil
			}
			return fmt.Errorf("%w: transformation %q", ErrExists, ref)
		}
		c.putTransformation(tr)
		return s.logOp(opTransformation, tr)
	})
}

// Transformation resolves a canonical reference. A versionless
// reference resolves to the unversioned registration if present,
// otherwise to the single registered version (it is ambiguous, and an
// error, if several versions exist).
func (c *Catalog) Transformation(ref string) (schema.Transformation, error) {
	s := c.shardOfTR(ref)
	s.rlock()
	defer s.runlock()
	return s.transformationLocked(ref)
}

// transformationLocked resolves a reference against one shard's state.
// Callers hold s.mu; every version of the ref's base is homed here.
func (s *cshard) transformationLocked(ref string) (schema.Transformation, error) {
	if tr, ok := s.transformations[ref]; ok {
		return tr, nil
	}
	ns, name, ver, err := schema.ParseTRRef(ref)
	if err != nil {
		return schema.Transformation{}, err
	}
	if ver == "" {
		base := schema.FormatTRRef(ns, name, "")
		versions := s.versionsOf[base]
		var nonEmpty []string
		for _, v := range versions {
			if v != "" {
				nonEmpty = append(nonEmpty, v)
			}
		}
		if len(nonEmpty) == 1 {
			return s.transformations[schema.FormatTRRef(ns, name, nonEmpty[0])], nil
		}
		if len(nonEmpty) > 1 {
			return schema.Transformation{}, fmt.Errorf("%w: transformation %q is ambiguous among versions %v", ErrNotFound, ref, nonEmpty)
		}
	}
	return schema.Transformation{}, fmt.Errorf("%w: transformation %q", ErrNotFound, ref)
}

// Transformations returns all transformations sorted by reference,
// from the published epochs.
func (c *Catalog) Transformations() []schema.Transformation {
	v := c.View()
	defer v.Close()
	var out []schema.Transformation
	for _, st := range v.states {
		for _, tr := range st.transformations {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref() < out[j].Ref() })
	return out
}

// Versions lists the registered versions of a transformation name.
func (c *Catalog) Versions(namespace, name string) []string {
	base := schema.FormatTRRef(namespace, name, "")
	s := c.shardOfTR(base)
	s.rlock()
	defer s.runlock()
	vs := append([]string(nil), s.versionsOf[base]...)
	sort.Strings(vs)
	return vs
}

// Resolver returns a schema.Resolver view of the catalog for compound
// expansion.
func (c *Catalog) Resolver() schema.Resolver {
	return func(ref string) (schema.Transformation, error) {
		return c.Transformation(ref)
	}
}

// --- Compatibility assertions ------------------------------------------

// AssertCompatibility records a version-compatibility assertion.
// Assertions live on shard 0.
func (c *Catalog) AssertCompatibility(a schema.CompatibilityAssertion) (err error) {
	opAssertCompat.Inc()
	defer func() { err = countErr("assert_compat", err) }()
	if err := a.Validate(); err != nil {
		return err
	}
	return c.mutate(shardSet(0).with(0), func() error {
		s := c.shards[0]
		for _, old := range s.compat {
			if old == a {
				return nil
			}
		}
		s.apply(func(st *shardState) { st.compat = append(st.compat, a) })
		s.noteJournal(c, jCompat, "", false)
		return s.logOp(opCompat, a)
	})
}

// Compatible reports whether products of version v1 of a transformation
// satisfy requests for version v2 (or vice versa), under the recorded
// assertions. Equivalence is symmetric and transitive; an Incompatible
// assertion for the pair vetoes any derived equivalence.
func (c *Catalog) Compatible(namespace, name, v1, v2 string) bool {
	if v1 == v2 {
		return true
	}
	s := c.shards[0]
	s.rlock()
	defer s.runlock()
	// Collect equivalence edges and veto pairs for this transformation.
	adj := make(map[string][]string)
	veto := make(map[[2]string]bool)
	for _, a := range s.compat {
		if a.Namespace != namespace || a.Name != name {
			continue
		}
		switch a.Mode {
		case schema.Equivalent, schema.Supersedes:
			adj[a.V1] = append(adj[a.V1], a.V2)
			adj[a.V2] = append(adj[a.V2], a.V1)
		case schema.Incompatible:
			veto[[2]string{a.V1, a.V2}] = true
			veto[[2]string{a.V2, a.V1}] = true
		}
	}
	if veto[[2]string{v1, v2}] {
		return false
	}
	// BFS through the equivalence graph.
	seen := map[string]bool{v1: true}
	queue := []string{v1}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == v2 {
			return true
		}
		for _, next := range adj[cur] {
			if !seen[next] && !veto[[2]string{v1, next}] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// --- Derivations -------------------------------------------------------

// AddDerivation canonicalizes and registers a derivation. It returns
// the stored derivation.
//
// Behaviour implementing the paper's core promises:
//   - Duplicate detection: if a derivation with the same canonical
//     signature is already present, the stored one is returned together
//     with ErrDuplicate (callers typically treat this as success-and-reuse).
//   - Virtual data: output datasets that are not yet registered are
//     auto-registered as virtual (no descriptor) with CreatedBy linkage;
//     unknown input datasets are auto-registered as primary data.
//   - Provenance conflict: a dataset may have at most one producing
//     derivation.
//   - Type checking: every bound dataset with a declared type must
//     conform to the formal's type union.
//
// A derivation spans shards: its own record and secondary indexes live
// on the ID's shard, the transformation on its base's shard, and each
// input/output dataset's registration and provenance adjacency on that
// dataset's shard. The lock set is computed optimistically from a
// pre-lock resolution of the transformation (whose formals determine
// the bound datasets), then re-verified under the locks; a stale set
// recomputes and retries.
func (c *Catalog) AddDerivation(dv schema.Derivation) (_ schema.Derivation, err error) {
	opAddDV.Inc()
	defer func() {
		// Duplicate detection is success-and-reuse, not failure: count
		// it separately so the paper's dedup rate is observable.
		if errors.Is(err, ErrDuplicate) {
			dedupHits.Inc()
			return
		}
		err = countErr("add_derivation", err)
	}()
	dv = dv.Canonicalize()
	if err := dv.Validate(); err != nil {
		return schema.Derivation{}, err
	}
	var stored schema.Derivation
	for {
		// Optimistic peek: resolve the transformation to learn which
		// datasets the derivation binds (params plus formal defaults),
		// hence which shards the mutation must lock. Resolution failure
		// here still locks {ID, TR} so the duplicate check and the
		// authoritative under-lock resolution behave as before.
		set := shardSet(0).with(c.shardIndex(dv.ID)).with(c.shardIndex(trHome(dv.TR)))
		if tr, terr := c.Transformation(dv.TR); terr == nil {
			for _, name := range dv.Inputs(tr) {
				set = set.with(c.shardIndex(name))
			}
			for _, name := range dv.Outputs(tr) {
				set = set.with(c.shardIndex(name))
			}
		}
		err = c.mutate(set, func() error {
			home := c.shardOf(dv.ID)
			if existing, ok := home.derivations[dv.ID]; ok {
				stored = existing
				return ErrDuplicate
			}
			tr, err := c.shardOfTR(dv.TR).transformationLocked(dv.TR)
			if err != nil {
				return err
			}
			if err := dv.CheckBinding(tr); err != nil {
				return err
			}

			inputs := dv.Inputs(tr)
			outputs := dv.Outputs(tr)

			// The authoritative resolution may bind different datasets
			// than the peek did (the transformation or its defaults
			// changed, or the peek failed); retry with the right shards
			// if any fall outside the locked set.
			needed := shardSet(0)
			for _, name := range inputs {
				needed = needed.with(c.shardIndex(name))
			}
			for _, name := range outputs {
				needed = needed.with(c.shardIndex(name))
			}
			if !set.contains(needed) {
				return errRetryShards
			}

			// Type conformance for bound datasets that exist with a type.
			for _, f := range tr.Args {
				if !f.IsDataset() || len(f.Types) == 0 {
					continue
				}
				a, ok := dv.Params[f.Name]
				if !ok && f.Default != nil {
					a = *f.Default
				}
				for _, name := range a.Datasets() {
					if ds, ok := c.shardOf(name).datasets[name]; ok && !ds.Type.IsUniversal() {
						if !f.Accepts(c.types, ds.Type) {
							return fmt.Errorf("%w: dataset %q (%s) does not conform to formal %q of %s",
								ErrType, name, ds.Type, f.Name, tr.Ref())
						}
					}
				}
			}

			// A dataset has at most one producer, and cannot be both input and
			// output of one derivation. Validate fully before mutating so a
			// failed add leaves no partial state (or WAL records) behind.
			inputSet := make(map[string]bool, len(inputs))
			for _, in := range inputs {
				inputSet[in] = true
			}
			for _, out := range outputs {
				if prod, ok := c.shardOf(out).producerOf[out]; ok && prod != dv.ID {
					return fmt.Errorf("%w: dataset %q already produced by derivation %s", ErrConflict, out, prod)
				}
				if inputSet[out] {
					return fmt.Errorf("%w: dataset %q is both input and output of one derivation", ErrConflict, out)
				}
			}

			// Auto-register datasets, each on (and logged to) its own shard.
			for _, in := range inputs {
				ss := c.shardOf(in)
				if _, ok := ss.datasets[in]; !ok {
					ds := schema.Dataset{Name: in}
					c.putDataset(ds)
					if err := ss.logOp(opDataset, ds); err != nil {
						return err
					}
				}
			}
			for _, out := range outputs {
				ss := c.shardOf(out)
				if ds, ok := ss.datasets[out]; ok {
					if ds.CreatedBy == "" {
						ds.CreatedBy = dv.ID
						c.putDataset(ds)
						if err := ss.logOp(opDataset, ds); err != nil {
							return err
						}
					}
				} else {
					ds := schema.Dataset{Name: out, CreatedBy: dv.ID}
					c.putDataset(ds)
					if err := ss.logOp(opDataset, ds); err != nil {
						return err
					}
				}
			}

			c.indexDerivation(dv, tr)
			if err := home.logOp(opDerivation, dv); err != nil {
				return err
			}
			stored = dv
			return nil
		})
		if errors.Is(err, errRetryShards) {
			continue
		}
		if err != nil && !errors.Is(err, ErrDuplicate) {
			return schema.Derivation{}, err
		}
		return stored, err
	}
}

// Derivation returns the derivation with the given ID.
func (c *Catalog) Derivation(id string) (schema.Derivation, error) {
	s := c.shardOf(id)
	s.rlock()
	defer s.runlock()
	dv, ok := s.derivations[id]
	if !ok {
		return schema.Derivation{}, fmt.Errorf("%w: derivation %q", ErrNotFound, id)
	}
	return dv, nil
}

// FindDerivation checks whether an equivalent derivation (same
// canonical signature) is already registered — the paper's "has this
// computation been performed previously?" in O(1).
func (c *Catalog) FindDerivation(dv schema.Derivation) (schema.Derivation, bool) {
	sig := dv.Signature()
	s := c.shardOf(sig)
	s.rlock()
	defer s.runlock()
	found, ok := s.derivations[sig]
	return found, ok
}

// FindEquivalentDerivation extends FindDerivation with the paper's §8
// version-equivalence model: if no derivation matches exactly, the
// lookup retries under every registered version of the transformation
// asserted Compatible with the requested one. It returns the match and
// the transformation ref it was found under.
func (c *Catalog) FindEquivalentDerivation(dv schema.Derivation) (schema.Derivation, string, bool) {
	if found, ok := c.FindDerivation(dv); ok {
		return found, dv.TR, true
	}
	ns, name, ver, err := schema.ParseTRRef(dv.TR)
	if err != nil {
		return schema.Derivation{}, "", false
	}
	for _, v := range c.Versions(ns, name) {
		if v == ver || !c.Compatible(ns, name, ver, v) {
			continue
		}
		alt := dv
		alt.TR = schema.FormatTRRef(ns, name, v)
		alt.ID = ""
		if found, ok := c.FindDerivation(alt); ok {
			return found, alt.TR, true
		}
	}
	return schema.Derivation{}, "", false
}

// Derivations returns all derivations sorted by ID, from the published
// epochs.
func (c *Catalog) Derivations() []schema.Derivation {
	v := c.View()
	defer v.Close()
	var out []schema.Derivation
	for _, st := range v.states {
		for _, dv := range st.derivations {
			out = append(out, dv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Invocations -------------------------------------------------------

// AddInvocation records an execution of a registered derivation.
func (c *Catalog) AddInvocation(iv schema.Invocation) error {
	wait, err := c.AddInvocationAsync(iv)
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// AddInvocationAsync applies the invocation under its shard lock and
// returns without waiting for durability; the returned wait function
// blocks until the record's WAL batch is durable (ErrDurability on
// failure). wait is nil when there is nothing to wait for. Callers that
// need the synchronous contract use AddInvocation. Invocations are
// homed with their derivation, so the hot recording path is
// single-shard.
func (c *Catalog) AddInvocationAsync(iv schema.Invocation) (wait func() error, err error) {
	opAddIV.Inc()
	defer func() { err = countErr("add_invocation", err) }()
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	w, err := c.mutateAsync(c.keySet(iv.Derivation), func() error {
		s := c.shardOf(iv.Derivation)
		if _, ok := s.derivations[iv.Derivation]; !ok {
			return fmt.Errorf("%w: invocation %q cites unknown derivation %q", ErrNotFound, iv.ID, iv.Derivation)
		}
		if _, ok := s.invocations[iv.ID]; ok {
			return fmt.Errorf("%w: invocation %q", ErrExists, iv.ID)
		}
		c.putInvocation(iv)
		return s.logOp(opInvocation, iv)
	})
	if err != nil || w == nil {
		return nil, err
	}
	return func() error { return countErr("add_invocation", w()) }, nil
}

// Invocation returns the invocation with the given ID. Invocations are
// homed by their derivation, so a by-ID lookup probes every shard
// (one map lookup each).
func (c *Catalog) Invocation(id string) (schema.Invocation, error) {
	c.rlockAll()
	defer c.runlockAll()
	for _, s := range c.shards {
		if iv, ok := s.invocations[id]; ok {
			return iv, nil
		}
	}
	return schema.Invocation{}, fmt.Errorf("%w: invocation %q", ErrNotFound, id)
}

// HasInvocations reports whether a derivation has recorded at least one
// invocation, without copying them — the cheap emptiness test the
// query layer's `executed` flag wants.
func (c *Catalog) HasInvocations(derivation string) bool {
	s := c.shardOf(derivation)
	s.rlock()
	defer s.runlock()
	return s.idx.executed.Has(derivation)
}

// InvocationCount returns the number of invocations recorded for a
// derivation.
func (c *Catalog) InvocationCount(derivation string) int {
	s := c.shardOf(derivation)
	s.rlock()
	defer s.runlock()
	return len(s.invocationsByDV[derivation])
}

// InvocationsOf returns the invocations of one derivation, in insertion
// order.
func (c *Catalog) InvocationsOf(derivation string) []schema.Invocation {
	s := c.shardOf(derivation)
	s.rlock()
	defer s.runlock()
	ids := s.invocationsByDV[derivation]
	out := make([]schema.Invocation, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.invocations[id])
	}
	return out
}

// Invocations returns all invocations sorted by ID, from the published
// epochs.
func (c *Catalog) Invocations() []schema.Invocation {
	v := c.View()
	defer v.Close()
	var out []schema.Invocation
	for _, st := range v.states {
		for _, iv := range st.invocations {
			out = append(out, iv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Replicas ----------------------------------------------------------

// AddReplica registers a physical replica of a known dataset.
func (c *Catalog) AddReplica(r schema.Replica) error {
	wait, err := c.AddReplicaAsync(r)
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// AddReplicaAsync applies the replica under its shard lock and returns
// without waiting for durability, like AddInvocationAsync. Replicas
// are homed with their dataset, so registration is single-shard.
func (c *Catalog) AddReplicaAsync(r schema.Replica) (wait func() error, err error) {
	opAddReplica.Inc()
	defer func() { err = countErr("add_replica", err) }()
	if err := r.Validate(); err != nil {
		return nil, err
	}
	w, err := c.mutateAsync(c.keySet(r.Dataset), func() error {
		s := c.shardOf(r.Dataset)
		if _, ok := s.datasets[r.Dataset]; !ok {
			return fmt.Errorf("%w: replica %q cites unknown dataset %q", ErrNotFound, r.ID, r.Dataset)
		}
		if _, ok := s.replicas[r.ID]; ok {
			return fmt.Errorf("%w: replica %q", ErrExists, r.ID)
		}
		c.putReplica(r)
		return s.logOp(opReplica, r)
	})
	if err != nil || w == nil {
		return nil, err
	}
	return func() error { return countErr("add_replica", w()) }, nil
}

// RemoveReplica deletes a replica record (e.g. when a planner reclaims
// storage). Replicas are homed by dataset, which a bare ID does not
// reveal, so removal locks every shard; it is the rare administrative
// path, not the ingest path.
func (c *Catalog) RemoveReplica(id string) (err error) {
	opRmReplica.Inc()
	defer func() { err = countErr("remove_replica", err) }()
	return c.mutate(c.allSet(), func() error {
		r, ok := c.dropReplica(id)
		if !ok {
			return fmt.Errorf("%w: replica %q", ErrNotFound, id)
		}
		return c.shardOf(r.Dataset).logOp(opRemoveReplica, r.ID)
	})
}

// Replica returns the replica with the given ID. Replicas are homed by
// their dataset, so a by-ID lookup probes every shard.
func (c *Catalog) Replica(id string) (schema.Replica, error) {
	c.rlockAll()
	defer c.runlockAll()
	for _, s := range c.shards {
		if r, ok := s.replicas[id]; ok {
			return r, nil
		}
	}
	return schema.Replica{}, fmt.Errorf("%w: replica %q", ErrNotFound, id)
}

// ReplicasOf lists the replicas of a dataset, in registration order.
func (c *Catalog) ReplicasOf(dataset string) []schema.Replica {
	s := c.shardOf(dataset)
	s.rlock()
	defer s.runlock()
	ids := s.replicasByDataset[dataset]
	out := make([]schema.Replica, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.replicas[id])
	}
	return out
}

// Materialized reports whether a dataset has at least one replica at
// its current epoch.
func (c *Catalog) Materialized(dataset string) bool {
	s := c.shardOf(dataset)
	s.rlock()
	defer s.runlock()
	// The flag set is maintained by every mutation path (index.go), so
	// membership is the answer — no replica scan.
	return s.idx.materialized.Has(dataset)
}

// Stats summarizes catalog contents.
type Stats struct {
	Datasets, Transformations, Derivations, Invocations, Replicas int
}

// Stats returns object counts, from the published epochs.
func (c *Catalog) Stats() Stats {
	v := c.View()
	defer v.Close()
	var st Stats
	for _, ss := range v.states {
		st.Datasets += len(ss.datasets)
		st.Transformations += len(ss.transformations)
		st.Derivations += len(ss.derivations)
		st.Invocations += len(ss.invocations)
		st.Replicas += len(ss.replicas)
	}
	return st
}

// equalJSON compares two values by canonical encoding.
func equalJSON(a, b any) bool {
	ab, err1 := schema.CanonicalBytes(a)
	bb, err2 := schema.CanonicalBytes(b)
	return err1 == nil && err2 == nil && string(ab) == string(bb)
}
