// Package catalog implements the Virtual Data Catalog (VDC): the
// service that maintains the objects of the virtual data schema and
// the relationships among them.
//
// The catalog stores the five object classes (datasets, replicas,
// transformations, derivations, invocations) plus the dataset-type
// registry and transformation version-compatibility assertions. On top
// of raw storage it maintains the provenance graph — which derivation
// produces which dataset, which derivations consume it — and supports
// the queries the paper motivates: lineage reports, invalidation sets,
// duplicate-derivation detection, and materialization planning input.
//
// Durability is write-ahead logging with snapshot compaction; see wal.go.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Sentinel errors reported by catalog operations.
var (
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("catalog: not found")
	// ErrExists reports an attempt to redefine an object differently.
	ErrExists = errors.New("catalog: already exists")
	// ErrDuplicate reports that an identical derivation (same canonical
	// signature) is already registered; the caller can reuse it.
	ErrDuplicate = errors.New("catalog: duplicate derivation")
	// ErrConflict reports a provenance conflict, e.g. two different
	// derivations claiming to produce the same dataset.
	ErrConflict = errors.New("catalog: provenance conflict")
	// ErrType reports a dataset-type conformance failure.
	ErrType = errors.New("catalog: type mismatch")
	// ErrDurability reports that the write-ahead log failed: the
	// mutation may have applied in memory, but the catalog can no
	// longer guarantee it survives a restart. Servers should surface
	// this as an availability (not a caller) error.
	ErrDurability = errors.New("catalog: durability failure")
)

// Catalog is an in-memory VDC with optional write-ahead durability.
// It is safe for concurrent use.
type Catalog struct {
	mu sync.RWMutex

	types           *dtype.Registry
	datasets        map[string]schema.Dataset
	transformations map[string]schema.Transformation // key: canonical ref
	derivations     map[string]schema.Derivation     // key: ID (canonical signature)
	invocations     map[string]schema.Invocation
	replicas        map[string]schema.Replica
	compat          []schema.CompatibilityAssertion

	// Provenance indexes.
	producerOf  map[string]string   // dataset -> derivation ID producing it
	consumersOf map[string][]string // dataset -> derivation IDs reading it
	outputsOf   map[string][]string // derivation ID -> output dataset names
	inputsOf    map[string][]string // derivation ID -> input dataset names

	// Secondary indexes.
	replicasByDataset map[string][]string // dataset -> replica IDs
	invocationsByDV   map[string][]string // derivation ID -> invocation IDs
	versionsOf        map[string][]string // "ns::name" -> versions

	// Discovery indexes (index.go), maintained incrementally by the
	// put*/drop* helpers every mutation path funnels through.
	idx indexes

	// Change journal (journal.go): monotonic mutation sequence, a
	// bounded tail of recent mutations backing ChangesSince delta
	// exports, and an instance token that invalidates sequences across
	// catalog instances. All guarded by mu.
	jinstance uint64
	jseq      uint64
	jwindow   int
	journal   []journalEntry

	wal *wal // nil for purely in-memory catalogs

	// pendingSeq is the group-commit sequence of the last WAL record
	// the current mutation enqueued; mutate() waits on it after
	// releasing mu. Guarded by mu; always 0 between mutations.
	pendingSeq uint64
}

// New returns an empty in-memory catalog using the given type registry
// (nil for a fresh empty registry).
func New(types *dtype.Registry) *Catalog {
	if types == nil {
		types = dtype.NewRegistry()
	}
	return &Catalog{
		types:             types,
		datasets:          make(map[string]schema.Dataset),
		transformations:   make(map[string]schema.Transformation),
		derivations:       make(map[string]schema.Derivation),
		invocations:       make(map[string]schema.Invocation),
		replicas:          make(map[string]schema.Replica),
		producerOf:        make(map[string]string),
		consumersOf:       make(map[string][]string),
		outputsOf:         make(map[string][]string),
		inputsOf:          make(map[string][]string),
		replicasByDataset: make(map[string][]string),
		invocationsByDV:   make(map[string][]string),
		versionsOf:        make(map[string][]string),
		idx:               newIndexes(),
		jinstance:         newJournalInstance(),
		jwindow:           DefaultJournalWindow,
	}
}

// Types returns the catalog's dataset-type registry.
func (c *Catalog) Types() *dtype.Registry { return c.types }

// mutate runs fn inside the write lock, then — if fn enqueued WAL
// records on the group committer — blocks *outside* the lock until the
// batch holding them is durable. A mutation therefore never returns
// success before its records are written (and fsynced when
// Options.Sync is set), yet the fsync happens off-lock so concurrent
// writers share it instead of serializing on it. In-memory and
// inline-WAL catalogs return as soon as fn does.
func (c *Catalog) mutate(fn func() error) error {
	wait, err := c.mutateAsync(fn)
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// mutateAsync runs fn inside the write lock and, instead of blocking
// for durability, returns a wait function the caller invokes (off any
// lock, possibly from another goroutine) to block until the batch
// holding fn's WAL records is durable. A nil wait means the mutation
// needs no waiting (in-memory or inline-WAL catalog). This is the
// primitive behind the executor's off-lock recording pipeline: applies
// stay ordered under the catalog lock while many durability waits stay
// in flight at once, which is what lets the group committer batch them.
func (c *Catalog) mutateAsync(fn func() error) (wait func() error, err error) {
	c.mu.Lock()
	err = fn()
	var com *committer
	var seq uint64
	if c.pendingSeq != 0 {
		if c.wal != nil && c.wal.com != nil {
			com, seq = c.wal.com, c.pendingSeq
		}
		c.pendingSeq = 0
	}
	c.mu.Unlock()
	if err != nil {
		// The operation failed after possibly enqueueing records (the
		// seed's partial-log semantics); its error wins either way.
		return nil, err
	}
	if com != nil {
		return func() error { return com.wait(seq) }, nil
	}
	return nil, nil
}

// DefineType registers a dataset type in the catalog's registry and
// logs it for durability.
func (c *Catalog) DefineType(d dtype.Dimension, name, parent string) (err error) {
	opDefineType.Inc()
	defer func() { err = countErr("define_type", err) }()
	return c.mutate(func() error {
		if err := c.types.Register(d, name, parent); err != nil {
			return err
		}
		c.noteJournal(jTypes, "", false)
		return c.logOp(opType, typeRecord{Dim: int(d), Name: name, Parent: parent})
	})
}

// --- Datasets ---------------------------------------------------------

// AddDataset registers a dataset. Re-adding a byte-identical dataset is
// a no-op; redefining an existing name differently is ErrExists.
func (c *Catalog) AddDataset(ds schema.Dataset) (err error) {
	opAddDataset.Inc()
	defer func() { err = countErr("add_dataset", err) }()
	if err := ds.Validate(); err != nil {
		return err
	}
	return c.mutate(func() error {
		if err := c.types.CheckType(ds.Type); err != nil {
			return fmt.Errorf("%w: dataset %q: %v", ErrType, ds.Name, err)
		}
		if old, ok := c.datasets[ds.Name]; ok {
			if equalJSON(old, ds) {
				return nil
			}
			return fmt.Errorf("%w: dataset %q", ErrExists, ds.Name)
		}
		if ds.CreatedBy != "" {
			if _, ok := c.derivations[ds.CreatedBy]; !ok {
				return fmt.Errorf("%w: dataset %q cites unknown derivation %q", ErrNotFound, ds.Name, ds.CreatedBy)
			}
		}
		c.putDataset(ds)
		return c.logOp(opDataset, ds)
	})
}

// UpdateDataset replaces an existing dataset record (e.g. to attach a
// descriptor once the data is materialized, or bump the epoch).
func (c *Catalog) UpdateDataset(ds schema.Dataset) (err error) {
	opUpdate.Inc()
	defer func() { err = countErr("update_dataset", err) }()
	if err := ds.Validate(); err != nil {
		return err
	}
	return c.mutate(func() error {
		old, ok := c.datasets[ds.Name]
		if !ok {
			return fmt.Errorf("%w: dataset %q", ErrNotFound, ds.Name)
		}
		if ds.Epoch < old.Epoch {
			return fmt.Errorf("%w: dataset %q epoch moved backwards (%d -> %d)", ErrConflict, ds.Name, old.Epoch, ds.Epoch)
		}
		c.putDataset(ds)
		return c.logOp(opDataset, ds)
	})
}

// BumpEpoch records an in-place update of a dataset (§8's "update"
// operation): the epoch increments, making all current-epoch state
// stale. When restampReplicas is true the dataset's existing replicas
// are re-stamped to the new epoch — the caller asserts the physical
// copies were corrected in place; when false they become stale and the
// dataset must be re-materialized.
func (c *Catalog) BumpEpoch(name string, restampReplicas bool) (_ int, err error) {
	opBumpEpoch.Inc()
	defer func() { err = countErr("bump_epoch", err) }()
	epoch := 0
	err = c.mutate(func() error {
		ds, ok := c.datasets[name]
		if !ok {
			return fmt.Errorf("%w: dataset %q", ErrNotFound, name)
		}
		ds.Epoch++
		c.putDataset(ds)
		if err := c.logOp(opDataset, ds); err != nil {
			return err
		}
		if restampReplicas {
			for _, id := range c.replicasByDataset[name] {
				r := c.replicas[id]
				r.Epoch = ds.Epoch
				c.putReplica(r)
				if err := c.logOp(opReplica, r); err != nil {
					return err
				}
			}
		}
		epoch = ds.Epoch
		return nil
	})
	if err != nil {
		return 0, err
	}
	return epoch, nil
}

// Dataset returns the dataset with the given logical name.
func (c *Catalog) Dataset(name string) (schema.Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, ok := c.datasets[name]
	if !ok {
		return schema.Dataset{}, fmt.Errorf("%w: dataset %q", ErrNotFound, name)
	}
	return ds, nil
}

// Datasets returns all datasets, sorted by name.
func (c *Catalog) Datasets() []schema.Dataset {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]schema.Dataset, 0, len(c.datasets))
	for _, ds := range c.datasets {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- Transformations --------------------------------------------------

// AddTransformation registers a transformation under its canonical
// reference. Identical re-registration is a no-op.
func (c *Catalog) AddTransformation(tr schema.Transformation) (err error) {
	opAddTR.Inc()
	defer func() { err = countErr("add_transformation", err) }()
	if err := tr.Validate(); err != nil {
		return err
	}
	return c.mutate(func() error {
		for _, f := range tr.Args {
			for _, t := range f.Types {
				if err := c.types.CheckType(t); err != nil {
					return fmt.Errorf("%w: transformation %q formal %q: %v", ErrType, tr.Ref(), f.Name, err)
				}
			}
		}
		ref := tr.Ref()
		if old, ok := c.transformations[ref]; ok {
			if equalJSON(old, tr) {
				return nil
			}
			return fmt.Errorf("%w: transformation %q", ErrExists, ref)
		}
		c.putTransformation(tr)
		return c.logOp(opTransformation, tr)
	})
}

// Transformation resolves a canonical reference. A versionless
// reference resolves to the unversioned registration if present,
// otherwise to the single registered version (it is ambiguous, and an
// error, if several versions exist).
func (c *Catalog) Transformation(ref string) (schema.Transformation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.transformationLocked(ref)
}

func (c *Catalog) transformationLocked(ref string) (schema.Transformation, error) {
	if tr, ok := c.transformations[ref]; ok {
		return tr, nil
	}
	ns, name, ver, err := schema.ParseTRRef(ref)
	if err != nil {
		return schema.Transformation{}, err
	}
	if ver == "" {
		base := schema.FormatTRRef(ns, name, "")
		versions := c.versionsOf[base]
		var nonEmpty []string
		for _, v := range versions {
			if v != "" {
				nonEmpty = append(nonEmpty, v)
			}
		}
		if len(nonEmpty) == 1 {
			return c.transformations[schema.FormatTRRef(ns, name, nonEmpty[0])], nil
		}
		if len(nonEmpty) > 1 {
			return schema.Transformation{}, fmt.Errorf("%w: transformation %q is ambiguous among versions %v", ErrNotFound, ref, nonEmpty)
		}
	}
	return schema.Transformation{}, fmt.Errorf("%w: transformation %q", ErrNotFound, ref)
}

// Transformations returns all transformations sorted by reference.
func (c *Catalog) Transformations() []schema.Transformation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]schema.Transformation, 0, len(c.transformations))
	for _, tr := range c.transformations {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref() < out[j].Ref() })
	return out
}

// Versions lists the registered versions of a transformation name.
func (c *Catalog) Versions(namespace, name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vs := append([]string(nil), c.versionsOf[schema.FormatTRRef(namespace, name, "")]...)
	sort.Strings(vs)
	return vs
}

// Resolver returns a schema.Resolver view of the catalog for compound
// expansion.
func (c *Catalog) Resolver() schema.Resolver {
	return func(ref string) (schema.Transformation, error) {
		return c.Transformation(ref)
	}
}

// --- Compatibility assertions ------------------------------------------

// AssertCompatibility records a version-compatibility assertion.
func (c *Catalog) AssertCompatibility(a schema.CompatibilityAssertion) (err error) {
	opAssertCompat.Inc()
	defer func() { err = countErr("assert_compat", err) }()
	if err := a.Validate(); err != nil {
		return err
	}
	return c.mutate(func() error {
		for _, old := range c.compat {
			if old == a {
				return nil
			}
		}
		c.compat = append(c.compat, a)
		c.noteJournal(jCompat, "", false)
		return c.logOp(opCompat, a)
	})
}

// Compatible reports whether products of version v1 of a transformation
// satisfy requests for version v2 (or vice versa), under the recorded
// assertions. Equivalence is symmetric and transitive; an Incompatible
// assertion for the pair vetoes any derived equivalence.
func (c *Catalog) Compatible(namespace, name, v1, v2 string) bool {
	if v1 == v2 {
		return true
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	// Collect equivalence edges and veto pairs for this transformation.
	adj := make(map[string][]string)
	veto := make(map[[2]string]bool)
	for _, a := range c.compat {
		if a.Namespace != namespace || a.Name != name {
			continue
		}
		switch a.Mode {
		case schema.Equivalent, schema.Supersedes:
			adj[a.V1] = append(adj[a.V1], a.V2)
			adj[a.V2] = append(adj[a.V2], a.V1)
		case schema.Incompatible:
			veto[[2]string{a.V1, a.V2}] = true
			veto[[2]string{a.V2, a.V1}] = true
		}
	}
	if veto[[2]string{v1, v2}] {
		return false
	}
	// BFS through the equivalence graph.
	seen := map[string]bool{v1: true}
	queue := []string{v1}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == v2 {
			return true
		}
		for _, next := range adj[cur] {
			if !seen[next] && !veto[[2]string{v1, next}] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// --- Derivations -------------------------------------------------------

// AddDerivation canonicalizes and registers a derivation. It returns
// the stored derivation.
//
// Behaviour implementing the paper's core promises:
//   - Duplicate detection: if a derivation with the same canonical
//     signature is already present, the stored one is returned together
//     with ErrDuplicate (callers typically treat this as success-and-reuse).
//   - Virtual data: output datasets that are not yet registered are
//     auto-registered as virtual (no descriptor) with CreatedBy linkage;
//     unknown input datasets are auto-registered as primary data.
//   - Provenance conflict: a dataset may have at most one producing
//     derivation.
//   - Type checking: every bound dataset with a declared type must
//     conform to the formal's type union.
func (c *Catalog) AddDerivation(dv schema.Derivation) (_ schema.Derivation, err error) {
	opAddDV.Inc()
	defer func() {
		// Duplicate detection is success-and-reuse, not failure: count
		// it separately so the paper's dedup rate is observable.
		if errors.Is(err, ErrDuplicate) {
			dedupHits.Inc()
			return
		}
		err = countErr("add_derivation", err)
	}()
	dv = dv.Canonicalize()
	if err := dv.Validate(); err != nil {
		return schema.Derivation{}, err
	}
	var stored schema.Derivation
	err = c.mutate(func() error {
		if existing, ok := c.derivations[dv.ID]; ok {
			stored = existing
			return ErrDuplicate
		}
		tr, err := c.transformationLocked(dv.TR)
		if err != nil {
			return err
		}
		if err := dv.CheckBinding(tr); err != nil {
			return err
		}

		inputs := dv.Inputs(tr)
		outputs := dv.Outputs(tr)

		// Type conformance for bound datasets that exist with a type.
		for _, f := range tr.Args {
			if !f.IsDataset() || len(f.Types) == 0 {
				continue
			}
			a, ok := dv.Params[f.Name]
			if !ok && f.Default != nil {
				a = *f.Default
			}
			for _, name := range a.Datasets() {
				if ds, ok := c.datasets[name]; ok && !ds.Type.IsUniversal() {
					if !f.Accepts(c.types, ds.Type) {
						return fmt.Errorf("%w: dataset %q (%s) does not conform to formal %q of %s",
							ErrType, name, ds.Type, f.Name, tr.Ref())
					}
				}
			}
		}

		// A dataset has at most one producer, and cannot be both input and
		// output of one derivation. Validate fully before mutating so a
		// failed add leaves no partial state (or WAL records) behind.
		inputSet := make(map[string]bool, len(inputs))
		for _, in := range inputs {
			inputSet[in] = true
		}
		for _, out := range outputs {
			if prod, ok := c.producerOf[out]; ok && prod != dv.ID {
				return fmt.Errorf("%w: dataset %q already produced by derivation %s", ErrConflict, out, prod)
			}
			if inputSet[out] {
				return fmt.Errorf("%w: dataset %q is both input and output of one derivation", ErrConflict, out)
			}
		}

		// Auto-register datasets.
		for _, in := range inputs {
			if _, ok := c.datasets[in]; !ok {
				ds := schema.Dataset{Name: in}
				c.putDataset(ds)
				if err := c.logOp(opDataset, ds); err != nil {
					return err
				}
			}
		}
		for _, out := range outputs {
			if ds, ok := c.datasets[out]; ok {
				if ds.CreatedBy == "" {
					ds.CreatedBy = dv.ID
					c.putDataset(ds)
					if err := c.logOp(opDataset, ds); err != nil {
						return err
					}
				}
			} else {
				ds := schema.Dataset{Name: out, CreatedBy: dv.ID}
				c.putDataset(ds)
				if err := c.logOp(opDataset, ds); err != nil {
					return err
				}
			}
		}

		c.indexDerivation(dv, tr)
		if err := c.logOp(opDerivation, dv); err != nil {
			return err
		}
		stored = dv
		return nil
	})
	if err != nil && !errors.Is(err, ErrDuplicate) {
		return schema.Derivation{}, err
	}
	return stored, err
}

// Derivation returns the derivation with the given ID.
func (c *Catalog) Derivation(id string) (schema.Derivation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	dv, ok := c.derivations[id]
	if !ok {
		return schema.Derivation{}, fmt.Errorf("%w: derivation %q", ErrNotFound, id)
	}
	return dv, nil
}

// FindDerivation checks whether an equivalent derivation (same
// canonical signature) is already registered — the paper's "has this
// computation been performed previously?" in O(1).
func (c *Catalog) FindDerivation(dv schema.Derivation) (schema.Derivation, bool) {
	sig := dv.Signature()
	c.mu.RLock()
	defer c.mu.RUnlock()
	found, ok := c.derivations[sig]
	return found, ok
}

// FindEquivalentDerivation extends FindDerivation with the paper's §8
// version-equivalence model: if no derivation matches exactly, the
// lookup retries under every registered version of the transformation
// asserted Compatible with the requested one. It returns the match and
// the transformation ref it was found under.
func (c *Catalog) FindEquivalentDerivation(dv schema.Derivation) (schema.Derivation, string, bool) {
	if found, ok := c.FindDerivation(dv); ok {
		return found, dv.TR, true
	}
	ns, name, ver, err := schema.ParseTRRef(dv.TR)
	if err != nil {
		return schema.Derivation{}, "", false
	}
	for _, v := range c.Versions(ns, name) {
		if v == ver || !c.Compatible(ns, name, ver, v) {
			continue
		}
		alt := dv
		alt.TR = schema.FormatTRRef(ns, name, v)
		alt.ID = ""
		if found, ok := c.FindDerivation(alt); ok {
			return found, alt.TR, true
		}
	}
	return schema.Derivation{}, "", false
}

// Derivations returns all derivations sorted by ID.
func (c *Catalog) Derivations() []schema.Derivation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]schema.Derivation, 0, len(c.derivations))
	for _, dv := range c.derivations {
		out = append(out, dv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Invocations -------------------------------------------------------

// AddInvocation records an execution of a registered derivation,
// registering any produced replicas it cites.
func (c *Catalog) AddInvocation(iv schema.Invocation) error {
	wait, err := c.AddInvocationAsync(iv)
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// AddInvocationAsync applies the invocation under the catalog lock and
// returns without waiting for durability; the returned wait function
// blocks until the record's WAL batch is durable (ErrDurability on
// failure). wait is nil when there is nothing to wait for. Callers that
// need the synchronous contract use AddInvocation.
func (c *Catalog) AddInvocationAsync(iv schema.Invocation) (wait func() error, err error) {
	opAddIV.Inc()
	defer func() { err = countErr("add_invocation", err) }()
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	w, err := c.mutateAsync(func() error {
		if _, ok := c.derivations[iv.Derivation]; !ok {
			return fmt.Errorf("%w: invocation %q cites unknown derivation %q", ErrNotFound, iv.ID, iv.Derivation)
		}
		if _, ok := c.invocations[iv.ID]; ok {
			return fmt.Errorf("%w: invocation %q", ErrExists, iv.ID)
		}
		c.putInvocation(iv)
		return c.logOp(opInvocation, iv)
	})
	if err != nil || w == nil {
		return nil, err
	}
	return func() error { return countErr("add_invocation", w()) }, nil
}

// Invocation returns the invocation with the given ID.
func (c *Catalog) Invocation(id string) (schema.Invocation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	iv, ok := c.invocations[id]
	if !ok {
		return schema.Invocation{}, fmt.Errorf("%w: invocation %q", ErrNotFound, id)
	}
	return iv, nil
}

// HasInvocations reports whether a derivation has recorded at least one
// invocation, without copying them — the cheap emptiness test the
// query layer's `executed` flag wants.
func (c *Catalog) HasInvocations(derivation string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.executed.Has(derivation)
}

// InvocationCount returns the number of invocations recorded for a
// derivation.
func (c *Catalog) InvocationCount(derivation string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.invocationsByDV[derivation])
}

// InvocationsOf returns the invocations of one derivation, in insertion
// order.
func (c *Catalog) InvocationsOf(derivation string) []schema.Invocation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := c.invocationsByDV[derivation]
	out := make([]schema.Invocation, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.invocations[id])
	}
	return out
}

// Invocations returns all invocations sorted by ID.
func (c *Catalog) Invocations() []schema.Invocation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]schema.Invocation, 0, len(c.invocations))
	for _, iv := range c.invocations {
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Replicas ----------------------------------------------------------

// AddReplica registers a physical replica of a known dataset.
func (c *Catalog) AddReplica(r schema.Replica) error {
	wait, err := c.AddReplicaAsync(r)
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// AddReplicaAsync applies the replica under the catalog lock and
// returns without waiting for durability, like AddInvocationAsync.
func (c *Catalog) AddReplicaAsync(r schema.Replica) (wait func() error, err error) {
	opAddReplica.Inc()
	defer func() { err = countErr("add_replica", err) }()
	if err := r.Validate(); err != nil {
		return nil, err
	}
	w, err := c.mutateAsync(func() error {
		if _, ok := c.datasets[r.Dataset]; !ok {
			return fmt.Errorf("%w: replica %q cites unknown dataset %q", ErrNotFound, r.ID, r.Dataset)
		}
		if _, ok := c.replicas[r.ID]; ok {
			return fmt.Errorf("%w: replica %q", ErrExists, r.ID)
		}
		c.putReplica(r)
		return c.logOp(opReplica, r)
	})
	if err != nil || w == nil {
		return nil, err
	}
	return func() error { return countErr("add_replica", w()) }, nil
}

// RemoveReplica deletes a replica record (e.g. when a planner reclaims
// storage).
func (c *Catalog) RemoveReplica(id string) (err error) {
	opRmReplica.Inc()
	defer func() { err = countErr("remove_replica", err) }()
	return c.mutate(func() error {
		r, ok := c.dropReplica(id)
		if !ok {
			return fmt.Errorf("%w: replica %q", ErrNotFound, id)
		}
		return c.logOp(opRemoveReplica, r.ID)
	})
}

// Replica returns the replica with the given ID.
func (c *Catalog) Replica(id string) (schema.Replica, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.replicas[id]
	if !ok {
		return schema.Replica{}, fmt.Errorf("%w: replica %q", ErrNotFound, id)
	}
	return r, nil
}

// ReplicasOf lists the replicas of a dataset, in registration order.
func (c *Catalog) ReplicasOf(dataset string) []schema.Replica {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := c.replicasByDataset[dataset]
	out := make([]schema.Replica, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.replicas[id])
	}
	return out
}

// Materialized reports whether a dataset has at least one replica at
// its current epoch.
func (c *Catalog) Materialized(dataset string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.materializedLocked(dataset)
}

func (c *Catalog) materializedLocked(dataset string) bool {
	// The flag set is maintained by every mutation path (index.go), so
	// membership is the answer — no replica scan.
	return c.idx.materialized.Has(dataset)
}

// Stats summarizes catalog contents.
type Stats struct {
	Datasets, Transformations, Derivations, Invocations, Replicas int
}

// Stats returns object counts.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Datasets:        len(c.datasets),
		Transformations: len(c.transformations),
		Derivations:     len(c.derivations),
		Invocations:     len(c.invocations),
		Replicas:        len(c.replicas),
	}
}

// equalJSON compares two values by canonical encoding.
func equalJSON(a, b any) bool {
	ab, err1 := schema.CanonicalBytes(a)
	bb, err2 := schema.CanonicalBytes(b)
	return err1 == nil && err2 == nil && string(ab) == string(bb)
}
