package catalog

import (
	"fmt"
	"sort"
	"strings"

	"chimera/internal/schema"
)

// Provenance navigation. The provenance graph is bipartite: dataset
// nodes alternate with derivation nodes. Upward (ancestor) edges run
// from a dataset to its producing derivation and from a derivation to
// its input datasets; downward (descendant) edges are the inverses.
//
// A traversal hops shards: producerOf/consumersOf live on each
// dataset's home shard, inputsOf/outputsOf on each derivation's. Every
// entry point walks an epoch View (view.go) — the published snapshots,
// read with zero lock acquisitions — and routes each map access to the
// owning shard's state. Callers that need the ordered-snapshot oracle
// instead can open a LockedView and use its Ancestors/Descendants.

// Producer returns the derivation registered as producing the dataset,
// or ErrNotFound for primary data.
func (c *Catalog) Producer(dataset string) (schema.Derivation, error) {
	v := c.View()
	defer v.Close()
	id, ok := v.state(dataset).producerOf[dataset]
	if !ok {
		return schema.Derivation{}, fmt.Errorf("%w: no producer for dataset %q", ErrNotFound, dataset)
	}
	return v.state(id).derivations[id], nil
}

// Consumers returns the derivations that read the dataset.
func (c *Catalog) Consumers(dataset string) []schema.Derivation {
	v := c.View()
	defer v.Close()
	ids := v.state(dataset).consumersOf[dataset]
	out := make([]schema.Derivation, 0, len(ids))
	for _, id := range ids {
		out = append(out, v.state(id).derivations[id])
	}
	return out
}

// DerivationIO returns the input and output dataset names of a
// registered derivation.
func (c *Catalog) DerivationIO(id string) (inputs, outputs []string, err error) {
	v := c.View()
	defer v.Close()
	st := v.state(id)
	if _, ok := st.derivations[id]; !ok {
		return nil, nil, fmt.Errorf("%w: derivation %q", ErrNotFound, id)
	}
	return append([]string(nil), st.inputsOf[id]...), append([]string(nil), st.outputsOf[id]...), nil
}

// Closure identifies a set of datasets and derivations reached by a
// provenance traversal.
type Closure struct {
	// Datasets reached, sorted.
	Datasets []string
	// Derivations reached (IDs), sorted.
	Derivations []string
}

// Ancestors computes the upward provenance closure of a dataset: every
// derivation and dataset its content (transitively) depends on. The
// starting dataset itself is not included.
func (c *Catalog) Ancestors(dataset string) (Closure, error) {
	v := c.View()
	defer v.Close()
	return v.ancestors(dataset)
}

func (v *View) ancestors(dataset string) (Closure, error) {
	if _, ok := v.state(dataset).datasets[dataset]; !ok {
		return Closure{}, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	seenDS := make(map[string]bool)
	seenDV := make(map[string]bool)
	var walk func(ds string)
	walk = func(ds string) {
		dvID, ok := v.state(ds).producerOf[ds]
		if !ok || seenDV[dvID] {
			return
		}
		seenDV[dvID] = true
		for _, in := range v.state(dvID).inputsOf[dvID] {
			if !seenDS[in] {
				seenDS[in] = true
				walk(in)
			}
		}
	}
	walk(dataset)
	return closureOf(seenDS, seenDV), nil
}

// Descendants computes the downward closure of a dataset: every
// derivation that (transitively) consumed it and every dataset those
// derivations produce. The starting dataset itself is not included.
func (c *Catalog) Descendants(dataset string) (Closure, error) {
	v := c.View()
	defer v.Close()
	return v.descendants(dataset)
}

func (v *View) descendants(dataset string) (Closure, error) {
	if _, ok := v.state(dataset).datasets[dataset]; !ok {
		return Closure{}, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	seenDS := make(map[string]bool)
	seenDV := make(map[string]bool)
	var walk func(ds string)
	walk = func(ds string) {
		for _, dvID := range v.state(ds).consumersOf[ds] {
			if seenDV[dvID] {
				continue
			}
			seenDV[dvID] = true
			for _, out := range v.state(dvID).outputsOf[dvID] {
				if !seenDS[out] {
					seenDS[out] = true
					walk(out)
				}
			}
		}
	}
	walk(dataset)
	return closureOf(seenDS, seenDV), nil
}

func closureOf(ds, dv map[string]bool) Closure {
	cl := Closure{
		Datasets:    make([]string, 0, len(ds)),
		Derivations: make([]string, 0, len(dv)),
	}
	for k := range ds {
		cl.Datasets = append(cl.Datasets, k)
	}
	for k := range dv {
		cl.Derivations = append(cl.Derivations, k)
	}
	sort.Strings(cl.Datasets)
	sort.Strings(cl.Derivations)
	return cl
}

// Invalidate answers the paper's audit-trail question "I've detected a
// calibration error in an instrument and want to know which derived
// data to recompute": given a (primary or derived) dataset now known to
// be bad, it returns the derived datasets downstream of it, i.e. the
// recomputation set, together with the derivations to re-run.
func (c *Catalog) Invalidate(dataset string) (Closure, error) {
	return c.Descendants(dataset)
}

// LineageStep is one level of a lineage report: a derivation, the
// transformation it specializes, its input datasets, and the
// invocations recorded for it.
type LineageStep struct {
	Derivation  schema.Derivation
	TR          string
	Inputs      []string
	Outputs     []string
	Invocations []schema.Invocation
	// Depth is the distance (in derivation steps) from the queried
	// dataset: 1 for the producing derivation, 2 for producers of its
	// inputs, and so on.
	Depth int
}

// LineageReport is the complete audit trail of a dataset: how it was
// produced from primary data, derivation by derivation, nearest first.
type LineageReport struct {
	Dataset string
	// Primary reports whether the dataset has no recorded producer.
	Primary bool
	Steps   []LineageStep
	// PrimarySources are the underived datasets at the roots.
	PrimarySources []string
}

// DOT renders the lineage report as a GraphViz digraph: datasets as
// ellipses, derivations as boxes labelled with their transformation,
// edges following the dataflow (inputs → derivation → outputs).
func (r LineageReport) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lineage {\n  rankdir=BT;\n")
	fmt.Fprintf(&b, "  %q [shape=ellipse, style=bold];\n", r.Dataset)
	seenDS := map[string]bool{r.Dataset: true}
	for _, step := range r.Steps {
		fmt.Fprintf(&b, "  %q [shape=box, label=%q];\n", step.Derivation.ID, step.TR)
		for _, out := range step.Outputs {
			if !seenDS[out] {
				seenDS[out] = true
				fmt.Fprintf(&b, "  %q [shape=ellipse];\n", out)
			}
			fmt.Fprintf(&b, "  %q -> %q;\n", step.Derivation.ID, out)
		}
		for _, in := range step.Inputs {
			if !seenDS[in] {
				seenDS[in] = true
				fmt.Fprintf(&b, "  %q [shape=ellipse];\n", in)
			}
			fmt.Fprintf(&b, "  %q -> %q;\n", in, step.Derivation.ID)
		}
	}
	for _, p := range r.PrimarySources {
		fmt.Fprintf(&b, "  %q [shape=ellipse, style=dashed];\n", p)
	}
	b.WriteString("}\n")
	return b.String()
}

// Lineage produces the dataset's full audit trail. Steps appear in
// breadth-first order from the dataset; each derivation appears once at
// its minimum depth.
func (c *Catalog) Lineage(dataset string) (LineageReport, error) {
	v := c.View()
	defer v.Close()
	if _, ok := v.state(dataset).datasets[dataset]; !ok {
		return LineageReport{}, fmt.Errorf("%w: dataset %q", ErrNotFound, dataset)
	}
	rep := LineageReport{Dataset: dataset}
	if _, ok := v.state(dataset).producerOf[dataset]; !ok {
		rep.Primary = true
		rep.PrimarySources = []string{dataset}
		return rep, nil
	}
	type qe struct {
		ds    string
		depth int
	}
	queue := []qe{{dataset, 0}}
	seenDV := make(map[string]bool)
	seenDS := map[string]bool{dataset: true}
	primaries := make(map[string]bool)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		dvID, ok := v.state(cur.ds).producerOf[cur.ds]
		if !ok {
			primaries[cur.ds] = true
			continue
		}
		if seenDV[dvID] {
			continue
		}
		seenDV[dvID] = true
		// The derivation, its IO adjacency, and its invocations are all
		// homed on one shard.
		ss := v.state(dvID)
		dv := ss.derivations[dvID]
		step := LineageStep{
			Derivation: dv,
			TR:         dv.TR,
			Inputs:     append([]string(nil), ss.inputsOf[dvID]...),
			Outputs:    append([]string(nil), ss.outputsOf[dvID]...),
			Depth:      cur.depth + 1,
		}
		for _, ivID := range ss.invocationsByDV[dvID] {
			step.Invocations = append(step.Invocations, ss.invocations[ivID])
		}
		rep.Steps = append(rep.Steps, step)
		for _, in := range ss.inputsOf[dvID] {
			if !seenDS[in] {
				seenDS[in] = true
				queue = append(queue, qe{in, cur.depth + 1})
			}
		}
	}
	for p := range primaries {
		rep.PrimarySources = append(rep.PrimarySources, p)
	}
	sort.Strings(rep.PrimarySources)
	return rep, nil
}

// MaterializationPlan returns the derivations that must run, in
// dependency (topological) order, to materialize the target dataset,
// given the predicate that reports which datasets are already
// materialized. Materialized datasets prune the traversal: their
// ancestors need not run. A dataset that is unmaterialized, underived
// and not primary input data is an error.
func (c *Catalog) MaterializationPlan(target string, materialized func(dataset string) bool) ([]schema.Derivation, error) {
	v := c.View()
	defer v.Close()
	if _, ok := v.state(target).datasets[target]; !ok {
		return nil, fmt.Errorf("%w: dataset %q", ErrNotFound, target)
	}
	if materialized == nil {
		materialized = v.Materialized
	}
	var order []schema.Derivation
	visiting := make(map[string]bool) // derivation IDs on the stack
	done := make(map[string]bool)     // derivation IDs emitted
	var need func(ds string, forWhom string) error
	need = func(ds string, forWhom string) error {
		if materialized(ds) {
			return nil
		}
		dvID, ok := v.state(ds).producerOf[ds]
		if !ok {
			return fmt.Errorf("%w: dataset %q is needed%s but is neither materialized nor derivable", ErrNotFound, ds, forWhom)
		}
		if done[dvID] {
			return nil
		}
		if visiting[dvID] {
			return fmt.Errorf("%w: derivation cycle at dataset %q", ErrConflict, ds)
		}
		visiting[dvID] = true
		for _, in := range v.state(dvID).inputsOf[dvID] {
			if err := need(in, fmt.Sprintf(" by derivation %s", dvID)); err != nil {
				return err
			}
		}
		visiting[dvID] = false
		done[dvID] = true
		order = append(order, v.state(dvID).derivations[dvID])
		return nil
	}
	if err := need(target, ""); err != nil {
		return nil, err
	}
	return order, nil
}
