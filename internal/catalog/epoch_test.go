package catalog

import (
	"errors"
	"testing"

	"chimera/internal/schema"
)

func TestBumpEpochBasics(t *testing.T) {
	c := New(nil)
	if _, err := c.BumpEpoch("ghost", false); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown dataset: %v", err)
	}
	c.AddDataset(schema.Dataset{Name: "d"})
	c.AddReplica(schema.Replica{ID: "r1", Dataset: "d", Site: "s", PFN: "/d"})
	if !c.Materialized("d") {
		t.Fatal("setup")
	}

	// Bump without re-stamp: replica goes stale.
	epoch, err := c.BumpEpoch("d", false)
	if err != nil || epoch != 1 {
		t.Fatalf("bump: %d %v", epoch, err)
	}
	if c.Materialized("d") {
		t.Error("stale replica still materializes")
	}

	// Bump with re-stamp: replica follows.
	epoch, err = c.BumpEpoch("d", true)
	if err != nil || epoch != 2 {
		t.Fatalf("bump2: %d %v", epoch, err)
	}
	if !c.Materialized("d") {
		t.Error("re-stamped replica does not materialize")
	}
	if got := c.ReplicasOf("d")[0].Epoch; got != 2 {
		t.Errorf("replica epoch: %d", got)
	}
}

func TestBumpEpochSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.AddDataset(schema.Dataset{Name: "d"})
	c.AddReplica(schema.Replica{ID: "r1", Dataset: "d", Site: "s", PFN: "/d"})
	if _, err := c.BumpEpoch("d", true); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ds, err := c2.Dataset("d")
	if err != nil || ds.Epoch != 1 {
		t.Errorf("epoch after replay: %+v %v", ds, err)
	}
	reps := c2.ReplicasOf("d")
	if len(reps) != 1 || reps[0].Epoch != 1 {
		t.Errorf("replica after replay: %+v", reps)
	}
	if !c2.Materialized("d") {
		t.Error("materialization lost in replay")
	}
}

func TestFindEquivalentDerivation(t *testing.T) {
	c := New(nil)
	mk := func(ver string) schema.Transformation {
		return schema.Transformation{Name: "sim", Version: ver, Kind: schema.Simple, Exec: "/bin/sim-" + ver,
			Args: []schema.FormalArg{
				{Name: "a2", Direction: schema.Out},
				{Name: "a1", Direction: schema.In},
			}}
	}
	for _, v := range []string{"1.0", "1.1", "2.0"} {
		if err := c.AddTransformation(mk(v)); err != nil {
			t.Fatal(err)
		}
	}
	mkDV := func(ver string) schema.Derivation {
		return schema.Derivation{TR: "sim:" + ver, Params: map[string]schema.Actual{
			"a2": schema.DatasetActual("output", "out-"+ver),
			"a1": schema.DatasetActual("input", "in"),
		}}
	}
	// A product exists under 1.0.
	stored, err := c.AddDerivation(mkDV("1.0"))
	if err != nil {
		t.Fatal(err)
	}

	// Exact match still wins.
	got, via, ok := c.FindEquivalentDerivation(mkDV("1.0"))
	if !ok || got.ID != stored.ID || via != "sim:1.0" {
		t.Fatalf("exact: %v %q %v", got.ID, via, ok)
	}

	// 1.1 request: no assertion yet -> miss.
	want11 := mkDV("1.1")
	want11.Params["a2"] = schema.DatasetActual("output", "out-1.0")
	if _, _, ok := c.FindEquivalentDerivation(want11); ok {
		t.Fatal("unasserted equivalence matched")
	}
	// Assert 1.0 ~ 1.1: the 1.0 product now satisfies a 1.1 request
	// with identical arguments.
	if err := c.AssertCompatibility(schema.CompatibilityAssertion{
		Name: "sim", V1: "1.0", V2: "1.1", Mode: schema.Equivalent}); err != nil {
		t.Fatal(err)
	}
	got, via, ok = c.FindEquivalentDerivation(want11)
	if !ok || got.ID != stored.ID || via != "sim:1.0" {
		t.Fatalf("equivalent: %v %q %v", got.ID, via, ok)
	}
	// 2.0 is not asserted compatible.
	want20 := mkDV("2.0")
	want20.Params["a2"] = schema.DatasetActual("output", "out-1.0")
	if _, _, ok := c.FindEquivalentDerivation(want20); ok {
		t.Fatal("incompatible version matched")
	}
	// Different arguments never match.
	other := mkDV("1.1")
	other.Params["a1"] = schema.DatasetActual("input", "other-input")
	if _, _, ok := c.FindEquivalentDerivation(other); ok {
		t.Fatal("different args matched")
	}
	// Malformed ref is a miss, not a panic.
	if _, _, ok := c.FindEquivalentDerivation(schema.Derivation{TR: "ns::"}); ok {
		t.Fatal("bad ref matched")
	}
}

func TestLineageDOT(t *testing.T) {
	c := New(nil)
	c.AddTransformation(twoArg("t"))
	c.AddDerivation(chainDV("t", "a", "b"))
	c.AddDerivation(chainDV("t", "b", "target"))
	rep, err := c.Lineage("target")
	if err != nil {
		t.Fatal(err)
	}
	dot := rep.DOT()
	for _, want := range []string{"digraph lineage", `"a"`, `"b"`, `"target"`, "shape=box", "->"} {
		if !containsStr(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
