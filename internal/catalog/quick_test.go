package catalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"chimera/internal/schema"
)

// Property (testing/quick): derivation duplicate detection is exactly
// signature equality — two derivations with the same TR, params and env
// always collapse; any difference always registers separately.
func TestDuplicateDetectionQuick(t *testing.T) {
	type params struct {
		In1, In2, P string
		SameInputs  bool
		SameParam   bool
	}
	f := func(a params) bool {
		c := New(nil)
		tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/t",
			Args: []schema.FormalArg{
				{Name: "o", Direction: schema.Out},
				{Name: "i", Direction: schema.In},
				{Name: "p", Direction: schema.None},
			}}
		if err := c.AddTransformation(tr); err != nil {
			return false
		}
		clean := func(s, fallback string) string {
			for _, r := range s {
				if r == ' ' || r == '"' || r == '$' || r == '{' || r == '}' || r == '@' || r == '\t' || r == '\n' {
					return fallback
				}
			}
			if s == "" {
				return fallback
			}
			return s
		}
		in1 := clean(a.In1, "in1")
		in2 := clean(a.In2, "in2")
		if a.SameInputs {
			in2 = in1
		}
		p1 := a.P
		p2 := a.P
		if !a.SameParam {
			p2 = a.P + "x"
		}
		dv1 := schema.Derivation{TR: "t", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", "out1"),
			"i": schema.DatasetActual("input", in1),
			"p": schema.StringActual(p1),
		}}
		dv2 := schema.Derivation{TR: "t", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", "out1"),
			"i": schema.DatasetActual("input", in2),
			"p": schema.StringActual(p2),
		}}
		identical := in1 == in2 && p1 == p2
		if _, err := c.AddDerivation(dv1); err != nil {
			return false
		}
		_, err := c.AddDerivation(dv2)
		if identical {
			return err == ErrDuplicate
		}
		// Different computation producing the same output: conflict.
		return err != nil && err != ErrDuplicate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: after any sequence of successful catalog operations, the
// provenance indexes are mutually consistent: every producer edge has a
// matching consumer edge view and vice versa.
func TestIndexConsistencyAfterRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		c := New(nil)
		tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/t",
			Args: []schema.FormalArg{
				{Name: "o", Direction: schema.Out},
				{Name: "i", Direction: schema.In},
			}}
		if err := c.AddTransformation(tr); err != nil {
			t.Fatal(err)
		}
		nextDS := 0
		for op := 0; op < 100; op++ {
			in := fmt.Sprintf("p%d_%d", trial, rng.Intn(nextDS+1))
			out := fmt.Sprintf("p%d_%d", trial, nextDS+1)
			nextDS++
			c.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
				"o": schema.DatasetActual("output", out),
				"i": schema.DatasetActual("input", in),
			}})
			if rng.Intn(4) == 0 {
				c.AddReplica(schema.Replica{
					ID: fmt.Sprintf("r%d_%d", trial, op), Dataset: out,
					Site: "s", PFN: "/x"})
			}
		}
		// Consistency: for every derivation, each input lists it among
		// consumers' derivations and each output's producer is it.
		for _, dv := range c.Derivations() {
			ins, outs, err := c.DerivationIO(dv.ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range ins {
				found := false
				for _, consumer := range c.Consumers(in) {
					if consumer.ID == dv.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("consumer index missing %s <- %s", dv.ID, in)
				}
			}
			for _, out := range outs {
				prod, err := c.Producer(out)
				if err != nil || prod.ID != dv.ID {
					t.Fatalf("producer index wrong for %s", out)
				}
			}
		}
		// Ancestors ∋ x ⇔ Descendants(x) ∋ it (spot check).
		dss := c.Datasets()
		for i := 0; i < 20; i++ {
			a := dss[rng.Intn(len(dss))].Name
			b := dss[rng.Intn(len(dss))].Name
			anc, err := c.Ancestors(a)
			if err != nil {
				t.Fatal(err)
			}
			inAnc := false
			for _, x := range anc.Datasets {
				if x == b {
					inAnc = true
				}
			}
			desc, err := c.Descendants(b)
			if err != nil {
				t.Fatal(err)
			}
			inDesc := false
			for _, x := range desc.Datasets {
				if x == a {
					inDesc = true
				}
			}
			if inAnc != inDesc {
				t.Fatalf("ancestor/descendant asymmetry between %s and %s", a, b)
			}
		}
	}
}

func BenchmarkAddDerivation(b *testing.B) {
	c := New(nil)
	c.AddTransformation(twoArg("t"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AddDerivation(chainDV("t", fmt.Sprintf("i%d", i), fmt.Sprintf("o%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLineageDeepChain(b *testing.B) {
	c := New(nil)
	c.AddTransformation(twoArg("t"))
	const depth = 500
	for i := 0; i < depth; i++ {
		if _, err := c.AddDerivation(chainDV("t", fmt.Sprintf("f%d", i), fmt.Sprintf("f%d", i+1))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Lineage(fmt.Sprintf("f%d", depth)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindDerivation(b *testing.B) {
	c := New(nil)
	c.AddTransformation(twoArg("t"))
	for i := 0; i < 10000; i++ {
		c.AddDerivation(chainDV("t", fmt.Sprintf("i%d", i), fmt.Sprintf("o%d", i)))
	}
	probe := chainDV("t", "i5000", "o5000")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.FindDerivation(probe); !ok {
			b.Fatal("miss")
		}
	}
}

func TestGetterSurfaces(t *testing.T) {
	c := New(nil)
	c.AddTransformation(twoArg("t"))
	dv, _ := c.AddDerivation(chainDV("t", "a", "b"))
	c.AddReplica(schema.Replica{ID: "r1", Dataset: "b", Site: "s", PFN: "/b"})
	c.AddInvocation(schema.Invocation{ID: "iv1", Derivation: dv.ID})

	if got := c.Transformations(); len(got) != 1 || got[0].Name != "t" {
		t.Errorf("Transformations: %v", got)
	}
	if got, err := c.Derivation(dv.ID); err != nil || got.ID != dv.ID {
		t.Errorf("Derivation: %v %v", got, err)
	}
	if _, err := c.Derivation("ghost"); err == nil {
		t.Error("ghost derivation accepted")
	}
	if got := c.Invocations(); len(got) != 1 || got[0].ID != "iv1" {
		t.Errorf("Invocations: %v", got)
	}
	if got, err := c.Replica("r1"); err != nil || got.Dataset != "b" {
		t.Errorf("Replica: %v %v", got, err)
	}
	if _, err := c.Replica("ghost"); err == nil {
		t.Error("ghost replica accepted")
	}
}

func TestImportTolerantSkipsConflicts(t *testing.T) {
	// Source A and B disagree on transformation "t" and dataset "raw".
	a := New(nil)
	a.AddTransformation(twoArg("t"))
	a.AddDataset(schema.Dataset{Name: "raw", Size: 1})
	a.AddDerivation(chainDV("t", "raw", "outA"))

	b := New(nil)
	conflicting := twoArg("t")
	conflicting.Exec = "/different"
	b.AddTransformation(conflicting)
	b.AddTransformation(twoArg("u"))
	b.AddDataset(schema.Dataset{Name: "raw", Size: 2})
	b.AddDataset(schema.Dataset{Name: "only-b"})
	b.AddDerivation(chainDV("u", "only-b", "outB"))

	merged := New(nil)
	if n := merged.ImportTolerant(a.Export()); n != 0 {
		t.Errorf("clean import skipped %d", n)
	}
	skipped := merged.ImportTolerant(b.Export())
	if skipped == 0 {
		t.Error("conflicts not counted")
	}
	// A's versions win; B's non-conflicting objects still land.
	tr, err := merged.Transformation("t")
	if err != nil || tr.Exec != "/usr/bin/t" {
		t.Errorf("conflicting TR: %+v %v", tr, err)
	}
	if _, err := merged.Transformation("u"); err != nil {
		t.Errorf("B's unique TR lost: %v", err)
	}
	if _, err := merged.Dataset("only-b"); err != nil {
		t.Errorf("B's unique dataset lost: %v", err)
	}
	if _, err := merged.Producer("outB"); err != nil {
		t.Errorf("B's derivation lost: %v", err)
	}
	// Idempotent second pass: everything already there counts as
	// duplicate (derivations) or conflict (datasets with same bytes are
	// fine; the conflicting raw is skipped again).
	again := merged.ImportTolerant(b.Export())
	if again == 0 {
		t.Error("expected repeat conflicts")
	}
}
