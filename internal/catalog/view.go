package catalog

import (
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// View is a consistent read-only snapshot of the catalog: it holds the
// catalog read lock from View() until Close(), so everything observed
// through it — objects, indexes, provenance closures — reflects one
// atomic state, no matter how many mutations race with the reader.
//
// Views exist for the discovery path: a query used to pay one lock
// round-trip plus a full copy+sort per object class, and then another
// lock round-trip per object for predicates like `materialized`. A
// View pays one RLock for the whole query and serves every lookup
// lock-free against the live maps.
//
// Rules: a View is not safe for use after Close; the goroutine holding
// it must not call any mutating catalog method before Close (the write
// lock would deadlock behind its own read lock); maps and slices
// returned by View methods are the catalog's own storage — read-only,
// and only valid until Close.
type View struct {
	c *Catalog
}

// View opens a consistent snapshot. Callers must Close it.
func (c *Catalog) View() *View {
	c.mu.RLock()
	return &View{c: c}
}

// Close releases the snapshot.
func (v *View) Close() {
	v.c.mu.RUnlock()
}

// Types returns the type registry. The registry has its own lock and
// outlives the view.
func (v *View) Types() *dtype.Registry { return v.c.types }

// --- object access -----------------------------------------------------

// Dataset looks up a dataset by name.
func (v *View) Dataset(name string) (schema.Dataset, bool) {
	ds, ok := v.c.datasets[name]
	return ds, ok
}

// Transformation looks up a transformation by exact canonical ref (no
// versionless resolution).
func (v *View) Transformation(ref string) (schema.Transformation, bool) {
	tr, ok := v.c.transformations[ref]
	return tr, ok
}

// Derivation looks up a derivation by ID.
func (v *View) Derivation(id string) (schema.Derivation, bool) {
	dv, ok := v.c.derivations[id]
	return dv, ok
}

// NumDatasets, NumTransformations, NumDerivations report object counts.
func (v *View) NumDatasets() int        { return len(v.c.datasets) }
func (v *View) NumTransformations() int { return len(v.c.transformations) }
func (v *View) NumDerivations() int     { return len(v.c.derivations) }

// RangeDatasets calls fn for every dataset, in map (unspecified) order,
// until fn returns false.
func (v *View) RangeDatasets(fn func(schema.Dataset) bool) {
	for _, ds := range v.c.datasets {
		if !fn(ds) {
			return
		}
	}
}

// RangeTransformations calls fn for every transformation, in map order,
// until fn returns false.
func (v *View) RangeTransformations(fn func(schema.Transformation) bool) {
	for _, tr := range v.c.transformations {
		if !fn(tr) {
			return
		}
	}
}

// RangeDerivations calls fn for every derivation, in map order, until
// fn returns false.
func (v *View) RangeDerivations(fn func(schema.Derivation) bool) {
	for _, dv := range v.c.derivations {
		if !fn(dv) {
			return
		}
	}
}

// --- per-object predicates --------------------------------------------

// Materialized reports whether the dataset has a current-epoch replica
// (O(1) from the flag set).
func (v *View) Materialized(dataset string) bool {
	return v.c.idx.materialized.Has(dataset)
}

// HasInvocations reports whether the derivation has recorded at least
// one invocation, without copying them.
func (v *View) HasInvocations(id string) bool {
	return v.c.idx.executed.Has(id)
}

// InvocationCount returns the number of recorded invocations of a
// derivation.
func (v *View) InvocationCount(id string) int {
	return len(v.c.invocationsByDV[id])
}

// Consumes reports whether the derivation reads the dataset.
func (v *View) Consumes(id, dataset string) bool {
	for _, in := range v.c.inputsOf[id] {
		if in == dataset {
			return true
		}
	}
	return false
}

// Produces reports whether the derivation produces the dataset.
func (v *View) Produces(id, dataset string) bool {
	return v.c.producerOf[dataset] == id
}

// Ancestors computes the upward provenance closure of a dataset within
// the snapshot. Same contract as Catalog.Ancestors.
func (v *View) Ancestors(dataset string) (Closure, error) {
	return v.c.ancestorsLocked(dataset)
}

// Descendants computes the downward provenance closure of a dataset
// within the snapshot. Same contract as Catalog.Descendants.
func (v *View) Descendants(dataset string) (Closure, error) {
	return v.c.descendantsLocked(dataset)
}

// --- index access (candidate sets for the query planner) ---------------

// DatasetsByAttr returns the datasets carrying attribute key=value.
func (v *View) DatasetsByAttr(key, value string) IndexSet {
	return v.c.idx.dsAttr[key][value]
}

// TransformationsByAttr returns the transformations carrying key=value.
func (v *View) TransformationsByAttr(key, value string) IndexSet {
	return v.c.idx.trAttr[key][value]
}

// DerivationsByAttr returns the derivations carrying key=value.
func (v *View) DerivationsByAttr(key, value string) IndexSet {
	return v.c.idx.dvAttr[key][value]
}

// DatasetsByType returns the datasets whose exact declared type
// conforms to t (subtype closure via the live registry). The returned
// set is freshly allocated when more than one exact type matches.
func (v *View) DatasetsByType(t dtype.Type) IndexSet {
	var only IndexSet
	var merged IndexSet
	for exact, set := range v.c.idx.dsByType {
		if !v.c.types.Conforms(exact, t) {
			continue
		}
		if only == nil && merged == nil {
			only = set
			continue
		}
		if merged == nil {
			merged = make(IndexSet, len(only)+len(set))
			for k := range only {
				merged[k] = struct{}{}
			}
			only = nil
		}
		for k := range set {
			merged[k] = struct{}{}
		}
	}
	if merged != nil {
		return merged
	}
	return only
}

// DerivedDatasets returns the datasets with a producing derivation.
func (v *View) DerivedDatasets() IndexSet { return v.c.idx.derived }

// MaterializedDatasets returns the datasets with a current-epoch
// replica.
func (v *View) MaterializedDatasets() IndexSet { return v.c.idx.materialized }

// ExecutedDerivations returns the derivations with >=1 invocation.
func (v *View) ExecutedDerivations() IndexSet { return v.c.idx.executed }

// DerivationsByTR returns the derivations citing the transformation
// reference: exact matches always, plus — when ref is versionless —
// derivations citing any version of ns::name.
func (v *View) DerivationsByTR(ref string) IndexSet {
	exact := v.c.idx.dvByTR[ref]
	ns, name, ver, err := schema.ParseTRRef(ref)
	if err != nil || ver != "" {
		return exact
	}
	base := v.c.idx.dvByTRBase[schema.FormatTRRef(ns, name, "")]
	if len(exact) == 0 {
		return base
	}
	if len(base) == 0 {
		return exact
	}
	merged := make(IndexSet, len(base)+len(exact))
	for k := range base {
		merged[k] = struct{}{}
	}
	for k := range exact {
		merged[k] = struct{}{}
	}
	return merged
}

// DerivationsByName returns the derivations whose display name (Name,
// or ID when unnamed) equals name.
func (v *View) DerivationsByName(name string) IndexSet {
	return v.c.idx.dvByName[name]
}

// HasTransformation reports whether the exact canonical ref is
// registered.
func (v *View) HasTransformation(ref string) bool {
	_, ok := v.c.transformations[ref]
	return ok
}

// ConsumersOf returns the IDs of derivations reading the dataset (the
// catalog's own slice — read-only).
func (v *View) ConsumersOf(dataset string) []string {
	return v.c.consumersOf[dataset]
}

// ProducerOf returns the ID of the derivation producing the dataset,
// or "" for primary data.
func (v *View) ProducerOf(dataset string) string {
	return v.c.producerOf[dataset]
}

// SortedSet returns the members of an index set, sorted — the helper
// query execution uses to keep result order deterministic.
func SortedSet(s IndexSet) []string { return sortedKeys(s) }
