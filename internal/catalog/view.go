package catalog

import (
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// View is a consistent read-only snapshot of the catalog: it holds
// every shard's read lock (taken in ascending order) from View() until
// Close(), so everything observed through it — objects, indexes,
// provenance closures — reflects one atomic state, no matter how many
// mutations race with the reader.
//
// Views exist for the discovery path: a query used to pay one lock
// round-trip plus a full copy+sort per object class, and then another
// lock round-trip per object for predicates like `materialized`. A
// View pays one lock sweep for the whole query and serves every lookup
// lock-free against the live maps, routed to the object's home shard.
//
// Rules: a View is not safe for use after Close; the goroutine holding
// it must not call any mutating catalog method before Close (the write
// lock would deadlock behind its own read lock); maps and slices
// returned by View methods are the catalog's own storage — read-only,
// and only valid until Close. Single-shard catalogs hand out live index
// sets; cross-shard candidate sets are merged copies.
type View struct {
	c *Catalog
}

// View opens a consistent snapshot. Callers must Close it.
func (c *Catalog) View() *View {
	c.rlockAll()
	return &View{c: c}
}

// Close releases the snapshot.
func (v *View) Close() {
	v.c.runlockAll()
}

// Types returns the type registry. The registry has its own lock and
// outlives the view.
func (v *View) Types() *dtype.Registry { return v.c.types }

// --- object access -----------------------------------------------------

// Dataset looks up a dataset by name.
func (v *View) Dataset(name string) (schema.Dataset, bool) {
	ds, ok := v.c.shardOf(name).datasets[name]
	return ds, ok
}

// Transformation looks up a transformation by exact canonical ref (no
// versionless resolution).
func (v *View) Transformation(ref string) (schema.Transformation, bool) {
	tr, ok := v.c.shardOfTR(ref).transformations[ref]
	return tr, ok
}

// Derivation looks up a derivation by ID.
func (v *View) Derivation(id string) (schema.Derivation, bool) {
	dv, ok := v.c.shardOf(id).derivations[id]
	return dv, ok
}

// NumDatasets, NumTransformations, NumDerivations report object counts.
func (v *View) NumDatasets() int {
	n := 0
	for _, s := range v.c.shards {
		n += len(s.datasets)
	}
	return n
}

func (v *View) NumTransformations() int {
	n := 0
	for _, s := range v.c.shards {
		n += len(s.transformations)
	}
	return n
}

func (v *View) NumDerivations() int {
	n := 0
	for _, s := range v.c.shards {
		n += len(s.derivations)
	}
	return n
}

// RangeDatasets calls fn for every dataset, in map (unspecified) order,
// until fn returns false.
func (v *View) RangeDatasets(fn func(schema.Dataset) bool) {
	for _, s := range v.c.shards {
		for _, ds := range s.datasets {
			if !fn(ds) {
				return
			}
		}
	}
}

// RangeTransformations calls fn for every transformation, in map order,
// until fn returns false.
func (v *View) RangeTransformations(fn func(schema.Transformation) bool) {
	for _, s := range v.c.shards {
		for _, tr := range s.transformations {
			if !fn(tr) {
				return
			}
		}
	}
}

// RangeDerivations calls fn for every derivation, in map order, until
// fn returns false.
func (v *View) RangeDerivations(fn func(schema.Derivation) bool) {
	for _, s := range v.c.shards {
		for _, dv := range s.derivations {
			if !fn(dv) {
				return
			}
		}
	}
}

// --- per-object predicates --------------------------------------------

// Materialized reports whether the dataset has a current-epoch replica
// (O(1) from the home shard's flag set).
func (v *View) Materialized(dataset string) bool {
	return v.c.shardOf(dataset).idx.materialized.Has(dataset)
}

// HasInvocations reports whether the derivation has recorded at least
// one invocation, without copying them.
func (v *View) HasInvocations(id string) bool {
	return v.c.shardOf(id).idx.executed.Has(id)
}

// InvocationCount returns the number of recorded invocations of a
// derivation.
func (v *View) InvocationCount(id string) int {
	return len(v.c.shardOf(id).invocationsByDV[id])
}

// Consumes reports whether the derivation reads the dataset.
func (v *View) Consumes(id, dataset string) bool {
	for _, in := range v.c.shardOf(id).inputsOf[id] {
		if in == dataset {
			return true
		}
	}
	return false
}

// Produces reports whether the derivation produces the dataset.
func (v *View) Produces(id, dataset string) bool {
	return v.c.shardOf(dataset).producerOf[dataset] == id
}

// Ancestors computes the upward provenance closure of a dataset within
// the snapshot. Same contract as Catalog.Ancestors.
func (v *View) Ancestors(dataset string) (Closure, error) {
	return v.c.ancestorsLocked(dataset)
}

// Descendants computes the downward provenance closure of a dataset
// within the snapshot. Same contract as Catalog.Descendants.
func (v *View) Descendants(dataset string) (Closure, error) {
	return v.c.descendantsLocked(dataset)
}

// --- index access (candidate sets for the query planner) ---------------

// gatherSets merges per-shard index sets into one candidate set. A
// single-shard catalog (and the none/one cross-shard cases) returns the
// live set without copying — the common fast path; only a genuinely
// cross-shard result allocates.
func gatherSets(sets []IndexSet) IndexSet {
	var only IndexSet
	var merged IndexSet
	for _, set := range sets {
		if len(set) == 0 {
			continue
		}
		if only == nil && merged == nil {
			only = set
			continue
		}
		if merged == nil {
			merged = make(IndexSet, len(only)+len(set))
			for k := range only {
				merged[k] = struct{}{}
			}
			only = nil
		}
		for k := range set {
			merged[k] = struct{}{}
		}
	}
	if merged != nil {
		return merged
	}
	return only
}

// gather runs pick on every shard's indexes and merges the results.
func (v *View) gather(pick func(*indexes) IndexSet) IndexSet {
	if len(v.c.shards) == 1 {
		return pick(&v.c.shards[0].idx)
	}
	sets := make([]IndexSet, 0, len(v.c.shards))
	for _, s := range v.c.shards {
		sets = append(sets, pick(&s.idx))
	}
	return gatherSets(sets)
}

// DatasetsByAttr returns the datasets carrying attribute key=value.
func (v *View) DatasetsByAttr(key, value string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.dsAttr[key][value] })
}

// TransformationsByAttr returns the transformations carrying key=value.
func (v *View) TransformationsByAttr(key, value string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.trAttr[key][value] })
}

// DerivationsByAttr returns the derivations carrying key=value.
func (v *View) DerivationsByAttr(key, value string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.dvAttr[key][value] })
}

// DatasetsByType returns the datasets whose exact declared type
// conforms to t (subtype closure via the live registry). The returned
// set is freshly allocated when more than one exact type matches.
func (v *View) DatasetsByType(t dtype.Type) IndexSet {
	var sets []IndexSet
	for _, s := range v.c.shards {
		for exact, set := range s.idx.dsByType {
			if v.c.types.Conforms(exact, t) {
				sets = append(sets, set)
			}
		}
	}
	return gatherSets(sets)
}

// DerivedDatasets returns the datasets with a producing derivation.
func (v *View) DerivedDatasets() IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.derived })
}

// MaterializedDatasets returns the datasets with a current-epoch
// replica.
func (v *View) MaterializedDatasets() IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.materialized })
}

// ExecutedDerivations returns the derivations with >=1 invocation.
func (v *View) ExecutedDerivations() IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.executed })
}

// DerivationsByTR returns the derivations citing the transformation
// reference: exact matches always, plus — when ref is versionless —
// derivations citing any version of ns::name. Both index families live
// on the derivation's home shard, so the sweep spans all shards.
func (v *View) DerivationsByTR(ref string) IndexSet {
	exact := v.gather(func(ix *indexes) IndexSet { return ix.dvByTR[ref] })
	ns, name, ver, err := schema.ParseTRRef(ref)
	if err != nil || ver != "" {
		return exact
	}
	baseRef := schema.FormatTRRef(ns, name, "")
	base := v.gather(func(ix *indexes) IndexSet { return ix.dvByTRBase[baseRef] })
	return gatherSets([]IndexSet{exact, base})
}

// DerivationsByName returns the derivations whose display name (Name,
// or ID when unnamed) equals name.
func (v *View) DerivationsByName(name string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.dvByName[name] })
}

// HasTransformation reports whether the exact canonical ref is
// registered.
func (v *View) HasTransformation(ref string) bool {
	_, ok := v.c.shardOfTR(ref).transformations[ref]
	return ok
}

// ConsumersOf returns the IDs of derivations reading the dataset (the
// catalog's own slice — read-only).
func (v *View) ConsumersOf(dataset string) []string {
	return v.c.shardOf(dataset).consumersOf[dataset]
}

// ProducerOf returns the ID of the derivation producing the dataset,
// or "" for primary data.
func (v *View) ProducerOf(dataset string) string {
	return v.c.shardOf(dataset).producerOf[dataset]
}

// SortedSet returns the members of an index set, sorted — the helper
// query execution uses to keep result order deterministic.
func SortedSet(s IndexSet) []string { return sortedKeys(s) }
