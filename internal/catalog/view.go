package catalog

import (
	"fmt"
	"strings"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// View is a consistent read-only snapshot of the catalog. The default
// (epoch) view pins each shard's published epoch (published.go) with a
// refcount — zero lock acquisitions, immutable state — so everything
// observed through it reflects one published snapshot per shard, no
// matter how many mutations race with the reader. LockedView is the
// legacy oracle: it holds every shard's read lock from open to Close
// and reads the live write side, giving ordered-snapshot consistency
// across shards at the cost of contending with writers.
//
// Epoch views are per-shard consistent: each shard's state is one
// atomic publication, but two shards may expose publications from
// slightly different moments (staleness bound: one group commit). At a
// quiescent point — every durability wait resolved — an epoch view and
// a locked view observe byte-identical state; the equivalence storm in
// published_test.go proves it.
//
// Rules: a View is not safe for use after Close; maps and slices
// returned by View methods are the snapshot's own storage — read-only,
// and (for locked views) only valid until Close. A goroutine holding a
// LockedView must not call any mutating catalog method before Close;
// epoch views have no such restriction.
type View struct {
	c      *Catalog
	states []*shardState
	// eps holds the pinned epochs (nil for locked views, which read the
	// write sides under rlockAll instead).
	eps []*publishedEpoch
	// seqs/vers are the per-shard cursor stamps of the snapshot: the
	// journal sequence and mutation version each shard's state was
	// published (or read) at.
	seqs []uint64
	vers []uint64
}

// View opens a lock-free snapshot of the published epochs. Callers must
// Close it.
func (c *Catalog) View() *View {
	n := len(c.shards)
	v := &View{
		c:      c,
		states: make([]*shardState, n),
		eps:    make([]*publishedEpoch, n),
		seqs:   make([]uint64, n),
		vers:   make([]uint64, n),
	}
	for i, s := range c.shards {
		e := s.acquire()
		v.eps[i] = e
		v.states[i] = e.state
		v.seqs[i] = e.seq
		v.vers[i] = e.ver
	}
	return v
}

// LockedView opens the legacy locked snapshot: every shard's read lock
// held until Close, reading the live write side. It is the equivalence
// oracle for the epoch read path and the option for callers that need
// ordered-snapshot consistency across shards (a locked reader can never
// observe a mutation without every mutation that happened-before it).
func (c *Catalog) LockedView() *View {
	c.rlockAll()
	n := len(c.shards)
	v := &View{c: c, states: make([]*shardState, n), seqs: make([]uint64, n), vers: make([]uint64, n)}
	for i, s := range c.shards {
		v.states[i] = s.shardState
		v.seqs[i] = s.lastSeq
		v.vers[i] = s.ver
	}
	return v
}

// Close releases the snapshot (epoch pins or read locks).
func (v *View) Close() {
	if v.eps == nil {
		v.c.runlockAll()
		return
	}
	for _, e := range v.eps {
		e.release()
	}
}

// Stamp reports the snapshot's (instance, per-shard seq) cursor: the
// journal identity plus the sequence of the last journaled mutation
// visible in each shard's state. This is the consistency stamp exports
// and explain output carry.
func (v *View) Stamp() (instance uint64, seqs []uint64) {
	return v.c.jinstance, v.seqs
}

// EpochKey renders the snapshot's identity — journal instance plus the
// per-shard mutation-version vector — as a compact string. Two views
// with equal keys observed identical state (versions advance on every
// mutation, including non-journaled adjacency updates), which is what
// makes the key safe to cache query results under.
func (v *View) EpochKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", v.c.jinstance)
	for _, ver := range v.vers {
		fmt.Fprintf(&b, ".%d", ver)
	}
	return b.String()
}

// Types returns the type registry. The registry has its own lock and
// outlives the view.
func (v *View) Types() *dtype.Registry { return v.c.types }

// state returns the snapshot state of the shard homing name.
func (v *View) state(name string) *shardState {
	return v.states[HomeShard(name, len(v.states))]
}

// stateTR returns the snapshot state of the shard homing a
// transformation reference.
func (v *View) stateTR(ref string) *shardState {
	return v.states[HomeShard(trHome(ref), len(v.states))]
}

// --- object access -----------------------------------------------------

// Dataset looks up a dataset by name.
func (v *View) Dataset(name string) (schema.Dataset, bool) {
	ds, ok := v.state(name).datasets[name]
	return ds, ok
}

// Transformation looks up a transformation by exact canonical ref (no
// versionless resolution).
func (v *View) Transformation(ref string) (schema.Transformation, bool) {
	tr, ok := v.stateTR(ref).transformations[ref]
	return tr, ok
}

// Derivation looks up a derivation by ID.
func (v *View) Derivation(id string) (schema.Derivation, bool) {
	dv, ok := v.state(id).derivations[id]
	return dv, ok
}

// NumDatasets, NumTransformations, NumDerivations report object counts.
func (v *View) NumDatasets() int {
	n := 0
	for _, st := range v.states {
		n += len(st.datasets)
	}
	return n
}

func (v *View) NumTransformations() int {
	n := 0
	for _, st := range v.states {
		n += len(st.transformations)
	}
	return n
}

func (v *View) NumDerivations() int {
	n := 0
	for _, st := range v.states {
		n += len(st.derivations)
	}
	return n
}

// RangeDatasets calls fn for every dataset, in map (unspecified) order,
// until fn returns false.
func (v *View) RangeDatasets(fn func(schema.Dataset) bool) {
	for _, st := range v.states {
		for _, ds := range st.datasets {
			if !fn(ds) {
				return
			}
		}
	}
}

// RangeTransformations calls fn for every transformation, in map order,
// until fn returns false.
func (v *View) RangeTransformations(fn func(schema.Transformation) bool) {
	for _, st := range v.states {
		for _, tr := range st.transformations {
			if !fn(tr) {
				return
			}
		}
	}
}

// RangeDerivations calls fn for every derivation, in map order, until
// fn returns false.
func (v *View) RangeDerivations(fn func(schema.Derivation) bool) {
	for _, st := range v.states {
		for _, dv := range st.derivations {
			if !fn(dv) {
				return
			}
		}
	}
}

// --- per-object predicates --------------------------------------------

// Materialized reports whether the dataset has a current-epoch replica
// (O(1) from the home shard's flag set).
func (v *View) Materialized(dataset string) bool {
	return v.state(dataset).idx.materialized.Has(dataset)
}

// HasInvocations reports whether the derivation has recorded at least
// one invocation, without copying them.
func (v *View) HasInvocations(id string) bool {
	return v.state(id).idx.executed.Has(id)
}

// InvocationCount returns the number of recorded invocations of a
// derivation.
func (v *View) InvocationCount(id string) int {
	return len(v.state(id).invocationsByDV[id])
}

// Consumes reports whether the derivation reads the dataset.
func (v *View) Consumes(id, dataset string) bool {
	for _, in := range v.state(id).inputsOf[id] {
		if in == dataset {
			return true
		}
	}
	return false
}

// Produces reports whether the derivation produces the dataset.
func (v *View) Produces(id, dataset string) bool {
	return v.state(dataset).producerOf[dataset] == id
}

// Ancestors computes the upward provenance closure of a dataset within
// the snapshot. Same contract as Catalog.Ancestors.
func (v *View) Ancestors(dataset string) (Closure, error) {
	return v.ancestors(dataset)
}

// Descendants computes the downward provenance closure of a dataset
// within the snapshot. Same contract as Catalog.Descendants.
func (v *View) Descendants(dataset string) (Closure, error) {
	return v.descendants(dataset)
}

// --- index access (candidate sets for the query planner) ---------------

// gatherSets merges per-shard index sets into one candidate set. A
// single-shard catalog (and the none/one cross-shard cases) returns the
// live set without copying — the common fast path; only a genuinely
// cross-shard result allocates.
func gatherSets(sets []IndexSet) IndexSet {
	var only IndexSet
	var merged IndexSet
	for _, set := range sets {
		if len(set) == 0 {
			continue
		}
		if only == nil && merged == nil {
			only = set
			continue
		}
		if merged == nil {
			merged = make(IndexSet, len(only)+len(set))
			for k := range only {
				merged[k] = struct{}{}
			}
			only = nil
		}
		for k := range set {
			merged[k] = struct{}{}
		}
	}
	if merged != nil {
		return merged
	}
	return only
}

// gather runs pick on every shard's indexes and merges the results.
func (v *View) gather(pick func(*indexes) IndexSet) IndexSet {
	if len(v.states) == 1 {
		return pick(&v.states[0].idx)
	}
	sets := make([]IndexSet, 0, len(v.states))
	for _, st := range v.states {
		sets = append(sets, pick(&st.idx))
	}
	return gatherSets(sets)
}

// DatasetsByAttr returns the datasets carrying attribute key=value.
func (v *View) DatasetsByAttr(key, value string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.dsAttr[key][value] })
}

// TransformationsByAttr returns the transformations carrying key=value.
func (v *View) TransformationsByAttr(key, value string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.trAttr[key][value] })
}

// DerivationsByAttr returns the derivations carrying key=value.
func (v *View) DerivationsByAttr(key, value string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.dvAttr[key][value] })
}

// DatasetsByType returns the datasets whose exact declared type
// conforms to t (subtype closure via the live registry). The returned
// set is freshly allocated when more than one exact type matches.
func (v *View) DatasetsByType(t dtype.Type) IndexSet {
	var sets []IndexSet
	for _, st := range v.states {
		for exact, set := range st.idx.dsByType {
			if v.c.types.Conforms(exact, t) {
				sets = append(sets, set)
			}
		}
	}
	return gatherSets(sets)
}

// DerivedDatasets returns the datasets with a producing derivation.
func (v *View) DerivedDatasets() IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.derived })
}

// MaterializedDatasets returns the datasets with a current-epoch
// replica.
func (v *View) MaterializedDatasets() IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.materialized })
}

// ExecutedDerivations returns the derivations with >=1 invocation.
func (v *View) ExecutedDerivations() IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.executed })
}

// DerivationsByTR returns the derivations citing the transformation
// reference: exact matches always, plus — when ref is versionless —
// derivations citing any version of ns::name. Both index families live
// on the derivation's home shard, so the sweep spans all shards.
func (v *View) DerivationsByTR(ref string) IndexSet {
	exact := v.gather(func(ix *indexes) IndexSet { return ix.dvByTR[ref] })
	ns, name, ver, err := schema.ParseTRRef(ref)
	if err != nil || ver != "" {
		return exact
	}
	baseRef := schema.FormatTRRef(ns, name, "")
	base := v.gather(func(ix *indexes) IndexSet { return ix.dvByTRBase[baseRef] })
	return gatherSets([]IndexSet{exact, base})
}

// DerivationsByName returns the derivations whose display name (Name,
// or ID when unnamed) equals name.
func (v *View) DerivationsByName(name string) IndexSet {
	return v.gather(func(ix *indexes) IndexSet { return ix.dvByName[name] })
}

// HasTransformation reports whether the exact canonical ref is
// registered.
func (v *View) HasTransformation(ref string) bool {
	_, ok := v.stateTR(ref).transformations[ref]
	return ok
}

// ConsumersOf returns the IDs of derivations reading the dataset (the
// snapshot's own slice — read-only).
func (v *View) ConsumersOf(dataset string) []string {
	return v.state(dataset).consumersOf[dataset]
}

// ProducerOf returns the ID of the derivation producing the dataset,
// or "" for primary data.
func (v *View) ProducerOf(dataset string) string {
	return v.state(dataset).producerOf[dataset]
}

// SortedSet returns the members of an index set, sorted — the helper
// query execution uses to keep result order deterministic.
func SortedSet(s IndexSet) []string { return sortedKeys(s) }
