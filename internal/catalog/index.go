package catalog

import (
	"fmt"
	"reflect"
	"sort"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Secondary indexes for the discovery path. Every index is maintained
// incrementally under its shard's write lock by the put*/drop* helpers
// below, which are the single funnel for all mutation paths — public
// mutators, WAL replay (apply), and snapshot load (applyExport) — so
// the indexes can never drift from the primary maps regardless of how
// state arrives. CheckIndexes verifies exactly that by rebuilding from
// scratch and comparing.
//
// Each shard owns the index entries for the objects homed on it, and
// every index is keyed by its object's home name (dataset indexes by
// dataset name, derivation indexes by derivation ID), so maintaining
// an entry never needs a lock the mutation does not already hold. The
// read side is Catalog.View (view.go): queries resolve candidate sets
// from these indexes — merged across shards when Shards()>1 — and
// iterate one consistent snapshot instead of copying and sorting the
// whole catalog per query.

// IndexSet is a set of object identifiers (dataset names, canonical
// transformation refs, or derivation IDs, depending on the index).
// Sets handed out by a View are shared, not copied: callers must treat
// them as read-only and must not retain them past View.Close.
type IndexSet map[string]struct{}

// Has reports membership.
func (s IndexSet) Has(id string) bool {
	_, ok := s[id]
	return ok
}

// indexes holds every secondary index. Empty sets are removed from
// their parent maps (and empty value maps from attribute indexes) so a
// populated-then-drained index compares equal to a freshly rebuilt one.
type indexes struct {
	// Attribute equality: key -> value -> members.
	dsAttr map[string]map[string]IndexSet // dataset names
	trAttr map[string]map[string]IndexSet // transformation refs
	dvAttr map[string]map[string]IndexSet // derivation IDs

	// Dataset exact type -> dataset names. Type conformance queries
	// union the sets of every registered exact type that conforms to
	// the queried type (the set of distinct exact types is small, so
	// the subtype closure is recomputed per query against the live
	// registry — no cache to invalidate on DefineType).
	dsByType map[dtype.Type]IndexSet

	// Flag sets.
	derived      IndexSet // dataset names with CreatedBy linkage
	materialized IndexSet // dataset names with >=1 replica at the current epoch
	executed     IndexSet // derivation IDs with >=1 invocation

	// Transformation-ref -> derivation IDs: by the exact TR string the
	// derivation cites, and by the versionless "ns::name" base so
	// `tr = ns::name` finds derivations citing any version. Keyed by
	// the derivation (the TR may be homed elsewhere).
	dvByTR     map[string]IndexSet
	dvByTRBase map[string]IndexSet

	// Display name -> derivation IDs (a derivation's query name is its
	// Name when set, otherwise its ID; names need not be unique).
	dvByName map[string]IndexSet
}

func newIndexes() indexes {
	return indexes{
		dsAttr:       make(map[string]map[string]IndexSet),
		trAttr:       make(map[string]map[string]IndexSet),
		dvAttr:       make(map[string]map[string]IndexSet),
		dsByType:     make(map[dtype.Type]IndexSet),
		derived:      make(IndexSet),
		materialized: make(IndexSet),
		executed:     make(IndexSet),
		dvByTR:       make(map[string]IndexSet),
		dvByTRBase:   make(map[string]IndexSet),
		dvByName:     make(map[string]IndexSet),
	}
}

// --- low-level set maintenance ----------------------------------------

func setAdd(m map[string]IndexSet, key, id string) {
	s, ok := m[key]
	if !ok {
		s = make(IndexSet)
		m[key] = s
	}
	s[id] = struct{}{}
}

func setRemove(m map[string]IndexSet, key, id string) {
	if s, ok := m[key]; ok {
		delete(s, id)
		if len(s) == 0 {
			delete(m, key)
		}
	}
}

func attrIndexAdd(idx map[string]map[string]IndexSet, attrs schema.Attributes, id string) {
	for k, v := range attrs {
		byVal, ok := idx[k]
		if !ok {
			byVal = make(map[string]IndexSet)
			idx[k] = byVal
		}
		setAdd(byVal, v, id)
	}
}

func attrIndexRemove(idx map[string]map[string]IndexSet, attrs schema.Attributes, id string) {
	for k, v := range attrs {
		if byVal, ok := idx[k]; ok {
			setRemove(byVal, v, id)
			if len(byVal) == 0 {
				delete(idx, k)
			}
		}
	}
}

// --- mutation funnel ---------------------------------------------------
//
// Each put*/drop* is split in two: a Catalog-level wrapper that routes
// to the home shard, applies a deterministic mutation closure through
// cshard.apply (which runs it on the write side and queues it for
// replay onto the published side at the next epoch swap), and journals;
// and a shardState-level method holding the actual map/index edits.
// The closures capture values only — replaying them in order against
// the retired epoch state reproduces the write side exactly, which is
// the left-right invariant CheckPublished verifies.

// putDataset installs or replaces a dataset record and all its index
// entries on the dataset's home shard. Callers hold that shard's write
// lock.
func (c *Catalog) putDataset(ds schema.Dataset) {
	s := c.shardOf(ds.Name)
	s.apply(func(st *shardState) { st.putDataset(ds) })
	s.noteJournal(c, jDataset, ds.Name, false)
}

func (st *shardState) putDataset(ds schema.Dataset) {
	if old, ok := st.datasets[ds.Name]; ok {
		attrIndexRemove(st.idx.dsAttr, old.Attrs, old.Name)
		if old.Type != ds.Type {
			setRemoveTyped(st.idx.dsByType, old.Type, old.Name)
		}
		if old.CreatedBy != "" && ds.CreatedBy == "" {
			delete(st.idx.derived, old.Name)
		}
	}
	st.datasets[ds.Name] = ds
	attrIndexAdd(st.idx.dsAttr, ds.Attrs, ds.Name)
	setAddTyped(st.idx.dsByType, ds.Type, ds.Name)
	if ds.CreatedBy != "" {
		st.idx.derived[ds.Name] = struct{}{}
	}
	// An epoch change can flip materialization either way.
	st.reindexMaterialized(ds.Name)
}

func setAddTyped(m map[dtype.Type]IndexSet, t dtype.Type, id string) {
	s, ok := m[t]
	if !ok {
		s = make(IndexSet)
		m[t] = s
	}
	s[id] = struct{}{}
}

func setRemoveTyped(m map[dtype.Type]IndexSet, t dtype.Type, id string) {
	if s, ok := m[t]; ok {
		delete(s, id)
		if len(s) == 0 {
			delete(m, t)
		}
	}
}

// putTransformation installs a transformation on its base's home
// shard, maintaining the version and attribute indexes. Callers hold
// that shard's write lock.
func (c *Catalog) putTransformation(tr schema.Transformation) {
	ref := tr.Ref()
	s := c.shardOfTR(ref)
	s.apply(func(st *shardState) { st.putTransformation(tr) })
	s.noteJournal(c, jTransformation, ref, false)
}

func (st *shardState) putTransformation(tr schema.Transformation) {
	ref := tr.Ref()
	if old, ok := st.transformations[ref]; ok {
		attrIndexRemove(st.idx.trAttr, old.Attrs, ref)
	} else {
		base := schema.FormatTRRef(tr.Namespace, tr.Name, "")
		st.versionsOf[base] = append(st.versionsOf[base], tr.Version)
	}
	st.transformations[ref] = tr
	attrIndexAdd(st.idx.trAttr, tr.Attrs, ref)
}

// indexDerivation installs a derivation with its provenance and
// secondary indexes. The record and derivation-keyed indexes land on
// the ID's home shard; each input/output dataset's adjacency entry
// lands on that dataset's shard. Callers hold the write locks of the
// ID's shard and of every input/output dataset's shard. No-op if the
// ID exists.
func (c *Catalog) indexDerivation(dv schema.Derivation, tr schema.Transformation) {
	home := c.shardOf(dv.ID)
	if _, ok := home.derivations[dv.ID]; ok {
		return
	}
	inputs := dv.Inputs(tr)
	outputs := dv.Outputs(tr)
	home.apply(func(st *shardState) { st.indexDerivationHome(dv, inputs, outputs) })
	// Adjacency entries land on each dataset's own shard; these closures
	// write no journal entry there, which is exactly why the epoch
	// version (cshard.ver) and not the journal cursor keys cache
	// invalidation.
	for _, in := range inputs {
		c.shardOf(in).apply(func(st *shardState) {
			st.consumersOf[in] = append(st.consumersOf[in], dv.ID)
		})
	}
	for _, out := range outputs {
		c.shardOf(out).apply(func(st *shardState) { st.producerOf[out] = dv.ID })
	}
	home.noteJournal(c, jDerivation, dv.ID, false)
}

// indexDerivationHome installs the derivation record and the
// derivation-keyed indexes on the ID's home shard state.
func (st *shardState) indexDerivationHome(dv schema.Derivation, inputs, outputs []string) {
	st.derivations[dv.ID] = dv
	st.inputsOf[dv.ID] = inputs
	st.outputsOf[dv.ID] = outputs
	attrIndexAdd(st.idx.dvAttr, dv.Attrs, dv.ID)
	setAdd(st.idx.dvByTR, dv.TR, dv.ID)
	if ns, name, _, err := schema.ParseTRRef(dv.TR); err == nil {
		setAdd(st.idx.dvByTRBase, schema.FormatTRRef(ns, name, ""), dv.ID)
	}
	name := dv.Name
	if name == "" {
		name = dv.ID
	}
	setAdd(st.idx.dvByName, name, dv.ID)
}

// putInvocation installs an invocation on its derivation's home shard.
// Callers hold that shard's write lock. No-op if the ID exists.
func (c *Catalog) putInvocation(iv schema.Invocation) {
	s := c.shardOf(iv.Derivation)
	if _, ok := s.invocations[iv.ID]; ok {
		return
	}
	s.apply(func(st *shardState) {
		st.invocations[iv.ID] = iv
		st.invocationsByDV[iv.Derivation] = append(st.invocationsByDV[iv.Derivation], iv.ID)
		st.idx.executed[iv.Derivation] = struct{}{}
	})
	s.noteJournal(c, jInvocation, iv.ID, false)
}

// putReplica installs a new replica or updates an existing one in place
// (epoch re-stamp) on its dataset's home shard, keeping the
// materialized set current. Callers hold that shard's write lock.
func (c *Catalog) putReplica(r schema.Replica) {
	s := c.shardOf(r.Dataset)
	s.apply(func(st *shardState) {
		if _, ok := st.replicas[r.ID]; !ok {
			st.replicasByDataset[r.Dataset] = append(st.replicasByDataset[r.Dataset], r.ID)
		}
		st.replicas[r.ID] = r
		st.reindexMaterialized(r.Dataset)
	})
	s.noteJournal(c, jReplica, r.ID, false)
}

// dropReplica removes a replica record, if present. A bare ID does not
// reveal the home shard, so the lookup probes every shard; callers
// hold every shard's write lock (or own the catalog exclusively, as
// during replay).
func (c *Catalog) dropReplica(id string) (schema.Replica, bool) {
	for _, s := range c.shards {
		r, ok := s.replicas[id]
		if !ok {
			continue
		}
		s.apply(func(st *shardState) { st.dropReplica(id) })
		s.noteJournal(c, jReplica, id, true)
		return r, true
	}
	return schema.Replica{}, false
}

func (st *shardState) dropReplica(id string) {
	r, ok := st.replicas[id]
	if !ok {
		return
	}
	delete(st.replicas, id)
	ids := st.replicasByDataset[r.Dataset]
	for i, x := range ids {
		if x == id {
			ids = append(ids[:i:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		delete(st.replicasByDataset, r.Dataset)
	} else {
		st.replicasByDataset[r.Dataset] = ids
	}
	st.reindexMaterialized(r.Dataset)
}

// reindexMaterialized recomputes one dataset's membership in the
// materialized set from its replicas and current epoch. The dataset,
// its replicas, and the flag entry all live on this state's shard.
func (st *shardState) reindexMaterialized(name string) {
	ds, ok := st.datasets[name]
	if !ok {
		delete(st.idx.materialized, name)
		return
	}
	for _, id := range st.replicasByDataset[name] {
		if st.replicas[id].Epoch == ds.Epoch {
			st.idx.materialized[name] = struct{}{}
			return
		}
	}
	delete(st.idx.materialized, name)
}

// --- verification ------------------------------------------------------

// CheckIndexes rebuilds every secondary index from the primary maps and
// compares with the incrementally maintained state, shard by shard. It
// returns nil when they agree; tests call it after WAL replay, imports,
// and mutation storms to prove the funnel covers every path.
func (c *Catalog) CheckIndexes() error {
	c.rlockAll()
	defer c.runlockAll()
	for i, s := range c.shards {
		want := s.rebuildIndexesLocked()
		for _, f := range []struct {
			name      string
			got, want any
		}{
			{"dsAttr", s.idx.dsAttr, want.dsAttr},
			{"trAttr", s.idx.trAttr, want.trAttr},
			{"dvAttr", s.idx.dvAttr, want.dvAttr},
			{"dsByType", s.idx.dsByType, want.dsByType},
			{"derived", s.idx.derived, want.derived},
			{"materialized", s.idx.materialized, want.materialized},
			{"executed", s.idx.executed, want.executed},
			{"dvByTR", s.idx.dvByTR, want.dvByTR},
			{"dvByTRBase", s.idx.dvByTRBase, want.dvByTRBase},
			{"dvByName", s.idx.dvByName, want.dvByName},
		} {
			if !reflect.DeepEqual(f.got, f.want) {
				return fmt.Errorf("catalog: shard %d index %q diverged from rebuild:\n got: %v\nwant: %v", i, f.name, f.got, f.want)
			}
		}
	}
	return nil
}

// rebuildIndexesLocked computes one shard's secondary indexes from
// scratch. Every index entry's source objects are homed on the same
// shard as the entry (invocations live with their derivation, replicas
// with their dataset), so the rebuild is shard-local.
func (st *shardState) rebuildIndexesLocked() indexes {
	idx := newIndexes()
	for name, ds := range st.datasets {
		attrIndexAdd(idx.dsAttr, ds.Attrs, name)
		setAddTyped(idx.dsByType, ds.Type, name)
		if ds.CreatedBy != "" {
			idx.derived[name] = struct{}{}
		}
		for _, id := range st.replicasByDataset[name] {
			if st.replicas[id].Epoch == ds.Epoch {
				idx.materialized[name] = struct{}{}
				break
			}
		}
	}
	for ref, tr := range st.transformations {
		attrIndexAdd(idx.trAttr, tr.Attrs, ref)
	}
	for id, dv := range st.derivations {
		attrIndexAdd(idx.dvAttr, dv.Attrs, id)
		setAdd(idx.dvByTR, dv.TR, id)
		if ns, name, _, err := schema.ParseTRRef(dv.TR); err == nil {
			setAdd(idx.dvByTRBase, schema.FormatTRRef(ns, name, ""), id)
		}
		name := dv.Name
		if name == "" {
			name = id
		}
		setAdd(idx.dvByName, name, id)
	}
	for _, iv := range st.invocations {
		idx.executed[iv.Derivation] = struct{}{}
	}
	return idx
}

// IndexStats reports the cardinality of every secondary index: the
// number of distinct keys per keyed index and members per flag set,
// summed across shards. It feeds the /debug/vdc introspection
// endpoint, where a surprising cardinality (an attribute key
// exploding, a flag set empty) is often the first visible symptom of a
// misbehaving ingest.
func (c *Catalog) IndexStats() map[string]int {
	c.rlockAll()
	defer c.runlockAll()
	attrKeys := func(m map[string]map[string]IndexSet) int {
		n := 0
		for _, vals := range m {
			n += len(vals)
		}
		return n
	}
	out := make(map[string]int, 11)
	for _, s := range c.shards {
		out["dataset_attr_keys"] += len(s.idx.dsAttr)
		out["dataset_attr_values"] += attrKeys(s.idx.dsAttr)
		out["transformation_attr_keys"] += len(s.idx.trAttr)
		out["derivation_attr_keys"] += len(s.idx.dvAttr)
		out["dataset_types"] += len(s.idx.dsByType)
		out["derived"] += len(s.idx.derived)
		out["materialized"] += len(s.idx.materialized)
		out["executed"] += len(s.idx.executed)
		out["derivations_by_tr"] += len(s.idx.dvByTR)
		out["derivations_by_tr_base"] += len(s.idx.dvByTRBase)
		out["derivations_by_name"] += len(s.idx.dvByName)
	}
	return out
}

// sortedKeys returns a sorted copy of a set's members — the helper the
// query layer uses to keep result order deterministic.
func sortedKeys(s IndexSet) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
