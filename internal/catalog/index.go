package catalog

import (
	"fmt"
	"reflect"
	"sort"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// Secondary indexes for the discovery path. Every index is maintained
// incrementally under the catalog write lock by the put*/drop* helpers
// below, which are the single funnel for all mutation paths — public
// mutators, WAL replay (apply), and snapshot load (applyExport) — so
// the indexes can never drift from the primary maps regardless of how
// state arrives. CheckIndexes verifies exactly that by rebuilding from
// scratch and comparing.
//
// The read side is Catalog.View (view.go): queries resolve candidate
// sets from these indexes and iterate one consistent snapshot instead
// of copying and sorting the whole catalog per query.

// IndexSet is a set of object identifiers (dataset names, canonical
// transformation refs, or derivation IDs, depending on the index).
// Sets handed out by a View are shared, not copied: callers must treat
// them as read-only and must not retain them past View.Close.
type IndexSet map[string]struct{}

// Has reports membership.
func (s IndexSet) Has(id string) bool {
	_, ok := s[id]
	return ok
}

// indexes holds every secondary index. Empty sets are removed from
// their parent maps (and empty value maps from attribute indexes) so a
// populated-then-drained index compares equal to a freshly rebuilt one.
type indexes struct {
	// Attribute equality: key -> value -> members.
	dsAttr map[string]map[string]IndexSet // dataset names
	trAttr map[string]map[string]IndexSet // transformation refs
	dvAttr map[string]map[string]IndexSet // derivation IDs

	// Dataset exact type -> dataset names. Type conformance queries
	// union the sets of every registered exact type that conforms to
	// the queried type (the set of distinct exact types is small, so
	// the subtype closure is recomputed per query against the live
	// registry — no cache to invalidate on DefineType).
	dsByType map[dtype.Type]IndexSet

	// Flag sets.
	derived      IndexSet // dataset names with CreatedBy linkage
	materialized IndexSet // dataset names with >=1 replica at the current epoch
	executed     IndexSet // derivation IDs with >=1 invocation

	// Transformation-ref -> derivation IDs: by the exact TR string the
	// derivation cites, and by the versionless "ns::name" base so
	// `tr = ns::name` finds derivations citing any version.
	dvByTR     map[string]IndexSet
	dvByTRBase map[string]IndexSet

	// Display name -> derivation IDs (a derivation's query name is its
	// Name when set, otherwise its ID; names need not be unique).
	dvByName map[string]IndexSet
}

func newIndexes() indexes {
	return indexes{
		dsAttr:       make(map[string]map[string]IndexSet),
		trAttr:       make(map[string]map[string]IndexSet),
		dvAttr:       make(map[string]map[string]IndexSet),
		dsByType:     make(map[dtype.Type]IndexSet),
		derived:      make(IndexSet),
		materialized: make(IndexSet),
		executed:     make(IndexSet),
		dvByTR:       make(map[string]IndexSet),
		dvByTRBase:   make(map[string]IndexSet),
		dvByName:     make(map[string]IndexSet),
	}
}

// --- low-level set maintenance ----------------------------------------

func setAdd(m map[string]IndexSet, key, id string) {
	s, ok := m[key]
	if !ok {
		s = make(IndexSet)
		m[key] = s
	}
	s[id] = struct{}{}
}

func setRemove(m map[string]IndexSet, key, id string) {
	if s, ok := m[key]; ok {
		delete(s, id)
		if len(s) == 0 {
			delete(m, key)
		}
	}
}

func attrIndexAdd(idx map[string]map[string]IndexSet, attrs schema.Attributes, id string) {
	for k, v := range attrs {
		byVal, ok := idx[k]
		if !ok {
			byVal = make(map[string]IndexSet)
			idx[k] = byVal
		}
		setAdd(byVal, v, id)
	}
}

func attrIndexRemove(idx map[string]map[string]IndexSet, attrs schema.Attributes, id string) {
	for k, v := range attrs {
		if byVal, ok := idx[k]; ok {
			setRemove(byVal, v, id)
			if len(byVal) == 0 {
				delete(idx, k)
			}
		}
	}
}

// --- mutation funnel ---------------------------------------------------

// putDataset installs or replaces a dataset record and all its index
// entries. Callers hold c.mu.
func (c *Catalog) putDataset(ds schema.Dataset) {
	if old, ok := c.datasets[ds.Name]; ok {
		attrIndexRemove(c.idx.dsAttr, old.Attrs, old.Name)
		if old.Type != ds.Type {
			setRemoveTyped(c.idx.dsByType, old.Type, old.Name)
		}
		if old.CreatedBy != "" && ds.CreatedBy == "" {
			delete(c.idx.derived, old.Name)
		}
	}
	c.datasets[ds.Name] = ds
	attrIndexAdd(c.idx.dsAttr, ds.Attrs, ds.Name)
	setAddTyped(c.idx.dsByType, ds.Type, ds.Name)
	if ds.CreatedBy != "" {
		c.idx.derived[ds.Name] = struct{}{}
	}
	// An epoch change can flip materialization either way.
	c.reindexMaterialized(ds.Name)
	c.noteJournal(jDataset, ds.Name, false)
}

func setAddTyped(m map[dtype.Type]IndexSet, t dtype.Type, id string) {
	s, ok := m[t]
	if !ok {
		s = make(IndexSet)
		m[t] = s
	}
	s[id] = struct{}{}
}

func setRemoveTyped(m map[dtype.Type]IndexSet, t dtype.Type, id string) {
	if s, ok := m[t]; ok {
		delete(s, id)
		if len(s) == 0 {
			delete(m, t)
		}
	}
}

// putTransformation installs a transformation, maintaining the version
// and attribute indexes. Callers hold c.mu.
func (c *Catalog) putTransformation(tr schema.Transformation) {
	ref := tr.Ref()
	if old, ok := c.transformations[ref]; ok {
		attrIndexRemove(c.idx.trAttr, old.Attrs, ref)
	} else {
		base := schema.FormatTRRef(tr.Namespace, tr.Name, "")
		c.versionsOf[base] = append(c.versionsOf[base], tr.Version)
	}
	c.transformations[ref] = tr
	attrIndexAdd(c.idx.trAttr, tr.Attrs, ref)
	c.noteJournal(jTransformation, ref, false)
}

// indexDerivation installs a derivation with its provenance and
// secondary indexes. Callers hold c.mu. No-op if the ID exists.
func (c *Catalog) indexDerivation(dv schema.Derivation, tr schema.Transformation) {
	if _, ok := c.derivations[dv.ID]; ok {
		return
	}
	inputs := dv.Inputs(tr)
	outputs := dv.Outputs(tr)
	c.derivations[dv.ID] = dv
	c.inputsOf[dv.ID] = inputs
	c.outputsOf[dv.ID] = outputs
	for _, in := range inputs {
		c.consumersOf[in] = append(c.consumersOf[in], dv.ID)
	}
	for _, out := range outputs {
		c.producerOf[out] = dv.ID
	}
	attrIndexAdd(c.idx.dvAttr, dv.Attrs, dv.ID)
	setAdd(c.idx.dvByTR, dv.TR, dv.ID)
	if ns, name, _, err := schema.ParseTRRef(dv.TR); err == nil {
		setAdd(c.idx.dvByTRBase, schema.FormatTRRef(ns, name, ""), dv.ID)
	}
	name := dv.Name
	if name == "" {
		name = dv.ID
	}
	setAdd(c.idx.dvByName, name, dv.ID)
	c.noteJournal(jDerivation, dv.ID, false)
}

// putInvocation installs an invocation. Callers hold c.mu. No-op if the
// ID exists.
func (c *Catalog) putInvocation(iv schema.Invocation) {
	if _, ok := c.invocations[iv.ID]; ok {
		return
	}
	c.invocations[iv.ID] = iv
	c.invocationsByDV[iv.Derivation] = append(c.invocationsByDV[iv.Derivation], iv.ID)
	c.idx.executed[iv.Derivation] = struct{}{}
	c.noteJournal(jInvocation, iv.ID, false)
}

// putReplica installs a new replica or updates an existing one in place
// (epoch re-stamp), keeping the materialized set current. Callers hold
// c.mu.
func (c *Catalog) putReplica(r schema.Replica) {
	if _, ok := c.replicas[r.ID]; ok {
		c.replicas[r.ID] = r
	} else {
		c.replicas[r.ID] = r
		c.replicasByDataset[r.Dataset] = append(c.replicasByDataset[r.Dataset], r.ID)
	}
	c.reindexMaterialized(r.Dataset)
	c.noteJournal(jReplica, r.ID, false)
}

// dropReplica removes a replica record, if present. Callers hold c.mu.
func (c *Catalog) dropReplica(id string) (schema.Replica, bool) {
	r, ok := c.replicas[id]
	if !ok {
		return schema.Replica{}, false
	}
	delete(c.replicas, id)
	ids := c.replicasByDataset[r.Dataset]
	for i, x := range ids {
		if x == id {
			ids = append(ids[:i:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		delete(c.replicasByDataset, r.Dataset)
	} else {
		c.replicasByDataset[r.Dataset] = ids
	}
	c.reindexMaterialized(r.Dataset)
	c.noteJournal(jReplica, id, true)
	return r, true
}

// reindexMaterialized recomputes one dataset's membership in the
// materialized set from its replicas and current epoch. Callers hold
// c.mu.
func (c *Catalog) reindexMaterialized(name string) {
	ds, ok := c.datasets[name]
	if !ok {
		delete(c.idx.materialized, name)
		return
	}
	for _, id := range c.replicasByDataset[name] {
		if c.replicas[id].Epoch == ds.Epoch {
			c.idx.materialized[name] = struct{}{}
			return
		}
	}
	delete(c.idx.materialized, name)
}

// --- verification ------------------------------------------------------

// CheckIndexes rebuilds every secondary index from the primary maps and
// compares with the incrementally maintained state. It returns nil when
// they agree; tests call it after WAL replay, imports, and mutation
// storms to prove the funnel covers every path.
func (c *Catalog) CheckIndexes() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	want := c.rebuildIndexesLocked()
	for _, f := range []struct {
		name      string
		got, want any
	}{
		{"dsAttr", c.idx.dsAttr, want.dsAttr},
		{"trAttr", c.idx.trAttr, want.trAttr},
		{"dvAttr", c.idx.dvAttr, want.dvAttr},
		{"dsByType", c.idx.dsByType, want.dsByType},
		{"derived", c.idx.derived, want.derived},
		{"materialized", c.idx.materialized, want.materialized},
		{"executed", c.idx.executed, want.executed},
		{"dvByTR", c.idx.dvByTR, want.dvByTR},
		{"dvByTRBase", c.idx.dvByTRBase, want.dvByTRBase},
		{"dvByName", c.idx.dvByName, want.dvByName},
	} {
		if !reflect.DeepEqual(f.got, f.want) {
			return fmt.Errorf("catalog: index %q diverged from rebuild:\n got: %v\nwant: %v", f.name, f.got, f.want)
		}
	}
	return nil
}

// rebuildIndexesLocked computes the secondary indexes from scratch.
func (c *Catalog) rebuildIndexesLocked() indexes {
	idx := newIndexes()
	for name, ds := range c.datasets {
		attrIndexAdd(idx.dsAttr, ds.Attrs, name)
		setAddTyped(idx.dsByType, ds.Type, name)
		if ds.CreatedBy != "" {
			idx.derived[name] = struct{}{}
		}
		for _, id := range c.replicasByDataset[name] {
			if c.replicas[id].Epoch == ds.Epoch {
				idx.materialized[name] = struct{}{}
				break
			}
		}
	}
	for ref, tr := range c.transformations {
		attrIndexAdd(idx.trAttr, tr.Attrs, ref)
	}
	for id, dv := range c.derivations {
		attrIndexAdd(idx.dvAttr, dv.Attrs, id)
		setAdd(idx.dvByTR, dv.TR, id)
		if ns, name, _, err := schema.ParseTRRef(dv.TR); err == nil {
			setAdd(idx.dvByTRBase, schema.FormatTRRef(ns, name, ""), id)
		}
		name := dv.Name
		if name == "" {
			name = id
		}
		setAdd(idx.dvByName, name, id)
	}
	for _, iv := range c.invocations {
		idx.executed[iv.Derivation] = struct{}{}
	}
	return idx
}

// IndexStats reports the cardinality of every secondary index: the
// number of distinct keys per keyed index and members per flag set.
// It feeds the /debug/vdc introspection endpoint, where a surprising
// cardinality (an attribute key exploding, a flag set empty) is often
// the first visible symptom of a misbehaving ingest.
func (c *Catalog) IndexStats() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	attrKeys := func(m map[string]map[string]IndexSet) int {
		n := 0
		for _, vals := range m {
			n += len(vals)
		}
		return n
	}
	return map[string]int{
		"dataset_attr_keys":        len(c.idx.dsAttr),
		"dataset_attr_values":      attrKeys(c.idx.dsAttr),
		"transformation_attr_keys": len(c.idx.trAttr),
		"derivation_attr_keys":     len(c.idx.dvAttr),
		"dataset_types":            len(c.idx.dsByType),
		"derived":                  len(c.idx.derived),
		"materialized":             len(c.idx.materialized),
		"executed":                 len(c.idx.executed),
		"derivations_by_tr":        len(c.idx.dvByTR),
		"derivations_by_tr_base":   len(c.idx.dvByTRBase),
		"derivations_by_name":      len(c.idx.dvByName),
	}
}

// sortedKeys returns a sorted copy of a set's members — the helper the
// query layer uses to keep result order deterministic.
func sortedKeys(s IndexSet) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
