package catalog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chimera/internal/schema"
)

// TestGroupCommitDurableAfterAck is the crash-after-ack contract: once
// a mutation returns success, the record must already be in the WAL
// file (written and fsynced). Each iteration snapshots the raw WAL
// bytes immediately after the ack — a simulated power cut — and
// replays them into a fresh catalog, which must contain the mutation.
func TestGroupCommitDurableAfterAck(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	for i := 0; i < 20; i++ {
		dv, err := c.AddDerivation(chainDV("t", fmt.Sprintf("in%d", i), fmt.Sprintf("out%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		// Crash image: whatever is on disk right now, nothing more.
		img, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walFile), img, 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := Open(crashDir, nil, Options{})
		if err != nil {
			t.Fatalf("iteration %d: reopen crash image: %v", i, err)
		}
		if _, err := c2.Derivation(dv.ID); err != nil {
			t.Fatalf("iteration %d: acked derivation missing from crash image: %v", i, err)
		}
		c2.Close()
	}
}

// TestGroupCommitReopenRestoresState runs the standard reopen check
// through the group-commit path (default options) including a
// mid-stream snapshot, which must quiesce the committer before
// truncating the log.
func TestGroupCommitReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDerivation(chainDV("t", "cooked", "refined")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}

// TestInlineFallbackMode checks that MaxBatch=1 keeps the synchronous
// pre-group-commit path working end to end.
func TestInlineFallbackMode(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.shards[0].wal.com != nil {
		t.Fatal("MaxBatch=1 must not start a committer")
	}
	populate(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}

// TestCommitterStickyFailure poisons a committer by handing it a
// closed file: the first commit fails, its waiter gets ErrDurability,
// and every later enqueue is rejected fast instead of appending past a
// hole in the log.
func TestCommitterStickyFailure(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "wal")
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // writes will now fail
	com := newCommitter(f, true, 8, 0)
	defer com.close()

	seq, err := com.enqueue(opDataset, map[string]string{"name": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := com.wait(seq); err == nil {
		t.Fatal("commit on closed file reported success")
	} else if !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	if _, err := com.enqueue(opDataset, map[string]string{"name": "y"}); err == nil {
		t.Fatal("enqueue after WAL failure must fail fast")
	}
	if com.failure() == nil {
		t.Fatal("sticky failure not recorded")
	}
}

// TestInlineStickyFailure poisons the inline (MaxBatch=1) WAL by
// severing its file descriptor: the failing mutation reports
// ErrDurability, and every later mutation must fail fast instead of
// appending past the (possibly torn) record — which would produce the
// corrupt-mid-file shape replay rejects.
func TestInlineStickyFailure(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDataset(schema.Dataset{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := c.shards[0].wal.f.Close(); err != nil { // writes will now fail
		t.Fatal(err)
	}
	if err := c.AddDataset(schema.Dataset{Name: "broken"}); !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	if err := c.AddDataset(schema.Dataset{Name: "later"}); !errors.Is(err, ErrDurability) {
		t.Fatalf("mutation after inline WAL failure must fail fast, got %v", err)
	}
	if c.DurabilityErr() == nil {
		t.Fatal("inline sticky failure not reported by DurabilityErr")
	}
}

// TestDelayWindowExclusiveCommit drives the committer hard with the
// MaxDelay accumulation window forced open (fsyncEWMA pinned far above
// the gate's threshold). The window is part of the commit: while the
// leader sleeps off-lock, no other goroutine may start a second commit
// and recycle the in-flight buffer. Under -race this catches the
// pending/spare aliasing directly; the final scan catches any torn or
// interleaved records on disk.
func TestDelayWindowExclusiveCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	com := newCommitter(f, true, 1024, 200*time.Microsecond)

	// Keep the gate open for the whole run: commits with fast fsyncs
	// decay the EWMA, so a booster re-pins it until the writers finish.
	pinEWMA := func() {
		com.mu.Lock()
		com.fsyncEWMA = 50 * time.Millisecond
		com.mu.Unlock()
	}
	pinEWMA()
	stopBoost := make(chan struct{})
	var boostWG sync.WaitGroup
	boostWG.Add(1)
	go func() {
		defer boostWG.Done()
		for {
			select {
			case <-stopBoost:
				return
			case <-time.After(time.Millisecond):
				pinEWMA()
			}
		}
	}()

	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := com.enqueue(opDataset, map[string]string{"name": fmt.Sprintf("w%d-%d", w, i)})
				if err != nil {
					t.Error(err)
					return
				}
				if err := com.wait(seq); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopBoost)
	boostWG.Wait()
	if err := com.close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	records := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("corrupt WAL record %q: %v", line, err)
		}
		records++
	}
	if records != writers*perWriter {
		t.Fatalf("WAL holds %d records, want %d", records, writers*perWriter)
	}
}

// TestCloseInterruptsDelayWindow stages a contended batch whose leader
// is inside a long accumulation window, then closes the committer: the
// window must be cut short (the batch commits immediately) instead of
// holding Close for the full MaxDelay.
func TestCloseInterruptsDelayWindow(t *testing.T) {
	const maxDelay = 3 * time.Second
	path := filepath.Join(t.TempDir(), "wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	com := newCommitter(f, false, 1024, maxDelay)

	// Stage two pending records and fake the contention that opens the
	// accumulation window, without signaling work — the test goroutine
	// below plays the batch leader, exactly as an assisting waiter would.
	com.mu.Lock()
	com.fsyncEWMA = time.Minute
	for _, name := range []string{"a", "b"} {
		rec, err := json.Marshal(walEnvelope{Op: opDataset, Data: map[string]string{"name": name}})
		if err != nil {
			com.mu.Unlock()
			t.Fatal(err)
		}
		com.pending = append(com.pending, rec...)
		com.pending = append(com.pending, '\n')
		com.count++
		com.nextSeq++
	}
	com.waiters = 2
	com.mu.Unlock()

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		com.mu.Lock()
		com.commitLocked()
		com.mu.Unlock()
	}()

	// Let the leader enter the window, then close underneath it.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := com.close(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > maxDelay/2 {
		t.Fatalf("close blocked %v; the delay window was not interrupted", took)
	}
	<-leaderDone

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(data, []byte("\n")); got != 2 {
		t.Fatalf("WAL holds %d records after close, want 2", got)
	}
}

// TestConcurrentDurableMutationStress hammers one durable catalog with
// 16 writer goroutines while a reader runs lineage queries, then
// reopens and verifies nothing acknowledged was lost. Run under
// -race this exercises the committer's lock discipline.
func TestConcurrentDurableMutationStress(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const opsPerWriter = 25
	for w := 0; w < writers; w++ {
		if err := c.AddTransformation(twoArg(fmt.Sprintf("t%d", w))); err != nil {
			t.Fatal(err)
		}
	}

	stopReads := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			// Lineage over whatever chains exist so far; errors are fine
			// (the head may not exist yet), data races are not.
			_, _ = c.Lineage("w0-d5")
			c.Stats()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := fmt.Sprintf("t%d", w)
			for i := 0; i < opsPerWriter; i++ {
				in := fmt.Sprintf("w%d-d%d", w, i)
				out := fmt.Sprintf("w%d-d%d", w, i+1)
				dv, err := c.AddDerivation(chainDV(tr, in, out))
				if err != nil {
					errs <- err
					return
				}
				if err := c.AddReplica(schema.Replica{
					ID: fmt.Sprintf("w%d-r%d", w, i), Dataset: out, Site: "anl", PFN: "/store/" + out,
				}); err != nil {
					errs <- err
					return
				}
				if err := c.AddInvocation(schema.Invocation{
					ID: fmt.Sprintf("w%d-iv%d", w, i), Derivation: dv.ID, Site: "anl", Host: "n1",
					Start: time.Unix(100, 0).UTC(), End: time.Unix(130, 0).UTC(),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopReads)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Derivations != writers*opsPerWriter {
		t.Fatalf("derivations: got %d, want %d", st.Derivations, writers*opsPerWriter)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}
