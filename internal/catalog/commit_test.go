package catalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chimera/internal/schema"
)

// TestGroupCommitDurableAfterAck is the crash-after-ack contract: once
// a mutation returns success, the record must already be in the WAL
// file (written and fsynced). Each iteration snapshots the raw WAL
// bytes immediately after the ack — a simulated power cut — and
// replays them into a fresh catalog, which must contain the mutation.
func TestGroupCommitDurableAfterAck(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	for i := 0; i < 20; i++ {
		dv, err := c.AddDerivation(chainDV("t", fmt.Sprintf("in%d", i), fmt.Sprintf("out%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		// Crash image: whatever is on disk right now, nothing more.
		img, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walFile), img, 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := Open(crashDir, nil, Options{})
		if err != nil {
			t.Fatalf("iteration %d: reopen crash image: %v", i, err)
		}
		if _, err := c2.Derivation(dv.ID); err != nil {
			t.Fatalf("iteration %d: acked derivation missing from crash image: %v", i, err)
		}
		c2.Close()
	}
}

// TestGroupCommitReopenRestoresState runs the standard reopen check
// through the group-commit path (default options) including a
// mid-stream snapshot, which must quiesce the committer before
// truncating the log.
func TestGroupCommitReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDerivation(chainDV("t", "cooked", "refined")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}

// TestInlineFallbackMode checks that MaxBatch=1 keeps the synchronous
// pre-group-commit path working end to end.
func TestInlineFallbackMode(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true, MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.wal.com != nil {
		t.Fatal("MaxBatch=1 must not start a committer")
	}
	populate(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}

// TestCommitterStickyFailure poisons a committer by handing it a
// closed file: the first commit fails, its waiter gets ErrDurability,
// and every later enqueue is rejected fast instead of appending past a
// hole in the log.
func TestCommitterStickyFailure(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "wal")
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // writes will now fail
	com := newCommitter(f, true, 8, 0)
	defer com.close()

	seq, err := com.enqueue(opDataset, map[string]string{"name": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := com.wait(seq); err == nil {
		t.Fatal("commit on closed file reported success")
	} else if !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	if _, err := com.enqueue(opDataset, map[string]string{"name": "y"}); err == nil {
		t.Fatal("enqueue after WAL failure must fail fast")
	}
	if com.failure() == nil {
		t.Fatal("sticky failure not recorded")
	}
}

// TestConcurrentDurableMutationStress hammers one durable catalog with
// 16 writer goroutines while a reader runs lineage queries, then
// reopens and verifies nothing acknowledged was lost. Run under
// -race this exercises the committer's lock discipline.
func TestConcurrentDurableMutationStress(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const opsPerWriter = 25
	for w := 0; w < writers; w++ {
		if err := c.AddTransformation(twoArg(fmt.Sprintf("t%d", w))); err != nil {
			t.Fatal(err)
		}
	}

	stopReads := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			// Lineage over whatever chains exist so far; errors are fine
			// (the head may not exist yet), data races are not.
			_, _ = c.Lineage("w0-d5")
			c.Stats()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := fmt.Sprintf("t%d", w)
			for i := 0; i < opsPerWriter; i++ {
				in := fmt.Sprintf("w%d-d%d", w, i)
				out := fmt.Sprintf("w%d-d%d", w, i+1)
				dv, err := c.AddDerivation(chainDV(tr, in, out))
				if err != nil {
					errs <- err
					return
				}
				if err := c.AddReplica(schema.Replica{
					ID: fmt.Sprintf("w%d-r%d", w, i), Dataset: out, Site: "anl", PFN: "/store/" + out,
				}); err != nil {
					errs <- err
					return
				}
				if err := c.AddInvocation(schema.Invocation{
					ID: fmt.Sprintf("w%d-iv%d", w, i), Derivation: dv.ID, Site: "anl", Host: "n1",
					Start: time.Unix(100, 0).UTC(), End: time.Unix(130, 0).UTC(),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopReads)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Derivations != writers*opsPerWriter {
		t.Fatalf("derivations: got %d, want %d", st.Derivations, writers*opsPerWriter)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}
