package catalog

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// twoArg builds a simple out/in transformation like the paper's trans1.
func twoArg(name string) schema.Transformation {
	return schema.Transformation{
		Name: name, Kind: schema.Simple, Exec: "/usr/bin/" + name,
		Args: []schema.FormalArg{
			{Name: "a2", Direction: schema.Out},
			{Name: "a1", Direction: schema.In},
		},
	}
}

// chainDV derives out from in via tr.
func chainDV(tr, in, out string) schema.Derivation {
	return schema.Derivation{
		TR: tr,
		Params: map[string]schema.Actual{
			"a2": schema.DatasetActual("output", out),
			"a1": schema.DatasetActual("input", in),
		},
	}
}

// buildChain registers trans1..transN and a linear derivation chain
// file0 -> file1 -> ... -> fileN.
func buildChain(t *testing.T, c *Catalog, n int) []schema.Derivation {
	t.Helper()
	var dvs []schema.Derivation
	for i := 0; i < n; i++ {
		tr := twoArg(fmt.Sprintf("trans%d", i))
		if err := c.AddTransformation(tr); err != nil {
			t.Fatal(err)
		}
		dv, err := c.AddDerivation(chainDV(tr.Ref(), fmt.Sprintf("file%d", i), fmt.Sprintf("file%d", i+1)))
		if err != nil {
			t.Fatal(err)
		}
		dvs = append(dvs, dv)
	}
	return dvs
}

func TestAddAndGetBasics(t *testing.T) {
	c := New(dtype.StandardRegistry())
	ds := schema.Dataset{Name: "raw", Type: dtype.Type{Content: "CMS"}, Descriptor: schema.FileDescriptor{Path: "/raw"}}
	if err := c.AddDataset(ds); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-add.
	if err := c.AddDataset(ds); err != nil {
		t.Fatal(err)
	}
	// Different redefinition rejected.
	ds2 := ds
	ds2.Size = 99
	if err := c.AddDataset(ds2); !errors.Is(err, ErrExists) {
		t.Errorf("redefinition: %v", err)
	}
	// Unknown type rejected.
	if err := c.AddDataset(schema.Dataset{Name: "x", Type: dtype.Type{Content: "Ghost"}}); !errors.Is(err, ErrType) {
		t.Errorf("unknown type: %v", err)
	}
	got, err := c.Dataset("raw")
	if err != nil || got.Name != "raw" {
		t.Fatalf("get: %v %v", got, err)
	}
	if _, err := c.Dataset("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing dataset: %v", err)
	}
	if n := len(c.Datasets()); n != 1 {
		t.Errorf("Datasets: %d", n)
	}
}

func TestUpdateDataset(t *testing.T) {
	c := New(nil)
	if err := c.AddDataset(schema.Dataset{Name: "d"}); err != nil {
		t.Fatal(err)
	}
	up := schema.Dataset{Name: "d", Descriptor: schema.FileDescriptor{Path: "/d"}, Epoch: 1}
	if err := c.UpdateDataset(up); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Dataset("d")
	if got.IsVirtual() || got.Epoch != 1 {
		t.Errorf("update lost: %+v", got)
	}
	// Epoch regression rejected.
	if err := c.UpdateDataset(schema.Dataset{Name: "d"}); !errors.Is(err, ErrConflict) {
		t.Errorf("epoch regression: %v", err)
	}
	if err := c.UpdateDataset(schema.Dataset{Name: "ghost"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing: %v", err)
	}
}

func TestTransformationVersions(t *testing.T) {
	c := New(nil)
	v1 := twoArg("sim")
	v1.Version = "1.0"
	v2 := twoArg("sim")
	v2.Version = "2.0"
	if err := c.AddTransformation(v1); err != nil {
		t.Fatal(err)
	}
	// Exact ref resolves.
	if _, err := c.Transformation("sim:1.0"); err != nil {
		t.Fatal(err)
	}
	// Single version: versionless ref falls through.
	if tr, err := c.Transformation("sim"); err != nil || tr.Version != "1.0" {
		t.Errorf("versionless single: %v %v", tr.Version, err)
	}
	if err := c.AddTransformation(v2); err != nil {
		t.Fatal(err)
	}
	// Two versions: versionless is ambiguous.
	if _, err := c.Transformation("sim"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguity: %v", err)
	}
	if got := c.Versions("", "sim"); len(got) != 2 {
		t.Errorf("versions: %v", got)
	}
	// Conflicting redefinition rejected, identical tolerated.
	if err := c.AddTransformation(v1); err != nil {
		t.Errorf("idempotent: %v", err)
	}
	v1b := v1
	v1b.Exec = "/other"
	if err := c.AddTransformation(v1b); !errors.Is(err, ErrExists) {
		t.Errorf("conflict: %v", err)
	}
}

func TestDerivationDuplicateDetection(t *testing.T) {
	c := New(nil)
	if err := c.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	dv1, err := c.AddDerivation(chainDV("t", "in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	// Same computation again: duplicate, returns the stored one.
	dv2, err := c.AddDerivation(chainDV("t", "in", "out"))
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	if dv2.ID != dv1.ID {
		t.Error("duplicate did not return original")
	}
	if found, ok := c.FindDerivation(chainDV("t", "in", "out")); !ok || found.ID != dv1.ID {
		t.Error("FindDerivation missed")
	}
	if _, ok := c.FindDerivation(chainDV("t", "in", "other")); ok {
		t.Error("FindDerivation false positive")
	}
}

func TestDerivationAutoRegistersDatasets(t *testing.T) {
	c := New(nil)
	if err := c.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	dv, err := c.AddDerivation(chainDV("t", "in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := c.Dataset("in")
	if err != nil || in.CreatedBy != "" {
		t.Errorf("input auto-registration: %+v %v", in, err)
	}
	out, err := c.Dataset("out")
	if err != nil || out.CreatedBy != dv.ID || !out.IsVirtual() {
		t.Errorf("output auto-registration: %+v %v", out, err)
	}
}

func TestProducerConflict(t *testing.T) {
	c := New(nil)
	c.AddTransformation(twoArg("t"))
	if _, err := c.AddDerivation(chainDV("t", "a", "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDerivation(chainDV("t", "b", "x")); !errors.Is(err, ErrConflict) {
		t.Errorf("double producer: %v", err)
	}
	// Input==output rejected.
	if _, err := c.AddDerivation(chainDV("t", "y", "y")); !errors.Is(err, ErrConflict) {
		t.Errorf("self loop: %v", err)
	}
	// Unknown TR.
	if _, err := c.AddDerivation(chainDV("ghost", "p", "q")); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown TR: %v", err)
	}
}

func TestDerivationTypeChecking(t *testing.T) {
	c := New(dtype.StandardRegistry())
	tr := schema.Transformation{
		Name: "analyze", Kind: schema.Simple, Exec: "/bin/a",
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out},
			{Name: "in", Direction: schema.In, Types: []dtype.Type{{Content: "CMS"}}},
		},
	}
	if err := c.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}
	c.AddDataset(schema.Dataset{Name: "good", Type: dtype.Type{Content: "Zebra-file"}})
	c.AddDataset(schema.Dataset{Name: "bad", Type: dtype.Type{Content: "FITS-file"}})
	c.AddDataset(schema.Dataset{Name: "untyped"})

	mk := func(in string) schema.Derivation {
		return schema.Derivation{TR: "analyze", Params: map[string]schema.Actual{
			"out": schema.DatasetActual("output", "o-"+in),
			"in":  schema.DatasetActual("input", in),
		}}
	}
	if _, err := c.AddDerivation(mk("good")); err != nil {
		t.Errorf("conforming subtype rejected: %v", err)
	}
	if _, err := c.AddDerivation(mk("bad")); !errors.Is(err, ErrType) {
		t.Errorf("non-conforming accepted: %v", err)
	}
	if _, err := c.AddDerivation(mk("untyped")); err != nil {
		t.Errorf("untyped dataset rejected: %v", err)
	}
	// TR with unknown type in signature rejected.
	bad := tr
	bad.Name = "b2"
	bad.Args[1].Types = []dtype.Type{{Content: "NoSuch"}}
	if err := c.AddTransformation(bad); !errors.Is(err, ErrType) {
		t.Errorf("unknown formal type: %v", err)
	}
}

func TestPaperProvenanceChain(t *testing.T) {
	c := New(nil)
	dvs := buildChain(t, c, 2) // file0 -> file1 -> file2

	prod, err := c.Producer("file2")
	if err != nil || prod.ID != dvs[1].ID {
		t.Fatalf("producer: %v %v", prod, err)
	}
	if _, err := c.Producer("file0"); !errors.Is(err, ErrNotFound) {
		t.Errorf("primary data has producer: %v", err)
	}
	cons := c.Consumers("file1")
	if len(cons) != 1 || cons[0].ID != dvs[1].ID {
		t.Errorf("consumers: %v", cons)
	}

	anc, err := c.Ancestors("file2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(anc.Datasets, ",") != "file0,file1" {
		t.Errorf("ancestor datasets: %v", anc.Datasets)
	}
	if len(anc.Derivations) != 2 {
		t.Errorf("ancestor derivations: %v", anc.Derivations)
	}

	desc, err := c.Descendants("file0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(desc.Datasets, ",") != "file1,file2" {
		t.Errorf("descendant datasets: %v", desc.Datasets)
	}

	// The calibration-error question.
	inv, err := c.Invalidate("file1")
	if err != nil || strings.Join(inv.Datasets, ",") != "file2" {
		t.Errorf("invalidate: %v %v", inv, err)
	}
}

func TestLineageReport(t *testing.T) {
	c := New(nil)
	buildChain(t, c, 3)
	// Add an invocation on the middle step.
	mid, _ := c.Producer("file2")
	iv := schema.Invocation{
		ID: "iv-1", Derivation: mid.ID, Site: "uchicago",
		Start: time.Unix(1000, 0), End: time.Unix(1020, 0),
	}
	if err := c.AddInvocation(iv); err != nil {
		t.Fatal(err)
	}

	rep, err := c.Lineage("file3")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Primary {
		t.Error("derived dataset reported primary")
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("steps: %d", len(rep.Steps))
	}
	if rep.Steps[0].Depth != 1 || rep.Steps[2].Depth != 3 {
		t.Errorf("depths: %d %d", rep.Steps[0].Depth, rep.Steps[2].Depth)
	}
	if rep.Steps[1].Invocations[0].Site != "uchicago" {
		t.Errorf("invocation in lineage: %+v", rep.Steps[1])
	}
	if strings.Join(rep.PrimarySources, ",") != "file0" {
		t.Errorf("primary sources: %v", rep.PrimarySources)
	}

	prim, err := c.Lineage("file0")
	if err != nil || !prim.Primary {
		t.Errorf("primary lineage: %+v %v", prim, err)
	}
	if _, err := c.Lineage("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lineage: %v", err)
	}
}

// Property: Ancestors equals brute-force transitive closure on random DAGs.
func TestAncestorsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New(nil)
	merge := schema.Transformation{
		Name: "merge", Kind: schema.Simple, Exec: "/bin/m",
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out},
			{Name: "ins", Direction: schema.In},
		},
	}
	if err := c.AddTransformation(merge); err != nil {
		t.Fatal(err)
	}
	const layers, width = 6, 8
	names := func(l, i int) string { return fmt.Sprintf("d%d_%d", l, i) }
	parents := make(map[string][]string)
	// Pre-register layer-0 primary datasets (some may never be sampled
	// as inputs and would otherwise not exist).
	for i := 0; i < width; i++ {
		if err := c.AddDataset(schema.Dataset{Name: names(0, i)}); err != nil {
			t.Fatal(err)
		}
	}
	for l := 1; l < layers; l++ {
		for i := 0; i < width; i++ {
			n := 1 + rng.Intn(3)
			var ins []schema.Actual
			var ps []string
			for k := 0; k < n; k++ {
				p := names(l-1, rng.Intn(width))
				ins = append(ins, schema.DatasetActual("input", p))
				ps = append(ps, p)
			}
			dv := schema.Derivation{TR: "merge", Params: map[string]schema.Actual{
				"out": schema.DatasetActual("output", names(l, i)),
				"ins": schema.ListActual(ins...),
			}}
			if _, err := c.AddDerivation(dv); err != nil {
				t.Fatal(err)
			}
			parents[names(l, i)] = ps
		}
	}
	// Brute-force closure.
	var closure func(ds string, acc map[string]bool)
	closure = func(ds string, acc map[string]bool) {
		for _, p := range parents[ds] {
			if !acc[p] {
				acc[p] = true
				closure(p, acc)
			}
		}
	}
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			ds := names(l, i)
			want := make(map[string]bool)
			closure(ds, want)
			got, err := c.Ancestors(ds)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Datasets) != len(want) {
				t.Fatalf("%s: got %d ancestors, want %d", ds, len(got.Datasets), len(want))
			}
			for _, a := range got.Datasets {
				if !want[a] {
					t.Fatalf("%s: spurious ancestor %s", ds, a)
				}
			}
		}
	}
}

func TestMaterializationPlan(t *testing.T) {
	c := New(nil)
	dvs := buildChain(t, c, 3) // file0 -> ... -> file3

	// Nothing materialized but file0 (primary, with a replica).
	c.AddReplica(schema.Replica{ID: "r0", Dataset: "file0", Site: "s", PFN: "/f0"})
	plan, err := c.MaterializationPlan("file3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 || plan[0].ID != dvs[0].ID || plan[2].ID != dvs[2].ID {
		t.Errorf("full plan: %v", ids(plan))
	}

	// file2 materialized: plan prunes to the last step.
	c.AddReplica(schema.Replica{ID: "r2", Dataset: "file2", Site: "s", PFN: "/f2"})
	plan, err = c.MaterializationPlan("file3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].ID != dvs[2].ID {
		t.Errorf("pruned plan: %v", ids(plan))
	}

	// Target already materialized: empty plan.
	c.AddReplica(schema.Replica{ID: "r3", Dataset: "file3", Site: "s", PFN: "/f3"})
	plan, err = c.MaterializationPlan("file3", nil)
	if err != nil || len(plan) != 0 {
		t.Errorf("materialized target: %v %v", ids(plan), err)
	}

	// Underivable, unmaterialized input is an error.
	c2 := New(nil)
	buildChain(t, c2, 1)
	if _, err := c2.MaterializationPlan("file1", func(string) bool { return false }); !errors.Is(err, ErrNotFound) {
		t.Errorf("underivable: %v", err)
	}
}

func ids(dvs []schema.Derivation) []string {
	out := make([]string, len(dvs))
	for i, d := range dvs {
		out[i] = d.ID
	}
	return out
}

// Property: MaterializationPlan output is a valid topological order and
// minimal (contains exactly the unmaterialized ancestors' producers).
func TestMaterializationPlanTopoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		c := New(nil)
		c.AddTransformation(twoArg("t"))
		merge := schema.Transformation{Name: "m", Kind: schema.Simple, Exec: "/bin/m",
			Args: []schema.FormalArg{{Name: "a2", Direction: schema.Out}, {Name: "a1", Direction: schema.In}, {Name: "a0", Direction: schema.In}}}
		c.AddTransformation(merge)
		n := 15
		for i := 1; i < n; i++ {
			out := fmt.Sprintf("n%d", i)
			p1 := fmt.Sprintf("n%d", rng.Intn(i))
			if rng.Intn(2) == 0 && i >= 2 {
				p2 := fmt.Sprintf("n%d", rng.Intn(i))
				c.AddDerivation(schema.Derivation{TR: "m", Params: map[string]schema.Actual{
					"a2": schema.DatasetActual("output", out),
					"a1": schema.DatasetActual("input", p1),
					"a0": schema.DatasetActual("input", p2),
				}})
			} else {
				c.AddDerivation(chainDV("t", p1, out))
			}
		}
		mat := map[string]bool{"n0": true}
		for i := 1; i < n; i++ {
			if rng.Intn(3) == 0 {
				mat[fmt.Sprintf("n%d", i)] = true
			}
		}
		target := fmt.Sprintf("n%d", n-1)
		plan, err := c.MaterializationPlan(target, func(ds string) bool { return mat[ds] })
		if err != nil {
			t.Fatal(err)
		}
		produced := make(map[string]bool)
		for ds := range mat {
			produced[ds] = true
		}
		for _, dv := range plan {
			ins, outs, err := c.DerivationIO(dv.ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range ins {
				if !produced[in] {
					t.Fatalf("trial %d: derivation %s scheduled before input %s available", trial, dv.ID, in)
				}
			}
			for _, out := range outs {
				produced[out] = true
			}
		}
		if !produced[target] && !mat[target] {
			t.Fatalf("trial %d: plan does not produce target", trial)
		}
	}
}

func TestCompatibility(t *testing.T) {
	c := New(nil)
	if !c.Compatible("", "sim", "1.0", "1.0") {
		t.Error("identity compatibility")
	}
	if c.Compatible("", "sim", "1.0", "1.1") {
		t.Error("unasserted compatibility")
	}
	c.AssertCompatibility(schema.CompatibilityAssertion{Name: "sim", V1: "1.0", V2: "1.1", Mode: schema.Equivalent})
	c.AssertCompatibility(schema.CompatibilityAssertion{Name: "sim", V1: "1.1", V2: "1.2", Mode: schema.Equivalent})
	if !c.Compatible("", "sim", "1.0", "1.1") || !c.Compatible("", "sim", "1.1", "1.0") {
		t.Error("asserted equivalence not symmetric")
	}
	if !c.Compatible("", "sim", "1.0", "1.2") {
		t.Error("equivalence not transitive")
	}
	// Veto.
	c.AssertCompatibility(schema.CompatibilityAssertion{Name: "sim", V1: "1.0", V2: "1.2", Mode: schema.Incompatible})
	if c.Compatible("", "sim", "1.0", "1.2") {
		t.Error("veto ignored")
	}
	// Scoped to the transformation name.
	if c.Compatible("", "other", "1.0", "1.1") {
		t.Error("assertion leaked across names")
	}
	if err := c.AssertCompatibility(schema.CompatibilityAssertion{Name: "x", V1: "1", V2: "2", Mode: "bogus"}); err == nil {
		t.Error("invalid assertion accepted")
	}
}

func TestReplicasAndInvocations(t *testing.T) {
	c := New(nil)
	c.AddTransformation(twoArg("t"))
	dv, _ := c.AddDerivation(chainDV("t", "in", "out"))

	if err := c.AddReplica(schema.Replica{ID: "r1", Dataset: "ghost", Site: "s", PFN: "/x"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("replica of unknown dataset: %v", err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r1", Dataset: "out", Site: "s1", PFN: "/x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r1", Dataset: "out", Site: "s2", PFN: "/y"}); !errors.Is(err, ErrExists) {
		t.Errorf("dup replica: %v", err)
	}
	if !c.Materialized("out") {
		t.Error("replica should materialize dataset")
	}
	if c.Materialized("in") || c.Materialized("ghost") {
		t.Error("false materialization")
	}
	// Epoch mismatch: replica of old epoch does not materialize.
	ds, _ := c.Dataset("out")
	ds.Epoch = 1
	c.UpdateDataset(ds)
	if c.Materialized("out") {
		t.Error("stale replica materializes new epoch")
	}

	if err := c.RemoveReplica("r1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica("r1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
	if len(c.ReplicasOf("out")) != 0 {
		t.Error("replica index stale after remove")
	}

	iv := schema.Invocation{ID: "iv1", Derivation: dv.ID, Start: time.Unix(0, 0), End: time.Unix(1, 0)}
	if err := c.AddInvocation(iv); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInvocation(iv); !errors.Is(err, ErrExists) {
		t.Errorf("dup invocation: %v", err)
	}
	if err := c.AddInvocation(schema.Invocation{ID: "iv2", Derivation: "ghost", Start: time.Unix(0, 0), End: time.Unix(1, 0)}); !errors.Is(err, ErrNotFound) {
		t.Errorf("invocation of unknown derivation: %v", err)
	}
	if got := c.InvocationsOf(dv.ID); len(got) != 1 || got[0].ID != "iv1" {
		t.Errorf("InvocationsOf: %v", got)
	}
	if _, err := c.Invocation("iv1"); err != nil {
		t.Error(err)
	}
	if _, err := c.Invocation("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing invocation: %v", err)
	}

	st := c.Stats()
	if st.Derivations != 1 || st.Invocations != 1 || st.Datasets != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestResolverAndExpansionIntegration(t *testing.T) {
	c := New(nil)
	c.AddTransformation(twoArg("step"))
	comp := schema.Transformation{
		Name: "pipeline", Kind: schema.Compound,
		Args: []schema.FormalArg{
			{Name: "in", Direction: schema.In},
			{Name: "mid", Direction: schema.InOut, Default: ptrActual(schema.DatasetActual("inout", "tmp"))},
			{Name: "out", Direction: schema.Out},
		},
		Calls: []schema.Call{
			{TR: "step", Bindings: map[string]schema.Actual{"a2": refDir("output", "mid"), "a1": schema.FormalRefActual("in")}},
			{TR: "step", Bindings: map[string]schema.Actual{"a2": refDir("output", "out"), "a1": refDir("input", "mid")}},
		},
	}
	if err := c.AddTransformation(comp); err != nil {
		t.Fatal(err)
	}
	dv := schema.Derivation{TR: "pipeline", Params: map[string]schema.Actual{
		"in":  schema.DatasetActual("input", "source"),
		"out": schema.DatasetActual("output", "sink"),
	}}
	leaves, err := schema.ExpandDerivation(dv, c.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 2 {
		t.Fatalf("leaves: %d", len(leaves))
	}
	for _, l := range leaves {
		if _, err := c.AddDerivation(l); err != nil {
			t.Fatal(err)
		}
	}
	anc, err := c.Ancestors("sink")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc.Datasets) != 2 { // source + tmp.<suffix>
		t.Errorf("expanded provenance: %v", anc.Datasets)
	}
}

func refDir(dir, name string) schema.Actual {
	a := schema.FormalRefActual(name)
	a.Direction = dir
	return a
}

func ptrActual(a schema.Actual) *schema.Actual { return &a }
