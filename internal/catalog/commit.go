package catalog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"chimera/internal/obs"
)

// Group commit. Mutations validate and apply to the in-memory maps
// under the catalog write lock, enqueue one encoded record per logged
// operation, and then wait for durability *outside* the lock (see
// Catalog.mutate). The committer drains everything queued as one
// batch: a single write(2) of the concatenated records, and — with
// Options.Sync — a single fsync shared by every waiter in the batch.
// One slow fsync therefore no longer serializes the whole catalog; it
// amortizes across however many writers arrived while the previous
// batch was in flight.
//
// Commits are leader-assisted: the dedicated committer goroutine is
// the backstop (it guarantees progress and performs the final drain on
// Close), but a waiter that finds the queue idle commits its own batch
// inline, so a single uncontended writer pays no goroutine round trip
// on top of the write+fsync it already paid before group commit.

// committer is the group-commit engine for one WAL.
type committer struct {
	f        *os.File
	fsync    bool
	maxBatch int
	maxDelay time.Duration

	mu   sync.Mutex
	work *sync.Cond // signaled when records arrive or close begins
	did  *sync.Cond // broadcast when durability advances or the WAL fails

	// pending accumulates encoded records (newline-terminated) for the
	// next batch; spare is the previous batch's buffer, reused to avoid
	// reallocating on every swap.
	pending []byte
	spare   []byte
	scratch bytes.Buffer // per-record encode buffer, reused
	enc     *json.Encoder

	count      int    // records in pending
	waiters    int    // goroutines blocked in wait()
	nextSeq    uint64 // sequence of the last enqueued record
	durable    uint64 // sequence of the last record written (and fsynced)
	committing bool   // a batch write (or its accumulation window) is in flight
	closing    bool
	closeCh    chan struct{} // closed when closing begins; interrupts the delay window
	err        error         // sticky: first write/fsync failure poisons the WAL

	// Per-shard batch counters (nil until setShardMetrics): the ratio
	// records/batches is this shard WAL's batch occupancy.
	shardBatches *obs.Counter
	shardRecords *obs.Counter

	// syncDelay models slow stable storage (Options.SyncDelay): an
	// extra wait per batch commit, taken off-lock where the fsync
	// blocks, so it amortizes across the batch like a real slow fsync.
	// Set once before the committer sees traffic.
	syncDelay time.Duration

	// fsyncEWMA smooths recent fsync latencies. The MaxDelay batch
	// window only pays off when fsync costs much more than the window
	// itself (spinning disks, network filesystems); on storage where
	// fsync is cheaper than the delay, holding the batch open just adds
	// latency, so commitLocked skips it.
	fsyncEWMA time.Duration

	done chan struct{} // closed when the committer goroutine exits
}

func newCommitter(f *os.File, fsync bool, maxBatch int, maxDelay time.Duration) *committer {
	w := &committer{
		f:        f,
		fsync:    fsync,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		closeCh:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	w.work = sync.NewCond(&w.mu)
	w.did = sync.NewCond(&w.mu)
	w.enc = json.NewEncoder(&w.scratch)
	go w.run()
	return w
}

// setShardMetrics wires the committer to its shard's per-WAL batch
// counters. Called once, before the committer sees traffic.
func (w *committer) setShardMetrics(label string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.shardBatches = metricShardBatches.With(label)
	w.shardRecords = metricShardBatchRecords.With(label)
}

// enqueue encodes one record into the pending batch and returns its
// sequence number for a later wait. Callers hold the catalog write
// lock, so records land in the WAL in exactly the order the in-memory
// mutations were applied.
func (w *committer) enqueue(op opKind, v any) (uint64, error) {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.scratch.Reset()
	if err := w.enc.Encode(walEnvelope{Op: op, Data: v}); err != nil {
		return 0, fmt.Errorf("catalog: wal encode: %w", err)
	}
	w.pending = append(w.pending, w.scratch.Bytes()...)
	w.count++
	w.nextSeq++
	metricWALQueueDepth.Set(float64(w.count))
	metricWALAppend.ObserveSince(start)
	w.work.Signal()
	return w.nextSeq, nil
}

// wait blocks until the record with sequence seq is durable (written,
// and fsynced when Options.Sync is set) or the WAL has failed. If the
// queue is idle it assists: the caller becomes the batch leader and
// commits pending records itself.
func (w *committer) wait(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waiters++
	defer func() { w.waiters-- }()
	for w.durable < seq && w.err == nil {
		if w.count > 0 && !w.committing {
			w.commitLocked()
			continue
		}
		w.did.Wait()
	}
	if w.durable >= seq {
		return nil
	}
	return w.err
}

// flush blocks until everything enqueued so far is durable. Snapshot
// uses it (under the catalog lock, so the queue cannot grow) to
// quiesce the WAL before truncating it.
func (w *committer) flush() error {
	w.mu.Lock()
	seq := w.nextSeq
	w.mu.Unlock()
	return w.wait(seq)
}

// close drains the queue, stops the committer goroutine, and returns
// the sticky WAL error, if any. The file itself is closed by the
// caller afterwards.
func (w *committer) close() error {
	w.mu.Lock()
	if !w.closing {
		w.closing = true
		close(w.closeCh)
	}
	w.work.Signal()
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// run is the dedicated committer goroutine: it guarantees progress
// when no waiter assists and performs the final drain at close.
func (w *committer) run() {
	defer close(w.done)
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		for w.count == 0 || w.committing {
			if w.closing && w.count == 0 && !w.committing {
				return
			}
			w.work.Wait()
		}
		w.commitLocked()
	}
}

// commitLocked writes everything pending as one batch: one write(2),
// one fsync. Called with w.mu held; the lock is released during the
// I/O so new records accumulate into the next batch meanwhile. After a
// sticky failure the batch is discarded — appending past a hole would
// corrupt replay order.
func (w *committer) commitLocked() {
	if w.err != nil {
		w.pending = w.pending[:0]
		w.count = 0
		metricWALQueueDepth.Set(0)
		w.did.Broadcast()
		return
	}
	if w.count == 0 {
		return
	}
	if w.maxDelay > 0 && w.waiters > 1 && w.count < w.maxBatch && !w.closing &&
		w.fsyncEWMA > 4*w.maxDelay {
		// Contended, and fsync is expensive enough that holding the
		// batch open for stragglers costs less than the fsync it saves.
		// A lone writer never waits here, and on storage where fsync is
		// cheaper than the window (fast SSDs, tmpfs) the in-flight
		// commit itself is the accumulation window, so we skip straight
		// to the write.
		//
		// The window is part of the commit: committing stays set across
		// the sleep so no other goroutine starts a second commit and
		// swaps pending into spare while this batch is still headed for
		// the file. close() interrupts the window via closeCh so a batch
		// opened just before shutdown does not hold Close for the full
		// delay — it commits immediately, and the final drain proceeds.
		w.committing = true
		w.mu.Unlock()
		t := time.NewTimer(w.maxDelay)
		select {
		case <-t.C:
		case <-w.closeCh:
			t.Stop()
		}
		w.mu.Lock()
		w.committing = false
		// While committing was held nothing else could commit, so err
		// cannot have been set and the queue cannot have drained; checked
		// anyway so an early return never strands a waiter.
		if w.err != nil || w.count == 0 {
			w.did.Broadcast()
			w.work.Signal()
			return
		}
	}
	buf, n, endSeq := w.pending, w.count, w.nextSeq
	w.pending = w.spare[:0]
	w.count = 0
	w.committing = true
	metricWALQueueDepth.Set(0)
	w.mu.Unlock()

	metricWALBatchRecords.Observe(float64(n))
	metricWALBatchBytes.Observe(float64(len(buf)))
	if w.shardBatches != nil {
		w.shardBatches.Inc()
		w.shardRecords.Add(uint64(n))
	}
	var err error
	if _, werr := w.f.Write(buf); werr != nil {
		err = fmt.Errorf("%w: wal append: %v", ErrDurability, werr)
	}
	var fsyncTook time.Duration
	if err == nil && w.fsync {
		start := time.Now()
		if serr := w.f.Sync(); serr != nil {
			err = fmt.Errorf("%w: wal sync: %v", ErrDurability, serr)
		} else {
			fsyncTook = time.Since(start)
			metricWALBatchFsync.Observe(fsyncTook.Seconds())
		}
	}
	if err == nil && w.syncDelay > 0 {
		time.Sleep(w.syncDelay)
	}

	w.mu.Lock()
	if fsyncTook > 0 {
		if w.fsyncEWMA == 0 {
			w.fsyncEWMA = fsyncTook
		} else {
			w.fsyncEWMA = (3*w.fsyncEWMA + fsyncTook) / 4
		}
	}
	w.spare = buf[:0]
	w.committing = false
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else {
		w.durable = endSeq
	}
	w.did.Broadcast()
	w.work.Signal()
}

// failure returns the sticky WAL error without blocking.
func (w *committer) failure() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
