package catalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// populate fills a catalog with a representative mix of objects.
func populate(t *testing.T, c *Catalog) {
	t.Helper()
	if err := c.DefineType(dtype.Content, "HEP", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineType(dtype.Content, "RawEvents", "HEP"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDataset(schema.Dataset{
		Name: "raw", Type: dtype.Type{Content: "RawEvents"},
		Descriptor: schema.FileDescriptor{Path: "/raw"}, Size: 100,
		Attrs: schema.Attributes{"run": "15"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	dv, err := c.AddDerivation(chainDV("t", "raw", "cooked"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddInvocation(schema.Invocation{
		ID: "iv1", Derivation: dv.ID, Site: "anl", Host: "n1",
		Start: time.Unix(100, 0).UTC(), End: time.Unix(130, 0).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(schema.Replica{ID: "r1", Dataset: "cooked", Site: "anl", PFN: "/store/cooked"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AssertCompatibility(schema.CompatibilityAssertion{Name: "t", V1: "1", V2: "2", Mode: schema.Equivalent}); err != nil {
		t.Fatal(err)
	}
}

// requireSameState asserts two catalogs export identical state.
func requireSameState(t *testing.T, a, b *Catalog) {
	t.Helper()
	ea, eb := a.Export(), b.Export()
	ja, err := schema.CanonicalBytes(ea)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := schema.CanonicalBytes(eb)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("states differ:\n%s\n---\n%s", ja, jb)
	}
}

func TestWALReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)

	// Provenance indexes rebuilt.
	if _, err := c2.Producer("cooked"); err != nil {
		t.Errorf("producer index after replay: %v", err)
	}
	if !c2.Materialized("cooked") {
		t.Error("replica index after replay")
	}
	if !c2.Compatible("", "t", "1", "2") {
		t.Error("compat after replay")
	}
	if !c2.Types().IsSubtype(dtype.Content, "RawEvents", "HEP") {
		t.Error("type registry after replay")
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// WAL truncated.
	fi, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("wal not truncated: %d bytes", fi.Size())
	}
	// Mutations after snapshot land in the (new) log.
	if _, err := c.AddDerivation(chainDV("t", "cooked", "refined")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireSameState(t, c, c2)
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	c.Close()

	// Simulate a torn final write.
	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"dataset","data":{"name":"torn`)
	f.Close()

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Dataset("torn"); !errors.Is(err, ErrNotFound) {
		t.Error("torn record applied")
	}
	if _, err := c2.Dataset("raw"); err != nil {
		t.Error("earlier records lost")
	}
}

func TestCorruptMidFileRecordRejected(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	c.Close()

	// Corrupt a record that is *followed* by a valid one: that is log
	// damage, not a torn tail, and silently stopping there would drop
	// acknowledged state.
	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"op\":\"dataset\",\"data\":{\"name\":\"torn\n")
	f.WriteString("{\"op\":\"dataset\",\"data\":{\"name\":\"after\"}}\n")
	f.Close()

	if _, err := Open(dir, nil, Options{}); err == nil {
		t.Fatal("corrupt mid-file record silently tolerated")
	}
}

func TestTornTailAfterBlankLinesTolerated(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c)
	c.Close()

	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A torn record trailed only by empty lines is still a torn tail.
	f.WriteString("{\"op\":\"dataset\",\"data\":{\"name\":\"torn\n\n")
	f.Close()

	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatalf("torn tail with trailing blank line should be tolerated: %v", err)
	}
	c2.Close()
}

func TestOpenWithSeedRegistry(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, dtype.StandardRegistry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Types().Known(dtype.Content, "CMS") {
		t.Error("seed not applied")
	}
	c.Close()
	// Reopen with no seed: persisted registry must survive via ops?
	// Types registered via the seed are not persisted (they were not
	// catalog mutations), so callers reopen with the same seed.
	c2, err := Open(dir, dtype.StandardRegistry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Types().Known(dtype.Content, "CMS") {
		t.Error("seed on reopen")
	}
}

func TestSnapshotPersistsSeededTypes(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, dtype.StandardRegistry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// After a snapshot, the registry is part of durable state: no seed
	// needed on reopen.
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Types().Known(dtype.Content, "CMS") {
		t.Error("snapshot lost type registry")
	}
}

func TestExportImport(t *testing.T) {
	src := New(nil)
	populate(t, src)
	exp := src.Export()

	dst := New(nil)
	if err := dst.Import(exp); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, src, dst)

	// Import is idempotent.
	if err := dst.Import(exp); err != nil {
		t.Fatalf("re-import: %v", err)
	}
	requireSameState(t, src, dst)
}

func TestExportDeterministic(t *testing.T) {
	a := New(nil)
	populate(t, a)
	e1, _ := schema.CanonicalBytes(a.Export())
	e2, _ := schema.CanonicalBytes(a.Export())
	if !reflect.DeepEqual(e1, e2) {
		t.Error("export not deterministic")
	}
}

func TestInMemoryCloseAndSnapshotNoops(t *testing.T) {
	c := New(nil)
	if err := c.Close(); err != nil {
		t.Error(err)
	}
	if err := c.Snapshot(); err != nil {
		t.Error(err)
	}
}

func TestCrashConsistencyManyOps(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTransformation(twoArg("t"))
	for i := 0; i < 200; i++ {
		if _, err := c.AddDerivation(chainDV("t", fmt.Sprintf("in%d", i), fmt.Sprintf("out%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := c.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Close()
	c2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Stats().Derivations != 200 {
		t.Errorf("derivations after replay: %d", c2.Stats().Derivations)
	}
	requireSameState(t, c, c2)
}
