//go:build !unix

package catalog

import "os"

// mapFile on platforms without mmap support falls back to reading the
// whole file; done is a no-op. Same contract as the unix variant.
func mapFile(path string) (data []byte, done func(), err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
