// Package estimator implements the estimation facet (§5.3): it learns
// per-transformation cost models from recorded invocations and uses
// them to predict the cost of executing data-derivation workflow
// graphs, for both automated request planning and interactive "can I
// have it in time?" queries.
//
// Resource requirements recorded with provenance guide subsequent
// planning decisions — the synergy the paper gives for integrating
// provenance with planning.
package estimator

import (
	"fmt"
	"math"
	"sync"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/obs"
	"chimera/internal/schema"
)

// Estimator metrics: sample volume and prediction error. The error
// histogram records |observed - predicted| seconds for samples where a
// history-backed prediction existed, so operators can watch the cost
// model converge.
var (
	metricObservations = obs.Default.CounterVec("vdc_estimator_observations_total",
		"Execution samples folded into the cost model, by outcome.", "outcome")
	obsSuccess = metricObservations.With("success")
	obsFailure = metricObservations.With("failure")

	metricEstimateError = obs.Default.Histogram("vdc_estimator_error_seconds",
		"Absolute error of the runtime prediction vs the observed sample.", nil)
)

// trStats accumulates Welford-style running statistics for one
// transformation.
type trStats struct {
	n                 int
	meanDur, m2       float64
	meanIn, meanOut   float64
	failures, samples int
}

// Estimator predicts derivation costs from invocation history.
// It is safe for concurrent use.
type Estimator struct {
	mu    sync.RWMutex
	stats map[string]*trStats

	// DefaultWork is the prior runtime (reference-CPU seconds) assumed
	// for transformations with no history.
	DefaultWork float64
}

// New returns an estimator with the given prior.
func New(defaultWork float64) *Estimator {
	if defaultWork <= 0 {
		defaultWork = 60
	}
	return &Estimator{stats: make(map[string]*trStats), DefaultWork: defaultWork}
}

// Observe folds one execution sample for a transformation into the
// model: elapsed seconds, staged bytes, and success/failure.
func (e *Estimator) Observe(tr string, seconds float64, bytesIn, bytesOut int64, succeeded bool) {
	if seconds < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats[tr]
	if s == nil {
		s = &trStats{}
		e.stats[tr] = s
	}
	s.samples++
	if !succeeded {
		s.failures++
		obsFailure.Inc()
		return
	}
	obsSuccess.Inc()
	if s.n > 0 {
		metricEstimateError.Observe(math.Abs(seconds - s.meanDur))
	}
	s.n++
	d := seconds - s.meanDur
	s.meanDur += d / float64(s.n)
	s.m2 += d * (seconds - s.meanDur)
	s.meanIn += (float64(bytesIn) - s.meanIn) / float64(s.n)
	s.meanOut += (float64(bytesOut) - s.meanOut) / float64(s.n)
}

// ObserveInvocation folds a recorded invocation, resolving its
// transformation through the derivation.
func (e *Estimator) ObserveInvocation(dv schema.Derivation, iv schema.Invocation) {
	e.Observe(dv.TR, iv.Duration().Seconds(), iv.BytesIn, iv.BytesOut, iv.Succeeded())
}

// LoadCatalog folds every invocation recorded in a catalog.
func (e *Estimator) LoadCatalog(c *catalog.Catalog) error {
	for _, iv := range c.Invocations() {
		dv, err := c.Derivation(iv.Derivation)
		if err != nil {
			return fmt.Errorf("estimator: %w", err)
		}
		e.ObserveInvocation(dv, iv)
	}
	return nil
}

// Work returns the predicted runtime (seconds on a reference host) for
// one derivation of the transformation, and whether the prediction is
// backed by history.
func (e *Estimator) Work(tr string) (float64, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.stats[tr]
	if s == nil || s.n == 0 {
		return e.DefaultWork, false
	}
	return s.meanDur, true
}

// StdDev returns the sample standard deviation of the transformation's
// runtime (0 with fewer than two successful samples).
func (e *Estimator) StdDev(tr string) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.stats[tr]
	if s == nil || s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Bytes returns the predicted staged-in and staged-out volumes.
func (e *Estimator) Bytes(tr string) (in, out float64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.stats[tr]
	if s == nil || s.n == 0 {
		return 0, 0
	}
	return s.meanIn, s.meanOut
}

// FailureRate returns the observed fraction of failed invocations.
func (e *Estimator) FailureRate(tr string) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.stats[tr]
	if s == nil || s.samples == 0 {
		return 0
	}
	return float64(s.failures) / float64(s.samples)
}

// History returns the number of successful samples for a transformation.
func (e *Estimator) History(tr string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := e.stats[tr]
	if s == nil {
		return 0
	}
	return s.n
}

// Estimate is the predicted cost of a workflow graph.
type Estimate struct {
	// TotalWork is the sum of node runtimes (reference-CPU seconds).
	TotalWork float64
	// CriticalPath is the longest dependency chain in seconds,
	// including per-node transfer overhead.
	CriticalPath float64
	// Makespan is the classic lower bound max(CriticalPath,
	// TotalWork/hosts + transfer amortization).
	Makespan float64
	// TransferSeconds is the total predicted data-movement time.
	TransferSeconds float64
	// Confident reports whether every node's transformation had
	// history (false means priors were used somewhere).
	Confident bool
}

// EstimateGraph predicts the cost of running a workflow on the given
// number of reference hosts. transferCost, if non-nil, returns the
// per-node staging time in seconds.
func (e *Estimator) EstimateGraph(g *dag.Graph, hosts int, transferCost func(*dag.Node) float64) Estimate {
	if hosts <= 0 {
		hosts = 1
	}
	est := Estimate{Confident: true}
	nodeCost := func(n *dag.Node) float64 {
		w, ok := e.Work(n.Derivation.TR)
		if !ok {
			est.Confident = false
		}
		x := 0.0
		if transferCost != nil {
			x = transferCost(n)
		}
		return w + x
	}
	for _, n := range g.Nodes() {
		w, _ := e.Work(n.Derivation.TR)
		est.TotalWork += w
		if transferCost != nil {
			est.TransferSeconds += transferCost(n)
		}
	}
	est.CriticalPath = g.CriticalPath(nodeCost)
	parallel := (est.TotalWork + est.TransferSeconds) / float64(hosts)
	est.Makespan = math.Max(est.CriticalPath, parallel)
	return est
}

// EstimateDerivations is EstimateGraph over a plain derivation list.
func (e *Estimator) EstimateDerivations(dvs []schema.Derivation, resolve schema.Resolver, hosts int) (Estimate, error) {
	g, err := dag.Build(dvs, resolve)
	if err != nil {
		return Estimate{}, err
	}
	return e.EstimateGraph(g, hosts, nil), nil
}
