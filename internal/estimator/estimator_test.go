package estimator

import (
	"fmt"
	"math"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/schema"
)

func TestPriorWithoutHistory(t *testing.T) {
	e := New(120)
	w, confident := e.Work("unknown")
	if w != 120 || confident {
		t.Errorf("prior: %g %v", w, confident)
	}
	if New(0).DefaultWork <= 0 {
		t.Error("zero prior not defaulted")
	}
	if e.StdDev("unknown") != 0 || e.History("unknown") != 0 || e.FailureRate("unknown") != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestObserveConverges(t *testing.T) {
	e := New(60)
	for i := 0; i < 100; i++ {
		e.Observe("sim", 100+float64(i%11)-5, 1000, 2000, true)
	}
	w, confident := e.Work("sim")
	if !confident {
		t.Error("history should make estimate confident")
	}
	if math.Abs(w-100) > 1 {
		t.Errorf("mean: %g", w)
	}
	if sd := e.StdDev("sim"); sd < 2 || sd > 5 {
		t.Errorf("stddev: %g", sd)
	}
	in, out := e.Bytes("sim")
	if in != 1000 || out != 2000 {
		t.Errorf("bytes: %g %g", in, out)
	}
	if e.History("sim") != 100 {
		t.Errorf("history: %d", e.History("sim"))
	}
}

func TestFailuresTracked(t *testing.T) {
	e := New(60)
	e.Observe("flaky", 10, 0, 0, true)
	e.Observe("flaky", 0, 0, 0, false)
	e.Observe("flaky", 0, 0, 0, false)
	e.Observe("flaky", 12, 0, 0, true)
	if fr := e.FailureRate("flaky"); fr != 0.5 {
		t.Errorf("failure rate: %g", fr)
	}
	// Failures do not pollute runtime stats.
	w, _ := e.Work("flaky")
	if w != 11 {
		t.Errorf("mean with failures: %g", w)
	}
	// Negative durations ignored.
	e.Observe("flaky", -5, 0, 0, true)
	if e.History("flaky") != 2 {
		t.Error("negative sample counted")
	}
}

func buildChainGraph(t *testing.T, n int) (*dag.Graph, schema.Resolver) {
	t.Helper()
	tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
	res := schema.MapResolver(tr)
	var dvs []schema.Derivation
	for i := 0; i < n; i++ {
		dvs = append(dvs, schema.Derivation{TR: "t", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", fmt.Sprintf("f%d", i+1)),
			"i": schema.DatasetActual("input", fmt.Sprintf("f%d", i)),
		}})
	}
	g, err := dag.Build(dvs, res)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func buildFanGraph(t *testing.T, n int) *dag.Graph {
	t.Helper()
	tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
	var dvs []schema.Derivation
	for i := 0; i < n; i++ {
		dvs = append(dvs, schema.Derivation{TR: "t", Params: map[string]schema.Actual{
			"o": schema.DatasetActual("output", fmt.Sprintf("out%d", i)),
			"i": schema.DatasetActual("input", "shared"),
		}})
	}
	g, err := dag.Build(dvs, schema.MapResolver(tr))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEstimateGraphChainVsFan(t *testing.T) {
	e := New(60)
	for i := 0; i < 10; i++ {
		e.Observe("t", 100, 0, 0, true)
	}
	chain, _ := buildChainGraph(t, 10)
	fan := buildFanGraph(t, 10)

	// Chain: critical path dominates regardless of hosts.
	ec := e.EstimateGraph(chain, 100, nil)
	if ec.TotalWork != 1000 || ec.CriticalPath != 1000 || ec.Makespan != 1000 {
		t.Errorf("chain: %+v", ec)
	}
	if !ec.Confident {
		t.Error("chain should be confident")
	}
	// Fan: parallelizes perfectly.
	ef := e.EstimateGraph(fan, 10, nil)
	if ef.CriticalPath != 100 || ef.Makespan != 100 {
		t.Errorf("fan on 10 hosts: %+v", ef)
	}
	ef1 := e.EstimateGraph(fan, 1, nil)
	if ef1.Makespan != 1000 {
		t.Errorf("fan on 1 host: %+v", ef1)
	}
	// Hosts <= 0 treated as 1.
	if e.EstimateGraph(fan, 0, nil).Makespan != 1000 {
		t.Error("zero hosts")
	}
}

func TestEstimateTransferCost(t *testing.T) {
	e := New(60)
	e.Observe("t", 100, 0, 0, true)
	chain, _ := buildChainGraph(t, 5)
	est := e.EstimateGraph(chain, 1, func(*dag.Node) float64 { return 10 })
	if est.TransferSeconds != 50 {
		t.Errorf("transfer: %g", est.TransferSeconds)
	}
	if est.CriticalPath != 550 || est.Makespan != 550 {
		t.Errorf("with transfers: %+v", est)
	}
}

func TestConfidenceFlag(t *testing.T) {
	e := New(60)
	chain, _ := buildChainGraph(t, 3)
	if e.EstimateGraph(chain, 1, nil).Confident {
		t.Error("no history should not be confident")
	}
}

func TestLoadCatalog(t *testing.T) {
	c := catalog.New(nil)
	tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
	if err := c.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}
	dv, err := c.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "b"),
		"i": schema.DatasetActual("input", "a"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		if err := c.AddInvocation(schema.Invocation{
			ID: fmt.Sprintf("iv%d", i), Derivation: dv.ID,
			Start: base, End: base.Add(40 * time.Second),
			BytesIn: 100, BytesOut: 200,
		}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(60)
	if err := e.LoadCatalog(c); err != nil {
		t.Fatal(err)
	}
	w, confident := e.Work("t")
	if !confident || w != 40 {
		t.Errorf("loaded work: %g %v", w, confident)
	}
}

func TestEstimateDerivations(t *testing.T) {
	tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/bin/t",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In},
		}}
	res := schema.MapResolver(tr)
	dvs := []schema.Derivation{{TR: "t", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "b"),
		"i": schema.DatasetActual("input", "a"),
	}}}
	e := New(77)
	est, err := e.EstimateDerivations(dvs, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalWork != 77 {
		t.Errorf("total: %g", est.TotalWork)
	}
	// Bad graph surfaces the error.
	bad := []schema.Derivation{{TR: "ghost", Params: map[string]schema.Actual{}}}
	if _, err := e.EstimateDerivations(bad, res, 1); err == nil {
		t.Error("bad derivations accepted")
	}
}

// Property: estimation error shrinks as history grows (E6's shape).
func TestErrorShrinksWithHistory(t *testing.T) {
	trueMean := 100.0
	errAt := func(samples int) float64 {
		e := New(10) // bad prior
		// Deterministic pseudo-noise around the true mean.
		for i := 0; i < samples; i++ {
			noise := float64((i*37)%21) - 10
			e.Observe("t", trueMean+noise, 0, 0, true)
		}
		w, _ := e.Work("t")
		return math.Abs(w - trueMean)
	}
	e0 := errAt(0)   // prior error = 90
	e10 := errAt(10) // sample error
	e200 := errAt(200)
	if !(e0 > e10 && e10 >= e200-0.5) {
		t.Errorf("error not shrinking: %g %g %g", e0, e10, e200)
	}
	if e200 > 1 {
		t.Errorf("converged error too large: %g", e200)
	}
}
