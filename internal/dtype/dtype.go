// Package dtype implements the Chimera dataset type model: a three-
// dimensional type space (semantic content, physical format, encoding)
// in which each dimension carries its own hierarchy of subtypes.
//
// A dataset type is a point in that space; a transformation's formal
// argument is a point or a union of points. Conformance — "may this
// dataset be passed for this formal argument?" — holds when, dimension
// by dimension, the dataset's type is a descendant of (or equal to) the
// formal's type. The empty string in a dimension denotes that
// dimension's base type and conforms to everything, so the fully empty
// Type{} is the untyped "Dataset" of the paper.
//
// There are no predefined base types beyond the three dimension roots:
// each community registers its own vocabulary in a Registry.
package dtype

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Dimension identifies one of the three axes of the dataset type space.
type Dimension int

const (
	// Content is the semantic-content dimension ("Dataset-content").
	Content Dimension = iota
	// Format is the physical-representation dimension ("Dataset-format").
	Format
	// Encoding is the encoding dimension ("Dataset-encoding").
	Encoding

	numDimensions = 3
)

// String returns the paper's name for the dimension's base type.
func (d Dimension) String() string {
	switch d {
	case Content:
		return "Dataset-content"
	case Format:
		return "Dataset-format"
	case Encoding:
		return "Dataset-encoding"
	default:
		return fmt.Sprintf("Dimension(%d)", int(d))
	}
}

// Dimensions lists the three dimensions in canonical order.
func Dimensions() []Dimension { return []Dimension{Content, Format, Encoding} }

// Type is a fully or partially specified dataset type: one (possibly
// empty) type name per dimension. The zero value is the universal
// "Dataset" type.
type Type struct {
	Content  string `json:"content,omitempty"`
	Format   string `json:"format,omitempty"`
	Encoding string `json:"encoding,omitempty"`
}

// Universal is the untyped "Dataset" type to which every dataset
// conforms and which conforms only to itself.
var Universal = Type{}

// Get returns the type name in dimension d.
func (t Type) Get(d Dimension) string {
	switch d {
	case Content:
		return t.Content
	case Format:
		return t.Format
	case Encoding:
		return t.Encoding
	}
	return ""
}

// With returns a copy of t with dimension d set to name.
func (t Type) With(d Dimension, name string) Type {
	switch d {
	case Content:
		t.Content = name
	case Format:
		t.Format = name
	case Encoding:
		t.Encoding = name
	}
	return t
}

// IsUniversal reports whether t is the fully unspecified "Dataset" type.
func (t Type) IsUniversal() bool { return t == Type{} }

// String renders t as "content;format;encoding" with empty dimensions
// shown as "*". The universal type renders as "Dataset".
func (t Type) String() string {
	if t.IsUniversal() {
		return "Dataset"
	}
	part := func(s string) string {
		if s == "" {
			return "*"
		}
		return s
	}
	return part(t.Content) + ";" + part(t.Format) + ";" + part(t.Encoding)
}

// ParseType parses the representation produced by Type.String. The
// literal "Dataset" (any case) and the empty string parse to Universal.
// A single segment with no ';' is taken as a content-only type.
func ParseType(s string) (Type, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "dataset") {
		return Universal, nil
	}
	parts := strings.Split(s, ";")
	if len(parts) > numDimensions {
		return Type{}, fmt.Errorf("dtype: %q has %d segments, want at most %d", s, len(parts), numDimensions)
	}
	var t Type
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "*" || p == "" {
			continue
		}
		t = t.With(Dimension(i), p)
	}
	return t, nil
}

// MustParseType is ParseType that panics on error; for tests and
// package-level variables.
func MustParseType(s string) Type {
	t, err := ParseType(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Registry holds the subtype hierarchies for the three dimensions. The
// roots of the hierarchies are the three dimension base types, denoted
// by the empty name. A Registry is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	parent [numDimensions]map[string]string // name -> parent name ("" = dimension root)
}

// NewRegistry returns an empty registry containing only the three
// dimension roots.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.parent {
		r.parent[i] = make(map[string]string)
	}
	return r
}

// Register adds name to dimension d as a subtype of parent. An empty
// parent makes name a direct child of the dimension root. Registering
// an existing name with the same parent is a no-op; with a different
// parent it is an error, as is an unknown parent.
func (r *Registry) Register(d Dimension, name, parent string) error {
	if err := checkName(name); err != nil {
		return err
	}
	if d < 0 || int(d) >= numDimensions {
		return fmt.Errorf("dtype: invalid dimension %d", int(d))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.parent[d]
	if parent != "" {
		if _, ok := m[parent]; !ok {
			return fmt.Errorf("dtype: parent type %q not registered in dimension %s", parent, d)
		}
	}
	if old, ok := m[name]; ok {
		if old != parent {
			return fmt.Errorf("dtype: type %q already registered in dimension %s with parent %q", name, d, old)
		}
		return nil
	}
	m[name] = parent
	return nil
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(d Dimension, name, parent string) {
	if err := r.Register(d, name, parent); err != nil {
		panic(err)
	}
}

// Known reports whether name is registered in dimension d. The empty
// name (the dimension root) is always known.
func (r *Registry) Known(d Dimension, name string) bool {
	if name == "" {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.parent[d][name]
	return ok
}

// CheckType reports an error if any non-empty dimension of t names an
// unregistered type.
func (r *Registry) CheckType(t Type) error {
	for _, d := range Dimensions() {
		if n := t.Get(d); n != "" && !r.Known(d, n) {
			return fmt.Errorf("dtype: unknown %s type %q", d, n)
		}
	}
	return nil
}

// IsSubtype reports whether sub is a descendant of, or equal to, super
// within dimension d. Every name is a subtype of the dimension root
// (the empty name). Unregistered names are subtypes only of themselves
// and the root.
func (r *Registry) IsSubtype(d Dimension, sub, super string) bool {
	if super == "" || sub == super {
		return true
	}
	if sub == "" {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := r.parent[d]
	for cur := sub; ; {
		p, ok := m[cur]
		if !ok || p == "" {
			return false
		}
		if p == super {
			return true
		}
		cur = p
	}
}

// Conforms reports whether a dataset of type t may be bound to a formal
// argument of type formal: in every dimension, t must be a subtype of
// formal. The universal formal accepts everything.
func (r *Registry) Conforms(t, formal Type) bool {
	for _, d := range Dimensions() {
		if !r.IsSubtype(d, t.Get(d), formal.Get(d)) {
			return false
		}
	}
	return true
}

// ConformsUnion reports whether t conforms to at least one member of
// the union. An empty union accepts nothing.
func (r *Registry) ConformsUnion(t Type, union []Type) bool {
	for _, u := range union {
		if r.Conforms(t, u) {
			return true
		}
	}
	return false
}

// Ancestors returns the chain of ancestors of name in dimension d, from
// immediate parent up to (but excluding) the dimension root. It returns
// nil for unregistered names and for direct children of the root.
func (r *Registry) Ancestors(d Dimension, name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := r.parent[d]
	var out []string
	for cur := name; ; {
		p, ok := m[cur]
		if !ok || p == "" {
			return out
		}
		out = append(out, p)
		cur = p
	}
}

// Depth returns the number of edges between name and the dimension
// root: 0 for the root itself, 1 for a top-level type, and so on.
// Unregistered names report depth 1 (self under root).
func (r *Registry) Depth(d Dimension, name string) int {
	if name == "" {
		return 0
	}
	return len(r.Ancestors(d, name)) + 1
}

// Children returns the direct children of name (or of the dimension
// root if name is empty) in dimension d, sorted.
func (r *Registry) Children(d Dimension, name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n, p := range r.parent[d] {
		if p == name {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Names returns every registered name in dimension d, sorted.
func (r *Registry) Names(d Dimension) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.parent[d]))
	for n := range r.parent[d] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Specificity is the total depth of t across all dimensions; a larger
// value means a more specific type. Discovery uses it to rank matches.
func (r *Registry) Specificity(t Type) int {
	s := 0
	for _, d := range Dimensions() {
		if n := t.Get(d); n != "" {
			s += r.Depth(d, n)
		}
	}
	return s
}

// entry is the serialized form of one registered type.
type entry struct {
	Dimension int    `json:"dim"`
	Name      string `json:"name"`
	Parent    string `json:"parent,omitempty"`
}

// MarshalJSON serializes the registry as a topologically ordered list
// of (dimension, name, parent) entries.
func (r *Registry) MarshalJSON() ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var entries []entry
	for d := 0; d < numDimensions; d++ {
		names := make([]string, 0, len(r.parent[d]))
		for n := range r.parent[d] {
			names = append(names, n)
		}
		// Parents must precede children; sort by depth then name for a
		// stable, replayable order.
		depth := func(n string) int {
			k := 0
			for cur := n; ; {
				p, ok := r.parent[d][cur]
				if !ok || p == "" {
					return k
				}
				k++
				cur = p
			}
		}
		sort.Slice(names, func(i, j int) bool {
			di, dj := depth(names[i]), depth(names[j])
			if di != dj {
				return di < dj
			}
			return names[i] < names[j]
		})
		for _, n := range names {
			entries = append(entries, entry{Dimension: d, Name: n, Parent: r.parent[d][n]})
		}
	}
	return json.Marshal(entries)
}

// UnmarshalJSON replaces the registry contents with the serialized
// entries.
func (r *Registry) UnmarshalJSON(data []byte) error {
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return err
	}
	fresh := NewRegistry()
	for _, e := range entries {
		if err := fresh.Register(Dimension(e.Dimension), e.Name, e.Parent); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.parent = fresh.parent
	return nil
}

// Clone returns an independent copy of the registry.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := NewRegistry()
	for d := 0; d < numDimensions; d++ {
		for n, p := range r.parent[d] {
			c.parent[d][n] = p
		}
	}
	return c
}

// Merge registers every entry of other into r. Entries are applied in
// depth order so parents always precede children. Conflicting parents
// are reported as an error; all non-conflicting entries still apply.
func (r *Registry) Merge(other *Registry) error {
	other.mu.RLock()
	type pair struct {
		name, parent string
		depth        int
	}
	var byDim [numDimensions][]pair
	for d := 0; d < numDimensions; d++ {
		depth := func(n string) int {
			k := 0
			for cur := n; ; {
				p, ok := other.parent[d][cur]
				if !ok || p == "" {
					return k
				}
				k++
				cur = p
			}
		}
		for n, p := range other.parent[d] {
			byDim[d] = append(byDim[d], pair{n, p, depth(n)})
		}
	}
	other.mu.RUnlock()

	var firstErr error
	for d := 0; d < numDimensions; d++ {
		pairs := byDim[d]
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].depth != pairs[j].depth {
				return pairs[i].depth < pairs[j].depth
			}
			return pairs[i].name < pairs[j].name
		})
		for _, pr := range pairs {
			if err := r.Register(Dimension(d), pr.name, pr.parent); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("dtype: empty type name")
	}
	if strings.ContainsAny(name, ";*\n\t ") {
		return fmt.Errorf("dtype: type name %q contains reserved characters", name)
	}
	return nil
}
