package dtype

// StandardRegistry returns a registry pre-loaded with the example
// dataset-type hierarchy of Appendix C of the paper, covering the three
// dimensions. Communities normally extend this (or start from an empty
// NewRegistry) with their own vocabularies.
func StandardRegistry() *Registry {
	r := NewRegistry()

	// Dimension: Dataset-format.
	for _, e := range [][2]string{
		{"Fileset", ""},
		{"Simple", "Fileset"},
		{"Multi-file-list", "Fileset"},
		{"Tar-archive", "Fileset"},
		{"Zip-archive", "Fileset"},
		{"Spreadsheet", ""},
		{"Excel-95", "Spreadsheet"},
		{"Excel-2000", "Spreadsheet"},
		{"Relation", ""},
		{"SQL-table", "Relation"},
		{"SQL-table-set", "Relation"},
		{"SQL-table-keyrange", "Relation"},
	} {
		r.MustRegister(Format, e[0], e[1])
	}

	// Dimension: Dataset-encoding.
	for _, e := range [][2]string{
		{"Text", ""},
		{"ASCII", "Text"},
		{"DOS-text", "ASCII"},
		{"UNIX-text", "ASCII"},
		{"EBCDIC", "Text"},
		{"MVS-Text", "EBCDIC"},
		{"Unicode", "Text"},
		{"Table", ""},
		{"Tab-separated-table", "Table"},
		{"Comma-separated-table", "Table"},
		{"HDF-file", ""},
		{"HDF-4-file", "HDF-file"},
		{"HDF-5-file", "HDF-file"},
		{"SPSS", ""},
		{"SPSS-portable", "SPSS"},
		{"SPSS-native", "SPSS"},
		{"SAS", ""},
		{"SAS-transport", "SAS"},
		{"SAS-native", "SAS"},
	} {
		r.MustRegister(Encoding, e[0], e[1])
	}

	// Dimension: Dataset-content.
	for _, e := range [][2]string{
		{"UChicago", ""},
		{"UChicago-student-record", "UChicago"},
		{"UChicago-class-record", "UChicago"},
		{"CMS", ""},
		{"Simulation", "CMS"},
		{"Zebra-file", "Simulation"},
		{"Geant-4-file", "Simulation"},
		{"Analysis", "CMS"},
		{"ROOT-IO-file", "Analysis"},
		{"PAW-ntuple-file", "Analysis"},
		{"SDSS", ""},
		{"FITS-file", "SDSS"},
		{"Object-map", "SDSS"},
		{"Spectrometry-raw", "SDSS"},
		{"Image-raw", "SDSS"},
	} {
		r.MustRegister(Content, e[0], e[1])
	}

	return r
}
