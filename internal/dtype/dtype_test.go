package dtype

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDimensionString(t *testing.T) {
	cases := map[Dimension]string{
		Content:      "Dataset-content",
		Format:       "Dataset-format",
		Encoding:     "Dataset-encoding",
		Dimension(9): "Dimension(9)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Dimension(%d).String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestTypeStringParseRoundTrip(t *testing.T) {
	cases := []Type{
		{},
		{Content: "CMS"},
		{Format: "Fileset"},
		{Encoding: "ASCII"},
		{Content: "SDSS", Format: "Simple", Encoding: "Text"},
		{Content: "FITS-file", Encoding: "Unicode"},
	}
	for _, tt := range cases {
		s := tt.String()
		got, err := ParseType(s)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", s, err)
		}
		if got != tt {
			t.Errorf("round trip %v -> %q -> %v", tt, s, got)
		}
	}
}

func TestParseTypeForms(t *testing.T) {
	for _, s := range []string{"", "Dataset", "dataset", " DATASET "} {
		got, err := ParseType(s)
		if err != nil || !got.IsUniversal() {
			t.Errorf("ParseType(%q) = %v, %v; want Universal", s, got, err)
		}
	}
	got, err := ParseType("CMS")
	if err != nil || got != (Type{Content: "CMS"}) {
		t.Errorf("single segment: got %v, %v", got, err)
	}
	got, err = ParseType("CMS;Fileset")
	if err != nil || got != (Type{Content: "CMS", Format: "Fileset"}) {
		t.Errorf("two segments: got %v, %v", got, err)
	}
	if _, err := ParseType("a;b;c;d"); err == nil {
		t.Error("ParseType with 4 segments should fail")
	}
}

func TestMustParseTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseType on invalid input did not panic")
		}
	}()
	MustParseType("a;b;c;d")
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Content, "", ""); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(Content, "has space", ""); err == nil {
		t.Error("name with space accepted")
	}
	if err := r.Register(Content, "semi;colon", ""); err == nil {
		t.Error("name with semicolon accepted")
	}
	if err := r.Register(Dimension(7), "x", ""); err == nil {
		t.Error("invalid dimension accepted")
	}
	if err := r.Register(Content, "child", "nonexistent"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := r.Register(Content, "a", ""); err != nil {
		t.Fatal(err)
	}
	// Re-registration with same parent is idempotent.
	if err := r.Register(Content, "a", ""); err != nil {
		t.Errorf("idempotent re-register failed: %v", err)
	}
	if err := r.Register(Content, "b", "a"); err != nil {
		t.Fatal(err)
	}
	// Conflicting parent is an error.
	if err := r.Register(Content, "b", ""); err == nil {
		t.Error("conflicting parent accepted")
	}
}

func TestSubtypeBasics(t *testing.T) {
	r := StandardRegistry()
	cases := []struct {
		d          Dimension
		sub, super string
		want       bool
	}{
		{Format, "Simple", "Fileset", true},
		{Format, "Fileset", "Simple", false},
		{Format, "Simple", "Simple", true},
		{Format, "Simple", "", true},
		{Format, "", "Fileset", false},
		{Format, "", "", true},
		{Encoding, "DOS-text", "Text", true}, // two levels
		{Encoding, "DOS-text", "ASCII", true},
		{Encoding, "DOS-text", "EBCDIC", false},
		{Content, "Zebra-file", "CMS", true},
		{Content, "Zebra-file", "SDSS", false},
		{Content, "not-registered", "CMS", false},
		{Content, "not-registered", "", true},
	}
	for _, c := range cases {
		if got := r.IsSubtype(c.d, c.sub, c.super); got != c.want {
			t.Errorf("IsSubtype(%s, %q, %q) = %v, want %v", c.d, c.sub, c.super, got, c.want)
		}
	}
}

func TestConforms(t *testing.T) {
	r := StandardRegistry()
	zebraTar := Type{Content: "Zebra-file", Format: "Tar-archive", Encoding: "HDF-4-file"}
	cases := []struct {
		t, formal Type
		want      bool
	}{
		{zebraTar, Universal, true},
		{zebraTar, Type{Content: "CMS"}, true},
		{zebraTar, Type{Content: "Simulation"}, true},
		{zebraTar, Type{Content: "Analysis"}, false},
		{zebraTar, Type{Content: "CMS", Format: "Fileset"}, true},
		{zebraTar, Type{Content: "CMS", Format: "Relation"}, false},
		{zebraTar, zebraTar, true},
		{Universal, zebraTar, false},
		{Universal, Universal, true},
	}
	for _, c := range cases {
		if got := r.Conforms(c.t, c.formal); got != c.want {
			t.Errorf("Conforms(%v, %v) = %v, want %v", c.t, c.formal, got, c.want)
		}
	}
}

func TestConformsUnion(t *testing.T) {
	r := StandardRegistry()
	union := []Type{{Content: "SDSS"}, {Content: "Analysis"}}
	if !r.ConformsUnion(Type{Content: "FITS-file"}, union) {
		t.Error("FITS-file should conform to SDSS|Analysis")
	}
	if !r.ConformsUnion(Type{Content: "ROOT-IO-file"}, union) {
		t.Error("ROOT-IO-file should conform to SDSS|Analysis")
	}
	if r.ConformsUnion(Type{Content: "Zebra-file"}, union) {
		t.Error("Zebra-file should not conform to SDSS|Analysis")
	}
	if r.ConformsUnion(Type{Content: "FITS-file"}, nil) {
		t.Error("empty union must accept nothing")
	}
}

func TestAncestorsDepthChildren(t *testing.T) {
	r := StandardRegistry()
	anc := r.Ancestors(Encoding, "DOS-text")
	if !reflect.DeepEqual(anc, []string{"ASCII", "Text"}) {
		t.Errorf("Ancestors(DOS-text) = %v", anc)
	}
	if r.Ancestors(Encoding, "Text") != nil {
		t.Errorf("Ancestors(Text) should be nil, got %v", r.Ancestors(Encoding, "Text"))
	}
	if d := r.Depth(Encoding, "DOS-text"); d != 3 {
		t.Errorf("Depth(DOS-text) = %d, want 3", d)
	}
	if d := r.Depth(Encoding, ""); d != 0 {
		t.Errorf("Depth(root) = %d, want 0", d)
	}
	kids := r.Children(Encoding, "ASCII")
	if !reflect.DeepEqual(kids, []string{"DOS-text", "UNIX-text"}) {
		t.Errorf("Children(ASCII) = %v", kids)
	}
	roots := r.Children(Content, "")
	if len(roots) != 3 { // UChicago, CMS, SDSS
		t.Errorf("Children(content root) = %v", roots)
	}
}

func TestSpecificity(t *testing.T) {
	r := StandardRegistry()
	if s := r.Specificity(Universal); s != 0 {
		t.Errorf("Specificity(Universal) = %d", s)
	}
	a := r.Specificity(Type{Content: "CMS"})
	b := r.Specificity(Type{Content: "Zebra-file"})
	if !(a < b) {
		t.Errorf("deeper type should be more specific: %d vs %d", a, b)
	}
	c := r.Specificity(Type{Content: "Zebra-file", Format: "Simple", Encoding: "DOS-text"})
	if c != 3+2+3 {
		t.Errorf("Specificity = %d, want 8", c)
	}
}

func TestCheckType(t *testing.T) {
	r := StandardRegistry()
	if err := r.CheckType(Type{Content: "CMS", Format: "Fileset"}); err != nil {
		t.Errorf("valid type rejected: %v", err)
	}
	if err := r.CheckType(Type{Content: "Nope"}); err == nil {
		t.Error("unknown content accepted")
	}
	if err := r.CheckType(Universal); err != nil {
		t.Errorf("universal rejected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := StandardRegistry()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := json.Unmarshal(data, r2); err != nil {
		t.Fatal(err)
	}
	for _, d := range Dimensions() {
		if !reflect.DeepEqual(r.Names(d), r2.Names(d)) {
			t.Errorf("dimension %s: names differ after round trip", d)
		}
		for _, n := range r.Names(d) {
			if !reflect.DeepEqual(r.Ancestors(d, n), r2.Ancestors(d, n)) {
				t.Errorf("ancestors of %s differ after round trip", n)
			}
		}
	}
}

func TestUnmarshalRejectsBadEntries(t *testing.T) {
	r := NewRegistry()
	if err := json.Unmarshal([]byte(`[{"dim":0,"name":"kid","parent":"ghost"}]`), r); err == nil {
		t.Error("unmarshal with unknown parent should fail")
	}
	if err := json.Unmarshal([]byte(`{`), r); err == nil {
		t.Error("unmarshal with bad JSON should fail")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	r := StandardRegistry()
	c := r.Clone()
	c.MustRegister(Content, "NewThing", "CMS")
	if r.Known(Content, "NewThing") {
		t.Error("clone mutation leaked into original")
	}
	if !c.IsSubtype(Content, "NewThing", "CMS") {
		t.Error("clone lost hierarchy")
	}
}

func TestMerge(t *testing.T) {
	a := NewRegistry()
	a.MustRegister(Content, "X", "")
	b := NewRegistry()
	b.MustRegister(Content, "X", "")
	b.MustRegister(Content, "Y", "X")
	b.MustRegister(Content, "Z", "Y")
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !a.IsSubtype(Content, "Z", "X") {
		t.Error("merge lost transitive hierarchy")
	}
	// Conflict: same name, different parent.
	c := NewRegistry()
	c.MustRegister(Content, "W", "")
	c.MustRegister(Content, "Y", "W")
	if err := a.Merge(c); err == nil {
		t.Error("conflicting merge should report an error")
	}
}

// randomHierarchy builds a random hierarchy in one dimension and
// returns the registry plus the names in registration order.
func randomHierarchy(rng *rand.Rand, n int) (*Registry, []string) {
	r := NewRegistry()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = "t" + string(rune('a'+i%26)) + "-" + itoa(i)
		parent := ""
		if i > 0 && rng.Intn(4) != 0 {
			parent = names[rng.Intn(i)]
		}
		r.MustRegister(Content, names[i], parent)
	}
	return r, names
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// Property: conformance is reflexive and transitive, and antisymmetric
// except for equality.
func TestSubtypeLatticeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r, names := randomHierarchy(rng, 60)
	// Reflexive.
	for _, n := range names {
		if !r.IsSubtype(Content, n, n) {
			t.Fatalf("reflexivity violated for %q", n)
		}
	}
	// Transitive + antisymmetric over sampled triples.
	for i := 0; i < 4000; i++ {
		a, b, c := names[rng.Intn(len(names))], names[rng.Intn(len(names))], names[rng.Intn(len(names))]
		if r.IsSubtype(Content, a, b) && r.IsSubtype(Content, b, c) && !r.IsSubtype(Content, a, c) {
			t.Fatalf("transitivity violated: %q <= %q <= %q", a, b, c)
		}
		if a != b && r.IsSubtype(Content, a, b) && r.IsSubtype(Content, b, a) {
			t.Fatalf("antisymmetry violated: %q and %q", a, b)
		}
	}
}

// Property: IsSubtype(sub, super) holds exactly when super appears in
// Ancestors(sub) or equals sub or is the root.
func TestSubtypeMatchesAncestors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r, names := randomHierarchy(rng, 40)
	for _, sub := range names {
		anc := map[string]bool{sub: true, "": true}
		for _, a := range r.Ancestors(Content, sub) {
			anc[a] = true
		}
		for _, super := range append(names, "") {
			if got := r.IsSubtype(Content, sub, super); got != anc[super] {
				t.Fatalf("IsSubtype(%q,%q) = %v, ancestors say %v", sub, super, got, anc[super])
			}
		}
	}
}

// Property: Type string form round-trips for arbitrary dimension values
// drawn from a safe alphabet.
func TestTypeRoundTripQuick(t *testing.T) {
	clean := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	f := func(c, fo, e string) bool {
		tt := Type{Content: clean(c), Format: clean(fo), Encoding: clean(e)}
		got, err := ParseType(tt.String())
		return err == nil && got == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves the subtype relation on random
// hierarchies.
func TestJSONRoundTripQuick(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r, names := randomHierarchy(rng, 30)
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		r2 := NewRegistry()
		if err := json.Unmarshal(data, r2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			a, b := names[rng.Intn(len(names))], names[rng.Intn(len(names))]
			if r.IsSubtype(Content, a, b) != r2.IsSubtype(Content, a, b) {
				t.Fatalf("seed %d: subtype relation changed by serialization for (%q,%q)", seed, a, b)
			}
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := StandardRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.MustRegister(Content, "conc-"+itoa(i), "CMS")
		}
	}()
	for i := 0; i < 200; i++ {
		r.Conforms(Type{Content: "Zebra-file"}, Type{Content: "CMS"})
		r.Names(Content)
	}
	<-done
	if !r.IsSubtype(Content, "conc-199", "CMS") {
		t.Error("concurrent registration lost")
	}
}

func BenchmarkConforms(b *testing.B) {
	r := StandardRegistry()
	tt := Type{Content: "Zebra-file", Format: "Tar-archive", Encoding: "DOS-text"}
	formal := Type{Content: "CMS", Format: "Fileset", Encoding: "Text"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !r.Conforms(tt, formal) {
			b.Fatal("should conform")
		}
	}
}
