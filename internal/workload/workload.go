// Package workload generates the study workloads of the paper's
// evaluation (§6) as virtual data schema objects: the CMS high-energy-
// physics multi-stage event simulation pipeline, the SDSS MaxBCG
// galaxy-cluster search campaign, and the synthetic "canonical
// applications" used to validate provenance tracking at scale. It also
// provides the Zipf-popularity access traces driving the replication-
// strategy experiments.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"chimera/internal/catalog"
	"chimera/internal/estimator"
	"chimera/internal/schema"
)

// Workload is a self-contained bundle of schema objects plus the ground
// truth needed to execute it in simulation.
type Workload struct {
	// Name labels the workload.
	Name string
	// Transformations used by the derivations.
	Transformations []schema.Transformation
	// Derivations in a valid registration order.
	Derivations []schema.Derivation
	// Primary datasets (no producer) with sizes; these must be given
	// replicas before execution.
	Primary []schema.Dataset
	// Targets are the final datasets the campaign requests.
	Targets []string
	// Work maps transformation refs to true runtimes in reference-CPU
	// seconds (the simulator's ground truth).
	Work map[string]float64
	// OutBytes maps transformation refs to the size of each dataset
	// they produce.
	OutBytes map[string]int64
}

// Install registers the workload's objects in a catalog. Duplicate
// derivations are tolerated.
func (w Workload) Install(c *catalog.Catalog) error {
	for _, tr := range w.Transformations {
		if err := c.AddTransformation(tr); err != nil {
			return err
		}
	}
	for _, ds := range w.Primary {
		if err := c.AddDataset(ds); err != nil {
			return err
		}
	}
	for _, dv := range w.Derivations {
		if _, err := c.AddDerivation(dv); err != nil && !errors.Is(err, catalog.ErrDuplicate) {
			return err
		}
	}
	return nil
}

// PlacePrimary registers one replica of every primary dataset,
// round-robin across the given sites.
func (w Workload) PlacePrimary(c *catalog.Catalog, sites []string) error {
	if len(sites) == 0 {
		return fmt.Errorf("workload: no sites")
	}
	for i, ds := range w.Primary {
		site := sites[i%len(sites)]
		rep := schema.Replica{
			ID:      fmt.Sprintf("primary-%s-%s", ds.Name, site),
			Dataset: ds.Name,
			Site:    site,
			PFN:     fmt.Sprintf("/archive/%s/%s", site, ds.Name),
			Size:    ds.Size,
		}
		if err := c.AddReplica(rep); err != nil {
			return err
		}
	}
	return nil
}

// SeedEstimator teaches an estimator the workload's true costs, as if
// history had been accumulated.
func (w Workload) SeedEstimator(est *estimator.Estimator, samples int) {
	if samples <= 0 {
		samples = 3
	}
	for tr, work := range w.Work {
		out := w.OutBytes[tr]
		for i := 0; i < samples; i++ {
			est.Observe(tr, work, 0, out, true)
		}
	}
}

// NodeWork returns the true work of a derivation by transformation ref,
// for driving the simulator directly.
func (w Workload) NodeWork(trRef string) float64 {
	if v, ok := w.Work[trRef]; ok {
		return v
	}
	return 60
}

// out/in helpers.
func outArg(name string) schema.Actual  { return schema.DatasetActual("output", name) }
func inArg(name string) schema.Actual   { return schema.DatasetActual("input", name) }
func strArg(value string) schema.Actual { return schema.StringActual(value) }

func simpleTR(ns, name, exec string, outs, ins, strs []string) schema.Transformation {
	tr := schema.Transformation{Namespace: ns, Name: name, Kind: schema.Simple, Exec: exec}
	for _, o := range outs {
		tr.Args = append(tr.Args, schema.FormalArg{Name: o, Direction: schema.Out})
	}
	for _, i := range ins {
		tr.Args = append(tr.Args, schema.FormalArg{Name: i, Direction: schema.In})
	}
	for _, s := range strs {
		tr.Args = append(tr.Args, schema.FormalArg{Name: s, Direction: schema.None})
	}
	return tr
}

// Zipf returns a deterministic Zipf-distributed access trace over n
// items: length draws with skew s > 1.
func Zipf(seed int64, n int, s float64, length int) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	out := make([]int, length)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}
