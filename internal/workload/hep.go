package workload

import (
	"fmt"

	"chimera/internal/schema"
)

// CMSParams sizes the high-energy-physics pipeline of §6: the
// four-stage CMS event simulation chain (generation, detector
// simulation, reconstruction, analysis) that Chimera-0 was first
// validated on, with intermediate and final results passing between
// stages as files and a final analysis combining all runs.
type CMSParams struct {
	// Runs is the number of independent event-generation runs.
	Runs int
	// EventsPerRun scales per-stage cost.
	EventsPerRun int
	// Merge adds a final histogram merge over all runs' ntuples.
	Merge bool
}

// CMS builds the four-stage pipeline workload:
//
//	cmkin(run) -> kin.i -> cmsim -> fz.i -> oorec -> hits.i -> analyze -> ntuple.i
//	[ + combine(ntuple.*) -> histograms ]
func CMS(p CMSParams) Workload {
	if p.Runs <= 0 {
		p.Runs = 1
	}
	if p.EventsPerRun <= 0 {
		p.EventsPerRun = 500
	}
	scale := float64(p.EventsPerRun) / 500.0

	cmkin := simpleTR("cms", "cmkin", "/cms/bin/cmkin", []string{"out"}, nil, []string{"run", "nevents"})
	cmsim := simpleTR("cms", "cmsim", "/cms/bin/cmsim", []string{"out"}, []string{"in"}, nil)
	oorec := simpleTR("cms", "oorec", "/cms/bin/writeHits", []string{"out"}, []string{"in"}, nil)
	analyze := simpleTR("cms", "analyze", "/cms/bin/analyze", []string{"out"}, []string{"in"}, nil)
	combine := simpleTR("cms", "combine", "/cms/bin/combine", []string{"out"}, []string{"ins"}, nil)

	w := Workload{
		Name:            fmt.Sprintf("cms-%d-runs", p.Runs),
		Transformations: []schema.Transformation{cmkin, cmsim, oorec, analyze, combine},
		Work: map[string]float64{
			cmkin.Ref():   60 * scale,
			cmsim.Ref():   500 * scale, // detector simulation dominates
			oorec.Ref():   150 * scale,
			analyze.Ref(): 40 * scale,
			combine.Ref(): 20 + float64(p.Runs),
		},
		OutBytes: map[string]int64{
			cmkin.Ref():   int64(2e6 * scale),
			cmsim.Ref():   int64(200e6 * scale),
			oorec.Ref():   int64(100e6 * scale),
			analyze.Ref(): int64(5e6 * scale),
			combine.Ref(): 1e6,
		},
	}

	var ntuples []schema.Actual
	for i := 0; i < p.Runs; i++ {
		kin := fmt.Sprintf("kin.run%d", i)
		fz := fmt.Sprintf("fz.run%d", i)
		hits := fmt.Sprintf("hits.run%d", i)
		ntuple := fmt.Sprintf("ntuple.run%d", i)
		w.Derivations = append(w.Derivations,
			schema.Derivation{TR: cmkin.Ref(), Params: map[string]schema.Actual{
				"out": outArg(kin), "run": strArg(fmt.Sprint(i)), "nevents": strArg(fmt.Sprint(p.EventsPerRun)),
			}},
			schema.Derivation{TR: cmsim.Ref(), Params: map[string]schema.Actual{
				"out": outArg(fz), "in": inArg(kin),
			}},
			schema.Derivation{TR: oorec.Ref(), Params: map[string]schema.Actual{
				"out": outArg(hits), "in": inArg(fz),
			}},
			schema.Derivation{TR: analyze.Ref(), Params: map[string]schema.Actual{
				"out": outArg(ntuple), "in": inArg(hits),
			}},
		)
		if p.Merge {
			ntuples = append(ntuples, inArg(ntuple))
		} else {
			w.Targets = append(w.Targets, ntuple)
		}
	}
	if p.Merge {
		w.Derivations = append(w.Derivations, schema.Derivation{
			TR: combine.Ref(), Params: map[string]schema.Actual{
				"out": outArg("histograms"),
				"ins": schema.ListActual(ntuples...),
			}})
		w.Targets = []string{"histograms"}
	}
	return w
}
