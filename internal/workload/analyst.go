package workload

import (
	"fmt"
	"math/rand"

	"chimera/internal/query"
	"chimera/internal/schema"
)

// AnalystStorm models the concurrent-analyst access pattern of a
// CAVES-style virtual data collaboration (§2.3, §6): a shared catalog
// holds tagged derivation chains — each chain one analyst's published
// analysis, tagged so colleagues can find it — and N analysts hammer it
// with a read-dominated mix of discovery queries, new tagged
// definitions, and re-derivations of popular results. Popularity is
// Zipf-distributed: a few hot analyses absorb most of the traffic,
// which is exactly the regime where repeated identical queries (the
// plan/result cache) and repeated identical derivation requests (the
// executor's dedup fast path) pay off.
//
// The generator is deterministic in Seed: the same configuration always
// yields the same base catalog and the same per-analyst scripts, so the
// locked and epoch arms of E18 replay identical work.
type AnalystStorm struct {
	// Analysts is the number of concurrent analyst scripts.
	Analysts int
	// Chains is the number of pre-installed tagged derivation chains.
	Chains int
	// Depth is the number of stages per chain.
	Depth int
	// Ops is the script length per analyst.
	Ops int
	// Skew is the Zipf skew over chain popularity (> 1).
	Skew float64
	// Seed drives all randomness.
	Seed int64
}

// analystTagGroups spreads chains over this many distinct tags, so a
// tag query selects ~Chains/analystTagGroups datasets.
const analystTagGroups = 16

// withDefaults fills zero fields with a small but non-degenerate
// configuration.
func (s AnalystStorm) withDefaults() AnalystStorm {
	if s.Analysts <= 0 {
		s.Analysts = 16
	}
	if s.Chains <= 0 {
		s.Chains = 200
	}
	if s.Depth <= 0 {
		s.Depth = 3
	}
	if s.Ops <= 0 {
		s.Ops = 100
	}
	if s.Skew <= 1 {
		s.Skew = 1.3
	}
	if s.Seed == 0 {
		s.Seed = 18
	}
	return s
}

// OpKind classifies one analyst operation.
type OpKind int

const (
	// OpDiscover runs a catalog query (the dominant operation).
	OpDiscover OpKind = iota
	// OpDefine registers a new tagged dataset.
	OpDefine
	// OpDerive requests a derivation of a popular chain's result. The
	// request is deterministic per chain, so concurrent analysts asking
	// for the same summary submit byte-identical derivations — the
	// catalog collapses them to one, and the executor's dedup fast path
	// skips re-running ones that already executed.
	OpDerive
)

// AnalystOp is one step of an analyst script. Exactly the fields for
// its Kind are populated.
type AnalystOp struct {
	Kind OpKind
	// Discover: the query source and the kind it runs against.
	Query     string
	QueryKind query.Kind
	// Define: the dataset to register.
	Dataset schema.Dataset
	// Derive: the derivation to request.
	Derivation schema.Derivation
}

func analystChainTag(c int) string  { return fmt.Sprintf("tag%02d", c%analystTagGroups) }
func analystRaw(c int) string       { return fmt.Sprintf("caves.raw.%04d", c) }
func analystStage(j, c int) string  { return fmt.Sprintf("caves.s%d.%04d", j, c) }
func analystSummary(c int) string   { return fmt.Sprintf("caves.summary.%04d", c) }
func (s AnalystStorm) last(c int) string {
	return analystStage(s.Depth-1, c)
}

// Base returns the shared pre-storm catalog content: Chains tagged
// derivation chains of Depth stages each, plus the summarize
// transformation the derive ops use.
func (s AnalystStorm) Base() Workload {
	s = s.withDefaults()
	w := Workload{
		Name:     fmt.Sprintf("analyst-storm-%d", s.Chains),
		Work:     map[string]float64{},
		OutBytes: map[string]int64{},
	}
	for j := 0; j < s.Depth; j++ {
		tr := simpleTR("caves", fmt.Sprintf("stage%d", j), fmt.Sprintf("/cms/caves/stage%d", j),
			[]string{"out"}, []string{"in"}, nil)
		w.Transformations = append(w.Transformations, tr)
		w.Work[tr.Ref()] = 30 * float64(j+1)
		w.OutBytes[tr.Ref()] = 200e6
	}
	sum := simpleTR("caves", "summarize", "/cms/caves/summarize",
		[]string{"out"}, []string{"in"}, nil)
	w.Transformations = append(w.Transformations, sum)
	w.Work[sum.Ref()] = 15
	w.OutBytes[sum.Ref()] = 10e6

	for c := 0; c < s.Chains; c++ {
		w.Primary = append(w.Primary, schema.Dataset{
			Name: analystRaw(c),
			Size: 1e9,
			Attrs: schema.Attributes{
				"tag":     analystChainTag(c),
				"project": "caves",
			},
		})
		in := analystRaw(c)
		for j := 0; j < s.Depth; j++ {
			out := analystStage(j, c)
			w.Derivations = append(w.Derivations, schema.Derivation{
				TR: w.Transformations[j].Ref(),
				Params: map[string]schema.Actual{
					"out": outArg(out),
					"in":  inArg(in),
				},
			})
			in = out
		}
		w.Targets = append(w.Targets, in)
	}
	return w
}

// SummaryDerivation is the deterministic re-derivation request for
// chain c: every analyst asking for chain c's summary submits this
// exact derivation.
func (s AnalystStorm) SummaryDerivation(c int) schema.Derivation {
	s = s.withDefaults()
	return schema.Derivation{
		TR: "caves::summarize",
		Params: map[string]schema.Actual{
			"out": outArg(analystSummary(c)),
			"in":  inArg(s.last(c)),
		},
	}
}

// Scripts generates one deterministic op script per analyst: ~80%
// discovery queries over Zipf-popular chains, ~10% new tagged dataset
// definitions, ~10% summary re-derivation requests.
func (s AnalystStorm) Scripts() [][]AnalystOp {
	s = s.withDefaults()
	scripts := make([][]AnalystOp, s.Analysts)
	for a := range scripts {
		rng := rand.New(rand.NewSource(s.Seed + 1000*int64(a)))
		picks := Zipf(s.Seed+7919*int64(a+1), s.Chains, s.Skew, s.Ops)
		ops := make([]AnalystOp, 0, s.Ops)
		for n := 0; n < s.Ops; n++ {
			c := picks[n]
			switch roll := rng.Float64(); {
			case roll < 0.80:
				q, kind := s.discoverQuery(rng.Intn(4), c)
				ops = append(ops, AnalystOp{Kind: OpDiscover, Query: q, QueryKind: kind})
			case roll < 0.90:
				ops = append(ops, AnalystOp{Kind: OpDefine, Dataset: schema.Dataset{
					Name: fmt.Sprintf("analyst%03d.note%04d", a, n),
					Attrs: schema.Attributes{
						"tag":     analystChainTag(c),
						"project": "caves",
					},
				}})
			default:
				ops = append(ops, AnalystOp{Kind: OpDerive, Derivation: s.SummaryDerivation(c)})
			}
		}
		scripts[a] = ops
	}
	return scripts
}

// discoverQuery returns the shape-th discovery query over chain c: the
// §3.1 patterns — "what carries this tag", "is this result derived",
// "what consumes this input", "which derivation produced this".
func (s AnalystStorm) discoverQuery(shape, c int) (string, query.Kind) {
	switch shape {
	case 0:
		return fmt.Sprintf("attr.tag = %s", analystChainTag(c)), query.KDataset
	case 1:
		return fmt.Sprintf("name = %s and derived", s.last(c)), query.KDataset
	case 2:
		return fmt.Sprintf("consumes(%s)", analystRaw(c)), query.KDerivation
	default:
		return fmt.Sprintf("produces(%s)", analystStage(0, c)), query.KDerivation
	}
}
