package workload

import (
	"fmt"
	"math/rand"

	"chimera/internal/schema"
)

// SDSSParams sizes the Sloan Digital Sky Survey galaxy-cluster-finding
// campaign of §6 and the SC'02 companion paper: the MaxBCG algorithm
// applied over a sky of survey fields. Per field the pipeline runs
// brgSearch (find bright red galaxies) and bcgSearch (find brightest
// cluster galaxies, needing the brg catalogs of a window of neighboring
// fields), then getClusters per field, with per-stripe merges producing
// the final cluster catalogs.
type SDSSParams struct {
	// Fields is the number of survey fields processed.
	Fields int
	// Window is the neighbor half-width bcgSearch consumes.
	Window int
	// StripeSize groups fields into stripes merged together (also the
	// per-workflow DAG granularity in the campaign).
	StripeSize int
	// Seed drives per-field cost variation.
	Seed int64
}

// SDSS builds the cluster-finding campaign. With the defaults matching
// the paper's report (≈1200 fields, stripes of ≈300) it creates about
// 5000 derivations in workflow DAGs of several hundred nodes each.
func SDSS(p SDSSParams) Workload {
	if p.Fields <= 0 {
		p.Fields = 1200
	}
	if p.Window <= 0 {
		p.Window = 2
	}
	if p.StripeSize <= 0 {
		p.StripeSize = 300
	}
	rng := rand.New(rand.NewSource(p.Seed + 1))

	brg := simpleTR("sdss", "brgSearch", "/sdss/bin/brgSearch", []string{"out"}, []string{"field"}, nil)
	bcg := simpleTR("sdss", "bcgSearch", "/sdss/bin/bcgSearch", []string{"out"}, []string{"brgs"}, nil)
	getCl := simpleTR("sdss", "getClusters", "/sdss/bin/getClusters", []string{"out"}, []string{"bcg"}, nil)
	merge := simpleTR("sdss", "mergeClusters", "/sdss/bin/mergeClusters", []string{"out"}, []string{"clusters"}, nil)

	w := Workload{
		Name:            fmt.Sprintf("sdss-%d-fields", p.Fields),
		Transformations: []schema.Transformation{brg, bcg, getCl, merge},
		Work: map[string]float64{
			brg.Ref():   100,
			bcg.Ref():   180,
			getCl.Ref(): 40,
			merge.Ref(): 60,
		},
		OutBytes: map[string]int64{
			brg.Ref():   8e6,
			bcg.Ref():   4e6,
			getCl.Ref(): 1e6,
			merge.Ref(): 20e6,
		},
	}

	field := func(i int) string { return fmt.Sprintf("field.%04d", i) }
	brgOf := func(i int) string { return fmt.Sprintf("brg.%04d", i) }
	bcgOf := func(i int) string { return fmt.Sprintf("bcg.%04d", i) }
	clOf := func(i int) string { return fmt.Sprintf("clusters.%04d", i) }

	for i := 0; i < p.Fields; i++ {
		// Raw field imagery: ~50-150 MB, varying across the sky.
		size := int64(50e6 + rng.Float64()*100e6)
		w.Primary = append(w.Primary, schema.Dataset{Name: field(i), Size: size})

		w.Derivations = append(w.Derivations, schema.Derivation{
			TR: brg.Ref(), Params: map[string]schema.Actual{
				"out": outArg(brgOf(i)), "field": inArg(field(i)),
			}})

		var neighborBRGs []schema.Actual
		for j := i - p.Window; j <= i+p.Window; j++ {
			if j >= 0 && j < p.Fields {
				neighborBRGs = append(neighborBRGs, inArg(brgOf(j)))
			}
		}
		w.Derivations = append(w.Derivations, schema.Derivation{
			TR: bcg.Ref(), Params: map[string]schema.Actual{
				"out": outArg(bcgOf(i)), "brgs": schema.ListActual(neighborBRGs...),
			}})
		w.Derivations = append(w.Derivations, schema.Derivation{
			TR: getCl.Ref(), Params: map[string]schema.Actual{
				"out": outArg(clOf(i)), "bcg": inArg(bcgOf(i)),
			}})
	}

	for s := 0; s*p.StripeSize < p.Fields; s++ {
		lo := s * p.StripeSize
		hi := lo + p.StripeSize
		if hi > p.Fields {
			hi = p.Fields
		}
		var clusters []schema.Actual
		for i := lo; i < hi; i++ {
			clusters = append(clusters, inArg(clOf(i)))
		}
		target := fmt.Sprintf("catalog.stripe%02d", s)
		w.Derivations = append(w.Derivations, schema.Derivation{
			TR: merge.Ref(), Params: map[string]schema.Actual{
				"out": outArg(target), "clusters": schema.ListActual(clusters...),
			}})
		w.Targets = append(w.Targets, target)
	}
	return w
}
