package workload

import (
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/estimator"
)

func TestCMSShape(t *testing.T) {
	w := CMS(CMSParams{Runs: 5, EventsPerRun: 500, Merge: true})
	if len(w.Derivations) != 5*4+1 {
		t.Errorf("derivations: %d", len(w.Derivations))
	}
	if len(w.Targets) != 1 || w.Targets[0] != "histograms" {
		t.Errorf("targets: %v", w.Targets)
	}
	c := catalog.New(nil)
	if err := w.Install(c); err != nil {
		t.Fatal(err)
	}
	// The full chain is recorded: ancestors of histograms span all runs.
	anc, err := c.Ancestors("histograms")
	if err != nil {
		t.Fatal(err)
	}
	if len(anc.Derivations) != 21 {
		t.Errorf("ancestor derivations: %d", len(anc.Derivations))
	}
	// 4 stages deep + merge.
	g, err := dag.Build(w.Derivations, c.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Depth != 5 || st.Width != 5 {
		t.Errorf("dag stats: %+v", st)
	}
	// cmkin roots have no inputs (pure generators).
	if len(g.ExternalInputs) != 0 {
		t.Errorf("external inputs: %v", g.ExternalInputs)
	}
	// Defaults.
	if w2 := CMS(CMSParams{}); len(w2.Derivations) != 4 || len(w2.Targets) != 1 {
		t.Errorf("default CMS: %d derivations", len(w2.Derivations))
	}
}

func TestSDSSShape(t *testing.T) {
	p := SDSSParams{Fields: 100, Window: 2, StripeSize: 50, Seed: 1}
	w := SDSS(p)
	// 3 per field + 2 merges.
	if len(w.Derivations) != 302 {
		t.Errorf("derivations: %d", len(w.Derivations))
	}
	if len(w.Primary) != 100 || len(w.Targets) != 2 {
		t.Errorf("primary=%d targets=%v", len(w.Primary), w.Targets)
	}
	c := catalog.New(nil)
	if err := w.Install(c); err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(w.Derivations, c.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Nodes != 302 || st.Depth != 4 {
		t.Errorf("stats: %+v", st)
	}
	// Neighbor window creates cross-links: bcg.0005 depends on brg.0003..0007.
	anc, err := c.Ancestors("bcg.0005")
	if err != nil {
		t.Fatal(err)
	}
	brgs := 0
	for _, d := range anc.Datasets {
		if len(d) > 3 && d[:3] == "brg" {
			brgs++
		}
	}
	if brgs != 5 {
		t.Errorf("neighbor brg ancestors: %d", brgs)
	}
	// Paper-scale default: ~5000 derivations.
	big := SDSS(SDSSParams{})
	if n := len(big.Derivations); n < 3600 || n > 5500 {
		t.Errorf("paper-scale derivations: %d", n)
	}
}

func TestCanonicalShape(t *testing.T) {
	w := Canonical(CanonicalParams{Layers: 6, Width: 10, MaxFanIn: 3, Seed: 9, Styles: 4})
	if len(w.Derivations) != 50 {
		t.Errorf("derivations: %d", len(w.Derivations))
	}
	c := catalog.New(nil)
	if err := w.Install(c); err != nil {
		t.Fatal(err)
	}
	g, err := dag.Build(w.Derivations, c.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Depth != 5 || st.Width != 10 {
		t.Errorf("stats: %+v", st)
	}
	// Deterministic for a fixed seed.
	w2 := Canonical(CanonicalParams{Layers: 6, Width: 10, MaxFanIn: 3, Seed: 9, Styles: 4})
	if len(w2.Derivations) != len(w.Derivations) {
		t.Error("nondeterministic generation")
	}
	for i := range w.Derivations {
		if w.Derivations[i].Signature() != w2.Derivations[i].Signature() {
			t.Fatalf("derivation %d differs across same-seed runs", i)
		}
	}
}

func TestInstallIdempotent(t *testing.T) {
	w := CMS(CMSParams{Runs: 2})
	c := catalog.New(nil)
	if err := w.Install(c); err != nil {
		t.Fatal(err)
	}
	if err := w.Install(c); err != nil {
		t.Fatalf("re-install: %v", err)
	}
}

func TestPlacePrimaryAndSeedEstimator(t *testing.T) {
	w := SDSS(SDSSParams{Fields: 10, Window: 1, StripeSize: 5, Seed: 2})
	c := catalog.New(nil)
	if err := w.Install(c); err != nil {
		t.Fatal(err)
	}
	if err := w.PlacePrimary(c, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	for _, ds := range w.Primary {
		if !c.Materialized(ds.Name) {
			t.Errorf("%s not placed", ds.Name)
		}
	}
	if err := w.PlacePrimary(c, nil); err == nil {
		t.Error("no-sites accepted")
	}

	est := estimator.New(1)
	w.SeedEstimator(est, 5)
	work, confident := est.Work("sdss::brgSearch")
	if !confident || work != 100 {
		t.Errorf("seeded work: %g %v", work, confident)
	}
	if w.NodeWork("sdss::brgSearch") != 100 || w.NodeWork("unknown") != 60 {
		t.Error("NodeWork")
	}
}

func TestZipfTrace(t *testing.T) {
	tr := Zipf(1, 100, 1.5, 10000)
	if len(tr) != 10000 {
		t.Fatal("length")
	}
	counts := make(map[int]int)
	for _, v := range tr {
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Skewed: the most popular item dominates.
	if counts[0] < counts[50]*2 {
		t.Errorf("not skewed: c0=%d c50=%d", counts[0], counts[50])
	}
	// Deterministic.
	tr2 := Zipf(1, 100, 1.5, 10000)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("nondeterministic trace")
		}
	}
}
