package workload

import (
	"errors"
	"reflect"
	"testing"

	"chimera/internal/catalog"
	"chimera/internal/query"
)

// TestAnalystStormDeterministic: the same configuration must yield the
// same base catalog and byte-identical scripts — E18's locked and epoch
// arms replay the exact same work.
func TestAnalystStormDeterministic(t *testing.T) {
	a := AnalystStorm{Analysts: 4, Chains: 50, Ops: 60, Seed: 5}
	b := AnalystStorm{Analysts: 4, Chains: 50, Ops: 60, Seed: 5}
	if !reflect.DeepEqual(a.Base(), b.Base()) {
		t.Fatal("Base differs across same-seed storms")
	}
	if !reflect.DeepEqual(a.Scripts(), b.Scripts()) {
		t.Fatal("Scripts differ across same-seed storms")
	}
	c := AnalystStorm{Analysts: 4, Chains: 50, Ops: 60, Seed: 6}
	if reflect.DeepEqual(a.Scripts(), c.Scripts()) {
		t.Fatal("different seeds produced identical scripts")
	}
	// The re-derivation request is deterministic per chain: every analyst
	// asking for chain 3's summary submits the same derivation.
	if !reflect.DeepEqual(a.SummaryDerivation(3), c.SummaryDerivation(3)) {
		t.Fatal("SummaryDerivation must not depend on the seed")
	}
}

// TestAnalystScriptsShape: the op mix is read-dominated (~80% discover,
// ~10% define, ~10% derive) and every discovery query parses.
func TestAnalystScriptsShape(t *testing.T) {
	s := AnalystStorm{Analysts: 16, Ops: 200, Seed: 18}
	scripts := s.Scripts()
	if len(scripts) != 16 {
		t.Fatalf("%d scripts, want 16", len(scripts))
	}
	total, counts := 0, map[OpKind]int{}
	for _, script := range scripts {
		if len(script) != 200 {
			t.Fatalf("script length %d, want 200", len(script))
		}
		for _, op := range script {
			total++
			counts[op.Kind]++
			switch op.Kind {
			case OpDiscover:
				if _, err := query.Parse(op.Query); err != nil {
					t.Fatalf("unparseable discovery query %q: %v", op.Query, err)
				}
				if op.QueryKind != query.KDataset && op.QueryKind != query.KDerivation {
					t.Fatalf("query %q has kind %d", op.Query, int(op.QueryKind))
				}
			case OpDefine:
				if op.Dataset.Name == "" || op.Dataset.Attrs["tag"] == "" {
					t.Fatalf("define op missing name or tag: %+v", op.Dataset)
				}
			case OpDerive:
				if op.Derivation.TR != "caves::summarize" {
					t.Fatalf("derive op cites %q", op.Derivation.TR)
				}
			}
		}
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / float64(total) }
	if f := frac(OpDiscover); f < 0.72 || f > 0.88 {
		t.Errorf("discover fraction %.2f, want ~0.80", f)
	}
	if f := frac(OpDefine); f < 0.05 || f > 0.15 {
		t.Errorf("define fraction %.2f, want ~0.10", f)
	}
	if f := frac(OpDerive); f < 0.05 || f > 0.15 {
		t.Errorf("derive fraction %.2f, want ~0.10", f)
	}
}

// TestAnalystStormReplaysOnCatalog: the base installs cleanly and every
// scripted op is valid against it — queries run, defines insert (or
// duplicate harmlessly on replay), derives collapse to ErrDuplicate
// reuse — leaving the catalog's indexes and published epochs intact.
func TestAnalystStormReplaysOnCatalog(t *testing.T) {
	s := AnalystStorm{Analysts: 8, Chains: 40, Ops: 80, Seed: 18}
	c := catalog.New(nil)
	if err := s.Base().Install(c); err != nil {
		t.Fatal(err)
	}
	discovered := 0
	for _, script := range s.Scripts() {
		for _, op := range script {
			switch op.Kind {
			case OpDiscover:
				e, err := query.Parse(op.Query)
				if err != nil {
					t.Fatal(err)
				}
				res, err := query.Run(c, op.QueryKind, e)
				if err != nil {
					t.Fatalf("query %q: %v", op.Query, err)
				}
				discovered += len(res.Datasets) + len(res.Derivations)
			case OpDefine:
				if err := c.AddDataset(op.Dataset); err != nil {
					t.Fatalf("define %s: %v", op.Dataset.Name, err)
				}
			case OpDerive:
				if _, err := c.AddDerivation(op.Derivation); err != nil && !errors.Is(err, catalog.ErrDuplicate) {
					t.Fatalf("derive: %v", err)
				}
			}
		}
	}
	if discovered == 0 {
		t.Fatal("no discovery query matched anything")
	}
	if err := c.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckPublished(); err != nil {
		t.Fatal(err)
	}
}
