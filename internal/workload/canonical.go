package workload

import (
	"fmt"
	"math/rand"

	"chimera/internal/schema"
)

// CanonicalParams sizes the synthetic "canonical applications" of §6:
// programs that mimic arbitrary argument-passing conventions and file
// I/O behaviour, arranged into large random dependency graphs used to
// validate provenance tracking.
type CanonicalParams struct {
	// Layers is the DAG depth (>= 2: primaries + one derived layer).
	Layers int
	// Width is the number of datasets per layer.
	Width int
	// MaxFanIn bounds how many prior-layer datasets a derivation reads.
	MaxFanIn int
	// Seed drives the random wiring.
	Seed int64
	// Styles is the number of distinct transformation "argument-passing
	// conventions" to generate (each with a different signature shape).
	Styles int
}

// Canonical builds a random layered dependency graph.
func Canonical(p CanonicalParams) Workload {
	if p.Layers < 2 {
		p.Layers = 2
	}
	if p.Width <= 0 {
		p.Width = 4
	}
	if p.MaxFanIn <= 0 {
		p.MaxFanIn = 3
	}
	if p.Styles <= 0 {
		p.Styles = 3
	}
	rng := rand.New(rand.NewSource(p.Seed + 7))

	w := Workload{
		Name:     fmt.Sprintf("canonical-%dx%d", p.Layers, p.Width),
		Work:     make(map[string]float64),
		OutBytes: make(map[string]int64),
	}

	// Styles vary signature shape: different numbers of string
	// parameters and whether inputs arrive as a list or as separate
	// formals — the "arbitrary argument passing conventions".
	styles := make([]schema.Transformation, p.Styles)
	for s := range styles {
		name := fmt.Sprintf("canon%d", s)
		tr := schema.Transformation{Name: name, Kind: schema.Simple, Exec: "/canon/bin/" + name}
		tr.Args = append(tr.Args, schema.FormalArg{Name: "out", Direction: schema.Out})
		tr.Args = append(tr.Args, schema.FormalArg{Name: "ins", Direction: schema.In})
		for k := 0; k <= s%3; k++ {
			tr.Args = append(tr.Args, schema.FormalArg{
				Name: fmt.Sprintf("p%d", k), Direction: schema.None,
				Default: defaultStr(fmt.Sprint(k * 10)),
			})
		}
		styles[s] = tr
		w.Transformations = append(w.Transformations, tr)
		w.Work[tr.Ref()] = 20 + float64(s*15)
		w.OutBytes[tr.Ref()] = int64(1e6 * (s + 1))
	}

	name := func(l, i int) string { return fmt.Sprintf("c%02d_%03d", l, i) }
	for i := 0; i < p.Width; i++ {
		w.Primary = append(w.Primary, schema.Dataset{Name: name(0, i), Size: 1e6})
	}
	for l := 1; l < p.Layers; l++ {
		for i := 0; i < p.Width; i++ {
			tr := styles[rng.Intn(len(styles))]
			fanin := 1 + rng.Intn(p.MaxFanIn)
			var ins []schema.Actual
			seen := make(map[int]bool)
			for k := 0; k < fanin; k++ {
				j := rng.Intn(p.Width)
				if seen[j] {
					continue
				}
				seen[j] = true
				ins = append(ins, inArg(name(l-1, j)))
			}
			dv := schema.Derivation{TR: tr.Ref(), Params: map[string]schema.Actual{
				"out": outArg(name(l, i)),
				"ins": schema.ListActual(ins...),
			}}
			w.Derivations = append(w.Derivations, dv)
			if l == p.Layers-1 {
				w.Targets = append(w.Targets, name(l, i))
			}
		}
	}
	return w
}

func defaultStr(v string) *schema.Actual {
	a := schema.StringActual(v)
	return &a
}
