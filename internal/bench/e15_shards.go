package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/schema"
)

// E15Shards measures what catalog sharding buys for sustained mutation
// throughput: a production-mix ingest storm (dataset + replica
// registration dominated, with a derivation + invocation every eighth
// op) run at a fixed writer count across shard counts, in five
// configurations:
//
//	mem           in-memory, no WAL: pure lock/index scaling. Gains
//	              here need free cores; on a single-core host this row
//	              is flat.
//	wal           group-commit WAL, no commit wait (production default
//	              on storage with a battery-backed cache).
//	commit-group  group-commit WAL where Options.SyncDelay models the
//	              stable-storage commit (one wait per batch): group
//	              commit already amortizes the slow commit across
//	              concurrent writers at ONE shard, so sharding adds
//	              little here — kept as the honesty row.
//	commit-perop  per-op durability (MaxBatch=1: records written and
//	              committed inline under the shard lock set) on the
//	              same modeled storage, writers routing uniformly at
//	              random: every mutation holds its commit wait behind
//	              its shard locks. One shard serializes those waits; N
//	              shards overlap them — but random routing leaves
//	              shards idle (8 writers on 8 shards keep only ~5.25
//	              busy in expectation) and the multi-shard derivations
//	              hold several shards through their commits, so this
//	              row undershoots the shard count.
//	perop-aligned same, but each writer's whole chain — dataset names,
//	              transformation, derivation ID (mined through
//	              Canonicalize), outputs, invocations — is pre-routed
//	              to the writer's home shard (catalog.HomeShard): the
//	              partitioned ingest streams a deployment would
//	              configure. Every mutation is then single-shard,
//	              overlap is writer-limited rather than
//	              collision-limited, and throughput tracks the shard
//	              count. The speedup column and headline metric compare
//	              this row to its 1-shard baseline.
//
// SyncDelay models the device commit in place of fsync rather than on
// top of it: a real fsync on a shared host filesystem serializes
// concurrent shard commits through the filesystem journal, which would
// confound the measurement with an artifact of the bench host. The
// equivalence and crash-replay tests (shard_test.go) exercise the real
// fsync path; E15 isolates the concurrency structure.
//
// Rates are acknowledged catalog mutations per second. shardCounts
// must include 1: it is the baseline row.
func E15Shards(shardCounts []int, writers, opsPerWriter int, syncDelay time.Duration) (Table, error) {
	t := Table{
		Experiment: "E15",
		Title: fmt.Sprintf("sharded catalog ingest: %d writers, production mix, modeled %v commit latency",
			writers, syncDelay),
		Columns: []string{"shards", "mem-ops/s", "wal-ops/s", "commit-group-ops/s",
			"commit-perop-ops/s", "perop-aligned-ops/s", "aligned-speedup"},
		Metrics: map[string]float64{"writers": float64(writers)},
	}
	var baseline float64
	for _, shards := range shardCounts {
		random := buildE15Plan(writers, opsPerWriter, shards, false)
		aligned := buildE15Plan(writers, opsPerWriter, shards, true)
		memRate, err := shardIngestRate(shards, random, nil)
		if err != nil {
			return t, err
		}
		walRate, err := shardIngestRate(shards, random,
			&catalog.Options{Shards: shards})
		if err != nil {
			return t, err
		}
		groupRate, err := shardIngestRate(shards, random,
			&catalog.Options{Shards: shards, SyncDelay: syncDelay})
		if err != nil {
			return t, err
		}
		peropRate, err := shardIngestRate(shards, random,
			&catalog.Options{Shards: shards, MaxBatch: 1, SyncDelay: syncDelay})
		if err != nil {
			return t, err
		}
		alignedRate, err := shardIngestRate(shards, aligned,
			&catalog.Options{Shards: shards, MaxBatch: 1, SyncDelay: syncDelay})
		if err != nil {
			return t, err
		}
		if shards == 1 {
			baseline = alignedRate
		}
		speedup := 0.0
		if baseline > 0 {
			speedup = alignedRate / baseline
		}
		t.Add(shards, memRate, walRate, groupRate, peropRate, alignedRate, speedup)
		t.Metrics[fmt.Sprintf("ops_per_sec_mem_shards%d", shards)] = memRate
		t.Metrics[fmt.Sprintf("ops_per_sec_perop_shards%d", shards)] = peropRate
		t.Metrics[fmt.Sprintf("ops_per_sec_perop_aligned_shards%d", shards)] = alignedRate
		if shards != 1 && baseline > 0 {
			t.Metrics[fmt.Sprintf("speedup_perop_aligned_shards%d_vs_1", shards)] = speedup
			t.Metrics[fmt.Sprintf("speedup_perop_shards%d_vs_1", shards)] = peropRate / baseline
		}
	}
	t.Notes = append(t.Notes,
		"commit-perop is the structural claim: per-op durable commits serialize behind one shard lock but overlap across N shard WALs, so throughput scales with busy shards even on one core; aligned streams keep every mutation single-shard and every shard busy, random routing loses ground to idle shards and to multi-shard derivations holding their lock sets through commits",
		"commit-group shows group commit already amortizing the slow commit at one shard — sharding and group commit compose, they do not compete")
	return t, nil
}

// e15op is one precomputed step of a writer's ingest stream: a dataset
// + replica registration, plus — every eighth op — a derivation chain
// (derivation + invocation, and the derivation auto-registers its
// output dataset).
type e15op struct {
	ds  schema.Dataset
	rep schema.Replica
	dv  *schema.Derivation
	iv  *schema.Invocation
}

// mutations is how many acknowledged catalog mutations the op performs.
func (o *e15op) mutations() int {
	if o.dv != nil {
		return 5 // dataset, replica, derivation, auto-registered output, invocation
	}
	return 2
}

// buildE15Plan precomputes every writer's op stream, including the
// per-writer transformation (plan[w].tr). aligned mines each name —
// dataset, transformation base, derivation output, and the derivation
// ID itself (content-addressed, so mined by varying the output suffix
// and re-Canonicalizing) — until it homes on the writer's shard
// (writer w -> shard w mod shards); otherwise names route wherever
// FNV sends them. All of this happens outside the timed region.
func buildE15Plan(writers, opsPerWriter, shards int, aligned bool) []e15writerPlan {
	plan := make([]e15writerPlan, writers)
	for w := range plan {
		home := w % shards
		onHome := func(name string) bool {
			return !aligned || catalog.HomeShard(name, shards) == home
		}
		tr := ""
		for j := 0; ; j++ {
			cand := fmt.Sprintf("e15w%d-t%d", w, j)
			if onHome(cand) {
				tr = cand
				break
			}
		}
		plan[w].tr = tr
		plan[w].ops = make([]e15op, opsPerWriter)
		j := 0
		for i := 0; i < opsPerWriter; i++ {
			var name string
			for {
				cand := fmt.Sprintf("w%d-ds%d", w, j)
				j++
				if onHome(cand) {
					name = cand
					break
				}
			}
			op := &plan[w].ops[i]
			op.ds = schema.Dataset{Name: name, Size: int64(i)}
			op.rep = schema.Replica{ID: name + "-r", Dataset: name, Site: "site-a", PFN: "/store/" + name}
			if i%8 != 0 {
				continue
			}
			// The derivation locks the shards of its ID, transformation,
			// and every bound dataset; mining the output name until both
			// it and the resulting content-addressed ID land on the home
			// shard makes the whole chain single-shard when aligned.
			for k := 0; ; k++ {
				out := fmt.Sprintf("%s-out%d", name, k)
				if !onHome(out) {
					continue
				}
				dv := ingestDV(tr, name, out).Canonicalize()
				if !onHome(dv.ID) {
					continue
				}
				op.dv = &dv
				op.iv = &schema.Invocation{
					ID: name + "-iv", Derivation: dv.ID, Site: "site-a", Host: "h1",
					Start: time.Unix(0, 0).UTC(), End: time.Unix(1, 0).UTC()}
				break
			}
		}
	}
	return plan
}

type e15writerPlan struct {
	tr  string
	ops []e15op
}

// shardIngestRate runs one precomputed storm plan and returns
// acknowledged mutations per second. opts == nil means in-memory.
func shardIngestRate(shards int, plan []e15writerPlan, opts *catalog.Options) (float64, error) {
	var cat *catalog.Catalog
	if opts == nil {
		cat = catalog.NewSharded(nil, shards)
	} else {
		dir, err := os.MkdirTemp("", "e15-shards")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		cat, err = catalog.Open(dir, nil, *opts)
		if err != nil {
			return 0, err
		}
		defer cat.Close()
	}
	for w := range plan {
		if err := cat.AddTransformation(ingestTR(plan[w].tr)); err != nil {
			return 0, err
		}
	}

	var mutations int64
	errs := make(chan error, len(plan))
	var wg sync.WaitGroup
	start := time.Now()
	for w := range plan {
		wg.Add(1)
		go func(ops []e15op) {
			defer wg.Done()
			for i := range ops {
				op := &ops[i]
				if err := cat.AddDataset(op.ds); err != nil {
					errs <- err
					return
				}
				if err := cat.AddReplica(op.rep); err != nil {
					errs <- err
					return
				}
				if op.dv == nil {
					continue
				}
				if _, err := cat.AddDerivation(*op.dv); err != nil {
					errs <- err
					return
				}
				if err := cat.AddInvocation(*op.iv); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(plan[w].ops)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	total := 0
	for w := range plan {
		for i := range plan[w].ops {
			total += plan[w].ops[i].mutations()
		}
	}
	mutations = int64(total)
	for err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(mutations) / elapsed.Seconds(), nil
}
