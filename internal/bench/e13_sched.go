package bench

import (
	"fmt"
	"os"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/executor"
	"chimera/internal/schema"
	"chimera/internal/workload"
)

// E13Sched measures scheduler event throughput — dispatch plus
// completion events per second — over canonical DAGs of growing size,
// comparing the legacy full-rescan dispatcher (dag.Ready after every
// completion, O(V+E) each) against the incremental ready-frontier
// (per-node indegree counters, O(successors) per completion). The
// NullDriver completes jobs instantly on the drain goroutine, so the
// measurement isolates the executor's own bookkeeping.
//
// It then runs a real LocalDriver workflow against an fsync-on-commit
// catalog in both recording modes and reports the mean WAL batch
// occupancy in the notes: inline recording holds the scheduler lock
// across each durability wait, so a batch never spans more than one
// completion's records, while the off-lock recording pipeline lets
// concurrent completions share group commits.
func E13Sched(sizes []int, walNodes int) (Table, error) {
	t := Table{
		Experiment: "E13",
		Title:      "scheduler event throughput: incremental ready-frontier vs full rescan",
		Columns:    []string{"nodes", "rescan-events/s", "frontier-events/s", "speedup"},
	}
	const width = 50
	for _, size := range sizes {
		layers := size/width + 1
		g, err := canonicalGraph(layers, width)
		if err != nil {
			return t, err
		}
		nodes := len(g.Nodes())
		rescan, err := schedRate(g, true)
		if err != nil {
			return t, err
		}
		frontier, err := schedRate(g, false)
		if err != nil {
			return t, err
		}
		speedup := 0.0
		if rescan > 0 {
			speedup = frontier / rescan
		}
		t.Add(nodes, rescan, frontier, speedup)
	}

	inline, err := walOccupancy(walNodes, true)
	if err != nil {
		return t, err
	}
	pipelined, err := walOccupancy(walNodes, false)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes,
		"full rescan recomputes the entire ready set after every completion, so per-event cost grows with DAG size; the frontier decrements successor indegrees and dispatches nodes the moment their last input lands",
		fmt.Sprintf("WAL batch occupancy (%d-node workflow, fsync catalog): inline recording %.2f records/batch, off-lock recording pipeline %.2f — pipelined completions reach the group committer together instead of serializing one fsync per scheduler-lock hold", walNodes, inline, pipelined),
	)
	return t, nil
}

// canonicalGraph builds the workflow DAG of a canonical workload.
func canonicalGraph(layers, width int) (*dag.Graph, error) {
	w := workload.Canonical(workload.CanonicalParams{
		Layers: layers, Width: width, MaxFanIn: 3, Seed: 13,
	})
	return dag.Build(w.Derivations, schema.MapResolver(w.Transformations...))
}

// schedRate runs g on a NullDriver and returns scheduler events
// (dispatches + completions) per second.
func schedRate(g *dag.Graph, rescan bool) (float64, error) {
	events := 0
	ex := &executor.Executor{
		Driver:         &executor.NullDriver{},
		RescanDispatch: rescan,
		Assign: func(n *dag.Node) (executor.Placement, error) {
			return executor.Placement{}, nil
		},
		OnEvent: func(executor.Event) { events++ },
	}
	start := time.Now()
	rep, err := ex.Run(g)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if !rep.Succeeded() {
		return 0, fmt.Errorf("E13: run failed: %+v", rep)
	}
	return float64(events) / elapsed.Seconds(), nil
}

// walOccupancy runs a wide canonical workflow on a LocalDriver against
// a Sync catalog and returns the mean WAL records per commit batch.
func walOccupancy(nodes int, inline bool) (float64, error) {
	dir, err := os.MkdirTemp("", "e13-wal")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	cat, err := catalog.Open(dir, nil, catalog.Options{Sync: true})
	if err != nil {
		return 0, err
	}
	defer cat.Close()

	w := workload.Canonical(workload.CanonicalParams{
		Layers: 3, Width: nodes / 2, MaxFanIn: 2, Seed: 13,
	})
	if err := w.Install(cat); err != nil {
		return 0, err
	}
	g, err := dag.Build(w.Derivations, cat.Resolver())
	if err != nil {
		return 0, err
	}

	work, err := os.MkdirTemp("", "e13-work")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(work)
	drv := executor.NewLocalDriver(work)
	for _, tr := range w.Transformations {
		drv.Register(tr.Name, func(executor.Task) error {
			time.Sleep(200 * time.Microsecond)
			return nil
		})
	}

	batches0, records0 := catalog.WALBatchStats()
	ex := &executor.Executor{
		Driver:        drv,
		Catalog:       cat,
		SyncRecording: inline,
		Assign: func(n *dag.Node) (executor.Placement, error) {
			out := map[string]int64{}
			for _, o := range n.Outputs {
				out[o] = 1
			}
			return executor.Placement{OutputBytes: out}, nil
		},
	}
	rep, err := ex.Run(g)
	if err != nil {
		return 0, err
	}
	if !rep.Succeeded() {
		return 0, fmt.Errorf("E13: workflow failed: %+v", rep)
	}
	batches, records := catalog.WALBatchStats()
	db := batches - batches0
	if db == 0 {
		return 0, fmt.Errorf("E13: no WAL batches observed")
	}
	return (records - records0) / float64(db), nil
}
