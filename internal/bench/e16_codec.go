package bench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"chimera/internal/codec"
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// E16Codec measures what the binary/v1 catalog codec buys over the
// json/v1 baseline at catalog scale, on the two paths where encoding
// cost is user-visible:
//
//	cold start    a vdcd restart replays its snapshot before serving.
//	              The experiment writes one snapshot file per codec for
//	              the same synthetic catalog, then times the read+decode
//	              pass (exactly catalog.loadSnapshot minus the
//	              format-independent index rebuild). Binary snapshots
//	              are stored raw — no per-section compression — so the
//	              mmap'd load path decodes length-prefixed records in
//	              place instead of walking a JSON parser over every
//	              byte.
//	delta bodies  federation crawlers poll /v1/export?since= on every
//	              crawl tick; body bytes are the steady-state WAN cost
//	              of membership. The experiment encodes a churn delta
//	              (1% of the catalog, floor 1000 objects, with
//	              tombstones) in both codecs and compares body sizes.
//	              Delta frames DEFLATE-compress their large sections,
//	              trading a little CPU for wire bytes — the opposite
//	              policy from snapshots, and the reason the two paths
//	              are measured separately.
//
// The synthetic catalog is the production shape from E15's ingest mix:
// LFN-style dataset names, gsiftp PFNs, a small set of shared attribute
// keys (interned by the binary codec) with per-replica checksums
// (unique, so they bound what interning can claim), and a derivation +
// invocation chain every eighth dataset. sizes are total catalog
// objects (datasets + replicas + derivations + invocations).
func E16Codec(sizes []int, churnFrac float64) (Table, error) {
	t := Table{
		Experiment: "E16",
		Title:      "binary vs JSON catalog codec: snapshot size, cold-start decode, delta body bytes",
		Columns: []string{"objects", "json-snap-MB", "bin-snap-MB", "snap-ratio",
			"json-load-ms", "bin-load-ms", "cold-start-x", "json-delta-KB", "bin-delta-KB", "delta-x"},
		Metrics: map[string]float64{},
	}
	jsonC, err := codec.Lookup(codec.JSONName)
	if err != nil {
		return t, err
	}
	binC, err := codec.Lookup(codec.BinaryName)
	if err != nil {
		return t, err
	}
	dir, err := os.MkdirTemp("", "e16-codec")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dir)

	for _, n := range sizes {
		p := e16Payload(n)
		jsonBytes, jsonLoad, err := e16ColdStart(jsonC, dir, p)
		if err != nil {
			return t, err
		}
		binBytes, binLoad, err := e16ColdStart(binC, dir, p)
		if err != nil {
			return t, err
		}

		d := e16Delta(p, churnFrac)
		var jb, bb bytes.Buffer
		if err := jsonC.EncodeDelta(&jb, d); err != nil {
			return t, err
		}
		if err := binC.EncodeDelta(&bb, d); err != nil {
			return t, err
		}

		snapRatio := float64(jsonBytes) / float64(binBytes)
		coldX := jsonLoad.Seconds() / binLoad.Seconds()
		deltaX := float64(jb.Len()) / float64(bb.Len())
		t.Add(n,
			float64(jsonBytes)/(1<<20), float64(binBytes)/(1<<20), snapRatio,
			float64(jsonLoad.Milliseconds()), float64(binLoad.Milliseconds()), coldX,
			float64(jb.Len())/(1<<10), float64(bb.Len())/(1<<10), deltaX)
		t.Metrics[fmt.Sprintf("snapshot_bytes_ratio_n%d", n)] = snapRatio
		t.Metrics[fmt.Sprintf("cold_start_speedup_n%d", n)] = coldX
		t.Metrics[fmt.Sprintf("delta_bytes_ratio_n%d", n)] = deltaX
	}
	// Headline metrics are the largest configuration: the scale where
	// cold start and crawl bandwidth actually hurt.
	last := sizes[len(sizes)-1]
	t.Metrics["cold_start_speedup"] = t.Metrics[fmt.Sprintf("cold_start_speedup_n%d", last)]
	t.Metrics["delta_bytes_ratio"] = t.Metrics[fmt.Sprintf("delta_bytes_ratio_n%d", last)]
	t.Metrics["snapshot_bytes_ratio"] = t.Metrics[fmt.Sprintf("snapshot_bytes_ratio_n%d", last)]
	t.Notes = append(t.Notes,
		"cold-start times one read+decode of the snapshot file (catalog.loadSnapshot minus the format-independent index rebuild); binary snapshots are raw length-prefixed records, so decode skips both JSON parsing and per-field allocation for interned strings",
		"delta bodies are what federation crawlers pull per tick: binary deltas DEFLATE-compress large sections, snapshots stay raw for the mmap load path — the size ratios differ by design")
	return t, nil
}

// e16Payload builds the synthetic catalog: i-th iteration registers a
// dataset + replica, every eighth adds a derivation + invocation, until
// the object count reaches n.
func e16Payload(n int) *codec.Payload {
	p := &codec.Payload{
		Types:           dtype.StandardRegistry(),
		Transformations: []schema.Transformation{ingestTR("e16-reco")},
	}
	objects := 0
	for i := 0; objects < n; i++ {
		name := fmt.Sprintf("lfn://cms/run%03d/reco-%07d.root", i%40, i)
		p.Datasets = append(p.Datasets, schema.Dataset{
			Name: name, Size: int64(i) * 7919,
			Attrs: schema.Attributes{
				"run": fmt.Sprint(i % 40), "site": "anl", "owner": "cms-prod", "quality": "approved",
			},
		})
		p.Replicas = append(p.Replicas, schema.Replica{
			ID: fmt.Sprintf("rep-%07d", i), Dataset: name, Site: "anl",
			PFN: "gsiftp://gridftp.anl.gov" + name[5:], Size: int64(i) * 7919,
			Attrs: schema.Attributes{"checksum": fmt.Sprintf("adler32:%08x", uint32(i)*2654435761)},
		})
		objects += 2
		if i%8 != 0 {
			continue
		}
		dv := ingestDV("e16-reco", name, name+".out").Canonicalize()
		p.Derivations = append(p.Derivations, dv)
		p.Invocations = append(p.Invocations, schema.Invocation{
			ID: fmt.Sprintf("iv-%07d", i), Derivation: dv.ID, Site: "anl", Host: "n1",
			Start: time.Unix(int64(i), 0).UTC(), End: time.Unix(int64(i)+40, 0).UTC(),
		})
		objects += 2
	}
	return p
}

// e16Delta carves a churn delta out of the payload: the first
// churnFrac of every object class re-exported (an update storm), plus
// replica tombstones for 5% of the churned replicas.
func e16Delta(p *codec.Payload, churnFrac float64) *codec.Delta {
	take := func(n int) int {
		k := int(float64(n) * churnFrac)
		if k < 1000 {
			k = 1000
		}
		if k > n {
			k = n
		}
		return k
	}
	nd, nr := take(len(p.Datasets)), take(len(p.Replicas))
	d := &codec.Delta{
		Instance: 1, Since: 100, Seq: 100 + uint64(nd+nr),
		Payload: codec.Payload{
			Datasets: p.Datasets[:nd],
			Replicas: p.Replicas[:nr],
		},
	}
	for i := 0; i < nr/20; i++ {
		d.Tombstones = append(d.Tombstones, codec.Tombstone{Kind: "replica", ID: p.Replicas[i].ID})
	}
	return d
}

// e16ColdStart writes p as a snapshot file in c's format and times one
// cold read+decode pass, returning the file size and load time. Small
// configurations repeat the load and keep the fastest pass so the table
// isn't noise at the bottom rows.
func e16ColdStart(c codec.Codec, dir string, p *codec.Payload) (int64, time.Duration, error) {
	var buf bytes.Buffer
	if err := c.EncodeSnapshot(&buf, p); err != nil {
		return 0, 0, err
	}
	path := filepath.Join(dir, "snapshot-"+filepath.Base(c.ContentType()))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return 0, 0, err
	}
	size := int64(buf.Len())
	reps := 1
	if size < 64<<20 {
		reps = 3
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, 0, err
		}
		if _, err := c.DecodeSnapshot(data); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return size, best, nil
}
