package bench

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/executor"
	"chimera/internal/query"
	"chimera/internal/schema"
	"chimera/internal/vds"
	"chimera/internal/workload"
)

// E18Analysts is the analyst-storm experiment: N concurrent analysts
// replay identical CAVES-style scripts (zipfian discover/define/derive,
// workload.AnalystStorm) against the same catalog content through two
// read paths — the locked ordered-snapshot oracle (query.RunOracle /
// vds LockedReads: every shard read lock held per query, no result
// cache) and the lock-free epoch path (published snapshots + the
// plan/result cache) — while a background writer sustains ingest. It
// reports in-process query throughput, the HTTP p99 of the vds search
// endpoints, the plan-cache hit rate on the epoch arm, and the executor
// dedup hit rate for the storm's re-derivation requests; `agree`
// confirms both paths return identical results at quiescence.
func E18Analysts(analysts []int, ops int, window time.Duration) (Table, error) {
	t := Table{
		Experiment: "E18",
		Title:      fmt.Sprintf("analyst storm: locked snapshot reads vs lock-free epoch reads + plan cache (%d ops/analyst, %v windows)", ops, window),
		Columns: []string{"analysts", "locked-qps", "epoch-qps", "qps-x",
			"locked-p99-ms", "epoch-p99-ms", "cache-hit-%", "dedup-hit-%", "agree"},
		Metrics: map[string]float64{},
	}
	for _, n := range analysts {
		storm := workload.AnalystStorm{Analysts: n, Chains: 200, Depth: 3, Ops: ops, Seed: 18}
		scripts, err := e18Parse(storm)
		if err != nil {
			return t, err
		}
		locked, err := e18Arm(storm, scripts, window, true)
		if err != nil {
			return t, err
		}
		epoch, err := e18Arm(storm, scripts, window, false)
		if err != nil {
			return t, err
		}
		dedupRate, err := e18Dedup(storm, scripts)
		if err != nil {
			return t, err
		}

		speedup := 0.0
		if locked.qps > 0 {
			speedup = epoch.qps / locked.qps
		}
		t.Add(n, locked.qps, epoch.qps, speedup,
			locked.p99ms, epoch.p99ms, 100*epoch.cacheHit, 100*dedupRate,
			locked.agree && epoch.agree)
		pfx := fmt.Sprintf("analysts_%d_", n)
		t.Metrics[pfx+"locked_qps"] = locked.qps
		t.Metrics[pfx+"epoch_qps"] = epoch.qps
		t.Metrics[pfx+"qps_speedup"] = speedup
		t.Metrics[pfx+"locked_vds_p50_ms"] = locked.p50ms
		t.Metrics[pfx+"epoch_vds_p50_ms"] = epoch.p50ms
		t.Metrics[pfx+"locked_vds_p99_ms"] = locked.p99ms
		t.Metrics[pfx+"epoch_vds_p99_ms"] = epoch.p99ms
		t.Metrics[pfx+"plan_cache_hit_rate"] = epoch.cacheHit
		t.Metrics[pfx+"dedup_hit_rate"] = dedupRate
	}
	t.Notes = append(t.Notes,
		"the locked oracle serializes every query behind all shard read locks while the writer holds them for mutations; the epoch path reads immutable published snapshots (zero lock acquisitions) and answers zipf-repeated predicates from the plan cache, so its advantage widens with analyst count")
	return t, nil
}

// e18HTTPRate is the aggregate offered request rate (req/s) of the vds
// latency phase, split evenly across the analysts. It is deliberately
// below the service capacity of a single-core runner: at saturation
// p99 measures queue collapse (and punishes whichever arm serves more
// requests per GC cycle), while below it p99 isolates what the read
// path itself does to the tail — lock waits behind the ingest writer
// versus none.
const e18HTTPRate = 200

// e18Result is one arm's measurements.
type e18Result struct {
	qps      float64
	p50ms    float64
	p99ms    float64
	cacheHit float64
	agree    bool
}

// e18Op is a script op with its discover query pre-parsed, so both arms
// replay identical work with no parse cost in the measured window.
type e18Op struct {
	workload.AnalystOp
	expr query.Expr
}

// e18Parse expands the storm's scripts, parsing each distinct discover
// query once.
func e18Parse(storm workload.AnalystStorm) ([][]e18Op, error) {
	exprs := map[string]query.Expr{}
	raw := storm.Scripts()
	scripts := make([][]e18Op, len(raw))
	for a, script := range raw {
		scripts[a] = make([]e18Op, len(script))
		for i, op := range script {
			o := e18Op{AnalystOp: op}
			if op.Kind == workload.OpDiscover {
				e, ok := exprs[op.Query]
				if !ok {
					var err error
					if e, err = query.Parse(op.Query); err != nil {
						return nil, fmt.Errorf("E18: %q: %w", op.Query, err)
					}
					exprs[op.Query] = e
				}
				o.expr = e
			}
			scripts[a][i] = o
		}
	}
	return scripts, nil
}

// e18Arm builds a fresh catalog with the storm's base content and
// replays every analyst script concurrently under sustained ingest,
// first in-process (throughput) and then over HTTP against a vds server
// (latency). Each phase loops its scripts for a full measurement
// window — scripts are short, so a single pass would be over in
// milliseconds and the numbers would be scheduler noise; looping also
// reproduces how analysts actually behave (the same discovery queries
// re-run all session long). locked selects the read path.
func e18Arm(storm workload.AnalystStorm, scripts [][]e18Op, window time.Duration, locked bool) (e18Result, error) {
	var res e18Result
	// Arms run back to back in one process; start each from a collected
	// heap so the second isn't measured against the first's garbage.
	runtime.GC()
	cat := catalog.New(nil)
	base := storm.Base()
	if err := base.Install(cat); err != nil {
		return res, err
	}

	// Start each arm from an empty cache so the hit rate is the arm's
	// own. Epoch keys carry the catalog instance, so stale cross-arm
	// entries could never produce false hits anyway — this only keeps
	// the occupancy numbers honest.
	query.SetPlanCacheCapacity(0)
	query.SetPlanCacheCapacity(query.DefaultPlanCacheCapacity)
	cacheBefore := query.CacheStats()

	// Sustained ingest: one writer registers new tagged chains for the
	// whole measured window, throttled to a steady rate so both arms
	// face the same mutation pressure.
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		tr := base.Transformations[0].Ref()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			dv := ingestDV(tr, fmt.Sprintf("storm.in.%06d", i), fmt.Sprintf("storm.out.%06d", i))
			if _, err := cat.AddDerivation(dv); err != nil && !errors.Is(err, catalog.ErrDuplicate) {
				writerErr <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Phase 1: in-process replay, measuring discover throughput. A
	// start barrier keeps goroutine launch out of the window; every
	// analyst loops its script until the deadline.
	var discovers atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	begin := make(chan struct{})
	for a := range scripts {
		wg.Add(1)
		go func(script []e18Op) {
			defer wg.Done()
			<-begin
			deadline := time.Now().Add(window)
			for time.Now().Before(deadline) {
				for _, op := range script {
					var err error
					switch op.Kind {
					case workload.OpDiscover:
						if locked {
							_, err = query.RunOracle(cat, op.QueryKind, op.expr)
						} else {
							_, err = query.Run(cat, op.QueryKind, op.expr)
						}
						discovers.Add(1)
					case workload.OpDefine:
						if err = cat.AddDataset(op.Dataset); errors.Is(err, catalog.ErrDuplicate) {
							err = nil
						}
					case workload.OpDerive:
						if _, err = cat.AddDerivation(op.Derivation); errors.Is(err, catalog.ErrDuplicate) {
							err = nil
						}
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}
		}(scripts[a])
	}
	start := time.Now()
	close(begin)
	wg.Wait()
	res.qps = float64(discovers.Load()) / time.Since(start).Seconds()
	if err, _ := firstErr.Load().(error); err != nil {
		close(stop)
		writerWG.Wait()
		return res, err
	}

	// Phase 2: the same discover mix against the vds search endpoints,
	// recording per-request latency for the p99. Requests go straight
	// into the server's handler chain (mux, middleware, search, JSON
	// encoding) via ServeHTTP: on a single-core runner the loopback TCP
	// round-trip costs ~10x the entire request handling and would bury
	// the read path's contribution in network scheduling noise.
	srv := vds.NewServer("e18.bench", cat)
	srv.LockedReads = locked
	// The latency phase offers a *fixed* aggregate request rate split
	// across the analysts, rather than closed-loop saturation: p99 at
	// two different throughputs is not comparable (the faster arm would
	// be penalized for serving more requests per GC cycle), while p99 at
	// the same offered load isolates service latency plus queueing —
	// which is what an analyst experiences. Analysts do not catch up
	// after a slow response; a server that cannot sustain the load shows
	// it as tail latency.
	interval := time.Duration(len(scripts)) * time.Second / e18HTTPRate
	lats := make([][]float64, len(scripts))
	begin2 := make(chan struct{})
	for a := range scripts {
		// Pre-build each analyst's requests so the loop times the
		// request alone.
		var reqs []*http.Request
		for _, op := range scripts[a] {
			if op.Kind != workload.OpDiscover {
				continue
			}
			path := "/v1/datasets"
			if op.QueryKind == query.KDerivation {
				path = "/v1/derivations"
			}
			req := httptest.NewRequest(http.MethodGet, path+"?q="+url.QueryEscape(op.Query), nil)
			reqs = append(reqs, req)
		}
		// Each analyst paces at the shared interval plus a small
		// deterministic per-analyst skew: identical intervals
		// phase-lock the fleet into periodic micro-herds whose queue
		// spikes would define the tail.
		pace := interval + interval*time.Duration(a%16)/160
		wg.Add(1)
		go func(a int, pace time.Duration, reqs []*http.Request) {
			defer wg.Done()
			<-begin2
			// Stagger first requests uniformly across one pacing
			// interval so the arrival process approximates the offered
			// rate from the first instant instead of opening with a
			// 256-deep thundering herd whose queueing drain would
			// dominate every percentile.
			time.Sleep(interval * time.Duration(a) / time.Duration(len(scripts)))
			deadline := time.Now().Add(2 * window)
			for time.Now().Before(deadline) {
				for _, req := range reqs {
					t0 := time.Now()
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
					lats[a] = append(lats[a], time.Since(t0).Seconds()*1e3)
					if rec.Code != http.StatusOK {
						firstErr.CompareAndSwap(nil, fmt.Errorf("E18: %s: %d", req.URL, rec.Code))
						return
					}
					if d := pace - time.Since(t0); d > 0 {
						time.Sleep(d)
					}
					if !time.Now().Before(deadline) {
						break
					}
				}
			}
		}(a, pace, reqs)
	}
	close(begin2)
	wg.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-writerErr:
		return res, err
	default:
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return res, err
	}

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	res.p99ms = percentile(all, 0.99)
	res.p50ms = percentile(all, 0.50)

	after := query.CacheStats()
	hits := float64(after.Hits - cacheBefore.Hits)
	misses := float64(after.Misses - cacheBefore.Misses)
	if hits+misses > 0 {
		res.cacheHit = hits / (hits + misses)
	}

	// Quiescent agreement: both read paths must answer every distinct
	// script query identically once the writer has stopped.
	if err := cat.CheckPublished(); err != nil {
		return res, err
	}
	res.agree = true
	seen := map[string]bool{}
	for _, script := range scripts {
		for _, op := range script {
			if op.Kind != workload.OpDiscover || seen[op.Query] {
				continue
			}
			seen[op.Query] = true
			re, err := query.Run(cat, op.QueryKind, op.expr)
			if err != nil {
				return res, err
			}
			ro, err := query.RunOracle(cat, op.QueryKind, op.expr)
			if err != nil {
				return res, err
			}
			if !sameResults(re, ro) {
				res.agree = false
			}
		}
	}
	return res, nil
}

// e18Dedup measures the executor's duplicate-derivation fast path on
// the storm's re-derivation requests: the collaboration's base chains
// have already executed (run 1), so when the storm's combined graph —
// base chains plus the analysts' distinct summary requests — is run
// with DedupExecuted, every already-executed node completes from the
// published epoch without dispatching. Returns dedup'd nodes / total
// nodes of the storm graph.
func e18Dedup(storm workload.AnalystStorm, scripts [][]e18Op) (float64, error) {
	cat := catalog.New(nil)
	base := storm.Base()
	if err := base.Install(cat); err != nil {
		return 0, err
	}
	var baseDVs []schema.Derivation
	for _, dv := range base.Derivations {
		stored, err := cat.AddDerivation(dv)
		if err != nil && !errors.Is(err, catalog.ErrDuplicate) {
			return 0, err
		}
		baseDVs = append(baseDVs, stored)
	}
	all := append([]schema.Derivation(nil), baseDVs...)
	seen := map[string]bool{}
	for _, script := range scripts {
		for _, op := range script {
			if op.Kind != workload.OpDerive {
				continue
			}
			stored, err := cat.AddDerivation(op.Derivation)
			if err != nil && !errors.Is(err, catalog.ErrDuplicate) {
				return 0, err
			}
			if !seen[stored.ID] {
				seen[stored.ID] = true
				all = append(all, stored)
			}
		}
	}

	assign := func(*dag.Node) (executor.Placement, error) { return executor.Placement{}, nil }

	// Run 1: the base chains execute for real, recording invocations.
	g, err := dag.Build(baseDVs, cat.Resolver())
	if err != nil {
		return 0, err
	}
	ex := &executor.Executor{Driver: &executor.NullDriver{}, Assign: assign, Catalog: cat}
	rep, err := ex.Run(g)
	if err != nil {
		return 0, err
	}
	if !rep.Succeeded() {
		return 0, fmt.Errorf("E18: base run failed (%d failed, %d blocked)", rep.Failed, rep.Blocked)
	}

	// Run 2: the storm graph with the fast path on.
	g2, err := dag.Build(all, cat.Resolver())
	if err != nil {
		return 0, err
	}
	deduped := 0
	ex2 := &executor.Executor{
		Driver: &executor.NullDriver{}, Assign: assign, Catalog: cat,
		DedupExecuted: true,
		OnEvent: func(ev executor.Event) {
			if ev.Kind == "dedup" {
				deduped++
			}
		},
	}
	rep2, err := ex2.Run(g2)
	if err != nil {
		return 0, err
	}
	if !rep2.Succeeded() {
		return 0, fmt.Errorf("E18: storm run failed (%d failed, %d blocked)", rep2.Failed, rep2.Blocked)
	}
	if g2.Len() == 0 {
		return 0, nil
	}
	return float64(deduped) / float64(g2.Len()), nil
}

// percentile returns the p-quantile of values in milliseconds-space
// (values is consumed: sorted in place).
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sort.Float64s(values)
	i := int(p * float64(len(values)))
	if i >= len(values) {
		i = len(values) - 1
	}
	return values[i]
}
