package bench

import (
	"fmt"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/grid"
	"chimera/internal/planner"
	"chimera/internal/workload"
)

// simEnv is one simulated-grid experiment setup.
type simEnv struct {
	cat *catalog.Catalog
	cl  *grid.Cluster
	pl  *planner.Planner
	w   workload.Workload
}

// newSimEnv installs a workload on a grid, places primaries on the
// first site, and seeds the estimator with the workload's true costs.
func newSimEnv(g *grid.Grid, seed int64, w workload.Workload) (*simEnv, error) {
	cat := catalog.New(nil)
	if err := w.Install(cat); err != nil {
		return nil, err
	}
	sites := g.Sites()
	if err := w.PlacePrimary(cat, sites[:1]); err != nil && len(w.Primary) > 0 {
		return nil, err
	}
	cl := grid.NewCluster(g, grid.NewSim(seed))
	est := estimator.New(60)
	w.SeedEstimator(est, 3)
	pl := planner.New(cat, est, cl)
	return &simEnv{cat: cat, cl: cl, pl: pl, w: w}, nil
}

// run executes all the workload's derivations as one campaign.
func (e *simEnv) run(retries int) (executor.Report, error) {
	g, err := dag.Build(e.w.Derivations, e.cat.Resolver())
	if err != nil {
		return executor.Report{}, err
	}
	ex := &executor.Executor{
		Driver:     executor.NewSimDriver(e.cl),
		Assign:     e.pl.Assign,
		OnEvent:    e.pl.OnEvent,
		Catalog:    e.cat,
		MaxRetries: retries,
	}
	return ex.Run(g)
}

// E1HEP reproduces §6's Chimera-0 validation: the four-stage CMS event
// simulation pipeline with provenance fully captured — every ancestor
// of the final product reachable, every execution recorded.
func E1HEP(runCounts []int) (Table, error) {
	t := Table{
		Experiment: "E1",
		Title:      "CMS four-stage pipeline: provenance capture completeness",
		Columns:    []string{"runs", "derivations", "invocations", "lineage-steps", "primary-roots", "complete", "makespan-s"},
	}
	for _, runs := range runCounts {
		g := grid.NewGrid()
		if _, err := g.AddSite("site", 1e15); err != nil {
			return t, err
		}
		if err := g.AddHosts("site", "h", 20, 1.0, 1); err != nil {
			return t, err
		}
		w := workload.CMS(workload.CMSParams{Runs: runs, Merge: true})
		env, err := newSimEnv(g, 101, w)
		if err != nil {
			return t, err
		}
		env.pl.DefaultSize = 1e6
		rep, err := env.run(0)
		if err != nil {
			return t, err
		}
		lin, err := env.cat.Lineage("histograms")
		if err != nil {
			return t, err
		}
		complete := rep.Succeeded() && len(lin.Steps) == len(w.Derivations)
		invoked := 0
		for _, step := range lin.Steps {
			invoked += len(step.Invocations)
		}
		t.Add(runs, len(w.Derivations), invoked, len(lin.Steps), len(lin.PrimarySources), complete, rep.Makespan)
	}
	t.Notes = append(t.Notes,
		"complete=true means the lineage report reaches every derivation and each carries its invocation record — the paper's audit-trail claim")
	return t, nil
}

// E2ProvenanceScale reproduces the "canonical applications" validation:
// provenance tracking on large synthetic dependency graphs, with
// lineage query cost growing with ancestry size, not catalog size.
func E2ProvenanceScale(sizes []int) (Table, error) {
	t := Table{
		Experiment: "E2",
		Title:      "provenance tracking at scale on synthetic dependency graphs",
		Columns:    []string{"derivations", "build-ms", "lineage-ms", "ancestors", "invalidate-ms", "invalidated"},
	}
	for _, size := range sizes {
		width := 25
		layers := size/width + 1
		if layers < 2 {
			layers = 2
		}
		w := workload.Canonical(workload.CanonicalParams{
			Layers: layers + 1, Width: width, MaxFanIn: 3, Seed: 42, Styles: 4,
		})
		cat := catalog.New(nil)
		start := time.Now()
		if err := w.Install(cat); err != nil {
			return t, err
		}
		buildMS := float64(time.Since(start).Microseconds()) / 1000

		target := w.Targets[0]
		start = time.Now()
		lin, err := cat.Lineage(target)
		if err != nil {
			return t, err
		}
		lineageMS := float64(time.Since(start).Microseconds()) / 1000

		root := w.Primary[0].Name
		start = time.Now()
		inv, err := cat.Invalidate(root)
		if err != nil {
			return t, err
		}
		invMS := float64(time.Since(start).Microseconds()) / 1000

		t.Add(len(w.Derivations), buildMS, lineageMS, len(lin.Steps), invMS, len(inv.Datasets))
	}
	t.Notes = append(t.Notes,
		"lineage cost tracks ancestry size; the calibration-error question (invalidate) walks only the affected cone")
	return t, nil
}

// E3SDSS reproduces the galaxy-cluster-finding campaign: ~3 derivations
// per field in several-hundred-node DAGs on the four-site, ~800-host
// testbed, sweeping how many hosts a single workflow may use (the paper
// used up to 120 of ~800).
func E3SDSS(fields int, hostCounts []int) (Table, error) {
	t := Table{
		Experiment: "E3",
		Title:      fmt.Sprintf("SDSS cluster search: makespan vs hosts (%d fields)", fields),
		Columns:    []string{"hosts", "nodes", "makespan-s", "speedup", "efficiency", "wan-GB"},
	}
	var base float64
	for _, hosts := range hostCounts {
		// Four sites; the workflow is confined to `hosts` hosts spread
		// evenly, emulating the per-workflow host cap.
		per := hosts / 4
		counts := [4]int{hosts - 3*per, per, per, per}
		g, err := grid.FourSiteTestbed(counts)
		if err != nil {
			return t, err
		}
		w := workload.SDSS(workload.SDSSParams{Fields: fields, Window: 2, StripeSize: fields / 2, Seed: 3})
		env, err := newSimEnv(g, 202, w)
		if err != nil {
			return t, err
		}
		env.pl.Replication = planner.CacheAtClient{}
		rep, err := env.run(0)
		if err != nil {
			return t, err
		}
		if !rep.Succeeded() {
			return t, fmt.Errorf("E3: campaign failed at %d hosts", hosts)
		}
		if base == 0 {
			base = rep.Makespan
		}
		speedup := base / rep.Makespan
		eff := speedup / float64(hosts)
		t.Add(hosts, rep.Completed, rep.Makespan, speedup, eff, float64(env.cl.TransferredBytes)/1e9)
	}
	t.Notes = append(t.Notes,
		"speedup is near-linear until stage width and the neighbor-window dependencies bound parallelism — the campaign behaviour reported via [1]")
	return t, nil
}

// E4Reuse reproduces the core virtual-data promise: "if the program has
// already been run and the results stored, I'll save weeks of
// computation". A warm catalog answers overlapping requests from
// storage; only the novel fraction computes.
func E4Reuse(overlaps []float64) (Table, error) {
	t := Table{
		Experiment: "E4",
		Title:      "virtual-data reuse: overlapping request mixes against a warm catalog",
		Columns:    []string{"overlap", "requests", "reused", "computed-jobs", "cold-jobs", "work-saved-%"},
	}
	for _, overlap := range overlaps {
		g := grid.NewGrid()
		if _, err := g.AddSite("site", 1e15); err != nil {
			return t, err
		}
		if err := g.AddHosts("site", "h", 16, 1.0, 1); err != nil {
			return t, err
		}
		// Region A: computed up front (the warm archive). Region B: novel.
		// Both offer 20 requestable targets.
		wA := workload.CMS(workload.CMSParams{Runs: 20})
		wB := workload.SDSS(workload.SDSSParams{Fields: 40, Window: 1, StripeSize: 2, Seed: 8})
		env, err := newSimEnv(g, 303, wA)
		if err != nil {
			return t, err
		}
		if err := wB.Install(env.cat); err != nil {
			return t, err
		}
		if err := wB.PlacePrimary(env.cat, []string{"site"}); err != nil {
			return t, err
		}
		if _, err := env.run(0); err != nil { // warm region A
			return t, err
		}

		// Request mix: overlap fraction from A (already materialized),
		// remainder from B (must compute).
		total := len(wA.Targets)
		fromA := int(overlap * float64(total))
		targets := append([]string{}, wA.Targets[:fromA]...)
		need := total - fromA
		for i := 0; i < need && i < len(wB.Targets); i++ {
			targets = append(targets, wB.Targets[i])
		}

		reused, computed := 0, 0
		var pending []string
		for _, target := range targets {
			if env.cat.Materialized(target) {
				reused++
				continue
			}
			pending = append(pending, target)
		}
		coldJobs := 0
		if len(pending) > 0 {
			var dvs []string
			seen := map[string]bool{}
			for _, target := range pending {
				p, err := env.cat.MaterializationPlan(target, nil)
				if err != nil {
					return t, err
				}
				for _, dv := range p {
					if !seen[dv.ID] {
						seen[dv.ID] = true
						dvs = append(dvs, dv.ID)
					}
				}
			}
			coldJobs = len(dvs)
			computed = coldJobs
		}
		// Cold baseline: the work a catalog without reuse would run,
		// deduplicated across requests the same way the warm path is.
		coldSeen := map[string]bool{}
		coldBaseline := 0
		for _, target := range targets {
			p, err := env.cat.MaterializationPlan(target, func(ds string) bool {
				rec, err := env.cat.Dataset(ds)
				return err == nil && rec.CreatedBy == ""
			})
			if err != nil {
				return t, err
			}
			for _, dv := range p {
				if !coldSeen[dv.ID] {
					coldSeen[dv.ID] = true
					coldBaseline++
				}
			}
		}
		saved := 0.0
		if coldBaseline > 0 {
			saved = 100 * (1 - float64(computed)/float64(coldBaseline))
		}
		t.Add(overlap, len(targets), reused, computed, coldBaseline, saved)
	}
	t.Notes = append(t.Notes,
		"reuse is an O(1) signature lookup; saved work scales directly with request overlap")
	return t, nil
}
