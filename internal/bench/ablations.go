package bench

import (
	"fmt"
	"sort"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/grid"
	"chimera/internal/planner"
	"chimera/internal/workload"
)

// A1IndexVsScan ablates DESIGN.md decision 2 (provenance kept as an
// indexed bipartite graph): lineage answered through the catalog's
// adjacency indexes versus recomputing producer/consumer relations by
// scanning every derivation per query.
func A1IndexVsScan(sizes []int) (Table, error) {
	t := Table{
		Experiment: "A1",
		Title:      "ablation: indexed provenance graph vs per-query derivation scan",
		Columns:    []string{"derivations", "indexed-ms", "scan-ms", "scan/indexed", "agree"},
	}
	for _, size := range sizes {
		width := 25
		layers := size/width + 1
		if layers < 2 {
			layers = 2
		}
		w := workload.Canonical(workload.CanonicalParams{
			Layers: layers + 1, Width: width, MaxFanIn: 3, Seed: 42, Styles: 4,
		})
		cat := catalog.New(nil)
		if err := w.Install(cat); err != nil {
			return t, err
		}
		target := w.Targets[0]

		start := time.Now()
		indexed, err := cat.Ancestors(target)
		if err != nil {
			return t, err
		}
		indexedMS := ms(start)

		start = time.Now()
		scanned := scanAncestors(cat, target)
		scanMS := ms(start)

		agree := len(scanned) == len(indexed.Datasets)
		if agree {
			for i, d := range indexed.Datasets {
				if scanned[i] != d {
					agree = false
					break
				}
			}
		}
		ratio := 0.0
		if indexedMS > 0 {
			ratio = scanMS / indexedMS
		}
		t.Add(len(w.Derivations), indexedMS, scanMS, ratio, agree)
	}
	t.Notes = append(t.Notes,
		"the forward/inverse adjacency maps turn lineage into O(cone) traversal; a scan re-derives the edge relation from every derivation on every hop")
	return t, nil
}

// scanAncestors computes the ancestor closure without the catalog's
// provenance indexes: every hop rescans all derivations.
func scanAncestors(cat *catalog.Catalog, dataset string) []string {
	dvs := cat.Derivations()
	seen := map[string]bool{}
	var out []string
	frontier := []string{dataset}
	for len(frontier) > 0 {
		var next []string
		for _, ds := range frontier {
			for _, dv := range dvs { // full scan per hop — the ablation
				ins, outs, err := cat.DerivationIO(dv.ID)
				if err != nil {
					continue
				}
				produces := false
				for _, o := range outs {
					if o == ds {
						produces = true
						break
					}
				}
				if !produces {
					continue
				}
				for _, in := range ins {
					if !seen[in] {
						seen[in] = true
						out = append(out, in)
						next = append(next, in)
					}
				}
			}
		}
		frontier = next
	}
	sort.Strings(out)
	return out
}

// A2PendingLoad ablates the planner's in-flight assignment tracking
// (the fix that lets burst dispatches spread): the E3 campaign at a
// fixed host count, with and without tracking.
func A2PendingLoad(fields, hosts int) (Table, error) {
	t := Table{
		Experiment: "A2",
		Title:      fmt.Sprintf("ablation: planner pending-load tracking (SDSS %d fields, %d hosts)", fields, hosts),
		Columns:    []string{"tracking", "makespan-s", "utilization-%", "wan-GB"},
	}
	for _, disable := range []bool{false, true} {
		per := hosts / 4
		g, err := grid.FourSiteTestbed([4]int{hosts - 3*per, per, per, per})
		if err != nil {
			return t, err
		}
		w := workload.SDSS(workload.SDSSParams{Fields: fields, Window: 2, StripeSize: fields / 2, Seed: 3})
		env, err := newSimEnv(g, 202, w)
		if err != nil {
			return t, err
		}
		env.pl.Replication = planner.CacheAtClient{}
		env.pl.DisablePendingLoad = disable
		rep, err := env.run(0)
		if err != nil {
			return t, err
		}
		if !rep.Succeeded() {
			return t, fmt.Errorf("A2: run failed (disable=%v)", disable)
		}
		util := 100 * env.cl.BusyTime / (rep.Makespan * float64(hosts))
		t.Add(fmt.Sprint(!disable), rep.Makespan, util, float64(env.cl.TransferredBytes)/1e9)
	}
	t.Notes = append(t.Notes,
		"without tracking, the whole ready frontier sees empty queues and piles onto the data's home site; host utilization collapses")
	return t, nil
}
