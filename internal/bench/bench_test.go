package bench

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tab Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tab.Columns)
	return ""
}

func cellF(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("cell %s[%d] = %q not a number", col, row, cell(t, tab, row, col))
	}
	return v
}

func TestE1ProvenanceComplete(t *testing.T) {
	tab, err := E1HEP([]int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if cell(t, tab, i, "complete") != "true" {
			t.Errorf("row %d: provenance incomplete: %v", i, tab.Rows[i])
		}
	}
	// Second config has 5x derivations.
	if cellF(t, tab, 1, "derivations") != 41 {
		t.Errorf("derivations: %v", tab.Rows[1])
	}
	if !strings.Contains(tab.String(), "E1") || !strings.Contains(tab.Markdown(), "###") {
		t.Error("rendering")
	}
}

func TestE2Scales(t *testing.T) {
	tab, err := E2ProvenanceScale([]int{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if n := cellF(t, tab, 1, "derivations"); n < 900 {
		t.Errorf("size: %v", tab.Rows[1])
	}
	if inv := cellF(t, tab, 1, "invalidated"); inv <= 0 {
		t.Errorf("invalidation empty: %v", tab.Rows[1])
	}
}

func TestE3SpeedupShape(t *testing.T) {
	tab, err := E3SDSS(40, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	s1 := cellF(t, tab, 0, "speedup")
	s4 := cellF(t, tab, 1, "speedup")
	s16 := cellF(t, tab, 2, "speedup")
	if s1 != 1 || !(s4 > 2) || !(s16 > s4) {
		t.Errorf("speedups: %g %g %g", s1, s4, s16)
	}
}

func TestE4ReuseMonotone(t *testing.T) {
	tab, err := E4Reuse([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cellF(t, tab, 0, "reused") != 0 {
		t.Errorf("no-overlap reuse: %v", tab.Rows[0])
	}
	if cellF(t, tab, 2, "computed-jobs") != 0 {
		t.Errorf("full-overlap compute: %v", tab.Rows[2])
	}
	if !(cellF(t, tab, 1, "work-saved-%") > 0) {
		t.Errorf("mid overlap saves nothing: %v", tab.Rows[1])
	}
	if !(cellF(t, tab, 2, "work-saved-%") == 100) {
		t.Errorf("full overlap: %v", tab.Rows[2])
	}
}

func TestE5CachingBeatsNone(t *testing.T) {
	tab, err := E5Replication(60, 10)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]int{}
	for i := range tab.Rows {
		byPolicy[cell(t, tab, i, "policy")] = i
	}
	noneWAN := cellF(t, tab, byPolicy["none"], "wan-GB")
	cacheWAN := cellF(t, tab, byPolicy["cache"], "wan-GB")
	if !(cacheWAN < noneWAN) {
		t.Errorf("caching did not reduce WAN: none=%g cache=%g", noneWAN, cacheWAN)
	}
	if cellF(t, tab, byPolicy["none"], "replicas-created") != 0 {
		t.Error("none policy created replicas")
	}
	if !(cellF(t, tab, byPolicy["cache"], "replicas-created") > 0) {
		t.Error("cache policy created no replicas")
	}
}

func TestE6ErrorShrinks(t *testing.T) {
	tab, err := E6Estimator([]int{0, 5, 100})
	if err != nil {
		t.Fatal(err)
	}
	e0 := cellF(t, tab, 0, "error-%")
	e100 := cellF(t, tab, 2, "error-%")
	if !(e0 > 50 && e100 < 10) {
		t.Errorf("error trajectory: %g -> %g", e0, e100)
	}
	if cell(t, tab, 2, "ranks-plans-correctly") != "true" {
		t.Error("ranking with history failed")
	}
}

func TestE7FederationResolves(t *testing.T) {
	tab, err := E7Federation([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-catalog lineage spans all catalogs.
	if cellF(t, tab, 1, "xcat-lineage-steps") != 4 {
		t.Errorf("lineage steps: %v", tab.Rows[1])
	}
}

func TestE8TamperRejection(t *testing.T) {
	tab, err := E8Trust([]int{50})
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(cell(t, tab, 0, "tampered-rejected"), "/")
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("tamper rejection: %v", tab.Rows[0])
	}
	if cell(t, tab, 0, "untrusted-rejected") != "true" {
		t.Error("untrusted signer accepted")
	}
}

func TestE9Crossover(t *testing.T) {
	tab, err := E9Shipping([]int64{10e6, 10e9})
	if err != nil {
		t.Fatal(err)
	}
	if got := cell(t, tab, 0, "auto-choice"); got != "ship-data" {
		t.Errorf("small data choice: %s", got)
	}
	if got := cell(t, tab, 1, "auto-choice"); got != "ship-procedure" {
		t.Errorf("large data choice: %s", got)
	}
	// Auto is never worse than both fixed policies.
	for i := range tab.Rows {
		auto := cellF(t, tab, i, "auto-s")
		sd := cellF(t, tab, i, "ship-data-s")
		sp := cellF(t, tab, i, "ship-proc-s")
		if auto > sd+1e-9 && auto > sp+1e-9 {
			t.Errorf("row %d: auto (%g) worse than both (%g, %g)", i, auto, sd, sp)
		}
	}
}

func TestE10RoundTrip(t *testing.T) {
	tab, err := E10VDL([]int{50})
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tab, 0, "roundtrip-ok") != "true" {
		t.Errorf("roundtrip: %v", tab.Rows[0])
	}
	// Each compound DV yields 2 leaves; 5 compounds of 50 + 45 simple.
	if cellF(t, tab, 0, "leaves") != 55 {
		t.Errorf("leaves: %v", tab.Rows[0])
	}
}

func TestA1IndexBeatsScan(t *testing.T) {
	tab, err := A1IndexVsScan([]int{500})
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tab, 0, "agree") != "true" {
		t.Errorf("scan and index disagree: %v", tab.Rows[0])
	}
	if !(cellF(t, tab, 0, "scan/indexed") > 2) {
		t.Errorf("index not faster: %v", tab.Rows[0])
	}
}

func TestE12IndexedBeatsScan(t *testing.T) {
	tab, err := E12Query([]int{10000}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tab, 0, "agree") != "true" {
		t.Errorf("indexed and scan paths disagree: %v", tab.Rows[0])
	}
	if ratio := cellF(t, tab, 0, "scan/indexed"); !(ratio > 10) {
		t.Errorf("indexed not >=10x faster at 10k derivations: %v", tab.Rows[0])
	}
	if !(cellF(t, tab, 0, "qps-under-ingest") > 0) {
		t.Errorf("no queries completed under ingest: %v", tab.Rows[0])
	}
}

func TestE13FrontierBeatsRescan(t *testing.T) {
	tab, err := E13Sched([]int{500, 2000}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if !(cellF(t, tab, i, "frontier-events/s") > 0) || !(cellF(t, tab, i, "rescan-events/s") > 0) {
			t.Errorf("row %d: zero throughput: %v", i, tab.Rows[i])
		}
	}
	// Even at modest test sizes the incremental frontier should win
	// clearly on the largest DAG; paper scale (20k nodes) targets >=10x.
	if s := cellF(t, tab, len(tab.Rows)-1, "speedup"); !(s > 2) {
		t.Errorf("frontier speedup at largest DAG only %gx: %v", s, tab.Rows[len(tab.Rows)-1])
	}
	if len(tab.Notes) < 2 || !strings.Contains(tab.Notes[1], "records/batch") {
		t.Errorf("missing WAL occupancy note: %v", tab.Notes)
	}
}

func TestE14DeltaBeatsFull(t *testing.T) {
	tab, err := E14Federation([]int{4, 8}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if !(cellF(t, tab, i, "full-ms") > 0) || !(cellF(t, tab, i, "delta-warm-ms") > 0) {
			t.Errorf("row %d: zero latency recorded: %v", i, tab.Rows[i])
		}
	}
	// Warm (unchanged) delta passes skip all re-import and parallelize
	// the round-trips; paper scale targets >=10x at 16 members.
	last := len(tab.Rows) - 1
	if s := cellF(t, tab, last, "warm-speedup"); !(s > 2) {
		t.Errorf("warm delta speedup at largest member count only %gx: %v", s, tab.Rows[last])
	}
	if len(tab.Notes) < 3 || !strings.Contains(tab.Notes[2], "concurrent ingest") {
		t.Errorf("missing concurrent-ingest note: %v", tab.Notes)
	}
}

func TestE16BinaryCodecWins(t *testing.T) {
	tab, err := E16Codec([]int{20000}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Even at this modest size the binary codec should be clearly
	// smaller and faster to load; paper scale (1M objects) targets >=3x
	// cold start and >=2x smaller deltas.
	if r := cellF(t, tab, 0, "snap-ratio"); !(r > 1.3) {
		t.Errorf("binary snapshot not smaller: %gx (%v)", r, tab.Rows[0])
	}
	if x := cellF(t, tab, 0, "cold-start-x"); !(x > 2) {
		t.Errorf("binary cold start only %gx faster: %v", x, tab.Rows[0])
	}
	if x := cellF(t, tab, 0, "delta-x"); !(x > 2) {
		t.Errorf("binary delta only %gx smaller: %v", x, tab.Rows[0])
	}
	if tab.Metrics["cold_start_speedup"] <= 0 || tab.Metrics["delta_bytes_ratio"] <= 0 {
		t.Errorf("headline metrics missing: %v", tab.Metrics)
	}
}

func TestA3PlannerNeverLoses(t *testing.T) {
	tab, err := A3PlannerOff(2000, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if cell(t, tab, i, "agree") != "true" {
			t.Errorf("row %d: planner and scan disagree: %v", i, tab.Rows[i])
		}
	}
	// The point lookup (row 0) must be dramatically faster indexed.
	if ratio := cellF(t, tab, 0, "scan/indexed"); !(ratio > 10) {
		t.Errorf("point lookup not >=10x faster: %v", tab.Rows[0])
	}
}

func TestA2TrackingWins(t *testing.T) {
	tab, err := A2PendingLoad(60, 16)
	if err != nil {
		t.Fatal(err)
	}
	byTracking := map[string]int{}
	for i := range tab.Rows {
		byTracking[cell(t, tab, i, "tracking")] = i
	}
	with := cellF(t, tab, byTracking["true"], "makespan-s")
	without := cellF(t, tab, byTracking["false"], "makespan-s")
	if !(with < without) {
		t.Errorf("tracking did not help: with=%g without=%g", with, without)
	}
}

func TestE17EconomyBeatsPopularityUnderPressure(t *testing.T) {
	tab, err := E17DynamicReplication([]int{1000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	row := map[string]int{} // workload/policy -> row index
	for i := range tab.Rows {
		row[cell(t, tab, i, "workload")+"/"+cell(t, tab, i, "policy")] = i
	}
	for _, w := range []string{"sdss", "cms"} {
		if cellF(t, tab, row[w+"/none"], "replicas") != 0 {
			t.Errorf("%s: no-replication arm created replicas", w)
		}
		noneWAN := cellF(t, tab, row[w+"/none"], "wan-GB")
		popWAN := cellF(t, tab, row[w+"/popularity"], "wan-GB")
		if !(popWAN < noneWAN) {
			t.Errorf("%s: popularity did not cut WAN: none=%g pop=%g", w, noneWAN, popWAN)
		}
	}
	// The CMS community's large samples overwhelm the bounded caches:
	// the popularity arm stops replicating, the economy arm evicts cold
	// replicas and keeps winning on both WAN and makespan.
	if !(cellF(t, tab, row["cms/economy"], "evictions") > 0) {
		t.Error("cms: economy arm evicted nothing")
	}
	ecoWAN := cellF(t, tab, row["cms/economy"], "wan-GB")
	popWAN := cellF(t, tab, row["cms/popularity"], "wan-GB")
	if !(ecoWAN < popWAN) {
		t.Errorf("cms: economy WAN (%g) not below popularity (%g)", ecoWAN, popWAN)
	}
	if !(cellF(t, tab, row["cms/economy"], "makespan-s") < cellF(t, tab, row["cms/popularity"], "makespan-s")) {
		t.Errorf("cms: economy makespan not below popularity: %v", tab.Rows)
	}
}
