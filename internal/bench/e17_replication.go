package bench

import (
	"fmt"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/grid"
	"chimera/internal/planner"
	"chimera/internal/replica"
	"chimera/internal/schema"
	"chimera/internal/workload"
)

// e17Community shapes one analysis community hitting a shared archive:
// a Zipf-popular dataset collection whose primaries live at the
// archive site of the hierarchical testbed, analyzed by independent
// jobs spread across every site.
type e17Community struct {
	name     string
	datasets int     // archive size in datasets
	size     int64   // bytes per dataset
	skew     float64 // Zipf exponent of the access trace
	cacheCap int64   // per-site cache capacity at non-archive sites
}

// e17Communities are the two workload shapes of the shoot-out: an
// SDSS-style survey (many modest fields, broad interest) and a
// CMS-style event archive (few large samples, a hot head).
func e17Communities() []e17Community {
	return []e17Community{
		{name: "sdss", datasets: 300, size: 200e6, skew: 1.2, cacheCap: 1e9},
		{name: "cms", datasets: 60, size: 2e9, skew: 1.8, cacheCap: 4e9},
	}
}

func e17Counter(stats map[string]any, key string) uint64 {
	if v, ok := stats[key].(uint64); ok {
		return v
	}
	return 0
}

// e17Run executes one arm of the shoot-out and reports makespan, WAN
// volume, and the replica/eviction counts attributable to the run.
func e17Run(hosts, jobs int, c e17Community, policy string) (makespan, wanGB float64, replicas, evictions uint64, err error) {
	g, err := grid.HierarchicalTestbed(grid.HierarchyParams{
		Hosts: hosts, SpeedSpread: 0.1, Seed: 17,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	sites := g.Sites()
	archive := sites[0]
	// The archive site keeps its bulk store; every other site offers
	// only a bounded cache, so replica placement has to economize.
	for _, name := range sites[1:] {
		s, _ := g.Site(name)
		s.Storage.Capacity = c.cacheCap
	}

	cat := catalog.New(nil)
	analyze := schema.Transformation{
		Namespace: c.name, Name: "analyze", Kind: schema.Simple, Exec: "/bin/analyze",
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out},
			{Name: "in", Direction: schema.In},
		}}
	if err := cat.AddTransformation(analyze); err != nil {
		return 0, 0, 0, 0, err
	}
	for i := 0; i < c.datasets; i++ {
		name := fmt.Sprintf("%s.%04d", c.name, i)
		if err := cat.AddDataset(schema.Dataset{Name: name, Size: c.size}); err != nil {
			return 0, 0, 0, 0, err
		}
		if err := cat.AddReplica(schema.Replica{
			ID: "prim-" + name, Dataset: name, Site: archive,
			PFN: "/archive/" + name, Size: c.size,
		}); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	trace := workload.Zipf(17, c.datasets, c.skew, jobs)
	var dvs []schema.Derivation
	for j, pick := range trace {
		dv := schema.Derivation{TR: analyze.Ref(), Params: map[string]schema.Actual{
			"out": schema.DatasetActual("output", fmt.Sprintf("%s.result.%05d", c.name, j)),
			"in":  schema.DatasetActual("input", fmt.Sprintf("%s.%04d", c.name, pick)),
		}}
		stored, err := cat.AddDerivation(dv)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		dvs = append(dvs, stored)
	}

	cl := grid.NewCluster(g, grid.NewSim(17))
	est := estimator.New(300)
	pl := planner.New(cat, est, cl)
	// Hierarchy-aware placement in every arm: transatlantic staging is
	// priced above its raw bandwidth cost, steering work regional.
	pl.LinkClassWeight = map[string]float64{grid.ClassTransatlantic: 4}
	switch policy {
	case "none":
		pl.Replication = planner.NoReplication{}
	case "popularity", "economy":
		pop := replica.NewPopularity(1500)
		pl.Pop = pop
		pl.SimNow = cl.Sim.Now
		pl.Replication = planner.PopularityDriven{Pop: pop, Now: cl.Sim.Now, Threshold: 2}
		pl.EconomyEviction = policy == "economy"
	default:
		return 0, 0, 0, 0, fmt.Errorf("E17: unknown policy %q", policy)
	}

	graph, err := dag.Build(dvs, cat.Resolver())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	before := planner.DebugStats()
	ex := &executor.Executor{Driver: executor.NewSimDriver(cl), Assign: pl.Assign, OnEvent: pl.OnEvent, Catalog: cat}
	rep, err := ex.Run(graph)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if !rep.Succeeded() {
		return 0, 0, 0, 0, fmt.Errorf("E17: %s/%s at %d hosts failed", c.name, policy, hosts)
	}
	after := planner.DebugStats()
	replicas = e17Counter(after, "replicas_created_total") - e17Counter(before, "replicas_created_total")
	evictions = e17Counter(after, "evictions_total") - e17Counter(before, "evictions_total")
	return rep.Makespan, float64(cl.TransferredBytes) / 1e9, replicas, evictions, nil
}

// E17DynamicReplication is the replication shoot-out on the 48-site
// hierarchical testbed: no-replication vs popularity-driven caching vs
// popularity + economy eviction, for SDSS- and CMS-shaped communities,
// at each host count. Non-archive sites have bounded caches, so the
// popularity arm stops replicating once caches fill while the economy
// arm keeps trading cold replicas for hot ones.
func E17DynamicReplication(hostCounts []int, jobsPerHost int) (Table, error) {
	t := Table{
		Experiment: "E17",
		Title: fmt.Sprintf("dynamic replication at grid scale (%d jobs/host, 48-site bandwidth hierarchy)",
			jobsPerHost),
		Columns: []string{"workload", "hosts", "policy", "makespan-s", "wan-GB",
			"replicas", "evictions", "wan-saved-%"},
		Metrics: map[string]float64{},
	}
	for _, c := range e17Communities() {
		for _, hosts := range hostCounts {
			jobs := jobsPerHost * hosts
			var noneWAN float64
			for _, policy := range []string{"none", "popularity", "economy"} {
				makespan, wanGB, replicas, evictions, err := e17Run(hosts, jobs, c, policy)
				if err != nil {
					return t, err
				}
				if policy == "none" {
					noneWAN = wanGB
				}
				saved := 0.0
				if noneWAN > 0 {
					saved = 100 * (1 - wanGB/noneWAN)
				}
				t.Add(c.name, hosts, policy, makespan, wanGB, replicas, evictions, saved)
				// Headline: WAN saved at the largest host count.
				if hosts == hostCounts[len(hostCounts)-1] && policy != "none" {
					t.Metrics[c.name+"_"+policy+"_wan_saved_pct"] = saved
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"caches at non-archive sites are bounded: popularity stops replicating when they fill; economy evicts the lowest popularity x refetch-cost replica to admit hotter data",
		"wan-saved-% is WAN volume relative to the no-replication arm at the same workload and host count")
	return t, nil
}
