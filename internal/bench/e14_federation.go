package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/federation"
	"chimera/internal/schema"
	"chimera/internal/vds"
)

// e14RTT is the injected per-request member latency, standing in for
// the WAN round-trip a real federation pays per catalog.
const e14RTT = 2 * time.Millisecond

// E14Federation measures federation sync cost: the sequential
// full-export crawl re-fetches and re-imports every member on every
// pass, so pass latency grows with total federation size and with the
// member count times RTT; the parallel delta crawl fans member fetches
// out over a worker pool and ships only changes since each member's
// last sequence, so an unchanged federation costs one cheap round-trip
// per member and zero re-imports, and pass latency tracks the slowest
// member rather than the sum. A final storm pits both paths against
// members ingesting concurrently.
func E14Federation(memberCounts []int, objectsPerMember int) (Table, error) {
	t := Table{
		Experiment: "E14",
		Title:      "federation sync: sequential full crawl vs parallel delta crawl",
		Columns:    []string{"members", "objects", "full-ms", "delta-cold-ms", "delta-warm-ms", "delta-churn-ms", "warm-speedup"},
	}
	for _, n := range memberCounts {
		cats, full, delta, cleanup, err := e14Federation(n, objectsPerMember)
		if err != nil {
			return t, err
		}

		start := time.Now()
		if err := full.Crawl(); err != nil {
			cleanup()
			return t, err
		}
		fullMS := ms(start)

		// Cold delta pass: every member ships a full export, but the
		// fetches run in parallel.
		start = time.Now()
		if err := delta.Crawl(); err != nil {
			cleanup()
			return t, err
		}
		coldMS := ms(start)

		// Warm pass: nothing changed; one "unchanged" round-trip per
		// member, shadow untouched.
		start = time.Now()
		if err := delta.Crawl(); err != nil {
			cleanup()
			return t, err
		}
		warmMS := ms(start)

		// Churn pass: a handful of members took one new dataset each.
		churners := n / 8
		if churners < 1 {
			churners = 1
		}
		for i := 0; i < churners; i++ {
			if err := cats[i].AddDataset(schema.Dataset{Name: fmt.Sprintf("churn-%02d", i)}); err != nil {
				cleanup()
				return t, err
			}
		}
		start = time.Now()
		if err := delta.Crawl(); err != nil {
			cleanup()
			return t, err
		}
		churnMS := ms(start)
		cleanup()

		speedup := 0.0
		if warmMS > 0 {
			speedup = fullMS / warmMS
		}
		t.Add(n, n*objectsPerMember, fullMS, coldMS, warmMS, churnMS, speedup)
	}

	// Concurrent-ingest storm at the largest scale: members keep
	// ingesting while each path crawls repeatedly.
	nStorm := memberCounts[len(memberCounts)-1]
	fullStorm, deltaStorm, err := e14Storm(nStorm, objectsPerMember)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("members answer with a simulated %s RTT; the sequential pass pays it once per member, the delta pass amortizes it across %d workers so wall-clock tracks the slowest member, not the sum", e14RTT, federation.DefaultWorkers),
		"delta-warm is the steady-state cost of watching an unchanged federation: one round-trip per member, no re-import, shadow reused; delta-churn re-imports only after fetching just the changed members' deltas",
		fmt.Sprintf("under concurrent ingest (%d members mutating continuously): full crawl %.1f ms/pass, delta crawl %.1f ms/pass", nStorm, fullStorm, deltaStorm),
	)
	return t, nil
}

// e14Federation builds n member catalogs behind RTT-delayed servers and
// two indexes over them: the sequential full-export oracle and the
// parallel delta crawler.
func e14Federation(n, objectsPerMember int) (cats []*catalog.Catalog, full, delta *federation.Index, cleanup func(), err error) {
	full = federation.NewIndex("full", "bench")
	full.FullCrawl = true
	delta = federation.NewIndex("delta", "bench")
	var servers []*httptest.Server
	cleanup = func() {
		for _, hs := range servers {
			hs.Close()
		}
	}
	for i := 0; i < n; i++ {
		auth := fmt.Sprintf("site%03d", i)
		cat := catalog.New(nil)
		tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/t",
			Args: []schema.FormalArg{{Name: "o", Direction: schema.Out}, {Name: "i", Direction: schema.In}}}
		if err := cat.AddTransformation(tr); err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
		for k := 0; k < objectsPerMember/2; k++ {
			in := fmt.Sprintf("%s.raw%03d", auth, k)
			out := fmt.Sprintf("%s.derived%03d", auth, k)
			if _, err := cat.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
				"o": schema.DatasetActual("output", out),
				"i": schema.DatasetActual("input", in),
			}}); err != nil {
				cleanup()
				return nil, nil, nil, nil, err
			}
		}
		srv := vds.NewServer(auth, cat)
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-time.After(e14RTT):
			case <-r.Context().Done():
				return
			}
			srv.ServeHTTP(w, r)
		}))
		servers = append(servers, hs)
		client := vds.NewClient(hs.URL)
		cats = append(cats, cat)
		full.AddMember(auth, client)
		delta.AddMember(auth, client)
	}
	return cats, full, delta, cleanup, nil
}

// e14Storm crawls both paths while every member ingests continuously,
// returning mean ms per pass for each.
func e14Storm(n, objectsPerMember int) (fullMS, deltaMS float64, err error) {
	cats, full, delta, cleanup, err := e14Federation(n, objectsPerMember)
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()

	stop := make(chan struct{})
	var seq atomic.Int64
	var wg sync.WaitGroup
	for i := range cats {
		wg.Add(1)
		go func(cat *catalog.Catalog) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				_ = cat.AddDataset(schema.Dataset{Name: fmt.Sprintf("live-%d", seq.Add(1))})
			}
		}(cats[i])
	}

	// Interleave passes so both paths see comparably sized catalogs as
	// the writers keep growing them.
	const passes = 3
	for p := 0; p < passes; p++ {
		start := time.Now()
		if err := full.Crawl(); err != nil {
			close(stop)
			wg.Wait()
			return 0, 0, err
		}
		fullMS += ms(start)
		start = time.Now()
		if err := delta.Crawl(); err != nil {
			close(stop)
			wg.Wait()
			return 0, 0, err
		}
		deltaMS += ms(start)
	}
	close(stop)
	wg.Wait()
	return fullMS / passes, deltaMS / passes, nil
}
