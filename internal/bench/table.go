// Package bench implements the experiment harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E10), each
// regenerating a results table whose shape reproduces the corresponding
// claim of the paper's evaluation. cmd/vdg-bench prints the tables;
// bench_test.go exposes each experiment as a testing.B benchmark.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's results.
type Table struct {
	// Experiment is the DESIGN.md identifier (e.g. "E3").
	Experiment string
	// Title restates what is reproduced.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes carry qualitative checks ("who wins", crossovers).
	Notes []string
	// Metrics are machine-readable headline numbers (e.g. speedups) for
	// experiments whose results are emitted as JSON artifacts.
	Metrics map[string]float64 `json:",omitempty"`
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Experiment, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.Experiment, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
