package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/query"
	"chimera/internal/schema"
)

// E12Query measures discovery-query latency against catalog size, the
// planner's indexed path versus a forced full scan (docs/PERF.md), plus
// query throughput while an ingest storm mutates the same catalog.
//
// The timed queries are selective — the discovery patterns of §3.1
// ("find the datasets derived from this input", "which derivation
// produced this file") whose answer is a handful of objects out of
// thousands. The indexed path resolves them through the catalog's
// secondary indexes in time proportional to the answer; the scan path
// evaluates the predicate against every object.
func E12Query(sizes []int, reps int) (Table, error) {
	t := Table{
		Experiment: "E12",
		Title:      fmt.Sprintf("indexed discovery vs full scan (%d reps per query)", reps),
		Columns:    []string{"derivations", "indexed-ms", "scan-ms", "scan/indexed", "agree", "qps-under-ingest"},
	}
	for _, size := range sizes {
		cat, err := e12Catalog(size)
		if err != nil {
			return t, err
		}
		qs, err := e12Queries(size)
		if err != nil {
			return t, err
		}

		agree := true
		start := time.Now()
		for i := 0; i < reps; i++ {
			for _, q := range qs {
				if _, err := query.Run(cat, q.kind, q.expr); err != nil {
					return t, err
				}
			}
		}
		indexedMS := ms(start)

		start = time.Now()
		for i := 0; i < reps; i++ {
			for _, q := range qs {
				if _, err := query.RunScan(cat, q.kind, q.expr); err != nil {
					return t, err
				}
			}
		}
		scanMS := ms(start)

		for _, q := range qs {
			ri, err := query.Run(cat, q.kind, q.expr)
			if err != nil {
				return t, err
			}
			rs, err := query.RunScan(cat, q.kind, q.expr)
			if err != nil {
				return t, err
			}
			if !sameResults(ri, rs) {
				agree = false
			}
		}

		qps, err := e12UnderIngest(cat, qs, size)
		if err != nil {
			return t, err
		}

		ratio := 0.0
		if indexedMS > 0 {
			ratio = scanMS / indexedMS
		}
		t.Add(size, indexedMS, scanMS, ratio, agree, qps)
	}
	t.Notes = append(t.Notes,
		"scan cost grows with the catalog while indexed cost tracks the answer size, so the ratio widens with scale; queries keep their full rate during ingest because each takes one snapshot under a shared read lock")
	return t, nil
}

// e12Query pairs a parsed expression with the kind it runs against.
type e12Q struct {
	kind query.Kind
	expr query.Expr
}

// e12Queries builds the selective query mix for a catalog of the given
// size: point lookups, attribute equality, provenance membership, and
// an indexed conjunct with a residual.
func e12Queries(size int) ([]e12Q, error) {
	mid := size / 2
	srcs := []struct {
		kind query.Kind
		q    string
	}{
		{query.KDataset, fmt.Sprintf("name = out%d and derived", mid)},
		{query.KDataset, fmt.Sprintf("attr.owner = owner%d", mid%ownerGroups)},
		{query.KDataset, fmt.Sprintf(`attr.owner = owner%d and name ~ "out*"`, mid%ownerGroups)},
		{query.KDerivation, fmt.Sprintf("consumes(in%d)", mid)},
		{query.KDerivation, fmt.Sprintf("produces(out%d) and executed", mid)},
	}
	qs := make([]e12Q, 0, len(srcs))
	for _, s := range srcs {
		e, err := query.Parse(s.q)
		if err != nil {
			return nil, err
		}
		qs = append(qs, e12Q{kind: s.kind, expr: e})
	}
	return qs, nil
}

// ownerGroups spreads dataset attributes over this many distinct owner
// values, so attribute queries select ~size/ownerGroups objects.
const ownerGroups = 100

// e12Catalog ingests size derivation chains (inN -> outN through one
// transformation), with owner attributes on the inputs and invocations
// on every other derivation.
func e12Catalog(size int) (*catalog.Catalog, error) {
	cat := catalog.New(nil)
	if err := cat.AddTransformation(ingestTR("gen")); err != nil {
		return nil, err
	}
	for i := 0; i < size; i++ {
		in := fmt.Sprintf("in%d", i)
		if err := cat.AddDataset(schema.Dataset{
			Name:  in,
			Attrs: schema.Attributes{"owner": fmt.Sprintf("owner%d", i%ownerGroups)},
		}); err != nil {
			return nil, err
		}
		dv, err := cat.AddDerivation(ingestDV("gen", in, fmt.Sprintf("out%d", i)))
		if err != nil {
			return nil, err
		}
		if i%2 == 0 {
			if err := cat.AddInvocation(schema.Invocation{
				ID: fmt.Sprintf("iv%d", i), Derivation: dv.ID,
			}); err != nil {
				return nil, err
			}
		}
	}
	return cat, nil
}

// e12UnderIngest runs the query mix from 4 reader goroutines while one
// writer ingests more derivation chains, and returns completed queries
// per second over the ingest window. The writer ingests at least size/4
// chains and keeps going until every reader has finished one full pass,
// so the measured window always contains real query-under-write
// contention.
func e12UnderIngest(cat *catalog.Catalog, qs []e12Q, size int) (float64, error) {
	const readers = 4
	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	counts := make([]atomic.Int64, readers)
	var failed atomic.Bool

	var readWG sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range qs {
					if _, err := query.Run(cat, q.kind, q.expr); err != nil {
						errs <- err
						failed.Store(true)
						return
					}
				}
				counts[r].Add(int64(len(qs)))
			}
		}(r)
	}

	burst := size / 4
	if burst < 1 {
		burst = 1
	}
	allBusy := func() bool {
		for r := range counts {
			if counts[r].Load() == 0 {
				return false
			}
		}
		return true
	}
	for i := 0; (i < burst || !allBusy()) && !failed.Load(); i++ {
		in := fmt.Sprintf("storm-in%d", i)
		if _, err := cat.AddDerivation(ingestDV("gen", in, fmt.Sprintf("storm-out%d", i))); err != nil {
			close(stop)
			readWG.Wait()
			return 0, err
		}
	}
	elapsed := time.Since(start)
	close(stop)
	readWG.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	var total int64
	for r := range counts {
		total += counts[r].Load()
	}
	return float64(total) / elapsed.Seconds(), nil
}

// sameResults compares two query results by identity and order.
func sameResults(a, b query.Results) bool {
	if len(a.Datasets) != len(b.Datasets) ||
		len(a.Transformations) != len(b.Transformations) ||
		len(a.Derivations) != len(b.Derivations) {
		return false
	}
	for i := range a.Datasets {
		if a.Datasets[i].Name != b.Datasets[i].Name {
			return false
		}
	}
	for i := range a.Transformations {
		if a.Transformations[i].Ref() != b.Transformations[i].Ref() {
			return false
		}
	}
	for i := range a.Derivations {
		if a.Derivations[i].ID != b.Derivations[i].ID {
			return false
		}
	}
	return true
}

// A3PlannerOff ablates the predicate planner (DESIGN.md: indexed
// discovery): the same query answered through the index-intersection
// plan and with the planner disabled (full-scan evaluation), per query
// shape, on one catalog of the given size.
func A3PlannerOff(size, reps int) (Table, error) {
	t := Table{
		Experiment: "A3",
		Title:      fmt.Sprintf("ablation: predicate planner off -> full scan (%d derivations, %d reps)", size, reps),
		Columns:    []string{"query", "kind", "indexed-ms", "scan-ms", "scan/indexed", "agree"},
	}
	cat, err := e12Catalog(size)
	if err != nil {
		return t, err
	}
	mid := size / 2
	shapes := []struct {
		kind query.Kind
		q    string
	}{
		{query.KDataset, fmt.Sprintf("name = out%d", mid)},
		{query.KDataset, fmt.Sprintf("attr.owner = owner%d", mid%ownerGroups)},
		{query.KDataset, `derived and name ~ "out1*"`},
		{query.KDerivation, fmt.Sprintf("consumes(in%d)", mid)},
		{query.KDerivation, `executed`},
		{query.KDataset, `name ~ "out*"`}, // no indexable conjunct: both paths scan
	}
	for _, s := range shapes {
		e, err := query.Parse(s.q)
		if err != nil {
			return t, err
		}
		ri, err := query.Run(cat, s.kind, e)
		if err != nil {
			return t, err
		}
		rs, err := query.RunScan(cat, s.kind, e)
		if err != nil {
			return t, err
		}
		agree := sameResults(ri, rs)

		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := query.Run(cat, s.kind, e); err != nil {
				return t, err
			}
		}
		indexedMS := ms(start)

		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := query.RunScan(cat, s.kind, e); err != nil {
				return t, err
			}
		}
		scanMS := ms(start)

		ratio := 0.0
		if indexedMS > 0 {
			ratio = scanMS / indexedMS
		}
		t.Add(s.q, kindName(s.kind), indexedMS, scanMS, ratio, agree)
	}
	t.Notes = append(t.Notes,
		"selective point and membership queries collapse to candidate-set lookups; queries with no indexable conjunct fall back to the same scan, so the planner never loses")
	return t, nil
}

func kindName(k query.Kind) string {
	switch k {
	case query.KDataset:
		return "dataset"
	case query.KTransformation:
		return "transformation"
	default:
		return "derivation"
	}
}
