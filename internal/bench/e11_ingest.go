package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/schema"
)

// E11Ingest measures sustained catalog mutation throughput under
// concurrent writers — the registration storms of production pipelines
// (SDSS MaxBCG: ~5000 derivations plus invocations and replicas; CMS
// production: bursts of concurrent updates) — across four durability
// modes:
//
//	mem         in-memory catalog, no WAL (upper bound)
//	wal         WAL without fsync, group commit
//	fsync-perop WAL with one fsync per record, written inline under the
//	            catalog lock (MaxBatch=1 — the pre-group-commit baseline)
//	fsync-group WAL with group commit: one shared fsync per batch
//
// Each writer registers opsPerWriter derivation chains (every
// registration also auto-registers datasets, so one op logs ~3 WAL
// records). Rates are acknowledged AddDerivation calls per second.
func E11Ingest(writerCounts []int, opsPerWriter int) (Table, error) {
	t := Table{
		Experiment: "E11",
		Title:      fmt.Sprintf("concurrent catalog ingest: group-commit WAL vs per-op fsync (%d derivations/writer)", opsPerWriter),
		Columns:    []string{"writers", "mem-ops/s", "wal-ops/s", "fsync-perop-ops/s", "fsync-group-ops/s", "group/perop"},
	}
	for _, writers := range writerCounts {
		memRate, err := ingestRate(writers, opsPerWriter, nil)
		if err != nil {
			return t, err
		}
		walRate, err := ingestRate(writers, opsPerWriter, &catalog.Options{})
		if err != nil {
			return t, err
		}
		peropRate, err := ingestRate(writers, opsPerWriter, &catalog.Options{Sync: true, MaxBatch: 1})
		if err != nil {
			return t, err
		}
		groupRate, err := ingestRate(writers, opsPerWriter, &catalog.Options{Sync: true})
		if err != nil {
			return t, err
		}
		speedup := 0.0
		if peropRate > 0 {
			speedup = groupRate / peropRate
		}
		t.Add(writers, memRate, walRate, peropRate, groupRate, speedup)
	}
	t.Notes = append(t.Notes,
		"fsync-perop serializes every writer behind one fsync inside the catalog lock; group commit applies in memory under the lock, then shares one off-lock fsync per batch, so throughput scales with writers instead of collapsing")
	return t, nil
}

// ingestRate runs the ingest storm against one catalog and returns
// acknowledged AddDerivation calls per second. opts == nil means a
// purely in-memory catalog.
func ingestRate(writers, opsPerWriter int, opts *catalog.Options) (float64, error) {
	var cat *catalog.Catalog
	if opts == nil {
		cat = catalog.New(nil)
	} else {
		dir, err := os.MkdirTemp("", "e11-ingest")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		cat, err = catalog.Open(dir, nil, *opts)
		if err != nil {
			return 0, err
		}
		defer cat.Close()
	}
	for w := 0; w < writers; w++ {
		if err := cat.AddTransformation(ingestTR(fmt.Sprintf("ingest%d", w))); err != nil {
			return 0, err
		}
	}

	errs := make(chan error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := fmt.Sprintf("ingest%d", w)
			for i := 0; i < opsPerWriter; i++ {
				dv := ingestDV(tr, fmt.Sprintf("w%d-in%d", w, i), fmt.Sprintf("w%d-out%d", w, i))
				if _, err := cat.AddDerivation(dv); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	total := writers * opsPerWriter
	if st := cat.Stats(); st.Derivations != total {
		return 0, fmt.Errorf("E11: ingested %d derivations, want %d", st.Derivations, total)
	}
	return float64(total) / elapsed.Seconds(), nil
}

func ingestTR(name string) schema.Transformation {
	return schema.Transformation{
		Name: name, Kind: schema.Simple, Exec: "/usr/bin/" + name,
		Args: []schema.FormalArg{
			{Name: "out", Direction: schema.Out},
			{Name: "in", Direction: schema.In},
		},
	}
}

func ingestDV(tr, in, out string) schema.Derivation {
	return schema.Derivation{
		TR: tr,
		Params: map[string]schema.Actual{
			"out": schema.DatasetActual("output", out),
			"in":  schema.DatasetActual("input", in),
		},
	}
}
