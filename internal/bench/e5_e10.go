package bench

import (
	"fmt"
	"math"
	"net/http/httptest"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dag"
	"chimera/internal/estimator"
	"chimera/internal/executor"
	"chimera/internal/federation"
	"chimera/internal/grid"
	"chimera/internal/planner"
	"chimera/internal/schema"
	"chimera/internal/trust"
	"chimera/internal/vdl"
	"chimera/internal/vds"
	"chimera/internal/workload"
)

// E5Replication ablates the dynamic replication strategies of refs
// [18,19]: a Zipf-popular archive at one site, analysis jobs placed
// across four sites, and one row per strategy.
func E5Replication(jobs, datasets int) (Table, error) {
	t := Table{
		Experiment: "E5",
		Title:      fmt.Sprintf("dynamic replication strategies (%d jobs over %d Zipf-popular datasets)", jobs, datasets),
		Columns:    []string{"policy", "makespan-s", "wan-GB", "replicas-created", "mean-response-s"},
	}
	trace := workload.Zipf(7, datasets, 1.8, jobs)
	for _, pol := range planner.Policies(3) {
		g, err := grid.FourSiteTestbed([4]int{8, 8, 8, 8})
		if err != nil {
			return t, err
		}
		cat := catalog.New(nil)
		analyze := schema.Transformation{
			Namespace: "zipf", Name: "analyze", Kind: schema.Simple, Exec: "/bin/analyze",
			Args: []schema.FormalArg{
				{Name: "out", Direction: schema.Out},
				{Name: "in", Direction: schema.In},
			}}
		if err := cat.AddTransformation(analyze); err != nil {
			return t, err
		}
		// Archive of popular datasets, all at uchicago.
		for i := 0; i < datasets; i++ {
			name := fmt.Sprintf("archive.%03d", i)
			if err := cat.AddDataset(schema.Dataset{Name: name, Size: 500e6}); err != nil {
				return t, err
			}
			if err := cat.AddReplica(schema.Replica{
				ID: "prim-" + name, Dataset: name, Site: "uchicago",
				PFN: "/archive/" + name, Size: 500e6,
			}); err != nil {
				return t, err
			}
		}
		var dvs []schema.Derivation
		for j, pick := range trace {
			dv := schema.Derivation{TR: analyze.Ref(), Params: map[string]schema.Actual{
				"out": schema.DatasetActual("output", fmt.Sprintf("result.%04d", j)),
				"in":  schema.DatasetActual("input", fmt.Sprintf("archive.%03d", pick)),
			}}
			stored, err := cat.AddDerivation(dv)
			if err != nil {
				return t, err
			}
			dvs = append(dvs, stored)
		}
		cl := grid.NewCluster(g, grid.NewSim(55))
		est := estimator.New(120)
		pl := planner.New(cat, est, cl)
		pl.Replication = pol
		graph, err := dag.Build(dvs, cat.Resolver())
		if err != nil {
			return t, err
		}
		ex := &executor.Executor{Driver: executor.NewSimDriver(cl), Assign: pl.Assign, OnEvent: pl.OnEvent, Catalog: cat}
		rep, err := ex.Run(graph)
		if err != nil {
			return t, err
		}
		if !rep.Succeeded() {
			return t, fmt.Errorf("E5: %s failed", pol.Name())
		}
		extraReplicas := 0
		for i := 0; i < datasets; i++ {
			extraReplicas += len(cat.ReplicasOf(fmt.Sprintf("archive.%03d", i))) - 1
		}
		var sumResp float64
		for _, r := range rep.Results {
			sumResp += r.End - r.Start
		}
		t.Add(pol.Name(), rep.Makespan, float64(cl.TransferredBytes)/1e9, extraReplicas, sumResp/float64(len(rep.Results)))
	}
	t.Notes = append(t.Notes,
		"caching-family strategies cut WAN volume versus no replication, with best-client/broadcast trading extra replicas for locality — the orderings of refs [18,19]")
	return t, nil
}

// E6Estimator shows prediction error shrinking with invocation history,
// and that with history the estimator ranks plans correctly (§5.3).
func E6Estimator(histories []int) (Table, error) {
	t := Table{
		Experiment: "E6",
		Title:      "cost-estimator accuracy vs invocation history",
		Columns:    []string{"history", "true-s", "predicted-s", "error-%", "ranks-plans-correctly"},
	}
	const trueWork = 300.0
	for _, h := range histories {
		est := estimator.New(60) // bad prior: 60s vs true 300s
		for i := 0; i < h; i++ {
			noise := 1 + 0.2*math.Sin(float64(i)*1.7) // deterministic ±20%
			est.Observe("expensive", trueWork*noise, 0, 0, true)
		}
		pred, _ := est.Work("expensive")
		errPct := 100 * math.Abs(pred-trueWork) / trueWork

		// Rank test: chain of 3 expensive vs fan of 6 cheap (true cost
		// 900 serial vs 120 on 6 hosts). With history the expensive
		// plan must rank worse.
		for i := 0; i < h; i++ {
			est.Observe("cheap", 120, 0, 0, true)
		}
		tr1 := schema.Transformation{Name: "expensive", Kind: schema.Simple, Exec: "/x",
			Args: []schema.FormalArg{{Name: "o", Direction: schema.Out}, {Name: "i", Direction: schema.In}}}
		tr2 := schema.Transformation{Name: "cheap", Kind: schema.Simple, Exec: "/c",
			Args: []schema.FormalArg{{Name: "o", Direction: schema.Out}, {Name: "i", Direction: schema.In}}}
		res := schema.MapResolver(tr1, tr2)
		var chain, fan []schema.Derivation
		for i := 0; i < 3; i++ {
			chain = append(chain, schema.Derivation{TR: "expensive", Params: map[string]schema.Actual{
				"o": schema.DatasetActual("output", fmt.Sprintf("c%d", i+1)),
				"i": schema.DatasetActual("input", fmt.Sprintf("c%d", i)),
			}})
		}
		for i := 0; i < 6; i++ {
			fan = append(fan, schema.Derivation{TR: "cheap", Params: map[string]schema.Actual{
				"o": schema.DatasetActual("output", fmt.Sprintf("f%d", i)),
				"i": schema.DatasetActual("input", "src"),
			}})
		}
		gChain, err := dag.Build(chain, res)
		if err != nil {
			return t, err
		}
		gFan, err := dag.Build(fan, res)
		if err != nil {
			return t, err
		}
		eChain := est.EstimateGraph(gChain, 6, nil)
		eFan := est.EstimateGraph(gFan, 6, nil)
		ranks := eChain.Makespan > eFan.Makespan

		t.Add(h, trueWork, pred, errPct, ranks)
	}
	t.Notes = append(t.Notes,
		"with zero history the prior misleads; a handful of invocations suffices to rank alternative plans correctly")
	return t, nil
}

// E7Federation measures federated-index discovery across catalog
// counts: query latency via the index stays flat while touching every
// catalog directly grows linearly (Figure 4's motivation), and
// cross-catalog lineage chains resolve (Figure 3).
func E7Federation(catalogCounts []int) (Table, error) {
	t := Table{
		Experiment: "E7",
		Title:      "federated index vs per-catalog discovery; distributed lineage",
		Columns:    []string{"catalogs", "objects", "crawl-ms", "index-query-ms", "direct-query-ms", "xcat-lineage-steps"},
	}
	for _, n := range catalogCounts {
		reg := vds.NewRegistry()
		ix := federation.NewIndex("collab", "collaboration")
		var clients []*vds.Client
		var servers []*httptest.Server
		objects := 0
		for i := 0; i < n; i++ {
			cat := catalog.New(nil)
			auth := fmt.Sprintf("cat%02d", i)
			tr := schema.Transformation{Name: "t", Kind: schema.Simple, Exec: "/t",
				Args: []schema.FormalArg{{Name: "o", Direction: schema.Out}, {Name: "i", Direction: schema.In}}}
			if err := cat.AddTransformation(tr); err != nil {
				return t, err
			}
			for k := 0; k < 25; k++ {
				in := fmt.Sprintf("%s.raw%02d", auth, k)
				out := fmt.Sprintf("%s.derived%02d", auth, k)
				if i > 0 && k == 0 {
					// Chain across catalogs: consume the previous
					// catalog's derived00 via a vdp hyperlink.
					in = fmt.Sprintf("vdp://cat%02d/cat%02d.derived00", i-1, i-1)
				}
				if _, err := cat.AddDerivation(schema.Derivation{TR: "t", Params: map[string]schema.Actual{
					"o": schema.DatasetActual("output", out),
					"i": schema.DatasetActual("input", in),
				}}); err != nil {
					return t, err
				}
				objects += 2
			}
			hs := httptest.NewServer(vds.NewServer(auth, cat))
			servers = append(servers, hs)
			client := vds.NewClient(hs.URL)
			clients = append(clients, client)
			reg.Register(auth, hs.URL)
			ix.AddMember(auth, client)
		}

		start := time.Now()
		if err := ix.Crawl(); err != nil {
			return t, err
		}
		crawlMS := ms(start)

		const q = `name ~ "*derived07"`
		start = time.Now()
		hits, err := ix.SearchDatasets(q)
		if err != nil {
			return t, err
		}
		indexMS := ms(start)
		if len(hits) != n {
			return t, fmt.Errorf("E7: index found %d, want %d", len(hits), n)
		}

		start = time.Now()
		direct := 0
		for _, c := range clients {
			res, err := c.SearchDatasets(q)
			if err != nil {
				return t, err
			}
			direct += len(res)
		}
		directMS := ms(start)
		if direct != n {
			return t, fmt.Errorf("E7: direct found %d, want %d", direct, n)
		}

		lastAuth := fmt.Sprintf("cat%02d", n-1)
		lin, err := federation.Lineage(reg, lastAuth, lastAuth+".derived00", n+1)
		if err != nil {
			return t, err
		}
		t.Add(n, objects, crawlMS, indexMS, directMS, len(lin.Steps))

		for _, hs := range servers {
			hs.Close()
		}
	}
	t.Notes = append(t.Notes,
		"index queries stay O(1) in catalog count after a crawl; lineage chains stitched across every catalog boundary (Figure 3)")
	return t, nil
}

// E8Trust measures the signing/verification machinery of §4.2 at
// catalog scale: throughput, plus detection of tampered entries and
// untrusted signers.
func E8Trust(sizes []int) (Table, error) {
	t := Table{
		Experiment: "E8",
		Title:      "signed catalog entries: overhead and tamper rejection",
		Columns:    []string{"entries", "sign-ms", "verify-ms", "per-entry-us", "tampered-rejected", "untrusted-rejected"},
	}
	signer, err := trust.NewAuthority("curator")
	if err != nil {
		return t, err
	}
	outsider, err := trust.NewAuthority("outsider")
	if err != nil {
		return t, err
	}
	store := trust.NewStore()
	store.AddRoot(signer.Authority)

	for _, n := range sizes {
		payloads := make([][]byte, n)
		ids := make([]string, n)
		for i := range payloads {
			dv := schema.Derivation{TR: "t", Params: map[string]schema.Actual{
				"p": schema.StringActual(fmt.Sprint(i)),
			}}.Canonicalize()
			ids[i] = dv.ID
			payloads[i], _ = schema.CanonicalBytes(dv)
		}
		start := time.Now()
		sigs := make([]trust.Signature, n)
		for i := range payloads {
			sigs[i] = signer.SignEntry(trust.KindDerivation, ids[i], payloads[i])
		}
		signMS := ms(start)

		start = time.Now()
		for i := range payloads {
			if err := store.Verify(trust.KindDerivation, ids[i], payloads[i], sigs[i]); err != nil {
				return t, err
			}
		}
		verifyMS := ms(start)

		// Tampering: flip one byte of each payload; all must fail.
		tampered := 0
		for i := 0; i < n; i += max(1, n/50) {
			bad := append([]byte(nil), payloads[i]...)
			bad[len(bad)/2] ^= 1
			if store.Verify(trust.KindDerivation, ids[i], bad, sigs[i]) != nil {
				tampered++
			}
		}
		checked := 0
		for i := 0; i < n; i += max(1, n/50) {
			checked++
		}

		// Untrusted signer.
		usig := outsider.SignEntry(trust.KindDerivation, ids[0], payloads[0])
		untrusted := store.Verify(trust.KindDerivation, ids[0], payloads[0], usig) != nil

		t.Add(n, signMS, verifyMS, 1000*(signMS+verifyMS)/float64(n),
			fmt.Sprintf("%d/%d", tampered, checked), untrusted)
	}
	t.Notes = append(t.Notes,
		"per-entry cost is tens of microseconds — negligible next to derivations measured in CPU-hours")
	return t, nil
}

// E9Shipping sweeps dataset size for a fixed procedure provisioning
// cost, reproducing §5.2's four-pattern tradeoff: ship small data to
// the procedure, ship the procedure to big data, with a crossover in
// between.
func E9Shipping(sizes []int64) (Table, error) {
	t := Table{
		Experiment: "E9",
		Title:      "procedure/data shipping crossover (install cost 30 s, 30 MB/s WAN)",
		Columns:    []string{"data-MB", "ship-data-s", "ship-proc-s", "auto-s", "auto-choice"},
	}
	const installSecs = "30"
	for _, size := range sizes {
		var perMode [3]float64
		var autoSite string
		for mi, mode := range []planner.Mode{planner.ShipDataToProcedure, planner.ShipProcedureToData, planner.Auto} {
			g, err := grid.FourSiteTestbed([4]int{2, 2, 2, 2})
			if err != nil {
				return t, err
			}
			cat := catalog.New(nil)
			tr := schema.Transformation{
				Name: "proc", Kind: schema.Simple, Exec: "/bin/proc",
				Profile: map[string]string{
					planner.ProfileHomeSites:      "anl",
					planner.ProfileInstallSeconds: installSecs,
				},
				Args: []schema.FormalArg{
					{Name: "o", Direction: schema.Out},
					{Name: "i", Direction: schema.In},
				}}
			if err := cat.AddTransformation(tr); err != nil {
				return t, err
			}
			if err := cat.AddDataset(schema.Dataset{Name: "big", Size: size}); err != nil {
				return t, err
			}
			if err := cat.AddReplica(schema.Replica{ID: "r", Dataset: "big", Site: "fnal", PFN: "/big", Size: size}); err != nil {
				return t, err
			}
			dv, err := cat.AddDerivation(schema.Derivation{TR: "proc", Params: map[string]schema.Actual{
				"o": schema.DatasetActual("output", "out"),
				"i": schema.DatasetActual("input", "big"),
			}})
			if err != nil {
				return t, err
			}
			cl := grid.NewCluster(g, grid.NewSim(66))
			est := estimator.New(100)
			pl := planner.New(cat, est, cl)
			pl.Mode = mode
			graph, err := dag.Build([]schema.Derivation{dv}, cat.Resolver())
			if err != nil {
				return t, err
			}
			node, _ := graph.Node(dv.ID)
			placement, err := pl.Assign(node)
			if err != nil {
				return t, err
			}
			if mode == planner.Auto {
				autoSite = placement.Site
			}
			// Realize the placement: execution time includes install
			// cost (procedure away from home) and staging.
			work := 100.0
			if placement.Site != "anl" {
				work += 30
			}
			placement.Work = work
			ex := &executor.Executor{Driver: executor.NewSimDriver(cl),
				Assign: func(*dag.Node) (executor.Placement, error) { return placement, nil }}
			rep, err := ex.Run(graph)
			if err != nil {
				return t, err
			}
			perMode[mi] = rep.Makespan
		}
		choice := "ship-data"
		if autoSite == "fnal" {
			choice = "ship-procedure"
		} else if autoSite != "anl" {
			choice = "third-site"
		}
		t.Add(float64(size)/1e6, perMode[0], perMode[1], perMode[2], choice)
	}
	t.Notes = append(t.Notes,
		"small datasets favor moving data to the procedure; past the crossover the planner pays the provisioning cost and runs at the data (§5.2 patterns 2 vs 3)")
	return t, nil
}

// E10VDL measures the virtual data language at campaign scale:
// parse/print round-trip throughput and compound expansion.
func E10VDL(counts []int) (Table, error) {
	t := Table{
		Experiment: "E10",
		Title:      "VDL parse/print round-trip and compound expansion at scale",
		Columns:    []string{"definitions", "parse-ms", "print-ms", "roundtrip-ok", "expand-ms", "leaves"},
	}
	for _, n := range counts {
		src := syntheticVDL(n)
		start := time.Now()
		prog, err := vdl.Parse(src)
		if err != nil {
			return t, err
		}
		parseMS := ms(start)

		start = time.Now()
		text := vdl.Print(prog)
		printMS := ms(start)

		prog2, err := vdl.Parse(text)
		roundOK := err == nil &&
			len(prog2.Transformations) == len(prog.Transformations) &&
			len(prog2.Derivations) == len(prog.Derivations)

		// Expansion: a compound over two stages applied n/10 times.
		res := schema.MapResolver(prog.Transformations...)
		start = time.Now()
		leaves := 0
		for _, dv := range prog.Derivations {
			ls, err := schema.ExpandDerivation(dv, res)
			if err != nil {
				return t, err
			}
			leaves += len(ls)
		}
		expandMS := ms(start)
		t.Add(2*n, parseMS, printMS, roundOK, expandMS, leaves)
	}
	t.Notes = append(t.Notes,
		"the textual VDL round-trips exactly; compound definitions expand deterministically into executable leaves")
	return t, nil
}

// syntheticVDL builds a program with n TRs and n DVs, a tenth of them
// compound.
func syntheticVDL(n int) string {
	var b []byte
	app := func(s string) { b = append(b, s...) }
	app(`TR stage( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/stage";
}
TR duo( input i, inout mid=@{inout:"m":""}, output o ) {
  stage( o=${output:mid}, i=${i} );
  stage( o=${o}, i=${input:mid} );
}
`)
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			app(fmt.Sprintf("DV d%d->duo( i=@{input:\"in%d\"}, o=@{output:\"out%d\"} );\n", i, i, i))
		} else {
			app(fmt.Sprintf("DV d%d->stage( i=@{input:\"in%d\"}, o=@{output:\"out%d\"} );\n", i, i, i))
		}
	}
	for i := 0; i < n-2; i++ {
		app(fmt.Sprintf(`TR extra%d( output o, input i, none p="%d" ) { argument a = "-p "${none:p}; exec = "/bin/x%d"; }`+"\n", i, i, i))
	}
	return string(b)
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
