package vds

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/obs"
	"chimera/internal/schema"
)

// TestStatusWriterFlusher: the middleware's response wrapper must pass
// http.Flusher through (streaming handlers behind it were silently
// buffered before) and default the recorded status to 200 on a bare
// Write.
func TestStatusWriterFlusher(t *testing.T) {
	srv := NewServer("flush.test", catalog.New(nil))
	flushed := false
	h := srv.instrument("GET /stream", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware writer does not implement http.Flusher")
		}
		if _, err := w.Write([]byte("chunk")); err != nil {
			t.Fatal(err)
		}
		f.Flush()
		flushed = true
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/stream", nil))
	if !flushed {
		t.Fatal("handler did not run to Flush")
	}
	if !rec.Flushed {
		t.Error("Flush not forwarded to the underlying writer")
	}
	if rec.Code != 200 {
		t.Errorf("status = %d, want implicit 200", rec.Code)
	}

	// Unwrap must expose the underlying writer for ResponseController.
	sw := &statusWriter{ResponseWriter: rec}
	if sw.Unwrap() != http.ResponseWriter(rec) {
		t.Error("Unwrap does not return the wrapped writer")
	}
}

func TestSlowRing(t *testing.T) {
	sr := newSlowRing(2)
	base := time.Now()
	sc := obs.SpanContext{Trace: "0af7651916cd43dd8448eb211c80319c", Span: 7}
	sr.note("GET /a", 200, base, 10*time.Millisecond, sc)
	sr.note("GET /b", 200, base, 30*time.Millisecond, obs.SpanContext{})
	sr.note("GET /c", 500, base, 20*time.Millisecond, obs.SpanContext{})
	// Faster than everything retained: rejected.
	sr.note("GET /d", 200, base, 1*time.Millisecond, obs.SpanContext{})

	got := sr.snapshot()
	if len(got) != 2 {
		t.Fatalf("retained %d entries, want 2", len(got))
	}
	if got[0].Route != "GET /b" || got[1].Route != "GET /c" {
		t.Errorf("slowest-first order wrong: %+v", got)
	}
	for _, e := range got {
		if e.Route == "GET /a" {
			t.Error("fastest entry not displaced")
		}
	}

	// Trace identity rides along when present.
	sr2 := newSlowRing(4)
	sr2.note("GET /t", 200, base, time.Millisecond, sc)
	e := sr2.snapshot()[0]
	if e.TraceID != sc.Trace || e.SpanID != "7" {
		t.Errorf("trace identity = %q/%q", e.TraceID, e.SpanID)
	}
}

// TestDebugVDC exercises the introspection endpoint: journal cursor,
// index cardinalities, slow requests, and the OnDebug hook.
func TestDebugVDC(t *testing.T) {
	cat := catalog.New(nil)
	if err := cat.AddDataset(schema.Dataset{Name: "d1", Attrs: schema.Attributes{"owner": "ivan"}}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer("debug.test", cat)
	srv.Tracer = obs.NewTracer()
	srv.OnDebug = func(info map[string]any) { info["extra"] = "hook" }

	// One API request so the slow ring has an entry with a trace ID.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/info", nil))
	if rec.Code != 200 {
		t.Fatalf("/v1/info: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vdc", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/vdc: %d %s", rec.Code, rec.Body.String())
	}
	var info struct {
		Name    string `json:"name"`
		Journal struct {
			Seq     uint64  `json:"seq"`
			Window  int     `json:"window"`
			Entries int     `json:"entries"`
			Occ     float64 `json:"occupancy"`
		} `json:"journal"`
		Indexes    map[string]int `json:"indexes"`
		Slow       []slowEntry    `json:"slow_requests"`
		Goroutines int            `json:"goroutines"`
		TraceSpans int            `json:"trace_spans"`
		Extra      string         `json:"extra"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("decode: %v\n%s", err, rec.Body.String())
	}
	if info.Name != "debug.test" {
		t.Errorf("name = %q", info.Name)
	}
	if info.Journal.Seq == 0 || info.Journal.Entries == 0 || info.Journal.Window == 0 {
		t.Errorf("journal cursor empty: %+v", info.Journal)
	}
	if info.Indexes["dataset_attr_keys"] != 1 || info.Indexes["dataset_attr_values"] != 1 {
		t.Errorf("index cardinalities wrong: %v", info.Indexes)
	}
	if len(info.Slow) == 0 || info.Slow[0].TraceID == "" {
		t.Errorf("slow ring missing the traced request: %+v", info.Slow)
	}
	if info.Goroutines <= 0 || info.TraceSpans == 0 {
		t.Errorf("runtime fields: goroutines=%d trace_spans=%d", info.Goroutines, info.TraceSpans)
	}
	if info.Extra != "hook" {
		t.Error("OnDebug hook not applied")
	}
}

// TestClientInjectsTraceparent: a context carrying a span makes the
// client stamp the outgoing request, and the server span parents under
// it — the client half of cross-process propagation.
func TestClientInjectsTraceparent(t *testing.T) {
	serverTracer := obs.NewTracer()
	cat := catalog.New(nil)
	srv := NewServer("inject.test", cat)
	srv.Tracer = serverTracer
	var gotHeader string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get("traceparent")
		srv.ServeHTTP(w, r)
	}))
	defer hs.Close()
	client := NewClient(hs.URL)

	clientTracer := obs.NewTracer()
	ctx, span := obs.StartSpan(obs.WithTracer(context.Background(), clientTracer), "caller")
	if _, err := client.ExportCtx(ctx); err != nil {
		t.Fatal(err)
	}
	span.End()

	want := span.Context().Traceparent()
	if gotHeader == "" || gotHeader != want {
		t.Fatalf("traceparent header = %q, want %q", gotHeader, want)
	}
	// Server span joined the caller's trace, under the caller's span.
	deadline := time.Now().Add(2 * time.Second)
	for serverTracer.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	spans := serverTracer.Spans()
	if len(spans) == 0 {
		t.Fatal("server recorded no span")
	}
	if spans[0].Trace != span.Context().Trace || spans[0].Parent != span.Context().Span {
		t.Errorf("server span trace=%q parent=%d, want trace=%q parent=%d",
			spans[0].Trace, spans[0].Parent, span.Context().Trace, span.Context().Span)
	}

	// Without a span in the context, no header is sent.
	gotHeader = "unset-sentinel"
	if _, err := client.ExportCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gotHeader != "" {
		t.Errorf("span-less request sent traceparent %q", gotHeader)
	}
}
