package vds

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"chimera/internal/catalog"
)

// TestMetricsEndpoint serves a request through the instrumented mux
// and asserts /metrics reflects it: the route-labeled counter, the
// latency histogram, and the healthz endpoint staying out of the
// per-route series.
func TestMetricsEndpoint(t *testing.T) {
	srv := NewServer("metrics.test", catalog.New(nil))

	before := scrapeCount(t, srv, `vdc_http_requests_total{route="GET /v1/info",code="200"}`)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/info", nil))
	if rec.Code != 200 {
		t.Fatalf("/v1/info: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("/healthz: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	after := scrapeCount(t, srv, `vdc_http_requests_total{route="GET /v1/info",code="200"}`)
	if after != before+1 {
		t.Errorf("request counter went %d -> %d, want +1\n%s", before, after, body)
	}
	if !strings.Contains(body, `vdc_http_request_seconds_count{route="GET /v1/info"}`) {
		t.Errorf("latency histogram missing from exposition:\n%s", body)
	}
	if strings.Contains(body, `route="GET /healthz"`) || strings.Contains(body, `route="GET /metrics"`) {
		t.Errorf("operational endpoints leaked into per-route metrics:\n%s", body)
	}

	// A 404 on an instrumented route surfaces under its own code label.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/datasets/absent", nil))
	if rec.Code != 404 {
		t.Fatalf("missing dataset: %d", rec.Code)
	}
	if got := scrapeCount(t, srv, `vdc_http_requests_total{route="GET /v1/datasets/{name...}",code="404"}`); got < 1 {
		t.Error("404 not counted under its route/code")
	}
}

// scrapeCount reads one counter value out of the /metrics text.
func scrapeCount(t *testing.T, srv *Server, series string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return n
		}
	}
	return 0
}
