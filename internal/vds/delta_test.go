package vds

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"chimera/internal/schema"
)

func TestExportSinceDeltaRoundTrip(t *testing.T) {
	cat, client := startServer(t, "delta-vdc")

	if err := cat.AddDataset(schema.Dataset{Name: "a"}); err != nil {
		t.Fatal(err)
	}

	// First contact: zeros force a full export.
	d, n, err := client.ExportSince(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full || len(d.Export.Datasets) != 1 || n <= 0 {
		t.Fatalf("first contact: full=%v datasets=%d bytes=%d", d.Full, len(d.Export.Datasets), n)
	}

	// Unchanged member: empty delta, tiny response.
	d2, n2, err := client.ExportSince(context.Background(), d.Seq, d.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Empty() || d2.Full {
		t.Fatalf("unchanged: %+v", d2)
	}
	if n2 >= n {
		t.Errorf("unchanged response (%d bytes) not smaller than full (%d)", n2, n)
	}

	// One new object: delta ships exactly it.
	if err := cat.AddDataset(schema.Dataset{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	d3, _, err := client.ExportSince(context.Background(), d.Seq, d.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Full || len(d3.Export.Datasets) != 1 || d3.Export.Datasets[0].Name != "b" {
		t.Fatalf("delta: %+v", d3)
	}

	// Legacy full export still works on the same route.
	exp, err := client.Export()
	if err != nil || len(exp.Datasets) != 2 {
		t.Fatalf("legacy export: %d datasets, err %v", len(exp.Datasets), err)
	}
}

func TestExportSinceWindowOverflow(t *testing.T) {
	cat, client := startServer(t, "overflow-vdc")
	cat.SetJournalWindow(4)

	if err := cat.AddDataset(schema.Dataset{Name: "base"}); err != nil {
		t.Fatal(err)
	}
	d, _, err := client.ExportSince(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := cat.AddDataset(schema.Dataset{Name: schema.Dataset{Name: "x"}.Name + string(rune('a'+i))}); err != nil {
			t.Fatal(err)
		}
	}
	d2, _, err := client.ExportSince(context.Background(), d.Seq, d.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Full || len(d2.Export.Datasets) != 21 {
		t.Fatalf("overflowed caller should get full export: full=%v n=%d", d2.Full, len(d2.Export.Datasets))
	}
}

func TestExportSinceBadParams(t *testing.T) {
	_, client := startServer(t, "bad-vdc")
	var out any
	err := client.do("GET", "/v1/export?since=notanumber&instance=0", nil, &out)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusBadRequest {
		t.Fatalf("want 400 RemoteError, got %v", err)
	}
}

func TestResponseTooLarge(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 4096))
	}))
	defer hs.Close()

	client := NewClient(hs.URL)
	client.MaxResponseBytes = 1024
	var out any
	err := client.do("GET", "/v1/export", nil, &out)
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("want ErrResponseTooLarge, got %v", err)
	}
}

func TestClientRetriesIdempotentGet(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer hs.Close()

	client := NewClient(hs.URL)
	client.RetryBackoff = time.Millisecond
	var out map[string]bool
	if err := client.do("GET", "/x", nil, &out); err != nil {
		t.Fatalf("retried GET should succeed: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls: %d want 3", calls.Load())
	}
}

func TestClientDoesNotRetryMutations(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	client := NewClient(hs.URL)
	client.RetryBackoff = time.Millisecond
	err := client.do("PUT", "/x", map[string]string{"a": "b"}, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Errorf("mutation retried: %d calls", calls.Load())
	}
}

func TestClientRetryStopsOnContextCancel(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	client := NewClient(hs.URL)
	client.Retries = 10
	client.RetryBackoff = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := client.ExportSince(ctx, 0, 0)
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Errorf("retry loop outlived its context: %v", time.Since(start))
	}
	// The surfaced error should be the server's, not a bare context error.
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Errorf("want RemoteError from last attempt, got %v", err)
	}
}

func TestDefaultClientHasTimeout(t *testing.T) {
	c := NewClient("http://example.invalid")
	if c.http().Timeout == 0 {
		t.Fatal("default HTTP client has no timeout")
	}
	override := &http.Client{Timeout: time.Second}
	c.HTTP = override
	if c.http() != override {
		t.Fatal("HTTP override not honored")
	}
}
