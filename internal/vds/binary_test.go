package vds

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/codec"
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

func seedExportState(t *testing.T, cat *catalog.Catalog) {
	t.Helper()
	if err := cat.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if err := cat.AddDataset(schema.Dataset{Name: name, Attrs: schema.Attributes{"k": name}}); err != nil {
			t.Fatal(err)
		}
		if err := cat.AddReplica(schema.Replica{ID: "r-" + name, Dataset: name, Site: "anl", PFN: "/" + name}); err != nil {
			t.Fatal(err)
		}
	}
	dv, err := cat.AddDerivation(chainDV("t", "a", "a.out"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddInvocation(schema.Invocation{
		ID: "iv", Derivation: dv.ID, Site: "anl", Host: "n1",
		Start: time.Unix(50, 0).UTC(), End: time.Unix(60, 0).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
}

// stripAccept simulates a pre-negotiation server: it never sees (and
// so never honors) the Accept header.
func stripAccept(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept")
		h.ServeHTTP(w, r)
	})
}

// TestBinaryExportNegotiation: a binary client against a
// binary-capable server gets the binary body; against a legacy server
// it degrades to JSON. Either way the decoded export is identical to
// the plain JSON client's.
func TestBinaryExportNegotiation(t *testing.T) {
	cat := catalog.New(dtype.StandardRegistry())
	seedExportState(t, cat)
	srv := NewServer("nego-vdc", cat)

	modern := httptest.NewServer(srv)
	defer modern.Close()
	legacy := httptest.NewServer(stripAccept(srv))
	defer legacy.Close()

	jsonClient := NewClient(modern.URL)
	binClient := NewClient(modern.URL)
	binClient.Binary = true
	downClient := NewClient(legacy.URL)
	downClient.Binary = true

	want, err := jsonClient.Export()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := schema.CanonicalBytes(want)

	for name, cl := range map[string]*Client{"binary": binClient, "negotiated-down": downClient} {
		got, err := cl.Export()
		if err != nil {
			t.Fatalf("%s export: %v", name, err)
		}
		gotJSON, _ := schema.CanonicalBytes(got)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("%s export differs from JSON export", name)
		}

		gd, n, err := cl.ExportSince(t.Context(), 0, 0)
		if err != nil || n == 0 {
			t.Fatalf("%s delta: %v (n=%d)", name, err, n)
		}
		wd, _, err := jsonClient.ExportSince(t.Context(), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(gd)
		wj, _ := json.Marshal(wd)
		if string(gj) != string(wj) {
			t.Fatalf("%s delta differs:\n%s\n---\n%s", name, gj, wj)
		}
	}
}

// TestBinaryWireContentType pins the negotiation matrix at the HTTP
// level: Accept decides the representation, JSON stays the default.
func TestBinaryWireContentType(t *testing.T) {
	cat := catalog.New(dtype.StandardRegistry())
	seedExportState(t, cat)
	hs := httptest.NewServer(NewServer("ct-vdc", cat))
	defer hs.Close()

	cases := []struct {
		accept, wantCT string
	}{
		{"", codec.JSONContentType},
		{"application/json", codec.JSONContentType},
		{"*/*", codec.JSONContentType},
		{codec.BinaryContentType, codec.BinaryContentType},
		{codec.BinaryContentType + ", application/json;q=0.5", codec.BinaryContentType},
	}
	for _, path := range []string{"/v1/export", "/v1/export?since=0&instance=0"} {
		for _, tc := range cases {
			req, _ := http.NewRequest("GET", hs.URL+path, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
				t.Errorf("%s with Accept=%q: Content-Type %q, want %q", path, tc.accept, ct, tc.wantCT)
			}
		}
	}
}

// TestBinaryDeltaSmallerOnWire: the negotiated binary delta body must
// be materially smaller than the JSON body for the same state.
func TestBinaryDeltaSmallerOnWire(t *testing.T) {
	cat := catalog.New(dtype.StandardRegistry())
	if err := cat.AddTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("lfn://cms/run%03d/reco-%04d.root", i%40, i)
		if err := cat.AddDataset(schema.Dataset{Name: name, Size: int64(i) * 7919, Attrs: schema.Attributes{
			"run": fmt.Sprint(i % 40), "site": "anl", "owner": "cms-prod", "quality": "approved",
		}}); err != nil {
			t.Fatal(err)
		}
		if err := cat.AddReplica(schema.Replica{
			ID: fmt.Sprintf("rep-%04d", i), Dataset: name, Site: "anl",
			PFN: "gsiftp://gridftp.anl.gov" + name[5:], Size: int64(i) * 7919,
			Attrs: schema.Attributes{"checksum": fmt.Sprintf("adler32:%08x", i*2654435761)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	hs := httptest.NewServer(NewServer("size-vdc", cat))
	defer hs.Close()

	jc := NewClient(hs.URL)
	bc := NewClient(hs.URL)
	bc.Binary = true
	_, nj, err := jc.ExportSince(t.Context(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, nb, err := bc.ExportSince(t.Context(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nb*2 > nj {
		t.Fatalf("binary delta %d bytes, JSON %d: want >=2x smaller", nb, nj)
	}
}
