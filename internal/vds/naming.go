package vds

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/schema"
)

// The vdp:// scheme names objects in other virtual data catalogs,
// giving the inter-catalog hyperlinks of Figures 2 and 3:
//
//	vdp://physics.wisconsin.edu/srch
//
// names the object "srch" in the catalog operated by the authority
// "physics.wisconsin.edu". Object names may themselves contain slashes.

// Scheme is the inter-catalog reference scheme.
const Scheme = "vdp://"

// Name is a parsed vdp reference.
type Name struct {
	// Authority identifies the catalog service.
	Authority string
	// Object is the name/ref/id within that catalog.
	Object string
}

// String re-renders the reference.
func (n Name) String() string { return Scheme + n.Authority + "/" + n.Object }

// IsVDP reports whether s is a vdp:// reference.
func IsVDP(s string) bool { return strings.HasPrefix(s, Scheme) }

// ParseName splits a vdp:// reference.
func ParseName(s string) (Name, error) {
	if !IsVDP(s) {
		return Name{}, fmt.Errorf("vds: %q is not a vdp:// reference", s)
	}
	rest := strings.TrimPrefix(s, Scheme)
	i := strings.Index(rest, "/")
	if i <= 0 || i == len(rest)-1 {
		return Name{}, fmt.Errorf("vds: malformed vdp reference %q", s)
	}
	return Name{Authority: rest[:i], Object: rest[i+1:]}, nil
}

// Registry maps catalog authorities to service base URLs. In
// production an authority would resolve through service discovery; in
// tests it maps to httptest servers.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Client
}

// NewRegistry returns an empty authority registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]*Client)} }

// Register binds an authority to a service base URL.
func (r *Registry) Register(authority, baseURL string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[authority] = NewClient(baseURL)
}

// ClientFor returns the client for an authority.
func (r *Registry) ClientFor(authority string) (*Client, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.m[authority]
	if !ok {
		return nil, fmt.Errorf("vds: unknown catalog authority %q", authority)
	}
	return c, nil
}

// Authorities lists registered authorities.
func (r *Registry) Authorities() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for a := range r.m {
		out = append(out, a)
	}
	return out
}

// ImportTransformation resolves a vdp:// transformation reference:
// fetch the definition from the remote catalog, register it locally
// (tagged with its origin), and return it. Compound transformations
// pull their callees recursively, so a compound defined at Wisconsin
// over Illinois transformations (Figure 2) becomes locally executable.
func ImportTransformation(local *catalog.Catalog, reg *Registry, ref string) (schema.Transformation, error) {
	return importTR(local, reg, ref, 0)
}

func importTR(local *catalog.Catalog, reg *Registry, ref string, depth int) (schema.Transformation, error) {
	if depth > 16 {
		return schema.Transformation{}, errors.New("vds: transformation import chain too deep")
	}
	if !IsVDP(ref) {
		return local.Transformation(ref)
	}
	name, err := ParseName(ref)
	if err != nil {
		return schema.Transformation{}, err
	}
	client, err := reg.ClientFor(name.Authority)
	if err != nil {
		return schema.Transformation{}, err
	}
	tr, err := client.Transformation(name.Object)
	if err != nil {
		return schema.Transformation{}, fmt.Errorf("vds: import %s: %w", ref, err)
	}
	if tr.Attrs == nil {
		tr.Attrs = schema.Attributes{}
	}
	tr.Attrs["importedFrom"] = ref
	// The signature may reference the remote community's type
	// vocabulary; pull any unknown names before registering.
	if err := importTypesFor(local, client, tr); err != nil {
		return schema.Transformation{}, err
	}
	if err := local.AddTransformation(tr); err != nil && !errors.Is(err, catalog.ErrExists) {
		return schema.Transformation{}, err
	}
	// Recursively import callees of compounds: they may be names local
	// to the remote catalog or further vdp references.
	for _, call := range tr.Calls {
		callee := call.TR
		if !IsVDP(callee) {
			if _, err := local.Transformation(callee); err == nil {
				continue
			}
			callee = (Name{Authority: name.Authority, Object: call.TR}).String()
		}
		if _, err := importTR(local, reg, callee, depth+1); err != nil {
			return schema.Transformation{}, err
		}
	}
	return tr, nil
}

// importTypesFor merges the remote type vocabulary needed by a
// transformation's signature into the local catalog. The remote
// registry is fetched only when an unknown name appears.
func importTypesFor(local *catalog.Catalog, client *Client, tr schema.Transformation) error {
	needed := false
	for _, f := range tr.Args {
		for _, t := range f.Types {
			if local.Types().CheckType(t) != nil {
				needed = true
			}
		}
	}
	if !needed {
		return nil
	}
	remote, err := client.Types()
	if err != nil {
		return fmt.Errorf("vds: import types: %w", err)
	}
	for _, d := range dtype.Dimensions() {
		for _, name := range sortedByDepth(remote, d) {
			parent := ""
			if anc := remote.Ancestors(d, name); len(anc) > 0 {
				parent = anc[0]
			}
			if err := local.DefineType(d, name, parent); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedByDepth lists a dimension's names parents-first.
func sortedByDepth(r *dtype.Registry, d dtype.Dimension) []string {
	names := r.Names(d)
	sort.Slice(names, func(i, j int) bool {
		di, dj := r.Depth(d, names[i]), r.Depth(d, names[j])
		if di != dj {
			return di < dj
		}
		return names[i] < names[j]
	})
	return names
}

// Resolver returns a schema.Resolver that answers from the local
// catalog and imports vdp:// references on demand.
func Resolver(local *catalog.Catalog, reg *Registry) schema.Resolver {
	return func(ref string) (schema.Transformation, error) {
		if IsVDP(ref) {
			return ImportTransformation(local, reg, ref)
		}
		return local.Transformation(ref)
	}
}

// ImportDerivation fetches a remote derivation record (e.g. the
// Illinois "srch-muon" of Figure 2) and registers it locally together
// with its transformation.
func ImportDerivation(local *catalog.Catalog, reg *Registry, ref string) (schema.Derivation, error) {
	name, err := ParseName(ref)
	if err != nil {
		return schema.Derivation{}, err
	}
	client, err := reg.ClientFor(name.Authority)
	if err != nil {
		return schema.Derivation{}, err
	}
	dv, err := client.Derivation(name.Object)
	if err != nil {
		return schema.Derivation{}, fmt.Errorf("vds: import %s: %w", ref, err)
	}
	trRef := dv.TR
	if !IsVDP(trRef) {
		if _, err := local.Transformation(trRef); err != nil {
			trRef = (Name{Authority: name.Authority, Object: dv.TR}).String()
		}
	}
	if _, err := importTR(local, reg, trRef, 0); err != nil {
		return schema.Derivation{}, err
	}
	if dv.Attrs == nil {
		dv.Attrs = schema.Attributes{}
	}
	dv.Attrs["importedFrom"] = ref
	stored, err := local.AddDerivation(dv)
	if err != nil && !errors.Is(err, catalog.ErrDuplicate) {
		return schema.Derivation{}, err
	}
	return stored, nil
}
