package vds

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/schema"
	"chimera/internal/trust"
)

// Client talks to a remote virtual data service.
type Client struct {
	// Base is the service root, e.g. "http://host:port".
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the service at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RemoteError is a non-2xx response from a catalog service.
type RemoteError struct {
	Status  int
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("vds: remote error %d: %s", e.Status, e.Message)
}

// NotFound reports whether the error is a remote 404.
func NotFound(err error) bool {
	var re *RemoteError
	return errorsAs(err, &re) && re.Status == http.StatusNotFound
}

func errorsAs(err error, target **RemoteError) bool {
	for err != nil {
		if re, ok := err.(*RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("vds: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &RemoteError{Status: resp.StatusCode, Message: eb.Error}
		}
		return &RemoteError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Info fetches service identity and stats.
func (c *Client) Info() (Info, error) {
	var out Info
	err := c.do("GET", "/v1/info", nil, &out)
	return out, err
}

// Export fetches the catalog's full state.
func (c *Client) Export() (catalog.Export, error) {
	var out catalog.Export
	err := c.do("GET", "/v1/export", nil, &out)
	return out, err
}

// Types fetches the catalog's dataset-type registry.
func (c *Client) Types() (*dtype.Registry, error) {
	out := dtype.NewRegistry()
	err := c.do("GET", "/v1/types", nil, out)
	return out, err
}

// Dataset fetches one dataset.
func (c *Client) Dataset(name string) (schema.Dataset, error) {
	var out schema.Dataset
	err := c.do("GET", "/v1/datasets/"+escapePath(name), nil, &out)
	return out, err
}

// Transformation fetches one transformation by reference.
func (c *Client) Transformation(ref string) (schema.Transformation, error) {
	var out schema.Transformation
	err := c.do("GET", "/v1/transformations/"+escapePath(ref), nil, &out)
	return out, err
}

// Derivation fetches one derivation by ID.
func (c *Client) Derivation(id string) (schema.Derivation, error) {
	var out schema.Derivation
	err := c.do("GET", "/v1/derivations/"+escapePath(id), nil, &out)
	return out, err
}

// Invocation fetches one invocation by ID.
func (c *Client) Invocation(id string) (schema.Invocation, error) {
	var out schema.Invocation
	err := c.do("GET", "/v1/invocations/"+escapePath(id), nil, &out)
	return out, err
}

// Replicas lists replicas of a dataset.
func (c *Client) Replicas(dataset string) ([]schema.Replica, error) {
	var out []schema.Replica
	err := c.do("GET", "/v1/replicas?dataset="+url.QueryEscape(dataset), nil, &out)
	return out, err
}

// Lineage fetches a dataset's audit trail.
func (c *Client) Lineage(name string) (catalog.LineageReport, error) {
	var out catalog.LineageReport
	err := c.do("GET", "/v1/lineage/"+escapePath(name), nil, &out)
	return out, err
}

// Ancestors fetches a dataset's upward provenance closure.
func (c *Client) Ancestors(name string) (catalog.Closure, error) {
	var out catalog.Closure
	err := c.do("GET", "/v1/ancestors/"+escapePath(name), nil, &out)
	return out, err
}

// Descendants fetches a dataset's downward closure.
func (c *Client) Descendants(name string) (catalog.Closure, error) {
	var out catalog.Closure
	err := c.do("GET", "/v1/descendants/"+escapePath(name), nil, &out)
	return out, err
}

// SearchDatasets runs a discovery query remotely.
func (c *Client) SearchDatasets(q string) ([]schema.Dataset, error) {
	var out []schema.Dataset
	err := c.do("GET", "/v1/datasets?query="+url.QueryEscape(q), nil, &out)
	return out, err
}

// SearchTransformations runs a discovery query remotely.
func (c *Client) SearchTransformations(q string) ([]schema.Transformation, error) {
	var out []schema.Transformation
	err := c.do("GET", "/v1/transformations?query="+url.QueryEscape(q), nil, &out)
	return out, err
}

// SearchDerivations runs a discovery query remotely.
func (c *Client) SearchDerivations(q string) ([]schema.Derivation, error) {
	var out []schema.Derivation
	err := c.do("GET", "/v1/derivations?query="+url.QueryEscape(q), nil, &out)
	return out, err
}

// PutDataset registers a dataset.
func (c *Client) PutDataset(ds schema.Dataset) error {
	return c.do("PUT", "/v1/datasets", ds, nil)
}

// PutTransformation registers a transformation.
func (c *Client) PutTransformation(tr schema.Transformation) error {
	return c.do("PUT", "/v1/transformations", tr, nil)
}

// PutDerivation registers a derivation, reporting reuse.
func (c *Client) PutDerivation(dv schema.Derivation) (PutDerivationResponse, error) {
	var out PutDerivationResponse
	err := c.do("PUT", "/v1/derivations", dv, &out)
	return out, err
}

// PutInvocation records an invocation.
func (c *Client) PutInvocation(iv schema.Invocation) error {
	return c.do("PUT", "/v1/invocations", iv, nil)
}

// PutReplica registers a replica.
func (c *Client) PutReplica(r schema.Replica) error {
	return c.do("PUT", "/v1/replicas", r, nil)
}

// PostVDL inserts VDL source text.
func (c *Client) PostVDL(src string) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/vdl", strings.NewReader(src))
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return &RemoteError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return nil
}

// Signatures fetches the signature records of an entry.
func (c *Client) Signatures(kind, id string) ([]trust.Signature, error) {
	var out []trust.Signature
	err := c.do("GET", "/v1/signatures/"+kind+"/"+escapePath(id), nil, &out)
	return out, err
}

// PutSignature attaches a signature to an entry.
func (c *Client) PutSignature(kind, id string, sig trust.Signature) error {
	return c.do("PUT", "/v1/signatures/"+kind+"/"+escapePath(id), sig, nil)
}

// Annotations fetches the annotations on an entry.
func (c *Client) Annotations(kind, id string) ([]trust.Annotation, error) {
	var out []trust.Annotation
	err := c.do("GET", "/v1/annotations/"+kind+"/"+escapePath(id), nil, &out)
	return out, err
}

// PutAnnotation records a quality annotation.
func (c *Client) PutAnnotation(a trust.Annotation) error {
	return c.do("PUT", "/v1/annotations", a, nil)
}

// escapePath escapes a logical name for use in a URL path while
// keeping path separators (names may be vdp:// URLs routed through
// {name...} wildcards).
func escapePath(s string) string {
	parts := strings.Split(s, "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return strings.Join(parts, "/")
}
