package vds

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/codec"
	"chimera/internal/dtype"
	"chimera/internal/obs"
	"chimera/internal/schema"
	"chimera/internal/trust"
)

// Transport defaults. A catalog client must never hang forever on a
// dead or wedged member, so the default client carries a request
// timeout; callers with different needs override Client.HTTP.
const (
	// DefaultTimeout bounds one request round-trip on the default
	// transport (connect + send + wait + read body).
	DefaultTimeout = 30 * time.Second
	// DefaultRetries is how many times an idempotent (GET) request is
	// retried after a transient failure.
	DefaultRetries = 2
	// DefaultRetryBackoff is the first retry delay ceiling; actual
	// delays are fully jittered (uniform in (0, ceiling]) and the
	// ceiling doubles per attempt.
	DefaultRetryBackoff = 50 * time.Millisecond
)

// DefaultMaxResponseBytes is the response-body read cap applied when
// Client.MaxResponseBytes is zero: large enough for a multi-million
// object delta, small enough that one misbehaving server cannot balloon
// a federation crawler. Deployments shipping bigger full exports raise
// it per client (vdcd: -max-export-bytes).
const DefaultMaxResponseBytes = int64(64 << 20)

// ErrResponseTooLarge reports a response body that exceeded the
// client's read limit. Distinct from a decode failure so callers see
// "the catalog is too big to ship", not a confusing JSON error.
var ErrResponseTooLarge = errors.New("vds: response too large")

// defaultHTTP is the shared default transport: pooled connections and a
// sane per-request timeout (http.DefaultClient has none, which lets one
// hung member block a caller indefinitely).
var defaultHTTP = &http.Client{
	Timeout: DefaultTimeout,
	Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Client talks to a remote virtual data service.
type Client struct {
	// Base is the service root, e.g. "http://host:port".
	Base string
	// HTTP is the transport; nil uses a shared pooled client with a
	// DefaultTimeout per-request timeout.
	HTTP *http.Client
	// Retries is how many extra attempts an idempotent (GET) request
	// gets after a transient failure (transport error or 502/503/504).
	// 0 means DefaultRetries; negative disables retries. Mutating
	// requests are never retried.
	Retries int
	// RetryBackoff is the first retry delay ceiling, doubling per
	// attempt; each delay is drawn uniform in (0, ceiling] (full
	// jitter). 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// MaxResponseBytes caps how much of a response body the client
	// reads before failing with ErrResponseTooLarge. 0 means
	// DefaultMaxResponseBytes; negative means no limit.
	MaxResponseBytes int64
	// Binary offers the compact binary transport
	// (Accept: application/x-vdg-binary) on export requests. Servers
	// that do not speak it — or predate content negotiation entirely —
	// keep answering JSON, which the client detects by Content-Type, so
	// enabling this against a mixed-version federation is always safe.
	Binary bool
}

// NewClient returns a client for the service at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

func (c *Client) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return DefaultRetries
	}
	return c.Retries
}

func (c *Client) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return c.RetryBackoff
}

func (c *Client) maxResponseBytes() int64 {
	if c.MaxResponseBytes == 0 {
		return DefaultMaxResponseBytes
	}
	if c.MaxResponseBytes < 0 {
		return int64(1)<<62 - 1
	}
	return c.MaxResponseBytes
}

// exportAccept is the Accept header offered on export requests: binary
// preferred when enabled, JSON always acceptable.
func (c *Client) exportAccept() string {
	if c.Binary {
		return codec.BinaryContentType + ", " + codec.JSONContentType
	}
	return ""
}

// RemoteError is a non-2xx response from a catalog service.
type RemoteError struct {
	Status  int
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("vds: remote error %d: %s", e.Status, e.Message)
}

// NotFound reports whether the error is a remote 404.
func NotFound(err error) bool {
	var re *RemoteError
	return errorsAs(err, &re) && re.Status == http.StatusNotFound
}

func errorsAs(err error, target **RemoteError) bool {
	for err != nil {
		if re, ok := err.(*RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func (c *Client) do(method, path string, in, out any) error {
	_, err := c.doCtx(context.Background(), method, path, in, out)
	return err
}

// doCtx issues one JSON API request under ctx, returning the encoded
// response size in bytes. See roundTrip for the retry contract.
func (c *Client) doCtx(ctx context.Context, method, path string, in, out any) (int, error) {
	data, _, err := c.roundTrip(ctx, method, path, in, "")
	if err != nil {
		return len(data), err
	}
	if out != nil {
		return len(data), json.Unmarshal(data, out)
	}
	return len(data), nil
}

// roundTrip issues one API request under ctx with bounded
// retry/backoff for idempotent methods, returning the raw response
// body and its Content-Type. Only GETs are retried: a transient
// transport failure or gateway-style status (502/503/504) triggers up
// to Retries extra attempts with fully-jittered exponential backoff,
// unless ctx is done first. Mutations run exactly once — the server
// may have applied a request whose response was lost. A non-empty
// accept is offered as the Accept header (export content negotiation).
func (c *Client) roundTrip(ctx context.Context, method, path string, in any, accept string) (data []byte, contentType string, err error) {
	var payload []byte
	if in != nil {
		payload, err = json.Marshal(in)
		if err != nil {
			return nil, "", err
		}
	}
	attempts := 1
	if method == http.MethodGet {
		attempts += c.retries()
	}
	ceiling := c.retryBackoff()
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// Full jitter: sleep uniform in (0, ceiling], doubling the
			// ceiling per attempt. A federation crawl retrying many
			// members of one failed host at once would otherwise re-dogpile
			// it in lockstep at exactly backoff, 2*backoff, ... — jitter
			// spreads the herd across the whole window.
			select {
			case <-ctx.Done():
				return data, contentType, err // last attempt's error, not the bare ctx error
			case <-time.After(time.Duration(1 + rand.Int64N(int64(ceiling)))):
			}
			ceiling *= 2
		}
		var retryable bool
		data, contentType, retryable, err = c.once(ctx, method, path, payload, in != nil, accept)
		if err == nil || !retryable || ctx.Err() != nil {
			return data, contentType, err
		}
	}
	return data, contentType, err
}

// once issues a single HTTP request. retryable marks failures that a
// fresh attempt could plausibly cure: transport errors and upstream
// 502/503/504 responses.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, hasBody bool, accept string) (data []byte, contentType string, retryable bool, err error) {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return nil, "", false, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	// Propagate the caller's span so the remote server's spans parent
	// under it — one federation pass, one connected trace.
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, "", true, fmt.Errorf("vds: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	limit := c.maxResponseBytes()
	data, err = io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return data, "", true, err
	}
	if int64(len(data)) > limit {
		// The cap used to truncate silently, surfacing later as a baffling
		// JSON unmarshal failure; name the real problem instead.
		return data, "", false, fmt.Errorf("vds: %s %s: %w (limit %d bytes)", method, path, ErrResponseTooLarge, limit)
	}
	contentType = resp.Header.Get("Content-Type")
	if resp.StatusCode/100 != 2 {
		re := &RemoteError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			re.Message = eb.Error
		}
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return data, contentType, true, re
		}
		return data, contentType, false, re
	}
	return data, contentType, false, nil
}

// isBinary reports whether a response Content-Type names the binary
// export transport.
func isBinary(contentType string) bool {
	mt, _, _ := strings.Cut(contentType, ";")
	return strings.TrimSpace(mt) == codec.BinaryContentType
}

// Info fetches service identity and stats.
func (c *Client) Info() (Info, error) {
	var out Info
	err := c.do("GET", "/v1/info", nil, &out)
	return out, err
}

// Export fetches the catalog's full state.
func (c *Client) Export() (catalog.Export, error) {
	return c.ExportCtx(context.Background())
}

// ExportCtx fetches the catalog's full state under ctx; a span-carrying
// context propagates to the remote server as a traceparent header.
// With Client.Binary set, the request offers the binary transport and
// decodes whichever representation the server chose.
func (c *Client) ExportCtx(ctx context.Context) (catalog.Export, error) {
	data, ct, err := c.roundTrip(ctx, "GET", "/v1/export", nil, c.exportAccept())
	if err != nil {
		return catalog.Export{}, err
	}
	if isBinary(ct) {
		bin, err := codec.Lookup(codec.BinaryName)
		if err != nil {
			return catalog.Export{}, err
		}
		p, err := bin.DecodeSnapshot(data)
		if err != nil {
			return catalog.Export{}, fmt.Errorf("vds: binary export: %w", err)
		}
		return catalog.ExportFromCodec(p), nil
	}
	var out catalog.Export
	return out, json.Unmarshal(data, &out)
}

// ExportSince fetches the changes the remote catalog has accumulated
// past (since, instance), as reported by an earlier Delta. Pass zeros
// on first contact to receive a full export. The returned byte count
// is the encoded response size, for transfer accounting. With
// Client.Binary set, the delta travels in the binary transport when
// the server speaks it; a JSON-only server degrades transparently.
func (c *Client) ExportSince(ctx context.Context, since, instance uint64) (catalog.Delta, int, error) {
	path := "/v1/export?since=" + strconv.FormatUint(since, 10) + "&instance=" + strconv.FormatUint(instance, 10)
	data, ct, err := c.roundTrip(ctx, "GET", path, nil, c.exportAccept())
	if err != nil {
		return catalog.Delta{}, len(data), err
	}
	if isBinary(ct) {
		bin, err := codec.Lookup(codec.BinaryName)
		if err != nil {
			return catalog.Delta{}, len(data), err
		}
		cd, err := bin.DecodeDelta(data)
		if err != nil {
			return catalog.Delta{}, len(data), fmt.Errorf("vds: binary delta: %w", err)
		}
		return catalog.DeltaFromCodec(cd), len(data), nil
	}
	var out catalog.Delta
	return out, len(data), json.Unmarshal(data, &out)
}

// Types fetches the catalog's dataset-type registry.
func (c *Client) Types() (*dtype.Registry, error) {
	out := dtype.NewRegistry()
	err := c.do("GET", "/v1/types", nil, out)
	return out, err
}

// Dataset fetches one dataset.
func (c *Client) Dataset(name string) (schema.Dataset, error) {
	var out schema.Dataset
	err := c.do("GET", "/v1/datasets/"+escapePath(name), nil, &out)
	return out, err
}

// Transformation fetches one transformation by reference.
func (c *Client) Transformation(ref string) (schema.Transformation, error) {
	var out schema.Transformation
	err := c.do("GET", "/v1/transformations/"+escapePath(ref), nil, &out)
	return out, err
}

// Derivation fetches one derivation by ID.
func (c *Client) Derivation(id string) (schema.Derivation, error) {
	var out schema.Derivation
	err := c.do("GET", "/v1/derivations/"+escapePath(id), nil, &out)
	return out, err
}

// Invocation fetches one invocation by ID.
func (c *Client) Invocation(id string) (schema.Invocation, error) {
	var out schema.Invocation
	err := c.do("GET", "/v1/invocations/"+escapePath(id), nil, &out)
	return out, err
}

// Replicas lists replicas of a dataset.
func (c *Client) Replicas(dataset string) ([]schema.Replica, error) {
	var out []schema.Replica
	err := c.do("GET", "/v1/replicas?dataset="+url.QueryEscape(dataset), nil, &out)
	return out, err
}

// Lineage fetches a dataset's audit trail.
func (c *Client) Lineage(name string) (catalog.LineageReport, error) {
	var out catalog.LineageReport
	err := c.do("GET", "/v1/lineage/"+escapePath(name), nil, &out)
	return out, err
}

// Ancestors fetches a dataset's upward provenance closure.
func (c *Client) Ancestors(name string) (catalog.Closure, error) {
	var out catalog.Closure
	err := c.do("GET", "/v1/ancestors/"+escapePath(name), nil, &out)
	return out, err
}

// Descendants fetches a dataset's downward closure.
func (c *Client) Descendants(name string) (catalog.Closure, error) {
	var out catalog.Closure
	err := c.do("GET", "/v1/descendants/"+escapePath(name), nil, &out)
	return out, err
}

// SearchDatasets runs a discovery query remotely.
func (c *Client) SearchDatasets(q string) ([]schema.Dataset, error) {
	return c.SearchDatasetsCtx(context.Background(), q)
}

// SearchDatasetsCtx runs a discovery query remotely under ctx,
// propagating the caller's span to the server.
func (c *Client) SearchDatasetsCtx(ctx context.Context, q string) ([]schema.Dataset, error) {
	var out []schema.Dataset
	_, err := c.doCtx(ctx, "GET", "/v1/datasets?query="+url.QueryEscape(q), nil, &out)
	return out, err
}

// SearchTransformations runs a discovery query remotely.
func (c *Client) SearchTransformations(q string) ([]schema.Transformation, error) {
	return c.SearchTransformationsCtx(context.Background(), q)
}

// SearchTransformationsCtx runs a discovery query remotely under ctx.
func (c *Client) SearchTransformationsCtx(ctx context.Context, q string) ([]schema.Transformation, error) {
	var out []schema.Transformation
	_, err := c.doCtx(ctx, "GET", "/v1/transformations?query="+url.QueryEscape(q), nil, &out)
	return out, err
}

// SearchDerivations runs a discovery query remotely.
func (c *Client) SearchDerivations(q string) ([]schema.Derivation, error) {
	return c.SearchDerivationsCtx(context.Background(), q)
}

// SearchDerivationsCtx runs a discovery query remotely under ctx.
func (c *Client) SearchDerivationsCtx(ctx context.Context, q string) ([]schema.Derivation, error) {
	var out []schema.Derivation
	_, err := c.doCtx(ctx, "GET", "/v1/derivations?query="+url.QueryEscape(q), nil, &out)
	return out, err
}

// PutDataset registers a dataset.
func (c *Client) PutDataset(ds schema.Dataset) error {
	return c.do("PUT", "/v1/datasets", ds, nil)
}

// PutTransformation registers a transformation.
func (c *Client) PutTransformation(tr schema.Transformation) error {
	return c.do("PUT", "/v1/transformations", tr, nil)
}

// PutDerivation registers a derivation, reporting reuse.
func (c *Client) PutDerivation(dv schema.Derivation) (PutDerivationResponse, error) {
	var out PutDerivationResponse
	err := c.do("PUT", "/v1/derivations", dv, &out)
	return out, err
}

// PutInvocation records an invocation.
func (c *Client) PutInvocation(iv schema.Invocation) error {
	return c.do("PUT", "/v1/invocations", iv, nil)
}

// PutReplica registers a replica.
func (c *Client) PutReplica(r schema.Replica) error {
	return c.do("PUT", "/v1/replicas", r, nil)
}

// PostVDL inserts VDL source text.
func (c *Client) PostVDL(src string) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/vdl", strings.NewReader(src))
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return &RemoteError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return nil
}

// Signatures fetches the signature records of an entry.
func (c *Client) Signatures(kind, id string) ([]trust.Signature, error) {
	var out []trust.Signature
	err := c.do("GET", "/v1/signatures/"+kind+"/"+escapePath(id), nil, &out)
	return out, err
}

// PutSignature attaches a signature to an entry.
func (c *Client) PutSignature(kind, id string, sig trust.Signature) error {
	return c.do("PUT", "/v1/signatures/"+kind+"/"+escapePath(id), sig, nil)
}

// Annotations fetches the annotations on an entry.
func (c *Client) Annotations(kind, id string) ([]trust.Annotation, error) {
	var out []trust.Annotation
	err := c.do("GET", "/v1/annotations/"+kind+"/"+escapePath(id), nil, &out)
	return out, err
}

// PutAnnotation records a quality annotation.
func (c *Client) PutAnnotation(a trust.Annotation) error {
	return c.do("PUT", "/v1/annotations", a, nil)
}

// escapePath escapes a logical name for use in a URL path while
// keeping path separators (names may be vdp:// URLs routed through
// {name...} wildcards).
func escapePath(s string) string {
	parts := strings.Split(s, "/")
	for i, p := range parts {
		parts[i] = url.PathEscape(p)
	}
	return strings.Join(parts, "/")
}
