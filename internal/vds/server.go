// Package vds exposes a virtual data catalog as a network service and
// provides the client side: JSON over HTTP, vdp:// names for
// inter-catalog references, and remote-object import so that
// transformation and derivation records can hyperlink across servers as
// in Figures 2 and 3 of the paper.
package vds

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"chimera/internal/catalog"
	"chimera/internal/codec"
	"chimera/internal/obs"
	"chimera/internal/query"
	"chimera/internal/schema"
	"chimera/internal/trust"
	"chimera/internal/vdl"
)

// Server serves one catalog over HTTP.
type Server struct {
	// Name identifies the catalog (e.g. "physics.wisconsin.edu").
	Name string
	// Cat is the served catalog.
	Cat *catalog.Catalog
	// Ledger optionally carries signatures/annotations for entries.
	Ledger *trust.Ledger
	// ReadOnly rejects mutations when set.
	ReadOnly bool
	// Tracer, when set, records one server span per API request,
	// parented under the caller's span when the request carried a
	// traceparent header; handlers see the span's context, so catalog
	// and query spans triggered by the request join the same trace.
	Tracer *obs.Tracer
	// OnDebug, when set, contributes extra entries to the /debug/vdc
	// report (e.g. a daemon's federation shard states).
	OnDebug func(map[string]any)
	// LockedReads routes search endpoints through the locked
	// ordered-snapshot oracle (query.RunOracle: every shard read lock
	// held, no result cache) instead of the lock-free epoch path. It
	// exists for A/B measurement (the E18 locked arm) and as an escape
	// hatch; leave it off in production.
	LockedReads bool

	slow *slowRing
	mux  *http.ServeMux
}

// NewServer builds a server for the catalog.
func NewServer(name string, cat *catalog.Catalog) *Server {
	s := &Server{Name: name, Cat: cat, Ledger: trust.NewLedger(), slow: newSlowRing(0)}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Info summarizes a catalog service.
type Info struct {
	Name  string        `json:"name"`
	Stats catalog.Stats `json:"stats"`
}

// PutDerivationResponse reports the outcome of registering a derivation.
type PutDerivationResponse struct {
	Derivation schema.Derivation `json:"derivation"`
	// Reused is true when an identical derivation already existed.
	Reused bool `json:"reused"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) routes() {
	m := http.NewServeMux()
	s.mux = m
	// Every API route goes through the metrics middleware; the route
	// label is the mux pattern itself.
	handle := func(pattern string, h http.HandlerFunc) {
		m.HandleFunc(pattern, s.instrument(pattern, h))
	}

	// Operational endpoints, deliberately outside the middleware so
	// scrapes don't inflate the API metrics.
	m.Handle("GET /metrics", obs.Default.Handler())
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cat.DurabilityErr(); err != nil {
			// The WAL is poisoned: the catalog still serves reads, but
			// every mutation will fail. Report unhealthy so an operator
			// (or orchestrator) replaces the node.
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "degraded", "name": s.Name, "stats": s.Cat.Stats(), "wal": err.Error(),
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "name": s.Name, "stats": s.Cat.Stats()})
	})

	// Runtime introspection: journal cursor, index cardinalities, and
	// the slowest requests with their trace IDs — the live state an
	// operator needs to debug a wedged or lagging member without a
	// debugger. Log levels are readable and settable on the same mux.
	m.HandleFunc("GET /debug/vdc", func(w http.ResponseWriter, r *http.Request) {
		info := map[string]any{
			"name":          s.Name,
			"journal":       s.Cat.JournalState(),
			"shard_cursors": s.Cat.ShardJournalStates(),
			"indexes":       s.Cat.IndexStats(),
			"stats":         s.Cat.Stats(),
			"epochs":        s.Cat.EpochStats(),
			"query_cache":   query.CacheStats(),
			"slow_requests": s.slow.snapshot(),
			"goroutines":    runtime.NumGoroutine(),
		}
		if s.Tracer != nil {
			info["trace_spans"] = s.Tracer.Len()
			info["trace_spans_dropped"] = s.Tracer.Dropped()
		}
		if err := s.Cat.DurabilityErr(); err != nil {
			info["wal_error"] = err.Error()
		}
		if s.OnDebug != nil {
			s.OnDebug(info)
		}
		writeJSON(w, http.StatusOK, info)
	})
	m.Handle("/debug/loglevel", obs.LogLevelHandler())

	handle("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Info{Name: s.Name, Stats: s.Cat.Stats()})
	})

	handle("GET /v1/export", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		binary := acceptsBinary(r.Header.Get("Accept"))
		if !q.Has("since") && !q.Has("instance") {
			// Legacy full-export form.
			exp := s.Cat.Export()
			if binary {
				writeBinaryPooled(w, func(buf *bytes.Buffer) error {
					return binaryExportCodec.EncodeSnapshot(buf, exp.CodecPayload())
				})
				return
			}
			writeJSONPooled(w, http.StatusOK, exp)
			return
		}
		since, err := strconv.ParseUint(q.Get("since"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad since: " + q.Get("since")})
			return
		}
		instance, err := strconv.ParseUint(q.Get("instance"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad instance: " + q.Get("instance")})
			return
		}
		d := s.Cat.ChangesSince(since, instance)
		if binary {
			writeBinaryPooled(w, func(buf *bytes.Buffer) error {
				return binaryExportCodec.EncodeDelta(buf, d.CodecDelta())
			})
			return
		}
		writeJSONPooled(w, http.StatusOK, d)
	})

	handle("GET /v1/types", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Cat.Types())
	})

	handle("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		s.search(w, r, query.KDataset)
	})
	handle("GET /v1/transformations", func(w http.ResponseWriter, r *http.Request) {
		s.search(w, r, query.KTransformation)
	})
	handle("GET /v1/derivations", func(w http.ResponseWriter, r *http.Request) {
		s.search(w, r, query.KDerivation)
	})

	handle("GET /v1/datasets/{name...}", func(w http.ResponseWriter, r *http.Request) {
		ds, err := s.Cat.Dataset(r.PathValue("name"))
		s.reply(w, ds, err)
	})
	handle("GET /v1/transformations/{ref...}", func(w http.ResponseWriter, r *http.Request) {
		tr, err := s.Cat.Transformation(r.PathValue("ref"))
		s.reply(w, tr, err)
	})
	handle("GET /v1/derivations/{id...}", func(w http.ResponseWriter, r *http.Request) {
		dv, err := s.Cat.Derivation(r.PathValue("id"))
		s.reply(w, dv, err)
	})
	handle("GET /v1/invocations/{id...}", func(w http.ResponseWriter, r *http.Request) {
		iv, err := s.Cat.Invocation(r.PathValue("id"))
		s.reply(w, iv, err)
	})
	handle("GET /v1/replicas", func(w http.ResponseWriter, r *http.Request) {
		ds := r.URL.Query().Get("dataset")
		if ds == "" {
			writeJSON(w, http.StatusBadRequest, errorBody{"missing dataset parameter"})
			return
		}
		writeJSON(w, http.StatusOK, s.Cat.ReplicasOf(ds))
	})

	handle("GET /v1/lineage/{name...}", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.Cat.Lineage(r.PathValue("name"))
		s.reply(w, rep, err)
	})
	handle("GET /v1/ancestors/{name...}", func(w http.ResponseWriter, r *http.Request) {
		cl, err := s.Cat.Ancestors(r.PathValue("name"))
		s.reply(w, cl, err)
	})
	handle("GET /v1/descendants/{name...}", func(w http.ResponseWriter, r *http.Request) {
		cl, err := s.Cat.Descendants(r.PathValue("name"))
		s.reply(w, cl, err)
	})

	handle("PUT /v1/datasets", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		var ds schema.Dataset
		if !decode(w, r, &ds) {
			return
		}
		s.replyErr(w, s.Cat.AddDataset(ds))
	}))
	handle("PUT /v1/transformations", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		var tr schema.Transformation
		if !decode(w, r, &tr) {
			return
		}
		s.replyErr(w, s.Cat.AddTransformation(tr))
	}))
	handle("PUT /v1/derivations", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		var dv schema.Derivation
		if !decode(w, r, &dv) {
			return
		}
		stored, err := s.Cat.AddDerivation(dv)
		if errors.Is(err, catalog.ErrDuplicate) {
			writeJSON(w, http.StatusOK, PutDerivationResponse{Derivation: stored, Reused: true})
			return
		}
		if err != nil {
			s.replyErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, PutDerivationResponse{Derivation: stored})
	}))
	handle("PUT /v1/invocations", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		var iv schema.Invocation
		if !decode(w, r, &iv) {
			return
		}
		s.replyErr(w, s.Cat.AddInvocation(iv))
	}))
	handle("PUT /v1/replicas", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		var rep schema.Replica
		if !decode(w, r, &rep) {
			return
		}
		s.replyErr(w, s.Cat.AddReplica(rep))
	}))

	handle("POST /v1/vdl", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
			return
		}
		prog, err := vdl.Parse(string(src))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
			return
		}
		if err := ApplyProgram(s.Cat, prog); err != nil {
			s.replyErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.Cat.Stats())
	}))

	handle("GET /v1/signatures/{kind}/{id...}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Ledger.Signatures(r.PathValue("kind"), r.PathValue("id")))
	})
	handle("PUT /v1/signatures/{kind}/{id...}", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		var sig trust.Signature
		if !decode(w, r, &sig) {
			return
		}
		s.Ledger.Attach(r.PathValue("kind"), r.PathValue("id"), sig)
		writeJSON(w, http.StatusOK, struct{}{})
	}))
	handle("GET /v1/annotations/{kind}/{id...}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Ledger.Annotations(r.PathValue("kind"), r.PathValue("id")))
	})
	handle("PUT /v1/annotations", s.mutating(func(w http.ResponseWriter, r *http.Request) {
		var a trust.Annotation
		if !decode(w, r, &a) {
			return
		}
		s.Ledger.AddAnnotation(a)
		writeJSON(w, http.StatusOK, struct{}{})
	}))
}

func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.ReadOnly {
			writeJSON(w, http.StatusForbidden, errorBody{"catalog is read-only"})
			return
		}
		h(w, r)
	}
}

func (s *Server) search(w http.ResponseWriter, r *http.Request, kind query.Kind) {
	q := r.URL.Query().Get("query")
	if q == "" {
		q = "*"
	}
	e, err := query.Parse(q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	// ?explain=1 returns the planner's EXPLAIN string instead of
	// executing the query, plus the result cache's placement: whether a
	// run right now would be served from the cache, and the epoch vector
	// that placement was validated against.
	if r.URL.Query().Get("explain") != "" {
		info, err := query.ExplainQuery(s.Cat, kind, e)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Query  string `json:"query"`
			Plan   string `json:"plan"`
			Cached bool   `json:"cached"`
			Epoch  string `json:"epoch"`
		}{Query: q, Plan: info.Plan, Cached: info.Cached, Epoch: info.Epoch})
		return
	}
	var res query.Results
	if s.LockedReads {
		res, err = query.RunOracle(s.Cat, kind, e)
	} else {
		res, err = query.RunContext(r.Context(), s.Cat, kind, e)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	switch kind {
	case query.KDataset:
		writeJSON(w, http.StatusOK, orEmpty(res.Datasets))
	case query.KTransformation:
		writeJSON(w, http.StatusOK, orEmpty(res.Transformations))
	default:
		writeJSON(w, http.StatusOK, orEmpty(res.Derivations))
	}
}

func orEmpty[T any](xs []T) []T {
	if xs == nil {
		return []T{}
	}
	return xs
}

func (s *Server) reply(w http.ResponseWriter, v any, err error) {
	if err != nil {
		s.replyErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) replyErr(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, struct{}{})
	case errors.Is(err, catalog.ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
	case errors.Is(err, catalog.ErrExists), errors.Is(err, catalog.ErrConflict):
		writeJSON(w, http.StatusConflict, errorBody{err.Error()})
	case errors.Is(err, catalog.ErrDurability):
		// The mutation validated but its group commit failed: this is an
		// availability fault of the server, not a bad request, and the
		// caller must not assume the write persisted.
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// exportBufs pools the encode buffers for the /v1/export response
// path. Exports and deltas are by far the largest responses the server
// produces, and a federation crawl hits the endpoint once per member
// per pass — encoding into a pooled buffer reuses those multi-megabyte
// allocations across requests and lets the response carry an exact
// Content-Length instead of chunked framing.
var exportBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledExportBuf caps what goes back into the pool: one whale of a
// full export must not pin its buffer for the life of the process.
const maxPooledExportBuf = 8 << 20

// writeJSONPooled is writeJSON for the export path: encode into a
// pooled buffer, send with Content-Length, recycle.
func writeJSONPooled(w http.ResponseWriter, status int, v any) {
	buf := exportBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		exportBufs.Put(buf)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "encode: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledExportBuf {
		exportBufs.Put(buf)
	}
}

// binaryExportCodec is the negotiated wire codec for /v1/export; the
// registry lookup happens once (init-registered, cannot fail).
var binaryExportCodec, _ = codec.Lookup(codec.BinaryName)

// acceptsBinary reports whether an Accept header offers the binary
// export transport. Absent or wildcard-only headers (and every header a
// pre-negotiation client sends) keep the JSON default.
func acceptsBinary(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(mt) == codec.BinaryContentType {
			return true
		}
	}
	return false
}

// writeBinaryPooled streams a binary export body through the shared
// export buffer pool with an exact Content-Length.
func writeBinaryPooled(w http.ResponseWriter, encode func(*bytes.Buffer) error) {
	buf := exportBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := encode(buf); err != nil {
		exportBufs.Put(buf)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "encode: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", codec.BinaryContentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledExportBuf {
		exportBufs.Put(buf)
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("decode: %v", err)})
		return false
	}
	return true
}

// ApplyProgram loads a parsed VDL program into a catalog: types first,
// then datasets, transformations, and derivations. Duplicate
// derivations are tolerated (that is reuse, not error).
func ApplyProgram(c *catalog.Catalog, prog vdl.Program) error {
	for _, td := range prog.Types {
		if err := c.DefineType(td.Dim, td.Name, td.Parent); err != nil {
			return err
		}
	}
	for _, ds := range prog.Datasets {
		if err := c.AddDataset(ds); err != nil && !errors.Is(err, catalog.ErrExists) {
			return err
		}
	}
	for _, tr := range prog.Transformations {
		if err := c.AddTransformation(tr); err != nil {
			return err
		}
	}
	for _, dv := range prog.Derivations {
		if _, err := c.AddDerivation(dv); err != nil && !errors.Is(err, catalog.ErrDuplicate) {
			return err
		}
	}
	return nil
}
