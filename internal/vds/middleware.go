package vds

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"chimera/internal/obs"
)

// HTTP-face metrics: per-route request counts (with status code) and
// latency histograms. The route label is the registered mux pattern,
// so cardinality is bounded by the API surface, not by request paths.
var (
	metricHTTPRequests = obs.Default.CounterVec("vdc_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	metricHTTPSeconds = obs.Default.HistogramVec("vdc_http_request_seconds",
		"HTTP request latency by route pattern.", obs.TimeBuckets, "route")
)

// statusWriter captures the response code written by a handler while
// passing everything else through — including http.Flusher, so
// streaming/NDJSON handlers behind the middleware are not silently
// buffered.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		// First Write without an explicit WriteHeader: net/http sends
		// an implicit 200.
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming;
// a no-op otherwise (matching http.ResponseController semantics for
// recorders that don't flush).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// slowEntry is one retained slow request.
type slowEntry struct {
	Route   string  `json:"route"`
	Status  int     `json:"status"`
	Seconds float64 `json:"seconds"`
	TraceID string  `json:"trace_id,omitempty"`
	SpanID  string  `json:"span_id,omitempty"`
	// When is the request start time, RFC3339 with millis.
	When string `json:"when"`
}

// slowRing retains the slowest N requests the server has handled, each
// with its trace identity — the exemplar link from a latency metric
// spike to the exact trace that caused it. Insertion is O(1) unless
// the request actually displaces a retained entry.
type slowRing struct {
	mu  sync.Mutex
	cap int
	min float64 // fastest retained entry; cheap reject below it
	ent []slowEntry
}

const defaultSlowRing = 32

func newSlowRing(n int) *slowRing {
	if n <= 0 {
		n = defaultSlowRing
	}
	return &slowRing{cap: n}
}

func (sr *slowRing) note(route string, status int, start time.Time, dur time.Duration, sc obs.SpanContext) {
	secs := dur.Seconds()
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.ent) >= sr.cap && secs <= sr.min {
		return
	}
	e := slowEntry{
		Route: route, Status: status, Seconds: secs,
		When: start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
	}
	if sc.Valid() {
		e.TraceID = sc.Trace
		e.SpanID = strconv.FormatUint(uint64(sc.Span), 16)
	}
	if len(sr.ent) < sr.cap {
		sr.ent = append(sr.ent, e)
	} else {
		// Replace the fastest retained entry.
		mi := 0
		for i := 1; i < len(sr.ent); i++ {
			if sr.ent[i].Seconds < sr.ent[mi].Seconds {
				mi = i
			}
		}
		sr.ent[mi] = e
	}
	sr.min = sr.ent[0].Seconds
	for _, x := range sr.ent[1:] {
		if x.Seconds < sr.min {
			sr.min = x.Seconds
		}
	}
}

// snapshot returns the retained entries, slowest first.
func (sr *slowRing) snapshot() []slowEntry {
	sr.mu.Lock()
	out := append([]slowEntry(nil), sr.ent...)
	sr.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seconds > out[j-1].Seconds; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// instrument wraps a handler with request counting, latency
// observation, and tracing under the given route pattern: an incoming
// traceparent header is decoded into a remote parent, and — when the
// server has a Tracer — the request runs inside a server span whose
// context flows to the handler, so remote callers' traces continue
// through catalog work triggered here. The histogram series is
// resolved once at registration, off the request path.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := metricHTTPSeconds.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx = obs.WithSpanContext(ctx, sc)
		}
		if s.Tracer != nil {
			ctx = obs.WithTracer(ctx, s.Tracer)
		}
		ctx, span := obs.StartSpan(ctx, "http "+route)
		span.SetAttr("server", s.Name)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.End()
		lat.Observe(dur.Seconds())
		metricHTTPRequests.With(route, strconv.Itoa(sw.status)).Inc()
		s.slow.note(route, sw.status, start, dur, span.Context())
	}
}
