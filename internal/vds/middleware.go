package vds

import (
	"net/http"
	"strconv"
	"time"

	"chimera/internal/obs"
)

// HTTP-face metrics: per-route request counts (with status code) and
// latency histograms. The route label is the registered mux pattern,
// so cardinality is bounded by the API surface, not by request paths.
var (
	metricHTTPRequests = obs.Default.CounterVec("vdc_http_requests_total",
		"HTTP requests served, by route pattern and status code.", "route", "code")
	metricHTTPSeconds = obs.Default.HistogramVec("vdc_http_request_seconds",
		"HTTP request latency by route pattern.", obs.TimeBuckets, "route")
)

// statusWriter captures the response code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with request counting and latency
// observation under the given route pattern. The histogram series is
// resolved once at registration, off the request path.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := metricHTTPSeconds.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		lat.ObserveSince(start)
		metricHTTPRequests.With(route, strconv.Itoa(sw.status)).Inc()
	}
}
