package vds

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chimera/internal/catalog"
	"chimera/internal/dtype"
	"chimera/internal/schema"
	"chimera/internal/trust"
)

func twoArg(name string) schema.Transformation {
	return schema.Transformation{Name: name, Kind: schema.Simple, Exec: "/usr/bin/" + name,
		Args: []schema.FormalArg{
			{Name: "a2", Direction: schema.Out},
			{Name: "a1", Direction: schema.In},
		}}
}

func chainDV(tr, in, out string) schema.Derivation {
	return schema.Derivation{TR: tr, Params: map[string]schema.Actual{
		"a2": schema.DatasetActual("output", out),
		"a1": schema.DatasetActual("input", in),
	}}
}

// startServer spins up a catalog service and returns its client.
func startServer(t *testing.T, name string) (*catalog.Catalog, *Client) {
	t.Helper()
	cat := catalog.New(dtype.StandardRegistry())
	srv := NewServer(name, cat)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return cat, NewClient(hs.URL)
}

func TestInfoAndRoundTrips(t *testing.T) {
	cat, client := startServer(t, "test-vdc")

	info, err := client.Info()
	if err != nil || info.Name != "test-vdc" {
		t.Fatalf("info: %+v %v", info, err)
	}

	// Transformation round trip.
	tr := twoArg("t")
	if err := client.PutTransformation(tr); err != nil {
		t.Fatal(err)
	}
	got, err := client.Transformation("t")
	if err != nil || got.Exec != tr.Exec {
		t.Fatalf("tr round trip: %+v %v", got, err)
	}

	// Dataset round trip (with descriptor).
	ds := schema.Dataset{Name: "raw", Type: dtype.Type{Content: "CMS"},
		Descriptor: schema.FileDescriptor{Path: "/raw"}, Size: 42}
	if err := client.PutDataset(ds); err != nil {
		t.Fatal(err)
	}
	gds, err := client.Dataset("raw")
	if err != nil || gds.Size != 42 || gds.Descriptor.(schema.FileDescriptor).Path != "/raw" {
		t.Fatalf("ds round trip: %+v %v", gds, err)
	}

	// Derivation with duplicate detection.
	put, err := client.PutDerivation(chainDV("t", "raw", "cooked"))
	if err != nil || put.Reused {
		t.Fatalf("first put: %+v %v", put, err)
	}
	again, err := client.PutDerivation(chainDV("t", "raw", "cooked"))
	if err != nil || !again.Reused || again.Derivation.ID != put.Derivation.ID {
		t.Fatalf("dup put: %+v %v", again, err)
	}

	// Invocation + replica.
	iv := schema.Invocation{ID: "iv1", Derivation: put.Derivation.ID,
		Start: time.Unix(0, 0).UTC(), End: time.Unix(9, 0).UTC(), Site: "anl"}
	if err := client.PutInvocation(iv); err != nil {
		t.Fatal(err)
	}
	if err := client.PutReplica(schema.Replica{ID: "r1", Dataset: "cooked", Site: "anl", PFN: "/c"}); err != nil {
		t.Fatal(err)
	}
	giv, err := client.Invocation("iv1")
	if err != nil || giv.Site != "anl" {
		t.Fatalf("iv round trip: %+v %v", giv, err)
	}
	reps, err := client.Replicas("cooked")
	if err != nil || len(reps) != 1 {
		t.Fatalf("replicas: %v %v", reps, err)
	}

	// Lineage over the wire.
	lin, err := client.Lineage("cooked")
	if err != nil || len(lin.Steps) != 1 || lin.Steps[0].Invocations[0].ID != "iv1" {
		t.Fatalf("lineage: %+v %v", lin, err)
	}
	anc, err := client.Ancestors("cooked")
	if err != nil || len(anc.Datasets) != 1 || anc.Datasets[0] != "raw" {
		t.Fatalf("ancestors: %+v %v", anc, err)
	}
	if _, err := client.Descendants("raw"); err != nil {
		t.Fatal(err)
	}

	// Export matches local state.
	exp, err := client.Export()
	if err != nil || len(exp.Derivations) != 1 || len(exp.Datasets) != cat.Stats().Datasets {
		t.Fatalf("export: %v", err)
	}
}

func TestSearchOverWire(t *testing.T) {
	_, client := startServer(t, "s")
	if err := client.PutTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PutDerivation(chainDV("t", "a", "b")); err != nil {
		t.Fatal(err)
	}
	dss, err := client.SearchDatasets("derived")
	if err != nil || len(dss) != 1 || dss[0].Name != "b" {
		t.Fatalf("dataset search: %v %v", dss, err)
	}
	trs, err := client.SearchTransformations("simple")
	if err != nil || len(trs) != 1 {
		t.Fatalf("tr search: %v %v", trs, err)
	}
	dvs, err := client.SearchDerivations("produces(b)")
	if err != nil || len(dvs) != 1 {
		t.Fatalf("dv search: %v %v", dvs, err)
	}
	// Empty result is [] not null.
	none, err := client.SearchDatasets(`name = nothing`)
	if err != nil || none == nil || len(none) != 0 {
		t.Fatalf("empty search: %v %v", none, err)
	}
	// Bad query is a 400.
	if _, err := client.SearchDatasets("bogus ="); err == nil {
		t.Error("bad query accepted")
	}
}

func TestErrorMapping(t *testing.T) {
	_, client := startServer(t, "s")
	_, err := client.Dataset("ghost")
	if !NotFound(err) {
		t.Errorf("missing dataset: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 404 {
		t.Errorf("remote error shape: %v", err)
	}
	// Conflict maps to 409.
	if err := client.PutTransformation(twoArg("t")); err != nil {
		t.Fatal(err)
	}
	other := twoArg("t")
	other.Exec = "/different"
	err = client.PutTransformation(other)
	if err == nil {
		t.Fatal("conflict accepted")
	}
	if !errors.As(err, &re) || re.Status != 409 {
		t.Errorf("conflict status: %v", err)
	}
}

func TestReadOnlyServer(t *testing.T) {
	cat := catalog.New(nil)
	srv := NewServer("ro", cat)
	srv.ReadOnly = true
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := NewClient(hs.URL)
	if err := client.PutTransformation(twoArg("t")); err == nil {
		t.Error("mutation on read-only server accepted")
	}
	if _, err := client.Info(); err != nil {
		t.Errorf("read on read-only server: %v", err)
	}
}

func TestPostVDL(t *testing.T) {
	cat, client := startServer(t, "s")
	src := `
TR trans1( output a2, input a1 ) {
  argument stdin = ${input:a1};
  argument stdout = ${output:a2};
  exec = "/usr/bin/app1";
}
DV usetrans1->trans1( a2=@{output:"file2"}, a1=@{input:"file1"} );
`
	if err := client.PostVDL(src); err != nil {
		t.Fatal(err)
	}
	if cat.Stats().Derivations != 1 || cat.Stats().Transformations != 1 {
		t.Errorf("stats after vdl: %+v", cat.Stats())
	}
	if err := client.PostVDL("TR broken ("); err == nil {
		t.Error("bad vdl accepted")
	}
}

func TestSignaturesAndAnnotationsOverWire(t *testing.T) {
	_, client := startServer(t, "s")
	signer, err := trust.NewAuthority("curator")
	if err != nil {
		t.Fatal(err)
	}
	sig := signer.SignEntry(trust.KindDataset, "raw", []byte("payload"))
	if err := client.PutSignature(trust.KindDataset, "raw", sig); err != nil {
		t.Fatal(err)
	}
	sigs, err := client.Signatures(trust.KindDataset, "raw")
	if err != nil || len(sigs) != 1 || sigs[0].Key != signer.ID() {
		t.Fatalf("signatures: %v %v", sigs, err)
	}
	// Signature survives the wire: it still verifies.
	store := trust.NewStore()
	store.AddRoot(signer.Authority)
	if err := store.Verify(trust.KindDataset, "raw", []byte("payload"), sigs[0]); err != nil {
		t.Errorf("wire-transported signature invalid: %v", err)
	}

	ann := signer.Annotate(trust.KindDataset, "raw", "quality", "approved")
	if err := client.PutAnnotation(ann); err != nil {
		t.Fatal(err)
	}
	anns, err := client.Annotations(trust.KindDataset, "raw")
	if err != nil || len(anns) != 1 {
		t.Fatalf("annotations: %v %v", anns, err)
	}
	if err := store.VerifyAnnotation(anns[0]); err != nil {
		t.Errorf("wire-transported annotation invalid: %v", err)
	}
}

func TestVDPNames(t *testing.T) {
	n, err := ParseName("vdp://physics.wisconsin.edu/srch")
	if err != nil || n.Authority != "physics.wisconsin.edu" || n.Object != "srch" {
		t.Fatalf("parse: %+v %v", n, err)
	}
	if n.String() != "vdp://physics.wisconsin.edu/srch" {
		t.Errorf("string: %s", n)
	}
	// Nested object paths.
	n, err = ParseName("vdp://host/group/obj")
	if err != nil || n.Object != "group/obj" {
		t.Errorf("nested: %+v %v", n, err)
	}
	for _, bad := range []string{"http://x/y", "vdp://", "vdp://host", "vdp://host/"} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if !IsVDP("vdp://a/b") || IsVDP("x") {
		t.Error("IsVDP")
	}
}

// TestFigure2Scenario reproduces the paper's Figure 2: Illinois defines
// transformations sim and cmp; Wisconsin defines compound cmpsim over
// them and a srch transformation; Illinois then defines a derivation
// srch-muon against Wisconsin's srch via a vdp hyperlink.
func TestFigure2Scenario(t *testing.T) {
	illinois, illinoisClient := startServer(t, "physics.illinois.edu")
	wisconsin, wisconsinClient := startServer(t, "physics.wisconsin.edu")
	_ = illinoisClient

	reg := NewRegistry()
	reg.Register("physics.illinois.edu", illinoisClient.Base)
	reg.Register("physics.wisconsin.edu", wisconsinClient.Base)

	// Illinois transformations.
	if err := illinois.AddTransformation(twoArg("sim")); err != nil {
		t.Fatal(err)
	}
	if err := illinois.AddTransformation(twoArg("cmp")); err != nil {
		t.Fatal(err)
	}

	// Wisconsin defines cmpsim = sim then cmp, calling Illinois TRs by
	// vdp hyperlink, plus a local srch.
	cmpsim := schema.Transformation{
		Name: "cmpsim", Kind: schema.Compound,
		Args: []schema.FormalArg{
			{Name: "in", Direction: schema.In},
			{Name: "mid", Direction: schema.InOut, Default: defaultDS("tmp")},
			{Name: "out", Direction: schema.Out},
		},
		Calls: []schema.Call{
			{TR: "vdp://physics.illinois.edu/sim", Bindings: map[string]schema.Actual{
				"a2": refDir("output", "mid"), "a1": schema.FormalRefActual("in")}},
			{TR: "vdp://physics.illinois.edu/cmp", Bindings: map[string]schema.Actual{
				"a2": refDir("output", "out"), "a1": refDir("input", "mid")}},
		},
	}
	if err := wisconsin.AddTransformation(cmpsim); err != nil {
		t.Fatal(err)
	}
	if err := wisconsin.AddTransformation(twoArg("srch")); err != nil {
		t.Fatal(err)
	}

	// A third site imports Wisconsin's compound; the Illinois callees
	// come along transitively.
	personal := catalog.New(nil)
	tr, err := ImportTransformation(personal, reg, "vdp://physics.wisconsin.edu/cmpsim")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Attrs["importedFrom"] != "vdp://physics.wisconsin.edu/cmpsim" {
		t.Errorf("origin attr: %v", tr.Attrs)
	}
	if _, err := personal.Transformation("sim"); err != nil {
		t.Errorf("transitive callee sim not imported: %v", err)
	}
	if _, err := personal.Transformation("cmp"); err != nil {
		t.Errorf("transitive callee cmp not imported: %v", err)
	}

	// The imported compound expands and registers locally.
	dv := schema.Derivation{TR: "cmpsim", Params: map[string]schema.Actual{
		"in":  schema.DatasetActual("input", "events.raw"),
		"out": schema.DatasetActual("output", "events.cmp"),
	}}
	leaves, err := schema.ExpandDerivation(dv, Resolver(personal, reg))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 2 {
		t.Fatalf("expansion: %d leaves", len(leaves))
	}

	// Illinois defines srch-muon against Wisconsin's srch; a personal
	// catalog imports the derivation and gets the TR too.
	srchMuon := schema.Derivation{Name: "srch-muon",
		TR: "vdp://physics.wisconsin.edu/srch",
		Params: map[string]schema.Actual{
			"a2": schema.DatasetActual("output", "muons"),
			"a1": schema.DatasetActual("input", "events.cmp"),
		}}
	// Register remotely: first import the TR into Illinois, then add.
	if _, err := ImportTransformation(illinois, reg, "vdp://physics.wisconsin.edu/srch"); err != nil {
		t.Fatal(err)
	}
	srchMuon.TR = "srch"
	stored, err := illinois.AddDerivation(srchMuon)
	if err != nil {
		t.Fatal(err)
	}
	personal2 := catalog.New(nil)
	got, err := ImportDerivation(personal2, reg, "vdp://physics.illinois.edu/"+stored.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != stored.ID {
		t.Errorf("imported derivation id: %s vs %s", got.ID, stored.ID)
	}
	if _, err := personal2.Transformation("srch"); err != nil {
		t.Errorf("derivation import did not pull its transformation: %v", err)
	}
}

func defaultDS(name string) *schema.Actual {
	a := schema.DatasetActual("inout", name)
	return &a
}

func refDir(dir, name string) schema.Actual {
	a := schema.FormalRefActual(name)
	a.Direction = dir
	return a
}

func TestImportErrors(t *testing.T) {
	local := catalog.New(nil)
	reg := NewRegistry()
	if _, err := ImportTransformation(local, reg, "vdp://nowhere/x"); err == nil {
		t.Error("unknown authority accepted")
	}
	if _, err := ImportDerivation(local, reg, "not-a-vdp"); err == nil {
		t.Error("non-vdp derivation ref accepted")
	}
	_, client := startServer(t, "s")
	reg.Register("s", client.Base)
	if _, err := ImportTransformation(local, reg, "vdp://s/ghost"); err == nil {
		t.Error("missing remote TR accepted")
	}
}

func TestApplyProgramTypes(t *testing.T) {
	cat, client := startServer(t, "s")
	src := `
TYPE content HEP;
TYPE content Events extends HEP;
DS raw<Events>;
`
	if err := client.PostVDL(src); err != nil {
		t.Fatal(err)
	}
	if !cat.Types().IsSubtype(dtype.Content, "Events", "HEP") {
		t.Error("types not applied")
	}
}

func TestTypesEndpointAndImportTypes(t *testing.T) {
	remoteCat, client := startServer(t, "remote")
	if err := remoteCat.DefineType(dtype.Content, "HEP2", ""); err != nil {
		t.Fatal(err)
	}
	if err := remoteCat.DefineType(dtype.Content, "Events2", "HEP2"); err != nil {
		t.Fatal(err)
	}
	reg, err := client.Types()
	if err != nil {
		t.Fatal(err)
	}
	if !reg.IsSubtype(dtype.Content, "Events2", "HEP2") {
		t.Error("types endpoint lost hierarchy")
	}

	// A typed transformation imports along with its type vocabulary.
	tr := schema.Transformation{Name: "typedtr", Kind: schema.Simple, Exec: "/x",
		Args: []schema.FormalArg{
			{Name: "o", Direction: schema.Out},
			{Name: "i", Direction: schema.In, Types: []dtype.Type{{Content: "Events2"}}},
		}}
	if err := remoteCat.AddTransformation(tr); err != nil {
		t.Fatal(err)
	}
	authReg := NewRegistry()
	authReg.Register("remote", client.Base)
	local := catalog.New(nil) // empty registry: types must come along
	if _, err := ImportTransformation(local, authReg, "vdp://remote/typedtr"); err != nil {
		t.Fatal(err)
	}
	if !local.Types().IsSubtype(dtype.Content, "Events2", "HEP2") {
		t.Error("import did not carry type vocabulary")
	}
	// And the imported TR is usable for typed derivations.
	if err := local.AddDataset(schema.Dataset{Name: "d", Type: dtype.Type{Content: "Events2"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := local.AddDerivation(schema.Derivation{TR: "typedtr", Params: map[string]schema.Actual{
		"o": schema.DatasetActual("output", "out"),
		"i": schema.DatasetActual("input", "d"),
	}}); err != nil {
		t.Errorf("typed derivation after import: %v", err)
	}
}

func TestRegistryAuthorities(t *testing.T) {
	reg := NewRegistry()
	reg.Register("a", "http://a")
	reg.Register("b", "http://b")
	if got := len(reg.Authorities()); got != 2 {
		t.Errorf("authorities: %d", got)
	}
}

func TestClientErrorTransports(t *testing.T) {
	// Connection refused surfaces as a transport error, not RemoteError.
	dead := NewClient("http://127.0.0.1:1")
	if _, err := dead.Info(); err == nil || NotFound(err) {
		t.Errorf("dead server: %v", err)
	}
	// Custom HTTP client honored.
	_, client := startServer(t, "x")
	client.HTTP = client.http()
	if _, err := client.Info(); err != nil {
		t.Error(err)
	}
}

func TestServerRejectsOversizedAndGarbage(t *testing.T) {
	_, client := startServer(t, "s")
	// Garbage JSON bodies are 400s.
	req, _ := httpNewRequest("PUT", client.Base+"/v1/datasets", "{not json")
	resp, err := client.http().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("garbage body status: %d", resp.StatusCode)
	}
}

func httpNewRequest(method, url, body string) (*http.Request, error) {
	return http.NewRequest(method, url, strings.NewReader(body))
}
